(* The benchmark harness.

   Part 1 regenerates every table/figure reproduction (E1-E14) by running
   the corresponding simulation and printing its table — the rows
   EXPERIMENTS.md records.

   Part 2 runs Bechamel micro-benchmarks of the implementation itself:
   wire codecs, encapsulation, routing lookup, grid selection, and a whole
   simulated ping through the Mobile IP tunnel path. *)

open Bechamel
open Toolkit

let addr = Netsim.Ipv4_addr.of_string

(* ---------- micro-benchmark subjects ---------- *)

let sample_packet =
  Netsim.Ipv4_packet.make ~protocol:Netsim.Ipv4_packet.P_udp
    ~src:(addr "36.1.0.5") ~dst:(addr "44.2.0.10")
    (Netsim.Ipv4_packet.Udp
       (Netsim.Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make 512 'x')))

let sample_wire = Netsim.Ipv4_packet.encode sample_packet
let buffer_1500 = Bytes.make 1500 '\042'

let make_routing_table n =
  let table = Netsim.Routing.create () in
  for i = 0 to n - 1 do
    Netsim.Routing.add table
      ~prefix:
        (Netsim.Ipv4_addr.Prefix.make
           (Netsim.Ipv4_addr.of_octets 10 (i mod 256) ((i / 256) mod 256) 0)
           (16 + (i mod 9)))
      ~iface:(Printf.sprintf "if%d" (i mod 4))
      ()
  done;
  table

let routing_table = make_routing_table 100
let routing_table_10 = make_routing_table 10
let routing_table_1k = make_routing_table 1000

(* Destinations cycled per call so these cases measure the trie walk, not
   the one-entry destination cache (which the constant-address
   100-route case above deliberately hits). *)
let probe_addrs =
  Array.init 16 (fun i ->
      Netsim.Ipv4_addr.of_octets 10 (17 * i mod 256) 3 9)

let cycled_lookup table =
  let i = ref 0 in
  fun () ->
    i := (!i + 1) land 15;
    Netsim.Routing.lookup table (Array.unsafe_get probe_addrs !i)

(* One A --(r)-- B world reused across runs: each run pushes a packet
   from [a] through the router to [b] and drains the queue — the per-hop
   forwarding fast path (lookup, TTL decrement, incremental checksum,
   emit) with tracing gated off. *)
let make_forward_world () =
  let net = Netsim.Net.create () in
  let a = Netsim.Net.add_host net "a" in
  let r = Netsim.Net.add_router net "r" in
  let b = Netsim.Net.add_host net "b" in
  let _ =
    Netsim.Net.p2p net ~latency:0.0001
      ~prefix:(Netsim.Ipv4_addr.Prefix.of_string "10.0.1.0/30")
      (a, "if0", addr "10.0.1.1")
      (r, "if0", addr "10.0.1.2")
  in
  let _ =
    Netsim.Net.p2p net ~latency:0.0001
      ~prefix:(Netsim.Ipv4_addr.Prefix.of_string "10.0.2.0/30")
      (r, "if1", addr "10.0.2.1")
      (b, "if0", addr "10.0.2.2")
  in
  Netsim.Routing.add_default (Netsim.Net.routing a) ~gateway:(addr "10.0.1.2")
    ~iface:"if0";
  Netsim.Routing.add_default (Netsim.Net.routing b) ~gateway:(addr "10.0.2.1")
    ~iface:"if0";
  (net, a)

let forward_world =
  lazy
    (let net, a = make_forward_world () in
     Netsim.Net.set_tracing net false;
     (net, a))

(* The same hop with tracing enabled and the flight recorder hanging off
   the net's own trace (a per-trace observer, so nothing leaks into the
   other cases): the always-on telemetry cost the E20 ladder measures at
   workload scale, isolated here per hop for the regression gate. *)
let forward_world_recorded =
  lazy
    (let net, a = make_forward_world () in
     Netsim.Net.set_tracing net true;
     let rec_ = Netobs.Recorder.create ~capacity:4096 () in
     let _ =
       Netsim.Trace.add_observer (Netsim.Net.trace net)
         (Netobs.Recorder.note rec_)
     in
     (net, a))

let forward_pkt =
  Netsim.Ipv4_packet.make ~protocol:Netsim.Ipv4_packet.P_udp
    ~src:(addr "10.0.1.1") ~dst:(addr "10.0.2.2")
    (Netsim.Ipv4_packet.Raw (Bytes.make 512 'h'))

let forwarding_hop () =
  let net, a = Lazy.force forward_world in
  ignore (Netsim.Net.send a forward_pkt);
  Netsim.Net.run net

let forwarding_hop_recorded () =
  let net, a = Lazy.force forward_world_recorded in
  ignore (Netsim.Net.send a forward_pkt);
  Netsim.Net.run net

(* The recorder's per-record cost alone (sampling decision + ring store),
   without any simulation around it. *)
let bench_recorder = lazy (Netobs.Recorder.create ~capacity:4096 ())

let sample_record =
  {
    Netsim.Trace.time = 0.0125;
    event =
      Netsim.Trace.Transmit
        {
          link = "a-r";
          frame = { Netsim.Trace.id = 7; flow = 5; pkt = sample_packet };
          bytes = Bytes.length sample_wire;
        };
  }

let recorder_note () =
  Netobs.Recorder.note (Lazy.force bench_recorder) sample_record

let header_csum = Netsim.Ipv4_packet.header_checksum sample_packet

let grid_env =
  {
    Mobileip.Grid.default_environment with
    Mobileip.Grid.ch_mobile_aware = true;
    ch_knows_care_of = true;
  }

let reg_request =
  {
    Mobileip.Registration.home = addr "36.1.0.5";
    home_agent = addr "36.1.0.2";
    care_of = addr "131.7.0.100";
    lifetime = 300;
    sequence = 42;
  }

let reg_wire = Mobileip.Registration.encode_request ~key:"secret" reg_request

let tunnel_ping () =
  (* A complete simulated In-IE ping: build the world, roam, ping through
     the home agent.  Measures end-to-end simulator throughput. *)
  let topo = Scenarios.Topo.build () in
  Netsim.Net.set_tracing topo.Scenarios.Topo.net false;
  Scenarios.Topo.roam topo ();
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref false in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt:_ -> got := true);
  Scenarios.Topo.run topo;
  assert !got

let tcp_payload = Bytes.make 8192 'b'

let tcp_transfer ~window () =
  (* An 8 kB windowed TCP transfer over a 50 ms link, in simulation. *)
  let net = Netsim.Net.create () in
  Netsim.Net.set_tracing net false;
  let c = Netsim.Net.add_host net "c" in
  let s = Netsim.Net.add_host net "s" in
  let _ =
    Netsim.Net.p2p net ~latency:0.05
      ~prefix:(Netsim.Ipv4_addr.Prefix.of_string "10.0.0.0/30")
      (c, "if0", addr "10.0.0.1") (s, "if0", addr "10.0.0.2")
  in
  let tc = Transport.Tcp.get c in
  let ts = Transport.Tcp.get s in
  let got = ref 0 in
  Transport.Tcp.listen ts ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d -> got := !got + Bytes.length d));
  let conn = Transport.Tcp.connect tc ~window ~dst:(addr "10.0.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn tcp_payload;
  Netsim.Net.run net;
  assert (!got = 8192)

(* The sharded engine against the plain one on the same two-domain
   ping-pong world: the pair keeps the merged executor's pick-loop
   overhead visible revision over revision.  (The parallel executor is
   benchmarked by experiment E21, not here — Domain.spawn per barrier
   window would drown a microbenchmark quota.) *)
let shard_proto = Netsim.Ipv4_packet.P_other 252

let shard_pingpong ~shards () =
  let net = Netsim.Net.create () in
  Netsim.Net.set_tracing net false;
  let a = Netsim.Net.add_host net "a" in
  let r0 = Netsim.Net.add_router net "r0" in
  let r1 = Netsim.Net.add_router net "r1" in
  let b = Netsim.Net.add_host net "b" in
  let link ?(latency = 0.0005) p (n1, i1, a1) (n2, i2, a2) =
    ignore
      (Netsim.Net.p2p net ~latency
         ~prefix:(Netsim.Ipv4_addr.Prefix.of_string p)
         (n1, i1, addr a1) (n2, i2, addr a2))
  in
  link "10.0.1.0/30" (a, "if0", "10.0.1.1") (r0, "if0", "10.0.1.2");
  link ~latency:0.005 "10.0.2.0/30" (r0, "if1", "10.0.2.1")
    (r1, "if0", "10.0.2.2");
  link "10.0.3.0/30" (r1, "if1", "10.0.3.1") (b, "if0", "10.0.3.2");
  Netsim.Routing.add_default (Netsim.Net.routing a) ~gateway:(addr "10.0.1.2")
    ~iface:"if0";
  Netsim.Routing.add_default (Netsim.Net.routing b) ~gateway:(addr "10.0.3.1")
    ~iface:"if0";
  Netsim.Routing.add_default (Netsim.Net.routing r0)
    ~gateway:(addr "10.0.2.2") ~iface:"if1";
  Netsim.Routing.add_default (Netsim.Net.routing r1)
    ~gateway:(addr "10.0.2.1") ~iface:"if0";
  if shards > 1 then Netsim.Net.set_shards net shards;
  let sent = ref 1 and got = ref 0 in
  let payload = Netsim.Ipv4_packet.Raw (Bytes.make 64 'q') in
  let fire node ~src ~dst =
    ignore
      (Netsim.Net.send node
         (Netsim.Ipv4_packet.make ~protocol:shard_proto ~src:(addr src)
            ~dst:(addr dst) payload))
  in
  let handler node _ (_ : Netsim.Ipv4_packet.t) =
    if node == b then fire b ~src:"10.0.3.2" ~dst:"10.0.1.1"
    else begin
      incr got;
      if !sent < 20 then begin
        incr sent;
        fire a ~src:"10.0.1.1" ~dst:"10.0.3.2"
      end
    end
  in
  Netsim.Net.set_protocol_handler a shard_proto handler;
  Netsim.Net.set_protocol_handler b shard_proto handler;
  fire a ~src:"10.0.1.1" ~dst:"10.0.3.2";
  Netsim.Net.run net;
  assert (!got = 20)

let micro_tests =
  Test.make_grouped ~name:"mobility4x4"
    [
      Test.make ~name:"checksum-1500B"
        (Staged.stage (fun () -> Netsim.Checksum.compute buffer_1500));
      Test.make ~name:"ipv4-encode-512B"
        (Staged.stage (fun () -> Netsim.Ipv4_packet.encode sample_packet));
      Test.make ~name:"ipv4-decode-512B"
        (Staged.stage (fun () -> Netsim.Ipv4_packet.decode sample_wire));
      Test.make ~name:"encap-wrap-ipip"
        (Staged.stage (fun () ->
             Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:(addr "131.7.0.100")
               ~dst:(addr "36.1.0.2") sample_packet));
      Test.make ~name:"encap-roundtrip-minimal"
        (Staged.stage (fun () ->
             Mobileip.Encap.unwrap
               (Mobileip.Encap.wrap Mobileip.Encap.Minimal
                  ~src:(addr "131.7.0.100") ~dst:(addr "36.1.0.2")
                  sample_packet)));
      Test.make ~name:"routing-lpm-100-routes"
        (Staged.stage (fun () ->
             Netsim.Routing.lookup routing_table (addr "10.57.3.9")));
      Test.make ~name:"routing-lpm-10-routes"
        (Staged.stage (cycled_lookup routing_table_10));
      Test.make ~name:"routing-lpm-1k-routes"
        (Staged.stage (cycled_lookup routing_table_1k));
      Test.make ~name:"checksum-header-full"
        (Staged.stage (fun () ->
             Netsim.Ipv4_packet.header_checksum sample_packet));
      Test.make ~name:"checksum-header-incremental"
        (Staged.stage (fun () ->
             Netsim.Ipv4_packet.decrement_ttl_checksum ~checksum:header_csum
               sample_packet));
      Test.make ~name:"forwarding-hop" (Staged.stage forwarding_hop);
      Test.make ~name:"forwarding-hop-recorded"
        (Staged.stage forwarding_hop_recorded);
      (* The -x64 renames retire three baselines whose fits were junk
         (r^2 of -1.25 .. 0.25 in BENCH_results.json): at 50-400 ns/run
         the OLS line was fit through clock-read noise.  Running the
         subject 64x per measured run lifts the per-run time into the
         microseconds, where the fit is sound; the gate treats the
         renamed cases as [gone]/[new], never fatal. *)
      Test.make ~name:"recorder-note-512B-x64"
        (Staged.stage (fun () ->
             for _ = 1 to 64 do
               recorder_note ()
             done));
      Test.make ~name:"grid-best-cell-x64"
        (Staged.stage (fun () ->
             for _ = 1 to 64 do
               ignore (Mobileip.Grid.best grid_env)
             done));
      Test.make ~name:"registration-roundtrip-x64"
        (Staged.stage (fun () ->
             for _ = 1 to 64 do
               ignore (Mobileip.Registration.decode_request ~key:"secret" reg_wire)
             done));
      Test.make ~name:"fragment-3000B-mtu576"
        (Staged.stage (fun () ->
             Netsim.Fragment.fragment ~mtu:576
               (Netsim.Ipv4_packet.make ~protocol:Netsim.Ipv4_packet.P_udp
                  ~src:(addr "1.2.3.4") ~dst:(addr "5.6.7.8")
                  (Netsim.Ipv4_packet.Raw (Bytes.make 3000 'f')))));
      Test.make ~name:"sim-pingpong-unsharded"
        (Staged.stage (shard_pingpong ~shards:1));
      Test.make ~name:"sim-pingpong-2shards-merged"
        (Staged.stage (shard_pingpong ~shards:2));
      Test.make ~name:"sim-tunnel-ping-full-world" (Staged.stage tunnel_ping);
      Test.make ~name:"sim-tcp-8KB-stop-and-wait"
        (Staged.stage (tcp_transfer ~window:1));
      Test.make ~name:"sim-tcp-8KB-window-8"
        (Staged.stage (tcp_transfer ~window:8));
    ]

let run_micro ~quota () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* A short discarded warmup pass first, so the measured pass does not
     fit its line through cold-cache/GC-ramp samples. *)
  let warmup =
    Benchmark.cfg ~limit:40 ~quota:(Time.second 0.02)
      ~sampling:(`Linear 1) ~kde:None ()
  in
  ignore (Benchmark.all warmup instances micro_tests);
  (* Geometric batch growth at 5%/sample spreads the per-sample iteration
     counts over orders of magnitude within the quota, giving the OLS fit
     real leverage at both ends: nanosecond-scale subjects end in
     large-iteration batches (amortising clock-read noise) while the slow
     simulation cases still collect dozens of distinct batch sizes (the
     default near-constant growth gave them degenerate fits, r^2 near or
     below zero). *)
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second quota)
      ~sampling:(`Geometric 1.05) ~stabilize:true ~compaction:false ~kde:None
      ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  (* Containers hiccup: a scheduler preemption lands a multi-millisecond
     spike in a handful of samples, which a plain least-squares fit has no
     defence against (it hits the ~100 us simulation cases hardest, where
     batches are small).  Drop samples whose per-run time exceeds 3x the
     median per-run time before fitting; genuine cost growth stays (the
     median moves with it), only isolated spikes go. *)
  let clock_label = Measure.label Instance.monotonic_clock in
  let trim (b : Benchmark.t) =
    let rate m =
      Measurement_raw.get ~label:clock_label m /. Measurement_raw.run m
    in
    let sorted = Array.map rate b.Benchmark.lr in
    Array.sort compare sorted;
    if Array.length sorted = 0 then b
    else begin
      let median = sorted.(Array.length sorted / 2) in
      let keep =
        Array.of_seq
          (Seq.filter
             (fun m -> rate m <= 3.0 *. median)
             (Array.to_seq b.Benchmark.lr))
      in
      if Array.length keep >= 8 then { b with Benchmark.lr = keep } else b
    end
  in
  Hashtbl.iter
    (fun name b -> Hashtbl.replace raw name (trim b))
    (Hashtbl.copy raw);
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.map
    (fun (name, ols) ->
      let ns_per_run =
        match Analyze.OLS.estimates ols with Some (t :: _) -> Some t | _ -> None
      in
      (name, ns_per_run, Analyze.OLS.r_square ols))
    rows

let print_micro rows =
  Format.printf "@.== Bechamel micro-benchmarks (monotonic clock) ==@.";
  Format.printf "  %-45s %14s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ns, r2) ->
      let time =
        match ns with
        | Some t ->
            if t > 1_000_000.0 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1_000.0 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
        | None -> "-"
      in
      let r2 =
        match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Format.printf "  %-45s %14s %8s@." name time r2)
    rows

(* Persist the run so the perf trajectory accumulates revision over
   revision; EXPERIMENTS.md and the CI smoke run both read this file. *)
let results_file = "BENCH_results.json"

let write_json rows =
  let open Netobs in
  let opt f = function Some v -> f v | None -> Json.Null in
  let json =
    Json.Obj
      [
        ("schema", Json.String "mobility4x4-bench/1");
        ("clock", Json.String "monotonic");
        ( "results",
          Json.List
            (List.map
               (fun (name, ns, r2) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("ns_per_run", opt (fun v -> Json.Float v) ns);
                     ("r_square", opt (fun v -> Json.Float v) r2);
                   ])
               rows) );
      ]
  in
  let oc = open_out results_file in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %d benchmark results to %s@." (List.length rows)
    results_file

let () =
  let has flag = Array.exists (fun a -> a = flag) Sys.argv in
  let only_micro = has "--micro-only" in
  (* --json-only: the CI smoke path — no experiment tables, results
     written to BENCH_results.json only.  It uses the same measurement
     quota as interactive runs: anything shorter starves the tiny
     (sub-100ns) cases of samples and the OLS fits degrade below the
     point where the regression gate's threshold is meaningful. *)
  let json_only = has "--json-only" in
  (* Micro-benchmarks run before the experiment tables: Bechamel's
     per-sample GC stabilization (a Gc.compact loop inside the quota
     window) slows with heap size, and the experiments grow the heap
     enough that every case would burn its whole quota on one sample. *)
  let rows = run_micro ~quota:2.0 () in
  if not json_only then print_micro rows;
  write_json rows;
  if not (only_micro || json_only) then begin
    Format.printf "@.Internet Mobility 4x4 - experiment reproduction@.";
    Experiments.Registry.run_all Format.std_formatter
  end;
  Format.printf "@.done.@."
