(* The benchmark harness.

   Part 1 regenerates every table/figure reproduction (E1-E14) by running
   the corresponding simulation and printing its table — the rows
   EXPERIMENTS.md records.

   Part 2 runs Bechamel micro-benchmarks of the implementation itself:
   wire codecs, encapsulation, routing lookup, grid selection, and a whole
   simulated ping through the Mobile IP tunnel path. *)

open Bechamel
open Toolkit

let addr = Netsim.Ipv4_addr.of_string

(* ---------- micro-benchmark subjects ---------- *)

let sample_packet =
  Netsim.Ipv4_packet.make ~protocol:Netsim.Ipv4_packet.P_udp
    ~src:(addr "36.1.0.5") ~dst:(addr "44.2.0.10")
    (Netsim.Ipv4_packet.Udp
       (Netsim.Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make 512 'x')))

let sample_wire = Netsim.Ipv4_packet.encode sample_packet
let buffer_1500 = Bytes.make 1500 '\042'

let routing_table =
  let table = Netsim.Routing.create () in
  for i = 0 to 99 do
    Netsim.Routing.add table
      ~prefix:
        (Netsim.Ipv4_addr.Prefix.make
           (Netsim.Ipv4_addr.of_octets 10 (i mod 256) 0 0)
           (16 + (i mod 9)))
      ~iface:(Printf.sprintf "if%d" (i mod 4))
      ()
  done;
  table

let grid_env =
  {
    Mobileip.Grid.default_environment with
    Mobileip.Grid.ch_mobile_aware = true;
    ch_knows_care_of = true;
  }

let reg_request =
  {
    Mobileip.Registration.home = addr "36.1.0.5";
    home_agent = addr "36.1.0.2";
    care_of = addr "131.7.0.100";
    lifetime = 300;
    sequence = 42;
  }

let reg_wire = Mobileip.Registration.encode_request ~key:"secret" reg_request

let tunnel_ping () =
  (* A complete simulated In-IE ping: build the world, roam, ping through
     the home agent.  Measures end-to-end simulator throughput. *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref false in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt:_ -> got := true);
  Scenarios.Topo.run topo;
  assert !got

let tcp_transfer ~window () =
  (* An 8 kB windowed TCP transfer over a 50 ms link, in simulation. *)
  let net = Netsim.Net.create () in
  let c = Netsim.Net.add_host net "c" in
  let s = Netsim.Net.add_host net "s" in
  let _ =
    Netsim.Net.p2p net ~latency:0.05
      ~prefix:(Netsim.Ipv4_addr.Prefix.of_string "10.0.0.0/30")
      (c, "if0", addr "10.0.0.1") (s, "if0", addr "10.0.0.2")
  in
  let tc = Transport.Tcp.get c in
  let ts = Transport.Tcp.get s in
  let got = ref 0 in
  Transport.Tcp.listen ts ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d -> got := !got + Bytes.length d));
  let conn = Transport.Tcp.connect tc ~window ~dst:(addr "10.0.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn (Bytes.make 8192 'b');
  Netsim.Net.run net;
  assert (!got = 8192)

let micro_tests =
  Test.make_grouped ~name:"mobility4x4"
    [
      Test.make ~name:"checksum-1500B"
        (Staged.stage (fun () -> Netsim.Checksum.compute buffer_1500));
      Test.make ~name:"ipv4-encode-512B"
        (Staged.stage (fun () -> Netsim.Ipv4_packet.encode sample_packet));
      Test.make ~name:"ipv4-decode-512B"
        (Staged.stage (fun () -> Netsim.Ipv4_packet.decode sample_wire));
      Test.make ~name:"encap-wrap-ipip"
        (Staged.stage (fun () ->
             Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:(addr "131.7.0.100")
               ~dst:(addr "36.1.0.2") sample_packet));
      Test.make ~name:"encap-roundtrip-minimal"
        (Staged.stage (fun () ->
             Mobileip.Encap.unwrap
               (Mobileip.Encap.wrap Mobileip.Encap.Minimal
                  ~src:(addr "131.7.0.100") ~dst:(addr "36.1.0.2")
                  sample_packet)));
      Test.make ~name:"routing-lpm-100-routes"
        (Staged.stage (fun () ->
             Netsim.Routing.lookup routing_table (addr "10.57.3.9")));
      Test.make ~name:"grid-best-cell"
        (Staged.stage (fun () -> Mobileip.Grid.best grid_env));
      Test.make ~name:"registration-roundtrip"
        (Staged.stage (fun () ->
             Mobileip.Registration.decode_request ~key:"secret" reg_wire));
      Test.make ~name:"fragment-3000B-mtu576"
        (Staged.stage (fun () ->
             Netsim.Fragment.fragment ~mtu:576
               (Netsim.Ipv4_packet.make ~protocol:Netsim.Ipv4_packet.P_udp
                  ~src:(addr "1.2.3.4") ~dst:(addr "5.6.7.8")
                  (Netsim.Ipv4_packet.Raw (Bytes.make 3000 'f')))));
      Test.make ~name:"sim-tunnel-ping-full-world" (Staged.stage tunnel_ping);
      Test.make ~name:"sim-tcp-8KB-stop-and-wait"
        (Staged.stage (tcp_transfer ~window:1));
      Test.make ~name:"sim-tcp-8KB-window-8"
        (Staged.stage (tcp_transfer ~window:8));
    ]

let run_micro ~quota () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.map
    (fun (name, ols) ->
      let ns_per_run =
        match Analyze.OLS.estimates ols with Some (t :: _) -> Some t | _ -> None
      in
      (name, ns_per_run, Analyze.OLS.r_square ols))
    rows

let print_micro rows =
  Format.printf "@.== Bechamel micro-benchmarks (monotonic clock) ==@.";
  Format.printf "  %-45s %14s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ns, r2) ->
      let time =
        match ns with
        | Some t ->
            if t > 1_000_000.0 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1_000.0 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
        | None -> "-"
      in
      let r2 =
        match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Format.printf "  %-45s %14s %8s@." name time r2)
    rows

(* Persist the run so the perf trajectory accumulates revision over
   revision; EXPERIMENTS.md and the CI smoke run both read this file. *)
let results_file = "BENCH_results.json"

let write_json rows =
  let open Netobs in
  let opt f = function Some v -> f v | None -> Json.Null in
  let json =
    Json.Obj
      [
        ("schema", Json.String "mobility4x4-bench/1");
        ("clock", Json.String "monotonic");
        ( "results",
          Json.List
            (List.map
               (fun (name, ns, r2) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("ns_per_run", opt (fun v -> Json.Float v) ns);
                     ("r_square", opt (fun v -> Json.Float v) r2);
                   ])
               rows) );
      ]
  in
  let oc = open_out results_file in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %d benchmark results to %s@." (List.length rows)
    results_file

let () =
  let has flag = Array.exists (fun a -> a = flag) Sys.argv in
  let only_micro = has "--micro-only" in
  (* --json-only: the CI smoke path — a short measurement quota, no
     experiment tables, results still written to BENCH_results.json. *)
  let json_only = has "--json-only" in
  if not (only_micro || json_only) then begin
    Format.printf "Internet Mobility 4x4 - experiment reproduction@.";
    Experiments.Registry.run_all Format.std_formatter
  end;
  let rows = run_micro ~quota:(if json_only then 0.05 else 0.5) () in
  if not json_only then print_micro rows;
  write_json rows;
  Format.printf "@.done.@."
