(* Bench regression gate: compare a fresh BENCH_results.json against a
   committed baseline and fail (exit 1) if any case present in both files
   slowed down by more than the allowed factor. Cases that exist in only
   one file are reported but never fatal, so adding or retiring benchmarks
   does not break CI.

   Usage: gate.exe BASELINE.json FRESH.json [--threshold PCT] *)

module Json = Netobs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> die "gate: cannot read %s: %s" path msg

(* name -> (ns_per_run, r_square) *)
let load path =
  let json =
    match Json.of_string (read_file path) with
    | Ok j -> j
    | Error msg -> die "gate: %s: %s" path msg
  in
  let results =
    match Option.bind (Json.member "results" json) Json.get_list with
    | Some l -> l
    | None -> die "gate: %s: no \"results\" array" path
  in
  List.filter_map
    (fun r ->
      let field name get = Option.bind (Json.member name r) get in
      match
        ( field "name" Json.get_string,
          field "ns_per_run" Json.get_float,
          field "r_square" Json.get_float )
      with
      | Some name, Some ns, Some r2 -> Some (name, (ns, r2))
      | _ -> None)
    results

let () =
  let threshold = ref 30.0 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> threshold := t
        | _ -> die "gate: bad --threshold %s" v);
        parse rest
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !paths with
    | [ b; f ] -> (b, f)
    | _ -> die "usage: gate.exe BASELINE.json FRESH.json [--threshold PCT]"
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  let regressions = ref [] in
  List.iter
    (fun (name, (base_ns, _)) ->
      match List.assoc_opt name fresh with
      | None -> Printf.printf "  [gone]    %s (baseline only)\n" name
      | Some (fresh_ns, _) ->
          let delta = 100.0 *. ((fresh_ns /. base_ns) -. 1.0) in
          let tag =
            if delta > !threshold then begin
              regressions := (name, base_ns, fresh_ns, delta) :: !regressions;
              "REGRESSED"
            end
            else if delta < -.(!threshold) then "improved"
            else "ok"
          in
          Printf.printf "  [%-9s] %-45s %10.1f -> %10.1f ns (%+.1f%%)\n" tag
            name base_ns fresh_ns delta)
    baseline;
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name baseline = None then
        Printf.printf "  [new]     %s (fresh only)\n" name)
    fresh;
  match List.rev !regressions with
  | [] ->
      Printf.printf "gate: OK — no case regressed more than %.0f%%\n"
        !threshold
  | rs ->
      Printf.printf "gate: FAIL — %d case(s) regressed more than %.0f%%:\n"
        (List.length rs) !threshold;
      List.iter
        (fun (name, b, f, d) ->
          Printf.printf "  %s: %.1f -> %.1f ns (%+.1f%%)\n" name b f d)
        rs;
      exit 1
