(* The mobility4x4 command-line tool.

   Subcommands:
     grid                    print the 4x4 grid with classifications
     best                    run the series of tests for a described environment
     experiments [IDS]       run experiment reproductions (default: all)
     scenario NAME           run a canned scenario with a packet trace
     stats                   run a reference workload and print a Netobs
                             metrics snapshot (engine gauges, per-cell
                             flow-latency histograms)
     soak                    sweep seeded random fault plans under the
                             invariant oracle; shrink violations to
                             minimal JSON repros
     list                    list experiments and scenarios

   [scenario] and [experiments] accept [--trace-json FILE] to dump the
   full packet telemetry as JSONL (one Netobs.Export event per line). *)

open Cmdliner

let out_fmt = Format.std_formatter

(* ---- grid ---- *)

let grid_cmd =
  let run () =
    Format.printf "The Internet Mobility 4x4 grid (Figure 10)@.@.";
    Format.printf "  %-14s" "";
    List.iter
      (fun o -> Format.printf " %-10s" (Mobileip.Grid.out_to_string o))
      Mobileip.Grid.all_out;
    Format.printf "@.";
    List.iter
      (fun i ->
        Format.printf "  %-14s" (Mobileip.Grid.in_to_string i);
        List.iter
          (fun o ->
            let c = { Mobileip.Grid.incoming = i; outgoing = o } in
            let cls =
              match Mobileip.Grid.classify c with
              | Mobileip.Grid.Useful -> "USEFUL"
              | Mobileip.Grid.Valid_but_unlikely -> "unlikely"
              | Mobileip.Grid.Broken -> "-"
            in
            Format.printf " %-10s" cls)
          Mobileip.Grid.all_out;
        Format.printf "@.")
      Mobileip.Grid.all_in;
    Format.printf "@.Cells:@.";
    List.iter
      (fun c ->
        if Mobileip.Grid.classify c <> Mobileip.Grid.Broken then
          Format.printf "  %-14s %s@."
            (Mobileip.Grid.cell_to_string c)
            (Mobileip.Grid.describe_cell c))
      Mobileip.Grid.all_cells
  in
  Cmd.v (Cmd.info "grid" ~doc:"Print the 4x4 grid and its classification")
    Term.(const run $ const ())

(* ---- best ---- *)

let best_cmd =
  let mobility =
    Arg.(value & opt bool true & info [ "mobility" ] ~doc:"Durable connections needed")
  in
  let privacy =
    Arg.(value & flag & info [ "privacy" ] ~doc:"Hide the current location")
  in
  let filtering =
    Arg.(
      value & opt bool true
      & info [ "filtering" ] ~doc:"Source-address filtering on the path")
  in
  let decap =
    Arg.(value & flag & info [ "decap" ] ~doc:"Correspondent can decapsulate")
  in
  let aware =
    Arg.(value & flag & info [ "aware" ] ~doc:"Correspondent is mobile-aware")
  in
  let knows =
    Arg.(
      value & flag
      & info [ "knows-care-of" ] ~doc:"Correspondent knows the care-of address")
  in
  let segment =
    Arg.(value & flag & info [ "same-segment" ] ~doc:"Hosts share a segment")
  in
  let run mobility privacy filtering decap aware knows segment =
    let env =
      {
        Mobileip.Grid.mobility_required = mobility;
        privacy_required = privacy;
        source_filtering_on_path = filtering;
        ch_decapsulates = decap;
        ch_mobile_aware = aware;
        ch_knows_care_of = knows;
        same_segment = segment;
      }
    in
    let cell = Mobileip.Grid.best env in
    Format.printf "best cell: %s@." (Mobileip.Grid.cell_to_string cell);
    Format.printf "  incoming: %s@." (Mobileip.Grid.describe_in cell.Mobileip.Grid.incoming);
    Format.printf "  outgoing: %s@." (Mobileip.Grid.describe_out cell.Mobileip.Grid.outgoing);
    Format.printf "  why: %s@." (Mobileip.Grid.describe_cell cell)
  in
  Cmd.v
    (Cmd.info "best"
       ~doc:"Run the series of tests that picks the best cell for an environment")
    Term.(const run $ mobility $ privacy $ filtering $ decap $ aware $ knows $ segment)

(* ---- structured trace export ---- *)

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:"Write the run's packet telemetry to $(docv) as JSONL (one \
              trace event per line)")

let pcap_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pcap" ] ~docv:"FILE"
        ~doc:"Write every transmitted frame to $(docv) as a libpcap \
              capture (LINKTYPE_RAW; open it with tcpdump or Wireshark)")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition every simulated world into $(docv) shards (sequential \
           merged mode: deterministic, event order identical to unsharded; \
           see Net.set_shards)")

let apply_shards n =
  if n < 1 then Some (Printf.sprintf "--shards: need >= 1, got %d" n)
  else begin
    Scenarios.Topo.set_default_shards n;
    None
  end

let open_trace_out file =
  try Ok (open_out file)
  with Sys_error msg -> Error (Printf.sprintf "--trace-json: %s" msg)

(* Stream every trace record (from every world the run creates) to FILE.
   Installed with Trace.add_sink, so it tees with --pcap and any
   recorder. *)
let with_trace_stream file f =
  match file with
  | None -> f ()
  | Some file -> (
      match open_trace_out file with
      | Error e -> `Error (false, e)
      | Ok oc ->
      let n = ref 0 in
      let sink =
        Netsim.Trace.add_sink (fun r ->
            incr n;
            Netobs.Export.sink_to_channel oc r)
      in
      Fun.protect
        ~finally:(fun () ->
          Netsim.Trace.remove_sink sink;
          close_out oc;
          Printf.eprintf "trace-json: wrote %d events to %s\n%!" !n file)
        f)

(* Stream every Transmit frame (from every world the run creates) to FILE
   as pcap packets. *)
let with_pcap_stream file f =
  match file with
  | None -> f ()
  | Some file -> (
      match
        try Ok (open_out_bin file)
        with Sys_error msg -> Error (Printf.sprintf "--pcap: %s" msg)
      with
      | Error e -> `Error (false, e)
      | Ok oc ->
          Netobs.Pcap.write_header oc;
          let n = ref 0 in
          let sink =
            Netsim.Trace.add_sink (fun r ->
                match Netobs.Pcap.packet_of_record r with
                | Some (time, payload) ->
                    incr n;
                    Netobs.Pcap.append_packet oc ~time payload
                | None -> ())
          in
          Fun.protect
            ~finally:(fun () ->
              Netsim.Trace.remove_sink sink;
              close_out oc;
              Printf.eprintf "pcap: wrote %d packets to %s\n%!" !n file)
            f)

(* Post-hoc dump of one finished world's trace: exactly Trace.length lines.
   The channel is opened before the scenario runs so a bad path fails fast. *)
let dump_trace_json oc file net =
  let n = Netobs.Export.write_trace_jsonl oc (Netsim.Net.trace net) in
  close_out oc;
  Printf.eprintf "trace-json: wrote %d events to %s\n%!" n file

(* ---- experiments ---- *)

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E14)")
  in
  let run ids trace_json pcap shards =
    match apply_shards shards with
    | Some e -> `Error (false, e)
    | None ->
        with_trace_stream trace_json (fun () ->
            with_pcap_stream pcap (fun () ->
                match ids with
                | [] ->
                    Experiments.Registry.run_all out_fmt;
                    `Ok ()
                | ids ->
                    let bad =
                      List.filter
                        (fun id ->
                          not (Experiments.Registry.run_one out_fmt id))
                        ids
                    in
                    if bad = [] then `Ok ()
                    else
                      `Error
                        ( false,
                          "unknown experiment(s): " ^ String.concat ", " bad )))
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's figures and claims")
    Term.(ret (const run $ ids $ trace_json_arg $ pcap_arg $ shards_arg))

(* ---- scenario ---- *)

let scenarios : (string * string * (unit -> Netsim.Net.t)) list =
  let trace_world topo f =
    Scenarios.Topo.roam topo ();
    Netsim.Trace.clear (Netsim.Net.trace topo.Scenarios.Topo.net);
    f ();
    Scenarios.Topo.run topo;
    Netsim.Trace.dump out_fmt (Netsim.Net.trace topo.Scenarios.Topo.net);
    topo.Scenarios.Topo.net
  in
  let roaming_telnet () =
    (* The examples/roaming_telnet.ml walk-through as a scenario: a telnet
       session bound to the home address survives two moves.  The full
       telemetry (registration, tunneling, every keystroke echo) stays in
       the trace for --trace-json; only the summary is printed. *)
    let topo = Scenarios.Topo.build () in
    let net = topo.Scenarios.Topo.net in
    Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
      ~port:Transport.Well_known.telnet;
    let tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
    let conn =
      Transport.Tcp.connect tcp ~src:topo.Scenarios.Topo.mh_home_addr
        ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.telnet
        ()
    in
    let echoes = ref 0 in
    Transport.Tcp.on_receive conn (fun _ -> incr echoes);
    let type_lines n =
      for _ = 1 to n do
        Transport.Tcp.send_data conn (Bytes.of_string "make world\n")
      done;
      Netsim.Net.run net
    in
    let report phase =
      Format.printf "%-28s state=%a echoes=%d location=%s@." phase
        Transport.Tcp.pp_state (Transport.Tcp.state conn) !echoes
        (match
           Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh
         with
        | Some coa -> "away @ " ^ Netsim.Ipv4_addr.to_string coa
        | None -> "at home")
    in
    type_lines 3;
    report "working at home:";
    Scenarios.Topo.roam topo ();
    type_lines 3;
    report "moved to visited network:";
    Scenarios.Topo.come_home topo;
    type_lines 3;
    report "back home again:";
    Format.printf "retransmissions over the whole session: %d@."
      (Transport.Tcp.retransmissions conn);
    Format.printf "trace: %d events across %d flows@."
      (Netsim.Trace.length (Netsim.Net.trace net))
      (List.length (Netsim.Trace.flows (Netsim.Net.trace net)));
    net
  in
  [
    ( "basic-tunnel",
      "Figure 1: a conventional correspondent pings the roaming mobile host",
      fun () ->
        let topo = Scenarios.Topo.build () in
        trace_world topo (fun () ->
            let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
            Transport.Icmp_service.ping icmp
              ~dst:topo.Scenarios.Topo.mh_home_addr (fun ~rtt ->
                Format.printf "rtt: %s@." (Experiments.Table.ms rtt))) );
    ( "filtered",
      "Figure 2/3: filtering kills Out-DH, reverse tunneling recovers",
      fun () ->
        let topo =
          Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
            ~filtering:Scenarios.Topo.ingress_only ()
        in
        trace_world topo (fun () ->
            Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
              Mobileip.Grid.Out_DH;
            let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
            ignore
              (Transport.Udp_service.send udp
                 ~src:topo.Scenarios.Topo.mh_home_addr
                 ~dst:topo.Scenarios.Topo.ch_addr ~src_port:5000 ~dst_port:9
                 (Bytes.of_string "dropped-by-filter"))) );
    ( "smart-ch",
      "Figure 5: ICMP discovery switches the correspondent to In-DE",
      fun () ->
        let topo =
          Scenarios.Topo.build
            ~ch_capability:Mobileip.Correspondent.Mobile_aware
            ~notify_correspondents:true ()
        in
        trace_world topo (fun () ->
            let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
            Transport.Icmp_service.ping icmp
              ~dst:topo.Scenarios.Topo.mh_home_addr (fun ~rtt ->
                Format.printf "first rtt: %s@." (Experiments.Table.ms rtt);
                Transport.Icmp_service.ping icmp
                  ~dst:topo.Scenarios.Topo.mh_home_addr (fun ~rtt ->
                    Format.printf "second rtt: %s@." (Experiments.Table.ms rtt)))) );
    ( "roaming_telnet",
      "Section 2: a telnet session survives two moves (summary + full trace)",
      roaming_telnet );
  ]

let scenario_cmd =
  let scenario_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Scenario name")
  in
  let run name trace_json pcap shards =
    match apply_shards shards with
    | Some e -> `Error (false, e)
    | None -> (
        match List.find_opt (fun (n, _, _) -> n = name) scenarios with
        | Some (_, _, f) -> (
            with_pcap_stream pcap (fun () ->
                match trace_json with
                | None ->
                    let (_ : Netsim.Net.t) = f () in
                    `Ok ()
                | Some file -> (
                    match open_trace_out file with
                    | Error e -> `Error (false, e)
                    | Ok oc ->
                        let net = f () in
                        dump_trace_json oc file net;
                        `Ok ())))
        | None ->
            `Error
              ( false,
                Printf.sprintf "unknown scenario %S; try: %s" name
                  (String.concat ", "
                     (List.map (fun (n, _, _) -> n) scenarios)) ))
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a canned scenario and dump its packet trace")
    Term.(
      ret (const run $ scenario_arg $ trace_json_arg $ pcap_arg $ shards_arg))

let rules_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Policy rules file (prefix mode lines)")
  in
  let dst =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"ADDR" ~doc:"Destination address to look up")
  in
  let run file dst =
    match Netsim.Ipv4_addr.of_string_opt dst with
    | None -> `Error (false, Printf.sprintf "bad address %S" dst)
    | Some addr -> (
        let text =
          let ic = open_in file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        match Mobileip.Policy_table.of_string text with
        | Error e -> `Error (false, e)
        | Ok table ->
            let mode = Mobileip.Policy_table.mode_for table addr in
            Format.printf "%s -> %a (start with %s)@." dst
              Mobileip.Policy_table.pp_mode mode
              (match mode with
              | Mobileip.Policy_table.Optimistic -> "Out-DH, fall back on failure"
              | Mobileip.Policy_table.Pessimistic -> "Out-IE, always");
            `Ok ())
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:"Look up a destination in a user policy-rules file (section 7.1.2)")
    Term.(ret (const run $ file $ dst))

(* ---- stats ---- *)

let stats_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the snapshot as JSON instead of a table")
  in
  let run json shards =
    (match apply_shards shards with Some e -> failwith e | None -> ());
    let reg = Netobs.Metrics.create () in
    let gauge name help v =
      Netobs.Metrics.set (Netobs.Metrics.gauge reg ~help name) v
    in
    let count name help by =
      Netobs.Metrics.incr ~by (Netobs.Metrics.counter reg ~help name)
    in
    (* Reference world: the standard topology, a roam and a tunneled ping;
       its engine statistics become the engine gauges. *)
    let topo = Scenarios.Topo.build () in
    let net = topo.Scenarios.Topo.net in
    Scenarios.Topo.roam topo ();
    let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
    Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
      (fun ~rtt:_ -> ());
    Scenarios.Topo.run topo;
    let st = Netsim.Net.stats net in
    gauge "engine_events_executed" "events run by the reference world's engine"
      (float_of_int st.Netsim.Engine.executed);
    gauge "engine_queue_depth" "pending events when the run finished"
      (float_of_int st.Netsim.Engine.pending);
    gauge "engine_queue_depth_max" "high-water mark of the event queue"
      (float_of_int st.Netsim.Engine.max_pending);
    gauge "engine_runs_truncated" "runs stopped by the max_events guard"
      (float_of_int st.Netsim.Engine.truncated);
    gauge "engine_sim_time_s" "simulated seconds" st.Netsim.Engine.sim_time;
    gauge "engine_wall_time_s" "host wall-clock seconds inside Engine.run"
      st.Netsim.Engine.wall_time;
    gauge "engine_cpu_time_s" "host CPU seconds inside Engine.run"
      st.Netsim.Engine.cpu_time;
    gauge "engine_shards" "shards the reference world is partitioned into"
      (float_of_int (Netsim.Net.shard_count net));
    let trace = Netsim.Net.trace net in
    count "trace_events_total" "trace records in the reference world"
      (Netsim.Trace.length trace);
    count "trace_flows_total" "distinct flows in the reference world"
      (List.length (Netsim.Trace.flows trace));
    (* Per-cell flow-latency histograms from live conversations (the E8
       harness): one histogram per non-broken grid cell, fed with the
       one-way latencies of its request and reply flows. *)
    List.iter
      (fun cell ->
        if Mobileip.Grid.classify cell <> Mobileip.Grid.Broken then begin
          let r = Experiments.E08_grid.run_cell cell in
          let h =
            Netobs.Metrics.histogram reg
              ~help:"one-way flow latency, both directions"
              (Printf.sprintf "flow_latency_ms{cell=%s}"
                 (Mobileip.Grid.cell_to_string cell))
          in
          let observe = function
            | Some l -> Netobs.Metrics.observe h (l *. 1000.0)
            | None -> ()
          in
          observe r.Mobileip.Conversation.request_latency;
          observe r.Mobileip.Conversation.reply_latency;
          count "cell_requests_delivered_total"
            "requests delivered across all measured cells"
            r.Mobileip.Conversation.requests_delivered;
          count "cell_replies_delivered_total"
            "replies delivered across all measured cells"
            r.Mobileip.Conversation.replies_delivered
        end)
      Mobileip.Grid.all_cells;
    (* Fault-injection reference: one E16 churn cell (In-IE/Out-IE — the
       always-works cell, and the one every scripted fault touches) feeds
       the fault counters and the recovery-time histogram. *)
    let churn =
      Experiments.E16_handover_churn.run_cell
        { Mobileip.Grid.incoming = Mobileip.Grid.In_IE;
          outgoing = Mobileip.Grid.Out_IE }
    in
    let fault = churn.Experiments.E16_handover_churn.fault in
    count "fault_link_flap_drops_total"
      "frame copies dropped on scripted-down links (E16 reference cell)"
      fault.Netsim.Fault.flap_drops;
    count "fault_partition_drops_total"
      "frame copies dropped crossing a scripted partition"
      fault.Netsim.Fault.partition_drops;
    count "fault_duplicated_total"
      "extra frame copies injected by duplication windows"
      fault.Netsim.Fault.duplicated;
    count "fault_delayed_total" "frame copies given reordering jitter"
      fault.Netsim.Fault.delayed;
    count "churn_probes_lost_total"
      "probes never delivered during the E16 reference churn"
      churn.Experiments.E16_handover_churn.lost;
    count "churn_reg_transmissions_total"
      "registration requests (retries included) the churn cost"
      churn.Experiments.E16_handover_churn.reg_transmissions;
    let rh =
      Netobs.Metrics.histogram reg
        ~help:"delivery gap after each disruptive event (E16 reference cell)"
        "churn_recovery_ms"
    in
    List.iter
      (function
        | Some s -> Netobs.Metrics.observe rh (s *. 1000.0)
        | None -> ())
      [
        churn.Experiments.E16_handover_churn.move1_recovery;
        churn.Experiments.E16_handover_churn.move2_recovery;
        churn.Experiments.E16_handover_churn.crash_recovery;
      ];
    (* Failure-signaling and failover reference (the E19 scenarios): the
       ICMP feedback counters from the signaled-filtering run and the
       standby takeover latency histogram from the crash run. *)
    let fr = Experiments.E19_failover.run_filtering ~signaled:true () in
    count "icmp_errors_sent_total"
      "ICMP destination-unreachable errors routers emitted (E19 part A, \
       signaled)"
      fr.Experiments.E19_failover.icmp_sent;
    count "icmp_errors_consumed_total"
      "ICMP errors the mobility software consumed as negative feedback"
      fr.Experiments.E19_failover.icmp_consumed;
    let fo = Experiments.E19_failover.run_failover ~standby:true () in
    count "ha_takeovers_total"
      "standby home-agent takeovers (E19 part B, with standby)"
      fo.Experiments.E19_failover.takeovers;
    let fh =
      Netobs.Metrics.histogram reg
        ~help:"standby detection latency: primary observed down -> takeover"
        "ha_failover_ms"
    in
    (match fo.Experiments.E19_failover.failover with
    | Some s -> Netobs.Metrics.observe fh (s *. 1000.0)
    | None -> ());
    let snap = Netobs.Metrics.snapshot reg in
    if json then
      print_endline (Netobs.Json.to_string (Netobs.Metrics.snapshot_to_json snap))
    else Netobs.Metrics.pp_snapshot out_fmt snap
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a reference workload and print a metrics snapshot (engine \
             gauges, per-cell flow-latency histograms)")
    Term.(const run $ json $ shards_arg)

(* ---- soak ---- *)

let soak_cmd =
  let seeds =
    Arg.(
      value & opt string "0..4"
      & info [ "seeds" ] ~docv:"A..B"
          ~doc:"Inclusive seed range to sweep (e.g. 0..19)")
  in
  let profile =
    Arg.(
      value
      & opt (enum [ ("gentle", `Gentle); ("harsh", `Harsh) ]) `Gentle
      & info [ "profile" ]
          ~doc:
            "Base fault profile: $(b,gentle) (CI smoke; a healthy tree stays \
             clean) or $(b,harsh) (E17: outages that exhaust the renewal \
             budget)")
  in
  let budget =
    Arg.(
      value & opt (some string) None
      & info [ "budget" ] ~docv:"K=V,..."
          ~doc:
            "Override profile fields: events, horizon, max-window, outages \
             (colon-separated seconds), renewals, retries, lifetime \
             (e.g. events=8,outages=12:16,renewals=3)")
  in
  let cells =
    Arg.(
      value & opt (some string) None
      & info [ "cells" ] ~docv:"CELLS"
          ~doc:
            "Comma-separated grid cells (default In-IE/Out-IE,\
             In-DE/Out-DE,In-DH/Out-DH)")
  in
  let fault_json =
    Arg.(
      value & opt (some file) None
      & info [ "fault-json" ] ~docv:"FILE"
          ~doc:
            "Replay one fault plan (a repro written by a previous soak, or \
             any plan JSON) instead of sweeping")
  in
  let repro_dir =
    Arg.(
      value & opt string "."
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Where shrunken repro JSON files are written")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report violations without delta-debugging")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as JSON instead of text")
  in
  let parse_seeds s =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i > 0
           && i + 2 < String.length s -> (
        let lo = String.sub s 0 i in
        let hi = String.sub s (i + 2) (String.length s - i - 2) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
        | _ -> Error (Printf.sprintf "--seeds: bad range %S" s))
    | _ -> Error (Printf.sprintf "--seeds: expected A..B, got %S" s)
  in
  let parse_budget base s =
    let apply p kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "--budget: expected K=V, got %S" kv)
      | Some i -> (
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let int_field f = Option.map f (int_of_string_opt v) in
          let float_field f = Option.map f (float_of_string_opt v) in
          let r =
            match k with
            | "events" -> int_field (fun n -> { p with Experiments.Soak.events = n })
            | "horizon" -> float_field (fun x -> { p with Experiments.Soak.horizon = x })
            | "max-window" ->
                float_field (fun x -> { p with Experiments.Soak.max_window = x })
            | "outages" ->
                let parts = String.split_on_char ':' v in
                let ds = List.filter_map float_of_string_opt parts in
                if List.length ds = List.length parts && ds <> [] then
                  Some { p with Experiments.Soak.outages = ds }
                else None
            | "renewals" ->
                int_field (fun n -> { p with Experiments.Soak.max_renewals = n })
            | "retries" ->
                int_field (fun n -> { p with Experiments.Soak.retry_limit = n })
            | "lifetime" ->
                int_field (fun n -> { p with Experiments.Soak.mh_lifetime = n })
            | _ -> None
          in
          match r with
          | Some p -> Ok p
          | None -> Error (Printf.sprintf "--budget: bad field %S" kv))
    in
    List.fold_left
      (fun acc kv -> Result.bind acc (fun p -> apply p kv))
      (Ok base)
      (String.split_on_char ',' s)
  in
  let parse_cells s =
    let names = String.split_on_char ',' s in
    let cells = List.filter_map Experiments.Soak.cell_of_string names in
    if List.length cells = List.length names && cells <> [] then Ok cells
    else Error (Printf.sprintf "--cells: bad cell list %S" s)
  in
  let cell_name c = Mobileip.Grid.cell_to_string c in
  let repro_path dir seed cell =
    Filename.concat dir
      (Printf.sprintf "repro-s%d-%s.json" seed
         (String.map (fun c -> if c = '/' then '_' else c) (cell_name cell)))
  in
  let finding_json (path, trace_path, pcap_path) (f : Experiments.Soak.finding)
      =
    Netsim.Json.Obj
      [
        ("seed", Netsim.Json.Int f.Experiments.Soak.f_seed);
        ("cell", Netsim.Json.String (cell_name f.Experiments.Soak.f_cell));
        ( "invariants",
          Netsim.Json.List
            (List.map
               (fun n -> Netsim.Json.String n)
               (Experiments.Soak.violated_names f.Experiments.Soak.f_outcome))
        );
        ( "events",
          Netsim.Json.Int
            (List.length f.Experiments.Soak.f_plan.Netsim.Fault.events) );
        ( "shrunk_events",
          Netsim.Json.Int
            (List.length f.Experiments.Soak.f_shrunk.Netsim.Fault.events) );
        ("replays", Netsim.Json.Int f.Experiments.Soak.f_replays);
        ("repro", Netsim.Json.String path);
        ("trace", Netsim.Json.String trace_path);
        ("pcap", Netsim.Json.String pcap_path);
      ]
  in
  (* The flight-recorder tail of a violating run, as trace JSONL and as a
     pcap, next to the repro: a shrunken plan arrives with its capture. *)
  let write_finding_artifacts path (f : Experiments.Soak.finding) =
    let tail = f.Experiments.Soak.f_outcome.Experiments.Soak.recorder_tail in
    let base = Filename.remove_extension path in
    let trace_path = base ^ ".trace.jsonl" in
    let oc = open_out trace_path in
    List.iter
      (fun r ->
        output_string oc (Netobs.Export.line_of_record r);
        output_char oc '\n')
      tail;
    close_out oc;
    let pcap_path = base ^ ".pcap" in
    ignore (Netobs.Pcap.write_file pcap_path tail);
    (path, trace_path, pcap_path)
  in
  let run seeds profile budget cells fault_json repro_dir no_shrink json pcap =
    let profile =
      match profile with
      | `Gentle -> Experiments.Soak.gentle
      | `Harsh -> Experiments.Soak.harsh
    in
    let ( let* ) = Result.bind in
    let result () =
      let* profile =
        match budget with
        | None -> Ok profile
        | Some s -> parse_budget profile s
      in
      match fault_json with
      | Some file ->
          (* Replay mode: one plan, no sweep, no shrink. *)
          let text =
            let ic = open_in file in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          in
          let* plan, seed, cell = Experiments.Soak.repro_of_string text in
          let seed = Option.value seed ~default:0 in
          let cell =
            Option.value cell
              ~default:(List.hd Experiments.Soak.default_cells)
          in
          let outcome = Experiments.Soak.replay ~profile ~cell ~seed plan in
          Format.printf "replay %s: seed %d, cell %s, %d events@." file seed
            (cell_name cell)
            (List.length plan.Netsim.Fault.events);
          List.iter
            (fun v -> Format.printf "  VIOLATION %a@." Netsim.Invariant.pp_violation v)
            outcome.Experiments.Soak.violations;
          if outcome.Experiments.Soak.violations = [] then
            Format.printf "  no violations@.";
          Ok (outcome.Experiments.Soak.violations <> [])
      | None ->
          let* lo, hi = parse_seeds seeds in
          let* cells =
            match cells with
            | None -> Ok Experiments.Soak.default_cells
            | Some s -> parse_cells s
          in
          let report =
            Experiments.Soak.run ~profile ~seed_lo:lo ~seed_hi:hi ~cells
              ~shrink:(not no_shrink) ()
          in
          if report.Experiments.Soak.findings <> [] then begin
            if not (Sys.file_exists repro_dir) then Sys.mkdir repro_dir 0o755
          end;
          let paths =
            List.map
              (fun (f : Experiments.Soak.finding) ->
                let path =
                  repro_path repro_dir f.Experiments.Soak.f_seed
                    f.Experiments.Soak.f_cell
                in
                let oc = open_out path in
                output_string oc
                  (Experiments.Soak.repro_to_string
                     ~seed:f.Experiments.Soak.f_seed
                     ~cell:f.Experiments.Soak.f_cell
                     f.Experiments.Soak.f_shrunk);
                output_char oc '\n';
                close_out oc;
                write_finding_artifacts path f)
              report.Experiments.Soak.findings
          in
          (* The run's metrics, tcp_retx_aborted_total among them. *)
          let reg = Netobs.Metrics.create () in
          let count name help v =
            Netobs.Metrics.incr ~by:v (Netobs.Metrics.counter reg ~help name)
          in
          count "soak_runs_total" "seed x cell runs executed"
            report.Experiments.Soak.runs;
          count "soak_checks_total" "invariant checks evaluated"
            report.Experiments.Soak.total_checks;
          count "soak_violations_total" "runs that violated an invariant"
            (List.length report.Experiments.Soak.findings);
          count "tcp_retx_aborted_total"
            "connections that exhausted their retransmission limit"
            report.Experiments.Soak.total_retx_aborts;
          if json then
            print_endline
              (Netsim.Json.to_string
                 (Netsim.Json.Obj
                    [
                      ( "seeds",
                        Netsim.Json.List
                          [ Netsim.Json.Int lo; Netsim.Json.Int hi ] );
                      ( "cells",
                        Netsim.Json.List
                          (List.map
                             (fun c -> Netsim.Json.String (cell_name c))
                             cells) );
                      ("runs", Netsim.Json.Int report.Experiments.Soak.runs);
                      ( "findings",
                        Netsim.Json.List
                          (List.map2 finding_json paths
                             report.Experiments.Soak.findings) );
                      ( "metrics",
                        Netobs.Metrics.snapshot_to_json
                          (Netobs.Metrics.snapshot reg) );
                    ]))
          else begin
            Format.printf
              "soak: seeds %d..%d, %d runs, %d invariant checks, %d \
               violation(s)@."
              lo hi report.Experiments.Soak.runs
              report.Experiments.Soak.total_checks
              (List.length report.Experiments.Soak.findings);
            List.iter2
              (fun (path, trace_path, pcap_path)
                   (f : Experiments.Soak.finding) ->
                Format.printf
                  "  seed %d cell %s: %s (%d events -> %d, %d replays) \
                   repro: %s tail: %s pcap: %s@."
                  f.Experiments.Soak.f_seed
                  (cell_name f.Experiments.Soak.f_cell)
                  (String.concat " "
                     (Experiments.Soak.violated_names
                        f.Experiments.Soak.f_outcome))
                  (List.length f.Experiments.Soak.f_plan.Netsim.Fault.events)
                  (List.length f.Experiments.Soak.f_shrunk.Netsim.Fault.events)
                  f.Experiments.Soak.f_replays path trace_path pcap_path)
              paths report.Experiments.Soak.findings;
            Netobs.Metrics.pp_snapshot out_fmt (Netobs.Metrics.snapshot reg)
          end;
          Ok (report.Experiments.Soak.findings <> [])
    in
    (* The pcap sink is torn down (and its channel closed) before the
       violation exit code is raised. *)
    match with_pcap_stream pcap (fun () -> `Done (result ())) with
    | `Error _ as e -> e
    | `Done (Error e) -> `Error (false, e)
    | `Done (Ok violated) ->
        if violated then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sweep seeded random fault plans under the invariant oracle; \
          shrink and save a JSON repro for every violation (exit 1 if any)")
    Term.(
      ret
        (const run $ seeds $ profile $ budget $ cells $ fault_json $ repro_dir
       $ no_shrink $ json $ pcap_arg))

(* ---- profile ---- *)

let profile_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the profile as JSON instead of a table")
  in
  let run json =
    (* The E20/E18 capacity workload under the hot-path profiler: the
       per-subsystem self/total table the scale-out work steers by. *)
    Netsim.Prof.reset ();
    Netsim.Prof.set_enabled true;
    let stats =
      Experiments.E20_obs_overhead.run_once ~install:(fun _ () -> ()) ()
    in
    Netsim.Prof.set_enabled false;
    let entries = Netsim.Prof.snapshot () in
    if json then
      print_endline (Netobs.Json.to_string (Netobs.Profile.to_json entries))
    else begin
      Format.printf
        "workload: %d concurrent flows, %d/%d datagrams delivered, %.1f ms \
         wall (timings inflated by the profiler's own clock reads)@."
        Experiments.E20_obs_overhead.flows
        stats.Experiments.E20_obs_overhead.delivered
        stats.Experiments.E20_obs_overhead.expected
        (stats.Experiments.E20_obs_overhead.wall *. 1e3);
      Netobs.Profile.pp out_fmt entries
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the capacity workload under the hot-path profiler and print \
          per-subsystem self/total wall-clock time")
    Term.(const run $ json)

let list_cmd =
  let run () =
    Format.printf "experiments:@.";
    List.iter
      (fun (id, doc, _) -> Format.printf "  %-5s %s@." id doc)
      Experiments.Registry.all;
    Format.printf "scenarios:@.";
    List.iter (fun (n, doc, _) -> Format.printf "  %-14s %s@." n doc) scenarios
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiments and scenarios")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mobility4x4" ~version:"1.0.0"
      ~doc:"Internet Mobility 4x4 (Cheshire & Baker, SIGCOMM '96) in simulation"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ grid_cmd; best_cmd; experiments_cmd; scenario_cmd; stats_cmd;
            soak_cmd; profile_cmd; rules_cmd; list_cmd ]))
