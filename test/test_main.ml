(* Cross-check RFC 1624 incremental checksums against full recomputes on
   every forwarded packet in every suite. *)
let () = Netsim.Net.set_checksum_debug true

let () =
  Alcotest.run "mobility4x4"
    (List.concat
       [
         Suite_ipv4_addr.suites;
         Suite_engine.suites;
         Suite_fragment.suites;
         Suite_routing.suites;
         Suite_filter.suites;
         Suite_checksum.suites;
         Suite_wire.suites;
         Suite_packet.suites;
         Suite_net.suites;
         Suite_tcp.suites;
         Suite_mobileip.suites;
         Suite_grid.suites;
         Suite_registration.suites;
         Suite_selector.suites;
         Suite_policy_dns.suites;
         Suite_integration.suites;
         Suite_lsr.suites;
         Suite_arp.suites;
         Suite_agents.suites;
         Suite_trace_topo.suites;
         Suite_resilience.suites;
         Suite_fault.suites;
         Suite_chaos.suites;
         Suite_experiments.suites;
         Suite_nfs.suites;
         Suite_auto_attach.suites;
         Suite_misc.suites;
         Suite_obs.suites;
         Suite_recorder.suites;
         Suite_failover.suites;
         Suite_shard.suites;
       ])
