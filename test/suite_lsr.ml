(* Loose source routing: option codec, hop-by-hop rewriting, the router
   slow path, and the interaction with ingress filtering (§4). *)

open Netsim

let a = Ipv4_addr.of_string

let test_build_parse () =
  let via = [ a "10.0.0.1"; a "20.0.0.2"; a "30.0.0.3" ] in
  let opt = Ipv4_options.build_lsr ~via in
  Alcotest.(check int) "padded to multiple of 4" 0 (Bytes.length opt mod 4);
  match Ipv4_options.parse_lsr opt with
  | Some (0, addrs) ->
      Alcotest.(check (list string)) "addresses"
        (List.map Ipv4_addr.to_string via)
        (List.map Ipv4_addr.to_string addrs)
  | Some (i, _) -> Alcotest.failf "pointer index %d, expected 0" i
  | None -> Alcotest.fail "no LSR found"

let test_next_and_advance () =
  let opt = Ipv4_options.build_lsr ~via:[ a "1.1.1.1"; a "2.2.2.2" ] in
  Alcotest.(check (option string)) "first hop" (Some "1.1.1.1")
    (Option.map Ipv4_addr.to_string (Ipv4_options.lsr_next_hop opt));
  let opt2 = Option.get (Ipv4_options.advance_lsr opt ~here:(a "9.9.9.9")) in
  Alcotest.(check (option string)) "second hop" (Some "2.2.2.2")
    (Option.map Ipv4_addr.to_string (Ipv4_options.lsr_next_hop opt2));
  (* The visited slot records the rewriting node. *)
  (match Ipv4_options.parse_lsr opt2 with
  | Some (1, [ recorded; _ ]) ->
      Alcotest.(check string) "recorded route" "9.9.9.9"
        (Ipv4_addr.to_string recorded)
  | _ -> Alcotest.fail "unexpected parse");
  let opt3 = Option.get (Ipv4_options.advance_lsr opt2 ~here:(a "8.8.8.8")) in
  Alcotest.(check bool) "exhausted" true
    (Ipv4_options.lsr_next_hop opt3 = None);
  Alcotest.(check bool) "advance past end refuses" true
    (Ipv4_options.advance_lsr opt3 ~here:(a "7.7.7.7") = None)

let test_bounds () =
  Alcotest.check_raises "empty route"
    (Invalid_argument "Ipv4_options.build_lsr: route must have 1..9 hops")
    (fun () -> ignore (Ipv4_options.build_lsr ~via:[]))

let test_nop_padding_scanned () =
  (* An LSR preceded by NOP bytes is still found. *)
  let opt = Ipv4_options.build_lsr ~via:[ a "1.1.1.1" ] in
  let padded = Bytes.cat (Bytes.make 4 '\001') opt in
  Alcotest.(check bool) "found after NOPs" true
    (Ipv4_options.lsr_next_hop padded <> None)

(* Live: a packet source-routed through an intermediate host reaches the
   final destination, with the detour visible in the trace. *)
let test_lsr_forwarding_live () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let mid = Net.add_host net "mid" in
  let d = Net.add_host net "d" in
  let seg = Net.add_segment net ~name:"lan" () in
  let p = Ipv4_addr.Prefix.of_string "10.0.0.0/24" in
  ignore (Net.attach s seg ~ifname:"eth0" ~addr:(a "10.0.0.1") ~prefix:p);
  ignore (Net.attach mid seg ~ifname:"eth0" ~addr:(a "10.0.0.2") ~prefix:p);
  ignore (Net.attach d seg ~ifname:"eth0" ~addr:(a "10.0.0.3") ~prefix:p);
  let pkt =
    Ipv4_packet.make
      ~options:(Ipv4_options.build_lsr ~via:[ a "10.0.0.3" ])
      ~protocol:Ipv4_packet.P_udp ~src:(a "10.0.0.1") ~dst:(a "10.0.0.2")
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 8 'x')))
  in
  let flow = Net.send s pkt in
  Net.run net;
  Alcotest.(check bool) "delivered at the final destination" true
    (Trace.delivered (Net.trace net) ~flow ~node:"d");
  Alcotest.(check bool) "path went through mid" true
    (List.mem "mid" (Trace.path (Net.trace net) ~flow))

let test_option_slow_path_costs_latency () =
  (* The same payload with and without options across the backbone: the
     optioned one pays each router's penalty. *)
  let run_probe ~with_options =
    let topo = Scenarios.Topo.build () in
    Scenarios.Topo.roam topo ();
    Netsim.Trace.clear (Net.trace topo.Scenarios.Topo.net);
    Mobileip.Mobile_host.pin_method topo.Scenarios.Topo.mh
      ~dst:topo.Scenarios.Topo.ch_addr (Some Mobileip.Grid.Out_DH);
    let options =
      if with_options then
        (* A route that is already exhausted: pure option-bearing load. *)
        Option.get
          (Ipv4_options.advance_lsr
             (Ipv4_options.build_lsr ~via:[ topo.Scenarios.Topo.ch_addr ])
             ~here:(a "10.0.0.1"))
      else Bytes.empty
    in
    let pkt =
      Ipv4_packet.make ~options ~protocol:Ipv4_packet.P_udp
        ~src:topo.Scenarios.Topo.mh_home_addr ~dst:topo.Scenarios.Topo.ch_addr
        (Ipv4_packet.Udp
           (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 64 'o')))
    in
    let flow = Net.send topo.Scenarios.Topo.mh_node pkt in
    Net.run topo.Scenarios.Topo.net;
    let trace = Net.trace topo.Scenarios.Topo.net in
    ( Trace.delivered trace ~flow ~node:"ch",
      match (Trace.send_time trace ~flow, Trace.delivery_time trace ~flow ~node:"ch") with
      | Some t0, Some t1 -> t1 -. t0
      | _ -> Float.nan )
  in
  let ok_plain, t_plain = run_probe ~with_options:false in
  let ok_opt, t_opt = run_probe ~with_options:true in
  Alcotest.(check bool) "both delivered" true (ok_plain && ok_opt);
  (* 4 routers on the path (vr, b3, b2, cr), 1 ms penalty each. *)
  Alcotest.(check (float 0.0005)) "4 ms slower with options" 0.004
    (t_opt -. t_plain)

let test_lsr_does_not_evade_filters () =
  (* §4/A1: the LSR packet's source address is still the home address; an
     ingress filter at the home boundary kills it exactly like Out-DH. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.pin_method topo.Scenarios.Topo.mh
    ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
    (Some Mobileip.Grid.Out_DH);
  let pkt =
    Ipv4_packet.make
      ~options:(Ipv4_options.build_lsr ~via:[ topo.Scenarios.Topo.ch_addr ])
      ~protocol:Ipv4_packet.P_udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 8 'f')))
  in
  let flow = Net.send topo.Scenarios.Topo.mh_node pkt in
  Net.run topo.Scenarios.Topo.net;
  Alcotest.(check bool) "not delivered" false
    (Trace.delivered (Net.trace topo.Scenarios.Topo.net) ~flow ~node:"ch");
  Alcotest.(check bool) "killed by the ingress filter" true
    (List.exists
       (fun (n, r) -> n = "hr" && Trace.drop_reason_equal r Trace.Ingress_filter)
       (Trace.drops (Net.trace topo.Scenarios.Topo.net) ~flow))

let suites =
  [
    ( "lsr",
      [
        Alcotest.test_case "build/parse" `Quick test_build_parse;
        Alcotest.test_case "next hop and advance" `Quick test_next_and_advance;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "nop padding scanned" `Quick test_nop_padding_scanned;
        Alcotest.test_case "live source-routed delivery" `Quick
          test_lsr_forwarding_live;
        Alcotest.test_case "option slow path latency" `Quick
          test_option_slow_path_costs_latency;
        Alcotest.test_case "lsr does not evade filters" `Quick
          test_lsr_does_not_evade_filters;
      ] );
  ]
