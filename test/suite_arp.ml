(* ARP behaviour: resolution, caching, proxy ARP, gratuitous ARP,
   unresolvable destinations, and MAC address utilities. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let lan_world () =
  let net = Net.create () in
  let h1 = Net.add_host net "h1" in
  let h2 = Net.add_host net "h2" in
  let h3 = Net.add_host net "h3" in
  let seg = Net.add_segment net ~name:"lan" () in
  let i1 = Net.attach h1 seg ~ifname:"eth0" ~addr:(a "10.0.0.1") ~prefix:(p "10.0.0.0/24") in
  let i2 = Net.attach h2 seg ~ifname:"eth0" ~addr:(a "10.0.0.2") ~prefix:(p "10.0.0.0/24") in
  let i3 = Net.attach h3 seg ~ifname:"eth0" ~addr:(a "10.0.0.3") ~prefix:(p "10.0.0.0/24") in
  (net, (h1, i1), (h2, i2), (h3, i3))

let send_udp net h ~dst =
  let udp = Transport.Udp_service.get h in
  let flow =
    Transport.Udp_service.send udp ~dst ~src_port:1000 ~dst_port:2000
      (Bytes.make 8 'a')
  in
  Net.run net;
  flow

let test_mac_utilities () =
  let m = Mac_addr.of_string "02:00:00:00:ab:cd" in
  Alcotest.(check string) "roundtrip" "02:00:00:00:ab:cd" (Mac_addr.to_string m);
  Alcotest.(check bool) "broadcast" true (Mac_addr.is_broadcast Mac_addr.broadcast);
  Alcotest.(check bool) "fresh are distinct" true
    (not (Mac_addr.equal (Mac_addr.fresh ()) (Mac_addr.fresh ())));
  Alcotest.check_raises "bad string"
    (Invalid_argument "Mac_addr.of_string: \"zz:00:00:00:00:00\"") (fun () ->
      ignore (Mac_addr.of_string "zz:00:00:00:00:00"))

let test_resolution_and_cache () =
  let net, (h1, _), (h2, i2), _ = lan_world () in
  Alcotest.(check bool) "cold cache" true (Net.arp_lookup h1 (a "10.0.0.2") = None);
  let flow = send_udp net h1 ~dst:(a "10.0.0.2") in
  Alcotest.(check bool) "delivered" true
    (Trace.delivered (Net.trace net) ~flow ~node:"h2");
  (match Net.arp_lookup h1 (a "10.0.0.2") with
  | Some m ->
      Alcotest.(check string) "cached MAC is h2's"
        (Mac_addr.to_string (Option.get (Net.iface_mac i2)))
        (Mac_addr.to_string m)
  | None -> Alcotest.fail "no cache entry");
  (* The responder also learned the requester from the ARP request. *)
  Alcotest.(check bool) "h2 learned h1" true
    (Net.arp_lookup h2 (a "10.0.0.1") <> None)

let test_unresolvable_dropped () =
  let net, (h1, _), _, _ = lan_world () in
  let flow = send_udp net h1 ~dst:(a "10.0.0.99") in
  let drops = Trace.drops (Net.trace net) ~flow in
  Alcotest.(check bool) "arp-unresolved drop" true
    (List.exists
       (fun (n, r) -> n = "h1" && Trace.drop_reason_equal r Trace.Arp_unresolved)
       drops)

let test_proxy_arp_captures_traffic () =
  let net, (h1, _), (h2, i2), _ = lan_world () in
  (* h2 proxies for 10.0.0.50 (an absent host). *)
  Net.add_proxy_arp h2 i2 (a "10.0.0.50");
  Net.claim_address h2 (a "10.0.0.50");
  let flow = send_udp net h1 ~dst:(a "10.0.0.50") in
  Alcotest.(check bool) "captured by the proxy" true
    (Trace.delivered (Net.trace net) ~flow ~node:"h2")

let test_gratuitous_arp_redirects () =
  let net, (h1, _), (_h2, i2), (h3, i3) = lan_world () in
  (* h1 talks to h2 and caches its MAC.  Then h3 gratuitously claims
     10.0.0.2 (the mobility handover trick): h1's next packet goes to
     h3. *)
  ignore (send_udp net h1 ~dst:(a "10.0.0.2"));
  ignore (Net.iface_mac i2);
  Net.claim_address h3 (a "10.0.0.2");
  Net.gratuitous_arp h3 i3 (a "10.0.0.2");
  Net.run net;
  (match Net.arp_lookup h1 (a "10.0.0.2") with
  | Some m ->
      Alcotest.(check string) "cache now points at h3"
        (Mac_addr.to_string (Option.get (Net.iface_mac i3)))
        (Mac_addr.to_string m)
  | None -> Alcotest.fail "cache lost");
  let flow = send_udp net h1 ~dst:(a "10.0.0.2") in
  Alcotest.(check bool) "traffic redirected to h3" true
    (Trace.delivered (Net.trace net) ~flow ~node:"h3")

let test_remove_proxy_arp () =
  let net, (h1, _), (h2, i2), _ = lan_world () in
  Net.add_proxy_arp h2 i2 (a "10.0.0.50");
  Net.remove_proxy_arp h2 i2 (a "10.0.0.50");
  let flow = send_udp net h1 ~dst:(a "10.0.0.50") in
  Alcotest.(check bool) "no longer answered" false
    (Trace.delivered (Net.trace net) ~flow ~node:"h2")

let test_neighbour_scan () =
  let _net, (h1, _), (_, i2), _ = lan_world () in
  (match Net.neighbour_on_segment h1 (a "10.0.0.2") with
  | Some (own_iface, m) ->
      Alcotest.(check string) "neighbour mac"
        (Mac_addr.to_string (Option.get (Net.iface_mac i2)))
        (Mac_addr.to_string m);
      Alcotest.(check string) "via our eth0" "eth0" (Net.iface_name own_iface)
  | None -> Alcotest.fail "neighbour not found");
  Alcotest.(check bool) "absent neighbour" true
    (Net.neighbour_on_segment h1 (a "10.0.0.99") = None)

let test_clear_arp () =
  let net, (h1, _), _, _ = lan_world () in
  ignore (send_udp net h1 ~dst:(a "10.0.0.2"));
  Net.clear_arp h1;
  Alcotest.(check bool) "flushed" true (Net.arp_lookup h1 (a "10.0.0.2") = None)

let suites =
  [
    ( "arp",
      [
        Alcotest.test_case "mac utilities" `Quick test_mac_utilities;
        Alcotest.test_case "resolution and caching" `Quick
          test_resolution_and_cache;
        Alcotest.test_case "unresolvable dropped" `Quick
          test_unresolvable_dropped;
        Alcotest.test_case "proxy arp captures traffic" `Quick
          test_proxy_arp_captures_traffic;
        Alcotest.test_case "gratuitous arp redirects" `Quick
          test_gratuitous_arp_redirects;
        Alcotest.test_case "remove proxy arp" `Quick test_remove_proxy_arp;
        Alcotest.test_case "neighbour scan" `Quick test_neighbour_scan;
        Alcotest.test_case "clear arp" `Quick test_clear_arp;
      ] );
  ]
