(* Lossy links, registration keepalive, the cellular attachment, and the
   metrics helpers. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let test_loss_is_deterministic () =
  let run_once () =
    let net = Net.create () in
    let s = Net.add_host net "s" in
    let d = Net.add_host net "d" in
    let _ =
      Net.p2p net ~loss:0.3 ~loss_seed:42 ~prefix:(p "10.0.0.0/30")
        (s, "if0", a "10.0.0.1") (d, "if0", a "10.0.0.2")
    in
    let udp_d = Transport.Udp_service.get d in
    let got = ref 0 in
    Transport.Udp_service.listen udp_d ~port:7 (fun _ _ -> incr got);
    let udp_s = Transport.Udp_service.get s in
    for i = 0 to 49 do
      ignore
        (Transport.Udp_service.send udp_s ~dst:(a "10.0.0.2")
           ~src_port:(48000 + i) ~dst_port:7 (Bytes.make 16 'z'))
    done;
    Net.run net;
    !got
  in
  let first = run_once () in
  let second = run_once () in
  Alcotest.(check int) "same seed, same outcome" first second;
  Alcotest.(check bool)
    (Printf.sprintf "roughly 30%% lost (got %d/50)" first)
    true
    (first > 25 && first < 45)

let test_loss_drops_traced () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let d = Net.add_host net "d" in
  let _ =
    Net.p2p net ~loss:0.5 ~loss_seed:7 ~prefix:(p "10.0.0.0/30")
      (s, "if0", a "10.0.0.1") (d, "if0", a "10.0.0.2")
  in
  let udp_s = Transport.Udp_service.get s in
  for i = 0 to 19 do
    ignore
      (Transport.Udp_service.send udp_s ~dst:(a "10.0.0.2")
         ~src_port:(48100 + i) ~dst_port:7 (Bytes.make 16 'z'))
  done;
  Net.run net;
  let losses =
    List.assoc_opt Trace.Link_loss (Scenarios.Metrics.drops_by_reason net)
  in
  Alcotest.(check bool) "link-loss drops recorded" true
    (match losses with Some n -> n > 0 | None -> false)

let test_loss_rate_validated () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let d = Net.add_host net "d" in
  Alcotest.check_raises "rate 1.0 rejected"
    (Invalid_argument "Net: loss rate must be < 1.0") (fun () ->
      ignore
        (Net.p2p net ~loss:1.0 ~prefix:(p "10.0.0.0/30")
           (s, "if0", a "10.0.0.1") (d, "if0", a "10.0.0.2")))

let test_tcp_survives_lossy_path () =
  (* Retransmission makes a 20%-lossy path usable — the reliability
     argument the paper leans on for the transition window. *)
  let net = Net.create () in
  let c = Net.add_host net "c" in
  let s = Net.add_host net "s" in
  let _ =
    Net.p2p net ~latency:0.005 ~loss:0.2 ~loss_seed:99
      ~prefix:(p "10.0.0.0/30")
      (c, "if0", a "10.0.0.1") (s, "if0", a "10.0.0.2")
  in
  let tc = Transport.Tcp.get c in
  let ts = Transport.Tcp.get s in
  let got = Buffer.create 256 in
  Transport.Tcp.listen ts ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d -> Buffer.add_bytes got d));
  let conn = Transport.Tcp.connect tc ~dst:(a "10.0.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn (Bytes.make 2000 'L');
  Net.run net;
  Alcotest.(check int) "all bytes despite loss" 2000 (Buffer.length got);
  Alcotest.(check bool) "retransmissions occurred" true
    (Transport.Tcp.retransmissions conn > 0)

let test_registration_survives_lossy_visited_net () =
  (* The registration protocol's own retry loop copes with a lossy access
     segment: a minimal world with the visited segment dropping 30% of
     frames. *)
  let net = Net.create () in
  let ha_node = Net.add_host net "ha" in
  let mh_node = Net.add_host net "mh" in
  let r = Net.add_router net "r" in
  let home_seg = Net.add_segment net ~name:"home" () in
  let visited_seg = Net.add_segment net ~name:"visited" ~loss:0.3 ~loss_seed:5 () in
  let ha_iface =
    Net.attach ha_node home_seg ~ifname:"eth0" ~addr:(a "36.1.0.2")
      ~prefix:(p "36.1.0.0/16")
  in
  ignore
    (Net.attach r home_seg ~ifname:"home" ~addr:(a "36.1.0.1")
       ~prefix:(p "36.1.0.0/16"));
  ignore
    (Net.attach r visited_seg ~ifname:"visited" ~addr:(a "131.7.0.1")
       ~prefix:(p "131.7.0.0/16"));
  let mh_iface =
    Net.attach mh_node home_seg ~ifname:"eth0" ~addr:(a "36.1.0.5")
      ~prefix:(p "36.1.0.0/16")
  in
  Routing.add_default (Net.routing ha_node) ~gateway:(a "36.1.0.1") ~iface:"eth0";
  Routing.add_default (Net.routing mh_node) ~gateway:(a "36.1.0.1") ~iface:"eth0";
  let _ha = Mobileip.Home_agent.create ha_node ~home_iface:ha_iface () in
  let mh =
    Mobileip.Mobile_host.create mh_node ~iface:mh_iface ~home:(a "36.1.0.5")
      ~home_prefix:(p "36.1.0.0/16") ~home_agent:(a "36.1.0.2") ()
  in
  let ok = ref None in
  Mobileip.Mobile_host.move_to_static mh visited_seg ~addr:(a "131.7.0.100")
    ~prefix:(p "131.7.0.0/16") ~gateway:(a "131.7.0.1")
    ~on_registered:(fun b -> ok := Some b)
    ();
  Net.run net;
  Alcotest.(check (option bool)) "registered despite 30% loss" (Some true) !ok;
  Alcotest.(check bool) "took more than one attempt" true
    (Mobileip.Mobile_host.registration_attempts mh >= 1)

let test_keepalive_outlives_lifetime () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.enable_keepalive topo.Scenarios.Topo.mh ~margin:30.0
    ~max_renewals:3 ();
  (* The binding's lifetime is 300 s; idle events past 3 renewals mean the
     binding stays valid out to ~4 lifetimes. *)
  let eng = Net.engine topo.Scenarios.Topo.net in
  let alive_at = ref [] in
  List.iter
    (fun t ->
      Engine.after eng t (fun () ->
          alive_at :=
            (t,
              Mobileip.Home_agent.binding_for topo.Scenarios.Topo.ha
                topo.Scenarios.Topo.mh_home_addr
              <> None)
            :: !alive_at))
    [ 100.0; 400.0; 700.0; 1000.0 ];
  Scenarios.Topo.run topo;
  List.iter
    (fun (t, alive) ->
      Alcotest.(check bool)
        (Printf.sprintf "binding alive at t=%.0f" t)
        true alive)
    !alive_at

let test_no_keepalive_expires () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let eng = Net.engine topo.Scenarios.Topo.net in
  let alive = ref true in
  Engine.after eng 400.0 (fun () ->
      alive :=
        Mobileip.Home_agent.binding_for topo.Scenarios.Topo.ha
          topo.Scenarios.Topo.mh_home_addr
        <> None);
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "binding gone after lifetime without keepalive" false
    !alive

let test_keepalive_cancelled_by_movement () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.enable_keepalive topo.Scenarios.Topo.mh ~max_renewals:5 ();
  Scenarios.Topo.come_home topo;
  let before = Mobileip.Mobile_host.registration_attempts topo.Scenarios.Topo.mh in
  (* Idle long enough that stale renewal timers would have fired. *)
  Engine.after (Net.engine topo.Scenarios.Topo.net) 600.0 (fun () -> ());
  Scenarios.Topo.run topo;
  Alcotest.(check int) "no ghost renewals after coming home" before
    (Mobileip.Mobile_host.registration_attempts topo.Scenarios.Topo.mh)

let test_cellular_attachment () =
  let topo = Scenarios.Topo.build ~with_cellular:true () in
  let ok = ref None in
  Scenarios.Topo.roam_cellular topo ~on_registered:(fun b -> ok := Some b) ();
  Alcotest.(check (option bool)) "registered over cellular" (Some true) !ok;
  (match Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh with
  | Some coa ->
      Alcotest.(check bool) "coa from the cellular pool" true
        (Ipv4_addr.Prefix.mem coa (Ipv4_addr.Prefix.of_string "166.4.0.0/16"))
  | None -> Alcotest.fail "no care-of");
  (* Reachable via tunnel, but slowly: the access link adds 300+ ms RTT. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let rtt = ref None in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt:r -> rtt := Some r);
  Scenarios.Topo.run topo;
  match !rtt with
  | Some r -> Alcotest.(check bool) "cellular-scale rtt" true (r > 0.3)
  | None ->
      (* The 2% loss can eat the single ping; the registration above
         already proves connectivity.  Retry once. *)
      Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
        (fun ~rtt:r -> rtt := Some r);
      Scenarios.Topo.run topo;
      Alcotest.(check bool) "cellular-scale rtt (retry)" true
        (match !rtt with Some r -> r > 0.3 | None -> false)

let test_away_to_away_movement () =
  (* Moving directly between two foreign networks (visited Ethernet ->
     cellular) must work: the DHCP broadcast on the new segment goes out
     plain even though the location state still describes the old one
     (regression: the route override used to tunnel the broadcast). *)
  let topo = Scenarios.Topo.build ~with_cellular:true () in
  Scenarios.Topo.roam topo ();
  Alcotest.(check (option string)) "on visited ethernet" (Some "131.7.0.100")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh));
  let ok = ref None in
  Scenarios.Topo.roam_cellular topo ~on_registered:(fun b -> ok := Some b) ();
  Alcotest.(check (option bool)) "re-registered from cellular" (Some true) !ok;
  (match Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh with
  | Some coa ->
      Alcotest.(check bool) "care-of now cellular" true
        (Ipv4_addr.Prefix.mem coa (p "166.4.0.0/16"))
  | None -> Alcotest.fail "no care-of");
  match Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha with
  | [ b ] ->
      Alcotest.(check bool) "binding follows the host" true
        (Ipv4_addr.Prefix.mem b.Mobileip.Types.care_of (p "166.4.0.0/16"))
  | _ -> Alcotest.fail "expected exactly one binding"

let test_ethernet_vs_cellular_session_quality () =
  (* The §1 motivation for switching attachments: the same telnet workload
     is an order of magnitude slower over the cellular link. *)
  let session roamer =
    let topo = Scenarios.Topo.build ~with_cellular:true () in
    roamer topo;
    Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
      ~port:Transport.Well_known.telnet;
    let stats =
      Scenarios.Workload.tcp_echo_session ~net:topo.Scenarios.Topo.net
        ~client:topo.Scenarios.Topo.mh_node
        ~server_addr:topo.Scenarios.Topo.ch_addr
        ~port:Transport.Well_known.telnet
        ~src:topo.Scenarios.Topo.mh_home_addr ~messages:5 ~spacing:0.1 ()
    in
    stats
  in
  let eth = session (fun topo -> Scenarios.Topo.roam topo ()) in
  let cell = session (fun topo -> Scenarios.Topo.roam_cellular topo ()) in
  Alcotest.(check int) "ethernet session completes" 5
    eth.Scenarios.Workload.messages_echoed;
  Alcotest.(check int) "cellular session completes" 5
    cell.Scenarios.Workload.messages_echoed;
  Alcotest.(check bool)
    (Printf.sprintf "cellular much slower (%.2fs vs %.2fs)"
       cell.Scenarios.Workload.elapsed eth.Scenarios.Workload.elapsed)
    true
    (cell.Scenarios.Workload.elapsed > 2.0 *. eth.Scenarios.Workload.elapsed)

let test_metrics_helpers () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt:_ -> ());
  Scenarios.Topo.run topo;
  let net = topo.Scenarios.Topo.net in
  Alcotest.(check bool) "total >= backbone" true
    (Scenarios.Metrics.total_bytes net >= Scenarios.Metrics.backbone_bytes net);
  Alcotest.(check bool) "backbone carried the ping" true
    (Scenarios.Metrics.backbone_bytes net > 0);
  Alcotest.(check bool) "home access link used" true
    (Scenarios.Metrics.bytes_on net ~link:"hr<->b0" > 0);
  Alcotest.(check bool) "mh delivered something" true
    (Scenarios.Metrics.delivered_count net ~node:"mh" > 0);
  Alcotest.(check int) "unknown link is zero" 0
    (Scenarios.Metrics.bytes_on net ~link:"no-such-link")

let suites =
  [
    ( "resilience",
      [
        Alcotest.test_case "loss is deterministic" `Quick
          test_loss_is_deterministic;
        Alcotest.test_case "loss drops traced" `Quick test_loss_drops_traced;
        Alcotest.test_case "loss rate validated" `Quick test_loss_rate_validated;
        Alcotest.test_case "tcp survives lossy path" `Quick
          test_tcp_survives_lossy_path;
        Alcotest.test_case "registration over lossy access" `Quick
          test_registration_survives_lossy_visited_net;
        Alcotest.test_case "keepalive outlives lifetime" `Quick
          test_keepalive_outlives_lifetime;
        Alcotest.test_case "no keepalive: binding expires" `Quick
          test_no_keepalive_expires;
        Alcotest.test_case "keepalive cancelled by movement" `Quick
          test_keepalive_cancelled_by_movement;
        Alcotest.test_case "cellular attachment" `Quick test_cellular_attachment;
        Alcotest.test_case "away-to-away movement" `Quick
          test_away_to_away_movement;
        Alcotest.test_case "ethernet vs cellular session" `Quick
          test_ethernet_vs_cellular_session_quality;
        Alcotest.test_case "metrics helpers" `Quick test_metrics_helpers;
      ] );
  ]
