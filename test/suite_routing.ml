(* Routing tables: longest-prefix match, metrics, removal, and a property
   against a reference implementation. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let table_of routes =
  let t = Routing.create () in
  List.iter
    (fun (prefix, gateway, iface, metric) ->
      Routing.add t ~metric ?gateway ~prefix:(p prefix) ~iface ())
    routes;
  t

let lookup_iface t dst =
  Option.map (fun r -> r.Routing.iface) (Routing.lookup t (a dst))

let test_longest_prefix_wins () =
  let t =
    table_of
      [
        ("10.0.0.0/8", None, "coarse", 0);
        ("10.1.0.0/16", None, "finer", 0);
        ("10.1.2.0/24", None, "finest", 0);
      ]
  in
  Alcotest.(check (option string)) "/24" (Some "finest")
    (lookup_iface t "10.1.2.3");
  Alcotest.(check (option string)) "/16" (Some "finer")
    (lookup_iface t "10.1.9.9");
  Alcotest.(check (option string)) "/8" (Some "coarse")
    (lookup_iface t "10.200.0.1");
  Alcotest.(check (option string)) "miss" None (lookup_iface t "11.0.0.1")

let test_default_route () =
  let t = table_of [ ("36.1.0.0/16", None, "lan", 0) ] in
  Routing.add_default t ~gateway:(a "10.0.0.1") ~iface:"wan";
  Alcotest.(check (option string)) "specific" (Some "lan")
    (lookup_iface t "36.1.5.5");
  Alcotest.(check (option string)) "default" (Some "wan")
    (lookup_iface t "200.1.1.1")

let test_metric_tiebreak () =
  let t =
    table_of
      [ ("10.0.0.0/8", None, "expensive", 10); ("10.0.0.0/8", None, "cheap", 1) ]
  in
  Alcotest.(check (option string)) "lower metric wins" (Some "cheap")
    (lookup_iface t "10.1.1.1")

let test_remove_prefix () =
  let t = table_of [ ("10.0.0.0/8", None, "x", 0); ("10.1.0.0/16", None, "y", 0) ] in
  Routing.remove t ~prefix:(p "10.1.0.0/16") ();
  Alcotest.(check (option string)) "fallback to /8" (Some "x")
    (lookup_iface t "10.1.1.1");
  Alcotest.(check int) "one route left" 1 (List.length (Routing.routes t))

let test_remove_iface () =
  let t =
    table_of
      [
        ("10.0.0.0/8", None, "eth0", 0);
        ("20.0.0.0/8", None, "eth0", 0);
        ("30.0.0.0/8", None, "eth1", 0);
      ]
  in
  Routing.remove_iface t ~iface:"eth0";
  Alcotest.(check int) "only eth1 remains" 1 (List.length (Routing.routes t));
  Alcotest.(check (option string)) "eth1 still routes" (Some "eth1")
    (lookup_iface t "30.1.1.1")

let test_gateway_returned () =
  let t = table_of [ ("0.0.0.0/0", Some (a "10.0.0.1"), "wan", 0) ] in
  match Routing.lookup t (a "99.0.0.1") with
  | Some r ->
      Alcotest.(check (option string)) "gateway" (Some "10.0.0.1")
        (Option.map Ipv4_addr.to_string r.Routing.gateway)
  | None -> Alcotest.fail "no route"

(* Reference LPM: scan all routes, filter matching, pick max bits then min
   metric. *)
let reference_lookup routes dst =
  let matching =
    List.filter (fun (prefix, _, _) -> Ipv4_addr.Prefix.mem dst prefix) routes
  in
  List.fold_left
    (fun best ((prefix, metric, _) as r) ->
      match best with
      | None -> Some r
      | Some (bp, bm, _) ->
          let b = Ipv4_addr.Prefix.bits prefix and bb = Ipv4_addr.Prefix.bits bp in
          if b > bb || (b = bb && metric < bm) then Some r else best)
    None matching

let arb_prefix =
  QCheck.map
    (fun ((x, y), bits) ->
      Ipv4_addr.Prefix.make (Ipv4_addr.of_octets x y 0 0) bits)
    QCheck.(pair (pair (0 -- 255) (0 -- 255)) (0 -- 24))

let prop_matches_reference =
  QCheck.Test.make ~name:"lookup agrees with reference LPM" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 15) (pair arb_prefix (0 -- 3)))
        (pair (0 -- 255) (0 -- 255)))
    (fun (routes, (x, y)) ->
      let dst = Ipv4_addr.of_octets x y 1 1 in
      let t = Routing.create () in
      let tagged =
        List.mapi
          (fun i (prefix, metric) ->
            let iface = Printf.sprintf "if%d" i in
            Routing.add t ~metric ~prefix ~iface ();
            (prefix, metric, iface))
          routes
      in
      match (Routing.lookup t dst, reference_lookup tagged dst) with
      | None, None -> true
      | Some r, Some (bp, bm, _) ->
          (* The chosen route must be as specific and as cheap as the
             reference (several routes may tie). *)
          Ipv4_addr.Prefix.bits r.Routing.prefix = Ipv4_addr.Prefix.bits bp
          && r.Routing.metric = bm
          && Ipv4_addr.Prefix.mem dst r.Routing.prefix
      | _ -> false)

let test_newest_wins_tiebreak () =
  let t = table_of [ ("10.0.0.0/8", None, "older", 5) ] in
  Routing.add t ~metric:5 ~prefix:(p "10.0.0.0/8") ~iface:"newer" ();
  Alcotest.(check (option string)) "equal metric: newest wins" (Some "newer")
    (lookup_iface t "10.9.9.9")

let test_remove_filters () =
  let routes =
    [
      ("10.0.0.0/8", None, "eth0", 1);
      ("10.0.0.0/8", None, "eth1", 2);
      ("10.0.0.0/8", None, "eth2", 3);
    ]
  in
  let t = table_of routes in
  Routing.remove t ~iface:"eth1" ~prefix:(p "10.0.0.0/8") ();
  Alcotest.(check int) "iface filter removes one" 2
    (List.length (Routing.routes t));
  Alcotest.(check (option string)) "cheapest survivor wins" (Some "eth0")
    (lookup_iface t "10.1.1.1");
  Routing.remove t ~metric:3 ~prefix:(p "10.0.0.0/8") ();
  Alcotest.(check int) "metric filter removes one" 1
    (List.length (Routing.routes t));
  let t2 = table_of routes in
  Routing.remove t2 ~prefix:(p "10.0.0.0/8") ();
  Alcotest.(check int) "no filter removes all at prefix" 0
    (List.length (Routing.routes t2));
  let t3 = table_of routes in
  Routing.remove t3 ~iface:"nope" ~prefix:(p "10.0.0.0/8") ();
  Alcotest.(check int) "unmatched filter removes nothing" 3
    (List.length (Routing.routes t3))

let test_lookup_cache_invalidation () =
  let t = table_of [ ("10.0.0.0/8", None, "coarse", 0) ] in
  Alcotest.(check (option string)) "warm the cache" (Some "coarse")
    (lookup_iface t "10.1.2.3");
  Routing.add t ~metric:0 ~prefix:(p "10.1.0.0/16") ~iface:"fine" ();
  Alcotest.(check (option string)) "add invalidates" (Some "fine")
    (lookup_iface t "10.1.2.3");
  Alcotest.(check (option string)) "repeat (cached) lookup" (Some "fine")
    (lookup_iface t "10.1.2.3");
  Routing.remove t ~prefix:(p "10.1.0.0/16") ();
  Alcotest.(check (option string)) "remove invalidates" (Some "coarse")
    (lookup_iface t "10.1.2.3");
  Routing.clear t;
  Alcotest.(check (option string)) "clear invalidates" None
    (lookup_iface t "10.1.2.3")

let prop_matches_reference_after_removes =
  QCheck.Test.make ~name:"lookup agrees with reference after removals"
    ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 15) (pair arb_prefix (0 -- 3)))
        (list_of_size Gen.(0 -- 10) (0 -- 14))
        (pair (0 -- 255) (0 -- 255)))
    (fun (routes, removals, (x, y)) ->
      let dst = Ipv4_addr.of_octets x y 1 1 in
      let t = Routing.create () in
      let tagged =
        List.mapi
          (fun i (prefix, metric) ->
            let iface = Printf.sprintf "if%d" i in
            Routing.add t ~metric ~prefix ~iface ();
            (prefix, metric, iface))
          routes
      in
      let doomed = List.filter_map (fun i -> List.nth_opt tagged i) removals in
      List.iter
        (fun (prefix, _, iface) ->
          (* Churn the one-entry cache between mutations. *)
          ignore (Routing.lookup t dst);
          Routing.remove t ~iface ~prefix ())
        doomed;
      let remaining =
        List.filter
          (fun (_, _, i) -> not (List.exists (fun (_, _, j) -> j = i) doomed))
          tagged
      in
      match (Routing.lookup t dst, reference_lookup remaining dst) with
      | None, None -> true
      | Some r, Some (bp, bm, _) ->
          Ipv4_addr.Prefix.bits r.Routing.prefix = Ipv4_addr.Prefix.bits bp
          && r.Routing.metric = bm
          && Ipv4_addr.Prefix.mem dst r.Routing.prefix
      | _ -> false)

let suites =
  [
    ( "routing",
      [
        Alcotest.test_case "longest prefix wins" `Quick test_longest_prefix_wins;
        Alcotest.test_case "default route" `Quick test_default_route;
        Alcotest.test_case "metric tiebreak" `Quick test_metric_tiebreak;
        Alcotest.test_case "remove prefix" `Quick test_remove_prefix;
        Alcotest.test_case "remove iface" `Quick test_remove_iface;
        Alcotest.test_case "gateway returned" `Quick test_gateway_returned;
        Alcotest.test_case "newest wins tiebreak" `Quick
          test_newest_wins_tiebreak;
        Alcotest.test_case "remove with iface/metric filters" `Quick
          test_remove_filters;
        Alcotest.test_case "lookup cache invalidation" `Quick
          test_lookup_cache_invalidation;
        QCheck_alcotest.to_alcotest prop_matches_reference;
        QCheck_alcotest.to_alcotest prop_matches_reference_after_removes;
      ] );
  ]
