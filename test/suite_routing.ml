(* Routing tables: longest-prefix match, metrics, removal, and a property
   against a reference implementation. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let table_of routes =
  let t = Routing.create () in
  List.iter
    (fun (prefix, gateway, iface, metric) ->
      Routing.add t ~metric ?gateway ~prefix:(p prefix) ~iface ())
    routes;
  t

let lookup_iface t dst =
  Option.map (fun r -> r.Routing.iface) (Routing.lookup t (a dst))

let test_longest_prefix_wins () =
  let t =
    table_of
      [
        ("10.0.0.0/8", None, "coarse", 0);
        ("10.1.0.0/16", None, "finer", 0);
        ("10.1.2.0/24", None, "finest", 0);
      ]
  in
  Alcotest.(check (option string)) "/24" (Some "finest")
    (lookup_iface t "10.1.2.3");
  Alcotest.(check (option string)) "/16" (Some "finer")
    (lookup_iface t "10.1.9.9");
  Alcotest.(check (option string)) "/8" (Some "coarse")
    (lookup_iface t "10.200.0.1");
  Alcotest.(check (option string)) "miss" None (lookup_iface t "11.0.0.1")

let test_default_route () =
  let t = table_of [ ("36.1.0.0/16", None, "lan", 0) ] in
  Routing.add_default t ~gateway:(a "10.0.0.1") ~iface:"wan";
  Alcotest.(check (option string)) "specific" (Some "lan")
    (lookup_iface t "36.1.5.5");
  Alcotest.(check (option string)) "default" (Some "wan")
    (lookup_iface t "200.1.1.1")

let test_metric_tiebreak () =
  let t =
    table_of
      [ ("10.0.0.0/8", None, "expensive", 10); ("10.0.0.0/8", None, "cheap", 1) ]
  in
  Alcotest.(check (option string)) "lower metric wins" (Some "cheap")
    (lookup_iface t "10.1.1.1")

let test_remove_prefix () =
  let t = table_of [ ("10.0.0.0/8", None, "x", 0); ("10.1.0.0/16", None, "y", 0) ] in
  Routing.remove t ~prefix:(p "10.1.0.0/16");
  Alcotest.(check (option string)) "fallback to /8" (Some "x")
    (lookup_iface t "10.1.1.1");
  Alcotest.(check int) "one route left" 1 (List.length (Routing.routes t))

let test_remove_iface () =
  let t =
    table_of
      [
        ("10.0.0.0/8", None, "eth0", 0);
        ("20.0.0.0/8", None, "eth0", 0);
        ("30.0.0.0/8", None, "eth1", 0);
      ]
  in
  Routing.remove_iface t ~iface:"eth0";
  Alcotest.(check int) "only eth1 remains" 1 (List.length (Routing.routes t));
  Alcotest.(check (option string)) "eth1 still routes" (Some "eth1")
    (lookup_iface t "30.1.1.1")

let test_gateway_returned () =
  let t = table_of [ ("0.0.0.0/0", Some (a "10.0.0.1"), "wan", 0) ] in
  match Routing.lookup t (a "99.0.0.1") with
  | Some r ->
      Alcotest.(check (option string)) "gateway" (Some "10.0.0.1")
        (Option.map Ipv4_addr.to_string r.Routing.gateway)
  | None -> Alcotest.fail "no route"

(* Reference LPM: scan all routes, filter matching, pick max bits then min
   metric. *)
let reference_lookup routes dst =
  let matching =
    List.filter (fun (prefix, _, _) -> Ipv4_addr.Prefix.mem dst prefix) routes
  in
  List.fold_left
    (fun best ((prefix, metric, _) as r) ->
      match best with
      | None -> Some r
      | Some (bp, bm, _) ->
          let b = Ipv4_addr.Prefix.bits prefix and bb = Ipv4_addr.Prefix.bits bp in
          if b > bb || (b = bb && metric < bm) then Some r else best)
    None matching

let arb_prefix =
  QCheck.map
    (fun ((x, y), bits) ->
      Ipv4_addr.Prefix.make (Ipv4_addr.of_octets x y 0 0) bits)
    QCheck.(pair (pair (0 -- 255) (0 -- 255)) (0 -- 24))

let prop_matches_reference =
  QCheck.Test.make ~name:"lookup agrees with reference LPM" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 15) (pair arb_prefix (0 -- 3)))
        (pair (0 -- 255) (0 -- 255)))
    (fun (routes, (x, y)) ->
      let dst = Ipv4_addr.of_octets x y 1 1 in
      let t = Routing.create () in
      let tagged =
        List.mapi
          (fun i (prefix, metric) ->
            let iface = Printf.sprintf "if%d" i in
            Routing.add t ~metric ~prefix ~iface ();
            (prefix, metric, iface))
          routes
      in
      match (Routing.lookup t dst, reference_lookup tagged dst) with
      | None, None -> true
      | Some r, Some (bp, bm, _) ->
          (* The chosen route must be as specific and as cheap as the
             reference (several routes may tie). *)
          Ipv4_addr.Prefix.bits r.Routing.prefix = Ipv4_addr.Prefix.bits bp
          && r.Routing.metric = bm
          && Ipv4_addr.Prefix.mem dst r.Routing.prefix
      | _ -> false)

let suites =
  [
    ( "routing",
      [
        Alcotest.test_case "longest prefix wins" `Quick test_longest_prefix_wins;
        Alcotest.test_case "default route" `Quick test_default_route;
        Alcotest.test_case "metric tiebreak" `Quick test_metric_tiebreak;
        Alcotest.test_case "remove prefix" `Quick test_remove_prefix;
        Alcotest.test_case "remove iface" `Quick test_remove_iface;
        Alcotest.test_case "gateway returned" `Quick test_gateway_returned;
        QCheck_alcotest.to_alcotest prop_matches_reference;
      ] );
  ]
