(* The observability layer: metrics registry semantics, snapshot
   determinism, JSON parsing/printing, JSONL round-trips of trace events,
   the per-flow trace index, engine statistics, flow spans, and an
   integration test exporting a real world's trace. *)

open Netsim

let addr = Ipv4_addr.of_string

(* ---------- metrics ---------- *)

let test_counter () =
  let reg = Netobs.Metrics.create () in
  let c = Netobs.Metrics.counter reg "packets_total" in
  Netobs.Metrics.incr c;
  Netobs.Metrics.incr ~by:5 c;
  Alcotest.(check int) "incr" 6 (Netobs.Metrics.counter_value c);
  (* find-or-create: same name is the same instrument *)
  Netobs.Metrics.incr (Netobs.Metrics.counter reg "packets_total");
  Alcotest.(check int) "shared" 7 (Netobs.Metrics.counter_value c)

let test_gauge () =
  let reg = Netobs.Metrics.create () in
  let g = Netobs.Metrics.gauge reg "depth" in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Netobs.Metrics.gauge_value g);
  Netobs.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Netobs.Metrics.gauge_value g)

let hist_view reg name =
  match
    List.find_opt
      (fun s -> s.Netobs.Metrics.name = name)
      (Netobs.Metrics.snapshot reg)
  with
  | Some { Netobs.Metrics.value = Netobs.Metrics.Histogram h; _ } -> h
  | _ -> Alcotest.failf "histogram %s not in snapshot" name

let test_histogram () =
  let reg = Netobs.Metrics.create () in
  let h =
    Netobs.Metrics.histogram reg ~buckets:[| 1.0; 10.0; 100.0 |] "lat"
  in
  List.iter (Netobs.Metrics.observe h) [ 0.5; 5.0; 10.0; 50.0; 500.0 ];
  let v = hist_view reg "lat" in
  Alcotest.(check (list int))
    "bucket counts (upper bounds inclusive)" [ 1; 2; 1 ]
    (Array.to_list (Array.map snd v.Netobs.Metrics.buckets));
  Alcotest.(check int) "overflow" 1 v.Netobs.Metrics.overflow;
  Alcotest.(check int) "count" 5 v.Netobs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 565.5 v.Netobs.Metrics.sum;
  Alcotest.(check (float 0.0)) "min" 0.5 v.Netobs.Metrics.minimum;
  Alcotest.(check (float 0.0)) "max" 500.0 v.Netobs.Metrics.maximum

let test_kind_clash () =
  let reg = Netobs.Metrics.create () in
  ignore (Netobs.Metrics.counter reg "x");
  Alcotest.(check bool) "gauge over counter rejected" true
    (try
       ignore (Netobs.Metrics.gauge reg "x");
       false
     with Invalid_argument _ -> true)

let test_snapshot_deterministic () =
  let reg = Netobs.Metrics.create () in
  (* Registration order must not matter. *)
  Netobs.Metrics.set (Netobs.Metrics.gauge reg "zeta") 1.0;
  Netobs.Metrics.incr (Netobs.Metrics.counter reg "alpha");
  ignore (Netobs.Metrics.histogram reg "mid");
  let names =
    List.map (fun s -> s.Netobs.Metrics.name) (Netobs.Metrics.snapshot reg)
  in
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] names;
  let render () =
    Netobs.Json.to_string
      (Netobs.Metrics.snapshot_to_json (Netobs.Metrics.snapshot reg))
  in
  Alcotest.(check string) "stable rendering" (render ()) (render ())

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let v =
    Netobs.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 0.0215);
          ("whole_float", Float 3.0);
          ("string", String "a\"b\\c\nd\te\001f");
          ("list", List [ Int 1; String "x"; Obj [ ("k", Bool false) ] ]);
        ])
  in
  match Netobs.Json.of_string (Netobs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Netobs.Json.of_string s)))
    [ "{"; "tru"; "1 2"; "[1,]"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_whitespace () =
  match Netobs.Json.of_string "  { \"a\" : [ 1 , 2.5 , \"x\\n\" ] }  " with
  | Ok j ->
      Alcotest.(check bool) "parsed" true
        (Netobs.Json.member "a" j
        = Some
            (Netobs.Json.List
               [ Netobs.Json.Int 1; Netobs.Json.Float 2.5;
                 Netobs.Json.String "x\n" ]))
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ---------- trace events: JSONL round trip ---------- *)

let udp_packet ?(size = 32) () =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(addr "36.1.0.5")
    ~dst:(addr "44.2.0.10")
    (Ipv4_packet.Udp
       (Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make size 'x')))

let tunneled_packet () =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_ipip ~src:(addr "36.1.0.2")
    ~dst:(addr "131.7.0.100")
    (Ipv4_packet.Encap (udp_packet ()))

let icmp_error_packet () =
  let context = Icmp_wire.quote_context (Ipv4_packet.encode (udp_packet ())) in
  Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src:(addr "10.0.0.1")
    ~dst:(addr "44.2.0.10")
    (Ipv4_packet.Icmp
       (Icmp_wire.Dest_unreachable
          { code = Icmp_wire.Admin_prohibited; context }))

let sample_trace () =
  let t = Trace.create () in
  let frame id flow pkt = { Trace.id; flow; pkt } in
  let plain = frame 1 7 (udp_packet ()) in
  let outer = frame 2 7 (tunneled_packet ()) in
  Trace.record t ~time:0.0 (Trace.Send { node = "ch"; frame = plain });
  Trace.record t ~time:0.001
    (Trace.Transmit { link = "home-lan"; frame = plain; bytes = 60 });
  Trace.record t ~time:0.002
    (Trace.Forward
       { node = "hr"; in_iface = "if0"; out_iface = "if1"; frame = plain });
  Trace.record t ~time:0.003 (Trace.Encapsulate { node = "ha"; frame = outer });
  Trace.record t ~time:0.004
    (Trace.Transmit { link = "b0<->b1"; frame = outer; bytes = 80 });
  Trace.record t ~time:0.005
    (Trace.Drop { node = "vr"; reason = Trace.Firewall "policy-7"; frame = outer });
  Trace.record t ~time:0.006
    (Trace.Drop { node = "vr"; reason = Trace.Ttl_expired; frame = outer });
  Trace.record t ~time:0.007 (Trace.Decapsulate { node = "mh"; frame = plain });
  Trace.record t ~time:0.008 (Trace.Deliver { node = "mh"; frame = plain });
  Trace.record t ~time:0.009
    (Trace.Icmp_error
       {
         node = "hr";
         reason = Trace.Ingress_filter;
         frame = frame 3 7 (icmp_error_packet ());
       });
  t

let test_event_json_roundtrip () =
  List.iter
    (fun (r : Trace.record) ->
      let line = Netobs.Export.line_of_record r in
      match Netobs.Json.of_string line with
      | Error e -> Alcotest.failf "line does not parse: %s (%s)" e line
      | Ok j -> (
          match Netobs.Export.record_of_json j with
          | Error e -> Alcotest.failf "record does not rebuild: %s" e
          | Ok r' ->
              Alcotest.(check bool)
                (Printf.sprintf "round trip at t=%g" r.Trace.time)
                true (r = r')))
    (Trace.records (sample_trace ()))

(* ---------- the per-flow trace index ---------- *)

let test_flow_index () =
  let t = sample_trace () in
  let other = { Trace.id = 9; flow = 8; pkt = udp_packet () } in
  Trace.record t ~time:0.010
    (Trace.Transmit { link = "home-lan"; frame = other; bytes = 44 });
  Alcotest.(check (list int)) "flows" [ 7; 8 ] (Trace.flows t);
  Alcotest.(check int) "flow 7 transmissions" 2 (Trace.transmissions t ~flow:7);
  Alcotest.(check int) "flow 7 wire bytes" 140 (Trace.wire_bytes t ~flow:7);
  Alcotest.(check int) "flow 8 wire bytes" 44 (Trace.wire_bytes t ~flow:8);
  (* flow_records must equal a filter of the full log, in order *)
  let expected =
    List.filter
      (fun r -> (Trace.frame_of r.Trace.event).Trace.flow = 7)
      (Trace.records t)
  in
  Alcotest.(check bool) "flow_records = ordered filter" true
    (Trace.flow_records t ~flow:7 = expected);
  Alcotest.(check int) "drops indexed" 2
    (List.length (Trace.drops t ~flow:7));
  Trace.clear t;
  Alcotest.(check (list int)) "clear resets index" [] (Trace.flows t);
  Alcotest.(check int) "clear resets counters" 0 (Trace.transmissions t ~flow:7)

let test_trace_sink () =
  let seen = ref 0 in
  Trace.set_sink (Some (fun _ -> incr seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      let t = sample_trace () in
      Alcotest.(check int) "sink saw every record" (Trace.length t) !seen)

(* ---------- spans ---------- *)

let test_span () =
  let t = sample_trace () in
  let s = Netobs.Span.of_flow t ~flow:7 in
  Alcotest.(check (float 1e-9)) "latency" 0.008
    (Option.get s.Netobs.Span.latency);
  Alcotest.(check int) "transmissions" 2 s.Netobs.Span.transmissions;
  Alcotest.(check int) "wire bytes" 140 s.Netobs.Span.wire_bytes;
  Alcotest.(check int) "encap depth" 1 s.Netobs.Span.encap_depth;
  Alcotest.(check int) "drops" 2 (List.length s.Netobs.Span.drops);
  Alcotest.(check (list string)) "delivered to" [ "mh" ]
    s.Netobs.Span.delivered_to;
  Alcotest.(check int) "one span per flow" 1
    (List.length (Netobs.Span.all t))

(* ---------- engine stats ---------- *)

let test_engine_stats () =
  let e = Engine.create () in
  let rec chain n =
    if n > 0 then Engine.after e 0.1 (fun () -> chain (n - 1))
  in
  chain 10;
  Engine.run ~max_events:5 e;
  let st = Engine.stats e in
  Alcotest.(check int) "executed" 5 st.Engine.executed;
  Alcotest.(check int) "still pending" 1 st.Engine.pending;
  Alcotest.(check int) "truncation observable" 1 st.Engine.truncated;
  Alcotest.(check bool) "max depth tracked" true (st.Engine.max_pending >= 1);
  let observed = ref None in
  Engine.set_observer e (Some (fun st -> observed := Some st));
  Engine.run e;
  let st = Engine.stats e in
  Alcotest.(check int) "chain finished" 10 st.Engine.executed;
  Alcotest.(check int) "no new truncation" 1 st.Engine.truncated;
  Alcotest.(check int) "drained" 0 st.Engine.pending;
  (match !observed with
  | Some o -> Alcotest.(check int) "observer saw final stats" 10 o.Engine.executed
  | None -> Alcotest.fail "observer not called");
  Alcotest.(check bool) "sim time advanced" true (st.Engine.sim_time > 0.9)

(* ---------- integration: a real world's trace exports and re-parses ---- *)

let test_trace_jsonl_integration () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref false in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt:_ -> got := true);
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "ping delivered" true !got;
  let trace = Netsim.Net.trace topo.Scenarios.Topo.net in
  let file = Filename.temp_file "mobility4x4" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      let written = Netobs.Export.write_trace_jsonl oc trace in
      close_out oc;
      Alcotest.(check int) "line count = Trace.length" (Trace.length trace)
        written;
      let ic = open_in file in
      let parsed = Netobs.Export.read_trace_jsonl ic in
      close_in ic;
      match parsed with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok rs ->
          Alcotest.(check int) "all lines re-parse" written (List.length rs);
          Alcotest.(check bool) "records identical" true
            (rs = Trace.records trace))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "kind clash" `Quick test_kind_clash;
        Alcotest.test_case "snapshot deterministic" `Quick
          test_snapshot_deterministic;
        Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "json whitespace" `Quick test_json_whitespace;
        Alcotest.test_case "trace event jsonl round trip" `Quick
          test_event_json_roundtrip;
        Alcotest.test_case "per-flow index" `Quick test_flow_index;
        Alcotest.test_case "trace sink" `Quick test_trace_sink;
        Alcotest.test_case "flow span" `Quick test_span;
        Alcotest.test_case "engine stats" `Quick test_engine_stats;
        Alcotest.test_case "trace jsonl integration" `Quick
          test_trace_jsonl_integration;
      ] );
  ]
