(* Registration protocol: codecs, authentication, sequence handling at the
   home agent, lifetime clamping, deregistration. *)

open Netsim

let a = Ipv4_addr.of_string

let req =
  {
    Mobileip.Registration.home = a "36.1.0.5";
    home_agent = a "36.1.0.2";
    care_of = a "131.7.0.100";
    lifetime = 300;
    sequence = 7;
  }

let test_request_roundtrip () =
  let wire = Mobileip.Registration.encode_request ~key:"k1" req in
  match Mobileip.Registration.decode_request ~key:"k1" wire with
  | Ok r -> Alcotest.(check bool) "equal" true (r = req)
  | Error e -> Alcotest.fail e

let test_request_wrong_key () =
  let wire = Mobileip.Registration.encode_request ~key:"k1" req in
  match Mobileip.Registration.decode_request ~key:"k2" wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"

let test_request_tamper_detected () =
  let wire = Mobileip.Registration.encode_request ~key:"k1" req in
  (* Flip a bit in the care-of address field. *)
  Bytes.set wire 10 (Char.chr (Char.code (Bytes.get wire 10) lxor 1));
  match Mobileip.Registration.decode_request ~key:"k1" wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampering not detected"

(* Known digests, computed independently of the implementation (FNV-1a
   32-bit fold of key..body..key).  These pin the wire format: any change
   to the mixing, masking or key placement breaks them. *)
let test_authenticator_known_vectors () =
  let auth key body =
    Mobileip.Registration.authenticator ~key (Bytes.of_string body)
  in
  Alcotest.(check int) "empty body, key=secret" 0xaf88c2d5 (auth "secret" "");
  Alcotest.(check int) "abc, key=secret" 0xa7d8fa87 (auth "secret" "abc");
  Alcotest.(check int) "mobile-ip, key=k1" 0x222985f3 (auth "k1" "mobile-ip");
  (* Regression for the 31-bit mask bug: this digest has bit 31 set, which
     the old [land 0x7fffffff] mixing mask pinned to zero (halving the
     digest keyspace the 32-bit wire field is supposed to carry). *)
  let top = auth "secret" "\x00" in
  Alcotest.(check int) "top-bit digest value" 0xf5315863 top;
  Alcotest.(check bool) "bit 31 reachable" true (top land 0x80000000 <> 0)

let test_top_bit_digest_survives_wire () =
  (* The standard test request with sequence 0 digests (key "k1") to
     0xf7f73aa2 — top bit set.  It must round-trip through the 32-bit
     wire field and still verify. *)
  let req0 = { req with Mobileip.Registration.sequence = 0 } in
  let wire = Mobileip.Registration.encode_request ~key:"k1" req0 in
  let auth_on_wire =
    (Char.code (Bytes.get wire 17) lsl 24)
    lor (Char.code (Bytes.get wire 18) lsl 16)
    lor (Char.code (Bytes.get wire 19) lsl 8)
    lor Char.code (Bytes.get wire 20)
  in
  Alcotest.(check int) "wire digest" 0xf7f73aa2 auth_on_wire;
  match Mobileip.Registration.decode_request ~key:"k1" wire with
  | Ok r -> Alcotest.(check bool) "roundtrips" true (r = req0)
  | Error e -> Alcotest.fail e

let test_reply_roundtrip () =
  let reply =
    {
      Mobileip.Registration.r_home = a "36.1.0.5";
      r_care_of = a "131.7.0.100";
      r_lifetime = 120;
      r_sequence = 7;
      r_code = Mobileip.Types.Reg_accepted;
    }
  in
  let wire = Mobileip.Registration.encode_reply ~key:"k" reply in
  match Mobileip.Registration.decode_reply ~key:"k" wire with
  | Ok r -> Alcotest.(check bool) "equal" true (r = reply)
  | Error e -> Alcotest.fail e

let test_peek_functions () =
  let wire = Mobileip.Registration.encode_request ~key:"whatever" req in
  Alcotest.(check bool) "is_request" true (Mobileip.Registration.is_request wire);
  Alcotest.(check bool) "not is_reply" false (Mobileip.Registration.is_reply wire);
  Alcotest.(check (option string)) "peek home" (Some "36.1.0.5")
    (Option.map Ipv4_addr.to_string (Mobileip.Registration.peek_request_home wire));
  Alcotest.(check (option string)) "peek ha" (Some "36.1.0.2")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Registration.peek_request_home_agent wire))

let test_request_reply_distinguished () =
  let wire = Mobileip.Registration.encode_request ~key:"k" req in
  match Mobileip.Registration.decode_reply ~key:"k" wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request decoded as reply"

(* ---- home-agent behaviour, driven through the wire ---- *)

let send_raw topo payload =
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  ignore
    (Transport.Udp_service.send udp
       ~src:
         (Option.get
            (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh))
       ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
       ~src_port:Transport.Well_known.mip_registration
       ~dst_port:Transport.Well_known.mip_registration payload);
  Scenarios.Topo.run topo

let test_stale_sequence_denied () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  let current =
    match Mobileip.Home_agent.bindings ha with
    | [ b ] -> b
    | _ -> Alcotest.fail "expected one binding"
  in
  let denied_before = Mobileip.Home_agent.registrations_denied ha in
  (* Replay an old sequence number: must be rejected, binding unchanged. *)
  let stale =
    {
      Mobileip.Registration.home = topo.Scenarios.Topo.mh_home_addr;
      home_agent = Mobileip.Home_agent.address ha;
      care_of = a "131.7.0.250";
      lifetime = 300;
      sequence = current.Mobileip.Types.sequence;
    }
  in
  send_raw topo (Mobileip.Registration.encode_request ~key:"secret" stale);
  Alcotest.(check int) "denied incremented" (denied_before + 1)
    (Mobileip.Home_agent.registrations_denied ha);
  (match Mobileip.Home_agent.bindings ha with
  | [ b ] ->
      Alcotest.(check string) "care-of unchanged" "131.7.0.100"
        (Ipv4_addr.to_string b.Mobileip.Types.care_of)
  | _ -> Alcotest.fail "binding lost")

let test_lifetime_clamped () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  let fresh =
    {
      Mobileip.Registration.home = topo.Scenarios.Topo.mh_home_addr;
      home_agent = Mobileip.Home_agent.address ha;
      care_of = a "131.7.0.100";
      lifetime = 65000;
      sequence = 100;
    }
  in
  send_raw topo (Mobileip.Registration.encode_request ~key:"secret" fresh);
  match Mobileip.Home_agent.bindings ha with
  | [ b ] ->
      Alcotest.(check (float 0.01)) "granted max 600s" 600.0
        b.Mobileip.Types.lifetime
  | _ -> Alcotest.fail "no binding"

let test_newer_sequence_updates_coa () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  let update =
    {
      Mobileip.Registration.home = topo.Scenarios.Topo.mh_home_addr;
      home_agent = Mobileip.Home_agent.address ha;
      care_of = a "131.7.0.222";
      lifetime = 300;
      sequence = 99;
    }
  in
  send_raw topo (Mobileip.Registration.encode_request ~key:"secret" update);
  match Mobileip.Home_agent.bindings ha with
  | [ b ] ->
      Alcotest.(check string) "care-of updated" "131.7.0.222"
        (Ipv4_addr.to_string b.Mobileip.Types.care_of)
  | _ -> Alcotest.fail "no binding"

let test_retransmitted_request_idempotent () =
  (* A lost reply makes the MH resend the same sequence number; the HA
     must accept the retransmission rather than deny it as stale
     (regression: discovered by the lossy-cellular scenario). *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  let current =
    match Mobileip.Home_agent.bindings ha with
    | [ b ] -> b
    | _ -> Alcotest.fail "expected one binding"
  in
  let accepted_before = Mobileip.Home_agent.registrations_accepted ha in
  let replay =
    {
      Mobileip.Registration.home = topo.Scenarios.Topo.mh_home_addr;
      home_agent = Mobileip.Home_agent.address ha;
      care_of = current.Mobileip.Types.care_of;
      lifetime = 300;
      sequence = current.Mobileip.Types.sequence;
    }
  in
  send_raw topo (Mobileip.Registration.encode_request ~key:"secret" replay);
  Alcotest.(check int) "accepted again" (accepted_before + 1)
    (Mobileip.Home_agent.registrations_accepted ha);
  Alcotest.(check int) "still exactly one binding" 1
    (List.length (Mobileip.Home_agent.bindings ha))

let test_binding_lifetime_lazy_expiry () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  Alcotest.(check bool) "bound" true
    (Mobileip.Home_agent.binding_for ha topo.Scenarios.Topo.mh_home_addr <> None);
  (* Push simulated time past the lifetime and consult again. *)
  let eng = Net.engine topo.Scenarios.Topo.net in
  Engine.after eng 1000.0 (fun () -> ());
  Net.run topo.Scenarios.Topo.net;
  Alcotest.(check bool) "expired lazily" true
    (Mobileip.Home_agent.binding_for ha topo.Scenarios.Topo.mh_home_addr = None)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"registration request codec roundtrip" ~count:200
    QCheck.(
      pair
        (quad (0 -- 255) (0 -- 255) (0 -- 65535) (0 -- 65535))
        (string_of_size Gen.(1 -- 16)))
    (fun ((x, y, lifetime, sequence), key) ->
      let r =
        {
          Mobileip.Registration.home = Ipv4_addr.of_octets 36 x y 5;
          home_agent = Ipv4_addr.of_octets 36 1 0 2;
          care_of = Ipv4_addr.of_octets 131 y x 9;
          lifetime;
          sequence;
        }
      in
      match
        Mobileip.Registration.decode_request ~key
          (Mobileip.Registration.encode_request ~key r)
      with
      | Ok r' -> r = r'
      | Error _ -> false)

let suites =
  [
    ( "registration",
      [
        Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        Alcotest.test_case "wrong key rejected" `Quick test_request_wrong_key;
        Alcotest.test_case "tampering detected" `Quick
          test_request_tamper_detected;
        Alcotest.test_case "authenticator known vectors" `Quick
          test_authenticator_known_vectors;
        Alcotest.test_case "top-bit digest survives the wire" `Quick
          test_top_bit_digest_survives_wire;
        Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
        Alcotest.test_case "peek functions" `Quick test_peek_functions;
        Alcotest.test_case "request/reply distinguished" `Quick
          test_request_reply_distinguished;
        Alcotest.test_case "stale sequence denied" `Quick
          test_stale_sequence_denied;
        Alcotest.test_case "lifetime clamped" `Quick test_lifetime_clamped;
        Alcotest.test_case "newer sequence updates coa" `Quick
          test_newer_sequence_updates_coa;
        Alcotest.test_case "retransmitted request idempotent" `Quick
          test_retransmitted_request_idempotent;
        Alcotest.test_case "binding lazy expiry" `Quick
          test_binding_lifetime_lazy_expiry;
        QCheck_alcotest.to_alcotest prop_codec_roundtrip;
      ] );
  ]
