(* Fragmentation and reassembly: boundaries, DF, holes, reordering,
   duplicates, interleaving, expiry, and a qcheck identity property. *)

open Netsim

let a = Ipv4_addr.of_string
let src = a "1.2.3.4"
let dst = a "5.6.7.8"

let raw_pkt ?(ident = 7) n =
  Ipv4_packet.make ~ident ~protocol:(Ipv4_packet.P_other 99) ~src ~dst
    (Ipv4_packet.Raw (Bytes.init n (fun i -> Char.chr (i land 0xff))))

let udp_pkt n =
  Ipv4_packet.make ~ident:9 ~protocol:Ipv4_packet.P_udp ~src ~dst
    (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make n 'd')))

let fragment_exn ~mtu pkt =
  match Fragment.fragment ~mtu pkt with
  | Ok frags -> frags
  | Error e -> Alcotest.failf "fragment: %a" Fragment.pp_error e

let test_fits_returns_singleton () =
  let pkt = raw_pkt 100 in
  match fragment_exn ~mtu:1500 pkt with
  | [ only ] -> Alcotest.(check bool) "unchanged" true (Ipv4_packet.equal pkt only)
  | l -> Alcotest.failf "expected 1 fragment, got %d" (List.length l)

let test_exact_mtu_not_fragmented () =
  let pkt = raw_pkt 1480 in
  Alcotest.(check int) "exactly mtu" 1500 (Ipv4_packet.byte_length pkt);
  Alcotest.(check int) "one piece" 1 (List.length (fragment_exn ~mtu:1500 pkt))

let test_one_byte_over () =
  let pkt = raw_pkt 1481 in
  let frags = fragment_exn ~mtu:1500 pkt in
  Alcotest.(check int) "two pieces" 2 (List.length frags);
  List.iter
    (fun f ->
      Alcotest.(check bool) "each within mtu" true
        (Ipv4_packet.byte_length f <= 1500))
    frags;
  (* Offsets are in 8-byte units and contiguous. *)
  match frags with
  | [ f1; f2 ] ->
      Alcotest.(check int) "first offset" 0 f1.Ipv4_packet.frag_offset;
      Alcotest.(check bool) "first has MF" true f1.Ipv4_packet.more_fragments;
      Alcotest.(check bool) "second has no MF" false f2.Ipv4_packet.more_fragments;
      Alcotest.(check int) "contiguous"
        (Ipv4_packet.payload_byte_length f1.Ipv4_packet.payload / 8)
        f2.Ipv4_packet.frag_offset
  | _ -> assert false

let test_source_routed_fragmentation () =
  (* RFC 791: only options with the copy bit travel in every fragment.
     Build a packet carrying both an LSR option (type 131 — copy bit set)
     and a record-route-style option (type 7 — no copy bit). *)
  let lsr_opt = Ipv4_options.build_lsr ~via:[ a "9.9.9.9" ] in
  let rr = Bytes.of_string "\x07\x04\x00\x00" in
  let options = Bytes.cat lsr_opt rr in
  let pkt = { (raw_pkt 64) with Ipv4_packet.options } in
  let frags = fragment_exn ~mtu:40 pkt in
  Alcotest.(check bool) "actually fragmented" true (List.length frags > 1);
  let expected_tail = Ipv4_options.copied_options options in
  List.iteri
    (fun i f ->
      if i = 0 then
        Alcotest.(check bytes) "first fragment keeps all options" options
          f.Ipv4_packet.options
      else begin
        Alcotest.(check bytes)
          (Printf.sprintf "fragment %d carries only copied options" i)
          expected_tail f.Ipv4_packet.options;
        (* The route must still be readable on every fragment — that is
           the point of the copy bit. *)
        Alcotest.(check bool)
          (Printf.sprintf "fragment %d LSR parseable" i)
          true
          (Ipv4_options.parse_lsr f.Ipv4_packet.options <> None)
      end)
    frags;
  (* Reassembly restores the full option set from the first fragment. *)
  let r = Fragment.Reassembly.create () in
  let whole =
    List.fold_left
      (fun acc f ->
        match Fragment.Reassembly.add r ~now:0.0 f with
        | Some w -> Some w
        | None -> acc)
      None frags
  in
  match whole with
  | None -> Alcotest.fail "did not reassemble"
  | Some w ->
      Alcotest.(check bytes) "reassembled options" options
        w.Ipv4_packet.options;
      Alcotest.(check bool) "reassembled payload" true
        (w.Ipv4_packet.payload = pkt.Ipv4_packet.payload)

let test_df_refused () =
  let pkt = { (raw_pkt 2000) with Ipv4_packet.dont_fragment = true } in
  match Fragment.fragment ~mtu:1500 pkt with
  | Error Fragment.Dont_fragment -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Fragment.pp_error e
  | Ok _ -> Alcotest.fail "DF ignored"

let test_tiny_mtu_refused () =
  match Fragment.fragment ~mtu:24 (raw_pkt 100) with
  | Error Fragment.Header_too_big -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Fragment.pp_error e
  | Ok _ -> Alcotest.fail "cannot fit any payload in 24 bytes"

let reassemble frags =
  let r = Fragment.Reassembly.create () in
  List.fold_left
    (fun acc f ->
      match Fragment.Reassembly.add r ~now:0.0 f with
      | Some whole -> Some whole
      | None -> acc)
    None frags

let test_reassemble_in_order () =
  let pkt = udp_pkt 3000 in
  let frags = fragment_exn ~mtu:576 pkt in
  Alcotest.(check bool) "several fragments" true (List.length frags >= 5);
  match reassemble frags with
  | Some whole -> Alcotest.(check bool) "identity" true (Ipv4_packet.equal pkt whole)
  | None -> Alcotest.fail "did not complete"

let test_reassemble_reversed () =
  let pkt = udp_pkt 2500 in
  let frags = List.rev (fragment_exn ~mtu:600 pkt) in
  match reassemble frags with
  | Some whole -> Alcotest.(check bool) "identity" true (Ipv4_packet.equal pkt whole)
  | None -> Alcotest.fail "did not complete"

let test_reassemble_with_duplicates () =
  let pkt = udp_pkt 2000 in
  let frags = fragment_exn ~mtu:576 pkt in
  let with_dups = frags @ [ List.hd frags ] @ frags in
  match reassemble with_dups with
  | Some whole -> Alcotest.(check bool) "identity" true (Ipv4_packet.equal pkt whole)
  | None -> Alcotest.fail "did not complete"

let test_hole_never_completes () =
  let pkt = udp_pkt 3000 in
  let frags = fragment_exn ~mtu:576 pkt in
  let holey = List.filteri (fun i _ -> i <> 2) frags in
  match reassemble holey with
  | None -> ()
  | Some _ -> Alcotest.fail "completed despite a hole"

let test_interleaved_datagrams () =
  (* Two datagrams with different idents interleave without mixing. *)
  let p1 = udp_pkt 2000 in
  let p2 =
    Ipv4_packet.make ~ident:10 ~protocol:Ipv4_packet.P_udp ~src ~dst
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:3 ~dst_port:4 (Bytes.make 2000 'e')))
  in
  let f1 = fragment_exn ~mtu:576 p1 in
  let f2 = fragment_exn ~mtu:576 p2 in
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let r = Fragment.Reassembly.create () in
  let completed = ref [] in
  List.iter
    (fun f ->
      match Fragment.Reassembly.add r ~now:0.0 f with
      | Some whole -> completed := whole :: !completed
      | None -> ())
    (interleave f1 f2);
  Alcotest.(check int) "both completed" 2 (List.length !completed);
  Alcotest.(check bool) "p1 recovered" true
    (List.exists (Ipv4_packet.equal p1) !completed);
  Alcotest.(check bool) "p2 recovered" true
    (List.exists (Ipv4_packet.equal p2) !completed)

let test_expiry () =
  let pkt = udp_pkt 2000 in
  let frags = fragment_exn ~mtu:576 pkt in
  let r = Fragment.Reassembly.create () in
  (match frags with
  | first :: _ -> ignore (Fragment.Reassembly.add r ~now:1.0 first)
  | [] -> assert false);
  Alcotest.(check int) "one pending" 1 (Fragment.Reassembly.pending r);
  Alcotest.(check int) "expired" 1 (Fragment.Reassembly.expire r ~older_than:5.0);
  Alcotest.(check int) "none pending" 0 (Fragment.Reassembly.pending r)

let test_non_fragment_passthrough () =
  let r = Fragment.Reassembly.create () in
  let pkt = udp_pkt 100 in
  match Fragment.Reassembly.add r ~now:0.0 pkt with
  | Some p -> Alcotest.(check bool) "unchanged" true (Ipv4_packet.equal pkt p)
  | None -> Alcotest.fail "swallowed a whole packet"

let prop_fragment_reassemble_identity =
  QCheck.Test.make ~name:"fragment/reassemble identity" ~count:150
    QCheck.(pair (100 -- 5000) (40 -- 1500))
    (fun (size, mtu) ->
      QCheck.assume (mtu >= 48);
      let pkt = udp_pkt size in
      match Fragment.fragment ~mtu pkt with
      | Error _ -> QCheck.assume_fail ()
      | Ok frags -> (
          List.for_all (fun f -> Ipv4_packet.byte_length f <= mtu) frags
          &&
          match reassemble frags with
          | Some whole -> Ipv4_packet.equal pkt whole
          | None -> false))

let prop_fragment_count =
  QCheck.Test.make ~name:"fragment count is ceil(payload/chunk)" ~count:150
    QCheck.(pair (1 -- 8000) (60 -- 1500))
    (fun (size, mtu) ->
      let pkt = raw_pkt size in
      match Fragment.fragment ~mtu pkt with
      | Error _ -> QCheck.assume_fail ()
      | Ok frags ->
          let chunk = (mtu - 20) / 8 * 8 in
          let expected =
            if 20 + size <= mtu then 1 else (size + chunk - 1) / chunk
          in
          List.length frags = expected)

let suites =
  [
    ( "fragment",
      [
        Alcotest.test_case "fits: singleton" `Quick test_fits_returns_singleton;
        Alcotest.test_case "exact mtu boundary" `Quick
          test_exact_mtu_not_fragmented;
        Alcotest.test_case "one byte over" `Quick test_one_byte_over;
        Alcotest.test_case "DF refused" `Quick test_df_refused;
        Alcotest.test_case "source-routed fragmentation (copy bit)" `Quick
          test_source_routed_fragmentation;
        Alcotest.test_case "tiny mtu refused" `Quick test_tiny_mtu_refused;
        Alcotest.test_case "reassemble in order" `Quick test_reassemble_in_order;
        Alcotest.test_case "reassemble reversed" `Quick test_reassemble_reversed;
        Alcotest.test_case "reassemble with duplicates" `Quick
          test_reassemble_with_duplicates;
        Alcotest.test_case "hole never completes" `Quick test_hole_never_completes;
        Alcotest.test_case "interleaved datagrams" `Quick
          test_interleaved_datagrams;
        Alcotest.test_case "expiry" `Quick test_expiry;
        Alcotest.test_case "non-fragment passthrough" `Quick
          test_non_fragment_passthrough;
        QCheck_alcotest.to_alcotest prop_fragment_reassemble_identity;
        QCheck_alcotest.to_alcotest prop_fragment_count;
      ] );
  ]
