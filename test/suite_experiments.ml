(* Smoke tests over the experiment registry: every table builds, has rows,
   and asserts the paper's qualitative claims from its own numbers (the
   deep checks live in the per-topic suites; these guard the harness). *)

let find id =
  match Experiments.Registry.find id with
  | Some f -> f ()
  | None -> Alcotest.failf "experiment %s not registered" id

let test_registry_complete () =
  let ids = List.map (fun (id, _, _) -> id) Experiments.Registry.all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true
        (List.mem expected ids))
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "A1"; "A2";
    ];
  Alcotest.(check bool) "lookup case-insensitive" true
    (Experiments.Registry.find "e8" <> None);
  Alcotest.(check bool) "unknown id rejected" true
    (Experiments.Registry.find "E99" = None)

let test_tables_well_formed () =
  List.iter
    (fun (id, _, run) ->
      let t = run () in
      Alcotest.(check string) (id ^ " id") id t.Experiments.Table.id;
      Alcotest.(check bool) (id ^ " has rows") true
        (t.Experiments.Table.rows <> []);
      let width = List.length t.Experiments.Table.columns in
      List.iter
        (fun row ->
          Alcotest.(check int) (id ^ " row width") width (List.length row))
        t.Experiments.Table.rows;
      (* Rendering must not raise. *)
      let buf = Buffer.create 256 in
      Experiments.Table.render (Format.formatter_of_buffer buf) t;
      Alcotest.(check bool) (id ^ " renders") true (Buffer.length buf > 0))
    Experiments.Registry.all

let cell_of_row t ~row ~col =
  List.nth (List.nth t.Experiments.Table.rows row) col

let test_e2_shape () =
  let t = find "E2" in
  Alcotest.(check string) "Out-DH dies" "0%" (cell_of_row t ~row:0 ~col:1);
  Alcotest.(check string) "Out-IE lives" "100%" (cell_of_row t ~row:1 ~col:1)

let test_e4_monotone () =
  let t = find "E4" in
  let ratios =
    List.map
      (fun row -> float_of_string (List.nth row 5))
      t.Experiments.Table.rows
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "penalty grows with distance to home" true
    (ascending ratios)

let test_e8_grid_classification_consistency () =
  let t = find "E8" in
  Alcotest.(check int) "sixteen rows" 16 (List.length t.Experiments.Table.rows);
  List.iter
    (fun row ->
      let classification = List.nth row 1 in
      let tcp_safe = List.nth row 4 in
      Alcotest.(check bool)
        (List.nth row 0 ^ ": BROKEN iff not tcp-safe")
        (classification = "BROKEN") (tcp_safe = "NO"))
    t.Experiments.Table.rows

let test_e9_doubling_window () =
  let t = find "E9" in
  let effects = List.map (fun row -> (List.hd row, List.nth row 5)) t.Experiments.Table.rows in
  Alcotest.(check (option string)) "1453 doubled" (Some "doubled")
    (List.assoc_opt "1453" effects);
  Alcotest.(check (option string)) "1472 doubled" (Some "doubled")
    (List.assoc_opt "1472" effects);
  Alcotest.(check (option string)) "1452 same" (Some "same")
    (List.assoc_opt "1452" effects);
  Alcotest.(check (option string)) "1600 same" (Some "same")
    (List.assoc_opt "1600" effects)

let test_e13_all_work () =
  let t = find "E13" in
  List.iter
    (fun row ->
      Alcotest.(check string) (List.hd row ^ " works") "yes" (List.nth row 2))
    t.Experiments.Table.rows

let test_e15_monotone_load () =
  let t = find "E15" in
  let backbone row = int_of_string (List.nth (List.nth t.Experiments.Table.rows row) 2) in
  Alcotest.(check bool) "optimization strictly reduces backbone load" true
    (backbone 0 > backbone 1 && backbone 1 > backbone 2)

let test_a1_shape () =
  let t = find "A1" in
  let delivered row = List.nth (List.nth t.Experiments.Table.rows row) 1 in
  Alcotest.(check string) "tunnel works filtered" "yes" (delivered 2);
  Alcotest.(check string) "lsr dies filtered" "NO" (delivered 3)

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "registry complete" `Quick test_registry_complete;
        Alcotest.test_case "all tables well formed" `Slow
          test_tables_well_formed;
        Alcotest.test_case "E2 shape" `Quick test_e2_shape;
        Alcotest.test_case "E4 monotone penalty" `Quick test_e4_monotone;
        Alcotest.test_case "E8 classification consistency" `Slow
          test_e8_grid_classification_consistency;
        Alcotest.test_case "E9 doubling window" `Quick test_e9_doubling_window;
        Alcotest.test_case "E13 chosen cells work" `Quick test_e13_all_work;
        Alcotest.test_case "E15 monotone load" `Quick test_e15_monotone_load;
        Alcotest.test_case "A1 filtering verdicts" `Quick test_a1_shape;
      ] );
  ]
