(* TCP behaviour under loss and teardown: retransmission recovery,
   duplicate feedback, FIN in both directions, RST on unknown segments,
   MSS segmentation. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

(* a --- r --- b; r can be told to drop packets matching a predicate for a
   while (lossy-path harness). *)
let lossy_world () =
  let net = Net.create () in
  let ha = Net.add_host net "a" in
  let r = Net.add_router net "r" in
  let hb = Net.add_host net "b" in
  let _ =
    Net.p2p net ~latency:0.005 ~prefix:(p "10.1.0.0/30")
      (ha, "if0", a "10.1.0.1") (r, "if0", a "10.1.0.2")
  in
  let _ =
    Net.p2p net ~latency:0.005 ~prefix:(p "10.2.0.0/30")
      (r, "if1", a "10.2.0.1") (hb, "if0", a "10.2.0.2")
  in
  Routing.add_default (Net.routing ha) ~gateway:(a "10.1.0.2") ~iface:"if0";
  Routing.add_default (Net.routing hb) ~gateway:(a "10.2.0.1") ~iface:"if0";
  (net, ha, r, hb)

let drop_all_for net r duration =
  Net.set_filter r
    (Filter.of_rules_default_deny ~reason:(Trace.Custom "outage") []);
  Engine.after (Net.engine net) duration (fun () ->
      Net.set_filter r Filter.accept_all)

let test_retransmission_recovers_from_outage () =
  let net, ha, r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let got = Buffer.create 32 in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d -> Buffer.add_bytes got d));
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:80 () in
  Net.run net;
  Alcotest.(check bool) "established" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  (* 3-second outage, shorter than the retry budget (1+2+4+8+16+32 s). *)
  drop_all_for net r 3.0;
  Transport.Tcp.send_data conn (Bytes.of_string "persist");
  Net.run net;
  Alcotest.(check string) "data arrived after the outage" "persist"
    (Buffer.contents got);
  Alcotest.(check bool) "retransmissions happened" true
    (Transport.Tcp.retransmissions conn >= 1);
  Alcotest.(check bool) "still established" true
    (Transport.Tcp.state conn = Transport.Tcp.Established)

let test_duplicate_feedback_surfaced () =
  (* Drop the path only in the a->b direction... simpler: drop everything
     briefly right after data is in flight so the ACK is lost, producing a
     duplicate at b.  We assert b's stack reports a retransmitted receive —
     the §7.1.2 signal. *)
  let net, ha, r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let dup_seen = ref false in
  Transport.Tcp.set_feedback tb
    (Some
       (function
       | Transport.Tcp.Segment_received { retransmission = true; _ } ->
           dup_seen := true
       | _ -> ()));
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun _ -> ()));
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:80 () in
  Net.run net;
  (* Block only b->a (the ACK direction) by filtering on r's b-side
     input. *)
  Net.set_filter r
    (Filter.of_rules
       [
         Filter.deny ~in_iface:"if1" ~reason:(Trace.Custom "ack-outage") ();
       ]);
  Engine.after (Net.engine net) 2.5 (fun () -> Net.set_filter r Filter.accept_all);
  Transport.Tcp.send_data conn (Bytes.of_string "dup-me");
  Net.run net;
  Alcotest.(check bool) "duplicate receive reported" true !dup_seen;
  Alcotest.(check bool) "sender retransmitted" true
    (Transport.Tcp.retransmissions conn >= 1)

let test_clean_close_active_side () =
  let net, ha, _r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let server_conn = ref None in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      server_conn := Some conn;
      Transport.Tcp.on_state_change conn (fun st ->
          (* Passive close: answer FIN with our own close. *)
          if st = Transport.Tcp.Close_wait then Transport.Tcp.close conn));
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn (Bytes.of_string "bye");
  Net.run net;
  Transport.Tcp.close conn;
  Net.run net;
  Alcotest.(check bool) "client closed" true
    (Transport.Tcp.state conn = Transport.Tcp.Closed);
  match !server_conn with
  | Some sc ->
      Alcotest.(check bool) "server closed" true
        (Transport.Tcp.state sc = Transport.Tcp.Closed)
  | None -> Alcotest.fail "no server conn"

let test_rst_on_closed_port () =
  let net, ha, _r, _hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  (* No listener on b:81. *)
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:81 () in
  Net.run net;
  Alcotest.(check bool) "reset" true
    (Transport.Tcp.state conn = Transport.Tcp.Aborted)

let test_mss_segmentation () =
  let net, ha, _r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let chunks = ref 0 in
  let total = ref 0 in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d ->
          incr chunks;
          total := !total + Bytes.length d;
          Alcotest.(check bool) "each chunk within mss" true
            (Bytes.length d <= 536)));
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn (Bytes.make 3000 's');
  Net.run net;
  Alcotest.(check int) "all bytes" 3000 !total;
  Alcotest.(check int) "ceil(3000/536) chunks" 6 !chunks;
  Alcotest.(check int) "delivered counter" 3000
    (match
       List.find_opt
         (fun _ -> true)
         [ Transport.Tcp.bytes_delivered conn ]
     with
    | Some _ ->
        (* client received nothing; check the server side via accept would
           need the conn — recompute from totals instead *)
        3000
    | None -> 0)

let test_custom_mss () =
  let net, ha, _r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let chunks = ref 0 in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun _ -> incr chunks));
  let conn =
    Transport.Tcp.connect ta ~mss:100 ~dst:(a "10.2.0.2") ~dst_port:80 ()
  in
  Transport.Tcp.send_data conn (Bytes.make 1000 'm');
  Net.run net;
  Alcotest.(check int) "10 chunks at mss=100" 10 !chunks

let transfer_time ~window ~loss () =
  let net = Net.create () in
  let c = Net.add_host net "c" in
  let s = Net.add_host net "s" in
  let _ =
    Net.p2p net ~latency:0.05 ?loss:(if loss > 0.0 then Some loss else None)
      ~loss_seed:11 ~prefix:(p "10.0.0.0/30")
      (c, "if0", a "10.0.0.1") (s, "if0", a "10.0.0.2")
  in
  let tc = Transport.Tcp.get c in
  let ts = Transport.Tcp.get s in
  let got = Buffer.create 4096 in
  let finished_at = ref 0.0 in
  Transport.Tcp.listen ts ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun d ->
          Buffer.add_bytes got d;
          (* completion time = when the last byte lands, not when the
             engine drains its trailing cancelled timers *)
          if Buffer.length got >= 8000 then finished_at := Net.now net));
  let conn =
    Transport.Tcp.connect tc ~window ~dst:(a "10.0.0.2") ~dst_port:80 ()
  in
  Transport.Tcp.send_data conn (Bytes.make 8000 'W');
  Net.run net;
  (Buffer.length got, !finished_at, Transport.Tcp.retransmissions conn)

let test_windowed_transfer_faster () =
  (* 8 kB over a 50 ms link: stop-and-wait pays one RTT per 536-byte
     segment; a window of 8 pipelines them. *)
  let bytes1, t1, _ = transfer_time ~window:1 ~loss:0.0 () in
  let bytes8, t8, _ = transfer_time ~window:8 ~loss:0.0 () in
  Alcotest.(check int) "w=1 complete" 8000 bytes1;
  Alcotest.(check int) "w=8 complete" 8000 bytes8;
  Alcotest.(check bool)
    (Printf.sprintf "pipelining speedup (%.2fs vs %.2fs)" t1 t8)
    true
    (t8 < t1 /. 3.0)

let test_windowed_transfer_correct_under_loss () =
  (* Go-back-N over a 10%-lossy link still delivers every byte exactly
     once and in order (the Buffer length proves no duplicates reach the
     application: duplicate segments are dropped by the in-order check). *)
  let bytes, _, retx = transfer_time ~window:8 ~loss:0.1 () in
  Alcotest.(check int) "all bytes, exactly once" 8000 bytes;
  Alcotest.(check bool) "losses triggered retransmission" true (retx > 0)

let test_windowed_interactive_echo () =
  let net, ha, _r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let echoed = ref 0 in
  Transport.Tcp.listen tb ~port:7 (fun conn ->
      Transport.Tcp.on_receive conn (fun d -> Transport.Tcp.send_data conn d));
  let conn =
    Transport.Tcp.connect ta ~window:4 ~dst:(a "10.2.0.2") ~dst_port:7 ()
  in
  Transport.Tcp.on_receive conn (fun _ -> incr echoed);
  for _ = 1 to 6 do
    Transport.Tcp.send_data conn (Bytes.of_string "keystroke")
  done;
  Net.run net;
  Alcotest.(check bool) "all echoed" true (!echoed >= 1);
  Transport.Tcp.close conn;
  Net.run net;
  Alcotest.(check bool) "clean close with window" true
    (Transport.Tcp.state conn = Transport.Tcp.Closed
    || Transport.Tcp.state conn = Transport.Tcp.Fin_wait)

let test_abort_sends_rst () =
  let net, ha, _r, hb = lossy_world () in
  let ta = Transport.Tcp.get ha in
  let tb = Transport.Tcp.get hb in
  let server_state = ref Transport.Tcp.Closed in
  let server_conn = ref None in
  Transport.Tcp.listen tb ~port:80 (fun conn -> server_conn := Some conn);
  let conn = Transport.Tcp.connect ta ~dst:(a "10.2.0.2") ~dst_port:80 () in
  Net.run net;
  Transport.Tcp.abort conn;
  Net.run net;
  (match !server_conn with
  | Some sc -> server_state := Transport.Tcp.state sc
  | None -> Alcotest.fail "no server conn");
  Alcotest.(check bool) "peer saw the reset" true
    (!server_state = Transport.Tcp.Aborted)

let suites =
  [
    ( "tcp",
      [
        Alcotest.test_case "retransmission recovers from outage" `Quick
          test_retransmission_recovers_from_outage;
        Alcotest.test_case "duplicate feedback surfaced" `Quick
          test_duplicate_feedback_surfaced;
        Alcotest.test_case "clean close both sides" `Quick
          test_clean_close_active_side;
        Alcotest.test_case "rst on closed port" `Quick test_rst_on_closed_port;
        Alcotest.test_case "mss segmentation" `Quick test_mss_segmentation;
        Alcotest.test_case "custom mss" `Quick test_custom_mss;
        Alcotest.test_case "abort sends rst" `Quick test_abort_sends_rst;
        Alcotest.test_case "windowed transfer faster" `Quick
          test_windowed_transfer_faster;
        Alcotest.test_case "windowed correct under loss" `Quick
          test_windowed_transfer_correct_under_loss;
        Alcotest.test_case "windowed interactive echo" `Quick
          test_windowed_interactive_echo;
      ] );
  ]
