(* Boundary-router filter policies: each constructor, rule ordering,
   defaults. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let pkt ?(protocol = Ipv4_packet.P_udp) ~src ~dst () =
  Ipv4_packet.make ~protocol ~src:(a src) ~dst:(a dst)
    (Ipv4_packet.Raw Bytes.empty)

let is_pass = function Filter.Pass -> true | Filter.Reject _ -> false

let reject_reason = function
  | Filter.Reject r -> Some r
  | Filter.Pass -> None

let test_accept_all () =
  Alcotest.(check bool) "pass" true
    (is_pass
       (Filter.evaluate Filter.accept_all ~in_iface:"any"
          (pkt ~src:"1.1.1.1" ~dst:"2.2.2.2" ())))

let ingress_policy =
  Filter.of_rules
    [
      Filter.ingress_source_filter ~external_iface:"wan"
        ~inside:[ p "36.1.0.0/16"; p "36.2.0.0/16" ];
    ]

let test_ingress_filter_drops_spoof () =
  let spoof = pkt ~src:"36.1.0.5" ~dst:"36.1.0.9" () in
  match Filter.evaluate ingress_policy ~in_iface:"wan" spoof with
  | Filter.Reject Trace.Ingress_filter -> ()
  | v ->
      Alcotest.failf "expected ingress-filter rejection, got %s"
        (if is_pass v then "pass" else "other rejection")

let test_ingress_filter_scoped_to_iface () =
  (* The same source arriving on the inside interface is normal traffic. *)
  let local = pkt ~src:"36.1.0.5" ~dst:"44.0.0.1" () in
  Alcotest.(check bool) "inside iface passes" true
    (is_pass (Filter.evaluate ingress_policy ~in_iface:"lan" local))

let test_ingress_filter_passes_outside_sources () =
  let normal = pkt ~src:"44.0.0.1" ~dst:"36.1.0.9" () in
  Alcotest.(check bool) "legit outside source passes" true
    (is_pass (Filter.evaluate ingress_policy ~in_iface:"wan" normal))

let test_second_inside_prefix_matched () =
  let spoof2 = pkt ~src:"36.2.7.7" ~dst:"36.1.0.9" () in
  Alcotest.(check bool) "second prefix also filtered" false
    (is_pass (Filter.evaluate ingress_policy ~in_iface:"wan" spoof2))

let no_transit_policy =
  Filter.of_rules
    [ Filter.no_transit ~internal_iface:"lan" ~inside:[ p "131.7.0.0/16" ] ]

let test_no_transit_drops_foreign_source () =
  let foreign = pkt ~src:"36.1.0.5" ~dst:"44.0.0.1" () in
  match Filter.evaluate no_transit_policy ~in_iface:"lan" foreign with
  | Filter.Reject Trace.Transit_filter -> ()
  | _ -> Alcotest.fail "foreign source on tail circuit must drop"

let test_no_transit_passes_local_source () =
  let local = pkt ~src:"131.7.0.100" ~dst:"44.0.0.1" () in
  Alcotest.(check bool) "local source passes" true
    (is_pass (Filter.evaluate no_transit_policy ~in_iface:"lan" local))

let firewall_policy ha =
  Filter.of_rules
    [
      Filter.firewall_allow_tunnel_to ~external_iface:"wan" ~home_agent:(a ha);
      Filter.firewall_block_external ~external_iface:"wan" ~name:"fw";
    ]

let test_firewall_allows_tunnels_to_ha () =
  let policy = firewall_policy "36.1.0.2" in
  let tunnel =
    pkt ~protocol:Ipv4_packet.P_ipip ~src:"131.7.0.100" ~dst:"36.1.0.2" ()
  in
  Alcotest.(check bool) "ipip to HA passes" true
    (is_pass (Filter.evaluate policy ~in_iface:"wan" tunnel));
  let gre =
    pkt ~protocol:Ipv4_packet.P_gre ~src:"131.7.0.100" ~dst:"36.1.0.2" ()
  in
  Alcotest.(check bool) "gre to HA passes" true
    (is_pass (Filter.evaluate policy ~in_iface:"wan" gre))

let test_firewall_blocks_everything_else () =
  let policy = firewall_policy "36.1.0.2" in
  let plain = pkt ~src:"131.7.0.100" ~dst:"36.1.0.9" () in
  (match Filter.evaluate policy ~in_iface:"wan" plain with
  | Filter.Reject (Trace.Firewall _) -> ()
  | _ -> Alcotest.fail "plain packet must be blocked");
  (* A tunnel to a non-HA host is also blocked. *)
  let tunnel_elsewhere =
    pkt ~protocol:Ipv4_packet.P_ipip ~src:"131.7.0.100" ~dst:"36.1.0.9" ()
  in
  Alcotest.(check bool) "tunnel to non-HA blocked" false
    (is_pass (Filter.evaluate policy ~in_iface:"wan" tunnel_elsewhere));
  (* Traffic on the inside interface is unaffected. *)
  let inside = pkt ~src:"36.1.0.9" ~dst:"131.7.0.100" () in
  Alcotest.(check bool) "inside passes" true
    (is_pass (Filter.evaluate policy ~in_iface:"lan" inside))

let test_rule_order_first_match_wins () =
  let policy =
    Filter.of_rules
      [
        Filter.allow ~in_iface:"wan" ~src_in:(p "44.0.0.0/8") ();
        Filter.deny ~in_iface:"wan" ~reason:(Trace.Custom "deny-rest") ();
      ]
  in
  Alcotest.(check bool) "allowed prefix passes" true
    (is_pass
       (Filter.evaluate policy ~in_iface:"wan" (pkt ~src:"44.1.1.1" ~dst:"1.1.1.1" ())));
  Alcotest.(check bool) "everything else denied" false
    (is_pass
       (Filter.evaluate policy ~in_iface:"wan" (pkt ~src:"45.1.1.1" ~dst:"1.1.1.1" ())))

let test_default_deny () =
  let policy =
    Filter.of_rules_default_deny ~reason:(Trace.Custom "closed")
      [ Filter.allow ~protocol:Ipv4_packet.P_icmp () ]
  in
  Alcotest.(check bool) "icmp passes" true
    (is_pass
       (Filter.evaluate policy ~in_iface:"x"
          (pkt ~protocol:Ipv4_packet.P_icmp ~src:"1.1.1.1" ~dst:"2.2.2.2" ())));
  Alcotest.(check bool) "udp denied by default" false
    (is_pass
       (Filter.evaluate policy ~in_iface:"x" (pkt ~src:"1.1.1.1" ~dst:"2.2.2.2" ())))

let suites =
  [
    ( "filter",
      [
        Alcotest.test_case "accept all" `Quick test_accept_all;
        Alcotest.test_case "ingress drops spoof" `Quick
          test_ingress_filter_drops_spoof;
        Alcotest.test_case "ingress scoped to iface" `Quick
          test_ingress_filter_scoped_to_iface;
        Alcotest.test_case "ingress passes outside sources" `Quick
          test_ingress_filter_passes_outside_sources;
        Alcotest.test_case "multiple inside prefixes" `Quick
          test_second_inside_prefix_matched;
        Alcotest.test_case "no-transit drops foreign" `Quick
          test_no_transit_drops_foreign_source;
        Alcotest.test_case "no-transit passes local" `Quick
          test_no_transit_passes_local_source;
        Alcotest.test_case "firewall allows HA tunnels" `Quick
          test_firewall_allows_tunnels_to_ha;
        Alcotest.test_case "firewall blocks the rest" `Quick
          test_firewall_blocks_everything_else;
        Alcotest.test_case "first match wins" `Quick
          test_rule_order_first_match_wins;
        Alcotest.test_case "default deny" `Quick test_default_deny;
      ] );
  ]
