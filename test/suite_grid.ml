(* The 4x4 grid: pure classification tests plus live conversations over
   every cell (Figure 10). *)

open Mobileip

let cell i o = { Grid.incoming = i; outgoing = o }

let test_sixteen_cells () =
  Alcotest.(check int) "sixteen cells" 16 (List.length Grid.all_cells)

let test_seven_useful () =
  Alcotest.(check int) "seven useful cells" 7 (List.length Grid.useful_cells);
  let expect =
    [
      cell Grid.In_IE Grid.Out_IE;
      cell Grid.In_IE Grid.Out_DE;
      cell Grid.In_IE Grid.Out_DH;
      cell Grid.In_DE Grid.Out_DE;
      cell Grid.In_DE Grid.Out_DH;
      cell Grid.In_DH Grid.Out_DH;
      cell Grid.In_DT Grid.Out_DT;
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Grid.cell_to_string c ^ " useful")
        true
        (List.exists (Grid.equal_cell c) Grid.useful_cells))
    expect

let test_broken_cells_are_row4_col4 () =
  List.iter
    (fun c ->
      let expected_broken =
        (c.Grid.incoming = Grid.In_DT) <> (c.Grid.outgoing = Grid.Out_DT)
      in
      Alcotest.(check bool)
        (Grid.cell_to_string c ^ " brokenness")
        expected_broken
        (Grid.classify c = Grid.Broken))
    Grid.all_cells

let test_valid_but_unlikely () =
  let expect =
    [
      cell Grid.In_DE Grid.Out_IE;
      cell Grid.In_DH Grid.Out_IE;
      cell Grid.In_DH Grid.Out_DE;
    ]
  in
  let actual =
    List.filter (fun c -> Grid.classify c = Grid.Valid_but_unlikely) Grid.all_cells
  in
  Alcotest.(check int) "three lightly-shaded cells" 3 (List.length actual);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Grid.cell_to_string c)
        true
        (List.exists (Grid.equal_cell c) actual))
    expect

let test_endpoint_consistency_matches_classification () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Grid.cell_to_string c ^ " consistency iff not broken")
        (Grid.endpoint_consistent c)
        (Grid.classify c <> Grid.Broken))
    Grid.all_cells

(* The series of tests (§6 / abstract). *)
let test_best_choice () =
  let base = Grid.default_environment in
  let check name env expected =
    Alcotest.(check string) name expected (Grid.cell_to_string (Grid.best env))
  in
  check "no mobility needed -> Row D"
    { base with Grid.mobility_required = false }
    "In-DT/Out-DT";
  check "privacy -> full tunneling" { base with Grid.privacy_required = true }
    "In-IE/Out-IE";
  check "same segment -> Row C" { base with Grid.same_segment = true }
    "In-DH/Out-DH";
  check "conventional CH, filtering -> most conservative" base "In-IE/Out-IE";
  check "conventional CH, no filtering -> In-IE/Out-DH"
    { base with Grid.source_filtering_on_path = false }
    "In-IE/Out-DH";
  check "decap-capable CH under filtering -> In-IE/Out-DE"
    { base with Grid.ch_decapsulates = true }
    "In-IE/Out-DE";
  check "mobile-aware CH with coa, no filtering -> In-DE/Out-DH"
    {
      base with
      Grid.ch_mobile_aware = true;
      ch_knows_care_of = true;
      source_filtering_on_path = false;
    }
    "In-DE/Out-DH";
  check "mobile-aware CH with coa, filtering -> In-DE/Out-DE"
    { base with Grid.ch_mobile_aware = true; ch_knows_care_of = true }
    "In-DE/Out-DE"

let test_best_is_always_applicable () =
  (* Exhaustive: over all 128 environments, the chosen cell must be
     applicable and never broken. *)
  let bools = [ false; true ] in
  List.iter
    (fun mobility_required ->
      List.iter
        (fun privacy_required ->
          List.iter
            (fun source_filtering_on_path ->
              List.iter
                (fun ch_decapsulates ->
                  List.iter
                    (fun ch_mobile_aware ->
                      List.iter
                        (fun ch_knows_care_of ->
                          List.iter
                            (fun same_segment ->
                              let env =
                                {
                                  Grid.mobility_required;
                                  privacy_required;
                                  source_filtering_on_path;
                                  ch_decapsulates;
                                  ch_mobile_aware;
                                  ch_knows_care_of;
                                  same_segment;
                                }
                              in
                              let c = Grid.best env in
                              Alcotest.(check bool)
                                (Grid.cell_to_string c ^ " applicable")
                                true
                                (Grid.cell_applicable env c))
                            bools)
                        bools)
                    bools)
                bools)
            bools)
        bools)
    bools

(* ---- live conversations over every cell ---- *)

let build_world ~same_segment () =
  let topo =
    Scenarios.Topo.build
      ~ch_position:
        (if same_segment then Scenarios.Topo.On_visited_segment
         else Scenarios.Topo.Remote)
      ~ch_capability:Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  Netsim.Trace.clear (Netsim.Net.trace topo.Scenarios.Topo.net);
  topo

let run_cell ?(same_segment = false) c =
  let topo = build_world ~same_segment () in
  Conversation.run_udp ~net:topo.Scenarios.Topo.net ~mh:topo.Scenarios.Topo.mh
    ~ch:topo.Scenarios.Topo.ch ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell:c ()

let test_all_cells_delivery_and_consistency () =
  (* Physical delivery should succeed for every cell except the In-DH row
     off-segment; transport consistency must match the grid's verdict. *)
  List.iter
    (fun c ->
      let same_segment = c.Grid.incoming = Grid.In_DH in
      let r = run_cell ~same_segment c in
      let name = Grid.cell_to_string c in
      Alcotest.(check int)
        (name ^ " requests delivered")
        r.Conversation.requests_sent r.Conversation.requests_delivered;
      Alcotest.(check int)
        (name ^ " replies delivered")
        r.Conversation.replies_sent r.Conversation.replies_delivered;
      Alcotest.(check bool)
        (name ^ " transport consistency matches Figure 10")
        (Grid.endpoint_consistent c)
        r.Conversation.transport_consistent)
    Grid.all_cells

let test_in_dh_fails_off_segment () =
  (* In-DH is only applicable on a shared segment: remotely, the CH's
     forced In-DH send is discarded. *)
  let c = cell Grid.In_DH Grid.Out_DH in
  let r = run_cell ~same_segment:false c in
  Alcotest.(check int) "no replies arrive" 0 r.Conversation.replies_delivered

let test_indirect_costs_more_than_direct () =
  (* In-IE replies travel via the home agent: more hops and more wire bytes
     than the Out-DH direct requests. *)
  let r = run_cell (cell Grid.In_IE Grid.Out_DH) in
  Alcotest.(check bool) "reply hops exceed request hops" true
    (r.Conversation.reply_hops > r.Conversation.request_hops);
  Alcotest.(check bool) "reply bytes exceed request bytes" true
    (r.Conversation.reply_wire_bytes > r.Conversation.request_wire_bytes)

let test_encapsulation_overhead_visible () =
  (* Out-IE requests carry 20 extra bytes per packet and go indirect;
     Out-DH requests are plain and direct. *)
  let r_ie = run_cell (cell Grid.In_IE Grid.Out_IE) in
  let r_dh = run_cell (cell Grid.In_IE Grid.Out_DH) in
  Alcotest.(check bool) "Out-IE request travels further" true
    (r_ie.Conversation.request_hops > r_dh.Conversation.request_hops);
  Alcotest.(check bool) "Out-IE request costs more bytes" true
    (r_ie.Conversation.request_wire_bytes
    > r_dh.Conversation.request_wire_bytes)

let test_tcp_over_useful_cells () =
  (* A real TCP echo works over every useful remote cell. *)
  let remote_useful =
    List.filter (fun c -> c.Grid.incoming <> Grid.In_DH) Grid.useful_cells
  in
  List.iter
    (fun c ->
      let topo = build_world ~same_segment:false () in
      let r =
        Conversation.run_tcp ~net:topo.Scenarios.Topo.net
          ~mh:topo.Scenarios.Topo.mh ~ch:topo.Scenarios.Topo.ch
          ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell:c ()
      in
      let name = Grid.cell_to_string c in
      Alcotest.(check bool) (name ^ " connected") true r.Conversation.connected;
      Alcotest.(check bool) (name ^ " echoed") true r.Conversation.echoed)
    remote_useful

let test_tcp_over_same_segment_cell () =
  let topo = build_world ~same_segment:true () in
  let r =
    Conversation.run_tcp ~net:topo.Scenarios.Topo.net ~mh:topo.Scenarios.Topo.mh
      ~ch:topo.Scenarios.Topo.ch ~ch_addr:topo.Scenarios.Topo.ch_addr
      ~cell:(cell Grid.In_DH Grid.Out_DH) ()
  in
  Alcotest.(check bool) "In-DH/Out-DH tcp works" true
    (r.Conversation.connected && r.Conversation.echoed)

let test_tcp_over_unlikely_cells () =
  (* The lightly-shaded cells work with TCP too — they are merely not the
     choices a sensible host would make. *)
  List.iter
    (fun c ->
      let same_segment = c.Grid.incoming = Grid.In_DH in
      let topo = build_world ~same_segment () in
      let r =
        Conversation.run_tcp ~net:topo.Scenarios.Topo.net
          ~mh:topo.Scenarios.Topo.mh ~ch:topo.Scenarios.Topo.ch
          ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell:c ()
      in
      let name = Grid.cell_to_string c in
      Alcotest.(check bool) (name ^ " works with tcp") true
        (r.Conversation.connected && r.Conversation.echoed))
    (List.filter (fun c -> Grid.classify c = Grid.Valid_but_unlikely)
       Grid.all_cells)

let test_tcp_broken_cell_fails () =
  (* In-DT/Out-DH: the CH's segments are rewritten to the temporary
     address; the MH's connection is bound to the home address, so the
     handshake cannot complete. *)
  let topo = build_world ~same_segment:false () in
  let r =
    Conversation.run_tcp ~net:topo.Scenarios.Topo.net ~mh:topo.Scenarios.Topo.mh
      ~ch:topo.Scenarios.Topo.ch ~ch_addr:topo.Scenarios.Topo.ch_addr
      ~cell:(cell Grid.In_DT Grid.Out_DH) ()
  in
  Alcotest.(check bool) "never echoed" false r.Conversation.echoed;
  Alcotest.(check bool) "connection did not survive" true
    (r.Conversation.final_state = Transport.Tcp.Aborted
    || not r.Conversation.connected)

let suites =
  [
    ( "grid",
      [
        Alcotest.test_case "sixteen cells" `Quick test_sixteen_cells;
        Alcotest.test_case "seven useful" `Quick test_seven_useful;
        Alcotest.test_case "broken = mixed endpoints" `Quick
          test_broken_cells_are_row4_col4;
        Alcotest.test_case "valid-but-unlikely trio" `Quick
          test_valid_but_unlikely;
        Alcotest.test_case "consistency predicate" `Quick
          test_endpoint_consistency_matches_classification;
        Alcotest.test_case "series of tests picks the paper's cells" `Quick
          test_best_choice;
        Alcotest.test_case "best is always applicable (128 envs)" `Quick
          test_best_is_always_applicable;
        Alcotest.test_case "live: all 16 cells" `Quick
          test_all_cells_delivery_and_consistency;
        Alcotest.test_case "live: In-DH fails off segment" `Quick
          test_in_dh_fails_off_segment;
        Alcotest.test_case "live: triangle routing penalty" `Quick
          test_indirect_costs_more_than_direct;
        Alcotest.test_case "live: encapsulation overhead" `Quick
          test_encapsulation_overhead_visible;
        Alcotest.test_case "live: tcp over useful cells" `Quick
          test_tcp_over_useful_cells;
        Alcotest.test_case "live: tcp In-DH/Out-DH" `Quick
          test_tcp_over_same_segment_cell;
        Alcotest.test_case "live: tcp over unlikely cells" `Quick
          test_tcp_over_unlikely_cells;
        Alcotest.test_case "live: tcp fails on broken cell" `Quick
          test_tcp_broken_cell_fails;
      ] );
  ]
