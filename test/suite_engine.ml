(* The priority queue and the discrete-event engine: ordering, FIFO ties,
   cancellation, bounded runs, determinism. *)

open Netsim

let test_pqueue_orders () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q ~priority:p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "min first" [ "z"; "a"; "b"; "c" ]
    (List.rev !order)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.add q ~priority:1.0 i
  done;
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order among ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_pqueue_peek_stable () =
  let q = Pqueue.create () in
  Pqueue.add q ~priority:2.0 "b";
  Pqueue.add q ~priority:1.0 "a";
  (match Pqueue.peek q with
  | Some (p, v) ->
      Alcotest.(check string) "peek min" "a" v;
      Alcotest.(check (float 0.0)) "priority" 1.0 p
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "peek does not remove" 2 (Pqueue.length q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.add q ~priority:p i) priorities;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare priorities)

(* The full contract, including FIFO ties and reuse after [clear]: popping
   yields elements in (priority, insertion sequence) order.  The model is
   a stable sort of the insertions by priority. *)
let prop_pqueue_priority_seq_order =
  QCheck.Test.make ~name:"pqueue pops in (priority, seq) order, incl. clear"
    ~count:300
    QCheck.(
      pair
        (list (int_bound 7))  (* coarse priorities force plenty of ties *)
        (list (int_bound 7)))
    (fun (first_batch, second_batch) ->
      let q = Pqueue.create () in
      let run batch =
        List.iteri
          (fun i p -> Pqueue.add q ~priority:(float_of_int p) (p, i))
          batch;
        let rec drain acc =
          match Pqueue.pop q with
          | Some (_, v) -> drain (v :: acc)
          | None -> List.rev acc
        in
        let drained = drain [] in
        let model =
          List.stable_sort
            (fun (p1, _) (p2, _) -> compare p1 p2)
            (List.mapi (fun i p -> (p, i)) batch)
        in
        drained = model
      in
      let ok1 = run first_batch in
      (* Interrupt mid-stream, clear, and make sure the emptied queue
         behaves like a fresh one. *)
      List.iteri (fun i p -> Pqueue.add q ~priority:(float_of_int p) (p, i))
        first_batch;
      ignore (Pqueue.pop q);
      Pqueue.clear q;
      let ok_cleared = Pqueue.is_empty q && Pqueue.pop q = None in
      let ok2 = run second_batch in
      ok1 && ok_cleared && ok2)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2.0 (fun () -> log := "second" :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := "first" :: !log);
  Engine.after e 3.0 (fun () -> log := "third" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "first"; "second"; "third" ]
    (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~at:5.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past"
    (Invalid_argument "Engine.schedule: time 1 is before now (5)") (fun () ->
      Engine.schedule e ~at:1.0 (fun () -> ()))

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule e ~at:t (fun () -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 0.0))) "only early events" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock clamped" 2.5 (Engine.now e);
  Alcotest.(check int) "rest still queued" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "all fired eventually" 4 (List.length !fired)

let test_engine_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let cancel = Engine.cancellable_after e 1.0 (fun () -> fired := true) in
  cancel ();
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_cascading_events () =
  (* Events scheduling events; the chain must run to completion. *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then begin
      incr count;
      Engine.after e 0.1 (fun () -> chain (n - 1))
    end
  in
  chain 50;
  Engine.run e;
  Alcotest.(check int) "all 50 links ran" 50 !count;
  Alcotest.(check bool) "time advanced" true (Engine.now e > 4.8)

let test_engine_step () =
  let e = Engine.create () in
  let n = ref 0 in
  Engine.after e 1.0 (fun () -> incr n);
  Engine.after e 2.0 (fun () -> incr n);
  Alcotest.(check bool) "step 1" true (Engine.step e);
  Alcotest.(check int) "one ran" 1 !n;
  Alcotest.(check bool) "step 2" true (Engine.step e);
  Alcotest.(check bool) "empty" false (Engine.step e)

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "pqueue orders" `Quick test_pqueue_orders;
        Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "pqueue peek" `Quick test_pqueue_peek_stable;
        QCheck_alcotest.to_alcotest prop_pqueue_sorts;
        QCheck_alcotest.to_alcotest prop_pqueue_priority_seq_order;
        Alcotest.test_case "engine runs in order" `Quick
          test_engine_runs_in_order;
        Alcotest.test_case "engine rejects past" `Quick test_engine_rejects_past;
        Alcotest.test_case "engine until" `Quick test_engine_until;
        Alcotest.test_case "engine cancellation" `Quick test_engine_cancellation;
        Alcotest.test_case "engine cascading events" `Quick
          test_engine_cascading_events;
        Alcotest.test_case "engine step" `Quick test_engine_step;
      ] );
  ]
