(* The flight recorder, the pcap exporter, the composable trace taps, the
   bucket-interpolated histogram percentiles and the hot-path profiler —
   the observability additions that ride on top of the trace tee. *)

open Netsim

let addr = Ipv4_addr.of_string

(* ---------- synthetic trace material ---------- *)

let mk_pkt ?(len = 32) i =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_udp
    ~src:(addr "10.0.1.1") ~dst:(addr "10.0.2.2")
    (Ipv4_packet.Udp
       (Udp_wire.make ~src_port:(4000 + i) ~dst_port:9 (Bytes.make len 'p')))

let transmit ?(flow = 0) ?(time = 0.0) i =
  {
    Trace.time;
    event =
      Trace.Transmit
        {
          link = "a-b";
          frame = { Trace.id = i; flow; pkt = mk_pkt i };
          bytes = 32;
        };
  }

let deliver ?(flow = 0) ?(time = 0.0) i =
  {
    Trace.time;
    event =
      Trace.Deliver { node = "b"; frame = { Trace.id = i; flow; pkt = mk_pkt i } };
  }

(* ---------- recorder ring ---------- *)

let ids t =
  List.map
    (fun r -> (Trace.frame_of r.Trace.event).Trace.id)
    (Netobs.Recorder.records t)

let test_ring_basics () =
  let r = Netobs.Recorder.create ~capacity:4 () in
  Alcotest.(check (list int)) "empty" [] (ids r);
  List.iter (fun i -> Netobs.Recorder.note r (transmit i)) [ 0; 1; 2 ];
  Alcotest.(check (list int)) "partial fill keeps order" [ 0; 1; 2 ] (ids r);
  List.iter (fun i -> Netobs.Recorder.note r (transmit i)) [ 3; 4; 5 ];
  Alcotest.(check (list int)) "wraps to the most recent" [ 2; 3; 4; 5 ] (ids r);
  Alcotest.(check int) "seen counts everything" 6 (Netobs.Recorder.seen r);
  Alcotest.(check int) "kept counts stores" 6 (Netobs.Recorder.kept r);
  Alcotest.(check int) "length is capped" 4 (Netobs.Recorder.length r);
  Alcotest.(check (list int))
    "tail takes the last k" [ 4; 5 ]
    (List.map
       (fun r -> (Trace.frame_of r.Trace.event).Trace.id)
       (Netobs.Recorder.tail ~last:2 r));
  Netobs.Recorder.clear r;
  Alcotest.(check (list int)) "clear empties" [] (ids r)

let test_ring_sampling () =
  let r = Netobs.Recorder.create ~sample_every:3 ~seed:7 ~capacity:64 () in
  for i = 0 to 99 do
    Netobs.Recorder.note r (transmit ~flow:(i mod 10) i)
  done;
  (* whole flows are in or out: every surviving record's flow passes the
     same predicate [sampled] exposes *)
  Alcotest.(check bool)
    "kept records come from sampled flows only" true
    (List.for_all
       (fun rec_ ->
         Netobs.Recorder.sampled r (Trace.frame_of rec_.Trace.event).Trace.flow)
       (Netobs.Recorder.records r));
  Alcotest.(check bool)
    "sampling dropped something" true
    (Netobs.Recorder.kept r < Netobs.Recorder.seen r)

let prop_ring_wraparound =
  QCheck.Test.make ~name:"ring keeps exactly the last capacity records"
    ~count:200
    QCheck.(pair (1 -- 20) (list_of_size Gen.(0 -- 60) (0 -- 1000)))
    (fun (capacity, xs) ->
      let r = Netobs.Recorder.create ~capacity () in
      List.iteri (fun i _ -> Netobs.Recorder.note r (transmit i)) xs;
      let n = List.length xs in
      let expect = List.init (min n capacity) (fun i -> n - min n capacity + i) in
      ids r = expect)

let prop_sampling_deterministic =
  QCheck.Test.make ~name:"flow sampling is a pure function of (flow, seed)"
    ~count:200
    QCheck.(pair (0 -- 1_000_000) (0 -- 1_000_000))
    (fun (seed, flow) ->
      let a = Netobs.Recorder.create ~sample_every:4 ~seed ~capacity:1 () in
      let b = Netobs.Recorder.create ~sample_every:4 ~seed ~capacity:1 () in
      Netobs.Recorder.sampled a flow = Netobs.Recorder.sampled b flow)

(* ---------- trace tee ---------- *)

let test_tee_identity () =
  let seen_a = ref [] and seen_b = ref [] in
  let a = Trace.add_sink (fun r -> seen_a := r :: !seen_a) in
  let b = Trace.add_sink (fun r -> seen_b := r :: !seen_b) in
  Fun.protect
    ~finally:(fun () ->
      Trace.remove_sink a;
      Trace.remove_sink b)
    (fun () ->
      let t = Trace.create () in
      Trace.set_enabled t false;
      Alcotest.(check bool)
        "sinks keep a disabled trace interested" true (Trace.interested t);
      Trace.record t ~time:0.5 (transmit 1).Trace.event;
      Trace.record t ~time:0.75 (deliver 1).Trace.event;
      Alcotest.(check int) "first sink saw both" 2 (List.length !seen_a);
      Alcotest.(check bool)
        "both sinks saw the identical records" true (!seen_a = !seen_b));
  (* after removal the tee no longer forces interest *)
  let t = Trace.create () in
  Trace.set_enabled t false;
  Alcotest.(check bool)
    "uninterested once sinks are gone" false (Trace.interested t)

let test_tee_with_legacy_slot () =
  let tee = ref 0 and legacy = ref 0 in
  let h = Trace.add_sink (fun _ -> incr tee) in
  Fun.protect
    ~finally:(fun () ->
      Trace.remove_sink h;
      Trace.set_sink None)
    (fun () ->
      Trace.set_sink (Some (fun _ -> incr legacy));
      let t = Trace.create () in
      Trace.record t ~time:0.0 (transmit 1).Trace.event;
      (* replacing the legacy slot must not disturb the tee sink *)
      Trace.set_sink (Some (fun _ -> legacy := !legacy + 10));
      Trace.record t ~time:0.0 (transmit 2).Trace.event;
      Alcotest.(check int) "tee saw every record" 2 !tee;
      Alcotest.(check int) "legacy slot was replaced in place" 11 !legacy)

let test_recorder_as_sink () =
  let r = Netobs.Recorder.create ~capacity:8 () in
  Netobs.Recorder.install r;
  Fun.protect
    ~finally:(fun () -> Netobs.Recorder.uninstall r)
    (fun () ->
      Netobs.Recorder.install r;
      (* idempotent *)
      let t = Trace.create () in
      Trace.record t ~time:1.0 (transmit 3).Trace.event;
      Alcotest.(check (list int)) "ring captured via the tee" [ 3 ] (ids r));
  let t = Trace.create () in
  Trace.record t ~time:2.0 (transmit 4).Trace.event;
  Alcotest.(check (list int)) "uninstall detaches" [ 3 ] (ids r)

(* ---------- pcap ---------- *)

let test_pcap_golden_bytes () =
  let hex b =
    String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (Bytes.to_seq b))))
  in
  Alcotest.(check string)
    "file header, byte for byte"
    "d4c3b2a1020004000000000000000000ffff000065000000"
    (hex (Netobs.Pcap.file_header ()));
  Alcotest.(check string)
    "record header for t=1.000002s len=5"
    "01000000020000000500000005000000"
    (hex (Netobs.Pcap.record_header ~time:1.000002 ~len:5));
  (* microsecond rounding carries into the seconds field *)
  Alcotest.(check string)
    "usec rounding carry at .9999996"
    "02000000000000000100000001000000"
    (hex (Netobs.Pcap.record_header ~time:1.9999996 ~len:1))

let test_pcap_roundtrip () =
  let records =
    [
      transmit ~flow:1 ~time:0.001 0;
      deliver ~flow:1 ~time:0.002 0;
      (* not a wire event: skipped *)
      transmit ~flow:2 ~time:1.5 1;
      transmit ~flow:1 ~time:2.25 2;
    ]
  in
  let path = Filename.temp_file "m4x4pcap" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let written = Netobs.Pcap.write_file path records in
      Alcotest.(check int) "only Transmit events become packets" 3 written;
      let packets =
        match Netobs.Pcap.read_file path with
        | Ok p -> p
        | Error e -> Alcotest.failf "reader rejected our own file: %s" e
      in
      let expected = List.filter_map Netobs.Pcap.packet_of_record records in
      Alcotest.(check int) "reader finds every packet" 3 (List.length packets);
      List.iter2
        (fun (t_got, payload_got) (t_want, payload_want) ->
          Alcotest.(check bool)
            "payload round-trips byte for byte" true
            (Bytes.equal payload_got payload_want);
          Alcotest.(check (float 1e-6)) "timestamp survives" t_want t_got)
        packets expected;
      (* and the file is bit-identical when rewritten from what was read *)
      let path2 = Filename.temp_file "m4x4pcap" ".pcap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path2)
        (fun () ->
          let oc = open_out_bin path2 in
          Netobs.Pcap.write_header oc;
          List.iter
            (fun (time, payload) -> Netobs.Pcap.append_packet oc ~time payload)
            packets;
          close_out oc;
          let slurp p = In_channel.with_open_bin p In_channel.input_all in
          Alcotest.(check string)
            "whole file byte-identical through read/rewrite" (slurp path)
            (slurp path2)))

let test_pcap_reader_rejects () =
  let reject name bytes =
    let path = Filename.temp_file "m4x4bad" ".pcap" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_bytes oc bytes;
        close_out oc;
        match Netobs.Pcap.read_file path with
        | Ok _ -> Alcotest.failf "%s accepted" name
        | Error _ -> ())
  in
  reject "truncated header" (Bytes.make 10 '\000');
  reject "bad magic" (Bytes.make 24 '\000');
  let wrong_linktype = Netobs.Pcap.file_header () in
  Bytes.set_int32_le wrong_linktype 20 1l;
  reject "wrong linktype" wrong_linktype;
  let truncated_record =
    Bytes.cat
      (Netobs.Pcap.file_header ())
      (Netobs.Pcap.record_header ~time:0.0 ~len:100)
  in
  reject "truncated record" truncated_record

(* ---------- histogram percentiles ---------- *)

let view_of reg name =
  match
    List.find_opt
      (fun s -> s.Netobs.Metrics.name = name)
      (Netobs.Metrics.snapshot reg)
  with
  | Some { Netobs.Metrics.value = Netobs.Metrics.Histogram h; _ } -> h
  | _ -> Alcotest.failf "histogram %s not in snapshot" name

let test_percentiles () =
  let reg = Netobs.Metrics.create () in
  let h =
    Netobs.Metrics.histogram reg ~buckets:[| 10.0; 20.0; 30.0; 40.0 |] "lat"
  in
  (* 40 observations spread evenly, 10 per bucket *)
  for i = 0 to 39 do
    Netobs.Metrics.observe h (float_of_int i +. 0.5)
  done;
  let v = view_of reg "lat" in
  let p q = Netobs.Metrics.percentile v q in
  Alcotest.(check (float 1.0)) "p50 lands mid-range" 20.0 (p 50.0);
  Alcotest.(check (float 1.0)) "p90 in the last bucket" 36.0 (p 90.0);
  Alcotest.(check bool) "p99 below the maximum" true (p 99.0 <= 39.5);
  Alcotest.(check (float 0.0)) "p0 is the minimum" 0.5 (p 0.0);
  Alcotest.(check (float 0.0)) "p100 is the maximum" 39.5 (p 100.0);
  Alcotest.(check bool) "monotone in p" true (p 50.0 <= p 90.0 && p 90.0 <= p 99.0)

let test_percentile_single_value () =
  let reg = Netobs.Metrics.create () in
  let h = Netobs.Metrics.histogram reg ~buckets:[| 1.0; 100.0 |] "one" in
  Netobs.Metrics.observe h 42.0;
  let v = view_of reg "one" in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g collapses to the value" q)
        42.0
        (Netobs.Metrics.percentile v q))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_percentile_overflow_bucket () =
  let reg = Netobs.Metrics.create () in
  let h = Netobs.Metrics.histogram reg ~buckets:[| 1.0 |] "ovf" in
  List.iter (Netobs.Metrics.observe h) [ 0.5; 50.0; 100.0 ];
  let v = view_of reg "ovf" in
  Alcotest.(check bool)
    "p99 interpolates into the overflow bucket, clamped to max" true
    (let p = Netobs.Metrics.percentile v 99.0 in
     p > 1.0 && p <= 100.0)

(* ---------- hot-path profiler ---------- *)

let test_profiler_spans () =
  Prof.reset ();
  Prof.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Prof.set_enabled false;
      Prof.reset ())
    (fun () ->
      Prof.span Prof.Dispatch (fun () ->
          Prof.span Prof.Routing (fun () -> ());
          Prof.span Prof.Routing (fun () -> ()));
      let entries = Prof.snapshot () in
      let find cat =
        List.find_opt (fun e -> e.Prof.cat = cat) entries
      in
      (match find Prof.Dispatch with
      | Some e ->
          Alcotest.(check int) "one dispatch span" 1 e.Prof.calls;
          Alcotest.(check bool)
            "self never exceeds total" true
            (e.Prof.self_s <= e.Prof.total_s +. 1e-9)
      | None -> Alcotest.fail "dispatch span not recorded");
      (match find Prof.Routing with
      | Some e -> Alcotest.(check int) "nested spans counted" 2 e.Prof.calls
      | None -> Alcotest.fail "routing span not recorded");
      (* an unmatched leave must not corrupt the stack *)
      Prof.leave Prof.Checksum;
      Prof.span Prof.Checksum (fun () -> ());
      match find Prof.Dispatch with
      | Some e -> Alcotest.(check int) "stack intact" 1 e.Prof.calls
      | None -> Alcotest.fail "dispatch entry vanished")

let test_profiler_off_is_empty () =
  Prof.reset ();
  Prof.set_enabled false;
  Prof.span Prof.Dispatch (fun () -> ());
  Prof.enter Prof.Routing;
  Prof.leave Prof.Routing;
  Alcotest.(check int) "disabled profiler records nothing" 0
    (List.length (Prof.snapshot ()))

let test_profiler_exception_unwinds () =
  Prof.reset ();
  Prof.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Prof.set_enabled false;
      Prof.reset ())
    (fun () ->
      (try Prof.span Prof.Encap (fun () -> failwith "boom") with
      | Failure _ -> ());
      match Prof.snapshot () with
      | [ e ] ->
          Alcotest.(check int) "span completed via protect" 1 e.Prof.calls
      | l -> Alcotest.failf "expected one entry, got %d" (List.length l))

let suites =
  [
    ( "recorder",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring flow sampling" `Quick test_ring_sampling;
        QCheck_alcotest.to_alcotest prop_ring_wraparound;
        QCheck_alcotest.to_alcotest prop_sampling_deterministic;
        Alcotest.test_case "tee identity" `Quick test_tee_identity;
        Alcotest.test_case "tee vs legacy slot" `Quick test_tee_with_legacy_slot;
        Alcotest.test_case "recorder as tee sink" `Quick test_recorder_as_sink;
        Alcotest.test_case "pcap golden bytes" `Quick test_pcap_golden_bytes;
        Alcotest.test_case "pcap round trip" `Quick test_pcap_roundtrip;
        Alcotest.test_case "pcap reader rejects junk" `Quick
          test_pcap_reader_rejects;
        Alcotest.test_case "histogram percentiles" `Quick test_percentiles;
        Alcotest.test_case "percentile single value" `Quick
          test_percentile_single_value;
        Alcotest.test_case "percentile overflow bucket" `Quick
          test_percentile_overflow_bucket;
        Alcotest.test_case "profiler spans" `Quick test_profiler_spans;
        Alcotest.test_case "profiler off is empty" `Quick
          test_profiler_off_is_empty;
        Alcotest.test_case "profiler exception unwind" `Quick
          test_profiler_exception_unwinds;
      ] );
  ]
