(* Internet checksum (RFC 1071) tests, including the RFC's worked example. *)

open Netsim

let bytes_of_ints ints =
  let b = Bytes.create (List.length ints) in
  List.iteri (fun i v -> Bytes.set b i (Char.chr v)) ints;
  b

let test_rfc1071_example () =
  (* RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 (before
     complement). *)
  let data = bytes_of_ints [ 0x00; 0x01; 0xf2; 0x03; 0xf4; 0xf5; 0xf6; 0xf7 ] in
  let sum = Checksum.ones_complement_sum data 0 8 in
  Alcotest.(check int) "partial sum" 0xddf2 sum;
  Alcotest.(check int) "checksum" (lnot 0xddf2 land 0xffff)
    (Checksum.compute data)

let test_empty_buffer () =
  Alcotest.(check int) "empty sums to 0xffff" 0xffff
    (Checksum.compute Bytes.empty)

let test_odd_length_padding () =
  (* A trailing odd byte is treated as the high byte of a zero-padded
     word. *)
  let odd = bytes_of_ints [ 0x12; 0x34; 0x56 ] in
  let even = bytes_of_ints [ 0x12; 0x34; 0x56; 0x00 ] in
  Alcotest.(check int) "odd = even-with-zero-pad" (Checksum.compute even)
    (Checksum.compute odd)

let test_known_vectors () =
  (* The classic IPv4-header example (checksum field zeroed): the computed
     checksum must be 0xb861. *)
  let ipv4_header =
    bytes_of_ints
      [ 0x45; 0x00; 0x00; 0x73; 0x00; 0x00; 0x40; 0x00; 0x40; 0x11; 0x00;
        0x00; 0xc0; 0xa8; 0x00; 0x01; 0xc0; 0xa8; 0x00; 0xc7 ]
  in
  Alcotest.(check int) "ipv4 header vector" 0xb861
    (Checksum.compute ipv4_header);
  (* Odd-length vectors: the dangling byte is the high half of a
     zero-padded word (RFC 1071's byte-order rule). *)
  Alcotest.(check int) "single byte 0x01 sum" 0x0100
    (Checksum.ones_complement_sum (bytes_of_ints [ 0x01 ]) 0 1);
  Alcotest.(check int) "single byte 0x01 checksum" 0xfeff
    (Checksum.compute (bytes_of_ints [ 0x01 ]));
  Alcotest.(check int) "five 0xff bytes" 0x00ff
    (Checksum.compute (bytes_of_ints [ 0xff; 0xff; 0xff; 0xff; 0xff ]));
  Alcotest.(check int) "odd-length icmp-style body" 0x84ca
    (Checksum.compute
       (bytes_of_ints
          [ 0x08; 0x00; 0x00; 0x00; 0x12; 0x34; 0x00; 0x01; 0x61 ]))

let test_verification () =
  let data = bytes_of_ints [ 0xde; 0xad; 0xbe; 0xef; 0x01; 0x02 ] in
  let csum = Checksum.compute data in
  let with_csum = Bytes.cat data (bytes_of_ints [ csum lsr 8; csum land 0xff ]) in
  Alcotest.(check bool) "buffer+checksum verifies" true
    (Checksum.valid with_csum);
  Bytes.set with_csum 0 '\xdf';
  Alcotest.(check bool) "corruption detected" false (Checksum.valid with_csum)

let test_range_checked () =
  Alcotest.check_raises "bad range"
    (Invalid_argument "Checksum.ones_complement_sum: range out of bounds")
    (fun () -> ignore (Checksum.ones_complement_sum (Bytes.create 4) 2 3))

let test_initial_accumulation () =
  (* Summing in two chunks with carried initial equals one pass, for
     even-length chunk boundaries. *)
  let data = bytes_of_ints [ 0x11; 0x22; 0x33; 0x44; 0x55; 0x66 ] in
  let whole = Checksum.ones_complement_sum data 0 6 in
  let first = Checksum.ones_complement_sum data 0 4 in
  let both = Checksum.ones_complement_sum ~initial:first data 4 2 in
  Alcotest.(check int) "chunked = whole" whole both

let test_pseudo_header () =
  let src = Ipv4_addr.of_string "36.1.0.5" in
  let dst = Ipv4_addr.of_string "44.2.0.10" in
  let sum = Checksum.pseudo_header_sum ~src ~dst ~protocol:17 ~length:100 in
  (* 36.1 + 0.5 + 44.2 + 0.10 + 17 + 100 folded *)
  let expect =
    let fold x = ((x land 0xffff) + (x lsr 16)) land 0xffff in
    fold (0x2401 + 0x0005 + 0x2c02 + 0x000a + 17 + 100)
  in
  Alcotest.(check int) "pseudo header sum" expect sum

let prop_chunked_equals_whole =
  QCheck.Test.make ~name:"checksum chunking at even offsets" ~count:300
    QCheck.(pair (list_of_size Gen.(2 -- 40) (0 -- 255)) small_nat)
    (fun (ints, cut) ->
      let data = bytes_of_ints ints in
      let n = Bytes.length data in
      let cut = cut mod (n + 1) in
      let cut = cut - (cut mod 2) in
      QCheck.assume (cut >= 0 && cut <= n);
      let whole = Checksum.ones_complement_sum data 0 n in
      let first = Checksum.ones_complement_sum data 0 cut in
      let rest = Checksum.ones_complement_sum ~initial:first data cut (n - cut) in
      whole = rest)

let prop_verifies =
  QCheck.Test.make ~name:"appending the checksum always verifies" ~count:300
    QCheck.(list_of_size Gen.(0 -- 64) (0 -- 255))
    (fun ints ->
      (* valid() pads odd buffers; keep the data even so the stored
         checksum occupies a full word boundary. *)
      let ints = if List.length ints mod 2 = 1 then 0 :: ints else ints in
      let data = bytes_of_ints ints in
      let csum = Checksum.compute data in
      Checksum.valid
        (Bytes.cat data (bytes_of_ints [ csum lsr 8; csum land 0xff ])))

let test_rfc1624_example () =
  (* RFC 1624 section 4's worked example: HC = 0xdd2f, a word changes
     from m = 0x5555 to m' = 0x3285; the correct new checksum is 0x0000
     (the older RFC 1141 formula wrongly yields 0xffff here). *)
  Alcotest.(check int) "rfc 1624 worked example" 0x0000
    (Checksum.incremental_update ~checksum:0xdd2f ~old_word:0x5555
       ~new_word:0x3285)

let test_incremental_matches_recompute () =
  (* Decrement the TTL in the classic header vector: updating the old
     checksum incrementally must equal a full recompute. *)
  let header =
    bytes_of_ints
      [ 0x45; 0x00; 0x00; 0x73; 0x00; 0x00; 0x40; 0x00; 0x40; 0x11; 0x00;
        0x00; 0xc0; 0xa8; 0x00; 0x01; 0xc0; 0xa8; 0x00; 0xc7 ]
  in
  let old_csum = Checksum.compute header in
  Bytes.set header 8 '\x3f';
  Alcotest.(check int) "ttl 0x40 -> 0x3f"
    (Checksum.compute header)
    (Checksum.incremental_update ~checksum:old_csum ~old_word:0x4011
       ~new_word:0x3f11)

let test_incremental_range_checked () =
  Alcotest.check_raises "checksum out of range"
    (Invalid_argument "Checksum.incremental_update: checksum out of range")
    (fun () ->
      ignore
        (Checksum.incremental_update ~checksum:0x10000 ~old_word:0
           ~new_word:0));
  Alcotest.check_raises "word out of range"
    (Invalid_argument "Checksum.incremental_update: word out of range")
    (fun () ->
      ignore
        (Checksum.incremental_update ~checksum:0 ~old_word:(-1) ~new_word:0))

let prop_incremental_equals_recompute =
  QCheck.Test.make ~name:"incremental update = full recompute" ~count:500
    QCheck.(
      triple (list_of_size Gen.(return 19) (0 -- 255)) (1 -- 9) (0 -- 0xffff))
    (fun (ints, wi, new_word) ->
      (* A 20-byte header-like buffer whose first word is pinned nonzero
         (0x45..), so the folded one's-complement sum never lands on the
         ambiguous 0x0000/0xffff pair and both paths agree exactly. *)
      let buf = bytes_of_ints (0x45 :: ints) in
      let old_csum = Checksum.compute buf in
      let old_word = Bytes.get_uint16_be buf (2 * wi) in
      Bytes.set_uint16_be buf (2 * wi) new_word;
      Checksum.compute buf
      = Checksum.incremental_update ~checksum:old_csum ~old_word ~new_word)

let suites =
  [
    ( "checksum",
      [
        Alcotest.test_case "rfc 1071 worked example" `Quick test_rfc1071_example;
        Alcotest.test_case "empty buffer" `Quick test_empty_buffer;
        Alcotest.test_case "odd length padding" `Quick test_odd_length_padding;
        Alcotest.test_case "known vectors incl. odd-length" `Quick
          test_known_vectors;
        Alcotest.test_case "verification + corruption" `Quick test_verification;
        Alcotest.test_case "range checked" `Quick test_range_checked;
        Alcotest.test_case "initial accumulation" `Quick
          test_initial_accumulation;
        Alcotest.test_case "pseudo header" `Quick test_pseudo_header;
        Alcotest.test_case "rfc 1624 worked example" `Quick
          test_rfc1624_example;
        Alcotest.test_case "incremental = recompute (vector)" `Quick
          test_incremental_matches_recompute;
        Alcotest.test_case "incremental range checked" `Quick
          test_incremental_range_checked;
        QCheck_alcotest.to_alcotest prop_chunked_equals_whole;
        QCheck_alcotest.to_alcotest prop_verifies;
        QCheck_alcotest.to_alcotest prop_incremental_equals_recompute;
      ] );
  ]
