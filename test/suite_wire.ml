(* Wire-format codecs: UDP, TCP, ICMP — roundtrips, corruption detection,
   truncation, and property tests. *)

open Netsim

let src = Ipv4_addr.of_string "36.1.0.5"
let dst = Ipv4_addr.of_string "44.2.0.10"

(* ---- UDP ---- *)

let test_udp_roundtrip () =
  let u = Udp_wire.make ~src_port:5353 ~dst_port:53 (Bytes.of_string "query") in
  let wire = Udp_wire.encode ~src ~dst u in
  Alcotest.(check int) "length" (8 + 5) (Bytes.length wire);
  match Udp_wire.decode ~src ~dst wire with
  | Ok u' -> Alcotest.(check bool) "equal" true (Udp_wire.equal u u')
  | Error e -> Alcotest.fail e

let test_udp_checksum_covers_addresses () =
  let u = Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.of_string "x") in
  let wire = Udp_wire.encode ~src ~dst u in
  (* Decoding under a different pseudo-header must fail.  (Note merely
     swapping src and dst would NOT change the sum — one's-complement
     addition is commutative.) *)
  match Udp_wire.decode ~src:(Ipv4_addr.of_string "9.9.9.9") ~dst wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checksum ignored the pseudo-header"

let test_udp_corruption_detected () =
  let u = Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.of_string "payload") in
  let wire = Udp_wire.encode ~src ~dst u in
  Bytes.set wire 9 'X';
  match Udp_wire.decode ~src ~dst wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip not detected"

let test_udp_truncated () =
  match Udp_wire.decode ~src ~dst (Bytes.create 7) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated header"

let test_udp_port_range () =
  Alcotest.check_raises "port 65536"
    (Invalid_argument "Udp_wire: port 65536 out of range") (fun () ->
      ignore (Udp_wire.make ~src_port:65536 ~dst_port:1 Bytes.empty))

(* ---- TCP ---- *)

let test_tcp_roundtrip_all_flags () =
  List.iter
    (fun flags ->
      let t =
        Tcp_wire.make ~src_port:1234 ~dst_port:80 ~seq:1000000 ~ack_n:999
          ~flags ~window:4096 (Bytes.of_string "data!")
      in
      let wire = Tcp_wire.encode ~src ~dst t in
      match Tcp_wire.decode ~src ~dst wire with
      | Ok t' ->
          Alcotest.(check bool)
            (Format.asprintf "roundtrip %a" Tcp_wire.pp_flags flags)
            true (Tcp_wire.equal t t')
      | Error e -> Alcotest.fail e)
    [
      Tcp_wire.no_flags; Tcp_wire.flag_syn; Tcp_wire.flag_syn_ack;
      Tcp_wire.flag_ack; Tcp_wire.flag_fin_ack; Tcp_wire.flag_rst;
      { Tcp_wire.no_flags with Tcp_wire.psh = true; urg = true };
    ]

let test_tcp_seq_wraps () =
  Alcotest.(check int) "wrap" 5 (Tcp_wire.seq_add 0xffff_ffff 6);
  Alcotest.(check int) "no wrap" 100 (Tcp_wire.seq_add 99 1)

let test_tcp_seq_bounds () =
  Alcotest.check_raises "seq too big"
    (Invalid_argument "Tcp_wire.make: seq 4294967296 out of range") (fun () ->
      ignore
        (Tcp_wire.make ~src_port:1 ~dst_port:2 ~seq:0x1_0000_0000 ~ack_n:0
           ~flags:Tcp_wire.no_flags Bytes.empty))

let test_tcp_corruption_detected () =
  let t =
    Tcp_wire.make ~src_port:1 ~dst_port:2 ~seq:7 ~ack_n:8
      ~flags:Tcp_wire.flag_ack (Bytes.of_string "abc")
  in
  let wire = Tcp_wire.encode ~src ~dst t in
  Bytes.set wire 4 '\xff';
  match Tcp_wire.decode ~src ~dst wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "seq corruption not detected"

(* ---- ICMP ---- *)

let test_icmp_roundtrips () =
  List.iter
    (fun msg ->
      let wire = Icmp_wire.encode msg in
      match Icmp_wire.decode wire with
      | Ok msg' ->
          Alcotest.(check bool)
            (Format.asprintf "%a" Icmp_wire.pp msg)
            true (Icmp_wire.equal msg msg')
      | Error e -> Alcotest.fail e)
    [
      Icmp_wire.Echo_request { ident = 7; seq = 3; payload = Bytes.of_string "hi" };
      Icmp_wire.Echo_reply { ident = 7; seq = 3; payload = Bytes.create 56 };
      Icmp_wire.Dest_unreachable
        { code = Icmp_wire.Fragmentation_needed; context = Bytes.create 28 };
      Icmp_wire.Dest_unreachable
        { code = Icmp_wire.Admin_prohibited; context = Bytes.empty };
      Icmp_wire.Time_exceeded { context = Bytes.create 28 };
      Icmp_wire.Care_of_advert
        {
          home = src;
          care_of = Ipv4_addr.of_string "131.7.0.100";
          lifetime = 300;
        };
    ]

let test_icmp_corruption_detected () =
  let wire =
    Icmp_wire.encode
      (Icmp_wire.Echo_request { ident = 1; seq = 1; payload = Bytes.create 8 })
  in
  Bytes.set wire 5 '\x99';
  match Icmp_wire.decode wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_icmp_truncated () =
  match Icmp_wire.decode (Bytes.create 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated message"

(* ---- properties ---- *)

let arb_payload = QCheck.map Bytes.of_string QCheck.(string_of_size Gen.(0 -- 200))
let arb_port = QCheck.(0 -- 65535)

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp roundtrip" ~count:300
    QCheck.(triple arb_port arb_port arb_payload)
    (fun (sp, dp, payload) ->
      let u = Udp_wire.make ~src_port:sp ~dst_port:dp payload in
      match Udp_wire.decode ~src ~dst (Udp_wire.encode ~src ~dst u) with
      | Ok u' -> Udp_wire.equal u u'
      | Error _ -> false)

let prop_tcp_roundtrip =
  QCheck.Test.make ~name:"tcp roundtrip" ~count:300
    QCheck.(
      pair
        (quad arb_port arb_port (0 -- 0xfffffff) (0 -- 0xfffffff))
        (pair bool arb_payload))
    (fun ((sp, dp, seq, ack_n), (syn, payload)) ->
      let flags = { Tcp_wire.flag_ack with Tcp_wire.syn } in
      let t = Tcp_wire.make ~src_port:sp ~dst_port:dp ~seq ~ack_n ~flags payload in
      match Tcp_wire.decode ~src ~dst (Tcp_wire.encode ~src ~dst t) with
      | Ok t' -> Tcp_wire.equal t t'
      | Error _ -> false)

let prop_icmp_echo_roundtrip =
  QCheck.Test.make ~name:"icmp echo roundtrip" ~count:300
    QCheck.(triple (0 -- 65535) (0 -- 65535) arb_payload)
    (fun (ident, seq, payload) ->
      let m = Icmp_wire.Echo_request { ident; seq; payload } in
      match Icmp_wire.decode (Icmp_wire.encode m) with
      | Ok m' -> Icmp_wire.equal m m'
      | Error _ -> false)

let suites =
  [
    ( "wire",
      [
        Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
        Alcotest.test_case "udp checksum covers pseudo-header" `Quick
          test_udp_checksum_covers_addresses;
        Alcotest.test_case "udp corruption detected" `Quick
          test_udp_corruption_detected;
        Alcotest.test_case "udp truncated" `Quick test_udp_truncated;
        Alcotest.test_case "udp port range" `Quick test_udp_port_range;
        Alcotest.test_case "tcp roundtrip all flags" `Quick
          test_tcp_roundtrip_all_flags;
        Alcotest.test_case "tcp seq wraps" `Quick test_tcp_seq_wraps;
        Alcotest.test_case "tcp seq bounds" `Quick test_tcp_seq_bounds;
        Alcotest.test_case "tcp corruption detected" `Quick
          test_tcp_corruption_detected;
        Alcotest.test_case "icmp roundtrips" `Quick test_icmp_roundtrips;
        Alcotest.test_case "icmp corruption detected" `Quick
          test_icmp_corruption_detected;
        Alcotest.test_case "icmp truncated" `Quick test_icmp_truncated;
        QCheck_alcotest.to_alcotest prop_udp_roundtrip;
        QCheck_alcotest.to_alcotest prop_tcp_roundtrip;
        QCheck_alcotest.to_alcotest prop_icmp_echo_roundtrip;
      ] );
  ]
