(* Home agent and correspondent specifics: ICMP notification rate
   limiting, reverse-tunnel source checks, multiple simultaneous bindings,
   binding-cache TTL at the correspondent, capability gating, and the
   paper's closing remark that everything works when both hosts are
   mobile. *)

open Netsim

let a = Ipv4_addr.of_string

let test_notify_rate_limited () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  (* Defeat the CH's In-DE switch so every datagram keeps flowing through
     the home agent; the HA must still only advertise once per interval. *)
  Mobileip.Correspondent.force_in_method topo.Scenarios.Topo.ch
    ~dst:topo.Scenarios.Topo.mh_home_addr (Some Mobileip.Grid.In_IE);
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let eng = Net.engine topo.Scenarios.Topo.net in
  for i = 0 to 9 do
    Engine.after eng (float_of_int i *. 0.5) (fun () ->
        ignore
          (Transport.Udp_service.send ch_udp
             ~dst:topo.Scenarios.Topo.mh_home_addr ~src_port:7000 ~dst_port:9
             (Bytes.make 32 'n')))
  done;
  Scenarios.Topo.run topo;
  Alcotest.(check int) "ten datagrams tunneled" 10
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha);
  (* 10 packets over 4.5 s with a 30 s interval: exactly one advert. *)
  Alcotest.(check int) "one advert in the interval" 1
    (Mobileip.Correspondent.adverts_received topo.Scenarios.Topo.ch)

let test_reverse_tunnel_requires_registration () =
  (* A tunnel whose inner source is not a registered mobile host must not
     be relayed (the HA is not an open reflector). *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let attacker_home = a "36.1.0.66" in
  let inner =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:attacker_home
      ~dst:topo.Scenarios.Topo.ch_addr
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 8 'v')))
  in
  let outer =
    Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:(a "131.7.0.100")
      ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha) inner
  in
  let before = Mobileip.Home_agent.packets_reverse_tunneled topo.Scenarios.Topo.ha in
  let flow = Net.send topo.Scenarios.Topo.mh_node outer in
  Scenarios.Topo.run topo;
  Alcotest.(check int) "not relayed" before
    (Mobileip.Home_agent.packets_reverse_tunneled topo.Scenarios.Topo.ha);
  Alcotest.(check bool) "never reaches the correspondent" false
    (Trace.delivered (Net.trace topo.Scenarios.Topo.net) ~flow ~node:"ch")

let test_two_mobile_hosts_one_home_agent () =
  (* A second mobile host of the same home network roams to a different
     place; the home agent maintains both bindings and tunnels each to its
     own care-of address. *)
  let topo = Scenarios.Topo.build () in
  let net = topo.Scenarios.Topo.net in
  (* Second MH at home. *)
  let mh2_node = Net.add_host net "mh2" in
  let mh2_iface =
    Net.attach mh2_node topo.Scenarios.Topo.home_segment ~ifname:"eth0"
      ~addr:(a "36.1.0.6") ~prefix:topo.Scenarios.Topo.home_prefix
  in
  Routing.add_default (Net.routing mh2_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let mh2 =
    Mobileip.Mobile_host.create mh2_node ~iface:mh2_iface ~home:(a "36.1.0.6")
      ~home_prefix:topo.Scenarios.Topo.home_prefix
      ~home_agent:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha) ()
  in
  (* A second visited network hanging off the correspondent router's
     segment would complicate routing; reuse the same visited segment —
     two visitors, two leases. *)
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.move_to_dhcp mh2 topo.Scenarios.Topo.visited_segment ();
  Scenarios.Topo.run topo;
  Alcotest.(check int) "two bindings" 2
    (List.length (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha));
  (* Ping both home addresses from the correspondent. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref 0 in
  Transport.Icmp_service.ping icmp ~dst:(a "36.1.0.5") (fun ~rtt:_ -> incr got);
  Transport.Icmp_service.ping icmp ~dst:(a "36.1.0.6") (fun ~rtt:_ -> incr got);
  Scenarios.Topo.run topo;
  Alcotest.(check int) "both reachable through their tunnels" 2 !got

let test_both_hosts_mobile () =
  (* §1: "the same techniques and optimizations apply equally well if both
     hosts are mobile."  MH1 (home 36.1.0.5) roams to the visited network;
     MH2 (home 36.1.0.6) stays registered from a second visited segment on
     the correspondent's network.  MH1 pings MH2's home address: the
     packet goes via MH2's home agent and both tunnels do their jobs. *)
  let topo = Scenarios.Topo.build () in
  let net = topo.Scenarios.Topo.net in
  let mh2_node = Net.add_host net "mh2" in
  let mh2_iface =
    Net.attach mh2_node topo.Scenarios.Topo.home_segment ~ifname:"eth0"
      ~addr:(a "36.1.0.6") ~prefix:topo.Scenarios.Topo.home_prefix
  in
  Routing.add_default (Net.routing mh2_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let mh2 =
    Mobileip.Mobile_host.create mh2_node ~iface:mh2_iface ~home:(a "36.1.0.6")
      ~home_prefix:topo.Scenarios.Topo.home_prefix
      ~home_agent:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha) ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.move_to_dhcp mh2 topo.Scenarios.Topo.visited_segment ();
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "both registered" true
    (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh
    && Mobileip.Mobile_host.registered mh2);
  let icmp1 = Transport.Icmp_service.get topo.Scenarios.Topo.mh_node in
  let got = ref None in
  (* MH1 -> MH2's home address, with Out-DH outgoing (no filters here). *)
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  Transport.Icmp_service.ping icmp1 ~dst:(a "36.1.0.6") (fun ~rtt ->
      got := Some rtt);
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "mobile-to-mobile ping answered" true (!got <> None)

let test_mh_driven_binding_update () =
  (* [Joh96]-style route optimization: the MH proactively updates the
     correspondent, which then switches to In-DE without ever involving
     the home agent's notifications. *)
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  Alcotest.(check bool) "update sent" true
    (Mobileip.Mobile_host.send_binding_update topo.Scenarios.Topo.mh
       ~correspondent:topo.Scenarios.Topo.ch_addr ());
  Scenarios.Topo.run topo;
  Alcotest.(check (option string)) "CH learned the care-of address"
    (Some "131.7.0.100")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch
          ~home:topo.Scenarios.Topo.mh_home_addr));
  (* Next CH->MH packet goes direct, never touching the HA. *)
  let tunneled_before =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> got := Some rtt);
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "answered" true (!got <> None);
  Alcotest.(check int) "home agent bypassed entirely" tunneled_before
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha);
  (* At home there is nothing to advertise. *)
  Scenarios.Topo.come_home topo;
  Alcotest.(check bool) "no update at home" false
    (Mobileip.Mobile_host.send_binding_update topo.Scenarios.Topo.mh
       ~correspondent:topo.Scenarios.Topo.ch_addr ())

let test_tcp_through_foreign_agent () =
  (* A long-lived session keeps working when the attachment is via a
     foreign agent: HA tunnel -> FA decapsulation -> link-layer final hop
     on the way in, plain forwarding on the way out. *)
  let topo = Scenarios.Topo.build () in
  let fa_node = Net.add_router topo.Scenarios.Topo.net "fa" in
  let fa_iface =
    Net.attach fa_node topo.Scenarios.Topo.visited_segment ~ifname:"lan"
      ~addr:(a "131.7.0.3") ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Routing.add_default (Net.routing fa_node) ~gateway:(a "131.7.0.1")
    ~iface:"lan";
  let fa = Mobileip.Foreign_agent.create fa_node ~iface:fa_iface () in
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
    ~port:Transport.Well_known.telnet;
  (* Connect at home first; then move behind the FA mid-session. *)
  let tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let conn =
    Transport.Tcp.connect tcp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.telnet ()
  in
  let echoes = ref 0 in
  Transport.Tcp.on_receive conn (fun _ -> incr echoes);
  Transport.Tcp.send_data conn (Bytes.of_string "one");
  Scenarios.Topo.run topo;
  Mobileip.Mobile_host.move_to_foreign_agent topo.Scenarios.Topo.mh
    topo.Scenarios.Topo.visited_segment ~fa_addr:(a "131.7.0.3") ();
  Scenarios.Topo.run topo;
  Transport.Tcp.send_data conn (Bytes.of_string "two");
  Scenarios.Topo.run topo;
  Alcotest.(check int) "both echoed" 2 !echoes;
  Alcotest.(check bool) "still established" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  Alcotest.(check bool) "fa delivered final hops" true
    (Mobileip.Foreign_agent.packets_delivered fa >= 1)

let test_conversation_latency_ordering () =
  (* In-IE/Out-DH: the indirect reply must take measurably longer than the
     direct request. *)
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let r =
    Mobileip.Conversation.run_udp ~net:topo.Scenarios.Topo.net
      ~mh:topo.Scenarios.Topo.mh ~ch:topo.Scenarios.Topo.ch
      ~ch_addr:topo.Scenarios.Topo.ch_addr
      ~cell:
        {
          Mobileip.Grid.incoming = Mobileip.Grid.In_IE;
          outgoing = Mobileip.Grid.Out_DH;
        }
      ()
  in
  match (r.Mobileip.Conversation.request_latency, r.Mobileip.Conversation.reply_latency)
  with
  | Some req, Some rep ->
      Alcotest.(check bool)
        (Printf.sprintf "indirect reply slower (%.3f vs %.3f)" rep req)
        true (rep > req)
  | _ -> Alcotest.fail "latencies missing"

let test_correspondent_cache_expiry () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  let ch = topo.Scenarios.Topo.ch in
  let home = topo.Scenarios.Topo.mh_home_addr in
  Mobileip.Correspondent.learn_binding ch ~home ~care_of:(a "131.7.0.100")
    ~lifetime:10;
  Alcotest.(check bool) "cached" true
    (Mobileip.Correspondent.cached_care_of ch ~home <> None);
  Alcotest.(check string) "In-DE while fresh" "In-DE"
    (Mobileip.Grid.in_to_string (Mobileip.Correspondent.in_method_for ch ~dst:home));
  (* Let the TTL lapse. *)
  Engine.after (Net.engine topo.Scenarios.Topo.net) 30.0 (fun () -> ());
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "expired" true
    (Mobileip.Correspondent.cached_care_of ch ~home = None);
  Alcotest.(check string) "falls back to In-IE" "In-IE"
    (Mobileip.Grid.in_to_string (Mobileip.Correspondent.in_method_for ch ~dst:home))

let test_conventional_ch_ignores_adverts () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Conventional
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> got := Some rtt);
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "ping works" true (!got <> None);
  (* The HA sent an advert, but conventional software has no cache. *)
  Alcotest.(check int) "no adverts accepted" 0
    (Mobileip.Correspondent.adverts_received topo.Scenarios.Topo.ch);
  Alcotest.(check bool) "no binding learned" true
    (Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch
       ~home:topo.Scenarios.Topo.mh_home_addr
    = None)

let test_learn_binding_gated_by_capability () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Decap_capable ()
  in
  let ch = topo.Scenarios.Topo.ch in
  Mobileip.Correspondent.learn_binding ch ~home:(a "36.1.0.5")
    ~care_of:(a "131.7.0.100") ~lifetime:100;
  Alcotest.(check bool) "decap-capable keeps no cache" true
    (Mobileip.Correspondent.cached_care_of ch ~home:(a "36.1.0.5") = None)

let test_forced_in_de_without_binding_discards () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  let ch = topo.Scenarios.Topo.ch in
  let home = topo.Scenarios.Topo.mh_home_addr in
  Mobileip.Correspondent.force_in_method ch ~dst:home (Some Mobileip.Grid.In_DE);
  (* No binding learned: the send is dropped locally rather than
     misdelivered. *)
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let flow =
    Transport.Udp_service.send udp ~dst:home ~src_port:7000 ~dst_port:9
      (Bytes.make 8 'x')
  in
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "dropped locally" true
    (List.exists
       (fun (n, _) -> n = "ch")
       (Trace.drops (Net.trace topo.Scenarios.Topo.net) ~flow));
  Alcotest.(check bool) "not delivered" false
    (Trace.delivered (Net.trace topo.Scenarios.Topo.net) ~flow ~node:"mh")

let suites =
  [
    ( "agents",
      [
        Alcotest.test_case "notify rate limited" `Quick test_notify_rate_limited;
        Alcotest.test_case "reverse tunnel requires registration" `Quick
          test_reverse_tunnel_requires_registration;
        Alcotest.test_case "two mobile hosts, one home agent" `Quick
          test_two_mobile_hosts_one_home_agent;
        Alcotest.test_case "both hosts mobile" `Quick test_both_hosts_mobile;
        Alcotest.test_case "mh-driven binding update" `Quick
          test_mh_driven_binding_update;
        Alcotest.test_case "tcp through foreign agent" `Quick
          test_tcp_through_foreign_agent;
        Alcotest.test_case "conversation latency ordering" `Quick
          test_conversation_latency_ordering;
        Alcotest.test_case "correspondent cache expiry" `Quick
          test_correspondent_cache_expiry;
        Alcotest.test_case "conventional CH ignores adverts" `Quick
          test_conventional_ch_ignores_adverts;
        Alcotest.test_case "learn_binding gated by capability" `Quick
          test_learn_binding_gated_by_capability;
        Alcotest.test_case "forced In-DE without binding discards" `Quick
          test_forced_in_de_without_binding_discards;
      ] );
  ]
