(* Unit and property tests for Ipv4_addr and Ipv4_addr.Prefix. *)

open Netsim

let addr = Ipv4_addr.of_string
let prefix = Ipv4_addr.Prefix.of_string

let test_parse_print_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Ipv4_addr.to_string (addr s)))
    [ "0.0.0.0"; "255.255.255.255"; "36.1.0.5"; "10.0.0.1"; "131.7.200.9" ]

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check (option reject))
        (Printf.sprintf "%S rejected" s)
        None
        (Ipv4_addr.of_string_opt s))
    [
      ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.2.3.4"; "a.b.c.d";
      "1..2.3"; "1.2.3.04x"; "0x10.1.1.1"; " 1.2.3.4"; "1.2.3.4 ";
      "1111.2.3.4";
    ]

let test_octets_roundtrip () =
  let a = Ipv4_addr.of_octets 192 168 255 1 in
  Alcotest.(check string) "octets" "192.168.255.1" (Ipv4_addr.to_string a);
  let o1, o2, o3, o4 = Ipv4_addr.to_octets a in
  Alcotest.(check (list int)) "to_octets" [ 192; 168; 255; 1 ] [ o1; o2; o3; o4 ]

let test_octets_range_checked () =
  Alcotest.check_raises "octet 256"
    (Invalid_argument "Ipv4_addr.of_octets: octet 256 out of range")
    (fun () -> ignore (Ipv4_addr.of_octets 256 0 0 0))

let test_unsigned_compare () =
  (* 200.0.0.0 has the sign bit set as an int32; ordering must still be
     numeric. *)
  Alcotest.(check bool) "10.0.0.0 < 200.0.0.0" true
    (Ipv4_addr.compare (addr "10.0.0.0") (addr "200.0.0.0") < 0);
  Alcotest.(check bool) "255.255.255.255 is max" true
    (Ipv4_addr.compare Ipv4_addr.broadcast (addr "254.0.0.0") > 0)

let test_predicates () =
  Alcotest.(check bool) "224.0.0.1 multicast" true
    (Ipv4_addr.is_multicast (addr "224.0.0.1"));
  Alcotest.(check bool) "239.255.255.255 multicast" true
    (Ipv4_addr.is_multicast (addr "239.255.255.255"));
  Alcotest.(check bool) "223.255.255.255 not multicast" false
    (Ipv4_addr.is_multicast (addr "223.255.255.255"));
  Alcotest.(check bool) "240.0.0.0 not multicast" false
    (Ipv4_addr.is_multicast (addr "240.0.0.0"));
  Alcotest.(check bool) "127.0.0.1 loopback" true
    (Ipv4_addr.is_loopback Ipv4_addr.localhost);
  Alcotest.(check bool) "128.0.0.1 not loopback" false
    (Ipv4_addr.is_loopback (addr "128.0.0.1"))

let test_succ_wraps () =
  Alcotest.(check string) "succ" "1.2.3.5"
    (Ipv4_addr.to_string (Ipv4_addr.succ (addr "1.2.3.4")));
  Alcotest.(check string) "carry" "1.2.4.0"
    (Ipv4_addr.to_string (Ipv4_addr.succ (addr "1.2.3.255")));
  Alcotest.(check string) "wrap" "0.0.0.0"
    (Ipv4_addr.to_string (Ipv4_addr.succ Ipv4_addr.broadcast))

let test_prefix_basics () =
  let p = prefix "36.1.0.0/16" in
  Alcotest.(check string) "to_string" "36.1.0.0/16"
    (Ipv4_addr.Prefix.to_string p);
  Alcotest.(check int) "bits" 16 (Ipv4_addr.Prefix.bits p);
  Alcotest.(check string) "netmask" "255.255.0.0"
    (Ipv4_addr.to_string (Ipv4_addr.Prefix.netmask p));
  Alcotest.(check bool) "mem inside" true
    (Ipv4_addr.Prefix.mem (addr "36.1.200.9") p);
  Alcotest.(check bool) "mem outside" false
    (Ipv4_addr.Prefix.mem (addr "36.2.0.1") p);
  Alcotest.(check string) "broadcast" "36.1.255.255"
    (Ipv4_addr.to_string (Ipv4_addr.Prefix.broadcast_addr p))

let test_prefix_zeroes_host_bits () =
  let p = Ipv4_addr.Prefix.make (addr "36.1.200.9") 16 in
  Alcotest.(check string) "host bits cleared" "36.1.0.0/16"
    (Ipv4_addr.Prefix.to_string p)

let test_prefix_extremes () =
  Alcotest.(check bool) "/0 contains everything" true
    (Ipv4_addr.Prefix.mem (addr "200.1.2.3") Ipv4_addr.Prefix.global);
  let host_route = Ipv4_addr.Prefix.make (addr "1.2.3.4") 32 in
  Alcotest.(check bool) "/32 contains itself" true
    (Ipv4_addr.Prefix.mem (addr "1.2.3.4") host_route);
  Alcotest.(check bool) "/32 excludes neighbour" false
    (Ipv4_addr.Prefix.mem (addr "1.2.3.5") host_route);
  Alcotest.check_raises "/33 rejected"
    (Invalid_argument "Prefix.make: bad mask length 33") (fun () ->
      ignore (Ipv4_addr.Prefix.make (addr "1.2.3.4") 33))

let test_prefix_subset () =
  Alcotest.(check bool) "/24 subset of /16" true
    (Ipv4_addr.Prefix.subset (prefix "36.1.5.0/24") (prefix "36.1.0.0/16"));
  Alcotest.(check bool) "/16 not subset of /24" false
    (Ipv4_addr.Prefix.subset (prefix "36.1.0.0/16") (prefix "36.1.5.0/24"));
  Alcotest.(check bool) "disjoint" false
    (Ipv4_addr.Prefix.subset (prefix "37.0.0.0/8") (prefix "36.0.0.0/8"))

let test_prefix_host () =
  let p = prefix "192.168.1.0/24" in
  Alcotest.(check string) "host 1" "192.168.1.1"
    (Ipv4_addr.to_string (Ipv4_addr.Prefix.host p 1));
  Alcotest.(check string) "host 254" "192.168.1.254"
    (Ipv4_addr.to_string (Ipv4_addr.Prefix.host p 254));
  Alcotest.check_raises "host 256 out of /24"
    (Invalid_argument "Prefix.host: 256 outside 192.168.1.0/24") (fun () ->
      ignore (Ipv4_addr.Prefix.host p 256))

let test_prefix_parse_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check (option reject))
        (Printf.sprintf "%S rejected" s)
        None
        (Ipv4_addr.Prefix.of_string_opt s))
    [ "1.2.3.4"; "1.2.3.4/"; "1.2.3.4/33"; "/8"; "1.2.3/8"; "1.2.3.4/-1" ]

(* Properties *)

let arb_addr =
  QCheck.map
    (fun (a, b, c, d) -> Ipv4_addr.of_octets a b c d)
    QCheck.(quad (0 -- 255) (0 -- 255) (0 -- 255) (0 -- 255))

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"addr to_string/of_string roundtrip" ~count:500
    arb_addr (fun a ->
      Ipv4_addr.equal a (Ipv4_addr.of_string (Ipv4_addr.to_string a)))

let prop_prefix_mem_network =
  QCheck.Test.make ~name:"prefix contains its own network and broadcast"
    ~count:500
    QCheck.(pair arb_addr (0 -- 32))
    (fun (a, bits) ->
      let p = Ipv4_addr.Prefix.make a bits in
      Ipv4_addr.Prefix.mem (Ipv4_addr.Prefix.network p) p
      && Ipv4_addr.Prefix.mem (Ipv4_addr.Prefix.broadcast_addr p) p)

let prop_prefix_subset_reflexive =
  QCheck.Test.make ~name:"prefix subset is reflexive" ~count:200
    QCheck.(pair arb_addr (0 -- 32))
    (fun (a, bits) ->
      let p = Ipv4_addr.Prefix.make a bits in
      Ipv4_addr.Prefix.subset p p)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck.(pair arb_addr arb_addr)
    (fun (a, b) ->
      let c1 = Ipv4_addr.compare a b and c2 = Ipv4_addr.compare b a in
      (c1 = 0 && c2 = 0 && Ipv4_addr.equal a b) || c1 * c2 < 0)

let suites =
  [
    ( "ipv4_addr",
      [
        Alcotest.test_case "parse/print roundtrip" `Quick
          test_parse_print_roundtrip;
        Alcotest.test_case "parse rejects garbage" `Quick
          test_parse_rejects_garbage;
        Alcotest.test_case "octets roundtrip" `Quick test_octets_roundtrip;
        Alcotest.test_case "octets range-checked" `Quick
          test_octets_range_checked;
        Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
        Alcotest.test_case "multicast/loopback predicates" `Quick
          test_predicates;
        Alcotest.test_case "succ and wrap" `Quick test_succ_wraps;
        Alcotest.test_case "prefix basics" `Quick test_prefix_basics;
        Alcotest.test_case "prefix zeroes host bits" `Quick
          test_prefix_zeroes_host_bits;
        Alcotest.test_case "prefix extremes /0 /32" `Quick
          test_prefix_extremes;
        Alcotest.test_case "prefix subset" `Quick test_prefix_subset;
        Alcotest.test_case "prefix host extraction" `Quick test_prefix_host;
        Alcotest.test_case "prefix parse rejects" `Quick
          test_prefix_parse_rejects;
        QCheck_alcotest.to_alcotest prop_parse_roundtrip;
        QCheck_alcotest.to_alcotest prop_prefix_mem_network;
        QCheck_alcotest.to_alcotest prop_prefix_subset_reflexive;
        QCheck_alcotest.to_alcotest prop_compare_antisym;
      ] );
  ]
