(* Policy table rules and the DNS extension service. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

(* ---- policy table ---- *)

let test_policy_default () =
  let t = Mobileip.Policy_table.create () in
  Alcotest.(check bool) "default optimistic" true
    (Mobileip.Policy_table.mode_for t (a "1.2.3.4")
    = Mobileip.Policy_table.Optimistic);
  let t2 =
    Mobileip.Policy_table.create ~default:Mobileip.Policy_table.Pessimistic ()
  in
  Alcotest.(check bool) "default pessimistic" true
    (Mobileip.Policy_table.mode_for t2 (a "1.2.3.4")
    = Mobileip.Policy_table.Pessimistic)

let test_policy_lpm () =
  let t = Mobileip.Policy_table.create () in
  Mobileip.Policy_table.add_rule t (p "36.0.0.0/8") Mobileip.Policy_table.Pessimistic;
  Mobileip.Policy_table.add_rule t (p "36.1.5.0/24") Mobileip.Policy_table.Optimistic;
  Alcotest.(check bool) "/24 overrides /8" true
    (Mobileip.Policy_table.mode_for t (a "36.1.5.9")
    = Mobileip.Policy_table.Optimistic);
  Alcotest.(check bool) "/8 elsewhere" true
    (Mobileip.Policy_table.mode_for t (a "36.200.0.1")
    = Mobileip.Policy_table.Pessimistic);
  Alcotest.(check bool) "default outside" true
    (Mobileip.Policy_table.mode_for t (a "44.0.0.1")
    = Mobileip.Policy_table.Optimistic)

let test_policy_remove () =
  let t = Mobileip.Policy_table.create () in
  Mobileip.Policy_table.add_rule t (p "36.0.0.0/8") Mobileip.Policy_table.Pessimistic;
  Mobileip.Policy_table.remove_rule t (p "36.0.0.0/8");
  Alcotest.(check int) "empty" 0 (List.length (Mobileip.Policy_table.rules t));
  Alcotest.(check bool) "back to default" true
    (Mobileip.Policy_table.mode_for t (a "36.1.1.1")
    = Mobileip.Policy_table.Optimistic)

let test_policy_parse () =
  let text =
    "# home network is behind a protective gateway\n\
     36.0.0.0/8  pessimistic\n\
     131.7.42.0/24\toptimistic   # lab subnet\n\
     \n\
     default optimistic\n"
  in
  match Mobileip.Policy_table.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check bool) "pessimistic for home" true
        (Mobileip.Policy_table.mode_for t (a "36.9.9.9")
        = Mobileip.Policy_table.Pessimistic);
      Alcotest.(check bool) "optimistic for lab" true
        (Mobileip.Policy_table.mode_for t (a "131.7.42.9")
        = Mobileip.Policy_table.Optimistic);
      Alcotest.(check bool) "default" true
        (Mobileip.Policy_table.mode_for t (a "200.0.0.1")
        = Mobileip.Policy_table.Optimistic);
      (* Round trip. *)
      (match
         Mobileip.Policy_table.of_string (Mobileip.Policy_table.to_string t)
       with
      | Ok t2 ->
          Alcotest.(check int) "rules preserved"
            (List.length (Mobileip.Policy_table.rules t))
            (List.length (Mobileip.Policy_table.rules t2))
      | Error e -> Alcotest.fail ("round trip: " ^ e))

let test_policy_parse_errors () =
  let check_err name text =
    match Mobileip.Policy_table.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should fail" name
  in
  check_err "bad prefix" "36.0.0/8 pessimistic\n";
  check_err "bad mode" "36.0.0.0/8 paranoid\n";
  check_err "duplicate default" "default optimistic\ndefault pessimistic\n";
  check_err "junk line" "36.0.0.0/8 pessimistic extra\n";
  (* Line numbers are reported. *)
  match Mobileip.Policy_table.of_string "\n\nnonsense here\n" with
  | Error e ->
      Alcotest.(check bool) "line number in error" true
        (String.length e >= 6 && String.sub e 0 6 = "line 3")
  | Ok _ -> Alcotest.fail "should fail"

(* ---- DNS extension ---- *)

let dns_world () =
  let net = Net.create () in
  let server = Net.add_host net "dns" in
  let client = Net.add_host net "client" in
  let seg = Net.add_segment net ~name:"lan" () in
  let _ = Net.attach server seg ~ifname:"eth0" ~addr:(a "10.0.0.1")
      ~prefix:(p "10.0.0.0/24") in
  let _ = Net.attach client seg ~ifname:"eth0" ~addr:(a "10.0.0.2")
      ~prefix:(p "10.0.0.0/24") in
  let srv = Mobileip.Dns_ext.Server.create server () in
  (net, srv, client)

let resolve net client ~name =
  let got = ref None in
  Mobileip.Dns_ext.Client.resolve client ~server:(a "10.0.0.1") ~name
    (fun answer -> got := Some answer);
  Net.run net;
  !got

let test_dns_permanent_record () =
  let net, srv, client = dns_world () in
  Mobileip.Dns_ext.Server.add_host srv ~name:"mh.home" ~addr:(a "36.1.0.5");
  match resolve net client ~name:"mh.home" with
  | Some ans ->
      Alcotest.(check (option string)) "A record" (Some "36.1.0.5")
        (Option.map Ipv4_addr.to_string ans.Mobileip.Dns_ext.Client.permanent);
      Alcotest.(check bool) "no temporary" true
        (ans.Mobileip.Dns_ext.Client.temporary = None)
  | None -> Alcotest.fail "no answer"

let test_dns_unknown_name () =
  let net, _srv, client = dns_world () in
  match resolve net client ~name:"nobody.example" with
  | Some ans ->
      Alcotest.(check bool) "empty answer" true
        (ans.Mobileip.Dns_ext.Client.permanent = None
        && ans.Mobileip.Dns_ext.Client.temporary = None)
  | None -> Alcotest.fail "no answer"

let test_dns_temporary_record_via_update () =
  let net, srv, client = dns_world () in
  Mobileip.Dns_ext.Server.add_host srv ~name:"mh.home" ~addr:(a "36.1.0.5");
  Mobileip.Dns_ext.Client.publish_temporary client ~server:(a "10.0.0.1")
    ~name:"mh.home" ~care_of:(a "131.7.0.100") ~ttl:120 ();
  Net.run net;
  Alcotest.(check int) "update applied" 1
    (Mobileip.Dns_ext.Server.updates_applied srv);
  match resolve net client ~name:"mh.home" with
  | Some ans -> (
      match ans.Mobileip.Dns_ext.Client.temporary with
      | Some (coa, ttl) ->
          Alcotest.(check string) "temporary addr" "131.7.0.100"
            (Ipv4_addr.to_string coa);
          Alcotest.(check bool) "ttl positive" true (ttl > 0 && ttl <= 120)
      | None -> Alcotest.fail "temporary record missing")
  | None -> Alcotest.fail "no answer"

let test_dns_withdraw () =
  let net, srv, client = dns_world () in
  Mobileip.Dns_ext.Server.add_host srv ~name:"mh.home" ~addr:(a "36.1.0.5");
  Mobileip.Dns_ext.Server.set_temporary srv ~name:"mh.home"
    (Some (a "131.7.0.100", 120));
  Mobileip.Dns_ext.Client.publish_temporary client ~server:(a "10.0.0.1")
    ~name:"mh.home" ~care_of:Ipv4_addr.any ~ttl:0 ();
  Net.run net;
  match resolve net client ~name:"mh.home" with
  | Some ans ->
      Alcotest.(check bool) "withdrawn" true
        (ans.Mobileip.Dns_ext.Client.temporary = None)
  | None -> Alcotest.fail "no answer"

let test_dns_ttl_expiry () =
  let net, srv, client = dns_world () in
  Mobileip.Dns_ext.Server.add_host srv ~name:"mh.home" ~addr:(a "36.1.0.5");
  Mobileip.Dns_ext.Server.set_temporary srv ~name:"mh.home"
    (Some (a "131.7.0.100", 10));
  (* Let 20 simulated seconds pass. *)
  Engine.after (Net.engine net) 20.0 (fun () -> ());
  Net.run net;
  match resolve net client ~name:"mh.home" with
  | Some ans ->
      Alcotest.(check bool) "temporary expired with its TTL" true
        (ans.Mobileip.Dns_ext.Client.temporary = None);
      Alcotest.(check bool) "permanent survives" true
        (ans.Mobileip.Dns_ext.Client.permanent <> None)
  | None -> Alcotest.fail "no answer"

let test_dns_server_lookup_api () =
  let _net, srv, _client = dns_world () in
  Mobileip.Dns_ext.Server.add_host srv ~name:"x" ~addr:(a "1.1.1.1");
  (match Mobileip.Dns_ext.Server.lookup srv ~name:"x" with
  | Some (Some perm, None) ->
      Alcotest.(check string) "perm" "1.1.1.1" (Ipv4_addr.to_string perm)
  | _ -> Alcotest.fail "unexpected");
  Alcotest.(check bool) "unknown is None" true
    (Mobileip.Dns_ext.Server.lookup srv ~name:"y" = None)

let suites =
  [
    ( "policy+dns",
      [
        Alcotest.test_case "policy default" `Quick test_policy_default;
        Alcotest.test_case "policy LPM" `Quick test_policy_lpm;
        Alcotest.test_case "policy remove" `Quick test_policy_remove;
        Alcotest.test_case "policy parse config" `Quick test_policy_parse;
        Alcotest.test_case "policy parse errors" `Quick
          test_policy_parse_errors;
        Alcotest.test_case "dns permanent record" `Quick
          test_dns_permanent_record;
        Alcotest.test_case "dns unknown name" `Quick test_dns_unknown_name;
        Alcotest.test_case "dns temporary via update" `Quick
          test_dns_temporary_record_via_update;
        Alcotest.test_case "dns withdraw" `Quick test_dns_withdraw;
        Alcotest.test_case "dns ttl expiry" `Quick test_dns_ttl_expiry;
        Alcotest.test_case "dns server lookup api" `Quick
          test_dns_server_lookup_api;
      ] );
  ]
