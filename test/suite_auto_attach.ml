(* Eager movement detection: the interface is physically re-attached
   (Net.reattach — someone carried the laptop); the mobility software
   notices via agent advertisements, re-attaches and re-registers with no
   explicit move_to_* call. *)

open Netsim

let a = Ipv4_addr.of_string

(* A world with advertising agents on both the visited segment and the
   home segment. *)
let world () =
  let topo = Scenarios.Topo.build () in
  let fa_node = Net.add_router topo.Scenarios.Topo.net "fa" in
  let fa_iface =
    Net.attach fa_node topo.Scenarios.Topo.visited_segment ~ifname:"lan"
      ~addr:(a "131.7.0.3") ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Routing.add_default (Net.routing fa_node) ~gateway:(a "131.7.0.1")
    ~iface:"lan";
  let _fa =
    Mobileip.Foreign_agent.create fa_node ~iface:fa_iface ~advert_interval:0.5
      ~advert_count:100 ()
  in
  (* The home agent also advertises on the home segment (home-network
     detection).  Reuse the agent beacon: a foreign agent object that only
     advertises. *)
  let ha_beacon = Net.add_host topo.Scenarios.Topo.net "ha-beacon" in
  let hb_iface =
    Net.attach ha_beacon topo.Scenarios.Topo.home_segment ~ifname:"eth0"
      ~addr:(a "36.1.0.4") ~prefix:topo.Scenarios.Topo.home_prefix
  in
  let _hb =
    Mobileip.Foreign_agent.create ha_beacon ~iface:hb_iface
      ~advert_interval:0.5 ~advert_count:100 ()
  in
  topo

let test_auto_attach_on_physical_move () =
  let topo = world () in
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.enable_auto_attach mh;
  (* Carry the laptop to the visited network; tell the software nothing. *)
  Net.reattach
    (Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0"))
    topo.Scenarios.Topo.visited_segment;
  Net.clear_arp topo.Scenarios.Topo.mh_node;
  Net.run ~until:20.0 topo.Scenarios.Topo.net;
  Alcotest.(check bool) "noticed and re-registered" true
    (Mobileip.Mobile_host.registered mh);
  Alcotest.(check int) "one auto attach" 1
    (Mobileip.Mobile_host.auto_attaches mh);
  Alcotest.(check (option string)) "care-of from visited pool"
    (Some "131.7.0.100")
    (Option.map Ipv4_addr.to_string (Mobileip.Mobile_host.care_of_address mh));
  (* Traffic flows through the tunnel as usual. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> got := Some rtt);
  Net.run ~until:40.0 topo.Scenarios.Topo.net;
  Alcotest.(check bool) "reachable after auto-attach" true (!got <> None)

let test_auto_return_home () =
  let topo = world () in
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.enable_auto_attach mh;
  let iface = Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0") in
  Net.reattach iface topo.Scenarios.Topo.visited_segment;
  Net.clear_arp topo.Scenarios.Topo.mh_node;
  Net.run ~until:20.0 topo.Scenarios.Topo.net;
  Alcotest.(check bool) "away" true
    (not (Mobileip.Mobile_host.at_home mh));
  (* Carry it home again. *)
  Net.reattach iface topo.Scenarios.Topo.home_segment;
  Net.clear_arp topo.Scenarios.Topo.mh_node;
  Net.run ~until:40.0 topo.Scenarios.Topo.net;
  Alcotest.(check bool) "noticed it is home" true
    (Mobileip.Mobile_host.at_home mh);
  Alcotest.(check bool) "binding withdrawn" true
    (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha = [])

let test_same_network_adverts_ignored () =
  let topo = world () in
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.enable_auto_attach mh;
  (* Sitting at home, hearing the home beacon: nothing should happen. *)
  Net.run ~until:10.0 topo.Scenarios.Topo.net;
  Alcotest.(check int) "no spurious attaches" 0
    (Mobileip.Mobile_host.auto_attaches mh);
  Alcotest.(check bool) "still at home" true (Mobileip.Mobile_host.at_home mh)

let test_disable_auto_attach () =
  let topo = world () in
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.enable_auto_attach mh;
  Mobileip.Mobile_host.disable_auto_attach mh;
  Net.reattach
    (Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0"))
    topo.Scenarios.Topo.visited_segment;
  Net.clear_arp topo.Scenarios.Topo.mh_node;
  Net.run ~until:10.0 topo.Scenarios.Topo.net;
  Alcotest.(check int) "no attach when disabled" 0
    (Mobileip.Mobile_host.auto_attaches mh)

let suites =
  [
    ( "auto-attach",
      [
        Alcotest.test_case "auto attach on physical move" `Quick
          test_auto_attach_on_physical_move;
        Alcotest.test_case "auto return home" `Quick test_auto_return_home;
        Alcotest.test_case "same-network adverts ignored" `Quick
          test_same_network_adverts_ignored;
        Alcotest.test_case "disable auto attach" `Quick
          test_disable_auto_attach;
      ] );
  ]
