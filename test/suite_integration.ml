(* Cross-cutting end-to-end behaviours: encapsulation mode variants,
   transition packet loss, simultaneous per-conversation methods,
   registration refresh, FA discovery by advertisement, heuristics,
   and miscellaneous data-plane corners. *)

open Netsim

let a = Ipv4_addr.of_string

let ping topo ~from_node ~dst =
  let icmp = Transport.Icmp_service.get from_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst (fun ~rtt -> got := Some rtt);
  Scenarios.Topo.run topo;
  !got

(* Every encapsulation mode must carry the In-IE path end to end. *)
let test_tunnel_modes_end_to_end () =
  List.iter
    (fun mode ->
      let topo = Scenarios.Topo.build ~encap:mode () in
      Scenarios.Topo.roam topo ();
      let rtt =
        ping topo ~from_node:topo.Scenarios.Topo.ch_node
          ~dst:topo.Scenarios.Topo.mh_home_addr
      in
      Alcotest.(check bool)
        (Mobileip.Encap.mode_to_string mode ^ " tunnel works")
        true (rtt <> None))
    Mobileip.Encap.all_modes

let test_transition_window_losses_then_recovery () =
  (* §2: "during this transition period it may be possible to lose
     packets, but higher-level protocols are already responsible for
     mechanisms to ensure reliable packet delivery."  Keep a one-way UDP
     stream running while the MH moves away from home: datagrams arriving
     between detachment and the completed registration die (the home
     router still delivers to the vanished host until the home agent's
     gratuitous proxy ARP takes over); the stream then resumes through the
     tunnel. *)
  let topo = Scenarios.Topo.build () in
  let net = topo.Scenarios.Topo.net in
  let received = ref 0 in
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  Transport.Udp_service.listen mh_udp ~port:7777 (fun _ _ -> incr received);
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let eng = Net.engine net in
  (* 40 datagrams, 20 ms apart, spanning t in [1.6, 2.4); the handover
     (detach at 2.0, registration complete ~2.054, plus ~41 ms of transit)
     leaves a window of a few datagrams with nowhere to go. *)
  for i = 0 to 39 do
    Engine.after eng (1.6 +. (float_of_int i *. 0.02)) (fun () ->
        ignore
          (Transport.Udp_service.send ch_udp
             ~dst:topo.Scenarios.Topo.mh_home_addr ~src_port:7000
             ~dst_port:7777 (Bytes.make 64 's')))
  done;
  Engine.after eng 2.0 (fun () ->
      Mobileip.Mobile_host.move_to_dhcp topo.Scenarios.Topo.mh
        topo.Scenarios.Topo.visited_segment ());
  Net.run net;
  Alcotest.(check bool)
    (Printf.sprintf "some datagrams lost in transition (got %d)" !received)
    true
    (!received < 40);
  Alcotest.(check bool)
    (Printf.sprintf "stream recovered after the move (got %d)" !received)
    true
    (!received >= 30)

let test_simultaneous_conversations_different_methods () =
  (* §6 figure caption: "a single host may have many different
     conversations in progress at the same time, choosing for each of them
     the communication mode that is most appropriate."  Pin different
     methods per destination and watch each take its own path. *)
  let topo = Scenarios.Topo.build () in
  (* A second correspondent in the home domain. *)
  let ch2 = Net.add_host topo.Scenarios.Topo.net "ch2" in
  ignore
    (Net.attach ch2 topo.Scenarios.Topo.home_segment ~ifname:"eth0"
       ~addr:(a "36.1.0.30") ~prefix:topo.Scenarios.Topo.home_prefix);
  Routing.add_default (Net.routing ch2) ~gateway:(a "36.1.0.1") ~iface:"eth0";
  Scenarios.Topo.roam topo ();
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.pin_method mh ~dst:topo.Scenarios.Topo.ch_addr
    (Some Mobileip.Grid.Out_DH);
  Mobileip.Mobile_host.pin_method mh ~dst:(a "36.1.0.30")
    (Some Mobileip.Grid.Out_IE);
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let f1 =
    Transport.Udp_service.send udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:5001 ~dst_port:9
      (Bytes.make 32 'x')
  in
  let f2 =
    Transport.Udp_service.send udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:(a "36.1.0.30") ~src_port:5002 ~dst_port:9 (Bytes.make 32 'y')
  in
  Scenarios.Topo.run topo;
  let trace = Net.trace topo.Scenarios.Topo.net in
  Alcotest.(check bool) "both delivered" true
    (Trace.delivered trace ~flow:f1 ~node:"ch"
    && Trace.delivered trace ~flow:f2 ~node:"ch2");
  (* The Out-IE flow visits the home agent; the Out-DH one does not. *)
  Alcotest.(check bool) "Out-IE flow via ha" true
    (List.mem "ha" (Trace.path trace ~flow:f2));
  Alcotest.(check bool) "Out-DH flow direct" false
    (List.mem "ha" (Trace.path trace ~flow:f1))

let test_reregistration_extends_binding () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  let seq_before =
    match Mobileip.Home_agent.bindings ha with
    | [ b ] -> b.Mobileip.Types.sequence
    | _ -> Alcotest.fail "one binding expected"
  in
  let ok = ref None in
  Mobileip.Mobile_host.reregister topo.Scenarios.Topo.mh
    ~on_registered:(fun b -> ok := Some b)
    ();
  Scenarios.Topo.run topo;
  Alcotest.(check (option bool)) "refresh accepted" (Some true) !ok;
  match Mobileip.Home_agent.bindings ha with
  | [ b ] ->
      Alcotest.(check bool) "sequence advanced" true
        (b.Mobileip.Types.sequence > seq_before)
  | _ -> Alcotest.fail "binding lost on refresh"

let test_fa_discovered_by_advertisement () =
  let topo = Scenarios.Topo.build () in
  let fa_node = Net.add_router topo.Scenarios.Topo.net "fa" in
  let fa_iface =
    Net.attach fa_node topo.Scenarios.Topo.visited_segment ~ifname:"lan"
      ~addr:(a "131.7.0.3") ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Routing.add_default (Net.routing fa_node) ~gateway:(a "131.7.0.1")
    ~iface:"lan";
  let _fa =
    Mobileip.Foreign_agent.create fa_node ~iface:fa_iface
      ~advert_interval:1.0 ()
  in
  (* The MH attaches its interface to the segment first, then waits for an
     agent advertisement before registering. *)
  let discovered = ref None in
  Mobileip.Foreign_agent.on_advert topo.Scenarios.Topo.mh_node
    (fun ~fa_addr -> discovered := Some (Ipv4_addr.to_string fa_addr));
  Net.reattach
    (Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0"))
    topo.Scenarios.Topo.visited_segment;
  Scenarios.Topo.run topo;
  Alcotest.(check (option string)) "advert heard" (Some "131.7.0.3") !discovered

let test_port_heuristics_pick_out_dt () =
  (* §7.1.1: an unbound UDP packet to port 53 forgoes Mobile IP. *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.set_heuristics mh [ Mobileip.Mobile_host.http_dns_heuristic ];
  let seen_src = ref None in
  Net.set_delivery_observer topo.Scenarios.Topo.ch_node
    (Some (fun pkt -> seen_src := Some (Ipv4_addr.to_string pkt.Ipv4_packet.src)));
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  (* No ~src: unbound. *)
  ignore
    (Transport.Udp_service.send udp ~dst:topo.Scenarios.Topo.ch_addr
       ~src_port:5500 ~dst_port:Transport.Well_known.dns (Bytes.make 20 'q'));
  Scenarios.Topo.run topo;
  Alcotest.(check (option string)) "DNS query sent from the care-of address"
    (Some "131.7.0.100") !seen_src;
  (* A non-heuristic port from the same unbound socket uses the home
     address (through the default method). *)
  Mobileip.Mobile_host.set_default_method mh Mobileip.Grid.Out_DH;
  seen_src := None;
  ignore
    (Transport.Udp_service.send udp ~dst:topo.Scenarios.Topo.ch_addr
       ~src_port:5501 ~dst_port:9999 (Bytes.make 20 'q'));
  Scenarios.Topo.run topo;
  Alcotest.(check (option string)) "other traffic uses the home address"
    (Some "36.1.0.5") !seen_src

let test_choose_source_api () =
  let topo = Scenarios.Topo.build () in
  let mh = topo.Scenarios.Topo.mh in
  Alcotest.(check string) "at home: home address" "36.1.0.5"
    (Ipv4_addr.to_string (Mobileip.Mobile_host.choose_source mh ()));
  Scenarios.Topo.roam topo ();
  Alcotest.(check string) "away, port 80: care-of" "131.7.0.100"
    (Ipv4_addr.to_string
       (Mobileip.Mobile_host.choose_source mh
          ~tcp_port:Transport.Well_known.http ()));
  Alcotest.(check string) "away, telnet: home" "36.1.0.5"
    (Ipv4_addr.to_string
       (Mobileip.Mobile_host.choose_source mh
          ~tcp_port:Transport.Well_known.telnet ()));
  Mobileip.Mobile_host.set_privacy mh true;
  Alcotest.(check string) "privacy: always home" "36.1.0.5"
    (Ipv4_addr.to_string
       (Mobileip.Mobile_host.choose_source mh
          ~tcp_port:Transport.Well_known.http ()))

let test_mtu_feedback_icmp () =
  (* A DF-marked packet over the MTU triggers fragmentation-needed back to
     the sender. *)
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let d = Net.add_host net "d" in
  let _ =
    Net.p2p net ~mtu:600 ~prefix:(Ipv4_addr.Prefix.of_string "10.9.0.0/30")
      (s, "if0", a "10.9.0.1") (d, "if0", a "10.9.0.2")
  in
  let icmp_s = Transport.Icmp_service.get s in
  let frag_needed = ref false in
  Transport.Icmp_service.on_unreachable icmp_s
    (Some
       (fun ~code ~src:_ ~original:_ ->
         if code = Icmp_wire.Fragmentation_needed then frag_needed := true));
  let pkt =
    Ipv4_packet.make ~dont_fragment:true ~protocol:Ipv4_packet.P_udp
      ~src:(a "10.9.0.1") ~dst:(a "10.9.0.2")
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 1000 'b')))
  in
  let flow = Net.send s pkt in
  Net.run net;
  Alcotest.(check bool) "fragmentation-needed received" true !frag_needed;
  Alcotest.(check bool) "packet dropped" true
    (List.exists
       (fun (_, r) -> Trace.drop_reason_equal r Trace.Mtu_exceeded)
       (Trace.drops (Net.trace net) ~flow))

let test_fragmented_tunnel_end_to_end () =
  (* A datagram that only fragments once encapsulated must still arrive
     whole at the mobile host. *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let got = ref None in
  Transport.Udp_service.listen mh_udp ~port:6100 (fun _ d ->
      got := Some (Bytes.length d.Transport.Udp_service.payload));
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  ignore
    (Transport.Udp_service.send ch_udp ~dst:topo.Scenarios.Topo.mh_home_addr
       ~src_port:6000 ~dst_port:6100 (Bytes.make 1460 'g'));
  Scenarios.Topo.run topo;
  Alcotest.(check (option int)) "reassembled at the mobile host" (Some 1460)
    !got

let test_multicast_not_joined_not_delivered () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let r1 = Net.add_host net "r1" in
  let seg = Net.add_segment net ~name:"lan" () in
  let is_ =
    Net.attach s seg ~ifname:"eth0" ~addr:(a "10.0.0.1")
      ~prefix:(Ipv4_addr.Prefix.of_string "10.0.0.0/24")
  in
  ignore
    (Net.attach r1 seg ~ifname:"eth0" ~addr:(a "10.0.0.2")
       ~prefix:(Ipv4_addr.Prefix.of_string "10.0.0.0/24"));
  let udp_r = Transport.Udp_service.get r1 in
  let got = ref 0 in
  Transport.Udp_service.listen udp_r ~port:5004 (fun _ _ -> incr got);
  let udp_s = Transport.Udp_service.get s in
  ignore
    (Transport.Udp_service.send udp_s ~via:is_ ~dst:(a "224.9.9.9")
       ~src_port:5004 ~dst_port:5004 (Bytes.make 10 'm'));
  Net.run net;
  Alcotest.(check int) "not joined, not delivered" 0 !got;
  (* After joining, delivery happens. *)
  let ir1 = Option.get (Net.find_iface r1 "eth0") in
  Net.join_group r1 ir1 (a "224.9.9.9");
  ignore
    (Transport.Udp_service.send udp_s ~via:is_ ~dst:(a "224.9.9.9")
       ~src_port:5004 ~dst_port:5004 (Bytes.make 10 'm'));
  Net.run net;
  Alcotest.(check int) "joined, delivered" 1 !got

let test_privacy_hides_care_of_everywhere () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.set_privacy topo.Scenarios.Topo.mh true;
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  ignore
    (Transport.Udp_service.send udp ~src:topo.Scenarios.Topo.mh_home_addr
       ~dst:topo.Scenarios.Topo.ch_addr ~src_port:5600 ~dst_port:9
       (Bytes.make 10 'p'));
  Scenarios.Topo.run topo;
  (* No packet delivered at the CH may expose the care-of address in any
     header field. *)
  let coa = a "131.7.0.100" in
  let leaked =
    List.exists
      (fun r ->
        match r.Trace.event with
        | Trace.Deliver { node = "ch"; frame } ->
            let rec mentions (p : Ipv4_packet.t) =
              Ipv4_addr.equal p.Ipv4_packet.src coa
              || Ipv4_addr.equal p.Ipv4_packet.dst coa
              ||
              match p.Ipv4_packet.payload with
              | Ipv4_packet.Encap i | Ipv4_packet.Gre_encap i
              | Ipv4_packet.Min_encap i ->
                  mentions i
              | _ -> false
            in
            mentions frame.Trace.pkt
        | _ -> false)
      (Trace.records (Net.trace topo.Scenarios.Topo.net))
  in
  Alcotest.(check bool) "care-of address never reaches the correspondent"
    false leaked

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "all tunnel modes end to end" `Quick
          test_tunnel_modes_end_to_end;
        Alcotest.test_case "transition window loss + recovery" `Quick
          test_transition_window_losses_then_recovery;
        Alcotest.test_case "simultaneous conversations, distinct methods"
          `Quick test_simultaneous_conversations_different_methods;
        Alcotest.test_case "reregistration extends binding" `Quick
          test_reregistration_extends_binding;
        Alcotest.test_case "fa discovered by advertisement" `Quick
          test_fa_discovered_by_advertisement;
        Alcotest.test_case "port heuristics pick Out-DT" `Quick
          test_port_heuristics_pick_out_dt;
        Alcotest.test_case "choose_source api" `Quick test_choose_source_api;
        Alcotest.test_case "mtu feedback icmp" `Quick test_mtu_feedback_icmp;
        Alcotest.test_case "fragmented tunnel end to end" `Quick
          test_fragmented_tunnel_end_to_end;
        Alcotest.test_case "multicast membership gating" `Quick
          test_multicast_not_joined_not_delivered;
        Alcotest.test_case "privacy hides care-of everywhere" `Quick
          test_privacy_hides_care_of_everywhere;
      ] );
  ]
