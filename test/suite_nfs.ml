(* Address-based trust (§3.1): the NFS story end to end — why the home
   source address matters, why Out-DT loses access, why ingress filtering
   exists, and why the reverse tunnel restores everything. *)

open Netsim

let a = Ipv4_addr.of_string

(* A home-domain file server exporting to home addresses only, in a
   filtered world with the MH roaming. *)
let world () =
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  let nfs_node = Net.add_host topo.Scenarios.Topo.net "nfsd" in
  ignore
    (Net.attach nfs_node topo.Scenarios.Topo.home_segment ~ifname:"eth0"
       ~addr:(a "36.1.0.40") ~prefix:topo.Scenarios.Topo.home_prefix);
  Routing.add_default (Net.routing nfs_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let server =
    Scenarios.Nfs.Server.create nfs_node
      ~exports:[ ("/home/mary/paper.tex", Bytes.make 900 'p') ]
      ~trusted:[ topo.Scenarios.Topo.home_prefix ]
      ()
  in
  Scenarios.Topo.roam topo ();
  (topo, server)

let read topo ~src =
  Scenarios.Nfs.Client.read ~net:topo.Scenarios.Topo.net
    topo.Scenarios.Topo.mh_node ~server:(a "36.1.0.40") ~src
    ~path:"/home/mary/paper.tex" ()

let test_home_address_via_tunnel_succeeds () =
  let topo, server = world () in
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_IE;
  (match read topo ~src:topo.Scenarios.Topo.mh_home_addr with
  | Some (Scenarios.Nfs.Client.Contents data) ->
      Alcotest.(check int) "file read" 900 (Bytes.length data)
  | other ->
      Alcotest.failf "expected contents, got %s"
        (match other with
        | Some r -> Format.asprintf "%a" Scenarios.Nfs.Client.pp_result r
        | None -> "no reply"));
  Alcotest.(check int) "served" 1 (Scenarios.Nfs.Server.requests_served server)

let test_temporary_address_denied () =
  let topo, server = world () in
  let coa =
    Option.get (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh)
  in
  (match read topo ~src:coa with
  | Some Scenarios.Nfs.Client.Access_denied -> ()
  | other ->
      Alcotest.failf "expected EACCES, got %s"
        (match other with
        | Some r -> Format.asprintf "%a" Scenarios.Nfs.Client.pp_result r
        | None -> "no reply"));
  Alcotest.(check int) "refused" 1 (Scenarios.Nfs.Server.requests_refused server)

let test_plain_home_address_filtered () =
  (* Out-DH: the request claims the home source but arrives at the home
     boundary from outside — the ingress filter eats it and the client
     sees nothing at all.  This is exactly Figure 2 with NFS semantics. *)
  let topo, server = world () in
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  Alcotest.(check bool) "no reply at all" true
    (read topo ~src:topo.Scenarios.Topo.mh_home_addr = None);
  Alcotest.(check int) "server never saw it" 0
    (Scenarios.Nfs.Server.requests_served server
    + Scenarios.Nfs.Server.requests_refused server)

let test_spoofing_attacker_blocked () =
  (* An outside attacker forging the trusted home address: stopped by the
     same ingress filter.  (Without filtering, address-trusting services
     are exactly as vulnerable as §3.1 warns.) *)
  let topo, server = world () in
  let attacker = topo.Scenarios.Topo.ch_node in
  let udp = Transport.Udp_service.get attacker in
  let req = Bytes.cat (Bytes.make 1 '\001') (Bytes.of_string "/home/mary/paper.tex") in
  ignore
    (Transport.Udp_service.send udp ~src:(a "36.1.0.99") ~dst:(a "36.1.0.40")
       ~src_port:50000 ~dst_port:Transport.Well_known.nfs req);
  Scenarios.Topo.run topo;
  Alcotest.(check int) "spoofed request never reached the server" 0
    (Scenarios.Nfs.Server.requests_served server
    + Scenarios.Nfs.Server.requests_refused server)

let test_spoofing_succeeds_without_filtering () =
  (* The §3.1 threat made concrete: drop the filter and the forged READ
     goes through (the reply races off toward the real home host, but
     "many kinds of attack can be performed without needing to see any
     replies"). *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote
      ~filtering:Scenarios.Topo.no_filtering ()
  in
  let nfs_node = Net.add_host topo.Scenarios.Topo.net "nfsd" in
  ignore
    (Net.attach nfs_node topo.Scenarios.Topo.home_segment ~ifname:"eth0"
       ~addr:(a "36.1.0.40") ~prefix:topo.Scenarios.Topo.home_prefix);
  Routing.add_default (Net.routing nfs_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let server =
    Scenarios.Nfs.Server.create nfs_node
      ~exports:[ ("/secret", Bytes.make 10 's') ]
      ~trusted:[ topo.Scenarios.Topo.home_prefix ]
      ()
  in
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let req = Bytes.cat (Bytes.make 1 '\001') (Bytes.of_string "/secret") in
  ignore
    (Transport.Udp_service.send udp ~src:(a "36.1.0.99") ~dst:(a "36.1.0.40")
       ~src_port:50001 ~dst_port:Transport.Well_known.nfs req);
  Scenarios.Topo.run topo;
  Alcotest.(check int) "forged request accepted by the trusting server" 1
    (Scenarios.Nfs.Server.requests_served server)

let test_nonexistent_file () =
  let topo, _server = world () in
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_IE;
  match
    Scenarios.Nfs.Client.read ~net:topo.Scenarios.Topo.net
      topo.Scenarios.Topo.mh_node ~server:(a "36.1.0.40")
      ~src:topo.Scenarios.Topo.mh_home_addr ~path:"/nope" ()
  with
  | Some Scenarios.Nfs.Client.No_such_file -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let suites =
  [
    ( "nfs-trust",
      [
        Alcotest.test_case "home address via tunnel succeeds" `Quick
          test_home_address_via_tunnel_succeeds;
        Alcotest.test_case "temporary address denied" `Quick
          test_temporary_address_denied;
        Alcotest.test_case "plain home address filtered" `Quick
          test_plain_home_address_filtered;
        Alcotest.test_case "spoofing attacker blocked by filter" `Quick
          test_spoofing_attacker_blocked;
        Alcotest.test_case "spoofing succeeds without filtering" `Quick
          test_spoofing_succeeds_without_filtering;
        Alcotest.test_case "nonexistent file" `Quick test_nonexistent_file;
      ] );
  ]
