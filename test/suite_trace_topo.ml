(* Trace query helpers on crafted records, plus topology construction
   invariants for every parameter combination. *)

open Netsim

let a = Ipv4_addr.of_string

let dummy_pkt =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(a "1.1.1.1")
    ~dst:(a "2.2.2.2")
    (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.make 10 'd')))

let fi id flow = { Trace.id; flow; pkt = dummy_pkt }

let crafted_trace () =
  let t = Trace.create () in
  Trace.record t ~time:0.0 (Trace.Send { node = "s"; frame = fi 1 7 });
  Trace.record t ~time:0.1
    (Trace.Transmit { link = "l1"; frame = fi 1 7; bytes = 38 });
  Trace.record t ~time:0.2
    (Trace.Forward { node = "r"; in_iface = "a"; out_iface = "b"; frame = fi 1 7 });
  Trace.record t ~time:0.3
    (Trace.Transmit { link = "l2"; frame = fi 1 7; bytes = 38 });
  Trace.record t ~time:0.4 (Trace.Deliver { node = "d"; frame = fi 1 7 });
  (* an unrelated flow *)
  Trace.record t ~time:0.5 (Trace.Send { node = "x"; frame = fi 2 8 });
  Trace.record t ~time:0.6
    (Trace.Drop { node = "y"; reason = Trace.No_route; frame = fi 2 8 });
  t

let test_flow_queries () =
  let t = crafted_trace () in
  Alcotest.(check int) "transmissions" 2 (Trace.transmissions t ~flow:7);
  Alcotest.(check int) "wire bytes" 76 (Trace.wire_bytes t ~flow:7);
  Alcotest.(check bool) "delivered" true (Trace.delivered t ~flow:7 ~node:"d");
  Alcotest.(check (option (float 0.0))) "delivery time" (Some 0.4)
    (Trace.delivery_time t ~flow:7 ~node:"d");
  Alcotest.(check (option (float 0.0))) "send time" (Some 0.0)
    (Trace.send_time t ~flow:7);
  Alcotest.(check (list string)) "path" [ "s"; "r"; "d" ]
    (Trace.path t ~flow:7);
  Alcotest.(check int) "flow 8 not mixed in" 0 (Trace.transmissions t ~flow:8);
  Alcotest.(check bool) "flow 8 dropped" true
    (List.exists
       (fun (n, r) -> n = "y" && Trace.drop_reason_equal r Trace.No_route)
       (Trace.drops t ~flow:8));
  Alcotest.(check int) "record count" 7 (Trace.length t);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let test_path_dedups_consecutive () =
  let t = Trace.create () in
  Trace.record t ~time:0.0 (Trace.Send { node = "s"; frame = fi 1 7 });
  Trace.record t ~time:0.1 (Trace.Encapsulate { node = "s"; frame = fi 2 7 });
  Trace.record t ~time:0.2 (Trace.Deliver { node = "d"; frame = fi 3 7 });
  Alcotest.(check (list string)) "s appears once" [ "s"; "d" ]
    (Trace.path t ~flow:7)

(* ---- topology invariants ---- *)

let ping_home topo =
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> got := Some rtt);
  Scenarios.Topo.run topo;
  !got

let test_every_ch_position_builds_and_works () =
  List.iter
    (fun pos ->
      let topo = Scenarios.Topo.build ~ch_position:pos () in
      Scenarios.Topo.roam topo ();
      Alcotest.(check bool) "registered" true
        (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh);
      Alcotest.(check bool) "reachable via tunnel" true (ping_home topo <> None))
    Scenarios.Topo.
      [ Inside_home; Remote; Near_visited; On_visited_segment ]

let test_backbone_length_parametric () =
  List.iter
    (fun n ->
      let topo = Scenarios.Topo.build ~backbone_hops:n () in
      Scenarios.Topo.roam topo ();
      Alcotest.(check bool)
        (Printf.sprintf "works with %d backbone hops" n)
        true
        (ping_home topo <> None))
    [ 2; 3; 7 ]

let test_roam_static_variant () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam_static topo ();
  Alcotest.(check bool) "registered" true
    (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh);
  Alcotest.(check (option string)) "static coa" (Some "131.7.0.200")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh))

let test_strict_filtering_blocks_both_ways () =
  (* Under strict filtering (home ingress + visited no-transit), Out-DH
     dies at the *visited* boundary before it even leaves. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote
      ~filtering:Scenarios.Topo.strict ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  Trace.clear (Net.trace topo.Scenarios.Topo.net);
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let flow =
    Transport.Udp_service.send udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:7100 ~dst_port:9
      (Bytes.make 16 't')
  in
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "dropped at vr with transit-filter" true
    (List.exists
       (fun (n, r) ->
         n = "vr" && Trace.drop_reason_equal r Trace.Transit_filter)
       (Trace.drops (Net.trace topo.Scenarios.Topo.net) ~flow))

let test_dhcp_leases_accumulate () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Alcotest.(check int) "one lease" 1
    (Transport.Dhcp.Server.outstanding topo.Scenarios.Topo.dhcp);
  (* Same client re-requesting keeps its lease (stable per MAC). *)
  Scenarios.Topo.come_home topo;
  Scenarios.Topo.roam topo ();
  Alcotest.(check int) "still one lease" 1
    (Transport.Dhcp.Server.outstanding topo.Scenarios.Topo.dhcp)

let test_workload_udp_transaction () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let answered, rtt =
    Scenarios.Workload.udp_request_response ~net:topo.Scenarios.Topo.net
      ~client:topo.Scenarios.Topo.mh_node ~server:topo.Scenarios.Topo.ch_node
      ~server_addr:topo.Scenarios.Topo.ch_addr ~port:Transport.Well_known.nfs
      ~src:topo.Scenarios.Topo.mh_home_addr ()
  in
  Alcotest.(check bool) "answered" true answered;
  Alcotest.(check bool) "rtt positive" true (rtt > 0.0)

let test_workload_http_fetch () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Workload.install_http_server topo.Scenarios.Topo.ch_node ();
  Scenarios.Topo.roam topo ();
  let ok, elapsed =
    Scenarios.Workload.http_fetch ~net:topo.Scenarios.Topo.net
      ~client:topo.Scenarios.Topo.mh_node
      ~server_addr:topo.Scenarios.Topo.ch_addr
      ~src:topo.Scenarios.Topo.mh_home_addr ()
  in
  Alcotest.(check bool) "fetched" true ok;
  Alcotest.(check bool) "took time" true (elapsed > 0.0)

(* ---- trace gating ---- *)

let gating_world () =
  let net = Net.create () in
  let h1 = Net.add_host net "h1" in
  let h2 = Net.add_host net "h2" in
  let seg = Net.add_segment net ~name:"lan" () in
  let pfx = Ipv4_addr.Prefix.of_string "10.0.0.0/24" in
  let _ = Net.attach h1 seg ~ifname:"eth0" ~addr:(a "10.0.0.1") ~prefix:pfx in
  let _ = Net.attach h2 seg ~ifname:"eth0" ~addr:(a "10.0.0.2") ~prefix:pfx in
  ignore (Transport.Icmp_service.get h2);
  (net, h1)

let gating_ping net h1 =
  let got = ref false in
  Transport.Icmp_service.ping
    (Transport.Icmp_service.get h1)
    ~dst:(a "10.0.0.2")
    (fun ~rtt:_ -> got := true);
  Net.run net;
  !got

let render r = Format.asprintf "%.6f %a" r.Trace.time Trace.pp_record r

let test_gating_disabled_records_nothing () =
  let net, h1 = gating_world () in
  Net.set_tracing net false;
  Alcotest.(check bool) "ping still works" true (gating_ping net h1);
  Alcotest.(check int) "no records while disabled" 0
    (Trace.length (Net.trace net));
  (* Re-enabling resumes recording on the same trace. *)
  Net.set_tracing net true;
  Alcotest.(check bool) "second ping works" true (gating_ping net h1);
  Alcotest.(check bool) "records resume" true (Trace.length (Net.trace net) > 0)

(* An observer (resp. the process-wide sink) must keep the data plane
   emitting events even when the trace itself is disabled, and the events
   must be exactly those an enabled run records. *)
let test_gating_observer_sees_identical_events () =
  let net1, h1 = gating_world () in
  Alcotest.(check bool) "reference ping" true (gating_ping net1 h1);
  let reference = List.map render (Trace.records (Net.trace net1)) in
  Alcotest.(check bool) "reference run recorded" true (reference <> []);
  let net2, h2 = gating_world () in
  Net.set_tracing net2 false;
  let seen = ref [] in
  Trace.set_observer (Net.trace net2) (Some (fun r -> seen := r :: !seen));
  Alcotest.(check bool) "observed ping" true (gating_ping net2 h2);
  Alcotest.(check (list string)) "observer sees the enabled-run events"
    reference
    (List.rev_map render !seen);
  (* While a consumer keeps the trace interested, records are still
     logged to the buffer normally. *)
  Alcotest.(check (list string)) "buffer logged normally too" reference
    (List.map render (Trace.records (Net.trace net2)))

let test_gating_sink_sees_identical_events () =
  let net1, h1 = gating_world () in
  Alcotest.(check bool) "reference ping" true (gating_ping net1 h1);
  let reference = List.map render (Trace.records (Net.trace net1)) in
  let net2, h2 = gating_world () in
  Net.set_tracing net2 false;
  let seen = ref [] in
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      Trace.set_sink (Some (fun r -> seen := r :: !seen));
      Alcotest.(check bool) "sink ping" true (gating_ping net2 h2));
  Alcotest.(check (list string)) "sink sees the enabled-run events" reference
    (List.rev_map render !seen)

let suites =
  [
    ( "trace+topo",
      [
        Alcotest.test_case "flow queries" `Quick test_flow_queries;
        Alcotest.test_case "path dedups" `Quick test_path_dedups_consecutive;
        Alcotest.test_case "every ch position works" `Quick
          test_every_ch_position_builds_and_works;
        Alcotest.test_case "backbone length parametric" `Quick
          test_backbone_length_parametric;
        Alcotest.test_case "roam static" `Quick test_roam_static_variant;
        Alcotest.test_case "strict filtering at visited boundary" `Quick
          test_strict_filtering_blocks_both_ways;
        Alcotest.test_case "dhcp leases stable per client" `Quick
          test_dhcp_leases_accumulate;
        Alcotest.test_case "workload udp transaction" `Quick
          test_workload_udp_transaction;
        Alcotest.test_case "workload http fetch" `Quick
          test_workload_http_fetch;
        Alcotest.test_case "gating: disabled records nothing" `Quick
          test_gating_disabled_records_nothing;
        Alcotest.test_case "gating: observer sees identical events" `Quick
          test_gating_observer_sees_identical_events;
        Alcotest.test_case "gating: sink sees identical events" `Quick
          test_gating_sink_sees_identical_events;
      ] );
  ]
