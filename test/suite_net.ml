(* Smoke tests for the data plane: topology, ARP, forwarding, filtering,
   TCP and UDP end to end, DHCP. *)

open Netsim

let addr = Ipv4_addr.of_string
let prefix = Ipv4_addr.Prefix.of_string

(* Two hosts on one segment. *)
let two_host_segment () =
  let net = Net.create () in
  let a = Net.add_host net "a" in
  let b = Net.add_host net "b" in
  let seg = Net.add_segment net ~name:"lan" () in
  let ia = Net.attach a seg ~ifname:"eth0" ~addr:(addr "10.0.0.1") ~prefix:(prefix "10.0.0.0/24") in
  let ib = Net.attach b seg ~ifname:"eth0" ~addr:(addr "10.0.0.2") ~prefix:(prefix "10.0.0.0/24") in
  (net, a, b, ia, ib)

(* a --- r --- b over p2p links. *)
let routed_triangle () =
  let net = Net.create () in
  let a = Net.add_host net "a" in
  let r = Net.add_router net "r" in
  let b = Net.add_host net "b" in
  let _ =
    Net.p2p net ~prefix:(prefix "10.1.0.0/30")
      (a, "if0", addr "10.1.0.1")
      (r, "if0", addr "10.1.0.2")
  in
  let _ =
    Net.p2p net ~prefix:(prefix "10.2.0.0/30")
      (r, "if1", addr "10.2.0.1")
      (b, "if0", addr "10.2.0.2")
  in
  Routing.add_default (Net.routing a) ~gateway:(addr "10.1.0.2") ~iface:"if0";
  Routing.add_default (Net.routing b) ~gateway:(addr "10.2.0.1") ~iface:"if0";
  (net, a, r, b)

let test_ping_same_segment () =
  let net, a, b, _, _ = two_host_segment () in
  let icmp_a = Transport.Icmp_service.get a in
  let (_ : Transport.Icmp_service.t) = Transport.Icmp_service.get b in
  let got = ref None in
  Transport.Icmp_service.ping icmp_a ~dst:(addr "10.0.0.2") (fun ~rtt ->
      got := Some rtt);
  Net.run net;
  match !got with
  | None -> Alcotest.fail "no ping reply"
  | Some rtt -> Alcotest.(check bool) "rtt positive" true (rtt > 0.0)

let test_ping_routed () =
  let net, a, _r, b = routed_triangle () in
  let icmp_a = Transport.Icmp_service.get a in
  let (_ : Transport.Icmp_service.t) = Transport.Icmp_service.get b in
  let got = ref None in
  Transport.Icmp_service.ping icmp_a ~dst:(addr "10.2.0.2") (fun ~rtt ->
      got := Some rtt);
  Net.run net;
  Alcotest.(check bool) "reply received" true (!got <> None)

let test_arp_populated () =
  let net, a, _b, _, _ = two_host_segment () in
  let icmp_a = Transport.Icmp_service.get a in
  Transport.Icmp_service.ping icmp_a ~dst:(addr "10.0.0.2") (fun ~rtt:_ -> ());
  Net.run net;
  Alcotest.(check bool)
    "a resolved b's MAC" true
    (Net.arp_lookup a (addr "10.0.0.2") <> None)

let test_ingress_filter_drops () =
  let net, a, r, _b = routed_triangle () in
  (* r treats if1 side (10.2/16) as its inside; a packet arriving on if0
     (outside) claiming an inside source must be dropped. *)
  Net.set_filter r
    (Filter.of_rules
       [
         Filter.ingress_source_filter ~external_iface:"if0"
           ~inside:[ prefix "10.2.0.0/16" ];
       ]);
  let spoofed =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(addr "10.2.0.99")
      ~dst:(addr "10.2.0.2")
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 (Bytes.create 4)))
  in
  let flow = Net.send a spoofed in
  Net.run net;
  let drops = Trace.drops (Net.trace net) ~flow in
  Alcotest.(check bool) "dropped at r" true
    (List.exists
       (fun (n, reason) ->
         n = "r" && Trace.drop_reason_equal reason Trace.Ingress_filter)
       drops);
  Alcotest.(check bool) "not delivered" false
    (Trace.delivered (Net.trace net) ~flow ~node:"b")

let test_ttl_expiry () =
  let net, a, _r, _b = routed_triangle () in
  let pkt =
    Ipv4_packet.make ~ttl:1 ~protocol:Ipv4_packet.P_udp ~src:(addr "10.1.0.1")
      ~dst:(addr "10.2.0.2")
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 Bytes.empty))
  in
  let flow = Net.send a pkt in
  Net.run net;
  let drops = Trace.drops (Net.trace net) ~flow in
  Alcotest.(check bool) "ttl expired at router" true
    (List.exists
       (fun (n, reason) ->
         n = "r" && Trace.drop_reason_equal reason Trace.Ttl_expired)
       drops)

let test_udp_end_to_end () =
  let net, a, _r, b = routed_triangle () in
  let ua = Transport.Udp_service.get a in
  let ub = Transport.Udp_service.get b in
  let received = ref [] in
  Transport.Udp_service.listen ub ~port:7 (fun svc dgram ->
      received := Bytes.to_string dgram.Transport.Udp_service.payload :: !received;
      (* echo it back *)
      ignore
        (Transport.Udp_service.send svc ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src ~src_port:7
           ~dst_port:dgram.Transport.Udp_service.src_port
           dgram.Transport.Udp_service.payload));
  let echoed = ref None in
  Transport.Udp_service.listen ua ~port:5000 (fun _svc dgram ->
      echoed := Some (Bytes.to_string dgram.Transport.Udp_service.payload));
  ignore
    (Transport.Udp_service.send ua ~dst:(addr "10.2.0.2") ~src_port:5000
       ~dst_port:7
       (Bytes.of_string "hello"));
  Net.run net;
  Alcotest.(check (list string)) "server got it" [ "hello" ] !received;
  Alcotest.(check (option string)) "echo returned" (Some "hello") !echoed

let test_tcp_end_to_end () =
  let net, a, _r, b = routed_triangle () in
  let ta = Transport.Tcp.get a in
  let tb = Transport.Tcp.get b in
  let server_got = Buffer.create 64 in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun data ->
          Buffer.add_bytes server_got data;
          Transport.Tcp.send_data conn (Bytes.of_string "response");
          Transport.Tcp.close conn));
  let client_got = Buffer.create 64 in
  let conn =
    Transport.Tcp.connect ta ~dst:(addr "10.2.0.2") ~dst_port:80 ()
  in
  Transport.Tcp.on_receive conn (fun data -> Buffer.add_bytes client_got data);
  Transport.Tcp.send_data conn (Bytes.of_string "request");
  Net.run net;
  Alcotest.(check string) "server received" "request" (Buffer.contents server_got);
  Alcotest.(check string) "client received" "response" (Buffer.contents client_got);
  Alcotest.(check int) "no retransmissions" 0 (Transport.Tcp.retransmissions conn)

let test_tcp_large_transfer_segments () =
  let net, a, _r, b = routed_triangle () in
  let ta = Transport.Tcp.get a in
  let tb = Transport.Tcp.get b in
  let total = 5000 in
  let server_got = Buffer.create total in
  Transport.Tcp.listen tb ~port:80 (fun conn ->
      Transport.Tcp.on_receive conn (fun data -> Buffer.add_bytes server_got data));
  let conn = Transport.Tcp.connect ta ~dst:(addr "10.2.0.2") ~dst_port:80 () in
  Transport.Tcp.send_data conn (Bytes.make total 'x');
  Net.run net;
  Alcotest.(check int) "all bytes arrived" total (Buffer.length server_got)

let test_tcp_aborts_when_path_dies () =
  let net, a, r, b = routed_triangle () in
  let ta = Transport.Tcp.get a in
  let tb = Transport.Tcp.get b in
  Transport.Tcp.listen tb ~port:80 (fun _conn -> ());
  let conn = Transport.Tcp.connect ta ~dst:(addr "10.2.0.2") ~dst_port:80 () in
  (* Let the handshake complete, then kill the path and send. *)
  Net.run net;
  Alcotest.(check bool) "established" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  Routing.clear (Net.routing r);
  Transport.Tcp.send_data conn (Bytes.of_string "doomed");
  Net.run net;
  Alcotest.(check bool) "aborted after retries" true
    (Transport.Tcp.state conn = Transport.Tcp.Aborted);
  Alcotest.(check int) "max retries used" Transport.Tcp.max_retries
    (Transport.Tcp.retransmissions conn)

let test_dhcp_lease () =
  let net = Net.create () in
  let server = Net.add_host net "dhcpd" in
  let client = Net.add_host net "mh" in
  let seg = Net.add_segment net ~name:"visited" () in
  let _ =
    Net.attach server seg ~ifname:"eth0" ~addr:(addr "192.168.1.1")
      ~prefix:(prefix "192.168.1.0/24")
  in
  let ic =
    Net.attach client seg ~ifname:"eth0" ~addr:Ipv4_addr.any
      ~prefix:(prefix "192.168.1.0/24")
  in
  let _server =
    Transport.Dhcp.Server.create server ~pool:(prefix "192.168.1.0/24")
      ~first_host:100 ~last_host:200 ~gateway:(addr "192.168.1.1") ()
  in
  let got = ref None in
  Transport.Dhcp.Client.request client ~via:ic (fun offer -> got := Some offer);
  Net.run net;
  match !got with
  | None -> Alcotest.fail "no DHCP offer"
  | Some offer ->
      Alcotest.(check string) "address from pool" "192.168.1.100"
        (Ipv4_addr.to_string offer.Transport.Dhcp.Client.addr)

let test_fragmentation_on_path () =
  (* A p2p link with a small MTU forces fragmentation; the far host must
     reassemble and deliver the whole datagram once. *)
  let net = Net.create () in
  let a = Net.add_host net "a" in
  let b = Net.add_host net "b" in
  let _ =
    Net.p2p net ~mtu:600 ~prefix:(prefix "10.9.0.0/30")
      (a, "if0", addr "10.9.0.1")
      (b, "if0", addr "10.9.0.2")
  in
  let ua = Transport.Udp_service.get a in
  let ub = Transport.Udp_service.get b in
  let sizes = ref [] in
  Transport.Udp_service.listen ub ~port:9 (fun _svc dgram ->
      sizes := Bytes.length dgram.Transport.Udp_service.payload :: !sizes);
  ignore
    (Transport.Udp_service.send ua ~dst:(addr "10.9.0.2") ~src_port:5001
       ~dst_port:9 (Bytes.make 1400 'z'));
  Net.run net;
  Alcotest.(check (list int)) "reassembled exactly once" [ 1400 ] !sizes

let test_same_segment_predicate () =
  let _net, a, b, _, _ = two_host_segment () in
  Alcotest.(check bool) "same segment" true (Net.same_segment a b)

let test_l2_direct_delivery () =
  (* In-DH primitive: deliver an IP packet whose destination address does
     not belong to the segment, by addressing the link-layer frame
     directly. *)
  let net, a, b, _ia, ib = two_host_segment () in
  let home = addr "36.1.0.5" in
  Net.claim_address b home;
  let mac_b =
    match Net.iface_mac ib with Some m -> m | None -> Alcotest.fail "mac"
  in
  let pkt =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(addr "10.0.0.1")
      ~dst:home
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 Bytes.empty))
  in
  let via = match Net.find_iface a "eth0" with Some i -> i | None -> assert false in
  let flow = Net.send a ~via ~l2_dst:mac_b pkt in
  Net.run net;
  Alcotest.(check bool) "delivered to b despite foreign address" true
    (Trace.delivered (Net.trace net) ~flow ~node:"b")

let suites =
  [
    ( "net",
      [
        Alcotest.test_case "ping same segment" `Quick test_ping_same_segment;
        Alcotest.test_case "ping via router" `Quick test_ping_routed;
        Alcotest.test_case "arp cache populated" `Quick test_arp_populated;
        Alcotest.test_case "ingress filter drops spoof" `Quick
          test_ingress_filter_drops;
        Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
        Alcotest.test_case "udp end to end" `Quick test_udp_end_to_end;
        Alcotest.test_case "tcp end to end" `Quick test_tcp_end_to_end;
        Alcotest.test_case "tcp large transfer" `Quick
          test_tcp_large_transfer_segments;
        Alcotest.test_case "tcp aborts when path dies" `Quick
          test_tcp_aborts_when_path_dies;
        Alcotest.test_case "dhcp lease" `Quick test_dhcp_lease;
        Alcotest.test_case "fragmentation + reassembly" `Quick
          test_fragmentation_on_path;
        Alcotest.test_case "same segment predicate" `Quick
          test_same_segment_predicate;
        Alcotest.test_case "l2 direct delivery (In-DH primitive)" `Quick
          test_l2_direct_delivery;
      ] );
  ]
