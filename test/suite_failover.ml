(* Failure signaling and failover: ICMP error-context quoting, router
   emission rate limiting, selector fast fallback and its LRU cap,
   mobile-host degradation, and home-agent standby takeover/failback. *)

open Netsim
open Mobileip

let addr = Ipv4_addr.of_string

(* ---------- Icmp_wire context quoting ---------- *)

let arb_packet =
  QCheck.map
    (fun (((s1, s2), (d1, d2)), size) ->
      Ipv4_packet.make ~protocol:Ipv4_packet.P_udp
        ~src:(addr (Printf.sprintf "%d.%d.3.4" (1 + (s1 mod 223)) s2))
        ~dst:(addr (Printf.sprintf "%d.%d.7.8" (1 + (d1 mod 223)) d2))
        (Ipv4_packet.Udp
           (Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make size 'q'))))
    QCheck.(
      pair
        (pair (pair (0 -- 222) (0 -- 255)) (pair (0 -- 222) (0 -- 255)))
        (0 -- 64))

let prop_quote_context_roundtrip =
  QCheck.Test.make ~name:"quoted context names the original src/dst"
    ~count:200 arb_packet (fun pkt ->
      let ctx = Icmp_wire.quote_context (Ipv4_packet.encode pkt) in
      (* RFC 792: the IP header plus at most 8 payload bytes. *)
      Bytes.length ctx <= Ipv4_packet.header_length pkt + 8
      && Icmp_wire.context_original ctx
         = Some (pkt.Ipv4_packet.src, pkt.Ipv4_packet.dst))

let test_truncated_context () =
  let ctx =
    Icmp_wire.quote_context
      (Ipv4_packet.encode
         (Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(addr "1.2.3.4")
            ~dst:(addr "5.6.7.8")
            (Ipv4_packet.Udp
               (Udp_wire.make ~src_port:1 ~dst_port:2 Bytes.empty))))
  in
  Alcotest.(check (option reject))
    "too short to name the original" None
    (Icmp_wire.context_original (Bytes.sub ctx 0 19));
  Alcotest.(check (option reject))
    "empty context" None
    (Icmp_wire.context_original Bytes.empty)

(* ---------- selector: ICMP feedback and the LRU cap ---------- *)

let dst = addr "44.2.0.10"

let test_selector_icmp_fast_fallback () =
  let sel = Selector.create Selector.Aggressive_first in
  Alcotest.(check string) "starts aggressive" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel dst));
  (* One ICMP error abandons the method immediately — no fallback_after
     accumulation of retransmission hints. *)
  Selector.report sel ~dst Selector.Icmp_error;
  Alcotest.(check string) "abandoned on first error" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst));
  Alcotest.(check int) "one switch" 1 (Selector.switches sel ~dst);
  Alcotest.(check bool) "Out-DH remembered failed" true
    (List.exists (Grid.equal_out Grid.Out_DH)
       (Selector.failed_methods sel ~dst));
  Selector.report sel ~dst Selector.Icmp_error;
  Alcotest.(check string) "down to the floor" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  (* Out-IE is the method that always works: an error there has nothing
     below to fall back to. *)
  Selector.report sel ~dst Selector.Icmp_error;
  Alcotest.(check string) "floor holds" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_selector_lru_cap () =
  let d1 = addr "44.2.0.1" and d2 = addr "44.2.0.2" and d3 = addr "44.2.0.3" in
  let sel = Selector.create ~max_destinations:2 Selector.Aggressive_first in
  ignore (Selector.method_for sel d1);
  ignore (Selector.method_for sel d2);
  Selector.report sel ~dst:d2 Selector.Icmp_error;
  (* Touch d1 so d2 is the least recently used... *)
  ignore (Selector.method_for sel d1);
  (* ...and inserting d3 evicts it. *)
  ignore (Selector.method_for sel d3);
  Alcotest.(check (list string))
    "capped at two destinations"
    [ Ipv4_addr.to_string d1; Ipv4_addr.to_string d3 ]
    (List.map Ipv4_addr.to_string (Selector.known_destinations sel));
  (* The evicted destination restarts from the strategy's initial method:
     its failure memory went with it. *)
  Alcotest.(check string) "evicted destination restarts fresh" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel d2));
  Alcotest.(check bool) "cap validated" true
    (try
       ignore (Selector.create ~max_destinations:0 Selector.Aggressive_first);
       false
     with Invalid_argument _ -> true)

(* ---------- router emission: rate limiting and MH consumption ---------- *)

let test_emission_rate_limited () =
  let open Scenarios in
  let topo =
    Topo.build ~ch_position:Topo.Inside_home ~filtering:Topo.ingress_only ()
  in
  let net = topo.Topo.net in
  Net.enable_error_signaling net;
  Topo.roam_static topo ();
  Mobile_host.pin_method topo.Topo.mh ~dst:topo.Topo.ch_addr
    (Some Grid.Out_DH);
  let eng = Net.engine net in
  let udp = Transport.Udp_service.get topo.Topo.mh_node in
  let t0 = Engine.now eng in
  let burst at =
    for k = 0 to 5 do
      Engine.schedule eng
        ~at:(at +. (0.05 *. float_of_int k))
        (fun () ->
          ignore
            (Transport.Udp_service.send udp ~src:topo.Topo.mh_home_addr
               ~dst:topo.Topo.ch_addr ~src_port:40020 ~dst_port:9
               (Bytes.make 8 'z')))
    done
  in
  (* Six filtered packets within the hold-down produce one error; a burst
     after the hold-down (jittered in [1, 1.25) s) produces a second. *)
  burst t0;
  burst (t0 +. 2.0);
  Net.run net;
  Alcotest.(check int) "one error per hold-down window" 2
    (Net.icmp_errors_sent net);
  (* The errors were tunneled home-agent -> MH and consumed there. *)
  Alcotest.(check bool) "mobile host consumed the feedback" true
    (Mobile_host.icmp_errors_consumed topo.Topo.mh >= 1)

(* ---------- mobile host degradation ---------- *)

let test_degradation () =
  let open Scenarios in
  let topo =
    Topo.build ~mh_retry_base:0.2 ~mh_retry_cap:0.4 ~mh_retry_limit:2 ()
  in
  let mh = topo.Topo.mh in
  Alcotest.(check bool) "encapsulating methods rejected" true
    (try
       Mobile_host.set_degradation mh (Some Grid.Out_IE);
       false
     with Invalid_argument _ -> true);
  Mobile_host.set_degradation mh (Some Grid.Out_DH);
  Topo.roam_static topo ();
  Alcotest.(check bool) "registered, not degraded" false
    (Mobile_host.degraded mh);
  (* Kill the home agent and exhaust the retry budget. *)
  Home_agent.crash topo.Topo.ha;
  Mobile_host.reregister mh ();
  Topo.run topo;
  Alcotest.(check bool) "registration abandoned" false
    (Mobile_host.registered mh);
  Alcotest.(check bool) "degraded" true (Mobile_host.degraded mh);
  Alcotest.(check string) "falls back to the direct method" "Out-DH"
    (Grid.out_to_string
       (Mobile_host.out_method_for mh ~dst:topo.Topo.ch_addr));
  (* A successful registration clears the fallback. *)
  Home_agent.restart topo.Topo.ha;
  Mobile_host.reregister mh ();
  Topo.run topo;
  Alcotest.(check bool) "re-registered" true (Mobile_host.registered mh);
  Alcotest.(check bool) "fallback cleared" false (Mobile_host.degraded mh);
  Alcotest.(check string) "back to the default method" "Out-IE"
    (Grid.out_to_string
       (Mobile_host.out_method_for mh ~dst:topo.Topo.ch_addr))

(* ---------- home-agent standby: takeover and failback ---------- *)

let proxy_entries ha =
  List.sort Ipv4_addr.compare (Net.proxy_arp_entries (Home_agent.node ha))

let test_standby_takeover_and_failback () =
  let open Scenarios in
  let topo =
    Topo.build ~with_standby_ha:true ~standby_detect_interval:0.5
      ~standby_detect_timeout:1.0 ~mh_lifetime:120 ()
  in
  let net = topo.Topo.net in
  let eng = Net.engine net in
  let primary = topo.Topo.ha in
  let standby = Option.get topo.Topo.ha_standby in
  Topo.roam_static topo ();
  (* Soft-state replication: the standby already holds the replica but is
     inert on the data plane. *)
  Alcotest.(check int) "replica seeded" 1
    (List.length (Home_agent.bindings standby));
  Alcotest.(check bool) "passive standby" false
    (Home_agent.is_standby_active standby);
  Alcotest.(check (list string)) "no proxy footprint while passive" []
    (List.map Ipv4_addr.to_string (proxy_entries standby));
  Topo.arm_standby topo;
  let t0 = Engine.now eng in
  Engine.schedule eng ~at:(t0 +. 0.6) (fun () -> Home_agent.crash primary);
  (* A probe sent after the detection timeout must reach the MH via the
     standby's takeover tunnel. *)
  let delivered = ref false in
  let mh_udp = Transport.Udp_service.get topo.Topo.mh_node in
  Transport.Udp_service.listen mh_udp ~port:40021 (fun _ _ ->
      delivered := true);
  let ch_udp = Transport.Udp_service.get topo.Topo.ch_node in
  Engine.schedule eng ~at:(t0 +. 4.0) (fun () ->
      ignore
        (Transport.Udp_service.send ch_udp ~dst:topo.Topo.mh_home_addr
           ~src_port:40022 ~dst_port:40021 (Bytes.make 8 'y')));
  Net.run net;
  Alcotest.(check bool) "standby took over" true
    (Home_agent.is_standby_active standby);
  Alcotest.(check int) "one takeover" 1 (Home_agent.takeovers standby);
  (match Home_agent.last_failover standby with
  | None -> Alcotest.fail "no failover latency recorded"
  | Some d ->
      Alcotest.(check bool) "detection latency >= timeout" true (d >= 1.0));
  Alcotest.(check bool) "probe delivered through the standby" true !delivered;
  Alcotest.(check (list string)) "crashed primary proxies nothing" []
    (List.map Ipv4_addr.to_string (proxy_entries primary));
  let captured = proxy_entries standby in
  Alcotest.(check bool) "standby proxies the mobile host's home" true
    (List.exists (Ipv4_addr.equal topo.Topo.mh_home_addr) captured);
  Alcotest.(check bool) "standby proxies the primary's service address" true
    (List.exists (Ipv4_addr.equal (Home_agent.address primary)) captured);
  (* Failback: the standby stands down first, then the primary re-claims —
     never both proxying the same address. *)
  Home_agent.restart primary;
  Alcotest.(check bool) "standby stood down" false
    (Home_agent.is_standby_active standby);
  Alcotest.(check (list string)) "standby released every capture" []
    (List.map Ipv4_addr.to_string (proxy_entries standby));
  Alcotest.(check bool) "binding handed back to the primary" true
    (Home_agent.binding_for primary topo.Topo.mh_home_addr <> None);
  Alcotest.(check bool) "primary proxies the mobile host again" true
    (List.exists (Ipv4_addr.equal topo.Topo.mh_home_addr)
       (proxy_entries primary));
  Net.run net

let test_pair_validation () =
  let open Scenarios in
  let topo =
    Topo.build ~with_standby_ha:true ~standby_detect_interval:0.5
      ~standby_detect_timeout:1.0 ()
  in
  let primary = topo.Topo.ha in
  let standby = Option.get topo.Topo.ha_standby in
  Alcotest.(check bool) "double pairing rejected" true
    (try
       Home_agent.pair ~primary ~standby ();
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "watch requires a standby" true
    (try
       Home_agent.watch primary ();
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "failover",
      [
        QCheck_alcotest.to_alcotest prop_quote_context_roundtrip;
        Alcotest.test_case "truncated context" `Quick test_truncated_context;
        Alcotest.test_case "selector icmp fast fallback" `Quick
          test_selector_icmp_fast_fallback;
        Alcotest.test_case "selector lru cap" `Quick test_selector_lru_cap;
        Alcotest.test_case "emission rate limited" `Quick
          test_emission_rate_limited;
        Alcotest.test_case "degradation ladder" `Quick test_degradation;
        Alcotest.test_case "standby takeover and failback" `Quick
          test_standby_takeover_and_failback;
        Alcotest.test_case "pair validation" `Quick test_pair_validation;
      ] );
  ]
