(* The fault-injection subsystem: scripted flaps, partitions, latency
   spikes, duplication and reordering windows, agent crash/restart, the
   home agent's eager purge, and the registration backoff machinery. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

(* A two-host world over one p2p link, with a sender helper. *)
let tiny_world () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let d = Net.add_host net "d" in
  let _ =
    Net.p2p net ~latency:0.01 ~prefix:(p "10.0.0.0/30") (s, "if0", a "10.0.0.1")
      (d, "if0", a "10.0.0.2")
  in
  let udp_d = Transport.Udp_service.get d in
  let got = ref [] in
  Transport.Udp_service.listen udp_d ~port:7 (fun _ d ->
      got :=
        (Engine.now (Net.engine net), d.Transport.Udp_service.src_port - 47000)
        :: !got);
  let udp_s = Transport.Udp_service.get s in
  let eng = Net.engine net in
  let send_at time k =
    Engine.schedule eng ~at:time (fun () ->
        ignore
          (Transport.Udp_service.send udp_s ~dst:(a "10.0.0.2")
             ~src_port:(47000 + k) ~dst_port:7 (Bytes.make 16 'z')))
  in
  (net, send_at, got)

(* The p2p link's name follows the s<->d convention. *)
let link = "s<->d"

let test_flap_drops_and_recovers () =
  let net, send_at, got = tiny_world () in
  let fault = Fault.attach net in
  Fault.flap fault ~link ~down:1.0 ~up:2.0;
  List.iteri (fun k t -> send_at t k) [ 0.5; 1.2; 1.8; 2.5 ];
  Net.run net;
  Alcotest.(check int) "two delivered" 2 (List.length !got);
  let stats = Fault.stats fault in
  Alcotest.(check int) "two flap drops" 2 stats.Fault.flap_drops;
  let traced =
    List.assoc_opt Trace.Link_flap (Scenarios.Metrics.drops_by_reason net)
  in
  Alcotest.(check (option int)) "drops traced as link-flap" (Some 2) traced

let test_partition_blocks_both_directions () =
  let net, send_at, got = tiny_world () in
  let fault = Fault.attach net in
  Fault.partition fault ~from_:1.0 ~until:2.0 ~a:[ "s" ] ~b:[ "d" ];
  List.iteri (fun k t -> send_at t k) [ 0.5; 1.5; 2.5 ];
  Net.run net;
  Alcotest.(check int) "one dropped" 2 (List.length !got);
  let stats = Fault.stats fault in
  Alcotest.(check int) "partition drop counted" 1 stats.Fault.partition_drops;
  Alcotest.(check (option int)) "traced as partitioned" (Some 1)
    (List.assoc_opt Trace.Partitioned (Scenarios.Metrics.drops_by_reason net))

let test_latency_spike_delays () =
  let net, send_at, got = tiny_world () in
  let fault = Fault.attach net in
  Fault.latency_spike fault ~link ~from_:1.0 ~until:2.0 ~extra:0.5;
  send_at 0.5 0;
  send_at 1.5 1;
  Net.run net;
  match List.rev !got with
  | [ (t1, _); (t2, _) ] ->
      Alcotest.(check bool) "baseline fast" true (t1 -. 0.5 < 0.1);
      Alcotest.(check bool)
        (Printf.sprintf "spiked delivery slow (%.3fs)" (t2 -. 1.5))
        true
        (t2 -. 1.5 > 0.5)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_duplication_window () =
  let run () =
    let net, send_at, got = tiny_world () in
    let fault = Fault.attach ~seed:99 net in
    Fault.duplicate_window fault ~from_:0.0 ~until:10.0 ~rate:0.5;
    for k = 0 to 19 do
      send_at (0.1 +. (0.2 *. float_of_int k)) k
    done;
    Net.run net;
    (List.length !got, (Fault.stats fault).Fault.duplicated)
  in
  let delivered, duplicated = run () in
  Alcotest.(check bool) "extra copies arrived" true (delivered > 20);
  Alcotest.(check int) "every duplicate delivered" (20 + duplicated) delivered;
  let delivered', duplicated' = run () in
  Alcotest.(check (pair int int)) "same seed, same outcome"
    (delivered, duplicated) (delivered', duplicated')

let test_reorder_window () =
  let net, send_at, got = tiny_world () in
  let fault = Fault.attach ~seed:4 net in
  Fault.reorder_window fault ~from_:0.0 ~until:10.0 ~rate:0.7 ~max_extra:0.3;
  for k = 0 to 19 do
    send_at (0.1 +. (0.05 *. float_of_int k)) k
  done;
  Net.run net;
  Alcotest.(check int) "all delivered" 20 (List.length !got);
  let stats = Fault.stats fault in
  Alcotest.(check bool) "some copies jittered" true (stats.Fault.delayed > 0);
  (* Arrival order no longer matches send order: some later probe
     overtook a jittered earlier one. *)
  let arrival_order = List.rev_map snd !got |> List.rev in
  let send_order = List.sort compare arrival_order in
  Alcotest.(check bool) "stream reordered" true (arrival_order <> send_order)

let test_window_validation () =
  let net, _, _ = tiny_world () in
  let fault = Fault.attach net in
  Alcotest.check_raises "empty flap"
    (Invalid_argument "Fault.flap: up must be after down") (fun () ->
      Fault.flap fault ~link ~down:2.0 ~up:2.0);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Fault.duplicate_window: rate must be in [0,1)")
    (fun () -> Fault.duplicate_window fault ~from_:0.0 ~until:1.0 ~rate:1.0)

let test_detach_restores_delivery () =
  let net, send_at, got = tiny_world () in
  let fault = Fault.attach net in
  Fault.link_down fault ~at:0.0 ~link;
  Fault.at fault ~time:1.0 (fun () -> Fault.detach fault);
  send_at 0.5 0;
  send_at 1.5 1;
  Net.run net;
  Alcotest.(check int) "only the post-detach probe arrives" 1
    (List.length !got)

(* ---- control-plane hardening ---- *)

let test_ha_purge_shrinks_table () =
  let topo = Scenarios.Topo.build ~mh_lifetime:20 () in
  Scenarios.Topo.roam topo ();
  let ha = topo.Scenarios.Topo.ha in
  Alcotest.(check int) "binding installed" 1
    (List.length (Mobileip.Home_agent.bindings ha));
  (* Idle past expiry without touching the binding, then purge. *)
  Engine.after (Net.engine topo.Scenarios.Topo.net) 60.0 (fun () -> ());
  Scenarios.Topo.run topo;
  Alcotest.(check int) "stale entry still parked" 1
    (List.length (Mobileip.Home_agent.bindings ha));
  Alcotest.(check int) "purge removes it" 1
    (Mobileip.Home_agent.purge_expired ha);
  Alcotest.(check int) "table empty" 0
    (List.length (Mobileip.Home_agent.bindings ha));
  Alcotest.(check int) "purge counter" 1
    (Mobileip.Home_agent.bindings_purged ha);
  Alcotest.(check int) "second purge is a no-op" 0
    (Mobileip.Home_agent.purge_expired ha)

let test_ha_periodic_purge () =
  let topo = Scenarios.Topo.build ~mh_lifetime:20 () in
  Scenarios.Topo.roam topo ();
  Mobileip.Home_agent.enable_purge topo.Scenarios.Topo.ha ~interval:10.0
    ~ticks:5 ();
  Scenarios.Topo.run topo;
  (* The binding expired at ~20 s; a purge tick (30, 40...) swept it
     without anyone consulting the table. *)
  Alcotest.(check int) "swept by the timer" 1
    (Mobileip.Home_agent.bindings_purged topo.Scenarios.Topo.ha);
  Alcotest.(check int) "table empty" 0
    (List.length (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha))

let test_ha_crash_and_recovery () =
  let topo = Scenarios.Topo.build ~mh_lifetime:10 () in
  let ha = topo.Scenarios.Topo.ha in
  let mh = topo.Scenarios.Topo.mh in
  Scenarios.Topo.roam_static topo ();
  Mobileip.Mobile_host.enable_keepalive mh ~margin:5.0 ~max_renewals:10 ();
  let eng = Net.engine topo.Scenarios.Topo.net in
  let t0 = Engine.now eng in
  Engine.schedule eng ~at:(t0 +. 1.0) (fun () -> Mobileip.Home_agent.crash ha);
  let down_bindings = ref (-1) in
  Engine.schedule eng ~at:(t0 +. 2.0) (fun () ->
      down_bindings := List.length (Mobileip.Home_agent.bindings ha));
  Engine.schedule eng ~at:(t0 +. 4.0) (fun () ->
      Mobileip.Home_agent.restart ha);
  Scenarios.Topo.run topo;
  Alcotest.(check int) "crash wiped the table" 0 !down_bindings;
  Alcotest.(check bool) "agent back up" true (Mobileip.Home_agent.is_up ha);
  (* The keepalive retry loop re-registered once the agent came back. *)
  Alcotest.(check bool) "binding re-established" true
    (Mobileip.Home_agent.binding_for ha topo.Scenarios.Topo.mh_home_addr
    <> None);
  Alcotest.(check bool) "mh registered again" true
    (Mobileip.Mobile_host.registered mh)

let test_fa_crash_clears_visitors () =
  let net = Net.create () in
  let fa_node = Net.add_router net "fa" in
  let seg = Net.add_segment net ~name:"lan" () in
  let iface =
    Net.attach fa_node seg ~ifname:"eth0" ~addr:(a "131.7.0.1")
      ~prefix:(p "131.7.0.0/16")
  in
  let fa = Mobileip.Foreign_agent.create fa_node ~iface ~advertise:false () in
  Alcotest.(check bool) "up" true (Mobileip.Foreign_agent.is_up fa);
  Mobileip.Foreign_agent.crash fa;
  Alcotest.(check bool) "down" false (Mobileip.Foreign_agent.is_up fa);
  Alcotest.(check int) "visitor list wiped" 0
    (List.length (Mobileip.Foreign_agent.visitors fa));
  Mobileip.Foreign_agent.restart fa;
  Alcotest.(check bool) "up again" true (Mobileip.Foreign_agent.is_up fa)

(* ---- registration backoff ---- *)

let backoff_world () =
  (* MH and HA on one segment; no loss — failures come from crashing the
     agent. *)
  let net = Net.create () in
  let ha_node = Net.add_host net "ha" in
  let mh_node = Net.add_host net "mh" in
  let seg = Net.add_segment net ~name:"home" () in
  let ha_iface =
    Net.attach ha_node seg ~ifname:"eth0" ~addr:(a "36.1.0.2")
      ~prefix:(p "36.1.0.0/16")
  in
  let mh_iface =
    Net.attach mh_node seg ~ifname:"eth0" ~addr:(a "36.1.0.5")
      ~prefix:(p "36.1.0.0/16")
  in
  let visited = Net.add_segment net ~name:"visited" () in
  let r = Net.add_router net "r" in
  ignore
    (Net.attach r seg ~ifname:"home" ~addr:(a "36.1.0.1")
       ~prefix:(p "36.1.0.0/16"));
  ignore
    (Net.attach r visited ~ifname:"visited" ~addr:(a "131.7.0.1")
       ~prefix:(p "131.7.0.0/16"));
  Routing.add_default (Net.routing ha_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  Routing.add_default (Net.routing mh_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let ha = Mobileip.Home_agent.create ha_node ~home_iface:ha_iface () in
  let mh =
    Mobileip.Mobile_host.create mh_node ~iface:mh_iface ~home:(a "36.1.0.5")
      ~home_prefix:(p "36.1.0.0/16") ~home_agent:(a "36.1.0.2")
      ~retry_base:0.5 ~retry_cap:2.0 ~retry_limit:4 ()
  in
  (net, ha, mh, visited)

let test_backoff_schedule () =
  let _, _, mh, _ = backoff_world () in
  (* Delays grow exponentially to the cap; jitter stays within +25%. *)
  let d0 = Mobileip.Mobile_host.retry_delay mh 0 in
  let d1 = Mobileip.Mobile_host.retry_delay mh 1 in
  let d2 = Mobileip.Mobile_host.retry_delay mh 2 in
  let d5 = Mobileip.Mobile_host.retry_delay mh 5 in
  Alcotest.(check bool) "d0 in [base, 1.25*base)" true
    (d0 >= 0.5 && d0 < 0.625);
  Alcotest.(check bool) "d1 in [1, 1.25)" true (d1 >= 1.0 && d1 < 1.25);
  Alcotest.(check bool) "d2 capped at 2s (+jitter)" true
    (d2 >= 2.0 && d2 < 2.5);
  Alcotest.(check bool) "cap holds for large n" true (d5 >= 2.0 && d5 < 2.5);
  (* Same seed, same jitter stream. *)
  let _, _, mh2, _ = backoff_world () in
  Alcotest.(check (float 1e-9)) "deterministic jitter" d0
    (Mobileip.Mobile_host.retry_delay mh2 0)

let test_registration_gives_up_after_limit () =
  let net, ha, mh, visited = backoff_world () in
  Mobileip.Home_agent.crash ha;
  let result = ref None in
  Mobileip.Mobile_host.move_to_static mh visited ~addr:(a "131.7.0.50")
    ~prefix:(p "131.7.0.0/16") ~gateway:(a "131.7.0.1")
    ~on_registered:(fun ok -> result := Some ok)
    ();
  Net.run net;
  Alcotest.(check (option bool)) "registration failed" (Some false) !result;
  Alcotest.(check bool) "not registered" false
    (Mobileip.Mobile_host.registered mh);
  (* 4 transmissions at 0.5/1/2 (capped) spacing: all before ~5 s. *)
  Alcotest.(check int) "retry_limit transmissions" 4
    (Mobileip.Mobile_host.registration_attempts mh)

let test_failed_registration_invalidates_correspondent () =
  let net, ha, mh, visited = backoff_world () in
  (* A mobile-aware CH on the home segment that learned our binding. *)
  let ch_node = Net.add_host net "ch" in
  ignore
    (Net.attach ch_node visited ~ifname:"eth0" ~addr:(a "131.7.0.9")
       ~prefix:(p "131.7.0.0/16"));
  Routing.add_default (Net.routing ch_node) ~gateway:(a "131.7.0.1")
    ~iface:"eth0";
  let ch =
    Mobileip.Correspondent.create ch_node
      ~capability:Mobileip.Correspondent.Mobile_aware ()
  in
  let registered = ref None in
  Mobileip.Mobile_host.move_to_static mh visited ~addr:(a "131.7.0.50")
    ~prefix:(p "131.7.0.0/16") ~gateway:(a "131.7.0.1")
    ~on_registered:(fun ok -> registered := Some ok)
    ();
  Net.run net;
  Alcotest.(check (option bool)) "first registration ok" (Some true)
    !registered;
  ignore
    (Mobileip.Mobile_host.send_binding_update mh
       ~correspondent:(a "131.7.0.9") ());
  Net.run net;
  Alcotest.(check (option string)) "ch cached the care-of"
    (Some "131.7.0.50")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Correspondent.cached_care_of ch ~home:(a "36.1.0.5")));
  (* Now the home agent dies and the re-registration runs out of
     retries: the MH must withdraw the binding it advertised. *)
  Mobileip.Home_agent.crash ha;
  Mobileip.Mobile_host.reregister mh ();
  Net.run net;
  Alcotest.(check (option string)) "cache invalidated" None
    (Option.map Ipv4_addr.to_string
       (Mobileip.Correspondent.cached_care_of ch ~home:(a "36.1.0.5")))

(* ---- end-to-end determinism of a full scripted scenario ---- *)

let test_scripted_scenario_deterministic () =
  let run () =
    let net, send_at, got = tiny_world () in
    let fault = Fault.attach ~seed:0xbeef net in
    Fault.flap fault ~link ~down:1.0 ~up:1.5;
    Fault.duplicate_window fault ~from_:2.0 ~until:3.0 ~rate:0.4;
    Fault.reorder_window fault ~from_:3.0 ~until:4.0 ~rate:0.6
      ~max_extra:0.2;
    Fault.partition fault ~from_:4.0 ~until:4.5 ~a:[ "s" ] ~b:[ "d" ];
    for k = 0 to 49 do
      send_at (0.05 +. (0.1 *. float_of_int k)) k
    done;
    Net.run net;
    let s = Fault.stats fault in
    ( List.length !got,
      s.Fault.flap_drops,
      s.Fault.partition_drops,
      s.Fault.duplicated,
      s.Fault.delayed )
  in
  let r1 = run () in
  let r2 = run () in
  let pp (d, f, p, du, de) = Printf.sprintf "%d/%d/%d/%d/%d" d f p du de in
  Alcotest.(check string) "identical replay" (pp r1) (pp r2);
  let d, f, pa, du, de = r1 in
  Alcotest.(check bool) "every fault kind fired" true
    (f > 0 && pa > 0 && du > 0 && de > 0 && d > 0)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "flap drops and recovers" `Quick
          test_flap_drops_and_recovers;
        Alcotest.test_case "partition blocks delivery" `Quick
          test_partition_blocks_both_directions;
        Alcotest.test_case "latency spike" `Quick test_latency_spike_delays;
        Alcotest.test_case "duplication window" `Quick test_duplication_window;
        Alcotest.test_case "reorder window" `Quick test_reorder_window;
        Alcotest.test_case "window validation" `Quick test_window_validation;
        Alcotest.test_case "detach restores delivery" `Quick
          test_detach_restores_delivery;
        Alcotest.test_case "ha purge shrinks table" `Quick
          test_ha_purge_shrinks_table;
        Alcotest.test_case "ha periodic purge" `Quick test_ha_periodic_purge;
        Alcotest.test_case "ha crash and recovery" `Quick
          test_ha_crash_and_recovery;
        Alcotest.test_case "fa crash clears visitors" `Quick
          test_fa_crash_clears_visitors;
        Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
        Alcotest.test_case "registration gives up after limit" `Quick
          test_registration_gives_up_after_limit;
        Alcotest.test_case "failed registration invalidates correspondent"
          `Quick test_failed_registration_invalidates_correspondent;
        Alcotest.test_case "scripted scenario deterministic" `Quick
          test_scripted_scenario_deterministic;
      ] );
  ]
