(* Odds and ends: descriptive grid functions, engine guards, UDP checksum
   corner (zero transmitted as all-ones), conversation cleanup, table
   helpers, encap predicates. *)

open Netsim

let a = Ipv4_addr.of_string

let test_grid_descriptions_nonempty () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Mobileip.Grid.out_to_string m ^ " described")
        true
        (String.length (Mobileip.Grid.describe_out m) > 0))
    Mobileip.Grid.all_out;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Mobileip.Grid.in_to_string m ^ " described")
        true
        (String.length (Mobileip.Grid.describe_in m) > 0))
    Mobileip.Grid.all_in;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Mobileip.Grid.cell_to_string c ^ " described")
        true
        (String.length (Mobileip.Grid.describe_cell c) > 0))
    Mobileip.Grid.all_cells

let test_grid_string_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "out roundtrip" true
        (Mobileip.Grid.out_of_string (Mobileip.Grid.out_to_string m)
        = Some m))
    Mobileip.Grid.all_out;
  List.iter
    (fun m ->
      Alcotest.(check bool) "in roundtrip" true
        (Mobileip.Grid.in_of_string (Mobileip.Grid.in_to_string m) = Some m))
    Mobileip.Grid.all_in;
  Alcotest.(check bool) "garbage rejected" true
    (Mobileip.Grid.out_of_string "Out-XX" = None)

let test_udp_zero_checksum_transmitted_as_ones () =
  (* Find a payload whose computed checksum is zero: RFC 768 says transmit
     0xffff instead, and the receiver accepts it. *)
  let src = a "0.0.0.0" and dst = a "0.0.0.0" in
  (* With zero addresses and ports, the one's-complement sum is
     proto(17) + 2 x length(10) + payload word; choosing the payload word
     0xffff - 37 = 0xffda makes the computed checksum zero, which RFC 768
     requires be transmitted as 0xffff. *)
  let payload = Bytes.create 2 in
  Bytes.set payload 0 '\xff';
  Bytes.set payload 1 '\xda';
  let u = Udp_wire.make ~src_port:0 ~dst_port:0 payload in
  let wire = Udp_wire.encode ~src ~dst u in
  let stored =
    (Char.code (Bytes.get wire 6) lsl 8) lor Char.code (Bytes.get wire 7)
  in
  Alcotest.(check int) "transmitted as 0xffff" 0xffff stored;
  match Udp_wire.decode ~src ~dst wire with
  | Ok u' -> Alcotest.(check bool) "accepted" true (Udp_wire.equal u u')
  | Error e -> Alcotest.fail e

let test_engine_max_events_guard () =
  let e = Engine.create () in
  let rec forever () = Engine.after e 0.001 forever in
  forever ();
  Engine.run ~max_events:100 e;
  (* It stopped rather than looping forever. *)
  Alcotest.(check bool) "bounded" true (Engine.pending e >= 1)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q ~priority:1.0 "x";
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None)

let test_conversation_cleans_up () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  let cell =
    { Mobileip.Grid.incoming = Mobileip.Grid.In_DE; outgoing = Mobileip.Grid.Out_DE }
  in
  let (_ : Mobileip.Conversation.udp_result) =
    Mobileip.Conversation.run_udp ~net:topo.Scenarios.Topo.net
      ~mh:topo.Scenarios.Topo.mh ~ch:topo.Scenarios.Topo.ch
      ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell ()
  in
  (* After the run, the forced/pinned methods are released: the CH falls
     back to its automatic choice and the MH to its default. *)
  Alcotest.(check string) "mh default restored" "Out-IE"
    (Mobileip.Grid.out_to_string
       (Mobileip.Mobile_host.out_method_for topo.Scenarios.Topo.mh
          ~dst:topo.Scenarios.Topo.ch_addr));
  (* The binding cache seeded by the harness is still there, so the
     mobile-aware CH picks In-DE on its own. *)
  Alcotest.(check string) "ch auto method" "In-DE"
    (Mobileip.Grid.in_to_string
       (Mobileip.Correspondent.in_method_for topo.Scenarios.Topo.ch
          ~dst:topo.Scenarios.Topo.mh_home_addr))

let test_table_helpers () =
  Alcotest.(check string) "pct" "50%" (Experiments.Table.pct 1 2);
  Alcotest.(check string) "pct zero den" "-" (Experiments.Table.pct 1 0);
  Alcotest.(check string) "ms" "12.0ms" (Experiments.Table.ms 0.012);
  Alcotest.(check string) "opt_ms none" "-" (Experiments.Table.opt_ms None);
  Alcotest.(check string) "f1" "3.1" (Experiments.Table.f1 3.14)

let test_encap_predicates () =
  let inner =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:(a "1.1.1.1")
      ~dst:(a "2.2.2.2")
      (Ipv4_packet.Udp (Udp_wire.make ~src_port:1 ~dst_port:2 Bytes.empty))
  in
  Alcotest.(check bool) "plain is not tunnel" false
    (Mobileip.Encap.is_tunnel inner);
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        (Mobileip.Encap.mode_to_string mode ^ " is tunnel")
        true
        (Mobileip.Encap.is_tunnel
           (Mobileip.Encap.wrap mode ~src:(a "3.3.3.3") ~dst:(a "4.4.4.4")
              inner)))
    Mobileip.Encap.all_modes

let test_binding_validity () =
  let b =
    {
      Mobileip.Types.home = a "36.1.0.5";
      care_of = a "131.7.0.100";
      lifetime = 100.0;
      registered_at = 50.0;
      sequence = 1;
    }
  in
  Alcotest.(check bool) "valid before expiry" true
    (Mobileip.Types.binding_valid ~now:149.9 b);
  Alcotest.(check bool) "invalid at expiry" false
    (Mobileip.Types.binding_valid ~now:150.0 b);
  Alcotest.(check (float 0.0)) "expires_at" 150.0
    (Mobileip.Types.binding_expires_at b)

let test_reg_codes () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "code roundtrip" true
        (Mobileip.Types.reg_code_of_int (Mobileip.Types.reg_code_to_int c)
        = Some c))
    Mobileip.Types.[ Reg_accepted; Reg_denied_auth; Reg_denied_stale ];
  Alcotest.(check bool) "unknown code" true
    (Mobileip.Types.reg_code_of_int 99 = None)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "grid descriptions" `Quick
          test_grid_descriptions_nonempty;
        Alcotest.test_case "grid string roundtrip" `Quick
          test_grid_string_roundtrip;
        Alcotest.test_case "udp zero checksum" `Quick
          test_udp_zero_checksum_transmitted_as_ones;
        Alcotest.test_case "engine max events guard" `Quick
          test_engine_max_events_guard;
        Alcotest.test_case "pqueue clear" `Quick test_pqueue_clear;
        Alcotest.test_case "conversation cleans up" `Quick
          test_conversation_cleans_up;
        Alcotest.test_case "table helpers" `Quick test_table_helpers;
        Alcotest.test_case "encap predicates" `Quick test_encap_predicates;
        Alcotest.test_case "binding validity" `Quick test_binding_validity;
        Alcotest.test_case "reg codes" `Quick test_reg_codes;
      ] );
  ]
