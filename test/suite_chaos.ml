(* The chaos soak harness: the invariant oracle (one violating run per
   invariant), the seeded plan generator, fault-plan JSON round-trips,
   the delta-debugging shrinker, soak reproducibility, and the TCP
   gave-up counter. *)

open Netsim

let a = Ipv4_addr.of_string
let p = Ipv4_addr.Prefix.of_string

let names oracle =
  List.map
    (fun v -> v.Invariant.name)
    (Scenarios.Oracle.violations oracle)

let cell_ie =
  { Mobileip.Grid.incoming = Mobileip.Grid.In_IE;
    outgoing = Mobileip.Grid.Out_IE }

(* ---- one violating run per invariant ---- *)

(* An expired binding nobody purges: the lazy table keeps it, the
   invariant calls it out once the grace passes. *)
let test_binding_lifetime_violation () =
  let topo = Scenarios.Topo.build ~mh_lifetime:5 () in
  Scenarios.Topo.roam_static topo ();
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_binding_lifetime ~grace:1.0 oracle;
  Scenarios.Oracle.start ~interval:1.0 ~ticks:12 oracle;
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check bool)
    "binding-lifetime violated" true
    (List.mem "binding-lifetime" (names oracle))

(* With the purge running the same world stays clean. *)
let test_binding_lifetime_clean_with_purge () =
  let topo = Scenarios.Topo.build ~mh_lifetime:5 () in
  Scenarios.Topo.roam_static topo ();
  Mobileip.Home_agent.enable_purge topo.Scenarios.Topo.ha ~interval:2.0
    ~ticks:8 ();
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_binding_lifetime ~grace:3.0 oracle;
  Scenarios.Oracle.start ~interval:1.0 ~ticks:12 oracle;
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check (list string)) "clean" [] (names oracle)

(* The correspondent learned the care-of address through a channel the
   mobile host does not track (here: a pre-seeded cache entry), so the
   withdrawal after a failed registration never reaches it — exactly the
   stale-cache hazard the invariant exists for. *)
let test_withdrawal_violation () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~mh_retry_base:0.2 ~mh_retry_cap:0.4 ~mh_retry_limit:2 ()
  in
  Scenarios.Topo.roam_static topo ();
  let mh = topo.Scenarios.Topo.mh in
  Alcotest.(check bool)
    "registered after roam" true
    (Mobileip.Mobile_host.registered mh);
  Mobileip.Correspondent.learn_binding topo.Scenarios.Topo.ch
    ~home:topo.Scenarios.Topo.mh_home_addr
    ~care_of:(Option.get (Mobileip.Mobile_host.care_of_address mh))
    ~lifetime:300;
  Mobileip.Home_agent.crash topo.Scenarios.Topo.ha;
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_withdrawal ~grace:1.0 oracle;
  Scenarios.Oracle.start ~interval:0.5 ~ticks:30 oracle;
  Mobileip.Mobile_host.reregister mh ();
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check bool)
    "registration gave up" true
    (Mobileip.Mobile_host.registration_failures mh > 0);
  Alcotest.(check bool)
    "withdrawal violated" true
    (List.mem "withdrawal" (names oracle))

(* A sender that does not follow the reference pattern shows up as a
   stream violation at the monitored receiver. *)
let test_tcp_stream_violation () =
  let topo = Scenarios.Topo.build () in
  let oracle = Scenarios.Oracle.create topo in
  let pat i = Char.chr (Char.code 'a' + (i mod 26)) in
  let ch_tcp = Transport.Tcp.get topo.Scenarios.Topo.ch_node in
  Transport.Tcp.listen ch_tcp ~port:9009 (fun conn ->
      Scenarios.Oracle.add_tcp_stream ~expected:pat oracle conn);
  let mh_tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let conn =
    Transport.Tcp.connect mh_tcp ~dst:topo.Scenarios.Topo.ch_addr
      ~dst_port:9009 ()
  in
  Transport.Tcp.send_data conn (Bytes.of_string "abzz");
  Scenarios.Topo.run topo;
  Scenarios.Oracle.check_now oracle;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check (list string))
    "tcp-stream violated" [ "tcp-stream" ] (names oracle)

(* Expired binding, no purge: the proxy-ARP entry stays parked on the
   home segment with no valid binding behind it. *)
let test_proxy_arp_violation () =
  let topo = Scenarios.Topo.build ~mh_lifetime:5 () in
  Scenarios.Topo.roam_static topo ();
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_proxy_arp ~grace:1.0 oracle;
  Scenarios.Oracle.start ~interval:1.0 ~ticks:12 oracle;
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check bool)
    "proxy-arp-purge violated" true
    (List.mem "proxy-arp-purge" (names oracle))

(* Pinning a method the selector has recorded as failed is exactly what
   the discipline invariant forbids. *)
let test_selector_discipline_violation () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam_static topo ();
  let mh = topo.Scenarios.Topo.mh in
  let sel = Mobileip.Selector.create Mobileip.Selector.Conservative_first in
  Mobileip.Mobile_host.set_selector mh (Some sel);
  let dst = topo.Scenarios.Topo.ch_addr in
  for _ = 1 to 4 do
    Mobileip.Selector.report sel ~dst Mobileip.Selector.Original_received
  done;
  for _ = 1 to 2 do
    Mobileip.Selector.report sel ~dst
      Mobileip.Selector.Retransmission_detected
  done;
  Alcotest.(check bool)
    "Out-DE recorded failed" true
    (List.exists
       (Mobileip.Grid.equal_out Mobileip.Grid.Out_DE)
       (Mobileip.Selector.failed_methods sel ~dst));
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_selector_discipline oracle;
  Scenarios.Oracle.check_now oracle;
  Alcotest.(check (list string)) "clean before the pin" [] (names oracle);
  Mobileip.Mobile_host.pin_method mh ~dst (Some Mobileip.Grid.Out_DE);
  Scenarios.Oracle.check_now oracle;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check bool)
    "selector-discipline violated" true
    (List.mem "selector-discipline" (names oracle))

(* The home agent never comes back and the retry/renewal budgets run
   out: the host ends the run away and unregistered. *)
let test_eventual_recovery_violation () =
  let topo =
    Scenarios.Topo.build ~mh_lifetime:5 ~mh_retry_base:0.2 ~mh_retry_cap:0.4
      ~mh_retry_limit:2 ()
  in
  Scenarios.Topo.roam_static topo ();
  Mobileip.Mobile_host.enable_keepalive topo.Scenarios.Topo.mh ~margin:2.0
    ~max_renewals:2 ();
  Mobileip.Home_agent.crash topo.Scenarios.Topo.ha;
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.add_recovery ~after:0.0 oracle;
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check bool)
    "still unregistered" false
    (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh);
  Alcotest.(check bool)
    "eventual-recovery violated" true
    (List.mem "eventual-recovery" (names oracle))

(* A healthy world under the full standard set stays clean. *)
let test_healthy_world_clean () =
  let topo = Scenarios.Topo.build ~mh_lifetime:10 () in
  Scenarios.Topo.roam_static topo ();
  Mobileip.Mobile_host.enable_keepalive topo.Scenarios.Topo.mh ~margin:5.0
    ~max_renewals:4 ();
  Mobileip.Home_agent.enable_purge topo.Scenarios.Topo.ha ~interval:5.0
    ~ticks:8 ();
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.install_standard ~recovery_after:0.0 oracle;
  Scenarios.Oracle.start ~interval:1.0 ~ticks:30 oracle;
  Scenarios.Topo.run topo;
  Scenarios.Oracle.finish oracle;
  Alcotest.(check (list string)) "no violations" [] (names oracle);
  Alcotest.(check bool)
    "checks actually ran" true
    (Invariant.checks_run (Scenarios.Oracle.inv oracle) > 50)

(* ---- the generator ---- *)

let qbudget =
  {
    Chaos.events = 6;
    horizon = 30.0;
    links = [ "l1"; "l2" ];
    cuts = [ ([ "a" ], [ "b" ]) ];
    actions = [ ("ha_outage", [ "2.0"; "3.0" ]); ("mh_move", [ "a"; "b" ]) ];
    max_window = 5.0;
    max_extra_latency = 0.5;
  }

let prop_generate_deterministic =
  QCheck.Test.make ~name:"Chaos.generate is a pure function of the seed"
    ~count:200
    QCheck.(0 -- 1_000_000)
    (fun seed ->
      Chaos.generate ~seed qbudget = Chaos.generate ~seed qbudget)

let prop_generate_respects_budget =
  QCheck.Test.make ~name:"generated plans respect their budget" ~count:200
    QCheck.(0 -- 1_000_000)
    (fun seed ->
      let plan = Chaos.generate ~seed qbudget in
      List.length plan.Fault.events = qbudget.Chaos.events
      && List.for_all
           (fun e ->
             Fault.event_start e >= 0.0
             && Fault.event_end e <= qbudget.Chaos.horizon
             &&
             match e with
             | Fault.Flap { link; down; up } ->
                 List.mem link qbudget.Chaos.links && down < up
             | Fault.Partition { a; b; _ } ->
                 List.mem (a, b) qbudget.Chaos.cuts
             | Fault.Latency_spike { link; extra; _ } ->
                 List.mem link qbudget.Chaos.links
                 && extra > 0.0
                 && extra <= 0.05 +. qbudget.Chaos.max_extra_latency
             | Fault.Duplicate { rate; _ } -> rate >= 0.05 && rate <= 0.45
             | Fault.Reorder { rate; max_extra; _ } ->
                 rate >= 0.05 && rate <= 0.45 && max_extra > 0.0
             | Fault.Action { kind; arg; _ } -> (
                 match List.assoc_opt kind qbudget.Chaos.actions with
                 | Some args -> List.mem arg args
                 | None -> false))
           plan.Fault.events)

let prop_plan_json_roundtrip =
  QCheck.Test.make ~name:"fault-plan JSON round-trips exactly" ~count:200
    QCheck.(0 -- 1_000_000)
    (fun seed ->
      let plan = Chaos.generate ~seed qbudget in
      match Fault.plan_of_string (Fault.plan_to_string plan) with
      | Ok plan' -> plan = plan'
      | Error _ -> false)

let test_generate_empty_candidates () =
  (* No links, cuts or actions: only duplication/reordering can appear. *)
  let b = { Chaos.default_budget with Chaos.events = 10 } in
  let plan = Chaos.generate ~seed:7 b in
  Alcotest.(check bool)
    "only windowed frame effects" true
    (List.for_all
       (function
         | Fault.Duplicate _ | Fault.Reorder _ -> true
         | _ -> false)
       plan.Fault.events)

(* ---- the shrinker, pure ddmin behaviour ---- *)

let test_ddmin_single_trigger () =
  let mk k =
    Fault.Duplicate
      { from_ = float_of_int k; until = float_of_int k +. 1.0; rate = 0.1 }
  in
  let events = List.init 8 mk in
  let plan = { Fault.seed = 1; events } in
  let target = List.nth events 5 in
  let still_failing p = List.mem target p.Fault.events in
  let shrunk, replays = Chaos.shrink ~still_failing plan in
  Alcotest.(check int) "one event left" 1 (List.length shrunk.Fault.events);
  Alcotest.(check bool)
    "kept the trigger" true
    (List.mem target shrunk.Fault.events);
  Alcotest.(check bool) "replays counted" true (replays > 0);
  (* A two-event dependency shrinks to exactly those two. *)
  let t2 = List.nth events 2 in
  let still2 p = List.mem target p.Fault.events && List.mem t2 p.Fault.events in
  let shrunk2, _ = Chaos.shrink ~still_failing:still2 plan in
  Alcotest.(check int) "two events left" 2 (List.length shrunk2.Fault.events);
  Alcotest.(check bool)
    "kept both" true
    (List.mem target shrunk2.Fault.events && List.mem t2 shrunk2.Fault.events)

(* ---- shrinker + soak end to end ---- *)

let harsh = Experiments.Soak.harsh

let test_shrink_deterministic_and_minimal () =
  let plan =
    Experiments.Soak.generate_plan ~profile:harsh ~cell:cell_ie ~seed:0 ()
  in
  let outcome =
    Experiments.Soak.replay ~profile:harsh ~cell:cell_ie ~seed:0 plan
  in
  Alcotest.(check bool)
    "seed 0 violates under the harsh profile" true
    (outcome.Experiments.Soak.violations <> []);
  let s1, r1 =
    Experiments.Soak.shrink_plan ~profile:harsh ~cell:cell_ie ~seed:0 plan
      outcome
  in
  let s2, r2 =
    Experiments.Soak.shrink_plan ~profile:harsh ~cell:cell_ie ~seed:0 plan
      outcome
  in
  Alcotest.(check bool) "same minimal plan both times" true (s1 = s2);
  Alcotest.(check int) "same replay count" r1 r2;
  Alcotest.(check bool)
    "strictly smaller" true
    (List.length s1.Fault.events < List.length plan.Fault.events);
  let o' = Experiments.Soak.replay ~profile:harsh ~cell:cell_ie ~seed:0 s1 in
  Alcotest.(check bool)
    "minimal plan still violates the same invariants" true
    (List.for_all
       (fun n -> List.mem n (Experiments.Soak.violated_names o'))
       (Experiments.Soak.violated_names outcome))

let test_soak_reproducible () =
  let sweep () =
    Experiments.Soak.run ~profile:harsh ~seed_lo:0 ~seed_hi:0
      ~cells:[ cell_ie ] ()
  in
  let r1 = sweep () in
  let r2 = sweep () in
  Alcotest.(check int)
    "one finding" 1
    (List.length r1.Experiments.Soak.findings);
  let f1 = List.hd r1.Experiments.Soak.findings in
  let f2 = List.hd r2.Experiments.Soak.findings in
  Alcotest.(check bool)
    "identical plan, shrink and repro JSON" true
    (f1.Experiments.Soak.f_plan = f2.Experiments.Soak.f_plan
    && f1.Experiments.Soak.f_shrunk = f2.Experiments.Soak.f_shrunk
    && Experiments.Soak.repro_to_string ~seed:0 ~cell:cell_ie
         f1.Experiments.Soak.f_shrunk
       = Experiments.Soak.repro_to_string ~seed:0 ~cell:cell_ie
           f2.Experiments.Soak.f_shrunk)

let test_repro_roundtrip_with_annotations () =
  let plan =
    Experiments.Soak.generate_plan ~profile:harsh ~cell:cell_ie ~seed:3 ()
  in
  let s = Experiments.Soak.repro_to_string ~seed:3 ~cell:cell_ie plan in
  (match Experiments.Soak.repro_of_string s with
  | Error e -> Alcotest.fail e
  | Ok (plan', seed, cell) ->
      Alcotest.(check bool) "plan survives" true (plan = plan');
      Alcotest.(check (option int)) "seed annotation" (Some 3) seed;
      Alcotest.(check bool)
        "cell annotation" true
        (cell = Some cell_ie));
  (* the annotated file is still a plain plan for Fault *)
  match Fault.plan_of_string s with
  | Ok plan' -> Alcotest.(check bool) "plain plan load" true (plan = plan')
  | Error e -> Alcotest.fail e

let test_gentle_ci_range_clean () =
  let r =
    Experiments.Soak.run ~seed_lo:0 ~seed_hi:1 ~cells:[ cell_ie ] ()
  in
  Alcotest.(check int) "no findings" 0 (List.length r.Experiments.Soak.findings);
  Alcotest.(check bool)
    "checks ran" true
    (r.Experiments.Soak.total_checks > 0)

(* ---- the TCP gave-up counter ---- *)

let test_tcp_retx_abort_counter () =
  let net = Net.create () in
  let s = Net.add_host net "s" in
  let d = Net.add_host net "d" in
  let _ =
    Net.p2p net ~latency:0.01 ~prefix:(p "10.0.0.0/30")
      (s, "if0", a "10.0.0.1") (d, "if0", a "10.0.0.2")
  in
  let tcp_d = Transport.Tcp.get d in
  Transport.Tcp.listen tcp_d ~port:9 (fun _ -> ());
  let tcp_s = Transport.Tcp.get s in
  (* An RST abort (nobody on port 777) must not count as a give-up. *)
  let rst_conn =
    Transport.Tcp.connect tcp_s ~dst:(a "10.0.0.2") ~dst_port:777 ()
  in
  let conn = Transport.Tcp.connect tcp_s ~dst:(a "10.0.0.2") ~dst_port:9 () in
  let fault = Fault.attach net in
  Fault.link_down fault ~at:1.0 ~link:"s<->d";
  Engine.schedule (Net.engine net) ~at:2.0 (fun () ->
      Transport.Tcp.send_data conn (Bytes.of_string "doomed"));
  Net.run net;
  Alcotest.(check bool)
    "rst abort" true
    (Transport.Tcp.state rst_conn = Transport.Tcp.Aborted);
  Alcotest.(check bool)
    "retx abort" true
    (Transport.Tcp.state conn = Transport.Tcp.Aborted);
  Alcotest.(check int)
    "one give-up on the sender" 1
    (Transport.Tcp.retx_aborts tcp_s);
  Alcotest.(check int)
    "none on the receiver" 0
    (Transport.Tcp.retx_aborts tcp_d)

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "invariant: binding lifetime" `Quick
          test_binding_lifetime_violation;
        Alcotest.test_case "invariant: binding lifetime clean with purge"
          `Quick test_binding_lifetime_clean_with_purge;
        Alcotest.test_case "invariant: withdrawal" `Quick
          test_withdrawal_violation;
        Alcotest.test_case "invariant: tcp stream" `Quick
          test_tcp_stream_violation;
        Alcotest.test_case "invariant: proxy arp purge" `Quick
          test_proxy_arp_violation;
        Alcotest.test_case "invariant: selector discipline" `Quick
          test_selector_discipline_violation;
        Alcotest.test_case "invariant: eventual recovery" `Quick
          test_eventual_recovery_violation;
        Alcotest.test_case "healthy world stays clean" `Quick
          test_healthy_world_clean;
        QCheck_alcotest.to_alcotest prop_generate_deterministic;
        QCheck_alcotest.to_alcotest prop_generate_respects_budget;
        QCheck_alcotest.to_alcotest prop_plan_json_roundtrip;
        Alcotest.test_case "generator: empty candidate lists" `Quick
          test_generate_empty_candidates;
        Alcotest.test_case "ddmin: single and paired triggers" `Quick
          test_ddmin_single_trigger;
        Alcotest.test_case "shrink: deterministic and minimal" `Quick
          test_shrink_deterministic_and_minimal;
        Alcotest.test_case "soak: reproducible sweep" `Quick
          test_soak_reproducible;
        Alcotest.test_case "soak: repro file round-trip" `Quick
          test_repro_roundtrip_with_annotations;
        Alcotest.test_case "soak: gentle CI range is clean" `Quick
          test_gentle_ci_range_clean;
        Alcotest.test_case "tcp: retx-abort counter" `Quick
          test_tcp_retx_abort_counter;
      ] );
  ]
