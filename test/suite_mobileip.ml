(* Integration tests: registration, tunneling, the Figure 1-5 stories,
   discovery, foreign agents, multicast and connection survival. *)

open Netsim

let addr = Ipv4_addr.of_string

let ping_from_ch topo ~dst =
  (* CH pings an address; returns Some rtt on reply. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst (fun ~rtt -> got := Some rtt);
  Scenarios.Topo.run topo;
  !got

let test_registration () =
  let topo = Scenarios.Topo.build () in
  let ok = ref None in
  Scenarios.Topo.roam topo ~on_registered:(fun b -> ok := Some b) ();
  Alcotest.(check (option bool)) "registration accepted" (Some true) !ok;
  Alcotest.(check bool) "mh registered" true
    (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh);
  Alcotest.(check int) "one binding" 1
    (List.length (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha));
  match Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha with
  | [ b ] ->
      Alcotest.(check string) "binding coa from dhcp pool" "131.7.0.100"
        (Ipv4_addr.to_string b.Mobileip.Types.care_of)
  | _ -> Alcotest.fail "expected one binding"

let test_registration_bad_key_denied () =
  let topo = Scenarios.Topo.build () in
  (* Recreate the MH with a wrong key by building a second mobile host is
     overkill; instead directly check the HA's handling of a bad
     authenticator. *)
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  (* Move without registering: craft our own bogus request. *)
  Mobileip.Mobile_host.move_to_static topo.Scenarios.Topo.mh
    topo.Scenarios.Topo.visited_segment ~addr:(addr "131.7.0.201")
    ~prefix:topo.Scenarios.Topo.visited_prefix ~gateway:(addr "131.7.0.1") ();
  Scenarios.Topo.run topo;
  let req =
    {
      Mobileip.Registration.home = topo.Scenarios.Topo.mh_home_addr;
      home_agent = Mobileip.Home_agent.address topo.Scenarios.Topo.ha;
      care_of = addr "131.7.0.201";
      lifetime = 300;
      sequence = 999;
    }
  in
  ignore
    (Transport.Udp_service.send udp ~src:(addr "131.7.0.201")
       ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
       ~src_port:Transport.Well_known.mip_registration
       ~dst_port:Transport.Well_known.mip_registration
       (Mobileip.Registration.encode_request ~key:"wrong-key" req));
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "denials counted" true
    (Mobileip.Home_agent.registrations_denied topo.Scenarios.Topo.ha >= 1)

let test_fig1_basic_delivery () =
  (* Figure 1: CH sends to the home address; the packet goes via the home
     agent, encapsulated, to the roaming MH.  The MH's reply goes
     directly. *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Alcotest.(check bool) "registered" true
    (Mobileip.Mobile_host.registered topo.Scenarios.Topo.mh);
  let rtt = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "ping via home agent answered" true (rtt <> None);
  Alcotest.(check bool) "home agent tunneled packets" true
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha >= 1);
  Alcotest.(check bool) "mh decapsulated" true
    (Mobileip.Mobile_host.packets_decapsulated topo.Scenarios.Topo.mh >= 1)

let test_fig2_source_filter_drops_out_dh () =
  (* Figure 2: CH inside the filtered home domain; the MH's plain replies
     with home source address die at the boundary router. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  let rtt = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check (option reject)) "no reply: replies are filtered" None rtt;
  (* The drop must be at the home boundary with the ingress-filter reason. *)
  let drops =
    List.filter_map
      (fun r ->
        match r.Trace.event with
        | Trace.Drop { node; reason; _ } -> Some (node, reason)
        | _ -> None)
      (Trace.records (Net.trace topo.Scenarios.Topo.net))
  in
  Alcotest.(check bool) "ingress filter fired at hr" true
    (List.exists
       (fun (n, reason) ->
         n = "hr" && Trace.drop_reason_equal reason Trace.Ingress_filter)
       drops)

let test_fig3_bidirectional_tunneling () =
  (* Figure 3: same filtered world; Out-IE (reverse tunneling) restores
     connectivity. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_IE;
  let rtt = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "reply arrives via reverse tunnel" true (rtt <> None);
  Alcotest.(check bool) "ha reverse-tunneled" true
    (Mobileip.Home_agent.packets_reverse_tunneled topo.Scenarios.Topo.ha >= 1)

let test_firewall_home_agent_tunnels_only () =
  (* §3.1: a firewalled home domain admits only tunnels to the home agent;
     Out-DH and even Out-DE toward an inside CH fail, Out-IE works. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:
        {
          Scenarios.Topo.home_ingress = false;
          visited_no_transit = false;
          home_firewall = true;
        }
      ()
  in
  Scenarios.Topo.roam topo ();
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  let rtt1 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check (option reject)) "Out-DH blocked by firewall" None rtt1;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_IE;
  let rtt2 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "Out-IE passes the firewall" true (rtt2 <> None)

let test_icmp_discovery_enables_in_de () =
  (* §3.2 mechanism 1: with notifications on and a mobile-aware CH, the
     second exchange goes direct (In-DE), skipping the home agent. *)
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  let tunneled_before =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  let rtt1 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "first ping answered" true (rtt1 <> None);
  Alcotest.(check bool) "care-of advert received" true
    (Mobileip.Correspondent.adverts_received topo.Scenarios.Topo.ch >= 1);
  Alcotest.(check bool) "binding cached" true
    (Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch
       ~home:topo.Scenarios.Topo.mh_home_addr
    <> None);
  let tunneled_mid =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  let rtt2 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "second ping answered" true (rtt2 <> None);
  let tunneled_after =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  Alcotest.(check bool) "first ping used the tunnel" true
    (tunneled_mid > tunneled_before);
  Alcotest.(check int) "second ping bypassed the home agent" tunneled_mid
    tunneled_after;
  Alcotest.(check bool) "CH encapsulated directly" true
    (Mobileip.Correspondent.packets_encapsulated topo.Scenarios.Topo.ch >= 1)

let test_dns_discovery () =
  (* §3.2 mechanism 2: the MH publishes a temporary record; a smart CH
     resolving the name learns the care-of address. *)
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~with_dns:true ()
  in
  Scenarios.Topo.roam topo ();
  let dns_addr = Option.get topo.Scenarios.Topo.dns_addr in
  Alcotest.(check bool) "publish succeeds when away" true
    (Mobileip.Discovery.publish_care_of topo.Scenarios.Topo.mh
       ~dns_server:dns_addr ~name:"mh.home" ());
  Scenarios.Topo.run topo;
  let learned = ref None in
  Mobileip.Discovery.discover_via_dns topo.Scenarios.Topo.ch
    ~dns_server:dns_addr ~name:"mh.home"
    ~on_result:(fun ~learned:l -> learned := Some l)
    ();
  Scenarios.Topo.run topo;
  Alcotest.(check (option bool)) "temporary record learned" (Some true) !learned;
  Alcotest.(check (option string)) "cached coa matches dhcp lease"
    (Some "131.7.0.100")
    (Option.map Ipv4_addr.to_string
       (Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch
          ~home:topo.Scenarios.Topo.mh_home_addr))

let test_in_dh_same_segment () =
  (* Row C: CH on the MH's visited segment delivers in one link-layer hop
     to the home address. *)
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.On_visited_segment
      ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  (* Let the CH learn the binding via a first exchange. *)
  let rtt1 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "first ping answered" true (rtt1 <> None);
  Alcotest.(check bool) "binding learned" true
    (Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch
       ~home:topo.Scenarios.Topo.mh_home_addr
    <> None);
  (* Now the CH should pick In-DH automatically. *)
  Alcotest.(check string) "method is In-DH" "In-DH"
    (Mobileip.Grid.in_to_string
       (Mobileip.Correspondent.in_method_for topo.Scenarios.Topo.ch
          ~dst:topo.Scenarios.Topo.mh_home_addr));
  let tunneled_before =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  let rtt2 = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "in-dh ping answered" true (rtt2 <> None);
  Alcotest.(check int) "no tunnel involved" tunneled_before
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha);
  (* Single link-layer hop each way: rtt is two segment latencies. *)
  (match rtt2 with
  | Some rtt -> Alcotest.(check bool) "rtt is LAN-scale" true (rtt < 0.005)
  | None -> Alcotest.fail "no rtt")

let test_tcp_survives_movement () =
  (* §2: a TCP connection to the home address survives the MH moving. *)
  let topo = Scenarios.Topo.build () in
  let mh = topo.Scenarios.Topo.mh in
  let ch_tcp = Transport.Tcp.get topo.Scenarios.Topo.ch_node in
  let mh_tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let server_got = Buffer.create 64 in
  Transport.Tcp.listen ch_tcp ~port:Transport.Well_known.telnet (fun conn ->
      Transport.Tcp.on_receive conn (fun data -> Buffer.add_bytes server_got data));
  (* Connect while at home, bound to the home address. *)
  let conn =
    Transport.Tcp.connect mh_tcp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.telnet ()
  in
  Transport.Tcp.send_data conn (Bytes.of_string "before-move ");
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "established at home" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  (* Move to the visited network. *)
  Scenarios.Topo.roam topo ();
  Alcotest.(check bool) "registered after move" true
    (Mobileip.Mobile_host.registered mh);
  Transport.Tcp.send_data conn (Bytes.of_string "after-move");
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "still established" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  Alcotest.(check string) "all data arrived" "before-move after-move"
    (Buffer.contents server_got)

let test_tcp_bound_to_coa_dies_on_movement () =
  (* Row D's caveat: a connection bound to the temporary address breaks
     when the host moves again. *)
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let coa =
    Option.get (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh)
  in
  let ch_tcp = Transport.Tcp.get topo.Scenarios.Topo.ch_node in
  let mh_tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  Transport.Tcp.listen ch_tcp ~port:Transport.Well_known.http (fun conn ->
      Transport.Tcp.on_receive conn (fun _ -> ()));
  let conn =
    Transport.Tcp.connect mh_tcp ~src:coa ~dst:topo.Scenarios.Topo.ch_addr
      ~dst_port:Transport.Well_known.http ()
  in
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "established away" true
    (Transport.Tcp.state conn = Transport.Tcp.Established);
  (* Move home: the care-of address evaporates. *)
  Scenarios.Topo.come_home topo;
  Transport.Tcp.send_data conn (Bytes.of_string "doomed");
  Scenarios.Topo.run topo;
  Alcotest.(check bool) "connection died" true
    (Transport.Tcp.state conn = Transport.Tcp.Aborted)

let test_return_home_restores_normal_delivery () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  Alcotest.(check bool) "bound while away" true
    (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha <> []);
  Scenarios.Topo.come_home topo;
  Alcotest.(check bool) "binding removed" true
    (Mobileip.Home_agent.bindings topo.Scenarios.Topo.ha = []);
  let tunneled_before =
    Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha
  in
  let rtt = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "ping answered at home" true (rtt <> None);
  Alcotest.(check int) "no tunneling at home" tunneled_before
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha)

let test_foreign_agent_path () =
  (* §2/§5: registration relayed through an FA, tunnel HA->FA, final hop
     delivered link-layer-direct. *)
  let topo = Scenarios.Topo.build () in
  (* Place a foreign agent router on the visited segment. *)
  let fa_node = Net.add_router topo.Scenarios.Topo.net "fa" in
  let fa_iface =
    Net.attach fa_node topo.Scenarios.Topo.visited_segment ~ifname:"lan"
      ~addr:(addr "131.7.0.3") ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Routing.add_default (Net.routing fa_node) ~gateway:(addr "131.7.0.1")
    ~iface:"lan";
  let fa = Mobileip.Foreign_agent.create fa_node ~iface:fa_iface () in
  let ok = ref None in
  Mobileip.Mobile_host.move_to_foreign_agent topo.Scenarios.Topo.mh
    topo.Scenarios.Topo.visited_segment ~fa_addr:(addr "131.7.0.3")
    ~on_registered:(fun b -> ok := Some b)
    ();
  Scenarios.Topo.run topo;
  Alcotest.(check (option bool)) "registered via FA" (Some true) !ok;
  Alcotest.(check bool) "FA relayed the registration" true
    (Mobileip.Foreign_agent.registrations_relayed fa >= 1);
  Alcotest.(check int) "FA has one visitor" 1
    (List.length (Mobileip.Foreign_agent.visitors fa));
  (* CH -> home address -> HA tunnel -> FA -> link-layer to MH. *)
  let rtt = ping_from_ch topo ~dst:topo.Scenarios.Topo.mh_home_addr in
  Alcotest.(check bool) "delivery through FA works" true (rtt <> None);
  Alcotest.(check bool) "FA delivered final hop" true
    (Mobileip.Foreign_agent.packets_delivered fa >= 1)

let test_multicast_local_vs_home () =
  (* §6.4: joining locally avoids per-packet tunneling. *)
  let group = addr "224.1.2.3" in
  let port = 5004 in
  (* Stream sourced on the home segment (e.g. a seminar broadcast at the
     home institution) with a sender host. *)
  let topo = Scenarios.Topo.build () in
  let sender = Net.add_host topo.Scenarios.Topo.net "mcast-src" in
  let sender_iface =
    Net.attach sender topo.Scenarios.Topo.home_segment ~ifname:"eth0"
      ~addr:(addr "36.1.0.20") ~prefix:topo.Scenarios.Topo.home_prefix
  in
  Scenarios.Topo.roam topo ();
  let count_rx =
    Mobileip.Multicast.receive_count topo.Scenarios.Topo.mh_node ~port ()
  in
  Mobileip.Multicast.join_via_home topo.Scenarios.Topo.ha
    topo.Scenarios.Topo.mh ~group;
  let _flows =
    Mobileip.Multicast.send_stream sender ~via:sender_iface ~group ~port
      ~count:5 ~interval:0.1 ~payload_size:200 ()
  in
  Scenarios.Topo.run topo;
  Alcotest.(check int) "all 5 packets tunneled home->visited" 5 (count_rx ());
  Alcotest.(check int) "ha relayed 5" 5
    (Mobileip.Home_agent.multicast_packets_relayed topo.Scenarios.Topo.ha);
  (* Now a local stream on the visited segment, joined locally: no
     tunneling at all. *)
  let topo2 = Scenarios.Topo.build () in
  let lsender = Net.add_host topo2.Scenarios.Topo.net "mcast-src" in
  let lsender_iface =
    Net.attach lsender topo2.Scenarios.Topo.visited_segment ~ifname:"eth0"
      ~addr:(addr "131.7.0.20") ~prefix:topo2.Scenarios.Topo.visited_prefix
  in
  Scenarios.Topo.roam topo2 ();
  let count_rx2 =
    Mobileip.Multicast.receive_count topo2.Scenarios.Topo.mh_node ~port ()
  in
  let mh_iface =
    Option.get (Net.find_iface topo2.Scenarios.Topo.mh_node "eth0")
  in
  Mobileip.Multicast.join_locally topo2.Scenarios.Topo.mh ~iface:mh_iface
    ~group;
  let (_ : unit -> int list) =
    Mobileip.Multicast.send_stream lsender ~via:lsender_iface ~group ~port
      ~count:5 ~interval:0.1 ~payload_size:200 ()
  in
  Scenarios.Topo.run topo2;
  Alcotest.(check int) "all 5 received locally" 5 (count_rx2 ());
  Alcotest.(check int) "no relaying involved" 0
    (Mobileip.Home_agent.multicast_packets_relayed topo2.Scenarios.Topo.ha)

let suites =
  [
    ( "mobileip",
      [
        Alcotest.test_case "registration via dhcp roam" `Quick test_registration;
        Alcotest.test_case "registration denied on bad key" `Quick
          test_registration_bad_key_denied;
        Alcotest.test_case "fig 1: basic mobile ip" `Quick
          test_fig1_basic_delivery;
        Alcotest.test_case "fig 2: source filtering kills Out-DH" `Quick
          test_fig2_source_filter_drops_out_dh;
        Alcotest.test_case "fig 3: bidirectional tunneling" `Quick
          test_fig3_bidirectional_tunneling;
        Alcotest.test_case "firewall passes only HA tunnels" `Quick
          test_firewall_home_agent_tunnels_only;
        Alcotest.test_case "icmp discovery enables In-DE" `Quick
          test_icmp_discovery_enables_in_de;
        Alcotest.test_case "dns discovery" `Quick test_dns_discovery;
        Alcotest.test_case "In-DH on same segment" `Quick
          test_in_dh_same_segment;
        Alcotest.test_case "tcp survives movement" `Quick
          test_tcp_survives_movement;
        Alcotest.test_case "coa-bound tcp dies on movement" `Quick
          test_tcp_bound_to_coa_dies_on_movement;
        Alcotest.test_case "return home restores normal IP" `Quick
          test_return_home_restores_normal_delivery;
        Alcotest.test_case "foreign agent path" `Quick test_foreign_agent_path;
        Alcotest.test_case "multicast local vs via-home" `Quick
          test_multicast_local_vs_home;
      ] );
  ]
