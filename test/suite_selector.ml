(* The adaptive method selector: strategies, escalation, fallback,
   failed-method memory, convergence, policy-table integration. *)

open Mobileip

let dst = Netsim.Ipv4_addr.of_string "44.2.0.10"
let other = Netsim.Ipv4_addr.of_string "44.2.0.11"

let report_n sel ~dst ev n =
  for _ = 1 to n do
    Selector.report sel ~dst ev
  done

let test_conservative_starts_at_out_ie () =
  let sel = Selector.create Selector.Conservative_first in
  Alcotest.(check string) "Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_conservative_escalates_on_success () =
  let sel = Selector.create ~escalate_after:3 Selector.Conservative_first in
  report_n sel ~dst Selector.Original_received 3;
  Alcotest.(check string) "escalated stepwise to Out-DE" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst));
  Alcotest.(check int) "one switch" 1 (Selector.switches sel ~dst);
  report_n sel ~dst Selector.Original_received 3;
  Alcotest.(check string) "then Out-DH" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_fallback_on_retransmissions () =
  let sel = Selector.create ~escalate_after:3 ~fallback_after:2
      Selector.Conservative_first in
  report_n sel ~dst Selector.Original_received 3;
  (* Now at Out-DE; two retransmission signals drop it. *)
  report_n sel ~dst Selector.Retransmission_detected 2;
  let m = Selector.method_for sel dst in
  Alcotest.(check bool) "fell back below Out-DE" true
    (not (Grid.equal_out m Grid.Out_DE));
  Alcotest.(check bool) "Out-DE remembered as failed" true
    (List.exists (Grid.equal_out Grid.Out_DE) (Selector.failed_methods sel ~dst))

let test_failed_method_not_reprobed () =
  let sel = Selector.create ~escalate_after:2 ~fallback_after:1
      Selector.Conservative_first in
  (* Escalate to Out-DE, fail it; then successes must skip it to Out-DH,
     fail that too; then stay at Out-IE forever. *)
  report_n sel ~dst Selector.Original_received 2 (* -> Out-DE *);
  report_n sel ~dst Selector.Retransmission_detected 1 (* Out-DE failed *);
  report_n sel ~dst Selector.Original_received 2 (* -> Out-DH (skips DE) *);
  Alcotest.(check string) "skipped failed Out-DE" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel dst));
  report_n sel ~dst Selector.Retransmission_detected 1 (* Out-DH failed *);
  Alcotest.(check string) "back at Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  report_n sel ~dst Selector.Original_received 10;
  Alcotest.(check string) "stays at Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  Alcotest.(check bool) "converged" true (Selector.converged sel ~dst)

let test_aggressive_starts_at_out_dh () =
  let sel = Selector.create Selector.Aggressive_first in
  Alcotest.(check string) "Out-DH" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_aggressive_falls_back_stepwise () =
  let sel = Selector.create ~fallback_after:2 Selector.Aggressive_first in
  report_n sel ~dst Selector.Retransmission_detected 2;
  Alcotest.(check string) "Out-DE next" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst));
  report_n sel ~dst Selector.Retransmission_detected 2;
  Alcotest.(check string) "Out-IE floor" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  (* The floor never falls further. *)
  report_n sel ~dst Selector.Retransmission_detected 10;
  Alcotest.(check string) "still Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_aggressive_does_not_reescalate () =
  let sel = Selector.create ~fallback_after:1 Selector.Aggressive_first in
  report_n sel ~dst Selector.Retransmission_detected 1;
  Alcotest.(check string) "fell to Out-DE" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst));
  report_n sel ~dst Selector.Original_received 50;
  Alcotest.(check string) "no re-escalation into failed method" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst))

let test_rule_based_pessimistic_pinned () =
  let table = Policy_table.create ~default:Policy_table.Optimistic () in
  Policy_table.add_rule table
    (Netsim.Ipv4_addr.Prefix.of_string "44.2.0.0/16")
    Policy_table.Pessimistic;
  let sel = Selector.create (Selector.Rule_based table) in
  Alcotest.(check string) "pessimistic region -> Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  (* Pinned: success never escalates. *)
  report_n sel ~dst Selector.Original_received 20;
  Alcotest.(check string) "pinned at Out-IE" "Out-IE"
    (Grid.out_to_string (Selector.method_for sel dst));
  (* A destination outside the rule starts optimistic. *)
  let outside = Netsim.Ipv4_addr.of_string "99.0.0.1" in
  Alcotest.(check string) "optimistic elsewhere" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel outside))

let test_per_destination_isolation () =
  let sel = Selector.create ~fallback_after:1 Selector.Aggressive_first in
  report_n sel ~dst Selector.Retransmission_detected 1;
  Alcotest.(check string) "dst degraded" "Out-DE"
    (Grid.out_to_string (Selector.method_for sel dst));
  Alcotest.(check string) "other untouched" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel other))

let test_reset () =
  let sel = Selector.create ~fallback_after:1 Selector.Aggressive_first in
  report_n sel ~dst Selector.Retransmission_detected 1;
  Selector.reset sel ~dst;
  Alcotest.(check string) "fresh after reset" "Out-DH"
    (Grid.out_to_string (Selector.method_for sel dst));
  Alcotest.(check int) "switches cleared" 0 (Selector.switches sel ~dst)

let test_thresholds_validated () =
  Alcotest.check_raises "zero threshold"
    (Invalid_argument "Selector.create: thresholds must be positive")
    (fun () ->
      ignore (Selector.create ~escalate_after:0 Selector.Conservative_first))

let prop_never_selects_out_dt =
  QCheck.Test.make ~name:"selector never selects Out-DT" ~count:200
    QCheck.(list_of_size Gen.(0 -- 50) bool)
    (fun events ->
      let sel = Selector.create Selector.Conservative_first in
      List.for_all
        (fun success ->
          Selector.report sel ~dst
            (if success then Selector.Original_received
             else Selector.Retransmission_detected);
          not (Grid.equal_out (Selector.method_for sel dst) Grid.Out_DT))
        events)

let prop_failure_streak_reaches_floor =
  QCheck.Test.make ~name:"sustained failures always reach Out-IE" ~count:100
    QCheck.(oneofl [ Selector.Conservative_first; Selector.Aggressive_first ])
    (fun strategy ->
      let sel = Selector.create ~fallback_after:1 strategy in
      for _ = 1 to 10 do
        Selector.report sel ~dst Selector.Retransmission_detected
      done;
      Grid.equal_out (Selector.method_for sel dst) Grid.Out_IE)

let suites =
  [
    ( "selector",
      [
        Alcotest.test_case "conservative starts Out-IE" `Quick
          test_conservative_starts_at_out_ie;
        Alcotest.test_case "conservative escalates" `Quick
          test_conservative_escalates_on_success;
        Alcotest.test_case "fallback on retransmissions" `Quick
          test_fallback_on_retransmissions;
        Alcotest.test_case "failed method not reprobed" `Quick
          test_failed_method_not_reprobed;
        Alcotest.test_case "aggressive starts Out-DH" `Quick
          test_aggressive_starts_at_out_dh;
        Alcotest.test_case "aggressive falls back stepwise" `Quick
          test_aggressive_falls_back_stepwise;
        Alcotest.test_case "aggressive never re-escalates" `Quick
          test_aggressive_does_not_reescalate;
        Alcotest.test_case "rule-based pessimistic pinned" `Quick
          test_rule_based_pessimistic_pinned;
        Alcotest.test_case "per-destination isolation" `Quick
          test_per_destination_isolation;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "thresholds validated" `Quick
          test_thresholds_validated;
        QCheck_alcotest.to_alcotest prop_never_selects_out_dt;
        QCheck_alcotest.to_alcotest prop_failure_streak_reaches_floor;
      ] );
  ]
