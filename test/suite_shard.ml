(* The sharded simulation: partition derivation, the sequential merged
   executor's bit-for-bit equivalence with the unsharded engine, the
   parallel barrier executor's determinism, cancellation across barrier
   windows, and the supporting data structures (seq-keyed Pqueue,
   Addr_map, per-shard Pool). *)

open Netsim

(* ------------------------------------------------------------------ *)
(* Pqueue: explicit sequence numbers and the merged-min key            *)
(* ------------------------------------------------------------------ *)

let test_pqueue_add_seq_orders () =
  let q = Pqueue.create () in
  (* same priority, sequence numbers supplied out of insertion order:
     the pop order must follow the sequence numbers, not insertion *)
  Pqueue.add_seq q ~priority:1.0 ~seq:30 "c";
  Pqueue.add_seq q ~priority:1.0 ~seq:10 "a";
  Pqueue.add_seq q ~priority:1.0 ~seq:20 "b";
  Pqueue.add_seq q ~priority:0.5 ~seq:99 "z";
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "(priority, seq) order" [ "z"; "a"; "b"; "c" ]
    (List.rev !out)

let test_pqueue_min_key () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty has no key" true (Pqueue.min_key q = None);
  Pqueue.add_seq q ~priority:2.0 ~seq:7 "x";
  Pqueue.add_seq q ~priority:2.0 ~seq:3 "y";
  (match Pqueue.min_key q with
  | Some (p, s) ->
      Alcotest.(check (float 0.0)) "min priority" 2.0 p;
      Alcotest.(check int) "min seq among ties" 3 s
  | None -> Alcotest.fail "min_key on non-empty queue");
  Alcotest.(check int) "min_key does not remove" 2 (Pqueue.length q)

(* The merged executor's core move: several queues sharing one global
   sequence counter, always popping the queue with the least (time, seq)
   key, must replay the exact order a single queue would. *)
let prop_merged_queues_equal_single =
  QCheck.Test.make ~name:"min_key merge of shared-seq queues == one queue"
    ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 5)))
    (fun inserts ->
      let single = Pqueue.create () in
      let parts = Array.init 3 (fun _ -> Pqueue.create ()) in
      List.iteri
        (fun i (p, which) ->
          let priority = float_of_int p in
          Pqueue.add_seq single ~priority ~seq:i i;
          Pqueue.add_seq parts.(which mod 3) ~priority ~seq:i i)
        inserts;
      let drain_single acc =
        let rec go acc =
          match Pqueue.pop single with
          | Some (_, v) -> go (v :: acc)
          | None -> List.rev acc
        in
        go acc
      in
      let rec drain_merged acc =
        let best = ref None in
        Array.iter
          (fun q ->
            match (Pqueue.min_key q, !best) with
            | Some k, Some (bk, _) when k < bk -> best := Some (k, q)
            | Some k, None -> best := Some (k, q)
            | _ -> ())
          parts;
        match !best with
        | None -> List.rev acc
        | Some (_, q) -> (
            match Pqueue.pop q with
            | Some (_, v) -> drain_merged (v :: acc)
            | None -> List.rev acc)
      in
      drain_single [] = drain_merged [])

(* ------------------------------------------------------------------ *)
(* A miniature multi-region world (the E21 shape, scaled down)         *)
(* ------------------------------------------------------------------ *)

let proto = Ipv4_packet.P_other 251
let prefix = Ipv4_addr.Prefix.of_string

(* [regions] routers behind a hub over 5 ms p2p links (the lookahead),
   each with a 0.5 ms Ethernet segment carrying two hosts. *)
let build_mini regions =
  let net = Net.create () in
  let hub = Net.add_router net "hub" in
  let region k =
    let rr = Net.add_router net (Printf.sprintf "rr%d" k) in
    let p = prefix (Printf.sprintf "10.200.%d.0/30" k) in
    let hub_addr = Ipv4_addr.Prefix.host p 1 in
    let rr_addr = Ipv4_addr.Prefix.host p 2 in
    ignore
      (Net.p2p net ~latency:0.005 ~prefix:p
         (hub, Printf.sprintf "r%d" k, hub_addr)
         (rr, "wan", rr_addr));
    let rp = prefix (Printf.sprintf "10.%d.0.0/16" (10 + k)) in
    let seg =
      Net.add_segment net ~name:(Printf.sprintf "lan%d" k) ~latency:0.0005 ()
    in
    let rr_lan = Ipv4_addr.Prefix.host rp 1 in
    ignore (Net.attach rr seg ~ifname:"lan" ~addr:rr_lan ~prefix:rp);
    Routing.add_default (Net.routing rr) ~gateway:hub_addr ~iface:"wan";
    Routing.add (Net.routing hub) ~gateway:rr_addr ~prefix:rp
      ~iface:(Printf.sprintf "r%d" k) ();
    Array.init 2 (fun h ->
        let n = Net.add_host net (Printf.sprintf "h%d-%d" k h) in
        let a = Ipv4_addr.Prefix.host rp (10 + h) in
        ignore (Net.attach n seg ~ifname:"eth0" ~addr:a ~prefix:rp);
        Routing.add_default (Net.routing n) ~gateway:rr_lan ~iface:"eth0";
        (n, a))
  in
  (net, Array.init regions region)

type mini_slot = {
  a : Net.node;
  a_addr : Ipv4_addr.t;
  b : Net.node;
  b_addr : Ipv4_addr.t;
  budget : int;
}

(* Decode a qcheck int seed into a ping-pong slot over the mini world. *)
let slot_of_seed hosts ~regions seed =
  let s = abs seed in
  let ra = s mod regions and rb = s / 7 mod regions in
  let ha = s / 3 mod 2 and hb = s / 5 mod 2 in
  let a, a_addr = hosts.(ra).(ha) and b, b_addr = hosts.(rb).(hb) in
  if a == b then None
  else Some { a; a_addr; b; b_addr; budget = 1 + (s mod 3) }

let install_pingpong net hosts slots =
  let nslots = Array.length slots in
  let recv_a = Array.make nslots 0 in
  let recv_b = Array.make nslots 0 in
  let sent = Array.make nslots 0 in
  let send_slot i ~src ~from_node ~dst =
    ignore
      (Net.send from_node
         (Ipv4_packet.make ~ident:i ~protocol:proto ~src ~dst
            (Ipv4_packet.Raw (Bytes.make 64 'p'))))
  in
  let handler node _iface (pkt : Ipv4_packet.t) =
    let i = pkt.Ipv4_packet.ident in
    let s = slots.(i) in
    if node == s.b then begin
      recv_b.(i) <- recv_b.(i) + 1;
      send_slot i ~src:s.b_addr ~from_node:s.b ~dst:s.a_addr
    end
    else begin
      recv_a.(i) <- recv_a.(i) + 1;
      if sent.(i) < s.budget then begin
        sent.(i) <- sent.(i) + 1;
        send_slot i ~src:s.a_addr ~from_node:s.a ~dst:s.b_addr
      end
    end
  in
  Array.iter
    (fun row ->
      Array.iter (fun (n, _) -> Net.set_protocol_handler n proto handler) row)
    hosts;
  Array.iteri
    (fun i s ->
      Engine.after (Net.node_engine s.a)
        (float_of_int i *. 0.0007)
        (fun () ->
          sent.(i) <- 1;
          send_slot i ~src:s.a_addr ~from_node:s.a ~dst:s.b_addr))
    slots;
  ignore net;
  (recv_a, recv_b)

(* One full run at a given shard count; returns the literal trace. *)
let run_mini ~regions ~shards ~parallel seeds =
  let net, hosts = build_mini regions in
  if shards > 1 || parallel then Net.set_shards ~parallel net shards;
  let slots =
    Array.of_list
      (List.filter_map (slot_of_seed hosts ~regions) seeds)
  in
  let recv_a, recv_b = install_pingpong net hosts slots in
  Net.run net;
  let delivered =
    Array.fold_left ( + ) 0 recv_a + Array.fold_left ( + ) 0 recv_b
  in
  (Trace.records (Net.trace net), delivered)

(* ------------------------------------------------------------------ *)
(* Sequential merged executor: bit-for-bit the unsharded world         *)
(* ------------------------------------------------------------------ *)

let prop_seq_merge_deterministic =
  QCheck.Test.make
    ~name:"sharded (seq merge) trace == unsharded trace, shards in {1,2,4}"
    ~count:30
    QCheck.(pair (2 -- 4) (list_of_size Gen.(1 -- 8) (int_bound 10_000)))
    (fun (regions, seeds) ->
      let regions = max 2 regions (* the shrinker ignores the range *) in
      let seeds = 1 :: seeds in
      let reference, _ = run_mini ~regions ~shards:1 ~parallel:false seeds in
      reference <> []
      && List.for_all
           (fun k ->
             let tr, _ = run_mini ~regions ~shards:k ~parallel:false seeds in
             tr = reference)
           [ 1; 2; 4 ])

let test_seq_merge_topo_scenario () =
  (* The CLI path: a Topo world built with ?shards must replay the
     unsharded world's trace byte for byte.  Static care-of attachment:
     the DHCP exchange embeds interface MACs, which come from a global
     counter and so differ between two builds in one process. *)
  let run shards =
    let w = Scenarios.Topo.build ?shards () in
    Scenarios.Topo.roam_static w ();
    Scenarios.Topo.come_home w;
    Scenarios.Topo.run w;
    Trace.records (Net.trace w.Scenarios.Topo.net)
  in
  let plain = run None in
  let sharded = run (Some 4) in
  Alcotest.(check bool) "trace non-empty" true (plain <> []);
  Alcotest.(check bool) "identical records" true (plain = sharded)

(* ------------------------------------------------------------------ *)
(* Parallel barrier executor                                           *)
(* ------------------------------------------------------------------ *)

let test_parallel_matches_sequential () =
  let seeds = [ 12; 345; 6789; 1011; 1213 ] in
  let _, seq_delivered = run_mini ~regions:4 ~shards:1 ~parallel:false seeds in
  let _, par_delivered = run_mini ~regions:4 ~shards:4 ~parallel:true seeds in
  Alcotest.(check bool) "delivered something" true (seq_delivered > 0);
  Alcotest.(check int) "parallel delivers the same datagram count"
    seq_delivered par_delivered

let test_parallel_replays_identically () =
  let seeds = [ 100; 200; 55 ] in
  let tr1, d1 = run_mini ~regions:3 ~shards:3 ~parallel:true seeds in
  let tr2, d2 = run_mini ~regions:3 ~shards:3 ~parallel:true seeds in
  Alcotest.(check bool) "trace non-empty" true (tr1 <> []);
  Alcotest.(check int) "same deliveries" d1 d2;
  Alcotest.(check bool) "same trace, record for record" true (tr1 = tr2)

let test_cancellable_across_barriers () =
  (* A timer scheduled several conservative windows ahead must survive
     the barriers if left alone, and must never fire once cancelled —
     even when the cancel happens windows after the schedule. *)
  let net, hosts = build_mini 2 in
  Net.set_shards ~parallel:true net 2;
  Alcotest.(check int) "two shards" 2 (Net.shard_count net);
  Alcotest.(check (float 1e-9)) "lookahead is the hub link" 0.005
    (Net.lookahead net);
  let n0, _ = hosts.(0).(0) in
  let n1, _ = hosts.(1).(0) in
  let fired_live = ref false in
  let fired_cancelled = ref false in
  let e0 = Net.node_engine n0 in
  let e1 = Net.node_engine n1 in
  Engine.after e0 0.001 (fun () ->
      (* ~10 windows out at 5 ms lookahead *)
      let (_ : unit -> unit) =
        Engine.cancellable_after e0 0.05 (fun () -> fired_live := true)
      in
      let cancel =
        Engine.cancellable_after e0 0.05 (fun () -> fired_cancelled := true)
      in
      (* cancel from a later event, several barriers downstream *)
      Engine.after e0 0.02 cancel);
  (* keep the other shard's clock moving on its own timers too *)
  let ticks = ref 0 in
  let rec tick () =
    incr ticks;
    if !ticks < 12 then Engine.after e1 0.004 tick
  in
  Engine.after e1 0.004 tick;
  Net.run net;
  Alcotest.(check bool) "uncancelled timer fired across windows" true
    !fired_live;
  Alcotest.(check bool) "cancelled timer never fired" false !fired_cancelled;
  Alcotest.(check int) "other shard ran its ticks" 12 !ticks

(* ------------------------------------------------------------------ *)
(* Partition derivation and validation                                 *)
(* ------------------------------------------------------------------ *)

let test_set_shards_validates () =
  let net, _ = build_mini 2 in
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Net.set_shards: shard count must be >= 1") (fun () ->
      Net.set_shards net 0)

let test_parallel_requires_idle_engine () =
  let net, _ = build_mini 2 in
  Engine.after (Net.engine net) 1.0 (fun () -> ());
  (match Net.set_shards ~parallel:true net 2 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "world left unsharded" 1 (Net.shard_count net)

let test_parallel_rejects_zero_latency_cut () =
  let net = Net.create () in
  let r0 = Net.add_router net "r0" in
  let r1 = Net.add_router net "r1" in
  let p = prefix "10.0.0.0/30" in
  ignore
    (Net.p2p net ~latency:0.0 ~prefix:p
       (r0, "a", Ipv4_addr.Prefix.host p 1)
       (r1, "b", Ipv4_addr.Prefix.host p 2));
  (match Net.set_shards ~parallel:true net 2 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_lossy_link_pins_one_shard () =
  (* A lossy p2p link's seeded loss generator is shared mutable state:
     the partitioner must keep its endpoints on one shard rather than
     let the cut race the generator. *)
  let net = Net.create () in
  let r0 = Net.add_router net "r0" in
  let r1 = Net.add_router net "r1" in
  let p = prefix "10.0.0.0/30" in
  ignore
    (Net.p2p net ~latency:0.005 ~loss:0.1 ~prefix:p
       (r0, "a", Ipv4_addr.Prefix.host p 1)
       (r1, "b", Ipv4_addr.Prefix.host p 2));
  Net.set_shards net 2;
  Alcotest.(check int) "collapsed to one shard" 1 (Net.shard_count net)

let test_partition_respects_segments () =
  let net, hosts = build_mini 4 in
  Net.set_shards net 4;
  Alcotest.(check int) "four components, four shards" 4 (Net.shard_count net);
  Array.iteri
    (fun k row ->
      let (h0, _), (h1, _) = (row.(0), row.(1)) in
      Alcotest.(check int)
        (Printf.sprintf "region %d co-members share a shard" k)
        (Net.node_shard h0) (Net.node_shard h1))
    hosts;
  (* asking for more shards than components caps at the component count *)
  let net2, _ = build_mini 2 in
  Net.set_shards net2 8;
  Alcotest.(check bool) "capped by component count" true
    (Net.shard_count net2 <= 3)

let test_same_pins_nodes_together () =
  let net, hosts = build_mini 2 in
  let a, _ = hosts.(0).(0) in
  let b, _ = hosts.(1).(0) in
  Net.set_shards ~same:[ (a, b) ] net 2;
  Alcotest.(check int) "~same forces one shard" (Net.node_shard a)
    (Net.node_shard b)

(* ------------------------------------------------------------------ *)
(* Addr_map and Pool                                                   *)
(* ------------------------------------------------------------------ *)

let prop_addr_map_matches_hashtbl =
  QCheck.Test.make ~name:"Addr_map behaves like Hashtbl" ~count:200
    QCheck.(list (pair (int_bound 500) (option (int_bound 100))))
    (fun ops ->
      let m = Addr_map.create () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Addr_map.replace m k v;
              Hashtbl.replace h k v
          | None ->
              Addr_map.remove m k;
              Hashtbl.remove h k)
        ops;
      Addr_map.length m = Hashtbl.length h
      && List.for_all
           (fun k -> Addr_map.find m k = Hashtbl.find_opt h k)
           (List.init 501 Fun.id))

let test_addr_map_addr_keys () =
  let m = Addr_map.create () in
  let a = Ipv4_addr.of_string "131.7.0.22" in
  Addr_map.replace m (Addr_map.of_addr a) "mh";
  Alcotest.(check (option string))
    "address round-trips" (Some "mh")
    (Addr_map.find m (Addr_map.of_addr a));
  (* colliding keys survive a backward-shift deletion in between *)
  let cap = 16 in (* default capacity: keys differing by it probe-collide *)
  Addr_map.replace m 3 "x";
  Addr_map.replace m (3 + cap) "y";
  Addr_map.replace m (3 + (2 * cap)) "z";
  Addr_map.remove m (3 + cap);
  Alcotest.(check (option string)) "head survives" (Some "x")
    (Addr_map.find m 3);
  Alcotest.(check (option string)) "tail shifted back" (Some "z")
    (Addr_map.find m (3 + (2 * cap)))

let test_pool_recycles () =
  let p = Pool.create () in
  let b1 = Pool.alloc p 512 in
  Alcotest.(check int) "sized as asked" 512 (Bytes.length b1);
  Alcotest.(check int) "first alloc is a miss" 1 (Pool.misses p);
  Pool.release p b1;
  Alcotest.(check int) "released buffer pooled" 1 (Pool.pooled p);
  let b2 = Pool.alloc p 512 in
  Alcotest.(check bool) "same buffer back" true (b1 == b2);
  Alcotest.(check int) "second alloc is a hit" 1 (Pool.hits p);
  let b3 = Pool.alloc p 512 in
  Alcotest.(check bool) "distinct when pool empty" true (not (b2 == b3));
  Alcotest.(check int) "live tracks outstanding" 2 (Pool.live p)

let test_node_pools_are_per_shard () =
  let net, hosts = build_mini 2 in
  Net.set_shards net 2;
  let a, _ = hosts.(0).(0) in
  let a', _ = hosts.(0).(1) in
  let b, _ = hosts.(1).(0) in
  Alcotest.(check bool) "co-shard nodes share a pool" true
    (Net.node_pool a == Net.node_pool a');
  if Net.node_shard a <> Net.node_shard b then
    Alcotest.(check bool) "cross-shard nodes do not" true
      (not (Net.node_pool a == Net.node_pool b))

let suites =
  [
    ( "shard.pqueue",
      [
        Alcotest.test_case "add_seq orders by (priority, seq)" `Quick
          test_pqueue_add_seq_orders;
        Alcotest.test_case "min_key peeks the merged key" `Quick
          test_pqueue_min_key;
        QCheck_alcotest.to_alcotest prop_merged_queues_equal_single;
      ] );
    ( "shard.determinism",
      [
        QCheck_alcotest.to_alcotest prop_seq_merge_deterministic;
        Alcotest.test_case "Topo ?shards replays the scenario trace" `Quick
          test_seq_merge_topo_scenario;
      ] );
    ( "shard.parallel",
      [
        Alcotest.test_case "matches sequential deliveries" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "replays identically run to run" `Quick
          test_parallel_replays_identically;
        Alcotest.test_case "cancellable_after across barrier windows" `Quick
          test_cancellable_across_barriers;
      ] );
    ( "shard.partition",
      [
        Alcotest.test_case "rejects n < 1" `Quick test_set_shards_validates;
        Alcotest.test_case "parallel requires an idle engine" `Quick
          test_parallel_requires_idle_engine;
        Alcotest.test_case "parallel rejects zero-latency cuts" `Quick
          test_parallel_rejects_zero_latency_cut;
        Alcotest.test_case "lossy links pin their endpoints" `Quick
          test_lossy_link_pins_one_shard;
        Alcotest.test_case "segments never span shards" `Quick
          test_partition_respects_segments;
        Alcotest.test_case "~same pins node pairs" `Quick
          test_same_pins_nodes_together;
      ] );
    ( "shard.structures",
      [
        QCheck_alcotest.to_alcotest prop_addr_map_matches_hashtbl;
        Alcotest.test_case "Addr_map keys addresses" `Quick
          test_addr_map_addr_keys;
        Alcotest.test_case "Pool recycles by size" `Quick test_pool_recycles;
        Alcotest.test_case "node pools are per shard" `Quick
          test_node_pools_are_per_shard;
      ] );
  ]
