(* IPv4 packet codec: every payload kind, nesting, sizes, fragments,
   corruption, and encode/decode property tests. *)

open Netsim

let a = Ipv4_addr.of_string
let src = a "36.1.0.5"
let dst = a "44.2.0.10"
let coa = a "131.7.0.100"
let ha = a "36.1.0.2"

let udp_payload n =
  Ipv4_packet.Udp (Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make n 'u'))

let base n = Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src ~dst (udp_payload n)

let roundtrip pkt =
  match Ipv4_packet.decode (Ipv4_packet.encode pkt) with
  | Ok pkt' -> pkt'
  | Error e -> Alcotest.failf "decode failed: %s" e

let check_roundtrip name pkt =
  Alcotest.(check bool) name true (Ipv4_packet.equal pkt (roundtrip pkt))

let test_roundtrip_raw () =
  check_roundtrip "raw"
    (Ipv4_packet.make ~protocol:(Ipv4_packet.P_other 99) ~src ~dst
       (Ipv4_packet.Raw (Bytes.of_string "opaque")))

let test_roundtrip_udp () = check_roundtrip "udp" (base 100)

let test_roundtrip_tcp () =
  check_roundtrip "tcp"
    (Ipv4_packet.make ~protocol:Ipv4_packet.P_tcp ~src ~dst
       (Ipv4_packet.Tcp
          (Tcp_wire.make ~src_port:1 ~dst_port:2 ~seq:3 ~ack_n:4
             ~flags:Tcp_wire.flag_ack (Bytes.of_string "seg"))))

let test_roundtrip_icmp () =
  check_roundtrip "icmp"
    (Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src ~dst
       (Ipv4_packet.Icmp
          (Icmp_wire.Echo_request { ident = 1; seq = 2; payload = Bytes.create 8 })))

let test_roundtrip_tunnels () =
  let inner = base 64 in
  check_roundtrip "ipip"
    (Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:coa ~dst:ha inner);
  check_roundtrip "gre"
    (Mobileip.Encap.wrap Mobileip.Encap.Gre ~src:coa ~dst:ha inner);
  check_roundtrip "minimal"
    (Mobileip.Encap.wrap Mobileip.Encap.Minimal ~src:coa ~dst:ha inner)

let test_roundtrip_nested_tunnel () =
  (* A tunnel in a tunnel (e.g. MH reverse tunnel of an already
     encapsulated packet). *)
  let inner = base 32 in
  let once = Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:coa ~dst ~ttl:32 inner in
  let twice = Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:coa ~dst:ha once in
  check_roundtrip "double encapsulation" twice;
  Alcotest.(check int) "40 bytes of overhead"
    (Ipv4_packet.byte_length inner + 40)
    (Ipv4_packet.byte_length twice)

let test_byte_length_matches_encode () =
  List.iter
    (fun pkt ->
      Alcotest.(check int) "byte_length = encoded length"
        (Bytes.length (Ipv4_packet.encode pkt))
        (Ipv4_packet.byte_length pkt))
    [
      base 0;
      base 1472;
      Mobileip.Encap.wrap Mobileip.Encap.Minimal ~src:coa ~dst:ha (base 100);
      Mobileip.Encap.wrap Mobileip.Encap.Gre ~src:coa ~dst:ha (base 100);
    ]

let test_overhead_constants () =
  let inner = base 256 in
  let check mode expect =
    let outer = Mobileip.Encap.wrap mode ~src:coa ~dst:ha inner in
    Alcotest.(check int)
      (Mobileip.Encap.mode_to_string mode)
      expect
      (Ipv4_packet.byte_length outer - Ipv4_packet.byte_length inner)
  in
  check Mobileip.Encap.Ipip 20;
  check Mobileip.Encap.Minimal 12;
  check Mobileip.Encap.Gre 24

let test_header_checksum_corruption () =
  let wire = Ipv4_packet.encode (base 40) in
  Bytes.set wire 8 '\x01' (* TTL *);
  match Ipv4_packet.decode wire with
  | Error e ->
      Alcotest.(check bool) "mentions checksum" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "header corruption not detected"

let test_ttl_decrement () =
  let pkt = Ipv4_packet.make ~ttl:2 ~protocol:Ipv4_packet.P_udp ~src ~dst (udp_payload 4) in
  match Ipv4_packet.decrement_ttl pkt with
  | None -> Alcotest.fail "ttl 2 should survive one hop"
  | Some p -> (
      Alcotest.(check int) "ttl 1" 1 p.Ipv4_packet.ttl;
      match Ipv4_packet.decrement_ttl p with
      | None -> ()
      | Some _ -> Alcotest.fail "ttl must expire at 1")

let test_fragment_payload_stays_raw () =
  let pkt = base 100 in
  let frag = { pkt with Ipv4_packet.more_fragments = true } in
  match Ipv4_packet.decode (Ipv4_packet.encode frag) with
  | Ok p -> (
      match p.Ipv4_packet.payload with
      | Ipv4_packet.Raw _ -> ()
      | _ -> Alcotest.fail "fragment payload must not be parsed")
  | Error e -> Alcotest.fail e

let test_reparse_payload () =
  let pkt = base 50 in
  let wire = Ipv4_packet.encode pkt in
  let hlen = Ipv4_packet.header_length pkt in
  let rawed =
    {
      pkt with
      Ipv4_packet.payload =
        Ipv4_packet.Raw (Bytes.sub wire hlen (Bytes.length wire - hlen));
    }
  in
  let reparsed = Ipv4_packet.reparse_payload rawed in
  Alcotest.(check bool) "reparsed equals original" true
    (Ipv4_packet.equal pkt reparsed)

let test_options_encoded () =
  let options = Bytes.make 8 '\001' in
  let pkt =
    Ipv4_packet.make ~options ~protocol:Ipv4_packet.P_udp ~src ~dst
      (udp_payload 10)
  in
  Alcotest.(check int) "header length" 28 (Ipv4_packet.header_length pkt);
  check_roundtrip "with options" pkt

let test_options_validated () =
  Alcotest.check_raises "odd options"
    (Invalid_argument
       "Ipv4_packet.make: options must be <= 40 bytes, multiple of 4")
    (fun () ->
      ignore
        (Ipv4_packet.make ~options:(Bytes.create 3)
           ~protocol:Ipv4_packet.P_udp ~src ~dst (udp_payload 1)))

let test_protocol_numbers () =
  List.iter
    (fun (proto, n) ->
      Alcotest.(check int)
        (Format.asprintf "%a" Ipv4_packet.pp_protocol proto)
        n
        (Ipv4_packet.protocol_to_int proto);
      Alcotest.(check bool) "inverse" true
        (Ipv4_packet.protocol_of_int n = proto))
    [
      (Ipv4_packet.P_icmp, 1); (Ipv4_packet.P_ipip, 4); (Ipv4_packet.P_tcp, 6);
      (Ipv4_packet.P_udp, 17); (Ipv4_packet.P_gre, 47);
      (Ipv4_packet.P_minimal, 55); (Ipv4_packet.P_other 200, 200);
    ]

(* ---- properties ---- *)

let arb_addr =
  QCheck.map
    (fun (x, y, z, w) -> Ipv4_addr.of_octets x y z w)
    QCheck.(quad (0 -- 255) (0 -- 255) (0 -- 255) (0 -- 255))

let arb_packet =
  QCheck.map
    (fun ((s, d, ttl, tos), (ident, body)) ->
      Ipv4_packet.make ~tos ~ident ~ttl ~protocol:Ipv4_packet.P_udp ~src:s
        ~dst:d
        (Ipv4_packet.Udp
           (Udp_wire.make ~src_port:1000 ~dst_port:2000 (Bytes.of_string body))))
    QCheck.(
      pair
        (quad arb_addr arb_addr (1 -- 255) (0 -- 255))
        (pair (0 -- 65535) (string_of_size Gen.(0 -- 400))))

let prop_encode_decode =
  QCheck.Test.make ~name:"ipv4 encode/decode roundtrip" ~count:300 arb_packet
    (fun pkt ->
      match Ipv4_packet.decode (Ipv4_packet.encode pkt) with
      | Ok pkt' -> Ipv4_packet.equal pkt pkt'
      | Error _ -> false)

let prop_tunnel_roundtrip =
  QCheck.Test.make ~name:"encap wrap/unwrap is identity (all modes)"
    ~count:200
    QCheck.(pair arb_packet (oneofl Mobileip.Encap.all_modes))
    (fun (pkt, mode) ->
      let outer = Mobileip.Encap.wrap mode ~src:coa ~dst:ha pkt in
      match Mobileip.Encap.unwrap outer with
      | Some (m, inner) ->
          m = mode
          &&
          (* Minimal encapsulation only preserves protocol + addresses +
             payload; the full-header modes preserve everything. *)
          (match mode with
          | Mobileip.Encap.Minimal ->
              Ipv4_addr.equal inner.Ipv4_packet.src pkt.Ipv4_packet.src
              && Ipv4_addr.equal inner.Ipv4_packet.dst pkt.Ipv4_packet.dst
              && inner.Ipv4_packet.protocol = pkt.Ipv4_packet.protocol
          | Mobileip.Encap.Ipip | Mobileip.Encap.Gre ->
              Ipv4_packet.equal inner pkt)
      | None -> false)

let prop_wire_tunnel_roundtrip =
  QCheck.Test.make ~name:"encap survives the wire (encode+decode)" ~count:200
    QCheck.(pair arb_packet (oneofl Mobileip.Encap.all_modes))
    (fun (pkt, mode) ->
      let outer = Mobileip.Encap.wrap mode ~src:coa ~dst:ha pkt in
      match Ipv4_packet.decode (Ipv4_packet.encode outer) with
      | Ok outer' -> Ipv4_packet.equal outer outer'
      | Error _ -> false)

let test_header_checksum_matches_encode () =
  List.iter
    (fun pkt ->
      Alcotest.(check int) "header_checksum = wire checksum field"
        (Bytes.get_uint16_be (Ipv4_packet.encode pkt) 10)
        (Ipv4_packet.header_checksum pkt))
    [
      base 0;
      base 100;
      Ipv4_packet.make
        ~options:(Bytes.make 8 '\001')
        ~protocol:Ipv4_packet.P_udp ~src ~dst (udp_payload 10);
      Mobileip.Encap.wrap Mobileip.Encap.Gre ~src:coa ~dst:ha (base 64);
    ]

let prop_header_checksum_matches_encode =
  QCheck.Test.make ~name:"header_checksum = encode's checksum field"
    ~count:300 arb_packet (fun pkt ->
      Ipv4_packet.header_checksum pkt
      = Bytes.get_uint16_be (Ipv4_packet.encode pkt) 10)

let prop_ttl_decrement_checksum =
  QCheck.Test.make ~name:"rfc 1624 ttl decrement = recomputed checksum"
    ~count:300 arb_packet (fun pkt ->
      QCheck.assume (pkt.Ipv4_packet.ttl > 1);
      let csum = Ipv4_packet.header_checksum pkt in
      match Ipv4_packet.decrement_ttl pkt with
      | None -> false
      | Some p ->
          Ipv4_packet.decrement_ttl_checksum ~checksum:csum pkt
          = Ipv4_packet.header_checksum p)

let suites =
  [
    ( "packet",
      [
        Alcotest.test_case "roundtrip raw" `Quick test_roundtrip_raw;
        Alcotest.test_case "roundtrip udp" `Quick test_roundtrip_udp;
        Alcotest.test_case "roundtrip tcp" `Quick test_roundtrip_tcp;
        Alcotest.test_case "roundtrip icmp" `Quick test_roundtrip_icmp;
        Alcotest.test_case "roundtrip tunnels" `Quick test_roundtrip_tunnels;
        Alcotest.test_case "nested tunnel" `Quick test_roundtrip_nested_tunnel;
        Alcotest.test_case "byte_length = encode length" `Quick
          test_byte_length_matches_encode;
        Alcotest.test_case "overhead constants 20/12/24" `Quick
          test_overhead_constants;
        Alcotest.test_case "header corruption detected" `Quick
          test_header_checksum_corruption;
        Alcotest.test_case "ttl decrement" `Quick test_ttl_decrement;
        Alcotest.test_case "fragment stays raw" `Quick
          test_fragment_payload_stays_raw;
        Alcotest.test_case "reparse payload" `Quick test_reparse_payload;
        Alcotest.test_case "options encoded" `Quick test_options_encoded;
        Alcotest.test_case "options validated" `Quick test_options_validated;
        Alcotest.test_case "protocol numbers" `Quick test_protocol_numbers;
        Alcotest.test_case "header_checksum matches encode" `Quick
          test_header_checksum_matches_encode;
        QCheck_alcotest.to_alcotest prop_encode_decode;
        QCheck_alcotest.to_alcotest prop_header_checksum_matches_encode;
        QCheck_alcotest.to_alcotest prop_ttl_decrement_checksum;
        QCheck_alcotest.to_alcotest prop_tunnel_roundtrip;
        QCheck_alcotest.to_alcotest prop_wire_tunnel_roundtrip;
      ] );
  ]
