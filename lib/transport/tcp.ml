open Netsim

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Last_ack
  | Closed
  | Aborted

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Syn_sent -> "syn-sent"
    | Syn_received -> "syn-received"
    | Established -> "established"
    | Fin_wait -> "fin-wait"
    | Close_wait -> "close-wait"
    | Last_ack -> "last-ack"
    | Closed -> "closed"
    | Aborted -> "aborted")

type feedback =
  | Segment_sent of { peer : Ipv4_addr.t; retransmission : bool }
  | Segment_received of { peer : Ipv4_addr.t; retransmission : bool }

let max_retries = 6
let initial_rto = 1.0
let default_mss = 536

type inflight = {
  seg_seq : int;
  seg_len : int;  (* sequence space consumed: data bytes + SYN/FIN *)
  seg_data : Bytes.t;
  seg_syn : bool;
  seg_fin : bool;
}

type conn = {
  stack : t;
  mutable st : state;
  local_addr : Ipv4_addr.t;
  local_port : int;
  remote_addr : Ipv4_addr.t;
  remote_port : int;
  mss : int;
  window : int;  (* max segments in flight (go-back-N); 1 = stop-and-wait *)
  mutable snd_nxt : int;  (* next sequence number to allocate *)
  mutable rcv_nxt : int;
  mutable send_queue : Bytes.t list;
  mutable fin_pending : bool;
  mutable inflight : inflight list;  (* oldest first *)
  mutable rto : float;
  mutable retries : int;
  mutable total_retx : int;
  mutable delivered : int;
  mutable recv_cb : (Bytes.t -> unit) option;
  mutable state_cb : (state -> unit) option;
  mutable cancel_timer : (unit -> unit) option;
}

and t = {
  tcp_node : Net.node;
  mutable conns : conn list;
  listeners : (int, int * (conn -> unit)) Hashtbl.t;  (* window, accept *)
  mutable next_iss : int;
  mutable next_port : int;
  mutable feedback_cb : (feedback -> unit) option;
  mutable retx_aborts : int;
      (* connections that died because the retransmission limit was
         exhausted — "gave up", as opposed to recovered or reset *)
}

let registry : (Net.node * t) list ref = ref []

let node t = t.tcp_node
let set_feedback t f = t.feedback_cb <- f
let listen t ?(window = 1) ~port cb = Hashtbl.replace t.listeners port (window, cb)
let unlisten t ~port = Hashtbl.remove t.listeners port
let state c = c.st
let local_endpoint c = (c.local_addr, c.local_port)
let remote_endpoint c = (c.remote_addr, c.remote_port)
let retransmissions c = c.total_retx
let bytes_delivered c = c.delivered
let retx_aborts t = t.retx_aborts
let on_receive c f = c.recv_cb <- Some f
let on_state_change c f = c.state_cb <- Some f

let feedback t ev = match t.feedback_cb with Some f -> f ev | None -> ()

let set_state c st =
  if c.st <> st then begin
    c.st <- st;
    match c.state_cb with Some f -> f st | None -> ()
  end

let stop_timer c =
  (match c.cancel_timer with Some cancel -> cancel () | None -> ());
  c.cancel_timer <- None

let send_pkt c (tw : Tcp_wire.t) =
  let pkt =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_tcp ~src:c.local_addr
      ~dst:c.remote_addr (Ipv4_packet.Tcp tw)
  in
  ignore (Net.send c.stack.tcp_node pkt)

let transmit_segment c ~retransmission seg =
  let with_ack = not (seg.seg_syn && c.st = Syn_sent) in
  let flags =
    {
      Tcp_wire.syn = seg.seg_syn;
      ack = with_ack;
      fin = seg.seg_fin;
      rst = false;
      psh = Bytes.length seg.seg_data > 0;
      urg = false;
    }
  in
  let ack_n = if with_ack then c.rcv_nxt else 0 in
  let tw =
    Tcp_wire.make ~src_port:c.local_port ~dst_port:c.remote_port
      ~seq:seg.seg_seq ~ack_n ~flags seg.seg_data
  in
  feedback c.stack (Segment_sent { peer = c.remote_addr; retransmission });
  send_pkt c tw

let send_bare_ack c =
  let tw =
    Tcp_wire.make ~src_port:c.local_port ~dst_port:c.remote_port ~seq:c.snd_nxt
      ~ack_n:c.rcv_nxt ~flags:Tcp_wire.flag_ack Bytes.empty
  in
  send_pkt c tw

let send_rst stack ~src ~dst ~src_port ~dst_port ~seq ~ack_n =
  let tw =
    Tcp_wire.make ~src_port ~dst_port ~seq ~ack_n ~flags:Tcp_wire.flag_rst
      Bytes.empty
  in
  let pkt =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_tcp ~src ~dst (Ipv4_packet.Tcp tw)
  in
  ignore (Net.send stack.tcp_node pkt)

let rec arm_timer c =
  stop_timer c;
  let eng = Net.node_engine c.stack.tcp_node in
  c.cancel_timer <- Some (Engine.cancellable_after eng c.rto (fun () -> on_timeout c))

and on_timeout c =
  match c.inflight with
  | [] -> ()
  | segs ->
      if c.retries >= max_retries then begin
        stop_timer c;
        c.inflight <- [];
        c.stack.retx_aborts <- c.stack.retx_aborts + 1;
        set_state c Aborted
      end
      else begin
        (* Go-back-N: resend every unacknowledged segment, oldest first. *)
        c.retries <- c.retries + 1;
        c.total_retx <- c.total_retx + List.length segs;
        c.rto <- c.rto *. 2.0;
        List.iter (transmit_segment c ~retransmission:true) segs;
        arm_timer c
      end

(* Fill the window with data segments from the queue; a FIN goes out once
   everything else is acknowledged.  Data never flows before the handshake
   completes (the peer's application has not accepted the connection
   yet). *)
let rec pump c =
  if
    (match c.st with
    | Established | Close_wait | Fin_wait | Last_ack -> true
    | Syn_sent | Syn_received | Closed | Aborted -> false)
    && List.length c.inflight < c.window
  then begin
    match c.send_queue with
    | data :: rest ->
        let chunk, remainder =
          if Bytes.length data <= c.mss then (data, rest)
          else
            ( Bytes.sub data 0 c.mss,
              Bytes.sub data c.mss (Bytes.length data - c.mss) :: rest )
        in
        c.send_queue <- remainder;
        let seg =
          {
            seg_seq = c.snd_nxt;
            seg_len = Bytes.length chunk;
            seg_data = chunk;
            seg_syn = false;
            seg_fin = false;
          }
        in
        c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt seg.seg_len;
        let was_idle = c.inflight = [] in
        c.inflight <- c.inflight @ [ seg ];
        if was_idle then begin
          c.retries <- 0;
          c.rto <- initial_rto
        end;
        transmit_segment c ~retransmission:false seg;
        if was_idle then arm_timer c;
        pump c
    | [] ->
        if c.fin_pending && c.inflight = [] then begin
          c.fin_pending <- false;
          let seg =
            {
              seg_seq = c.snd_nxt;
              seg_len = 1;
              seg_data = Bytes.empty;
              seg_syn = false;
              seg_fin = true;
            }
          in
          c.snd_nxt <- Tcp_wire.seq_add c.snd_nxt 1;
          c.inflight <- [ seg ];
          c.retries <- 0;
          c.rto <- initial_rto;
          transmit_segment c ~retransmission:false seg;
          arm_timer c;
          set_state c (if c.st = Close_wait then Last_ack else Fin_wait)
        end
  end

and handle_ack c ack_n =
  (* Cumulative acknowledgement: drop the fully-acknowledged prefix. *)
  let acked, remaining =
    List.partition
      (fun seg -> ack_n >= Tcp_wire.seq_add seg.seg_seq seg.seg_len)
      c.inflight
  in
  if acked <> [] then begin
    c.inflight <- remaining;
    c.retries <- 0;
    c.rto <- initial_rto;
    stop_timer c;
    if remaining <> [] then arm_timer c;
    if List.exists (fun seg -> seg.seg_syn) acked then (
      match c.st with
      | Syn_sent | Syn_received -> set_state c Established
      | Established | Fin_wait | Close_wait | Last_ack | Closed | Aborted ->
          ());
    if List.exists (fun seg -> seg.seg_fin) acked then (
      match c.st with
      | Last_ack -> set_state c Closed
      | Fin_wait
      (* our FIN is acknowledged; wait for the peer's FIN *)
      | Syn_sent | Syn_received | Established | Close_wait | Closed | Aborted
        ->
          ());
    pump c
  end

let segment_input c (tw : Tcp_wire.t) =
  let stack = c.stack in
  let flags = tw.Tcp_wire.flags in
  if flags.Tcp_wire.rst then begin
    stop_timer c;
    c.inflight <- [];
    set_state c Aborted
  end
  else if flags.Tcp_wire.syn then begin
    (* SYN or SYN-ACK: learn (or re-learn) the peer's initial sequence. *)
    let isn_next = Tcp_wire.seq_add tw.Tcp_wire.seq 1 in
    if c.rcv_nxt = isn_next then begin
      (* Retransmitted SYN/SYN-ACK: the peer did not get our answer. *)
      feedback stack
        (Segment_received { peer = c.remote_addr; retransmission = true });
      if flags.Tcp_wire.ack then handle_ack c tw.Tcp_wire.ack_n;
      send_bare_ack c
    end
    else begin
      c.rcv_nxt <- isn_next;
      feedback stack
        (Segment_received { peer = c.remote_addr; retransmission = false });
      let was_syn_sent = c.st = Syn_sent in
      if flags.Tcp_wire.ack then handle_ack c tw.Tcp_wire.ack_n;
      (* The active opener acknowledges the SYN-ACK; the passive opener's
         SYN-ACK is in flight and carries the acknowledgement itself. *)
      if was_syn_sent then send_bare_ack c
    end
  end
  else begin
    if flags.Tcp_wire.ack then handle_ack c tw.Tcp_wire.ack_n;
    let data_len = Bytes.length tw.Tcp_wire.payload in
    let seq_len = data_len + if flags.Tcp_wire.fin then 1 else 0 in
    if seq_len > 0 then begin
      if tw.Tcp_wire.seq = c.rcv_nxt then begin
        (* In-order segment. *)
        c.rcv_nxt <- Tcp_wire.seq_add c.rcv_nxt seq_len;
        feedback stack
          (Segment_received { peer = c.remote_addr; retransmission = false });
        if data_len > 0 then begin
          c.delivered <- c.delivered + data_len;
          match c.recv_cb with
          | Some f -> f tw.Tcp_wire.payload
          | None -> ()
        end;
        if flags.Tcp_wire.fin then
          (match c.st with
          | Established -> set_state c Close_wait
          | Fin_wait -> set_state c Closed
          | Syn_sent | Syn_received | Close_wait | Last_ack | Closed | Aborted
            ->
              ());
        send_bare_ack c
      end
      else if tw.Tcp_wire.seq < c.rcv_nxt then begin
        (* Duplicate: the peer is retransmitting — our ACKs are not getting
           through.  This is the signal the paper wants surfaced (§7.1.2). *)
        feedback stack
          (Segment_received { peer = c.remote_addr; retransmission = true });
        send_bare_ack c
      end
      (* Out-of-order future segments (go-back-N): ignored; the sender's
         timeout resends the whole window in order. *)
    end
  end

let demux t (pkt : Ipv4_packet.t) (tw : Tcp_wire.t) =
  let conn =
    List.find_opt
      (fun c ->
        Ipv4_addr.equal c.local_addr pkt.Ipv4_packet.dst
        && c.local_port = tw.Tcp_wire.dst_port
        && Ipv4_addr.equal c.remote_addr pkt.Ipv4_packet.src
        && c.remote_port = tw.Tcp_wire.src_port
        && c.st <> Closed && c.st <> Aborted)
      t.conns
  in
  match conn with
  | Some c -> segment_input c tw
  | None -> (
      if tw.Tcp_wire.flags.Tcp_wire.syn && not tw.Tcp_wire.flags.Tcp_wire.ack
      then
        match Hashtbl.find_opt t.listeners tw.Tcp_wire.dst_port with
        | Some (window, accept_cb) ->
            (* Passive open. *)
            let iss = t.next_iss in
            t.next_iss <- t.next_iss + 64000;
            let c =
              {
                stack = t;
                st = Syn_received;
                local_addr = pkt.Ipv4_packet.dst;
                local_port = tw.Tcp_wire.dst_port;
                remote_addr = pkt.Ipv4_packet.src;
                remote_port = tw.Tcp_wire.src_port;
                mss = default_mss;
                window;
                snd_nxt = Tcp_wire.seq_add iss 1;
                rcv_nxt = Tcp_wire.seq_add tw.Tcp_wire.seq 1;
                send_queue = [];
                fin_pending = false;
                inflight = [];
                rto = initial_rto;
                retries = 0;
                total_retx = 0;
                delivered = 0;
                recv_cb = None;
                state_cb = None;
                cancel_timer = None;
              }
            in
            t.conns <- c :: t.conns;
            (* Fire the accept callback once established. *)
            let prev_cb = c.state_cb in
            c.state_cb <-
              Some
                (fun st ->
                  (match prev_cb with Some f -> f st | None -> ());
                  if st = Established then accept_cb c);
            let seg =
              {
                seg_seq = iss;
                seg_len = 1;
                seg_data = Bytes.empty;
                seg_syn = true;
                seg_fin = false;
              }
            in
            c.inflight <- [ seg ];
            transmit_segment c ~retransmission:false seg;
            arm_timer c
        | None ->
            send_rst t ~src:pkt.Ipv4_packet.dst ~dst:pkt.Ipv4_packet.src
              ~src_port:tw.Tcp_wire.dst_port ~dst_port:tw.Tcp_wire.src_port
              ~seq:0
              ~ack_n:(Tcp_wire.seq_add tw.Tcp_wire.seq 1)
      else if not tw.Tcp_wire.flags.Tcp_wire.rst then
        (* Segment for a connection we do not know: reset it. *)
        send_rst t ~src:pkt.Ipv4_packet.dst ~dst:pkt.Ipv4_packet.src
          ~src_port:tw.Tcp_wire.dst_port ~dst_port:tw.Tcp_wire.src_port
          ~seq:tw.Tcp_wire.ack_n ~ack_n:0)

let handle_tcp t _node _in_iface (pkt : Ipv4_packet.t) =
  match pkt.Ipv4_packet.payload with
  | Ipv4_packet.Tcp tw -> demux t pkt tw
  | _ -> ()

let get node =
  match List.find_opt (fun (n, _) -> n == node) !registry with
  | Some (_, t) -> t
  | None ->
      let t =
        {
          tcp_node = node;
          conns = [];
          listeners = Hashtbl.create 8;
          next_iss = 100_000;
          next_port = Well_known.ephemeral_base;
          feedback_cb = None;
          retx_aborts = 0;
        }
      in
      registry := (node, t) :: !registry;
      Net.set_protocol_handler node Ipv4_packet.P_tcp (handle_tcp t);
      t

let default_src node =
  match Net.ifaces node with
  | i :: _ -> Net.iface_addr i
  | [] -> Ipv4_addr.any

let connect t ?src ?src_port ?(mss = default_mss) ?(window = 1) ~dst ~dst_port () =
  let src = match src with Some s -> s | None -> default_src t.tcp_node in
  let src_port =
    match src_port with
    | Some p -> p
    | None ->
        let p = t.next_port in
        t.next_port <- (if p >= 65535 then Well_known.ephemeral_base else p + 1);
        p
  in
  let iss = t.next_iss in
  t.next_iss <- t.next_iss + 64000;
  let c =
    {
      stack = t;
      st = Syn_sent;
      local_addr = src;
      local_port = src_port;
      remote_addr = dst;
      remote_port = dst_port;
      mss;
      window;
      snd_nxt = Tcp_wire.seq_add iss 1;
      rcv_nxt = 0;
      send_queue = [];
      fin_pending = false;
      inflight = [];
      rto = initial_rto;
      retries = 0;
      total_retx = 0;
      delivered = 0;
      recv_cb = None;
      state_cb = None;
      cancel_timer = None;
    }
  in
  t.conns <- c :: t.conns;
  let seg =
    { seg_seq = iss; seg_len = 1; seg_data = Bytes.empty; seg_syn = true;
      seg_fin = false }
  in
  c.inflight <- [ seg ];
  transmit_segment c ~retransmission:false seg;
  arm_timer c;
  c

let send_data c data =
  if Bytes.length data > 0 then begin
    c.send_queue <- c.send_queue @ [ data ];
    pump c
  end

let close c =
  match c.st with
  | Closed | Aborted -> ()
  | _ ->
      c.fin_pending <- true;
      pump c

let abort c =
  match c.st with
  | Closed | Aborted -> ()
  | _ ->
      stop_timer c;
      c.inflight <- [];
      send_rst c.stack ~src:c.local_addr ~dst:c.remote_addr
        ~src_port:c.local_port ~dst_port:c.remote_port ~seq:c.snd_nxt ~ack_n:0;
      set_state c Closed
