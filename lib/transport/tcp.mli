(** A simplified TCP, sufficient for the paper's purposes.

    What matters for Mobile IP (paper §2, §7.1.2) is not throughput but:

    - connections are identified by a 4-tuple whose local address is fixed
      when the connection is created — so the choice of source address
      {e is} the mobility decision, and a connection bound to a care-of
      address dies when the host moves;
    - reliability comes from retransmission with exponential backoff, and
      the stack reports, for every segment sent and received, whether it
      was an original or a retransmission — the IP-layer feedback API the
      paper proposes so the mobility software can tell that its currently
      selected delivery method is failing.

    The implementation is stop-and-wait (one segment in flight): handshake,
    in-order delivery, duplicate detection, FIN teardown, RST on unmatched
    segments, and abort after [max_retries] consecutive losses. *)

type t
(** A per-node TCP stack (owns the node's TCP protocol handler). *)

type conn

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Last_ack
  | Closed
  | Aborted  (** reset by peer, or retransmission limit exhausted *)

val pp_state : Format.formatter -> state -> unit

(** Original-vs-retransmission indications, per the paper's proposed
    addition to the IP programming interface. *)
type feedback =
  | Segment_sent of { peer : Netsim.Ipv4_addr.t; retransmission : bool }
  | Segment_received of { peer : Netsim.Ipv4_addr.t; retransmission : bool }

val get : Netsim.Net.node -> t
val node : t -> Netsim.Net.node

val set_feedback : t -> (feedback -> unit) option -> unit
(** Install the IP-layer feedback listener (the mobility software's
    selector subscribes here). *)

val listen : t -> ?window:int -> port:int -> (conn -> unit) -> unit
(** Accept connections on a port; the callback fires when a connection
    reaches [Established].  [?window] (default 1) is the send window of
    accepted connections, as in {!connect}. *)

val unlisten : t -> port:int -> unit

val connect :
  t ->
  ?src:Netsim.Ipv4_addr.t ->
  ?src_port:int ->
  ?mss:int ->
  ?window:int ->
  dst:Netsim.Ipv4_addr.t ->
  dst_port:int ->
  unit ->
  conn
(** Open a connection.  [?src] fixes the local endpoint address (the
    mobility decision); default is the node's primary interface address.
    Default [mss] is 536 bytes.  [?window] is the client's send window in
    segments (go-back-N retransmission); the default of 1 is stop-and-wait,
    which keeps simulations minimal and every loss observable. *)

val send_data : conn -> Bytes.t -> unit
(** Queue application data (segmented to the MSS). *)

val close : conn -> unit
(** Send FIN once queued data has been acknowledged. *)

val abort : conn -> unit
(** Send RST and drop the connection. *)

val on_receive : conn -> (Bytes.t -> unit) -> unit
val on_state_change : conn -> (state -> unit) -> unit

val state : conn -> state
val local_endpoint : conn -> Netsim.Ipv4_addr.t * int
val remote_endpoint : conn -> Netsim.Ipv4_addr.t * int
val retransmissions : conn -> int
(** Total retransmitted segments over the connection's life. *)

val bytes_delivered : conn -> int
(** Application bytes delivered in order to [on_receive]. *)

val retx_aborts : t -> int
(** Connections on this stack that aborted because the retransmission
    limit was exhausted — "gave up", as opposed to recovered after
    retries or reset by the peer.  Soak runs export this as the Netobs
    counter [tcp_retx_aborted_total]. *)

val max_retries : int
(** Consecutive retransmissions of one segment before the connection
    aborts (6). *)
