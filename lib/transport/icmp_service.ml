open Netsim

type pending_ping = { ident : int; seq : int; sent_at : float; on_reply : rtt:float -> unit }

type t = {
  svc_node : Net.node;
  mutable pings : pending_ping list;
  mutable next_ident : int;
  mutable care_of_listener :
    (home:Ipv4_addr.t -> care_of:Ipv4_addr.t -> lifetime:int -> unit) option;
  mutable unreachable_listener :
    (code:Icmp_wire.unreach_code ->
    src:Ipv4_addr.t ->
    original:(Ipv4_addr.t * Ipv4_addr.t) option ->
    unit)
    option;
  mutable answered : int;
}

let registry : (Net.node * t) list ref = ref []

let handle_icmp t node _in_iface (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Ipv4_packet.Icmp msg -> (
      match msg with
      | Icmp_wire.Echo_request { ident; seq; payload } ->
          t.answered <- t.answered + 1;
          let reply = Icmp_wire.Echo_reply { ident; seq; payload } in
          let out =
            Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src:pkt.dst
              ~dst:pkt.src (Ipv4_packet.Icmp reply)
          in
          ignore (Net.send node out)
      | Icmp_wire.Echo_reply { ident; seq; _ } -> (
          match
            List.find_opt (fun p -> p.ident = ident && p.seq = seq) t.pings
          with
          | None -> ()
          | Some p ->
              t.pings <- List.filter (fun q -> q != p) t.pings;
              let now = Net.node_now node in
              p.on_reply ~rtt:(now -. p.sent_at))
      | Icmp_wire.Care_of_advert { home; care_of; lifetime } -> (
          match t.care_of_listener with
          | Some f -> f ~home ~care_of ~lifetime
          | None -> ())
      | Icmp_wire.Dest_unreachable { code; context } -> (
          match t.unreachable_listener with
          | Some f ->
              f ~code ~src:pkt.src
                ~original:(Icmp_wire.context_original context)
          | None -> ())
      | Icmp_wire.Time_exceeded _ -> ())
  | _ -> ()

let get node =
  match List.find_opt (fun (n, _) -> n == node) !registry with
  | Some (_, t) -> t
  | None ->
      let t =
        {
          svc_node = node;
          pings = [];
          next_ident = 1;
          care_of_listener = None;
          unreachable_listener = None;
          answered = 0;
        }
      in
      registry := (node, t) :: !registry;
      Net.set_protocol_handler node Ipv4_packet.P_icmp (handle_icmp t);
      t

let node t = t.svc_node

let ping t ?src ?(payload_size = 56) ~dst on_reply =
  let ident = t.next_ident in
  t.next_ident <- t.next_ident + 1;
  let payload = Bytes.make payload_size 'p' in
  let req = Icmp_wire.Echo_request { ident; seq = 1; payload } in
  let src = Option.value src ~default:Ipv4_addr.any in
  let pkt =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src ~dst
      (Ipv4_packet.Icmp req)
  in
  t.pings <-
    { ident; seq = 1; sent_at = Net.node_now t.svc_node; on_reply } :: t.pings;
  ignore (Net.send t.svc_node pkt)

let on_care_of_advert t f = t.care_of_listener <- f
let on_unreachable t f = t.unreachable_listener <- f

let send_care_of_advert t ~src ~dst ~home ~care_of ~lifetime =
  let msg = Icmp_wire.Care_of_advert { home; care_of; lifetime } in
  let pkt =
    Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src ~dst
      (Ipv4_packet.Icmp msg)
  in
  ignore (Net.send t.svc_node pkt)

let echo_requests_answered t = t.answered
