(** Well-known port numbers used by the examples, heuristics and tests.

    The paper's §7.1.1 heuristics key off exactly these: "connections to
    port 80 are likely to be HTTP requests and can safely use Out-DT.
    Similarly, UDP packets addressed to UDP port 53 are likely to be DNS
    requests".

    Values: echo 7, telnet 23, dns 53, dhcp 67/68, http 80, pop3 110,
    nfs 2049, Mobile IP registration 434, ephemeral range from 49152. *)

val echo : int
val telnet : int
val dns : int
val dhcp_server : int
val dhcp_client : int
val http : int
val pop3 : int
val nfs : int
val mip_registration : int
val ephemeral_base : int
