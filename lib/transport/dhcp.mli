(** A compact DHCP-like address assignment service (paper §2: a mobile
    host's guest connection "may be obtained by connecting to an Ethernet
    segment and having an address assigned automatically by DHCP").

    The exchange is a two-message REQUEST/ACK over real UDP broadcast on
    ports 67/68, exercising the simulator's broadcast delivery: the client
    sends from 0.0.0.0 to 255.255.255.255 identifying itself by MAC; the
    server answers with a leased address, prefix and default gateway. *)

module Server : sig
  type t

  val create :
    Netsim.Net.node ->
    pool:Netsim.Ipv4_addr.Prefix.t ->
    first_host:int ->
    last_host:int ->
    gateway:Netsim.Ipv4_addr.t ->
    ?lease_time:int ->
    unit ->
    t
  (** Serve addresses [host pool first_host .. host pool last_host].
      Leases are per client MAC and stable across repeated requests.
      Default lease 3600 s. *)

  val leases : t -> (Netsim.Mac_addr.t * Netsim.Ipv4_addr.t) list
  val outstanding : t -> int
end

module Client : sig
  type offer = {
    addr : Netsim.Ipv4_addr.t;
    prefix : Netsim.Ipv4_addr.Prefix.t;
    gateway : Netsim.Ipv4_addr.t;
    lease_time : int;
  }

  val request :
    Netsim.Net.node -> via:Netsim.Net.iface -> (offer -> unit) -> unit
  (** Broadcast a request on the interface's segment; the callback fires
      when the ACK arrives.  The caller is responsible for configuring the
      interface with the offered address (see
      {!Mobileip.Mobile_host.attach_via_dhcp}). *)
end
