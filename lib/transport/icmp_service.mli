(** Per-node ICMP dispatch: echo (ping), error listeners, and the paper's
    care-of-address advertisements.

    The service owns the node's ICMP protocol handler.  Echo requests are
    answered automatically (every host answers ping).  Other consumers —
    the Mobile IP correspondent software listening for care-of adverts, TCP
    reacting to fragmentation-needed — register listeners here so a single
    protocol handler serves them all. *)

type t

val get : Netsim.Net.node -> t
val node : t -> Netsim.Net.node

val ping :
  t ->
  ?src:Netsim.Ipv4_addr.t ->
  ?payload_size:int ->
  dst:Netsim.Ipv4_addr.t ->
  (rtt:float -> unit) ->
  unit
(** Send an echo request; the callback fires when the matching reply
    arrives (it may never fire if the path drops packets). *)

val on_care_of_advert :
  t ->
  (home:Netsim.Ipv4_addr.t ->
   care_of:Netsim.Ipv4_addr.t ->
   lifetime:int ->
   unit)
  option ->
  unit
(** Install (or clear) the listener for care-of advertisements. *)

val on_unreachable :
  t ->
  (code:Netsim.Icmp_wire.unreach_code ->
  src:Netsim.Ipv4_addr.t ->
  original:(Netsim.Ipv4_addr.t * Netsim.Ipv4_addr.t) option ->
  unit)
  option ->
  unit
(** Install (or clear) the listener for destination-unreachable errors.
    [src] is the error's sender (the signaling router); [original] is the
    (source, destination) pair of the offending datagram recovered from
    the quoted context, when the context carries a full IP header — this
    is what lets the mobility layer map an error back to the destination
    whose delivery method must change. *)

val send_care_of_advert :
  t ->
  src:Netsim.Ipv4_addr.t ->
  dst:Netsim.Ipv4_addr.t ->
  home:Netsim.Ipv4_addr.t ->
  care_of:Netsim.Ipv4_addr.t ->
  lifetime:int ->
  unit
(** Used by the home agent (§3.2, first discovery mechanism). *)

val echo_requests_answered : t -> int
(** Number of echo requests this node has replied to (test visibility). *)
