open Netsim

type datagram = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  payload : Bytes.t;
  in_iface : Net.iface option;
}

type t = {
  svc_node : Net.node;
  listeners : (int, t -> datagram -> unit) Hashtbl.t;
  mutable next_port : int;
  mutable next_ident : int;
}

(* One service per node, keyed by physical identity. *)
let registry : (Net.node * t) list ref = ref []

let handle_udp t _node in_iface (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Ipv4_packet.Udp u -> (
      match Hashtbl.find_opt t.listeners u.Udp_wire.dst_port with
      | None -> ()
      | Some listener ->
          listener t
            {
              src = pkt.src;
              dst = pkt.dst;
              src_port = u.Udp_wire.src_port;
              dst_port = u.Udp_wire.dst_port;
              payload = u.Udp_wire.payload;
              in_iface;
            })
  | _ -> ()

let get node =
  match List.find_opt (fun (n, _) -> n == node) !registry with
  | Some (_, t) -> t
  | None ->
      let t =
        {
          svc_node = node;
          listeners = Hashtbl.create 8;
          next_port = Well_known.ephemeral_base;
          next_ident = 1;
        }
      in
      registry := (node, t) :: !registry;
      Net.set_protocol_handler node Ipv4_packet.P_udp (handle_udp t);
      t

let node t = t.svc_node
let listen t ~port f = Hashtbl.replace t.listeners port f
let unlisten t ~port = Hashtbl.remove t.listeners port

let send t ?src ?via ?l2_dst ?flow ~dst ~src_port ~dst_port payload =
  let src = Option.value src ~default:Ipv4_addr.any in
  let udp = Udp_wire.make ~src_port ~dst_port payload in
  let ident = t.next_ident in
  t.next_ident <- (if ident >= 0xffff then 1 else ident + 1);
  let pkt =
    Ipv4_packet.make ~ident ~protocol:Ipv4_packet.P_udp ~src ~dst
      (Ipv4_packet.Udp udp)
  in
  Net.send t.svc_node ?flow ?via ?l2_dst pkt

let ephemeral_port t =
  let p = t.next_port in
  t.next_port <- (if p >= 65535 then Well_known.ephemeral_base else p + 1);
  p
