open Netsim

(* Wire format (compact stand-in for RFC 1541):
   REQUEST: byte 0 = 1, bytes 1..6 = client MAC.
   ACK:     byte 0 = 2, bytes 1..6 = client MAC, 7..10 = leased address,
            byte 11 = prefix bits, 12..15 = gateway, 16..17 = lease time. *)

let op_request = 1
let op_ack = 2

let put_mac buf off mac =
  let x = Mac_addr.to_int mac in
  for i = 0 to 5 do
    Bytes.set buf (off + i) (Char.chr ((x lsr ((5 - i) * 8)) land 0xff))
  done

let get_mac buf off =
  let x = ref 0 in
  for i = 0 to 5 do
    x := (!x lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  Mac_addr.of_int !x

let put_addr buf off a =
  let o1, o2, o3, o4 = Ipv4_addr.to_octets a in
  Bytes.set buf off (Char.chr o1);
  Bytes.set buf (off + 1) (Char.chr o2);
  Bytes.set buf (off + 2) (Char.chr o3);
  Bytes.set buf (off + 3) (Char.chr o4)

let get_addr buf off =
  Ipv4_addr.of_octets
    (Char.code (Bytes.get buf off))
    (Char.code (Bytes.get buf (off + 1)))
    (Char.code (Bytes.get buf (off + 2)))
    (Char.code (Bytes.get buf (off + 3)))

module Server = struct
  type t = {
    pool : Ipv4_addr.Prefix.t;
    first_host : int;
    last_host : int;
    gateway : Ipv4_addr.t;
    lease_time : int;
    mutable next : int;
    mutable lease_table : (Mac_addr.t * Ipv4_addr.t) list;
  }

  let handle t udp (dgram : Udp_service.datagram) =
    if
      Bytes.length dgram.Udp_service.payload >= 7
      && Char.code (Bytes.get dgram.Udp_service.payload 0) = op_request
    then begin
      let mac = get_mac dgram.Udp_service.payload 1 in
      let addr =
        match List.assoc_opt mac t.lease_table with
        | Some a -> Some a
        | None ->
            if t.next > t.last_host then None
            else begin
              let a = Ipv4_addr.Prefix.host t.pool t.next in
              t.next <- t.next + 1;
              t.lease_table <- (mac, a) :: t.lease_table;
              Some a
            end
      in
      match addr with
      | None -> () (* pool exhausted: stay silent *)
      | Some a ->
          let reply = Bytes.make 18 '\000' in
          Bytes.set reply 0 (Char.chr op_ack);
          put_mac reply 1 mac;
          put_addr reply 7 a;
          Bytes.set reply 11 (Char.chr (Ipv4_addr.Prefix.bits t.pool));
          put_addr reply 12 t.gateway;
          Bytes.set reply 16 (Char.chr ((t.lease_time lsr 8) land 0xff));
          Bytes.set reply 17 (Char.chr (t.lease_time land 0xff));
          let via = dgram.Udp_service.in_iface in
          ignore
            (Udp_service.send udp ?via ~src:t.gateway
               ~dst:Ipv4_addr.broadcast ~src_port:Well_known.dhcp_server
               ~dst_port:Well_known.dhcp_client reply)
    end

  let create node ~pool ~first_host ~last_host ~gateway ?(lease_time = 3600) ()
      =
    let t =
      {
        pool;
        first_host;
        last_host;
        gateway;
        lease_time;
        next = first_host;
        lease_table = [];
      }
    in
    let udp = Udp_service.get node in
    Udp_service.listen udp ~port:Well_known.dhcp_server (fun svc dgram ->
        handle t svc dgram);
    t

  let leases t = t.lease_table
  let outstanding t = List.length t.lease_table
end

module Client = struct
  type offer = {
    addr : Ipv4_addr.t;
    prefix : Ipv4_addr.Prefix.t;
    gateway : Ipv4_addr.t;
    lease_time : int;
  }

  let max_attempts = 5

  let request node ~via callback =
    let mac =
      match Net.iface_mac via with
      | Some m -> m
      | None -> invalid_arg "Dhcp.Client.request: not an Ethernet interface"
    in
    let udp = Udp_service.get node in
    let answered = ref false in
    Udp_service.listen udp ~port:Well_known.dhcp_client (fun svc dgram ->
        let payload = dgram.Udp_service.payload in
        if
          Bytes.length payload >= 18
          && Char.code (Bytes.get payload 0) = op_ack
          && Mac_addr.equal (get_mac payload 1) mac
          && not !answered
        then begin
          answered := true;
          Udp_service.unlisten svc ~port:Well_known.dhcp_client;
          let addr = get_addr payload 7 in
          let bits = Char.code (Bytes.get payload 11) in
          let gateway = get_addr payload 12 in
          let lease_time =
            (Char.code (Bytes.get payload 16) lsl 8)
            lor Char.code (Bytes.get payload 17)
          in
          callback
            {
              addr;
              prefix = Ipv4_addr.Prefix.make addr bits;
              gateway;
              lease_time;
            }
        end);
    let req = Bytes.make 7 '\000' in
    Bytes.set req 0 (Char.chr op_request);
    put_mac req 1 mac;
    (* Broadcast requests may be lost on lossy media: retransmit with the
       classic 1-second DHCP backoff until answered. *)
    let eng = Net.node_engine node in
    let rec attempt n =
      if (not !answered) && n < max_attempts then begin
        ignore
          (Udp_service.send udp ~via ~src:Ipv4_addr.any
             ~dst:Ipv4_addr.broadcast ~src_port:Well_known.dhcp_client
             ~dst_port:Well_known.dhcp_server req);
        Engine.after eng 1.0 (fun () -> attempt (n + 1))
      end
    in
    attempt 0
end
