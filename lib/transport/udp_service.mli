(** Per-node UDP endpoint management.

    One service exists per node (created on first use); it owns the node's
    UDP protocol handler and demultiplexes datagrams to port listeners.
    Senders may pin the source address — that choice is exactly the
    mobility decision the paper discusses (§7.1.1): a socket bound to the
    physical interface address communicates with Out-DT, one bound to the
    home address goes through the Mobile IP machinery installed in the
    node's route override. *)

type t

val get : Netsim.Net.node -> t
(** The node's UDP service, installing the protocol handler on first call. *)

val node : t -> Netsim.Net.node

type datagram = {
  src : Netsim.Ipv4_addr.t;
  dst : Netsim.Ipv4_addr.t;
  src_port : int;
  dst_port : int;
  payload : Bytes.t;
  in_iface : Netsim.Net.iface option;
}

val listen : t -> port:int -> (t -> datagram -> unit) -> unit
(** Register a listener; replaces any previous listener on the port. *)

val unlisten : t -> port:int -> unit

val send :
  t ->
  ?src:Netsim.Ipv4_addr.t ->
  ?via:Netsim.Net.iface ->
  ?l2_dst:Netsim.Mac_addr.t ->
  ?flow:int ->
  dst:Netsim.Ipv4_addr.t ->
  src_port:int ->
  dst_port:int ->
  Bytes.t ->
  int
(** Send a datagram; returns the flow id.  With no [?src] the source
    address is resolved by the node's routing (the outgoing interface
    address).  [?l2_dst] forces the link-layer destination of the first
    hop (a foreign agent's In-DH final-hop delivery). *)

val ephemeral_port : t -> int
(** Allocate a fresh port from the dynamic range. *)
