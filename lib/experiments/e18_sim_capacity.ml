(* E18 — simulator capacity: not a figure from the paper, but the harness
   claim behind every figure — the ROADMAP's "runs as fast as the hardware
   allows".  N concurrent UDP request/response flows ping-pong between the
   mobile host (roamed, so every packet crosses the backbone and the
   tunnel) and the correspondent, with per-packet tracing gated off; we
   report end-to-end packets/sec and engine events/sec of host wall time,
   published through a Netobs metrics registry. *)

open Netsim

let load_levels = [ 8; 32; 128 ]
let exchanges_per_flow = 20
let req_size = 256
let rep_size = 512

type level_result = {
  flows : int;
  delivered : int;  (* datagrams received end-to-end, both directions *)
  expected : int;
  events : int;  (* engine events executed during the workload *)
  wall : float;  (* host seconds inside the workload run *)
  packets_per_sec : float;
  events_per_sec : float;
}

let run_level registry n =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  (* The point of the experiment: the per-hop fast path with trace-event
     construction gated off. *)
  Net.set_tracing net false;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let ch_received = ref 0 in
  let mh_received = ref 0 in
  Transport.Udp_service.listen ch_udp ~port:9 (fun svc dgram ->
      incr ch_received;
      ignore
        (Transport.Udp_service.send svc ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src ~src_port:9
           ~dst_port:dgram.Transport.Udp_service.src_port
           (Bytes.make rep_size 'r')));
  let eng = Net.engine net in
  let request i =
    ignore
      (Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
         ~dst:topo.Scenarios.Topo.ch_addr ~src_port:(47000 + i) ~dst_port:9
         (Bytes.make req_size 'q'))
  in
  for i = 0 to n - 1 do
    let sent = ref 1 in
    Transport.Udp_service.listen mh_udp ~port:(47000 + i) (fun _ _ ->
        incr mh_received;
        if !sent < exchanges_per_flow then begin
          incr sent;
          request i
        end);
    (* Stagger flow starts so the event queue fills gradually. *)
    Engine.after eng (float_of_int i *. 0.003) (fun () -> request i)
  done;
  let before = Engine.stats eng in
  Net.run net;
  let after = Engine.stats eng in
  let delivered = !ch_received + !mh_received in
  let events = after.Engine.executed - before.Engine.executed in
  let wall = after.Engine.wall_time -. before.Engine.wall_time in
  let rate count = if wall > 0.0 then float_of_int count /. wall else 0.0 in
  let publish name v =
    Netobs.Metrics.set
      (Netobs.Metrics.gauge registry (Printf.sprintf "e18.%s.flows%d" name n))
      v
  in
  publish "packets_per_sec" (rate delivered);
  publish "events_per_sec" (rate events);
  {
    flows = n;
    delivered;
    expected = 2 * n * exchanges_per_flow;
    events;
    wall;
    packets_per_sec = rate delivered;
    events_per_sec = rate events;
  }

let run () =
  let registry = Netobs.Metrics.create () in
  let results = List.map (run_level registry) load_levels in
  let row r =
    [
      string_of_int r.flows;
      Printf.sprintf "%d/%d" r.delivered r.expected;
      string_of_int r.events;
      Printf.sprintf "%.1f" (r.wall *. 1e3);
      Printf.sprintf "%.0f" r.packets_per_sec;
      Printf.sprintf "%.0f" r.events_per_sec;
    ]
  in
  {
    Table.id = "E18";
    title =
      Printf.sprintf
        "Simulator capacity: %d-exchange UDP ping-pong per flow, tracing \
         gated off"
        exchanges_per_flow;
    paper_claim =
      "harness, not paper: the simulator's per-packet fast path is cheap \
       enough to measure protocol overheads rather than its own";
    columns =
      [
        "concurrent flows";
        "delivered";
        "sim events";
        "wall ms";
        "packets/sec";
        "events/sec";
      ];
    rows = List.map row results;
    notes =
      [
        "packets/sec counts end-to-end datagram deliveries (requests at the \
         CH plus replies at the MH) per host-CPU second inside the run; \
         events/sec is the engine's executed-event rate over the same \
         window";
        "absolute rates vary with the host; the interesting signal is that \
         rates hold (or grow) as the flow count scales 8 -> 32 -> 128";
      ];
  }
