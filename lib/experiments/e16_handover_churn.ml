(* E16 — handover churn under a standard fault plan.

   Every cell of the 4x4 grid carries a steady CH->MH probe stream (with
   echoes back) for thirty seconds while the world misbehaves on a fixed
   schedule: the mobile host changes its care-of address twice, frames are
   duplicated, the visited LAN flaps, the home access link's latency
   spikes, a window of reordering jitter hits, the home agent crashes and
   comes back, and finally the home network is partitioned from the
   backbone.  Reported per cell: probes lost, recovery time after each
   disruptive event (first probe delivered at the MH afterwards), the
   registration traffic the churn cost, and the fault plan's own drop and
   duplication counters.

   Everything is seeded — two runs with the same seed produce identical
   tables. *)

open Mobileip

type cell_result = {
  cell : Grid.cell;
  probes_sent : int;
  probes_delivered : int;  (* arrived at the mobile host *)
  replies_delivered : int;  (* echoes back at the correspondent *)
  lost : int;
  move1_recovery : float option;  (* s from the event to the next delivery *)
  move2_recovery : float option;
  crash_recovery : float option;  (* measured from the HA restart *)
  reg_transmissions : int;  (* registration requests sent during churn *)
  fault : Netsim.Fault.stats;
}

(* The standard fault plan, relative to [t0] (all cells get the same one). *)
let move1_at = 5.0
let move2_at = 15.0
let crash_at = 20.0
let restart_at = 22.0

let probe_interval = 0.25
let probe_count = 120 (* 30 s of probes *)
let probe_port = 40007
let echo_port = 40008

let default_seed = 0x16c4

let run_cell ?(seed = default_seed) (cell : Grid.cell) =
  let open Scenarios in
  let same_segment = cell.Grid.incoming = Grid.In_DH in
  let topo =
    Topo.build
      ~ch_position:(if same_segment then Topo.On_visited_segment else Topo.Remote)
      ~ch_capability:Correspondent.Mobile_aware ~mh_lifetime:10 ()
  in
  let net = topo.Topo.net in
  let eng = Netsim.Net.engine net in
  let mh = topo.Topo.mh in
  let ch = topo.Topo.ch in
  let ch_addr = topo.Topo.ch_addr in
  let visited_prefix = topo.Topo.visited_prefix in
  let gateway = Netsim.Ipv4_addr.of_string "131.7.0.1" in
  let addr_a = Netsim.Ipv4_addr.of_string "131.7.0.200" in
  let addr_b = Netsim.Ipv4_addr.of_string "131.7.0.201" in
  (* Settle on the visited segment and drain before the churn begins. *)
  Mobile_host.move_to_static mh topo.Topo.visited_segment ~addr:addr_a
    ~prefix:visited_prefix ~gateway ();
  Topo.run topo;
  let home, _coa = Conversation.configure ~mh ~ch ~ch_addr ~cell in
  Mobile_host.enable_keepalive mh ~margin:5.0 ~max_renewals:12 ();
  Home_agent.enable_purge topo.Topo.ha ~interval:5.0 ~ticks:12 ();
  let reg_before = Mobile_host.registration_attempts mh in
  let t0 = Netsim.Engine.now eng in

  (* The scripted faults. *)
  let fault = Netsim.Fault.attach ~seed net in
  (* Duplication is rolled per frame copy per hop, so it compounds along
     multi-hop paths; 10% per hop is already very visible on the
     twelve-hop In-IE/Out-IE round trip. *)
  Netsim.Fault.duplicate_window fault ~from_:(t0 +. 4.0) ~until:(t0 +. 6.0)
    ~rate:0.1;
  Netsim.Fault.flap fault ~link:"visited-lan" ~down:(t0 +. 8.0)
    ~up:(t0 +. 9.5);
  Netsim.Fault.latency_spike fault ~link:"hr<->b0" ~from_:(t0 +. 12.0)
    ~until:(t0 +. 14.0) ~extra:0.3;
  Netsim.Fault.reorder_window fault ~from_:(t0 +. 16.0) ~until:(t0 +. 18.0)
    ~rate:0.5 ~max_extra:0.2;
  Netsim.Fault.at fault ~time:(t0 +. crash_at) (fun () ->
      Home_agent.crash topo.Topo.ha);
  Netsim.Fault.at fault ~time:(t0 +. restart_at) (fun () ->
      Home_agent.restart topo.Topo.ha);
  Netsim.Fault.partition fault ~from_:(t0 +. 24.0) ~until:(t0 +. 26.0)
    ~a:[ "hr" ] ~b:[ "b0" ];

  (* The two handovers: a new care-of address each time, with a binding
     update to the (mobile-aware) correspondent once re-registered. *)
  let move target =
    Mobile_host.move_to_static mh topo.Topo.visited_segment ~addr:target
      ~prefix:visited_prefix ~gateway
      ~on_registered:(fun ok ->
        if ok then ignore (Mobile_host.send_binding_update mh ~correspondent:ch_addr ()))
      ()
  in
  Netsim.Engine.schedule eng ~at:(t0 +. move1_at) (fun () -> move addr_b);
  Netsim.Engine.schedule eng ~at:(t0 +. move2_at) (fun () -> move addr_a);

  (* Probe stream: the CH sends to the home address every quarter second;
     the MH echoes each probe back.  Delivery timestamps at the MH are the
     raw material for the loss and recovery metrics. *)
  let mh_udp = Transport.Udp_service.get (Mobile_host.node mh) in
  let ch_udp = Transport.Udp_service.get (Correspondent.node ch) in
  (* Each probe carries its sequence number; both ends deduplicate, so a
     frame the duplication window copied still counts as one probe. *)
  let seq_of payload =
    (Char.code (Bytes.get payload 0) lsl 8) lor Char.code (Bytes.get payload 1)
  in
  let probe_payload k =
    let b = Bytes.make 32 'p' in
    Bytes.set b 0 (Char.chr ((k lsr 8) land 0xff));
    Bytes.set b 1 (Char.chr (k land 0xff));
    b
  in
  let seen_mh = Hashtbl.create 128 in
  let seen_ch = Hashtbl.create 128 in
  let delivery_times = ref [] in
  Transport.Udp_service.listen mh_udp ~port:probe_port (fun svc dgram ->
      let payload = dgram.Transport.Udp_service.payload in
      let k = seq_of payload in
      if not (Hashtbl.mem seen_mh k) then begin
        Hashtbl.replace seen_mh k ();
        delivery_times := Netsim.Engine.now eng :: !delivery_times;
        let src =
          match (cell.Grid.outgoing, Mobile_host.care_of_address mh) with
          | Grid.Out_DT, Some coa -> coa
          | _ -> home
        in
        ignore
          (Transport.Udp_service.send svc ~src ~dst:ch_addr
             ~src_port:probe_port ~dst_port:echo_port payload)
      end);
  Transport.Udp_service.listen ch_udp ~port:echo_port (fun _ dgram ->
      Hashtbl.replace seen_ch
        (seq_of dgram.Transport.Udp_service.payload)
        ());
  for k = 0 to probe_count - 1 do
    Netsim.Engine.schedule eng
      ~at:(t0 +. (probe_interval *. float_of_int k))
      (fun () ->
        ignore
          (Transport.Udp_service.send ch_udp ~dst:home
             ~src_port:(41000 + k) ~dst_port:probe_port (probe_payload k)))
  done;
  Netsim.Net.run net;

  (* Recovery after an event: the gap from the event to the first probe
     the mobile host actually received afterwards. *)
  let times = List.sort compare (List.rev !delivery_times) in
  let recovery_after at =
    let abs = t0 +. at in
    List.find_map (fun d -> if d >= abs then Some (d -. abs) else None) times
  in
  Conversation.deconfigure ~mh ~ch ~ch_addr;
  let delivered = Hashtbl.length seen_mh in
  {
    cell;
    probes_sent = probe_count;
    probes_delivered = delivered;
    replies_delivered = Hashtbl.length seen_ch;
    lost = probe_count - delivered;
    move1_recovery = recovery_after move1_at;
    move2_recovery = recovery_after move2_at;
    crash_recovery = recovery_after restart_at;
    reg_transmissions = Mobile_host.registration_attempts mh - reg_before;
    fault = Netsim.Fault.stats fault;
  }

let opt_s = function
  | Some x -> Printf.sprintf "%.0fms" (x *. 1000.0)
  | None -> "-"

let run () =
  let rows =
    List.map
      (fun cell ->
        let r = run_cell cell in
        [
          Grid.cell_to_string cell;
          Table.pct r.probes_delivered r.probes_sent;
          Table.pct r.replies_delivered r.probes_sent;
          string_of_int r.lost;
          opt_s r.move1_recovery;
          opt_s r.move2_recovery;
          opt_s r.crash_recovery;
          string_of_int r.reg_transmissions;
          Printf.sprintf "%d/%d/%d/%d" r.fault.Netsim.Fault.flap_drops
            r.fault.Netsim.Fault.partition_drops r.fault.Netsim.Fault.duplicated
            r.fault.Netsim.Fault.delayed;
        ])
      Grid.all_cells
  in
  {
    Table.id = "E16";
    title = "Handover churn and fault injection across the 4x4 grid";
    paper_claim =
      "mobility must keep working when the network misbehaves: the paper's \
       methods differ in how many packets each handover or agent failure \
       costs and how quickly delivery resumes";
    columns =
      [
        "cell";
        "probes del";
        "echoed";
        "lost";
        "rec move1";
        "rec move2";
        "rec ha-crash";
        "reg tx";
        "flap/part/dup/reord";
      ];
    rows;
    notes =
      [
        Printf.sprintf
          "probes every %.0f ms for %.0f s; moves at t+%.0fs and t+%.0fs; \
           visited LAN flaps 8-9.5s; latency spike on the home access link \
           12-14s; reordering 16-18s; home agent down %.0f-%.0fs; home net \
           partitioned 24-26s"
          (probe_interval *. 1000.0)
          (probe_interval *. float_of_int probe_count)
          move1_at move2_at crash_at restart_at;
        "rec columns: gap from the event to the next probe delivered at the \
         MH (ha-crash measured from the restart); In-* rows that bypass the \
         home agent recover from its crash in one probe interval";
        Printf.sprintf
          "deterministic: fault seed 0x%04x; same seed, same table"
          default_seed;
      ];
  }
