(** A1 - section 4 ablation: loose source routing vs encapsulation. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
