(* E2 — Figure 2: source-address filtering defeats plain Out-DH replies.
   The CH sits inside the mobile host's (filtered) home domain; tunneled
   forwarding CH->MH succeeds, but every plain MH reply with the home
   source address is discarded at the boundary router. *)

open Netsim

let probe topo ~out_method =
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh out_method;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let flows =
    List.init 3 (fun i ->
        Transport.Udp_service.send mh_udp
          ~src:topo.Scenarios.Topo.mh_home_addr
          ~dst:topo.Scenarios.Topo.ch_addr ~src_port:(41000 + i) ~dst_port:9
          (Bytes.make 256 'x'))
  in
  Net.run net;
  let delivered =
    List.length
      (List.filter
         (fun flow -> Trace.delivered (Net.trace net) ~flow ~node:"ch")
         flows)
  in
  let drop_reasons =
    List.concat_map (fun flow -> Trace.drops (Net.trace net) ~flow) flows
  in
  (List.length flows, delivered, drop_reasons)

let reason_cell reasons =
  match reasons with
  | [] -> "-"
  | (node, reason) :: _ ->
      Format.asprintf "%a at %s" Trace.pp_drop_reason reason node

let run () =
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  Scenarios.Topo.roam topo ();
  let sent_dh, ok_dh, drops_dh = probe topo ~out_method:Mobileip.Grid.Out_DH in
  let sent_ie, ok_ie, drops_ie = probe topo ~out_method:Mobileip.Grid.Out_IE in
  {
    Table.id = "E2";
    title = "Figure 2 - source-address filtering at the home boundary";
    paper_claim =
      "boundary routers drop packets arriving from outside whose source \
       claims to be inside: the mobile host's plain replies never reach the \
       correspondent";
    columns = [ "MH reply method"; "delivered"; "drop reason" ];
    rows =
      [
        [ "Out-DH (plain, home src)"; Table.pct ok_dh sent_dh;
          reason_cell drops_dh ];
        [ "Out-IE (reverse tunnel)"; Table.pct ok_ie sent_ie;
          reason_cell drops_ie ];
      ];
    notes =
      [
        "the same boundary router that protects the domain from address \
         spoofing kills the naive Mobile IP return path";
      ];
  }
