(* E21 — sharded scale-out: the E18 capacity story taken across OCaml
   domains.  A hub-and-spoke world of R independent regions (router +
   Ethernet segment + H hosts each) joined through a central hub by 5 ms
   point-to-point links gives the partitioner R+1 components and the
   parallel executor a 5 ms conservative lookahead.  Each region runs
   mostly region-local UDP-style ping-pong traffic plus one cross-region
   flow, so shards are busy between barriers but the barriers still carry
   real cross-shard frames.

   The ladder runs the identical workload at 1/2/4/8 shards
   ([Net.set_shards ~parallel:true]; 1 collapses to the plain engine) and
   reports end-to-end deliveries, engine events, wall seconds and
   packets/sec per rung.  Deliveries must agree across rungs — the
   determinism half of the claim; the speedup half is host-dependent
   (this is honest wall time: on a single-core container the parallel
   rungs pay barrier overhead for nothing, on a multi-core runner
   packets/sec should grow 1 -> 4 shards).

   The workload deliberately uses raw protocol handlers, per-node id
   allocation ({!Net.new_flow_on} semantics via frame ids), per-shard
   payload pools ({!Net.node_pool}) and per-slot counter arrays indexed
   so each cell is only ever touched by one shard's domain — the
   parallel-safe idioms the sharded engine requires. *)

open Netsim

let regions = 8
let hosts_per_region = 4
let exchanges = 200
let cross_exchanges = 50
    (* cross-region RTTs are ~20x the region-local ones, so their exchange
       budget sets the simulated duration — and with it the number of
       conservative windows the parallel rungs pay for *)
let req_size = 256
let rep_size = 512
let shard_ladder = [ 1; 2; 4; 8 ]
let proto = Ipv4_packet.P_other 253

type rung = {
  shards_requested : int;
  shards_actual : int;
  delivered : int;
  expected : int;
  events : int;
  wall : float;
  packets_per_sec : float;
}

(* One flow slot: [a] pings, [b] pongs, [exchanges] times.  Slots are
   identified on the wire by the IP [ident] field, so one raw handler per
   host demultiplexes every slot it terminates. *)
type slot = {
  a : Net.node;
  a_addr : Ipv4_addr.t;
  b : Net.node;
  b_addr : Ipv4_addr.t;
  budget : int;  (* exchanges this slot runs *)
}

let prefix = Ipv4_addr.Prefix.of_string

let build_world () =
  let net = Net.create () in
  let hub = Net.add_router net "hub" in
  let region k =
    let rr = Net.add_router net (Printf.sprintf "rr%d" k) in
    let p = prefix (Printf.sprintf "10.200.%d.0/30" k) in
    let hub_addr = Ipv4_addr.Prefix.host p 1 in
    let rr_addr = Ipv4_addr.Prefix.host p 2 in
    ignore
      (Net.p2p net ~latency:0.005 ~prefix:p
         (hub, Printf.sprintf "r%d" k, hub_addr)
         (rr, "wan", rr_addr));
    let rp = prefix (Printf.sprintf "10.%d.0.0/16" (10 + k)) in
    let seg =
      Net.add_segment net ~name:(Printf.sprintf "lan%d" k) ~latency:0.0005 ()
    in
    let rr_lan = Ipv4_addr.Prefix.host rp 1 in
    ignore (Net.attach rr seg ~ifname:"lan" ~addr:rr_lan ~prefix:rp);
    Routing.add_default (Net.routing rr) ~gateway:hub_addr ~iface:"wan";
    Routing.add (Net.routing hub) ~gateway:rr_addr ~prefix:rp
      ~iface:(Printf.sprintf "r%d" k) ();
    let hosts =
      Array.init hosts_per_region (fun h ->
          let n = Net.add_host net (Printf.sprintf "h%d-%d" k h) in
          let a = Ipv4_addr.Prefix.host rp (10 + h) in
          ignore (Net.attach n seg ~ifname:"eth0" ~addr:a ~prefix:rp);
          Routing.add_default (Net.routing n) ~gateway:rr_lan ~iface:"eth0";
          (n, a))
    in
    hosts
  in
  let region_hosts = Array.init regions region in
  (net, region_hosts)

let make_slots region_hosts =
  let slots = ref [] in
  for k = regions - 1 downto 0 do
    let h = region_hosts.(k) in
    let next = region_hosts.((k + 1) mod regions) in
    let pair budget (a, a_addr) (b, b_addr) = { a; a_addr; b; b_addr; budget } in
    (* one cross-region flow, then two region-local ones *)
    slots :=
      pair cross_exchanges h.(0) next.(0)
      :: pair exchanges h.(0) h.(1)
      :: pair exchanges h.(2) h.(3)
      :: !slots
  done;
  Array.of_list !slots

let run_rung n =
  let net, region_hosts = build_world () in
  Net.set_tracing net false;
  if n > 1 then Net.set_shards ~parallel:true net n;
  let slots = make_slots region_hosts in
  let nslots = Array.length slots in
  (* Per-slot counters, each cell written only by the shard owning its
     endpoint: [recv_a]/[sent] by the initiator's shard, [recv_b] by the
     responder's. *)
  let recv_a = Array.make nslots 0 in
  let recv_b = Array.make nslots 0 in
  let sent = Array.make nslots 0 in
  let payload node size =
    Ipv4_packet.Raw (Pool.alloc (Net.node_pool node) size)
  in
  let release node = function
    | Ipv4_packet.Raw b -> Pool.release (Net.node_pool node) b
    | _ -> ()
  in
  let send_slot i ~src ~from_node ~dst size =
    ignore
      (Net.send from_node
         (Ipv4_packet.make ~ident:i ~protocol:proto ~src ~dst
            (payload from_node size)))
  in
  let handler node _iface (pkt : Ipv4_packet.t) =
    let i = pkt.Ipv4_packet.ident in
    let s = slots.(i) in
    release node pkt.Ipv4_packet.payload;
    if node == s.b then begin
      recv_b.(i) <- recv_b.(i) + 1;
      send_slot i ~src:s.b_addr ~from_node:s.b ~dst:s.a_addr rep_size
    end
    else begin
      recv_a.(i) <- recv_a.(i) + 1;
      if sent.(i) < s.budget then begin
        sent.(i) <- sent.(i) + 1;
        send_slot i ~src:s.a_addr ~from_node:s.a ~dst:s.b_addr req_size
      end
    end
  in
  Array.iter
    (fun (n, _) -> Net.set_protocol_handler n proto handler)
    (Array.concat (Array.to_list region_hosts));
  Array.iteri
    (fun i s ->
      Engine.after (Net.node_engine s.a)
        (float_of_int i *. 0.0003)
        (fun () ->
          sent.(i) <- 1;
          send_slot i ~src:s.a_addr ~from_node:s.a ~dst:s.b_addr req_size))
    slots;
  Net.run net;
  let st = Net.stats net in
  let delivered =
    Array.fold_left ( + ) 0 recv_a + Array.fold_left ( + ) 0 recv_b
  in
  let wall = st.Engine.wall_time in
  {
    shards_requested = n;
    shards_actual = Net.shard_count net;
    delivered;
    expected = Array.fold_left (fun acc s -> acc + (2 * s.budget)) 0 slots;
    events = st.Engine.executed;
    wall;
    packets_per_sec =
      (if wall > 0.0 then float_of_int delivered /. wall else 0.0);
  }

let run () =
  let rungs = List.map run_rung shard_ladder in
  let base = List.hd rungs in
  let deterministic =
    List.for_all (fun r -> r.delivered = base.delivered) rungs
  in
  let row r =
    [
      (if r.shards_actual = r.shards_requested then
         string_of_int r.shards_requested
       else Printf.sprintf "%d(%d)" r.shards_requested r.shards_actual);
      Printf.sprintf "%d/%d" r.delivered r.expected;
      string_of_int r.events;
      Printf.sprintf "%.1f" (r.wall *. 1e3);
      Printf.sprintf "%.0f" r.packets_per_sec;
      (if r.shards_requested = 1 then "-"
       else if base.packets_per_sec > 0.0 then
         Printf.sprintf "%.2fx" (r.packets_per_sec /. base.packets_per_sec)
       else "-");
    ]
  in
  {
    Table.id = "E21";
    title =
      Printf.sprintf
        "Sharded scale-out: %d regions x %d hosts, %d-exchange ping-pong per \
         local flow, parallel domains"
        regions hosts_per_region exchanges;
    paper_claim =
      "harness, not paper: the conservative parallel engine keeps the \
       simulation deterministic while shards run on separate domains; \
       throughput scales with cores, never at the cost of replayability";
    columns =
      [ "shards"; "delivered"; "sim events"; "wall ms"; "packets/sec"; "vs 1" ];
    rows = List.map row rungs;
    notes =
      [
        (if deterministic then
           "determinism: every rung delivered exactly the same datagram \
            count — the schedule changes with the shard count, the \
            simulation does not"
         else "DETERMINISM VIOLATION: rungs disagree on delivered counts");
        Printf.sprintf
          "topology: %d regions behind a hub over 5 ms links (the \
           conservative lookahead); 2 region-local flows + 1 cross-region \
           flow per region; payloads recycled through per-shard pools"
          regions;
        Printf.sprintf
          "wall is host wall-clock inside the run on %d available core(s); \
           speedup needs real cores — single-core hosts only pay the \
           barrier overhead"
          (Domain.recommended_domain_count ());
      ];
  }
