(* E11 — §3.2: the two care-of discovery mechanisms.  How much traffic
   still flows through the home agent before the correspondent switches to
   In-DE, and what control traffic each mechanism costs. *)

open Netsim

let stream_of_datagrams topo ~count =
  let net = topo.Scenarios.Topo.net in
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let eng = Net.engine net in
  let rec send i =
    if i < count then begin
      ignore
        (Transport.Udp_service.send ch_udp
           ~dst:topo.Scenarios.Topo.mh_home_addr ~src_port:44000 ~dst_port:9
           (Bytes.make 256 'd'));
      Engine.after eng 0.5 (fun () -> send (i + 1))
    end
  in
  send 0;
  Net.run net

let run () =
  let count = 6 in
  (* Mechanism 1: ICMP care-of advertisements from the home agent. *)
  let icmp_row =
    let topo =
      Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
        ~notify_correspondents:true ()
    in
    Scenarios.Topo.roam topo ();
    stream_of_datagrams topo ~count;
    let tunneled = Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha in
    let direct = Mobileip.Correspondent.packets_encapsulated topo.Scenarios.Topo.ch in
    let adverts = Mobileip.Correspondent.adverts_received topo.Scenarios.Topo.ch in
    [
      "ICMP care-of advert";
      string_of_int adverts;
      "none";
      string_of_int tunneled;
      string_of_int direct;
    ]
  in
  (* Mechanism 2: DNS temporary records, resolved before sending. *)
  let dns_row =
    let topo =
      Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
        ~with_dns:true ()
    in
    Scenarios.Topo.roam topo ();
    let dns_addr = Option.get topo.Scenarios.Topo.dns_addr in
    ignore
      (Mobileip.Discovery.publish_care_of topo.Scenarios.Topo.mh
         ~dns_server:dns_addr ~name:"mh.home" ());
    Scenarios.Topo.run topo;
    Mobileip.Discovery.discover_via_dns topo.Scenarios.Topo.ch
      ~dns_server:dns_addr ~name:"mh.home" ();
    Scenarios.Topo.run topo;
    stream_of_datagrams topo ~count;
    let tunneled = Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha in
    let direct = Mobileip.Correspondent.packets_encapsulated topo.Scenarios.Topo.ch in
    [
      "DNS temporary record";
      "0";
      "1 update + 1 query/answer";
      string_of_int tunneled;
      string_of_int direct;
    ]
  in
  (* Baseline: a conventional correspondent never learns. *)
  let baseline_row =
    let topo = Scenarios.Topo.build () in
    Scenarios.Topo.roam topo ();
    stream_of_datagrams topo ~count;
    let tunneled = Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha in
    [ "none (conventional CH)"; "0"; "none"; string_of_int tunneled; "0" ]
  in
  {
    Table.id = "E11";
    title =
      Printf.sprintf
        "Section 3.2 - care-of discovery mechanisms (%d datagrams CH->MH)"
        count;
    paper_claim =
      "a smart correspondent can learn the care-of address from an ICMP \
       message sent by the home agent as it forwards, or from a DNS \
       temporary-address record, and then send directly";
    columns =
      [
        "mechanism";
        "ICMP adverts";
        "DNS traffic";
        "datagrams via HA";
        "datagrams direct (In-DE)";
      ];
    rows = [ baseline_row; icmp_row; dns_row ];
    notes =
      [
        "with ICMP adverts only the first datagram detours through the \
         home agent; with DNS pre-resolution none do; without either, all \
         of them do";
      ];
  }
