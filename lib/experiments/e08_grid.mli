(** E8 - Figure 10: the 4x4 grid measured on live packets. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
