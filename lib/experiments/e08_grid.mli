(** E8 - Figure 10: the 4x4 grid measured on live packets. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)

val run_cell : Mobileip.Grid.cell -> Mobileip.Conversation.udp_result
(** Run one cell's bidirectional UDP exchange on a fresh world (the In-DH
    row gets a shared-segment world).  Also used by the [stats] CLI to
    populate per-cell flow-latency histograms. *)
