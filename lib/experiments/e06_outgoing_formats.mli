(** E6 - Figures 6/7: outgoing packet formats and overheads. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
