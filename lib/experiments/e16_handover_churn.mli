(** E16 - handover churn and fault injection across the 4x4 grid. *)

type cell_result = {
  cell : Mobileip.Grid.cell;
  probes_sent : int;
  probes_delivered : int;  (** probes that arrived at the mobile host *)
  replies_delivered : int;  (** echoes back at the correspondent *)
  lost : int;
  move1_recovery : float option;
      (** seconds from the first handover to the next delivered probe *)
  move2_recovery : float option;
  crash_recovery : float option;
      (** seconds from the home agent's restart to the next delivered
          probe *)
  reg_transmissions : int;
      (** registration requests the churn cost (retries included) *)
  fault : Netsim.Fault.stats;
}

val default_seed : int

val run_cell : ?seed:int -> Mobileip.Grid.cell -> cell_result
(** Run one cell's thirty-second probe stream on a fresh world under the
    standard fault plan (two handovers, duplication, a LAN flap, a latency
    spike, reordering, a home-agent crash/restart, a partition).  Same
    seed, same result.  Also used by the [stats] CLI to populate the churn
    counters and recovery histogram. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
