type t = {
  id : string;
  title : string;
  paper_claim : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let f1 x = Printf.sprintf "%.1f" x
let ms x = Printf.sprintf "%.1fms" (x *. 1000.0)
let opt_ms = function Some x -> ms x | None -> "-"

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%d%%" (num * 100 / den)

let render fmt t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length t.columns)
      t.rows
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    let cells = List.map2 pad row widths in
    Format.fprintf fmt "  | %s |@." (String.concat " | " cells)
  in
  let rule () =
    let bars = List.map (fun w -> String.make (w + 2) '-') widths in
    Format.fprintf fmt "  +%s+@." (String.concat "+" bars)
  in
  Format.fprintf fmt "@.== %s: %s ==@." t.id t.title;
  Format.fprintf fmt "  paper: %s@." t.paper_claim;
  rule ();
  render_row t.columns;
  rule ();
  List.iter render_row t.rows;
  rule ();
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes
