(** E7 - Figures 8/9: incoming packet formats and overheads. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
