(** E18 — simulator capacity: N concurrent UDP request/response flows
    across the standard roamed world with per-packet tracing gated off,
    reporting end-to-end packets/sec and engine events/sec (published via
    a {!Netobs.Metrics} registry). *)

val run : unit -> Table.t
