(** E18 — simulator capacity: N concurrent UDP request/response flows
    across the standard roamed world with per-packet tracing gated off,
    reporting end-to-end packets/sec and engine events/sec (published via
    a {!Netobs.Metrics} registry). *)

val load_levels : int list
val exchanges_per_flow : int
(** Workload parameters, shared with E20's overhead ladder so both
    experiments measure the same thing. *)

val run : unit -> Table.t
