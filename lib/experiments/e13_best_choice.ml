(* E13 — §6 / abstract: the "series of tests" that picks the best cell for
   each environment, validated live: for each named environment we build a
   matching world, let the grid choose, run a conversation over the chosen
   cell and confirm it delivers with consistent endpoints. *)

open Mobileip

type env_case = {
  name : string;
  env : Grid.environment;
  ch_position : Scenarios.Topo.ch_position;
  filtering : Scenarios.Topo.filtering;
  ch_capability : Correspondent.capability;
}

let base = Grid.default_environment

let cases =
  [
    {
      name = "web page fetch (no durability needed)";
      env = { base with Grid.mobility_required = false };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Correspondent.Conventional;
    };
    {
      name = "privacy-sensitive session";
      env = { base with Grid.privacy_required = true };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Correspondent.Conventional;
    };
    {
      name = "visiting another institution's server";
      env = { base with Grid.same_segment = true };
      ch_position = Scenarios.Topo.On_visited_segment;
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Correspondent.Mobile_aware;
    };
    {
      name = "conventional server, strict filters";
      env = base;
      ch_position = Scenarios.Topo.Inside_home;
      filtering = Scenarios.Topo.ingress_only;
      ch_capability = Correspondent.Conventional;
    };
    {
      name = "conventional server, open path";
      env = { base with Grid.source_filtering_on_path = false };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Correspondent.Conventional;
    };
    {
      name = "decap-capable server, filters";
      env = { base with Grid.ch_decapsulates = true };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.strict;
      ch_capability = Correspondent.Decap_capable;
    };
    {
      name = "mobile-aware peer, open path";
      env =
        {
          base with
          Grid.ch_mobile_aware = true;
          ch_knows_care_of = true;
          ch_decapsulates = true;
          source_filtering_on_path = false;
        };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Correspondent.Mobile_aware;
    };
    {
      name = "mobile-aware peer, filters";
      env =
        {
          base with
          Grid.ch_mobile_aware = true;
          ch_knows_care_of = true;
          ch_decapsulates = true;
        };
      ch_position = Scenarios.Topo.Remote;
      filtering = Scenarios.Topo.strict;
      ch_capability = Correspondent.Mobile_aware;
    };
  ]

let run_case case =
  let cell = Grid.best case.env in
  (* Conversation.run_udp forces methods on a mobile-aware correspondent
     object, whatever the modeled capability. *)
  let topo =
    Scenarios.Topo.build ~ch_position:case.ch_position
      ~filtering:case.filtering ~ch_capability:Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  Netsim.Trace.clear (Netsim.Net.trace topo.Scenarios.Topo.net);
  let r =
    Conversation.run_udp ~net:topo.Scenarios.Topo.net
      ~mh:topo.Scenarios.Topo.mh ~ch:topo.Scenarios.Topo.ch
      ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell ()
  in
  let works =
    r.Conversation.requests_delivered = r.Conversation.requests_sent
    && r.Conversation.replies_delivered = r.Conversation.replies_sent
    && r.Conversation.transport_consistent
  in
  [
    case.name;
    Grid.cell_to_string cell;
    (if works then "yes" else "NO");
    Printf.sprintf "%d/%d" r.Conversation.request_hops r.Conversation.reply_hops;
  ]

let run () =
  {
    Table.id = "E13";
    title = "Section 6 - the series of tests, validated live";
    paper_claim =
      "a mobile host can determine, through a series of tests, which of \
       the currently available optimizations is best for any given \
       correspondent host";
    columns = [ "situation"; "chosen cell"; "works live"; "hops req/rep" ];
    rows = List.map run_case cases;
    notes =
      [
        "each row builds a world matching the situation, lets the grid \
         choose, and runs a real exchange over the chosen cell";
      ];
  }
