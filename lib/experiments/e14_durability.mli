(** E14 - section 2: connection durability across movement. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
