(* E1 — Figure 1: Basic Mobile IP.  A conventional CH sends to the home
   address; packets reach the roaming MH indirectly via the home agent,
   while the MH's replies travel the direct route.  The two directions are
   measurably asymmetric. *)

open Netsim

let run () =
  let topo = Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote () in
  Scenarios.Topo.roam topo ();
  Common.fresh_trace topo.Scenarios.Topo.net;
  let net = topo.Scenarios.Topo.net in
  (* CH -> MH home address: the In-IE path. *)
  let udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let flow_in =
    Transport.Udp_service.send udp ~dst:topo.Scenarios.Topo.mh_home_addr
      ~src_port:40001 ~dst_port:9 (Bytes.make 512 'a')
  in
  Net.run net;
  let cost_in = Common.cost_of_flow net ~flow:flow_in ~target:"mh" in
  let note_in = Common.span_note net ~label:"CH->MH" ~flow:flow_in in
  (* MH -> CH with Out-DH (no filtering in this world): direct. *)
  Common.fresh_trace net;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_DH;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let flow_out =
    Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:40002 ~dst_port:9
      (Bytes.make 512 'b')
  in
  Net.run net;
  let cost_out = Common.cost_of_flow net ~flow:flow_out ~target:"ch" in
  let row dir (c : Common.flow_cost) encapsulated =
    [
      dir;
      (if c.Common.delivered then "yes" else "NO");
      string_of_int c.Common.hops;
      string_of_int c.Common.wire_bytes;
      Table.opt_ms c.Common.latency;
      encapsulated;
    ]
  in
  {
    Table.id = "E1";
    title = "Figure 1 - Basic Mobile IP (512-byte datagram each way)";
    paper_claim =
      "CH->MH travels indirectly via the home agent (encapsulated); MH->CH \
       goes direct, so the two directions take different paths";
    columns =
      [ "direction"; "delivered"; "hops"; "wire bytes"; "latency"; "tunnel" ];
    rows =
      [
        row "CH -> MH (In-IE via HA)" cost_in "HA->MH (IPIP +20B)";
        row "MH -> CH (Out-DH direct)" cost_out "none";
      ];
    notes =
      [
        Printf.sprintf
          "asymmetry: incoming path %d hops vs outgoing %d; incoming bytes \
           include the 20-byte IP-in-IP header for the tunneled leg"
          cost_in.Common.hops cost_out.Common.hops;
        note_in;
        Common.span_note net ~label:"MH->CH" ~flow:flow_out;
      ];
  }
