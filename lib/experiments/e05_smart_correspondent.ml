(* E5 — Figure 5: a smart correspondent that has learned the care-of
   address encapsulates packets itself and sends them directly (In-DE),
   avoiding the home-agent detour of E4. *)

open Netsim

let run () =
  let topo =
    Scenarios.Topo.build ~backbone_hops:8
      ~ch_position:Scenarios.Topo.Near_visited
      ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let probe label =
    Common.fresh_trace net;
    let flow =
      Transport.Udp_service.send ch_udp ~dst:topo.Scenarios.Topo.mh_home_addr
        ~src_port:42100 ~dst_port:9 (Bytes.make 512 's')
    in
    Net.run net;
    (label, Common.cost_of_flow net ~flow ~target:"mh")
  in
  (* First packet: no binding yet -> In-IE via the home agent, which sends
     an ICMP care-of advertisement back. *)
  let label1, before = probe "1st packet (In-IE, triggers ICMP advert)" in
  (* Second packet: the CH now owns a binding -> In-DE direct. *)
  let label2, after = probe "2nd packet (In-DE direct)" in
  let row label (c : Common.flow_cost) method_ =
    [
      label;
      method_;
      (if c.Common.delivered then "yes" else "NO");
      string_of_int c.Common.hops;
      string_of_int c.Common.wire_bytes;
      Table.opt_ms c.Common.latency;
    ]
  in
  {
    Table.id = "E5";
    title = "Figure 5 - a smart correspondent host (512-byte datagrams)";
    paper_claim =
      "a correspondent with enhanced networking software learns the \
       care-of address and performs the encapsulation itself, avoiding the \
       overhead of indirect delivery";
    columns =
      [ "packet"; "method"; "delivered"; "hops"; "wire bytes"; "latency" ];
    rows =
      [
        row label1 before
          (Mobileip.Grid.in_to_string
             Mobileip.Grid.In_IE);
        row label2 after (Mobileip.Grid.in_to_string Mobileip.Grid.In_DE);
      ];
    notes =
      [
        Printf.sprintf
          "the direct path saves %d hops and %s of one-way latency on this \
           topology; both packets still carry the 20-byte tunnel header"
          (before.Common.hops - after.Common.hops)
          (match (before.Common.latency, after.Common.latency) with
          | Some b, Some a -> Table.ms (b -. a)
          | _ -> "-");
      ];
  }
