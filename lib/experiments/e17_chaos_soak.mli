(** Experiment E17: the chaos soak harness under the harsh profile — see
    {!Soak}. *)

val run : unit -> Table.t
