(* E7 — Figures 8/9: the four kinds of packet that can arrive at a mobile
   host, and their sizes. *)

open Netsim

let payload_size = 512

let home = Ipv4_addr.of_string "36.1.0.5"
let coa = Ipv4_addr.of_string "131.7.0.100"
let ha = Ipv4_addr.of_string "36.1.0.2"
let ch = Ipv4_addr.of_string "44.2.0.10"

let from_ch ~dst =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src:ch ~dst
    (Ipv4_packet.Udp
       (Udp_wire.make ~src_port:9 ~dst_port:5000 (Bytes.make payload_size 'z')))

let run () =
  let plain_home = from_ch ~dst:home in
  let plain_coa = from_ch ~dst:coa in
  let base = Ipv4_packet.byte_length plain_home in
  let row name pkt addressing =
    let len = Ipv4_packet.byte_length pkt in
    assert (Bytes.length (Ipv4_packet.encode pkt) = len);
    [ name; addressing; string_of_int len; string_of_int (len - base) ]
  in
  {
    Table.id = "E7";
    title =
      Printf.sprintf
        "Figures 8/9 - incoming packet formats (%d-byte UDP payload)"
        payload_size;
    paper_claim =
      "for unencapsulated arrivals the destination is the care-of address \
       or (same segment only) the home address; encapsulated arrivals \
       carry the home-addressed packet inside, tunneled by the home agent \
       or by the correspondent itself";
    columns = [ "method"; "addressing"; "wire bytes"; "overhead" ];
    rows =
      [
        row "In-DH (plain, link-layer hop)" plain_home "S=CH D=home";
        row "In-DT (plain)" plain_coa "S=CH D=coa";
        row "In-IE (tunneled by HA)"
          (Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:ha ~dst:coa plain_home)
          "s=HA d=coa | S=CH D=home";
        row "In-DE (tunneled by CH)"
          (Mobileip.Encap.wrap Mobileip.Encap.Ipip ~src:ch ~dst:coa plain_home)
          "s=CH d=coa | S=CH D=home";
      ];
    notes =
      [
        "In-IE and In-DE differ only in the outer source address — exactly \
         the paper's observation that the receiver can tell who performed \
         the encapsulation";
      ];
  }
