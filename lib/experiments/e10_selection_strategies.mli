(** E10 - section 7.1.2: delivery-method selection strategies. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
