(* E17 — the chaos soak, as a registry experiment: the harsh-profile
   seed sweep with per-cell violation counts and shrink statistics.  The
   machinery lives in {!Soak}; this wrapper just renders the table. *)

let run () = snd (Soak.run_table ())
