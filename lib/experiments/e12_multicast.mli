(** E12 - section 6.4: multicast membership via home vs local. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
