(** The experiment registry: every table/figure reproduction, in paper
    order.  [run_all] executes each experiment (fresh simulated world per
    experiment) and renders its table. *)

val all : (string * string * (unit -> Table.t)) list
(** (id, one-line description, runner). *)

val find : string -> (unit -> Table.t) option
(** Look up by id, case-insensitive ("e8" or "E8"). *)

val run_all : Format.formatter -> unit
val run_one : Format.formatter -> string -> bool
(** False when the id is unknown. *)
