(** Shared measurement helpers for the experiment modules. *)

type flow_cost = {
  delivered : bool;
  hops : int;  (** link traversals *)
  wire_bytes : int;
  latency : float option;
  encap_depth : int;  (** deepest tunneling nesting the flow experienced *)
}

val cost_of_flow : Netsim.Net.t -> flow:int -> target:string -> flow_cost
(** Derived from the flow's [Netobs.Span]; [delivered] and [latency] are
    relative to [target]. *)

val span_note : Netsim.Net.t -> label:string -> flow:int -> string
(** A one-line per-flow span summary suitable for a table's notes. *)

val ping_once :
  Netsim.Net.t ->
  from_node:Netsim.Net.node ->
  dst:Netsim.Ipv4_addr.t ->
  float option
(** Ping and drain the network; the echo responder service must already
    exist on the destination. *)

val udp_probe :
  Netsim.Net.t ->
  from_node:Netsim.Net.node ->
  ?src:Netsim.Ipv4_addr.t ->
  dst:Netsim.Ipv4_addr.t ->
  ?size:int ->
  port:int ->
  unit ->
  int
(** Fire one UDP datagram (no reply expected) and drain; returns its flow
    for trace queries. *)

val fresh_trace : Netsim.Net.t -> unit
(** Clear the trace between measurement phases. *)
