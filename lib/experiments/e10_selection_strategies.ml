(* E10 — §7.1.2: comparing the ways a mobile host can decide which
   home-address delivery method to use.  Conservative-first wastes
   efficiency when aggressive methods would have worked; aggressive-first
   wastes retransmissions when they cannot work; rule-based starts right
   when the user's policy table already knows the answer.

   Failure detection is the paper's proposed IP-interface feedback:
   retransmission indications from TCP drive the selector. *)


type world = {
  name : string;
  filtering : Scenarios.Topo.filtering;
  ch_capability : Mobileip.Correspondent.capability;
  best_method : Mobileip.Grid.out_method;
}

let worlds =
  [
    {
      name = "open path";
      filtering = Scenarios.Topo.no_filtering;
      ch_capability = Mobileip.Correspondent.Conventional;
      best_method = Mobileip.Grid.Out_DH;
    };
    {
      name = "filtered, decap CH";
      filtering = Scenarios.Topo.strict;
      ch_capability = Mobileip.Correspondent.Decap_capable;
      best_method = Mobileip.Grid.Out_DE;
    };
    {
      name = "filtered, plain CH";
      filtering = Scenarios.Topo.strict;
      ch_capability = Mobileip.Correspondent.Conventional;
      best_method = Mobileip.Grid.Out_IE;
    };
  ]

let strategy_for world = function
  | `Conservative -> ("conservative-first", Mobileip.Selector.Conservative_first)
  | `Aggressive -> ("aggressive-first", Mobileip.Selector.Aggressive_first)
  | `Rules ->
      (* The user's policy table encodes the environment's truth, the way
         §7.1.2 suggests (one rule can cover a whole network). *)
      let table =
        Mobileip.Policy_table.create
          ~default:
            (match world.best_method with
            | Mobileip.Grid.Out_IE -> Mobileip.Policy_table.Pessimistic
            | _ -> Mobileip.Policy_table.Optimistic)
          ()
      in
      ("rule-based", Mobileip.Selector.Rule_based table)

let run_one world strat =
  let name, strategy = strategy_for world strat in
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote
      ~filtering:world.filtering ~ch_capability:world.ch_capability ()
  in
  Scenarios.Topo.roam topo ();
  let selector = Mobileip.Selector.create strategy in
  Mobileip.Mobile_host.set_selector topo.Scenarios.Topo.mh (Some selector);
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
    ~port:Transport.Well_known.telnet;
  let stats =
    Scenarios.Workload.tcp_echo_session ~net:topo.Scenarios.Topo.net
      ~client:topo.Scenarios.Topo.mh_node
      ~server_addr:topo.Scenarios.Topo.ch_addr
      ~port:Transport.Well_known.telnet
      ~src:topo.Scenarios.Topo.mh_home_addr ~messages:20 ~spacing:0.5 ()
  in
  let dst = topo.Scenarios.Topo.ch_addr in
  [
    world.name;
    name;
    Printf.sprintf "%d/20" stats.Scenarios.Workload.messages_echoed;
    string_of_int stats.Scenarios.Workload.client_retransmissions;
    string_of_int (Mobileip.Selector.switches selector ~dst);
    Mobileip.Grid.out_to_string (Mobileip.Selector.method_for selector dst);
    Mobileip.Grid.out_to_string world.best_method;
    Table.f1 stats.Scenarios.Workload.elapsed ^ "s";
  ]

let run () =
  let rows =
    List.concat_map
      (fun world ->
        List.map (run_one world) [ `Conservative; `Aggressive; `Rules ])
      worlds
  in
  {
    Table.id = "E10";
    title = "Section 7.1.2 - delivery-method selection strategies";
    paper_claim =
      "starting conservative wastes efficiency when aggressive methods \
       work; starting aggressive wastes probes when they are known to \
       fail; user rules avoid both";
    columns =
      [
        "environment";
        "strategy";
        "echoed";
        "retransmissions";
        "method switches";
        "settled on";
        "environment's best";
        "session time";
      ];
    rows;
    notes =
      [
        "a 20-message telnet-like session; retransmissions are the wasted \
         packets the paper worries about, driven by its proposed \
         original-vs-retransmission IP feedback";
      ];
  }
