(* E20 — the observability overhead ladder: what each telemetry consumer
   costs on the E18 capacity workload (128 concurrent UDP ping-pong flows
   over the roamed world, per-packet tracing gated off).  Rungs:

     off               nothing installed — the E18 baseline
     recorder          flight recorder, every flow
     recorder-sampled  flight recorder, 1-in-8 flow sampling
     jsonl             full JSONL export streaming to a file
     pcap              pcap export streaming to a file

   The recorder rungs take the allocation-free [Trace.emit_*] fast path
   (no event construction at all); jsonl and pcap are full consumers, so
   they pay record/event allocation plus their own serialisation.  The
   ladder separates the price of *knowing* (recorder) from the price of
   *exporting* (jsonl, pcap).  The roadmap claim under test: the flight
   recorder is cheap enough to leave on at capacity scale — sampled
   capture within measurement noise of tracing-off, full every-flow
   capture at roughly a tenth of throughput.

   Rates on a loaded host wobble; wall time is host *CPU* seconds inside
   [Engine.run] (immune to CPU steal), attempts are interleaved across
   rungs (a slow patch on a shared host degrades one attempt of every
   rung rather than one rung's whole budget), each run starts from a
   freshly collected heap, and each rung reports its fastest attempt. *)

open Netsim

let flows = 128
let attempts = 5
let recorder_capacity = 4096
let sample_every = 8

type run_stats = {
  delivered : int;
  expected : int;
  wall : float;
  packets_per_sec : float;
}

(* One E18-style capacity run: [install] may hang consumers on the trace
   (returning the matching teardown), so the workload itself is identical
   on every rung.  [record_rtt] (used by the unmeasured percentile run
   only — it adds per-exchange stamping the timed rungs must not pay)
   receives each exchange's end-to-end round trip in simulated
   milliseconds. *)
let run_once ?record_rtt ~install () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  Net.set_tracing net false;
  let teardown = install net in
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let ch_received = ref 0 in
  let mh_received = ref 0 in
  Transport.Udp_service.listen ch_udp ~port:9 (fun svc dgram ->
      incr ch_received;
      ignore
        (Transport.Udp_service.send svc ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src ~src_port:9
           ~dst_port:dgram.Transport.Udp_service.src_port
           (Bytes.make 512 'r')));
  let eng = Net.engine net in
  let stamps = Array.make flows 0.0 in
  let request i =
    if record_rtt <> None then stamps.(i) <- Engine.now eng;
    ignore
      (Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
         ~dst:topo.Scenarios.Topo.ch_addr ~src_port:(47000 + i) ~dst_port:9
         (Bytes.make 256 'q'))
  in
  let exchanges = E18_sim_capacity.exchanges_per_flow in
  for i = 0 to flows - 1 do
    let sent = ref 1 in
    Transport.Udp_service.listen mh_udp ~port:(47000 + i) (fun _ _ ->
        incr mh_received;
        (match record_rtt with
        | Some f -> f ((Engine.now eng -. stamps.(i)) *. 1e3)
        | None -> ());
        if !sent < exchanges then begin
          incr sent;
          request i
        end);
    Engine.after eng (float_of_int i *. 0.003) (fun () -> request i)
  done;
  let before = Engine.stats eng in
  Net.run net;
  let after = Engine.stats eng in
  teardown ();
  let delivered = !ch_received + !mh_received in
  (* Host CPU seconds inside [Engine.run] — immune to CPU steal, unlike
     the wall seconds [Engine.stats] also reports since the split. *)
  let wall = after.Engine.cpu_time -. before.Engine.cpu_time in
  {
    delivered;
    expected = 2 * flows * exchanges;
    wall;
    packets_per_sec =
      (if wall > 0.0 then float_of_int delivered /. wall else 0.0);
  }


let no_teardown (_ : Net.t) () = ()

let rung_off net = no_teardown net

let rung_recorder ?sample_every () (_ : Net.t) =
  let r = Netobs.Recorder.create ?sample_every ~capacity:recorder_capacity () in
  Netobs.Recorder.install r;
  fun () -> Netobs.Recorder.uninstall r

let rung_to_file make_sink (_ : Net.t) =
  let path = Filename.temp_file "e20" ".out" in
  let oc = open_out_bin path in
  let sink = Trace.add_sink (make_sink oc) in
  fun () ->
    Trace.remove_sink sink;
    close_out oc;
    Sys.remove path

let rung_jsonl net =
  rung_to_file (fun oc -> Netobs.Export.sink_to_channel oc) net

let rung_pcap net =
  rung_to_file
    (fun oc ->
      Netobs.Pcap.write_header oc;
      Netobs.Pcap.sink_to_channel oc)
    net

type rung = { name : string; stats : run_stats; vs_off : float }

(* The workload's end-to-end RTT distribution is pure simulated time —
   identical on every rung, whatever telemetry is installed — so it is
   collected once, on an unmeasured instrumented run, and summarised with
   the bucket-interpolated percentiles. *)
let rtt_percentiles () =
  let reg = Netobs.Metrics.create () in
  let h =
    Netobs.Metrics.histogram reg
      ~help:"end-to-end request/reply round trip, simulated ms" "e20.rtt_ms"
  in
  ignore
    (run_once ~record_rtt:(Netobs.Metrics.observe h) ~install:rung_off ());
  List.find_map
    (fun s ->
      match s.Netobs.Metrics.value with
      | Netobs.Metrics.Histogram v when s.Netobs.Metrics.name = "e20.rtt_ms"
        ->
          Some
            ( Netobs.Metrics.percentile v 50.0,
              Netobs.Metrics.percentile v 90.0,
              Netobs.Metrics.percentile v 99.0 )
      | _ -> None)
    (Netobs.Metrics.snapshot reg)

let run_ladder () =
  let ladder =
    [|
      ("off", rung_off);
      ("recorder", fun net -> rung_recorder () net);
      ("recorder-sampled", fun net -> rung_recorder ~sample_every () net);
      ("jsonl", rung_jsonl);
      ("pcap", rung_pcap);
    |]
  in
  (* Interleaved attempts: pass k runs every rung once, back-to-back, so
     each pass samples every rung under the same host conditions; each
     run starts from a compacted heap so an allocation-heavy rung
     (jsonl) cannot reshape the heap under its successors.  The overhead
     statistic is the *median of within-pass ratios* (each rung against
     that same pass's "off"): a ratio taken seconds apart is immune to
     the minute-scale load drift of a shared host that makes absolute
     rates from different passes incomparable, and the median discards
     the odd pass that caught a load burst mid-ladder. *)
  let passes =
    Array.init attempts (fun _ ->
        Array.map
          (fun (_, install) ->
            Gc.compact ();
            run_once ~install ())
          ladder)
  in
  let median l =
    let sorted = List.sort compare l in
    List.nth sorted (List.length sorted / 2)
  in
  let stats i =
    let by_pps =
      List.sort
        (fun a b -> compare a.packets_per_sec b.packets_per_sec)
        (Array.to_list (Array.map (fun pass -> pass.(i)) passes))
    in
    List.nth by_pps (List.length by_pps / 2)
  in
  let rel i =
    median
      (Array.to_list
         (Array.map
            (fun pass ->
              if pass.(0).packets_per_sec > 0.0 then
                100.0
                *. (pass.(i).packets_per_sec /. pass.(0).packets_per_sec
                   -. 1.0)
              else 0.0)
            passes))
  in
  Array.to_list
    (Array.mapi
       (fun i (name, _) ->
         { name; stats = stats i; vs_off = (if i = 0 then 0.0 else rel i) })
       ladder)

let run () =
  let rungs = run_ladder () in
  let rtt_note =
    match rtt_percentiles () with
    | Some (p50, p90, p99) ->
        Printf.sprintf
          "workload RTT (simulated, identical on every rung): p50=%.1f ms \
           p90=%.1f ms p99=%.1f ms — bucket-interpolated percentiles over \
           the run's %d exchanges"
          p50 p90 p99
          (flows * E18_sim_capacity.exchanges_per_flow)
    | None -> "workload RTT histogram was empty"
  in
  let row r =
    [
      r.name;
      Printf.sprintf "%d/%d" r.stats.delivered r.stats.expected;
      Printf.sprintf "%.1f" (r.stats.wall *. 1e3);
      Printf.sprintf "%.0f" r.stats.packets_per_sec;
      (if r.name = "off" then "-" else Printf.sprintf "%+.1f%%" r.vs_off);
    ]
  in
  {
    Table.id = "E20";
    title =
      Printf.sprintf
        "Observability overhead ladder: %d-flow capacity workload per rung"
        flows;
    paper_claim =
      "harness, not paper: the flight recorder is cheap enough to leave on \
       at capacity scale — sampled capture sits within measurement noise \
       of tracing-off, full every-flow capture costs ~10-15%; full \
       exports cost what they cost, and now we know the number";
    columns = [ "rung"; "delivered"; "wall ms"; "packets/sec"; "vs off" ];
    rows = List.map row rungs;
    notes =
      [
        Printf.sprintf
          "same workload as E18's %d-flow level; recorder rungs ride the \
           allocation-free emit fast path, jsonl/pcap are full consumers \
           and pay record construction plus serialisation"
          flows;
        Printf.sprintf
          "recorder: %d-slot ring; recorder-sampled keeps 1 flow in %d \
           (deterministic per seed); jsonl/pcap stream to a file and the \
           file is deleted"
          recorder_capacity sample_every;
        Printf.sprintf
          "wall is host CPU seconds inside the engine; %d interleaved \
           passes, heap compacted before each run; 'vs off' is the \
           median of within-pass ratios (back-to-back runs, immune to \
           host load drift), wall/rate columns are the median run"
          attempts;
        rtt_note;
      ];
  }
