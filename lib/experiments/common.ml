open Netsim

type flow_cost = {
  delivered : bool;
  hops : int;
  wire_bytes : int;
  latency : float option;
}

let cost_of_flow net ~flow ~target =
  let trace = Net.trace net in
  let latency =
    match
      (Trace.send_time trace ~flow, Trace.delivery_time trace ~flow ~node:target)
    with
    | Some t0, Some t1 -> Some (t1 -. t0)
    | _ -> None
  in
  {
    delivered = Trace.delivered trace ~flow ~node:target;
    hops = Trace.transmissions trace ~flow;
    wire_bytes = Trace.wire_bytes trace ~flow;
    latency;
  }

let ping_once net ~from_node ~dst =
  let icmp = Transport.Icmp_service.get from_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst (fun ~rtt -> got := Some rtt);
  Net.run net;
  !got

let udp_probe net ~from_node ?src ~dst ?(size = 64) ~port () =
  let udp = Transport.Udp_service.get from_node in
  let flow =
    Transport.Udp_service.send udp ?src ~dst ~src_port:40000 ~dst_port:port
      (Bytes.make size 'p')
  in
  Net.run net;
  flow

let fresh_trace net = Trace.clear (Net.trace net)
