open Netsim

type flow_cost = {
  delivered : bool;
  hops : int;
  wire_bytes : int;
  latency : float option;
  encap_depth : int;
}

let cost_of_flow net ~flow ~target =
  let trace = Net.trace net in
  let span = Netobs.Span.of_flow trace ~flow in
  (* Delivery and latency are relative to the experiment's target node, not
     just "anywhere", so they come from the (indexed) trace queries. *)
  let latency =
    match
      (span.Netobs.Span.send_time, Trace.delivery_time trace ~flow ~node:target)
    with
    | Some t0, Some t1 -> Some (t1 -. t0)
    | _ -> None
  in
  {
    delivered = Trace.delivered trace ~flow ~node:target;
    hops = span.Netobs.Span.transmissions;
    wire_bytes = span.Netobs.Span.wire_bytes;
    latency;
    encap_depth = span.Netobs.Span.encap_depth;
  }

let span_note net ~label ~flow =
  let span = Netobs.Span.of_flow (Net.trace net) ~flow in
  Format.asprintf "%s span: %a" label Netobs.Span.pp span

let ping_once net ~from_node ~dst =
  let icmp = Transport.Icmp_service.get from_node in
  let got = ref None in
  Transport.Icmp_service.ping icmp ~dst (fun ~rtt -> got := Some rtt);
  Net.run net;
  !got

let udp_probe net ~from_node ?src ~dst ?(size = 64) ~port () =
  let udp = Transport.Udp_service.get from_node in
  let flow =
    Transport.Udp_service.send udp ?src ~dst ~src_port:40000 ~dst_port:port
      (Bytes.make size 'p')
  in
  Net.run net;
  flow

let fresh_trace net = Trace.clear (Net.trace net)
