(** Result tables for the paper-reproduction experiments.

    Every experiment produces one of these; the bench harness and the CLI
    render them identically, and EXPERIMENTS.md records them. *)

type t = {
  id : string;  (** "E1" .. "E14" *)
  title : string;
  paper_claim : string;  (** what the paper asserts, in one sentence *)
  columns : string list;
  rows : string list list;
  notes : string list;
}

val render : Format.formatter -> t -> unit
(** Fixed-width ASCII rendering with header, claim and notes. *)

val f1 : float -> string
(** One decimal place. *)

val ms : float -> string
(** Seconds rendered as milliseconds, one decimal. *)

val opt_ms : float option -> string
val pct : int -> int -> string
(** [pct num den] as "100%". *)
