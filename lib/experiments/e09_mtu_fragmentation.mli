(** E9 - section 3.3: encapsulation vs MTU, the packet-doubling window. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
