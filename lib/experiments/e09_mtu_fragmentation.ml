(* E9 — §3.3: "If the addition of the extra 20 bytes makes the packet
   exceed the IP MTU for a particular link, then the packet will be
   fragmented, doubling the packet count."  We sweep datagram sizes across
   the MTU boundary and count actual wire packets on the backbone for
   plain Out-DH vs tunneled Out-IE delivery of the same payload. *)

open Netsim

let first_hop_packets topo ~flow =
  (* Count wire packets of the flow on the mobile host's own segment:
     every packet (and every fragment) crosses it exactly once, whichever
     route it then takes. *)
  List.length
    (List.filter
       (fun r ->
         match r.Trace.event with
         | Trace.Transmit { link = "visited-lan"; frame; _ } ->
             frame.Trace.flow = flow
         | _ -> false)
       (Trace.records (Net.trace topo.Scenarios.Topo.net)))

let probe topo ~out_method ~payload =
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh out_method;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let flow =
    Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:43000 ~dst_port:9
      (Bytes.make payload 'f')
  in
  Net.run net;
  let delivered = Trace.delivered (Net.trace net) ~flow ~node:"ch" in
  (first_hop_packets topo ~flow, delivered)

let run () =
  let topo = Scenarios.Topo.build ~ch_position:Scenarios.Topo.Remote () in
  Scenarios.Topo.roam topo ();
  let rows =
    List.map
      (fun payload ->
        (* Total IP packet = 20 (IP) + 8 (UDP) + payload. *)
        let plain_size = 28 + payload in
        let n_plain, ok_plain = probe topo ~out_method:Mobileip.Grid.Out_DH ~payload in
        let n_tun, ok_tun = probe topo ~out_method:Mobileip.Grid.Out_IE ~payload in
        [
          string_of_int payload;
          string_of_int plain_size;
          string_of_int (plain_size + 20);
          Printf.sprintf "%d%s" n_plain (if ok_plain then "" else " (lost)");
          Printf.sprintf "%d%s" n_tun (if ok_tun then "" else " (lost)");
          (if n_tun = 2 * n_plain then "doubled" else "same");
        ])
      [ 1000; 1400; 1452; 1453; 1472; 1600 ]
  in
  {
    Table.id = "E9";
    title = "Section 3.3 - encapsulation vs the 1500-byte MTU";
    paper_claim =
      "20 bytes of encapsulation overhead can push a packet over the MTU, \
       fragmenting it and doubling the packet count";
    columns =
      [
        "UDP payload";
        "plain pkt";
        "tunneled pkt";
        "wire pkts plain";
        "wire pkts tunneled";
        "effect";
      ];
    rows;
    notes =
      [
        "payloads 1453-1472: the plain packet fits in the 1500-byte MTU \
         but the tunneled one does not — exactly the doubling window the \
         paper warns about (above 1472 both fragment)";
      ];
  }
