(* E8 — Figure 10: the full 4x4 grid, live.  Every combination of incoming
   and outgoing method runs a real bidirectional UDP exchange; the In-DH
   row runs on a same-segment world, everything else on a remote-CH world.
   Reported per cell: the paper's classification, physical delivery in each
   direction, transport endpoint consistency (the "works with TCP"
   criterion observed on real packets), and cost. *)

open Mobileip

let run_cell (cell : Grid.cell) =
  let same_segment = cell.Grid.incoming = Grid.In_DH in
  let topo =
    Scenarios.Topo.build
      ~ch_position:
        (if same_segment then Scenarios.Topo.On_visited_segment
         else Scenarios.Topo.Remote)
      ~ch_capability:Correspondent.Mobile_aware ()
  in
  Scenarios.Topo.roam topo ();
  Netsim.Trace.clear (Netsim.Net.trace topo.Scenarios.Topo.net);
  Conversation.run_udp ~net:topo.Scenarios.Topo.net ~mh:topo.Scenarios.Topo.mh
    ~ch:topo.Scenarios.Topo.ch ~ch_addr:topo.Scenarios.Topo.ch_addr ~cell ()

let classification_cell c =
  match Grid.classify c with
  | Grid.Useful -> "useful"
  | Grid.Valid_but_unlikely -> "unlikely"
  | Grid.Broken -> "BROKEN"

let run () =
  let rows =
    List.map
      (fun cell ->
        let r = run_cell cell in
        [
          Grid.cell_to_string cell;
          classification_cell cell;
          Table.pct r.Conversation.requests_delivered
            r.Conversation.requests_sent;
          Table.pct r.Conversation.replies_delivered r.Conversation.replies_sent;
          (if r.Conversation.transport_consistent then "yes" else "NO");
          Printf.sprintf "%d/%d" r.Conversation.request_hops
            r.Conversation.reply_hops;
          Printf.sprintf "%d/%d" r.Conversation.request_wire_bytes
            r.Conversation.reply_wire_bytes;
          Table.opt_ms r.Conversation.reply_latency;
        ])
      Grid.all_cells
  in
  {
    Table.id = "E8";
    title = "Figure 10 - the Internet Mobility 4x4 grid, measured live";
    paper_claim =
      "seven combinations are useful, three are valid but unlikely, and \
       the remaining six mix temporary and permanent addresses as \
       endpoints and so do not work with protocols like TCP";
    columns =
      [
        "cell";
        "paper class";
        "req del";
        "rep del";
        "tcp-safe";
        "hops req/rep";
        "bytes req/rep";
        "rep latency";
      ];
    rows;
    notes =
      [
        "In-DH rows run on a shared-segment world (their applicability \
         condition); all others have the CH three backbone hops away";
        "tcp-safe = every reply arrived addressed to the same address the \
         requests were sourced from — observed, not assumed; it matches \
         the paper classification (BROKEN <=> NO) in all 16 cells";
      ];
  }
