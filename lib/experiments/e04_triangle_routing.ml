(* E4 — Figure 4: when the correspondent is close to the mobile host, the
   indirect CH->MH path via a distant home agent costs far more than the
   direct path — and the penalty grows with the distance to home.  ("The
   benefit of avoiding communicating through the home agent can be
   significant, especially if the visited institution is in Japan and the
   home agent is at MIT.") *)

open Netsim

let one_world ~backbone_hops =
  let topo =
    Scenarios.Topo.build ~backbone_hops
      ~ch_position:Scenarios.Topo.Near_visited ()
  in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  (* Indirect: CH (conventional) sends to the home address. *)
  Common.fresh_trace net;
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let flow_indirect =
    Transport.Udp_service.send ch_udp ~dst:topo.Scenarios.Topo.mh_home_addr
      ~src_port:42000 ~dst_port:9 (Bytes.make 512 'i')
  in
  Net.run net;
  let indirect = Common.cost_of_flow net ~flow:flow_indirect ~target:"mh" in
  (* Direct reference: the same payload addressed straight to the care-of
     address (what In-DE achieves, minus the 20-byte tunnel header). *)
  Common.fresh_trace net;
  let coa = Option.get (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh) in
  let flow_direct =
    Transport.Udp_service.send ch_udp ~dst:coa ~src_port:42001 ~dst_port:9
      (Bytes.make 512 'd')
  in
  Net.run net;
  let direct = Common.cost_of_flow net ~flow:flow_direct ~target:"mh" in
  (indirect, direct)

let run () =
  let rows =
    List.map
      (fun backbone_hops ->
        let indirect, direct = one_world ~backbone_hops in
        let ratio =
          match (indirect.Common.latency, direct.Common.latency) with
          | Some i, Some d when d > 0.0 -> Table.f1 (i /. d)
          | _ -> "-"
        in
        [
          string_of_int backbone_hops;
          string_of_int indirect.Common.hops;
          string_of_int direct.Common.hops;
          Table.opt_ms indirect.Common.latency;
          Table.opt_ms direct.Common.latency;
          ratio;
        ])
      [ 2; 4; 8; 12; 16 ]
  in
  {
    Table.id = "E4";
    title = "Figure 4 - correspondent close to the mobile host";
    paper_claim =
      "packets sent via the home agent travel significantly further than \
       necessary when the CH is near the MH; the penalty grows with the \
       distance to the home network";
    columns =
      [
        "backbone hops to home";
        "indirect hops";
        "direct hops";
        "indirect latency";
        "direct latency";
        "latency ratio";
      ];
    rows;
    notes =
      [
        "direct = same datagram addressed to the care-of address (the path \
         In-DE uses); the CH sits one backbone hop from the visited network \
         in every row, only the home network moves further away";
      ];
  }
