(** E21 — sharded scale-out ladder: the same region/hub ping-pong workload
    at 1/2/4/8 parallel shards, reporting deliveries (which must agree on
    every rung), engine events, wall time and packets/sec. *)

val run : unit -> Table.t
