(* E15 — §3.2: "As well as increasing the round-trip delay observed by the
   communicating parties, this also affects other users by increasing the
   overall load on the shared resources of the Internet."

   The same request/response workload (20 exchanges, 256-byte requests,
   512-byte replies) between a mobile host and a nearby correspondent,
   under three delivery regimes; we account every byte on every link. *)

open Netsim

let exchanges = 20
let req_size = 256
let rep_size = 512

let run_workload topo =
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let replies = ref 0 in
  Transport.Udp_service.listen ch_udp ~port:9 (fun svc dgram ->
      ignore
        (Transport.Udp_service.send svc ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src ~src_port:9
           ~dst_port:dgram.Transport.Udp_service.src_port
           (Bytes.make rep_size 'r')));
  let mh_port = 47000 in
  Transport.Udp_service.listen mh_udp ~port:mh_port (fun _ _ -> incr replies);
  let eng = Net.engine net in
  for i = 0 to exchanges - 1 do
    Engine.after eng (float_of_int i *. 0.3) (fun () ->
        ignore
          (Transport.Udp_service.send mh_udp
             ~src:topo.Scenarios.Topo.mh_home_addr
             ~dst:topo.Scenarios.Topo.ch_addr ~src_port:mh_port ~dst_port:9
             (Bytes.make req_size 'q')))
  done;
  Net.run net;
  ( !replies,
    Scenarios.Metrics.backbone_bytes net,
    Scenarios.Metrics.total_bytes net,
    Scenarios.Metrics.bytes_on net ~link:"hr<->b0" )

let run () =
  (* Regime 1: conventional CH, conservative MH (everything via HA both
     ways). *)
  let naive =
    let topo =
      Scenarios.Topo.build ~backbone_hops:8
        ~ch_position:Scenarios.Topo.Near_visited ()
    in
    Scenarios.Topo.roam topo ();
    Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
      Mobileip.Grid.Out_IE;
    run_workload topo
  in
  (* Regime 2: conventional CH but direct replies (In-IE/Out-DH). *)
  let half =
    let topo =
      Scenarios.Topo.build ~backbone_hops:8
        ~ch_position:Scenarios.Topo.Near_visited ()
    in
    Scenarios.Topo.roam topo ();
    Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
      Mobileip.Grid.Out_DH;
    run_workload topo
  in
  (* Regime 3: mobile-aware CH with ICMP discovery (In-DE/Out-DH). *)
  let optimized =
    let topo =
      Scenarios.Topo.build ~backbone_hops:8
        ~ch_position:Scenarios.Topo.Near_visited
        ~ch_capability:Mobileip.Correspondent.Mobile_aware
        ~notify_correspondents:true ()
    in
    Scenarios.Topo.roam topo ();
    Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
      Mobileip.Grid.Out_DH;
    run_workload topo
  in
  let row name (replies, backbone, total, home_link) =
    [
      name;
      Printf.sprintf "%d/%d" replies exchanges;
      string_of_int backbone;
      string_of_int total;
      string_of_int home_link;
    ]
  in
  {
    Table.id = "E15";
    title =
      Printf.sprintf
        "Section 3.2 - load on shared Internet resources (%d exchanges, CH \
         near MH, home 8 hops away)"
        exchanges;
    paper_claim =
      "indirect delivery does not just add delay; it increases the overall \
       load on the shared resources of the Internet";
    columns =
      [
        "delivery regime";
        "replies";
        "p2p/backbone bytes";
        "all-link bytes";
        "home access link";
      ];
    rows =
      [
        row "In-IE/Out-IE (all via HA)" naive;
        row "In-IE/Out-DH (replies via HA)" half;
        row "In-DE/Out-DH (optimized)" optimized;
      ];
    notes =
      [
        "the home access link (hr<->b0) carries the entire workload twice \
         under full tunneling, once when only the CH is naive, and almost \
         nothing once route optimization kicks in";
      ];
  }
