(* E12 — §6.4: joining a multicast group through the home network tunnels
   every packet to the visited network as encapsulated unicast; joining
   through the real physical interface costs nothing extra. *)

open Netsim

let group = Ipv4_addr.of_string "224.1.2.3"
let port = 5004
let count = 10
let payload_size = 512

(* Wire bytes attributable to the stream across the whole network. *)
let stream_bytes topo flows =
  List.fold_left
    (fun acc flow ->
      acc + Trace.wire_bytes (Net.trace topo.Scenarios.Topo.net) ~flow)
    0 flows

let run_via_home () =
  let topo = Scenarios.Topo.build () in
  let sender = Net.add_host topo.Scenarios.Topo.net "mcast-src" in
  let sender_iface =
    Net.attach sender topo.Scenarios.Topo.home_segment ~ifname:"eth0"
      ~addr:(Ipv4_addr.of_string "36.1.0.20")
      ~prefix:topo.Scenarios.Topo.home_prefix
  in
  Scenarios.Topo.roam topo ();
  Common.fresh_trace topo.Scenarios.Topo.net;
  let received =
    Mobileip.Multicast.receive_count topo.Scenarios.Topo.mh_node ~port ()
  in
  Mobileip.Multicast.join_via_home topo.Scenarios.Topo.ha
    topo.Scenarios.Topo.mh ~group;
  let flows =
    Mobileip.Multicast.send_stream sender ~via:sender_iface ~group ~port
      ~count ~interval:0.1 ~payload_size ()
  in
  Scenarios.Topo.run topo;
  (received (), stream_bytes topo (flows ()))

let run_local () =
  let topo = Scenarios.Topo.build () in
  let sender = Net.add_host topo.Scenarios.Topo.net "mcast-src" in
  let sender_iface =
    Net.attach sender topo.Scenarios.Topo.visited_segment ~ifname:"eth0"
      ~addr:(Ipv4_addr.of_string "131.7.0.20")
      ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Scenarios.Topo.roam topo ();
  Common.fresh_trace topo.Scenarios.Topo.net;
  let received =
    Mobileip.Multicast.receive_count topo.Scenarios.Topo.mh_node ~port ()
  in
  let mh_iface =
    Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0")
  in
  Mobileip.Multicast.join_locally topo.Scenarios.Topo.mh ~iface:mh_iface ~group;
  let flows =
    Mobileip.Multicast.send_stream sender ~via:sender_iface ~group ~port
      ~count ~interval:0.1 ~payload_size ()
  in
  Scenarios.Topo.run topo;
  (received (), stream_bytes topo (flows ()))

let run () =
  let rx_home, bytes_home = run_via_home () in
  let rx_local, bytes_local = run_local () in
  let row name rx bytes =
    [
      name;
      Printf.sprintf "%d/%d" rx count;
      string_of_int bytes;
      Table.f1 (float_of_int bytes /. float_of_int (count * payload_size));
    ]
  in
  {
    Table.id = "E12";
    title =
      Printf.sprintf
        "Section 6.4 - multicast: join via home vs join locally (%d x %dB)"
        count payload_size;
    paper_claim =
      "tunneling multicast packets from the home network to the visited \
       network is self-defeating; joining through the real physical \
       interface on the local network is better";
    columns = [ "membership"; "received"; "total wire bytes"; "bytes/payload" ];
    rows =
      [
        row "via home agent (tunneled unicast)" rx_home bytes_home;
        row "local physical interface" rx_local bytes_local;
      ];
    notes =
      [
        "the stream is delivered either way, but the home-network \
         membership drags every packet across the backbone inside a \
         tunnel, multiplying the bytes on the wire";
      ];
  }
