(* E14 — §2: connection durability.  A telnet-like TCP session bound to the
   home address survives moving away and back; the same session bound to a
   temporary address dies on the first move (Row D's trade-off). *)

open Netsim

let run_session ~bind_to_home =
  let topo = Scenarios.Topo.build () in
  (* Server side. *)
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
    ~port:Transport.Well_known.telnet;
  let net = topo.Scenarios.Topo.net in
  let mh_tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  (* For the temporary-address variant the session starts while roaming
     (at home there is no temporary address to bind). *)
  if not bind_to_home then Scenarios.Topo.roam topo ();
  let src =
    if bind_to_home then topo.Scenarios.Topo.mh_home_addr
    else Option.get (Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh)
  in
  let conn =
    Transport.Tcp.connect mh_tcp ~src ~dst:topo.Scenarios.Topo.ch_addr
      ~dst_port:Transport.Well_known.telnet ()
  in
  let echoed = ref 0 in
  Transport.Tcp.on_receive conn (fun _ -> incr echoed);
  let keystrokes n =
    for _ = 1 to n do
      Transport.Tcp.send_data conn (Bytes.of_string "ls -l\n")
    done;
    Net.run net
  in
  keystrokes 3;
  let before_move = !echoed in
  (* First movement. *)
  if bind_to_home then Scenarios.Topo.roam topo ()
  else Scenarios.Topo.come_home topo;
  keystrokes 3;
  let after_move = !echoed in
  (* Second movement (only meaningful if still alive). *)
  if Transport.Tcp.state conn = Transport.Tcp.Established then begin
    if bind_to_home then Scenarios.Topo.come_home topo;
    keystrokes 3
  end;
  ( before_move,
    after_move,
    !echoed,
    Transport.Tcp.state conn,
    Transport.Tcp.retransmissions conn )

let run () =
  let b1, a1, total1, st1, retx1 = run_session ~bind_to_home:true in
  let b2, a2, total2, st2, retx2 = run_session ~bind_to_home:false in
  let row name (b, a, total, st, retx) verdict =
    [
      name;
      string_of_int b;
      string_of_int a;
      string_of_int total;
      Format.asprintf "%a" Transport.Tcp.pp_state st;
      string_of_int retx;
      verdict;
    ]
  in
  {
    Table.id = "E14";
    title = "Section 2 - connection durability across movement";
    paper_claim =
      "TCP connections using the home address are maintained even if the \
       point of attachment changes; connections using a temporary address \
       are unceremoniously broken when the host moves";
    columns =
      [
        "endpoint binding";
        "echoes before move";
        "after 1st move";
        "after 2nd move";
        "final state";
        "retransmissions";
        "verdict";
      ];
    rows =
      [
        row "home address (Mobile IP)" (b1, a1, total1, st1, retx1)
          "survives both moves";
        row "temporary address (Out-DT)" (b2, a2, total2, st2, retx2)
          "dies on first move";
      ];
    notes =
      [
        "9 keystrokes are attempted in each session (3 per phase); the \
         temporary-address session never completes its second batch";
      ];
  }
