(** E1 - Figure 1: basic Mobile IP, asymmetric paths. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
