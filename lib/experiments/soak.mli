(** The chaos soak harness (experiment E17 and the [soak] subcommand).

    Sweeps seeds x grid cells x topology depths: each seed derives a
    world, a randomized {!Netsim.Fault.plan} (via {!Netsim.Chaos}) and a
    workload (a monitored TCP byte stream plus registration keepalive)
    run under the {!Scenarios.Oracle} invariants.  A run that violates an
    invariant is delta-debugged down to a minimal plan that still
    violates the same invariants, and the minimal plan serialises to a
    repro file replayable with [--fault-json].

    Everything is a pure function of the seed: two sweeps over the same
    range produce identical findings and identical shrunken repros. *)

type profile = {
  events : int;  (** fault events per generated plan *)
  horizon : float;  (** scripted activity ends by this sim time *)
  max_window : float;  (** longest single fault window *)
  outages : float list;  (** candidate ha_outage durations, seconds *)
  mh_lifetime : int;  (** registration lifetime the MH requests *)
  max_renewals : int;  (** keepalive renewal budget *)
  retry_limit : int;  (** registration transmissions before giving up *)
  with_standby : bool;
      (** pair a hot-standby home agent (tight 0.5 s/1 s detection), so
          [ha_outage] actions exercise takeover and failback under the
          ha-failover-recovery invariant *)
}

val gentle : profile
(** The default soak profile: short outages against a generous renewal
    budget and a standby home agent — a healthy implementation passes
    every invariant, so the CI smoke sweep stays green unless something
    regresses. *)

val harsh : profile
(** The E17 profile: home-agent outages long enough to exhaust a small
    renewal budget, so some seeds genuinely strand the mobile host — the
    violations the shrinker then minimises. *)

type outcome = {
  violations : Netsim.Invariant.violation list;
  checks_run : int;
  tcp_retx_aborts : int;
      (** connections that gave up retransmitting during this run (the
          [tcp_retx_aborted_total] counter) *)
  fault : Netsim.Fault.stats;
  recorder_tail : Netsim.Trace.record list;
      (** the flight-recorder snapshot at the first invariant violation —
          the last events (up to the recorder capacity) leading up to the
          failure; [[]] when the run passed *)
}

type finding = {
  f_seed : int;
  f_cell : Mobileip.Grid.cell;
  f_plan : Netsim.Fault.plan;  (** as generated *)
  f_outcome : outcome;
  f_shrunk : Netsim.Fault.plan;  (** the minimal still-failing plan *)
  f_replays : int;  (** replays the shrink spent *)
}

type report = {
  seed_lo : int;
  seed_hi : int;
  cells : Mobileip.Grid.cell list;
  runs : int;
  total_checks : int;
  total_retx_aborts : int;
  findings : finding list;
}

val default_cells : Mobileip.Grid.cell list
(** In-IE/Out-IE, In-DE/Out-DE, In-DH/Out-DH: the diagonal of the useful
    grid, covering tunnel-both-ways, mobile-aware and same-segment
    delivery. *)

val generate_plan :
  ?profile:profile ->
  cell:Mobileip.Grid.cell ->
  seed:int ->
  unit ->
  Netsim.Fault.plan
(** The plan a soak run with this (seed, cell) would execute. *)

val replay :
  ?profile:profile ->
  cell:Mobileip.Grid.cell ->
  seed:int ->
  Netsim.Fault.plan ->
  outcome
(** Build the (seed, cell) world, apply the plan and run to completion
    under the oracle.  Deterministic. *)

val shrink_plan :
  ?profile:profile ->
  cell:Mobileip.Grid.cell ->
  seed:int ->
  Netsim.Fault.plan ->
  outcome ->
  Netsim.Fault.plan * int
(** Delta-debug a failing plan: the reduced plan still violates every
    invariant the given outcome violated.  Returns the plan and the
    number of replays spent. *)

val run :
  ?profile:profile ->
  ?seed_lo:int ->
  ?seed_hi:int ->
  ?cells:Mobileip.Grid.cell list ->
  ?shrink:bool ->
  unit ->
  report
(** The sweep (defaults: gentle profile, seeds 0..4, {!default_cells},
    shrinking on).  @raise Invalid_argument on an empty seed range. *)

val violated_names : outcome -> string list
(** Distinct violated invariant names, sorted. *)

(** {1 Repro files} *)

val repro_to_string : seed:int -> cell:Mobileip.Grid.cell -> Netsim.Fault.plan -> string
(** A fault-plan JSON annotated with the producing run ([soak_seed],
    [cell]); still loadable by {!Netsim.Fault.plan_of_string}, which
    ignores the annotations. *)

val repro_of_string :
  string ->
  (Netsim.Fault.plan * int option * Mobileip.Grid.cell option, string) result
(** Parse a repro (or any plain plan JSON): the plan plus the soak seed
    and cell annotations when present. *)

val cell_of_string : string -> Mobileip.Grid.cell option
(** Parse ["In-IE/Out-IE"]-style names (as {!Mobileip.Grid.cell_to_string}
    prints). *)

(** {1 The E17 table} *)

val run_table : unit -> report * Table.t
(** The harsh-profile sweep behind experiment E17, with its rendered
    table. *)
