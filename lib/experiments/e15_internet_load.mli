(** E15 - section 3.2: load on shared Internet resources. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
