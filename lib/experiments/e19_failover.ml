(* E19 — failure signaling and failover.

   Part A: a mobile host behind ingress source-address filtering probes
   aggressively (Out-DH first).  When boundary routers drop its packets
   silently, the selector needs [fallback_after] TCP-retransmission hints
   — each paid for at the full retransmission timeout — before it
   abandons the method.  With ICMP error signaling enabled, the very
   first filtered packet comes back as an administratively-prohibited
   error (tunneled to the mobile host by its home agent), and the
   selector abandons the method immediately.

   Part B: the home agent crashes mid-stream.  Without redundancy the
   correspondent's In-IE traffic black-holes until the agent restarts
   and the mobile host's keepalive re-registers.  With a paired standby
   (soft-state binding replication, liveness detection, address
   takeover) the outage is bounded by the detection timeout.  The
   invariant oracle's ha-failover-recovery check runs throughout.

   Everything is seeded and deterministic. *)

open Mobileip

(* {1 Part A: silent drops vs ICMP-signaled drops} *)

type filtering_result = {
  signaled : bool;
  messages_echoed : int;
  retransmissions : int;
  switches : int;
  settled : Grid.out_method;
  first_byte : float option;  (* s from connect to the first echoed byte *)
  icmp_sent : int;  (* errors emitted by routers *)
  icmp_consumed : int;  (* errors the MH fed to its selector *)
}

let filtering_messages = 10

let run_filtering ~signaled () =
  let open Scenarios in
  let topo =
    Topo.build ~ch_position:Topo.Inside_home ~filtering:Topo.ingress_only
      ~ch_capability:Correspondent.Decap_capable ()
  in
  if signaled then Netsim.Net.enable_error_signaling topo.Topo.net;
  Topo.roam_static topo ();
  let selector = Selector.create Selector.Aggressive_first in
  Mobile_host.set_selector topo.Topo.mh (Some selector);
  Workload.tcp_echo_server topo.Topo.ch_node ~port:Transport.Well_known.telnet;
  let net = topo.Topo.net in
  let eng = Netsim.Net.engine net in
  let mh_tcp = Transport.Tcp.get topo.Topo.mh_node in
  let t0 = Netsim.Engine.now eng in
  let conn =
    Transport.Tcp.connect mh_tcp ~src:topo.Topo.mh_home_addr
      ~dst:topo.Topo.ch_addr ~dst_port:Transport.Well_known.telnet ()
  in
  (* Time to first byte is the recovery metric: how long the aggressive
     probe (Out-DH, filtered at the home boundary) stalls the session
     before the selector falls back to a method that works. *)
  let first_byte = ref None in
  let echoed = ref 0 in
  Transport.Tcp.on_receive conn (fun data ->
      if !first_byte = None && Bytes.length data > 0 then
        first_byte := Some (Netsim.Engine.now eng -. t0);
      echoed := !echoed + Bytes.length data);
  let message = Bytes.of_string "probe\n" in
  for k = 0 to filtering_messages - 1 do
    Netsim.Engine.schedule eng
      ~at:(t0 +. (0.5 *. float_of_int k))
      (fun () -> Transport.Tcp.send_data conn message)
  done;
  Netsim.Net.run net;
  let dst = topo.Topo.ch_addr in
  {
    signaled;
    messages_echoed = !echoed / Bytes.length message;
    retransmissions = Transport.Tcp.retransmissions conn;
    switches = Selector.switches selector ~dst;
    settled = Selector.method_for selector dst;
    first_byte = !first_byte;
    icmp_sent = Netsim.Net.icmp_errors_sent topo.Topo.net;
    icmp_consumed = Mobile_host.icmp_errors_consumed topo.Topo.mh;
  }

(* {1 Part B: home-agent crash, with and without a standby} *)

type failover_result = {
  standby : bool;
  probes_sent : int;
  probes_delivered : int;
  lost : int;
  recovery : float option;  (* s from the crash to the next delivery *)
  failover : float option;  (* standby detection latency, if it fired *)
  takeovers : int;
  oracle_violations : int;
}

let probe_interval = 0.25
let probe_count = 120 (* 30 s of probes *)
let probe_port = 40019
let crash_at = 5.0
let restart_at = 20.0

let run_failover ~standby () =
  let open Scenarios in
  let topo =
    Topo.build ~mh_lifetime:10 ~with_standby_ha:standby
      ~standby_detect_interval:0.5 ~standby_detect_timeout:1.0 ()
  in
  let net = topo.Topo.net in
  let eng = Netsim.Net.engine net in
  Topo.roam_static topo ();
  Mobile_host.enable_keepalive topo.Topo.mh ~margin:5.0 ~max_renewals:12 ();
  Topo.arm_standby topo;
  let oracle = Oracle.create topo in
  Oracle.install_standard oracle;
  Oracle.start oracle ~interval:0.5 ~ticks:80;
  let t0 = Netsim.Engine.now eng in
  Netsim.Engine.schedule eng ~at:(t0 +. crash_at) (fun () ->
      Home_agent.crash topo.Topo.ha);
  Netsim.Engine.schedule eng ~at:(t0 +. restart_at) (fun () ->
      Home_agent.restart topo.Topo.ha);
  (* CH -> MH-home probe stream: each probe carries its sequence number;
     the receiver deduplicates. *)
  let mh_udp = Transport.Udp_service.get topo.Topo.mh_node in
  let ch_udp = Transport.Udp_service.get topo.Topo.ch_node in
  let seq_of payload =
    (Char.code (Bytes.get payload 0) lsl 8) lor Char.code (Bytes.get payload 1)
  in
  let probe_payload k =
    let b = Bytes.make 32 'f' in
    Bytes.set b 0 (Char.chr ((k lsr 8) land 0xff));
    Bytes.set b 1 (Char.chr (k land 0xff));
    b
  in
  let seen = Hashtbl.create 128 in
  let delivery_times = ref [] in
  Transport.Udp_service.listen mh_udp ~port:probe_port (fun _ dgram ->
      let k = seq_of dgram.Transport.Udp_service.payload in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        delivery_times := Netsim.Engine.now eng :: !delivery_times
      end);
  for k = 0 to probe_count - 1 do
    Netsim.Engine.schedule eng
      ~at:(t0 +. (probe_interval *. float_of_int k))
      (fun () ->
        ignore
          (Transport.Udp_service.send ch_udp ~dst:topo.Topo.mh_home_addr
             ~src_port:(42000 + k) ~dst_port:probe_port (probe_payload k)))
  done;
  Netsim.Net.run net;
  Oracle.finish oracle;
  let times = List.sort compare (List.rev !delivery_times) in
  let abs_crash = t0 +. crash_at in
  let recovery =
    List.find_map
      (fun d -> if d >= abs_crash then Some (d -. abs_crash) else None)
      times
  in
  let failover, takeovers =
    match topo.Topo.ha_standby with
    | None -> (None, 0)
    | Some s -> (Home_agent.last_failover s, Home_agent.takeovers s)
  in
  let delivered = Hashtbl.length seen in
  {
    standby;
    probes_sent = probe_count;
    probes_delivered = delivered;
    lost = probe_count - delivered;
    recovery;
    failover;
    takeovers;
    oracle_violations = List.length (Oracle.violations oracle);
  }

let opt_ms = function
  | Some x -> Printf.sprintf "%.0fms" (x *. 1000.0)
  | None -> "-"

let run () =
  let fa = run_filtering ~signaled:false () in
  let fb = run_filtering ~signaled:true () in
  let filtering_row (r : filtering_result) =
    [
      (if r.signaled then "A: filtered, ICMP signaled"
       else "A: filtered, silent drops");
      Printf.sprintf "%d/%d" r.messages_echoed filtering_messages;
      string_of_int r.retransmissions;
      string_of_int r.switches;
      Grid.out_to_string r.settled;
      opt_ms r.first_byte;
      Printf.sprintf "%d/%d" r.icmp_sent r.icmp_consumed;
      "-";
    ]
  in
  let ga = run_failover ~standby:false () in
  let gb = run_failover ~standby:true () in
  let failover_row (r : failover_result) =
    [
      (if r.standby then "B: HA crash, hot standby"
       else "B: HA crash, no standby");
      Printf.sprintf "%d/%d del" r.probes_delivered r.probes_sent;
      string_of_int r.lost;
      Printf.sprintf "%d takeover" r.takeovers;
      "-";
      opt_ms r.recovery;
      string_of_int r.oracle_violations;
      opt_ms r.failover;
    ]
  in
  {
    Table.id = "E19";
    title = "Failure signaling and home-agent failover";
    paper_claim =
      "delivery methods fail in the field (filters, dead agents); fast \
       explicit failure feedback and agent redundancy bound how long a \
       mobile host stays unreachable";
    columns =
      [
        "scenario";
        "delivered";
        "retx/lost";
        "switches/takeovers";
        "settled";
        "first-byte/recovery";
        "icmp s/c | viol";
        "failover";
      ];
    rows = [ filtering_row fa; filtering_row fb; failover_row ga; failover_row gb ];
    notes =
      [
        "part A: MH away under home ingress filtering, aggressive-first \
         selector, 10-message telnet session; silent drops cost \
         fallback_after retransmission timeouts per abandoned method, an \
         ICMP admin-prohibited error abandons it on first contact; \
         first-byte is connect -> first echoed byte";
        Printf.sprintf
          "part B: CH->MH probes every %.0f ms for %.0f s; HA crashes at \
           t+%.0fs, restarts at t+%.0fs; standby detection 0.5s interval / \
           1s timeout; recovery is crash -> next probe delivered at the MH"
          (probe_interval *. 1000.0)
          (probe_interval *. float_of_int probe_count)
          crash_at restart_at;
        "the invariant oracle (binding-lifetime, withdrawal, proxy-arp, \
         selector-discipline, ha-failover-recovery) runs through part B; \
         viol must be 0";
      ];
  }
