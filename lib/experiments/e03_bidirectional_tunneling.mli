(** E3 - Figure 3: bi-directional tunneling restores delivery. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
