(** E4 - Figure 4: the triangle-routing penalty vs distance to home. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
