(* A1 — §4 ablation: loose source routing vs encapsulation.

   The paper dismisses LSR: "this achieves little that can't be done
   equally well using an encapsulating header.  Current IP routers
   typically handle packets with options much more slowly than they handle
   normal unadorned IP packets."  We steer the same payload MH->CH via the
   home agent both ways and measure; then repeat under ingress filtering,
   where LSR cannot help at all (the inner source address is the outer
   source address). *)

open Netsim

let payload = 512

let lsr_packet topo =
  let udp =
    Udp_wire.make ~src_port:45000 ~dst_port:9 (Bytes.make payload 'l')
  in
  Ipv4_packet.make
    ~options:(Ipv4_options.build_lsr ~via:[ topo.Scenarios.Topo.ch_addr ])
    ~protocol:Ipv4_packet.P_udp ~src:topo.Scenarios.Topo.mh_home_addr
    ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
    (Ipv4_packet.Udp udp)

let run_world ~filtering =
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home ~filtering ()
  in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  (* Encapsulated via home agent (Out-IE). *)
  Common.fresh_trace net;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh
    Mobileip.Grid.Out_IE;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let f_encap =
    Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:45001 ~dst_port:9
      (Bytes.make payload 'e')
  in
  Net.run net;
  let encap = Common.cost_of_flow net ~flow:f_encap ~target:"ch" in
  (* Loose source routing via the home agent: plain packet addressed to
     the HA carrying an LSR option naming the correspondent. *)
  Common.fresh_trace net;
  Mobileip.Mobile_host.pin_method topo.Scenarios.Topo.mh
    ~dst:(Mobileip.Home_agent.address topo.Scenarios.Topo.ha)
    (Some Mobileip.Grid.Out_DH);
  let f_lsr = Net.send topo.Scenarios.Topo.mh_node (lsr_packet topo) in
  Net.run net;
  let lsr_cost = Common.cost_of_flow net ~flow:f_lsr ~target:"ch" in
  (encap, lsr_cost)

let row name (c : Common.flow_cost) =
  [
    name;
    (if c.Common.delivered then "yes" else "NO");
    string_of_int c.Common.hops;
    string_of_int c.Common.wire_bytes;
    Table.opt_ms c.Common.latency;
  ]

let run () =
  let encap_open, lsr_open = run_world ~filtering:Scenarios.Topo.no_filtering in
  let encap_filt, lsr_filt = run_world ~filtering:Scenarios.Topo.ingress_only in
  {
    Table.id = "A1";
    title = "Section 4 ablation - loose source routing vs encapsulation";
    paper_claim =
      "source routing achieves little that encapsulation cannot; routers \
       handle optioned packets much more slowly, and (unlike a tunnel) LSR \
       cannot hide the home source address from filters";
    columns = [ "method"; "delivered"; "hops"; "wire bytes"; "latency" ];
    rows =
      [
        row "Out-IE tunnel, open net" encap_open;
        row "LSR via HA, open net" lsr_open;
        row "Out-IE tunnel, filtered net" encap_filt;
        row "LSR via HA, filtered net" lsr_filt;
      ];
    notes =
      [
        "LSR saves a few header bytes but pays the routers' option \
         slow-path (1 ms per hop here) on every hop of the longer path";
        "under ingress filtering the LSR packet still shows the home \
         source address to the boundary router and dies; the tunnel's \
         outer header sails through — the paper's deliverability argument";
      ];
  }
