(* The chaos soak harness: sweep seeds over randomized fault plans while
   the invariant oracle watches, then shrink every failing plan to a
   minimal repro.

   One run = one (seed, cell) pair.  The seed deterministically derives
   the whole run: the world shape (backbone depth alternates with the
   seed's parity, so a sweep also sweeps topologies), the fault plan
   (through {!Netsim.Chaos.generate}), and every probabilistic effect
   inside the plan.  Replaying the same (seed, cell, plan) is bit-for-bit
   identical, which is what makes delta-debugging shrinks trustworthy. *)

open Mobileip

type profile = {
  events : int;  (* fault events per generated plan *)
  horizon : float;  (* scripted activity ends by this sim time *)
  max_window : float;  (* longest single fault window *)
  outages : float list;  (* candidate ha_outage durations, seconds *)
  mh_lifetime : int;  (* registration lifetime the MH requests *)
  max_renewals : int;  (* keepalive renewal budget *)
  retry_limit : int;  (* registration transmissions before giving up *)
  with_standby : bool;  (* pair a hot-standby home agent *)
}

let gentle =
  {
    events = 6;
    horizon = 30.0;
    max_window = 4.0;
    outages = [ 2.0; 3.0 ];
    mh_lifetime = 10;
    max_renewals = 12;
    retry_limit = 4;
    (* The short outages are exactly what the standby is for: detection is
       tightened (0.5 s poll / 1 s timeout) so even a 2 s outage exercises
       takeover and failback under the ha-failover-recovery invariant. *)
    with_standby = true;
  }

let harsh =
  {
    events = 8;
    horizon = 30.0;
    max_window = 8.0;
    outages = [ 12.0; 16.0 ];
    mh_lifetime = 10;
    max_renewals = 3;
    retry_limit = 3;
    with_standby = false;
  }

type outcome = {
  violations : Netsim.Invariant.violation list;
  checks_run : int;
  tcp_retx_aborts : int;
  fault : Netsim.Fault.stats;
  recorder_tail : Netsim.Trace.record list;
}

type finding = {
  f_seed : int;
  f_cell : Grid.cell;
  f_plan : Netsim.Fault.plan;
  f_outcome : outcome;
  f_shrunk : Netsim.Fault.plan;
  f_replays : int;  (* replays the shrink spent *)
}

type report = {
  seed_lo : int;
  seed_hi : int;
  cells : Grid.cell list;
  runs : int;
  total_checks : int;
  total_retx_aborts : int;
  findings : finding list;
}

let default_cells =
  Grid.
    [
      { incoming = In_IE; outgoing = Out_IE };
      { incoming = In_DE; outgoing = Out_DE };
      { incoming = In_DH; outgoing = Out_DH };
    ]

(* The visited-segment addresses the mh_move action hops between, and the
   care-of address every run starts from. *)
let addr_a = Netsim.Ipv4_addr.of_string "131.7.0.200"
let addr_b = Netsim.Ipv4_addr.of_string "131.7.0.201"
let gateway = Netsim.Ipv4_addr.of_string "131.7.0.1"
let stream_port = 40100
let recorder_capacity = 512
let pat i = Char.chr (Char.code 'a' + (i mod 26))

(* The topology dimension of the sweep. *)
let hops_for seed = 4 + (seed land 1)

let build_world profile ~cell ~seed =
  let same_segment = cell.Grid.incoming = Grid.In_DH in
  Scenarios.Topo.build ~backbone_hops:(hops_for seed)
    ~ch_position:
      (if same_segment then Scenarios.Topo.On_visited_segment
       else Scenarios.Topo.Remote)
    ~ch_capability:Correspondent.Mobile_aware ~mh_lifetime:profile.mh_lifetime
    ~mh_retry_base:0.5 ~mh_retry_cap:2.0 ~mh_retry_limit:profile.retry_limit
    ~with_standby_ha:profile.with_standby ~standby_detect_interval:0.5
    ~standby_detect_timeout:1.0 ()

let budget_for profile topo =
  {
    Netsim.Chaos.events = profile.events;
    horizon = profile.horizon;
    links = Scenarios.Topo.chaos_links topo;
    cuts = Scenarios.Topo.chaos_cuts topo;
    actions =
      [
        ("ha_outage", List.map (Printf.sprintf "%.1f") profile.outages);
        ("mh_move", [ "a"; "b" ]);
      ];
    max_window = profile.max_window;
    max_extra_latency = 0.4;
  }

let generate_plan ?(profile = gentle) ~cell ~seed () =
  Netsim.Chaos.generate ~seed (budget_for profile (build_world profile ~cell ~seed))

let replay ?(profile = gentle) ~cell ~seed plan =
  let topo = build_world profile ~cell ~seed in
  let net = topo.Scenarios.Topo.net in
  let eng = Netsim.Net.engine net in
  let mh = topo.Scenarios.Topo.mh in
  let ch = topo.Scenarios.Topo.ch in
  let ch_addr = topo.Scenarios.Topo.ch_addr in
  (* Settle away from home before the chaos begins. *)
  Mobile_host.move_to_static mh topo.Scenarios.Topo.visited_segment
    ~addr:addr_a ~prefix:topo.Scenarios.Topo.visited_prefix ~gateway ();
  Scenarios.Topo.run topo;
  let home, _coa = Conversation.configure ~mh ~ch ~ch_addr ~cell in
  Mobile_host.enable_keepalive mh ~margin:5.0
    ~max_renewals:profile.max_renewals ();
  Home_agent.enable_purge topo.Scenarios.Topo.ha ~interval:5.0 ~ticks:16 ();
  Scenarios.Topo.arm_standby topo;

  (* The oracle: the standard invariants, recovery judged from the end of
     the plan, and a monitored TCP byte stream MH -> CH. *)
  let oracle = Scenarios.Oracle.create topo in
  Scenarios.Oracle.install_standard
    ~recovery_after:(Netsim.Fault.plan_end plan)
    oracle;
  (* Every soak run flies with the recorder attached: when an invariant
     trips, the finding carries the last events before the violation. *)
  Scenarios.Oracle.attach_recorder ~capacity:recorder_capacity oracle;
  let ch_tcp = Transport.Tcp.get topo.Scenarios.Topo.ch_node in
  Transport.Tcp.listen ch_tcp ~port:stream_port (fun conn ->
      Scenarios.Oracle.add_tcp_stream ~expected:pat oracle conn);
  let mh_tcp = Transport.Tcp.get (Mobile_host.node mh) in
  let conn =
    Transport.Tcp.connect mh_tcp ~src:home ~dst:ch_addr ~dst_port:stream_port
      ()
  in
  let t0 = Netsim.Engine.now eng in
  let sent = ref 0 in
  let chunk = 8 in
  let n_chunks = int_of_float (profile.horizon /. 0.5) in
  for k = 0 to n_chunks - 1 do
    Netsim.Engine.schedule eng
      ~at:(t0 +. (0.5 *. float_of_int k))
      (fun () ->
        if Transport.Tcp.state conn = Transport.Tcp.Established then begin
          let b = Bytes.init chunk (fun i -> pat (!sent + i)) in
          sent := !sent + chunk;
          Transport.Tcp.send_data conn b
        end)
  done;
  Scenarios.Oracle.start ~interval:1.0
    ~ticks:(int_of_float profile.horizon + 60)
    oracle;

  (* The action vocabulary the generator draws from. *)
  let action ~at:_ ~kind ~arg =
    match kind with
    | "ha_outage" ->
        let d = try float_of_string arg with _ -> 2.0 in
        Home_agent.crash topo.Scenarios.Topo.ha;
        Netsim.Engine.schedule eng
          ~at:(Netsim.Engine.now eng +. d)
          (fun () -> Home_agent.restart topo.Scenarios.Topo.ha)
    | "mh_move" ->
        let target = if arg = "b" then addr_b else addr_a in
        Mobile_host.move_to_static mh topo.Scenarios.Topo.visited_segment
          ~addr:target ~prefix:topo.Scenarios.Topo.visited_prefix ~gateway ()
    | _ -> ()
  in
  let fault = Netsim.Fault.apply ~action net plan in
  Netsim.Net.run net;
  Scenarios.Oracle.finish oracle;
  Conversation.deconfigure ~mh ~ch ~ch_addr;
  {
    violations = Scenarios.Oracle.violations oracle;
    checks_run = Netsim.Invariant.checks_run (Scenarios.Oracle.inv oracle);
    tcp_retx_aborts =
      Transport.Tcp.retx_aborts mh_tcp + Transport.Tcp.retx_aborts ch_tcp;
    fault = Netsim.Fault.stats fault;
    recorder_tail = Scenarios.Oracle.recorder_tail oracle;
  }

let violated_names outcome =
  List.sort_uniq String.compare
    (List.map (fun v -> v.Netsim.Invariant.name) outcome.violations)

let shrink_plan ?(profile = gentle) ~cell ~seed plan outcome =
  let orig = violated_names outcome in
  let still_failing p =
    let o = replay ~profile ~cell ~seed p in
    List.for_all (fun n -> List.mem n (violated_names o)) orig
  in
  Netsim.Chaos.shrink ~still_failing plan

let run ?(profile = gentle) ?(seed_lo = 0) ?(seed_hi = 4)
    ?(cells = default_cells) ?(shrink = true) () =
  if seed_hi < seed_lo then invalid_arg "Soak.run: empty seed range";
  let findings = ref [] in
  let checks = ref 0 in
  let aborts = ref 0 in
  let runs = ref 0 in
  for seed = seed_lo to seed_hi do
    List.iter
      (fun cell ->
        incr runs;
        let plan = generate_plan ~profile ~cell ~seed () in
        let outcome = replay ~profile ~cell ~seed plan in
        checks := !checks + outcome.checks_run;
        aborts := !aborts + outcome.tcp_retx_aborts;
        if outcome.violations <> [] then begin
          let shrunk, replays =
            if shrink then shrink_plan ~profile ~cell ~seed plan outcome
            else (plan, 0)
          in
          findings :=
            {
              f_seed = seed;
              f_cell = cell;
              f_plan = plan;
              f_outcome = outcome;
              f_shrunk = shrunk;
              f_replays = replays;
            }
            :: !findings
        end)
      cells
  done;
  {
    seed_lo;
    seed_hi;
    cells;
    runs = !runs;
    total_checks = !checks;
    total_retx_aborts = !aborts;
    findings = List.rev !findings;
  }

(* ---- repro files ----

   A repro file is a {!Netsim.Fault} plan JSON with two extra keys
   ([soak_seed], [cell]) naming the run that produced it; the extra keys
   are ignored by [Fault.plan_of_json], so the file stays loadable as a
   plain plan. *)

let repro_json ~seed ~cell plan =
  match Netsim.Fault.plan_to_json plan with
  | Netsim.Json.Obj fields ->
      Netsim.Json.Obj
        (fields
        @ [
            ("soak_seed", Netsim.Json.Int seed);
            ("cell", Netsim.Json.String (Grid.cell_to_string cell));
          ])
  | j -> j

let repro_to_string ~seed ~cell plan =
  Netsim.Json.to_string (repro_json ~seed ~cell plan)

let cell_of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let inc = String.sub s 0 i in
      let out = String.sub s (i + 1) (String.length s - i - 1) in
      match (Grid.in_of_string inc, Grid.out_of_string out) with
      | Some incoming, Some outgoing -> Some { Grid.incoming; outgoing }
      | _ -> None)

let repro_of_string s =
  match Netsim.Json.of_string s with
  | Error e -> Error e
  | Ok j -> (
      match Netsim.Fault.plan_of_json j with
      | Error e -> Error e
      | Ok plan ->
          let seed =
            Option.bind (Netsim.Json.member "soak_seed" j) Netsim.Json.get_int
          in
          let cell =
            Option.bind
              (Option.bind (Netsim.Json.member "cell" j)
                 Netsim.Json.get_string)
              cell_of_string
          in
          Ok (plan, seed, cell))

(* ---- the E17 table ---- *)

let e17_seed_lo = 0
let e17_seed_hi = 9

let run_e17 () = run ~profile:harsh ~seed_lo:e17_seed_lo ~seed_hi:e17_seed_hi ()

let mean l =
  match l with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

let run_table () =
  let report = run_e17 () in
  let rows =
    List.map
      (fun cell ->
        let fs =
          List.filter (fun f -> Grid.equal_cell f.f_cell cell) report.findings
        in
        let shrink_factors =
          List.filter_map
            (fun f ->
              let before = List.length f.f_plan.Netsim.Fault.events in
              let after = List.length f.f_shrunk.Netsim.Fault.events in
              if after = 0 then None
              else Some (float_of_int before /. float_of_int after))
            fs
        in
        let invariants =
          List.sort_uniq String.compare
            (List.concat_map (fun f -> violated_names f.f_outcome) fs)
        in
        [
          Grid.cell_to_string cell;
          string_of_int (report.seed_hi - report.seed_lo + 1);
          string_of_int (List.length fs);
          (if invariants = [] then "-" else String.concat " " invariants);
          (match mean shrink_factors with
          | None -> "-"
          | Some x -> Printf.sprintf "%.1fx" x);
          (match
             mean (List.map (fun f -> float_of_int f.f_replays) fs)
           with
          | None -> "-"
          | Some x -> Printf.sprintf "%.0f" x);
        ])
      report.cells
  in
  ( report,
    {
      Table.id = "E17";
      title = "Chaos soak: randomized fault plans under the invariant oracle";
      paper_claim =
        "the paper's mobility machinery must hold its safety properties \
         (bindings, caches, proxy ARP, stream integrity) under arbitrary \
         timing of failures, not just the scripted churn of E16";
      columns =
        [
          "cell";
          "seeds";
          "violations";
          "invariants hit";
          "mean shrink";
          "mean replays";
        ];
      rows;
      notes =
        [
          Printf.sprintf
            "harsh profile: %d events in a %.0f s horizon, home-agent \
             outages of %s s against a keepalive budget of %d renewals and \
             %d registration transmissions"
            harsh.events harsh.horizon
            (String.concat "/" (List.map (Printf.sprintf "%.0f") harsh.outages))
            harsh.max_renewals harsh.retry_limit;
          "every violation is delta-debugged to a minimal plan that still \
           violates the same invariants; 'mean shrink' is events-before / \
           events-after, 'mean replays' what the shrink cost";
          "deterministic: the seed derives the topology depth, the fault \
           plan and all probabilistic effects; the same sweep reproduces \
           the identical table";
        ];
    } )
