(** E11 - section 3.2: ICMP vs DNS care-of discovery. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
