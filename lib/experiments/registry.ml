let all =
  [
    ("E1", "Figure 1: basic Mobile IP asymmetric paths", E01_basic_mobile_ip.run);
    ("E2", "Figure 2: source-address filtering", E02_source_filtering.run);
    ("E3", "Figure 3: bi-directional tunneling", E03_bidirectional_tunneling.run);
    ("E4", "Figure 4: triangle-routing penalty", E04_triangle_routing.run);
    ("E5", "Figure 5: smart correspondent", E05_smart_correspondent.run);
    ("E6", "Figures 6/7: outgoing packet formats", E06_outgoing_formats.run);
    ("E7", "Figures 8/9: incoming packet formats", E07_incoming_formats.run);
    ("E8", "Figure 10: the 4x4 grid, live", E08_grid.run);
    ("E9", "Section 3.3: MTU and fragmentation", E09_mtu_fragmentation.run);
    ("E10", "Section 7.1.2: selection strategies", E10_selection_strategies.run);
    ("E11", "Section 3.2: care-of discovery", E11_discovery.run);
    ("E12", "Section 6.4: multicast membership", E12_multicast.run);
    ("E13", "Section 6: the series of tests", E13_best_choice.run);
    ("E14", "Section 2: connection durability", E14_durability.run);
    ("E15", "Section 3.2: load on shared Internet resources",
     E15_internet_load.run);
    ("E16", "Handover churn under fault injection", E16_handover_churn.run);
    ("E17", "Chaos soak under the invariant oracle", E17_chaos_soak.run);
    ("E18", "Simulator capacity: packets/sec under concurrent load",
     E18_sim_capacity.run);
    ("E19", "Failure signaling and home-agent failover", E19_failover.run);
    ("E20", "Observability overhead: recorder / JSONL / pcap ladder",
     E20_obs_overhead.run);
    ("E21", "Sharded scale-out: parallel domains with conservative lookahead",
     E21_scale_out.run);
    ("A1", "Section 4 ablation: source routing vs encapsulation",
     A01_source_routing.run);
    ("A2", "Sections 2/3.3 ablation: encapsulation formats",
     A02_encap_modes.run);
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_map (fun (i, _, f) -> if i = id then Some f else None) all

let run_all fmt =
  List.iter
    (fun (_, _, f) ->
      let table = f () in
      Table.render fmt table)
    all

let run_one fmt id =
  match find id with
  | None -> false
  | Some f ->
      Table.render fmt (f ());
      true
