(* E3 — Figure 3: bi-directional tunneling restores deliverability under
   filtering, at a quantified cost in distance and bytes. *)

open Netsim

let measure topo ~out_method =
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  Mobileip.Mobile_host.set_default_method topo.Scenarios.Topo.mh out_method;
  let mh_udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
  let flow =
    Transport.Udp_service.send mh_udp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~src_port:41100 ~dst_port:9
      (Bytes.make 512 'y')
  in
  Net.run net;
  Common.cost_of_flow net ~flow ~target:"ch"

let run () =
  let topo =
    Scenarios.Topo.build ~ch_position:Scenarios.Topo.Inside_home
      ~filtering:Scenarios.Topo.ingress_only ()
  in
  Scenarios.Topo.roam topo ();
  let dh = measure topo ~out_method:Mobileip.Grid.Out_DH in
  let ie = measure topo ~out_method:Mobileip.Grid.Out_IE in
  let row name (c : Common.flow_cost) =
    [
      name;
      (if c.Common.delivered then "yes" else "NO");
      string_of_int c.Common.hops;
      string_of_int c.Common.wire_bytes;
      Table.opt_ms c.Common.latency;
    ]
  in
  {
    Table.id = "E3";
    title = "Figure 3 - bi-directional tunneling (512-byte datagram MH->CH)";
    paper_claim =
      "tunneling outgoing packets via the home agent protects them from \
       scrutiny by routers; this lengthens the path but meets the \
       deliverability requirement";
    columns = [ "method"; "delivered"; "hops"; "wire bytes"; "latency" ];
    rows = [ row "Out-DH (filtered away)" dh; row "Out-IE (via home agent)" ie ];
    notes =
      [
        Printf.sprintf
          "reverse tunneling costs %d extra link traversals and %d extra \
           wire bytes on this topology, but delivery goes from 0%% to 100%%"
          (ie.Common.hops - dh.Common.hops)
          (ie.Common.wire_bytes - dh.Common.wire_bytes);
      ];
  }
