(** E20 — the observability overhead ladder: packets/sec on the E18
    capacity workload with nothing installed, the flight recorder (full
    and 1-in-N sampled), full JSONL export and pcap export, each rung
    reported as a delta against tracing-off. *)

type run_stats = {
  delivered : int;
  expected : int;
  wall : float;  (** host seconds inside the run *)
  packets_per_sec : float;
}

type rung = { name : string; stats : run_stats; vs_off : float }

val run_ladder : unit -> rung list
(** The measured ladder, "off" first; [vs_off] is the percentage change
    in packets/sec against the "off" rung (0 for "off" itself). *)

val run_once :
  ?record_rtt:(float -> unit) ->
  install:(Netsim.Net.t -> unit -> unit) ->
  unit ->
  run_stats
(** One capacity run with [install] hanging telemetry consumers before
    the workload starts; [install] returns the matching teardown, called
    after the run drains.  [record_rtt] receives each exchange's
    simulated round trip in ms (adds stamping cost — never used on timed
    rungs).  Exposed for the [profile] subcommand, which reuses the
    workload under the hot-path profiler. *)

val flows : int
(** Concurrent UDP ping-pong flows per run (the E18 top level). *)

val run : unit -> Table.t
