(** A2 - sections 2/3.3 ablation: encapsulation formats. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
