(* A2 — §2/§3.3 ablation: the choice of encapsulation format.

   The paper notes the 20-byte IP-in-IP overhead "can be minimized by use
   of Generic Routing Encapsulation or Minimal Encapsulation".  This
   ablation runs the same In-IE delivery under each mode and reports the
   end-to-end cost, plus how the fragmentation window (E9) moves. *)

open Netsim

let probe ~mode ~payload =
  let topo = Scenarios.Topo.build ~encap:mode () in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  Common.fresh_trace net;
  let ch_udp = Transport.Udp_service.get topo.Scenarios.Topo.ch_node in
  let flow =
    Transport.Udp_service.send ch_udp ~dst:topo.Scenarios.Topo.mh_home_addr
      ~src_port:46000 ~dst_port:9 (Bytes.make payload 'a')
  in
  Net.run net;
  Common.cost_of_flow net ~flow ~target:"mh"

let run () =
  let rows =
    List.concat_map
      (fun mode ->
        let small = probe ~mode ~payload:512 in
        (* 1460 + 28 = 1488: fits plain; 1488 + overhead may not. *)
        let near_mtu = probe ~mode ~payload:1460 in
        [
          [
            Mobileip.Encap.mode_to_string mode;
            string_of_int (Mobileip.Encap.overhead mode);
            string_of_int small.Common.wire_bytes;
            Table.opt_ms small.Common.latency;
            string_of_int near_mtu.Common.hops;
            (if near_mtu.Common.delivered then "yes" else "NO");
          ];
        ])
      Mobileip.Encap.all_modes
  in
  {
    Table.id = "A2";
    title = "Sections 2/3.3 ablation - encapsulation formats on the In-IE path";
    paper_claim =
      "IP-in-IP costs 20 bytes per packet; minimal encapsulation and GRE \
       trade that overhead differently";
    columns =
      [
        "mode";
        "overhead B";
        "wire bytes (512B payload)";
        "latency";
        "hops (1460B payload)";
        "delivered";
      ];
    rows;
    notes =
      [
        "the 1460-byte payload becomes a 1488-byte plain packet: +20 \
         (ipip) or +24 (gre) exceeds the 1500-byte MTU and fragments on \
         the tunneled leg (hence the extra hops), while minimal \
         encapsulation's +12 still fits — the smaller header does not just \
         save bytes, it narrows E9's packet-doubling window";
      ];
  }
