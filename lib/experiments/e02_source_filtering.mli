(** E2 - Figure 2: source-address filtering kills plain replies. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
