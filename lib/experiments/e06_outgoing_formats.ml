(* E6 — Figures 6/7: wire formats and sizes of the four outgoing methods,
   including the three encapsulation alternatives (§3.3: IP-in-IP adds 20
   bytes; GRE and minimal encapsulation trade that overhead differently). *)

open Netsim

let payload_size = 512

let home = Ipv4_addr.of_string "36.1.0.5"
let coa = Ipv4_addr.of_string "131.7.0.100"
let ha = Ipv4_addr.of_string "36.1.0.2"
let ch = Ipv4_addr.of_string "44.2.0.10"

let inner ~src =
  Ipv4_packet.make ~protocol:Ipv4_packet.P_udp ~src ~dst:ch
    (Ipv4_packet.Udp
       (Udp_wire.make ~src_port:5000 ~dst_port:9 (Bytes.make payload_size 'z')))

let run () =
  let plain_home = inner ~src:home in
  let plain_coa = inner ~src:coa in
  let base = Ipv4_packet.byte_length plain_home in
  let row name pkt addressing =
    let len = Ipv4_packet.byte_length pkt in
    (* Encoding must agree with the computed length. *)
    assert (Bytes.length (Ipv4_packet.encode pkt) = len);
    [ name; addressing; string_of_int len; string_of_int (len - base) ]
  in
  let wrap mode dst = Mobileip.Encap.wrap mode ~src:coa ~dst plain_home in
  {
    Table.id = "E6";
    title =
      Printf.sprintf
        "Figures 6/7 - outgoing packet formats (%d-byte UDP payload)"
        payload_size;
    paper_claim =
      "encapsulation typically adds 20 bytes in IPv4; minimal \
       encapsulation and GRE can reduce or vary this overhead";
    columns = [ "method"; "addressing"; "wire bytes"; "overhead" ];
    rows =
      [
        row "Out-DH (plain)" plain_home "S=home D=CH";
        row "Out-DT (plain)" plain_coa "S=coa D=CH";
        row "Out-IE ipip" (wrap Mobileip.Encap.Ipip ha) "s=coa d=HA | S=home D=CH";
        row "Out-IE minimal"
          (wrap Mobileip.Encap.Minimal ha)
          "s=coa d=HA | min-hdr";
        row "Out-IE gre" (wrap Mobileip.Encap.Gre ha) "s=coa d=HA | GRE";
        row "Out-DE ipip" (wrap Mobileip.Encap.Ipip ch) "s=coa d=CH | S=home D=CH";
        row "Out-DE minimal"
          (wrap Mobileip.Encap.Minimal ch)
          "s=coa d=CH | min-hdr";
        row "Out-DE gre" (wrap Mobileip.Encap.Gre ch) "s=coa d=CH | GRE";
      ];
    notes =
      [
        Printf.sprintf "ipip overhead %dB, minimal %dB, gre %dB — as specified"
          (Mobileip.Encap.overhead Mobileip.Encap.Ipip)
          (Mobileip.Encap.overhead Mobileip.Encap.Minimal)
          (Mobileip.Encap.overhead Mobileip.Encap.Gre);
        "all sizes verified against the actual wire encoding";
      ];
  }
