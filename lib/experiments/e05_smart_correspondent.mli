(** E5 - Figure 5: a smart correspondent goes direct after discovery. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
