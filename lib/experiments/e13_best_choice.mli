(** E13 - section 6: the series of tests, validated live. *)

val run : unit -> Table.t
(** Build the experiment's world(s), run the measurement, and return the
    result table. *)
