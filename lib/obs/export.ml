open Netsim

let ( let* ) = Result.bind

(* ---------- hex ---------- *)

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "bad hex digit %C" c)
    in
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok out
      else
        let* hi = digit s.[2 * i] in
        let* lo = digit s.[(2 * i) + 1] in
        Bytes.set out i (Char.chr ((hi lsl 4) lor lo));
        go (i + 1)
    in
    go 0

(* ---------- field helpers ---------- *)

let req j name conv =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))

(* ---------- drop reasons ---------- *)

let drop_reason_fields = function
  | Trace.Ingress_filter -> [ ("reason", Json.String "ingress-source-filter") ]
  | Trace.Transit_filter -> [ ("reason", Json.String "transit-filter") ]
  | Trace.Firewall s ->
      [ ("reason", Json.String "firewall"); ("detail", Json.String s) ]
  | Trace.Ttl_expired -> [ ("reason", Json.String "ttl-expired") ]
  | Trace.No_route -> [ ("reason", Json.String "no-route") ]
  | Trace.Mtu_exceeded -> [ ("reason", Json.String "mtu-exceeded") ]
  | Trace.Arp_unresolved -> [ ("reason", Json.String "arp-unresolved") ]
  | Trace.Not_for_me -> [ ("reason", Json.String "not-for-me") ]
  | Trace.Link_down -> [ ("reason", Json.String "link-down") ]
  | Trace.Link_loss -> [ ("reason", Json.String "link-loss") ]
  | Trace.Link_flap -> [ ("reason", Json.String "link-flap") ]
  | Trace.Partitioned -> [ ("reason", Json.String "partitioned") ]
  | Trace.Reassembly_timeout -> [ ("reason", Json.String "reassembly-timeout") ]
  | Trace.Custom s ->
      [ ("reason", Json.String "custom"); ("detail", Json.String s) ]

let drop_reason_of_json j =
  let* reason = req j "reason" Json.get_string in
  let detail () = req j "detail" Json.get_string in
  match reason with
  | "ingress-source-filter" -> Ok Trace.Ingress_filter
  | "transit-filter" -> Ok Trace.Transit_filter
  | "firewall" ->
      let* s = detail () in
      Ok (Trace.Firewall s)
  | "ttl-expired" -> Ok Trace.Ttl_expired
  | "no-route" -> Ok Trace.No_route
  | "mtu-exceeded" -> Ok Trace.Mtu_exceeded
  | "arp-unresolved" -> Ok Trace.Arp_unresolved
  | "not-for-me" -> Ok Trace.Not_for_me
  | "link-down" -> Ok Trace.Link_down
  | "link-loss" -> Ok Trace.Link_loss
  | "link-flap" -> Ok Trace.Link_flap
  | "partitioned" -> Ok Trace.Partitioned
  | "reassembly-timeout" -> Ok Trace.Reassembly_timeout
  | "custom" ->
      let* s = detail () in
      Ok (Trace.Custom s)
  | other -> Error (Printf.sprintf "unknown drop reason %S" other)

(* ---------- frames ---------- *)

let json_of_frame (f : Trace.frame_info) =
  Json.Obj
    [
      ("id", Json.Int f.Trace.id);
      ("flow", Json.Int f.Trace.flow);
      ("src", Json.String (Ipv4_addr.to_string f.Trace.pkt.Ipv4_packet.src));
      ("dst", Json.String (Ipv4_addr.to_string f.Trace.pkt.Ipv4_packet.dst));
      ( "proto",
        Json.Int
          (Ipv4_packet.protocol_to_int f.Trace.pkt.Ipv4_packet.protocol) );
      ("len", Json.Int (Ipv4_packet.byte_length f.Trace.pkt));
      ("pkt", Json.String (hex_of_bytes (Ipv4_packet.encode f.Trace.pkt)));
    ]

let frame_of_json j =
  let* id = req j "id" Json.get_int in
  let* flow = req j "flow" Json.get_int in
  let* hex = req j "pkt" Json.get_string in
  let* wire = bytes_of_hex hex in
  let* pkt = Ipv4_packet.decode wire in
  Ok { Trace.id; flow; pkt }

(* ---------- records ---------- *)

let json_of_record (r : Trace.record) =
  let frame f = ("frame", json_of_frame f) in
  let fields =
    match r.Trace.event with
    | Trace.Send { node; frame = f } ->
        [ ("type", Json.String "send"); ("node", Json.String node); frame f ]
    | Trace.Transmit { link; frame = f; bytes } ->
        [
          ("type", Json.String "transmit");
          ("link", Json.String link);
          ("bytes", Json.Int bytes);
          frame f;
        ]
    | Trace.Forward { node; in_iface; out_iface; frame = f } ->
        [
          ("type", Json.String "forward");
          ("node", Json.String node);
          ("in", Json.String in_iface);
          ("out", Json.String out_iface);
          frame f;
        ]
    | Trace.Drop { node; reason; frame = f } ->
        [ ("type", Json.String "drop"); ("node", Json.String node) ]
        @ drop_reason_fields reason
        @ [ frame f ]
    | Trace.Deliver { node; frame = f } ->
        [ ("type", Json.String "deliver"); ("node", Json.String node); frame f ]
    | Trace.Encapsulate { node; frame = f } ->
        [
          ("type", Json.String "encapsulate");
          ("node", Json.String node);
          frame f;
        ]
    | Trace.Decapsulate { node; frame = f } ->
        [
          ("type", Json.String "decapsulate");
          ("node", Json.String node);
          frame f;
        ]
    | Trace.Icmp_error { node; reason; frame = f } ->
        [ ("type", Json.String "icmp-error"); ("node", Json.String node) ]
        @ drop_reason_fields reason
        @ [ frame f ]
  in
  Json.Obj (("t", Json.Float r.Trace.time) :: fields)

let record_of_json j =
  let* time = req j "t" Json.get_float in
  let* kind = req j "type" Json.get_string in
  let node () = req j "node" Json.get_string in
  let frame () =
    match Json.member "frame" j with
    | None -> Error "missing field \"frame\""
    | Some f -> frame_of_json f
  in
  let* event =
    match kind with
    | "send" ->
        let* node = node () in
        let* frame = frame () in
        Ok (Trace.Send { node; frame })
    | "transmit" ->
        let* link = req j "link" Json.get_string in
        let* bytes = req j "bytes" Json.get_int in
        let* frame = frame () in
        Ok (Trace.Transmit { link; frame; bytes })
    | "forward" ->
        let* node = node () in
        let* in_iface = req j "in" Json.get_string in
        let* out_iface = req j "out" Json.get_string in
        let* frame = frame () in
        Ok (Trace.Forward { node; in_iface; out_iface; frame })
    | "drop" ->
        let* node = node () in
        let* reason = drop_reason_of_json j in
        let* frame = frame () in
        Ok (Trace.Drop { node; reason; frame })
    | "deliver" ->
        let* node = node () in
        let* frame = frame () in
        Ok (Trace.Deliver { node; frame })
    | "encapsulate" ->
        let* node = node () in
        let* frame = frame () in
        Ok (Trace.Encapsulate { node; frame })
    | "decapsulate" ->
        let* node = node () in
        let* frame = frame () in
        Ok (Trace.Decapsulate { node; frame })
    | "icmp-error" ->
        let* node = node () in
        let* reason = drop_reason_of_json j in
        let* frame = frame () in
        Ok (Trace.Icmp_error { node; reason; frame })
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  Ok { Trace.time; event }

let line_of_record r = Json.to_string (json_of_record r)

let write_trace_jsonl oc trace =
  let n = ref 0 in
  List.iter
    (fun r ->
      output_string oc (line_of_record r);
      output_char oc '\n';
      incr n)
    (Trace.records trace);
  !n

let read_trace_jsonl ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | "" -> go acc (lineno + 1)
    | line -> (
        match Json.of_string line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
            match record_of_json j with
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
            | Ok r -> go (r :: acc) (lineno + 1)))
  in
  go [] 1

let sink_to_channel oc r =
  output_string oc (line_of_record r);
  output_char oc '\n'

(* ---------- spans and engine stats ---------- *)

let json_of_span (s : Span.t) =
  let opt_time = function
    | Some t -> Json.Float t
    | None -> Json.Null
  in
  Json.Obj
    [
      ("flow", Json.Int s.Span.flow);
      ("send_time", opt_time s.Span.send_time);
      ("deliver_time", opt_time s.Span.deliver_time);
      ("latency", opt_time s.Span.latency);
      ("transmissions", Json.Int s.Span.transmissions);
      ("wire_bytes", Json.Int s.Span.wire_bytes);
      ("encap_depth", Json.Int s.Span.encap_depth);
      ( "drops",
        Json.List
          (List.map
             (fun (node, reason) ->
               Json.Obj
                 (("node", Json.String node) :: drop_reason_fields reason))
             s.Span.drops) );
      ( "delivered_to",
        Json.List (List.map (fun n -> Json.String n) s.Span.delivered_to) );
    ]

let json_of_engine_stats (s : Engine.stats) =
  Json.Obj
    [
      ("executed", Json.Int s.Engine.executed);
      ("pending", Json.Int s.Engine.pending);
      ("max_pending", Json.Int s.Engine.max_pending);
      ("truncated", Json.Int s.Engine.truncated);
      ("sim_time", Json.Float s.Engine.sim_time);
      ("wall_time", Json.Float s.Engine.wall_time);
      ("cpu_time", Json.Float s.Engine.cpu_time);
    ]
