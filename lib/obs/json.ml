(* The implementation moved into Netsim (so fault plans can be serialised
   without depending on this library); [Netobs.Json] remains the name the
   observability layer and its callers use. *)

include Netsim.Json
