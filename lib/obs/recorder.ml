(* The flight recorder: the user-facing capture API over a
   {!Netsim.Trace.ring}.

   The ring itself — the preallocated scalar-array store the data plane
   writes into — lives in [Trace] so the emit fast path reaches it with
   a direct known-function call (no generic dispatch, no float boxing).
   This module owns everything cold: creation, process-wide attachment,
   tailing, and the JSONL dump. *)

open Netsim

type t = { ring : Trace.ring; mutable installed : bool }

let create ?sample_every ?seed ~capacity () =
  { ring = Trace.make_ring ?sample_every ?seed ~capacity (); installed = false }

let capacity t = Trace.ring_capacity t.ring
let seen t = Trace.ring_seen t.ring
let kept t = Trace.ring_kept t.ring
let length t = Trace.ring_length t.ring
let sampled t flow = Trace.ring_sampled t.ring flow
let note t r = Trace.ring_store_record t.ring r
let clear t = Trace.ring_clear t.ring

let install t =
  if not t.installed then begin
    t.installed <- true;
    Trace.attach_ring t.ring
  end

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    Trace.detach_ring t.ring
  end

let records t = Trace.ring_records t.ring

let tail ?last t =
  let rs = records t in
  match last with
  | None -> rs
  | Some k ->
      if k < 0 then invalid_arg "Recorder.tail: negative count"
      else
        let n = List.length rs in
        if n <= k then rs else List.filteri (fun i _ -> i >= n - k) rs

let dump_jsonl oc t =
  let rs = records t in
  List.iter
    (fun r ->
      output_string oc (Export.line_of_record r);
      output_char oc '\n')
    rs;
  List.length rs
