(** Rendering for {!Netsim.Prof} snapshots — the [profile] subcommand's
    output. *)

val pp : Format.formatter -> Netsim.Prof.entry list -> unit
(** A table sorted by self time, descending: category, call count, self
    and total milliseconds, and each category's share of the summed self
    time. *)

val to_json : Netsim.Prof.entry list -> Json.t
(** [{"profile": [{"category", "calls", "self_s", "total_s"}...]}],
    sorted by self time, descending. *)
