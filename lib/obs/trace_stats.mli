(** Whole-trace aggregates: per-link byte accounting, drop and delivery
    statistics.  [Scenarios.Metrics] is a thin wrapper over this module;
    each function folds the record list once. *)

val link_bytes : Netsim.Trace.t -> (string * int) list
(** Total bytes transmitted per link, sorted by link name. *)

val total_bytes : Netsim.Trace.t -> int

val backbone_bytes : Netsim.Trace.t -> int
(** Bytes on point-to-point links (names containing ["<->"]). *)

val bytes_on : Netsim.Trace.t -> link:string -> int

val drops_by_reason : Netsim.Trace.t -> (Netsim.Trace.drop_reason * int) list
val delivered_count : Netsim.Trace.t -> node:string -> int
