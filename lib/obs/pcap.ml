(* Classic libpcap container (the original tcpdump format, not pcapng),
   LINKTYPE_RAW: each record's payload is a bare IPv4 datagram with no
   link-layer framing — exactly what the simulator has, and something
   tcpdump/Wireshark open directly.

   Capture times are the simulation clock.  Every byte is written
   little-endian regardless of host, so captures (and the golden-bytes
   test) are identical everywhere. *)

let magic = 0xa1b2c3d4
let version_major = 2
let version_minor = 4
let snaplen = 0xffff
let linktype_raw = 101
let global_header_length = 24
let record_header_length = 16

let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let file_header () =
  let b = Bytes.make global_header_length '\000' in
  set_u32 b 0 magic;
  set_u16 b 4 version_major;
  set_u16 b 6 version_minor;
  (* thiszone and sigfigs stay zero *)
  set_u32 b 16 snaplen;
  set_u32 b 20 linktype_raw;
  b

let record_header ~time ~len =
  let b = Bytes.make record_header_length '\000' in
  let sec = int_of_float time in
  let usec = int_of_float (((time -. float_of_int sec) *. 1e6) +. 0.5) in
  let sec, usec = if usec >= 1_000_000 then (sec + 1, 0) else (sec, usec) in
  set_u32 b 0 sec;
  set_u32 b 4 usec;
  set_u32 b 8 len;
  set_u32 b 12 len;
  b

let write_header oc = output_bytes oc (file_header ())

let append_packet oc ~time payload =
  output_bytes oc (record_header ~time ~len:(Bytes.length payload));
  output_bytes oc payload

(* One pcap packet per [Transmit] event — one per link traversal, the
   wire's point of view (a forwarded datagram appears once per hop, like
   capturing on every link at once).  Other event kinds are not wire
   occurrences and are skipped. *)
let packet_of_record (r : Netsim.Trace.record) =
  match r.event with
  | Netsim.Trace.Transmit { frame; _ } ->
      Some (r.time, Netsim.Ipv4_packet.encode frame.pkt)
  | _ -> None

let sink_to_channel oc (r : Netsim.Trace.record) =
  match packet_of_record r with
  | Some (time, payload) -> append_packet oc ~time payload
  | None -> ()

let write_records oc records =
  write_header oc;
  List.fold_left
    (fun n r ->
      match packet_of_record r with
      | Some (time, payload) ->
          append_packet oc ~time payload;
          n + 1
      | None -> n)
    0 records

let write_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_records oc records)

(* ---- reader (for tests and round-trip checks) ---- *)

let get_u16 b off = Bytes.get_uint16_le b off
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let really_read ic len =
  let b = Bytes.create len in
  really_input ic b 0 len;
  b

let read_channel ic =
  match really_read ic global_header_length with
  | exception End_of_file -> Error "pcap: truncated file header"
  | h ->
      if get_u32 h 0 <> magic then Error "pcap: bad magic (not LE classic pcap)"
      else if get_u16 h 4 <> version_major || get_u16 h 6 <> version_minor then
        Error "pcap: unsupported version"
      else if get_u32 h 20 <> linktype_raw then
        Error "pcap: unexpected linktype (want LINKTYPE_RAW)"
      else begin
        let packets = ref [] in
        let rec loop () =
          match really_read ic record_header_length with
          | exception End_of_file -> Ok (List.rev !packets)
          | rh -> (
              let sec = get_u32 rh 0 in
              let usec = get_u32 rh 4 in
              let incl = get_u32 rh 8 in
              match really_read ic incl with
              | exception End_of_file -> Error "pcap: truncated packet record"
              | payload ->
                  let time = float_of_int sec +. (float_of_int usec /. 1e6) in
                  packets := (time, payload) :: !packets;
                  loop ())
        in
        loop ()
      end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
