(** The flight recorder: a preallocated fixed-capacity ring buffer of the
    most recent trace records.

    Where the in-memory {!Netsim.Trace} log grows without bound and the
    JSONL sink formats every event, the recorder keeps only the last
    [capacity] records at a cost of one array store per event — cheap
    enough to leave attached during capacity-scale runs, yet when an
    invariant trips, the events leading up to the failure are right
    there.

    Optional {e 1-in-N flow sampling} thins high-rate captures without
    shredding conversations: a deterministic hash of [(flow, seed)]
    decides whether a flow is recorded, so a sampled capture holds every
    event of the selected flows and the same seed selects the same flows
    on every replay.

    A recorder is fed either process-wide ({!install}, a
    {!Netsim.Trace.attach_ring} that composes with [--trace-json] and
    [--pcap] sinks) or per-trace (pass {!note} to
    {!Netsim.Trace.add_observer}).  An attached ring receives event
    fields as plain arguments from the data plane's emit sites, so with
    only a recorder attached the hot path allocates nothing per
    event. *)

type t

val create : ?sample_every:int -> ?seed:int -> capacity:int -> unit -> t
(** A recorder holding the last [capacity] records.  [sample_every]
    (default 1 — keep everything) records roughly one flow in N;
    [seed] (default 0) varies which flows a sampled capture keeps.
    @raise Invalid_argument unless [capacity] and [sample_every] are
    positive. *)

val note : t -> Netsim.Trace.record -> unit
(** Offer one record: the sampling decision, then the ring store. *)

val install : t -> unit
(** Attach the recorder's ring process-wide (idempotent). *)

val uninstall : t -> unit
(** Detach {!install}'s ring (no-op when not installed). *)

val records : t -> Netsim.Trace.record list
(** The ring's contents, oldest first — at most [capacity] records. *)

val tail : ?last:int -> t -> Netsim.Trace.record list
(** The newest [last] records, oldest first (default: everything held).
    @raise Invalid_argument on a negative [last]. *)

val dump_jsonl : out_channel -> t -> int
(** Write the ring's contents as trace JSONL (same format as
    [--trace-json]; readable by {!Export.read_trace_jsonl}).  Returns the
    number of lines written. *)

val clear : t -> unit

val capacity : t -> int
val length : t -> int
(** Records currently held: [min kept capacity]. *)

val seen : t -> int
(** Records offered to {!note}, sampled-out ones included. *)

val kept : t -> int
(** Records that passed sampling and entered the ring (cumulative). *)

val sampled : t -> int -> bool
(** Whether the given flow id passes this recorder's sampling filter —
    exposed so tests and tools can predict a capture's contents. *)
