type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_bounds : float array;
  h_counts : int array;
  mutable h_overflow : int;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type registry = { metrics : (string, string * metric) Hashtbl.t }
(* name -> (help, metric) *)

let create () = { metrics = Hashtbl.create 32 }

let default_latency_buckets_ms =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0 |]

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let find_or_create reg ~help name make match_kind =
  match Hashtbl.find_opt reg.metrics name with
  | Some (_, m) -> (
      match match_kind m with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Netobs.Metrics: %S already registered as a %s"
               name (kind_name m)))
  | None ->
      let x, m = make () in
      Hashtbl.add reg.metrics name (help, m);
      x

let counter reg ?(help = "") name =
  find_or_create reg ~help name
    (fun () ->
      let c = { c_value = 0 } in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)

let gauge reg ?(help = "") name =
  find_or_create reg ~help name
    (fun () ->
      let g = { g_value = 0.0 } in
      (g, M_gauge g))
    (function M_gauge g -> Some g | _ -> None)

let histogram reg ?(help = "") ?(buckets = default_latency_buckets_ms) name =
  find_or_create reg ~help name
    (fun () ->
      if Array.length buckets = 0 then
        invalid_arg "Netobs.Metrics.histogram: empty buckets";
      Array.iteri
        (fun i b ->
          if i > 0 && buckets.(i - 1) >= b then
            invalid_arg
              "Netobs.Metrics.histogram: bucket bounds must be strictly \
               increasing")
        buckets;
      let h =
        {
          h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets) 0;
          h_overflow = 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      (h, M_histogram h))
    (function M_histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.h_bounds in
  let rec place i =
    if i >= n then h.h_overflow <- h.h_overflow + 1
    else if v <= h.h_bounds.(i) then h.h_counts.(i) <- h.h_counts.(i) + 1
    else place (i + 1)
  in
  place 0;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

(* ---------- snapshots ---------- *)

type hist_view = {
  buckets : (float * int) array;
  overflow : int;
  count : int;
  sum : float;
  minimum : float;
  maximum : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_view
type sample = { name : string; help : string; value : value }

let view_of_histogram h =
  {
    buckets = Array.mapi (fun i b -> (b, h.h_counts.(i))) h.h_bounds;
    overflow = h.h_overflow;
    count = h.h_count;
    sum = h.h_sum;
    minimum = (if h.h_count = 0 then 0.0 else h.h_min);
    maximum = (if h.h_count = 0 then 0.0 else h.h_max);
  }

(* Bucket-interpolated percentile: walk the cumulative counts to the
   bucket holding the target rank, then interpolate linearly inside it.
   The first bucket's lower edge is the observed minimum, and the
   overflow bucket's upper edge the observed maximum, so estimates never
   leave the observed range — and with all mass in one bucket the
   interpolation spans [min, max] instead of inventing bound-width
   precision the histogram does not have. *)
let percentile (h : hist_view) p =
  if h.count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let target = p /. 100.0 *. float_of_int h.count in
    let nb = Array.length h.buckets in
    let clamp v = Float.max h.minimum (Float.min h.maximum v) in
    let interp ~lower ~upper ~cum ~n =
      if n = 0 then clamp upper
      else
        clamp
          (lower
          +. (upper -. lower)
             *. ((target -. float_of_int cum) /. float_of_int n))
    in
    let rec walk i cum lower =
      if i >= nb then
        interp ~lower ~upper:h.maximum ~cum ~n:h.overflow
      else
        let bound, n = h.buckets.(i) in
        if float_of_int (cum + n) >= target && n > 0 then
          interp ~lower ~upper:bound ~cum ~n
        else walk (i + 1) (cum + n) (if n > 0 then bound else lower)
    in
    walk 0 0 h.minimum
  end

let snapshot reg =
  Hashtbl.fold
    (fun name (help, m) acc ->
      let value =
        match m with
        | M_counter c -> Counter c.c_value
        | M_gauge g -> Gauge g.g_value
        | M_histogram h -> Histogram (view_of_histogram h)
      in
      { name; help; value } :: acc)
    reg.metrics []
  |> List.sort (fun a b -> String.compare a.name b.name)

let value_kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let pp_snapshot fmt samples =
  Format.fprintf fmt "== metrics snapshot (%d series) ==@."
    (List.length samples);
  Format.fprintf fmt "  %-48s %-10s %s@." "name" "type" "value";
  List.iter
    (fun s ->
      (match s.value with
      | Counter n -> Format.fprintf fmt "  %-48s %-10s %d@." s.name "counter" n
      | Gauge v -> Format.fprintf fmt "  %-48s %-10s %g@." s.name "gauge" v
      | Histogram h ->
          Format.fprintf fmt
            "  %-48s %-10s count=%d sum=%g min=%g max=%g mean=%g p50=%g \
             p90=%g p99=%g@."
            s.name "histogram" h.count h.sum h.minimum h.maximum
            (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count)
            (percentile h 50.0) (percentile h 90.0) (percentile h 99.0);
          Format.fprintf fmt "  %-48s   buckets:" "";
          Array.iter
            (fun (b, n) -> Format.fprintf fmt " <=%g:%d" b n)
            h.buckets;
          Format.fprintf fmt " >%g:%d@."
            (fst h.buckets.(Array.length h.buckets - 1))
            h.overflow);
      if s.help <> "" then Format.fprintf fmt "  %-48s   # %s@." "" s.help)
    samples

let snapshot_to_json samples =
  Json.Obj
    [
      ( "metrics",
        Json.List
          (List.map
             (fun s ->
               let base =
                 [
                   ("name", Json.String s.name);
                   ("type", Json.String (value_kind s.value));
                 ]
               in
               let base =
                 if s.help = "" then base
                 else base @ [ ("help", Json.String s.help) ]
               in
               let rest =
                 match s.value with
                 | Counter n -> [ ("value", Json.Int n) ]
                 | Gauge v -> [ ("value", Json.Float v) ]
                 | Histogram h ->
                     [
                       ("count", Json.Int h.count);
                       ("sum", Json.Float h.sum);
                       ("min", Json.Float h.minimum);
                       ("max", Json.Float h.maximum);
                       ("p50", Json.Float (percentile h 50.0));
                       ("p90", Json.Float (percentile h 90.0));
                       ("p99", Json.Float (percentile h 99.0));
                       ( "buckets",
                         Json.List
                           (Array.to_list
                              (Array.map
                                 (fun (b, n) ->
                                   Json.Obj
                                     [
                                       ("le", Json.Float b);
                                       ("count", Json.Int n);
                                     ])
                                 h.buckets)) );
                       ("overflow", Json.Int h.overflow);
                     ]
               in
               Json.Obj (base @ rest))
             samples) );
    ]
