(** libpcap export: trace captures tcpdump/Wireshark can open.

    Classic pcap (magic [0xa1b2c3d4], version 2.4) with LINKTYPE_RAW
    (101): each packet record is a bare IPv4 datagram as
    {!Netsim.Ipv4_packet.encode} lays it on the wire — checksums, options
    and encapsulation headers included.  One pcap packet is written per
    {!Netsim.Trace.Transmit} event, i.e. one per link traversal: the
    capture reads like tcpdump running on every link at once.  Other
    event kinds are not wire occurrences and are skipped.

    Timestamps carry the {e simulation} clock.  All multi-byte fields are
    written little-endian on every host, so output is byte-for-byte
    deterministic. *)

val linktype_raw : int
val global_header_length : int
val record_header_length : int

val file_header : unit -> Bytes.t
(** The 24-byte global header. *)

val record_header : time:float -> len:int -> Bytes.t
(** A 16-byte per-packet header ([incl_len = orig_len = len]). *)

val write_header : out_channel -> unit

val append_packet : out_channel -> time:float -> Bytes.t -> unit
(** Write one packet record (header + payload). *)

val packet_of_record : Netsim.Trace.record -> (float * Bytes.t) option
(** [Some (time, wire_bytes)] for a [Transmit] record, [None] otherwise. *)

val sink_to_channel : out_channel -> Netsim.Trace.record -> unit
(** A streaming sink for {!Netsim.Trace.add_sink}: appends each
    [Transmit] record as a pcap packet.  The caller writes the file
    header first ({!write_header}) and owns the channel. *)

val write_records : out_channel -> Netsim.Trace.record list -> int
(** Header plus every [Transmit] record; returns the packet count. *)

val write_file : string -> Netsim.Trace.record list -> int
(** {!write_records} to a fresh binary file. *)

val read_channel : in_channel -> ((float * Bytes.t) list, string) result
val read_file : string -> ((float * Bytes.t) list, string) result
(** Parse a capture this module wrote: [(timestamp, payload)] per packet,
    in file order.  Rejects foreign magic, versions and linktypes. *)
