open Netsim

type t = {
  flow : int;
  send_time : float option;
  deliver_time : float option;
  latency : float option;
  transmissions : int;
  wire_bytes : int;
  encap_depth : int;
  drops : (string * Trace.drop_reason) list;
  delivered_to : string list;
}

let rec packet_depth (pkt : Ipv4_packet.t) =
  match pkt.Ipv4_packet.payload with
  | Ipv4_packet.Encap inner
  | Ipv4_packet.Gre_encap inner
  | Ipv4_packet.Min_encap inner ->
      1 + packet_depth inner
  | _ -> 0

let of_flow trace ~flow =
  let records = Trace.flow_records trace ~flow in
  let send_time = ref None in
  let deliver_time = ref None in
  let encap_depth = ref 0 in
  let drops = ref [] in
  let delivered_to = ref [] in
  List.iter
    (fun r ->
      let frame = Trace.frame_of r.Trace.event in
      let depth = packet_depth frame.Trace.pkt in
      if depth > !encap_depth then encap_depth := depth;
      match r.Trace.event with
      | Trace.Send _ -> if !send_time = None then send_time := Some r.Trace.time
      | Trace.Deliver { node; _ } ->
          if !deliver_time = None then deliver_time := Some r.Trace.time;
          if not (List.mem node !delivered_to) then
            delivered_to := node :: !delivered_to
      | Trace.Drop { node; reason; _ } -> drops := (node, reason) :: !drops
      | _ -> ())
    records;
  let latency =
    match (!send_time, !deliver_time) with
    | Some t0, Some t1 -> Some (t1 -. t0)
    | _ -> None
  in
  {
    flow;
    send_time = !send_time;
    deliver_time = !deliver_time;
    latency;
    transmissions = Trace.transmissions trace ~flow;
    wire_bytes = Trace.wire_bytes trace ~flow;
    encap_depth = !encap_depth;
    drops = List.rev !drops;
    delivered_to = List.rev !delivered_to;
  }

let all trace = List.map (fun flow -> of_flow trace ~flow) (Trace.flows trace)

let pp fmt t =
  Format.fprintf fmt "flow %d: latency=%s hops=%d bytes=%d encap<=%d drops=%d"
    t.flow
    (match t.latency with
    | Some l -> Printf.sprintf "%.1fms" (l *. 1000.0)
    | None -> "-")
    t.transmissions t.wire_bytes t.encap_depth (List.length t.drops);
  match t.delivered_to with
  | [] -> ()
  | nodes ->
      Format.fprintf fmt " delivered=%s" (String.concat "," nodes)
