(** Structured export: trace events and metric snapshots as JSON / JSONL.

    Trace events round-trip: [record_of_json (json_of_record r)] restores
    an equal record.  The packet inside each frame is carried as its real
    wire encoding (hex), so a decoded trace rebuilds full packets —
    checksums included — alongside the human-oriented summary fields
    ([src], [dst], [proto], [len]) that make the JSONL greppable. *)

val json_of_record : Netsim.Trace.record -> Json.t
val record_of_json : Json.t -> (Netsim.Trace.record, string) result
val line_of_record : Netsim.Trace.record -> string
(** One JSONL line, no trailing newline. *)

val write_trace_jsonl : out_channel -> Netsim.Trace.t -> int
(** Write every record, one JSON object per line, oldest first.  Returns
    the number of lines written (= [Trace.length]). *)

val read_trace_jsonl : in_channel -> (Netsim.Trace.record list, string) result
(** Parse a JSONL stream produced by {!write_trace_jsonl}; blank lines are
    skipped. *)

val sink_to_channel : out_channel -> Netsim.Trace.record -> unit
(** A streaming sink for {!Netsim.Trace.set_sink}: writes each record as a
    JSONL line as it happens — telemetry from worlds the caller never sees
    (e.g. inside experiment runners). *)

val json_of_span : Span.t -> Json.t
val json_of_engine_stats : Netsim.Engine.stats -> Json.t
val hex_of_bytes : Bytes.t -> string
val bytes_of_hex : string -> (Bytes.t, string) result
