(** The metrics registry: named counters, gauges and fixed-bucket
    histograms with O(1) update.

    A {!registry} is an independent namespace; the CLI, tests and bench
    harness each create their own so snapshots are deterministic and never
    leak state between runs.  Lookup functions ([counter], [gauge],
    [histogram]) are find-or-create: asking twice for the same name
    returns the same instrument, so call sites can be written without
    threading instrument handles around.

    Snapshots are sorted by metric name, so rendering (human table or
    JSON) is deterministic regardless of registration order. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> ?help:string -> string -> counter
(** @raise Invalid_argument if the name is registered as another kind. *)

val gauge : registry -> ?help:string -> string -> gauge

val histogram : registry -> ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; values
    above the last bound land in an overflow bucket.  The default is
    {!default_latency_buckets_ms}.  [buckets] is only consulted on first
    creation.
    @raise Invalid_argument on empty or non-increasing bounds, or a kind
    clash. *)

val default_latency_buckets_ms : float array
(** [1; 2; 5; 10; 20; 50; 100; 200; 500; 1000] — suited to the
    simulator's millisecond-scale one-way latencies. *)

(** {1 Updates — all O(1) (histograms are O(#buckets), a constant)} *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_view = {
  buckets : (float * int) array;  (** (upper bound, count) — not cumulative *)
  overflow : int;
  count : int;
  sum : float;
  minimum : float;  (** 0 when empty *)
  maximum : float;  (** 0 when empty *)
}

type value = Counter of int | Gauge of float | Histogram of hist_view
type sample = { name : string; help : string; value : value }

val percentile : hist_view -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([0..100], clamped)
    by linear interpolation inside the bucket holding the target rank.
    The first bucket's lower edge is the observed minimum and the
    overflow bucket's upper edge the observed maximum, so estimates stay
    within [[minimum, maximum]].  0 on an empty histogram. *)

val snapshot : registry -> sample list
(** Sorted by name. *)

val pp_snapshot : Format.formatter -> sample list -> unit
(** Human-readable table; histograms get a second line with their bucket
    counts. *)

val snapshot_to_json : sample list -> Json.t
(** [{"metrics": [{"name": ..., "type": ..., "value"| histogram fields}]}] *)
