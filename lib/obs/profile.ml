(* Renderer for {!Netsim.Prof} snapshots: the sorted self/total table the
   [profile] subcommand prints, plus a JSON form for machine diffing. *)

open Netsim

let by_self entries =
  List.sort
    (fun a b -> compare b.Prof.self_s a.Prof.self_s)
    entries

let pp fmt entries =
  let entries = by_self entries in
  let total_self =
    List.fold_left (fun acc e -> acc +. e.Prof.self_s) 0.0 entries
  in
  Format.fprintf fmt "== hot-path profile (%d categories) ==@."
    (List.length entries);
  Format.fprintf fmt "  %-18s %12s %12s %12s %7s@." "category" "calls"
    "self ms" "total ms" "self %";
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-18s %12d %12.3f %12.3f %6.1f%%@."
        (Prof.label e.Prof.cat) e.Prof.calls (e.Prof.self_s *. 1e3)
        (e.Prof.total_s *. 1e3)
        (if total_self > 0.0 then 100.0 *. e.Prof.self_s /. total_self
         else 0.0))
    entries;
  Format.fprintf fmt "  %-18s %12s %12.3f@." "(sum of self)" ""
    (total_self *. 1e3)

let to_json entries =
  let entries = by_self entries in
  Json.Obj
    [
      ( "profile",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("category", Json.String (Prof.label e.Prof.cat));
                   ("calls", Json.Int e.Prof.calls);
                   ("self_s", Json.Float e.Prof.self_s);
                   ("total_s", Json.Float e.Prof.total_s);
                 ])
             entries) );
    ]
