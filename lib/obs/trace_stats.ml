open Netsim

let link_bytes trace =
  let table = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r.Trace.event with
      | Trace.Transmit { link; bytes; _ } ->
          Hashtbl.replace table link
            (bytes + Option.value (Hashtbl.find_opt table link) ~default:0)
      | _ -> ())
    (Trace.records trace);
  Hashtbl.fold (fun link bytes acc -> (link, bytes) :: acc) table []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let total_bytes trace =
  List.fold_left (fun acc (_, b) -> acc + b) 0 (link_bytes trace)

let backbone_bytes trace =
  List.fold_left
    (fun acc (link, b) ->
      if String.length link >= 3 && String.index_opt link '<' <> None then
        acc + b
      else acc)
    0 (link_bytes trace)

let bytes_on trace ~link =
  Option.value (List.assoc_opt link (link_bytes trace)) ~default:0

let drops_by_reason trace =
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.Trace.event with
      | Trace.Drop { reason; _ } ->
          Hashtbl.replace table reason
            (1 + Option.value (Hashtbl.find_opt table reason) ~default:0)
      | _ -> ())
    (Trace.records trace);
  Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) table []

let delivered_count trace ~node =
  List.fold_left
    (fun acc r ->
      match r.Trace.event with
      | Trace.Deliver { node = n; _ } when n = node -> acc + 1
      | _ -> acc)
    0 (Trace.records trace)
