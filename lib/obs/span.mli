(** Per-flow spans derived from a {!Netsim.Trace}.

    A span is the life of one flow, folded into the quantities the paper
    compares cells on: send→deliver latency, link traversals, wire bytes
    (the "load on the shared resources of the Internet", §3.2), maximum
    encapsulation depth, and every drop with its reason.  Spans are built
    from the trace's per-flow index, so deriving one walks only that
    flow's records (and transmissions/wire bytes are O(1) running
    counters). *)

type t = {
  flow : int;
  send_time : float option;  (** first Send *)
  deliver_time : float option;  (** first Deliver, anywhere *)
  latency : float option;  (** [deliver_time - send_time] when both exist *)
  transmissions : int;  (** link traversals — the "hops" metric *)
  wire_bytes : int;
  encap_depth : int;
      (** deepest encapsulation nesting observed on any of the flow's
          frames; 0 = never tunneled *)
  drops : (string * Netsim.Trace.drop_reason) list;  (** (node, reason) *)
  delivered_to : string list;
      (** nodes that received a delivery, in order of first delivery *)
}

val of_flow : Netsim.Trace.t -> flow:int -> t
val all : Netsim.Trace.t -> t list
(** One span per flow in the trace, ascending flow id. *)

val pp : Format.formatter -> t -> unit
(** One line: [flow 3: latency=93.0ms hops=13 bytes=1744 encap<=1 drops=0
    delivered=mh]. *)
