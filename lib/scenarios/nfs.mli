(** An NFS-like service with address-based trust (paper §3.1: "Many
    network services, including the majority of NFS servers, determine
    whether or not they can safely trust the host sending the packet
    solely based on the source address of the packet.").

    This is why home-address transparency matters beyond keeping TCP
    alive: a roaming host can use its home institution's file server only
    if its requests {e arrive bearing the home source address} — which,
    under ingress filtering, only the reverse tunnel (Out-IE) can deliver.
    It is also why ingress filtering exists at all: without it, "any
    machine on the Internet [could] impersonate any machine in our
    organization".

    Protocol (UDP port 2049): request = opcode READ (1) + filename;
    reply = OK (0) + data, or EACCES (13) when the client address is not
    in the export list. *)

module Server : sig
  type t

  val create :
    Netsim.Net.node ->
    exports:(string * Bytes.t) list ->
    trusted:Netsim.Ipv4_addr.Prefix.t list ->
    unit ->
    t
  (** Serve the given files to clients whose {e packet source address}
      falls inside one of the trusted prefixes. *)

  val requests_served : t -> int
  val requests_refused : t -> int
end

module Client : sig
  type result =
    | Contents of Bytes.t
    | Access_denied
    | No_such_file

  val pp_result : Format.formatter -> result -> unit

  val read :
    net:Netsim.Net.t ->
    Netsim.Net.node ->
    server:Netsim.Ipv4_addr.t ->
    ?src:Netsim.Ipv4_addr.t ->
    path:string ->
    unit ->
    result option
  (** One READ transaction; runs the network to completion.  [None] when
      no reply came back at all (e.g. the request died at a filter). *)
end
