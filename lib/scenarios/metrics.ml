open Netsim

(* All aggregation lives in Netobs.Trace_stats; these wrappers keep the
   historical Net-based interface the experiments use. *)

let link_bytes net = Netobs.Trace_stats.link_bytes (Net.trace net)
let total_bytes net = Netobs.Trace_stats.total_bytes (Net.trace net)
let backbone_bytes net = Netobs.Trace_stats.backbone_bytes (Net.trace net)
let bytes_on net ~link = Netobs.Trace_stats.bytes_on (Net.trace net) ~link
let drops_by_reason net = Netobs.Trace_stats.drops_by_reason (Net.trace net)
let delivered_count net ~node =
  Netobs.Trace_stats.delivered_count (Net.trace net) ~node
