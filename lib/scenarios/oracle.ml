open Netsim

type t = {
  world : Topo.t;
  inv : Invariant.t;
  mutable recorder : Netobs.Recorder.t option;
  mutable recorder_handle : Trace.observer option;
  mutable tail : Trace.record list;
      (* snapshot of the recorder at the first violation: the last-K
         events leading up to the failure, frozen before the run moves
         on and the ring wraps past them *)
}

let create world =
  {
    world;
    inv = Invariant.create world.Topo.net;
    recorder = None;
    recorder_handle = None;
    tail = [];
  }

let world t = t.world
let inv t = t.inv

let attach_recorder ?(capacity = 512) ?sample_every ?seed ?last t =
  if t.recorder = None then begin
    let r = Netobs.Recorder.create ?sample_every ?seed ~capacity () in
    t.recorder <- Some r;
    t.recorder_handle <-
      Some
        (Trace.add_observer (Net.trace t.world.Topo.net)
           (Netobs.Recorder.note r));
    Invariant.set_on_violation t.inv
      (Some (fun _ -> if t.tail = [] then t.tail <- Netobs.Recorder.tail ?last r))
  end

let recorder_tail t = t.tail

let detach_recorder t =
  (match t.recorder_handle with
  | Some h ->
      t.recorder_handle <- None;
      Trace.remove_observer (Net.trace t.world.Topo.net) h
  | None -> ());
  Invariant.set_on_violation t.inv None

let add_binding_lifetime ?(grace = 45.0) t =
  let w = t.world in
  Invariant.add_check t.inv ~name:"binding-lifetime" (fun () ->
      let now = Net.now w.Topo.net in
      let stale =
        List.find_opt
          (fun b -> now > Mobileip.Types.binding_expires_at b +. grace)
          (Mobileip.Home_agent.bindings w.Topo.ha)
      in
      match stale with
      | None -> None
      | Some b ->
          Some
            (Printf.sprintf
               "binding for %s expired at %.3f still in the table at %.3f"
               (Ipv4_addr.to_string b.Mobileip.Types.home)
               (Mobileip.Types.binding_expires_at b)
               now))

let add_withdrawal ?(grace = 5.0) t =
  let w = t.world in
  Invariant.add_check t.inv ~name:"withdrawal" (fun () ->
      let mh = w.Topo.mh in
      match Mobileip.Mobile_host.last_registration_failure mh with
      | None -> None
      | Some _ when Mobileip.Mobile_host.registered mh -> None
      | Some tf ->
          let now = Net.now w.Topo.net in
          if now <= tf +. grace then None
          else
            let home = w.Topo.mh_home_addr in
            let stale =
              List.find_opt
                (fun b ->
                  Ipv4_addr.equal b.Mobileip.Types.home home
                  && b.Mobileip.Types.registered_at < tf
                  && Mobileip.Types.binding_valid ~now b)
                (Mobileip.Correspondent.binding_cache w.Topo.ch)
            in
            Option.map
              (fun (b : Mobileip.Types.binding) ->
                Printf.sprintf
                  "registration failed at %.3f but correspondent still \
                   caches care-of %s (learned at %.3f) at %.3f"
                  tf
                  (Ipv4_addr.to_string b.Mobileip.Types.care_of)
                  b.Mobileip.Types.registered_at now)
              stale)

let add_proxy_arp ?(grace = 45.0) t =
  let w = t.world in
  let first_seen : (Ipv4_addr.t, float) Hashtbl.t = Hashtbl.create 4 in
  Invariant.add_check t.inv ~name:"proxy-arp-purge" (fun () ->
      let now = Net.now w.Topo.net in
      let valid_homes =
        List.filter_map
          (fun (b : Mobileip.Types.binding) ->
            if Mobileip.Types.binding_valid ~now b then Some b.home else None)
          (Mobileip.Home_agent.bindings w.Topo.ha)
      in
      let orphans =
        List.filter
          (fun a -> not (List.exists (Ipv4_addr.equal a) valid_homes))
          (Net.proxy_arp_entries (Mobileip.Home_agent.node w.Topo.ha))
      in
      (* Forget addresses that regained a binding or were removed. *)
      let gone =
        Hashtbl.fold
          (fun a _ acc ->
            if List.exists (Ipv4_addr.equal a) orphans then acc else a :: acc)
          first_seen []
      in
      List.iter (Hashtbl.remove first_seen) gone;
      List.iter
        (fun a ->
          if not (Hashtbl.mem first_seen a) then Hashtbl.add first_seen a now)
        orphans;
      let overdue =
        List.find_opt
          (fun a -> now -. Hashtbl.find first_seen a > grace)
          orphans
      in
      Option.map
        (fun a ->
          Printf.sprintf
            "proxy-ARP entry for %s has had no valid binding since %.3f \
             (now %.3f)"
            (Ipv4_addr.to_string a)
            (Hashtbl.find first_seen a)
            now)
        overdue)

let add_selector_discipline t =
  let w = t.world in
  Invariant.add_check t.inv ~name:"selector-discipline" (fun () ->
      match Mobileip.Mobile_host.selector w.Topo.mh with
      | None -> None
      | Some sel ->
          let offender =
            List.find_map
              (fun dst ->
                let m = Mobileip.Mobile_host.out_method_for w.Topo.mh ~dst in
                if
                  List.exists (Mobileip.Grid.equal_out m)
                    (Mobileip.Selector.failed_methods sel ~dst)
                then Some (dst, m)
                else None)
              (Mobileip.Selector.known_destinations sel)
          in
          Option.map
            (fun (dst, m) ->
              Printf.sprintf "sending to %s via %s, a method recorded failed"
                (Ipv4_addr.to_string dst)
                (Mobileip.Grid.out_to_string m))
            offender)

(* Failover discipline for worlds with a paired standby home agent:
   (a) the two agents never proxy-ARP for the same address at the same
   time (the failback ordering guarantees this), and (b) a crashed
   primary does not stay uncovered — the standby must take over within
   [grace] of the crash becoming observable.  No-op without a standby. *)
let add_ha_failover ?(grace = 10.0) t =
  let w = t.world in
  match w.Topo.ha_standby with
  | None -> ()
  | Some standby ->
      let down_since = ref None in
      Invariant.add_check t.inv ~name:"ha-failover-recovery" (fun () ->
          let now = Net.now w.Topo.net in
          let primary = w.Topo.ha in
          let p_entries =
            Net.proxy_arp_entries (Mobileip.Home_agent.node primary)
          in
          let s_entries =
            Net.proxy_arp_entries (Mobileip.Home_agent.node standby)
          in
          let dup =
            List.find_opt
              (fun a -> List.exists (Ipv4_addr.equal a) s_entries)
              p_entries
          in
          match dup with
          | Some a ->
              Some
                (Printf.sprintf
                   "both home agents proxy-ARP for %s at %.3f"
                   (Ipv4_addr.to_string a) now)
          | None ->
              if Mobileip.Home_agent.is_up primary then begin
                down_since := None;
                None
              end
              else begin
                (match !down_since with
                | None -> down_since := Some now
                | Some _ -> ());
                let t0 = Option.get !down_since in
                if
                  Mobileip.Home_agent.is_standby_active standby
                  || not (Mobileip.Home_agent.is_up standby)
                  || now -. t0 <= grace
                then None
                else
                  Some
                    (Printf.sprintf
                       "primary home agent down since %.3f but the standby \
                        has not taken over by %.3f (grace %.1f s)"
                       t0 now grace)
              end)

let add_recovery ~after t =
  let w = t.world in
  Invariant.add_final t.inv ~name:"eventual-recovery" (fun () ->
      let now = Net.now w.Topo.net in
      if now < after then None
      else
        let mh = w.Topo.mh in
        if Mobileip.Mobile_host.at_home mh || Mobileip.Mobile_host.registered mh
        then None
        else
          Some
            (Printf.sprintf
               "mobile host away and unregistered at %.3f, %.1f s after the \
                last scripted fault"
               now (now -. after)))

let add_tcp_stream ?(name = "tcp-stream") ~expected t conn =
  let error = ref None in
  let offset = ref 0 in
  Transport.Tcp.on_receive conn (fun data ->
      Bytes.iteri
        (fun i c ->
          let pos = !offset + i in
          let want = expected pos in
          if !error = None && c <> want then
            error :=
              Some
                (Printf.sprintf
                   "byte %d: got %C, expected %C (stream reordered, \
                    duplicated or corrupted)"
                   pos c want))
        data;
      offset := !offset + Bytes.length data);
  Invariant.add_check t.inv ~name (fun () -> !error)

let install_standard ?recovery_after t =
  add_binding_lifetime t;
  add_withdrawal t;
  add_proxy_arp t;
  add_selector_discipline t;
  add_ha_failover t;
  Option.iter (fun after -> add_recovery ~after t) recovery_after

let start ?interval ?ticks t = Invariant.start t.inv ?interval ?ticks ()
let check_now t = Invariant.check_now t.inv

let finish t =
  Invariant.finish t.inv;
  (* A run that ends violated without the callback having fired a useful
     snapshot (or with violations only found by the final checks) still
     gets whatever the ring holds now. *)
  (match t.recorder with
  | Some r when Invariant.violated t.inv && t.tail = [] ->
      t.tail <- Netobs.Recorder.tail r
  | _ -> ());
  detach_recorder t
let violations t = Invariant.violations t.inv
let violated t = Invariant.violated t.inv
