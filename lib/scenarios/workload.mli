(** Application workloads from the paper's motivating discussion (§6.4,
    §7.1.1): short-lived HTTP fetches, long-lived telnet sessions, DNS
    lookups, NFS-style RPC. *)

type tcp_session_stats = {
  established : bool;
  messages_echoed : int;
  client_retransmissions : int;
  final_state : Transport.Tcp.state;
  elapsed : float;
}

val tcp_echo_server : Netsim.Net.node -> port:int -> unit
(** Echo every received chunk back and keep the connection open. *)

val tcp_echo_session :
  net:Netsim.Net.t ->
  client:Netsim.Net.node ->
  server_addr:Netsim.Ipv4_addr.t ->
  port:int ->
  ?src:Netsim.Ipv4_addr.t ->
  ?messages:int ->
  ?spacing:float ->
  ?message_size:int ->
  unit ->
  tcp_session_stats
(** Connect, send [messages] chunks [spacing] seconds apart, count echoes;
    runs the network to completion.  A telnet-like long-lived session. *)

val http_fetch :
  net:Netsim.Net.t ->
  client:Netsim.Net.node ->
  server_addr:Netsim.Ipv4_addr.t ->
  ?src:Netsim.Ipv4_addr.t ->
  ?object_size:int ->
  unit ->
  bool * float
(** One short-lived HTTP-like exchange on port 80 (request, response,
    close).  Returns (completed, elapsed).  The server side is installed on
    first use per node. *)

val install_http_server : Netsim.Net.node -> ?object_size:int -> unit -> unit

val udp_request_response :
  net:Netsim.Net.t ->
  client:Netsim.Net.node ->
  server:Netsim.Net.node ->
  server_addr:Netsim.Ipv4_addr.t ->
  port:int ->
  ?src:Netsim.Ipv4_addr.t ->
  ?request_size:int ->
  ?response_size:int ->
  unit ->
  bool * float
(** One NFS/DNS-style datagram transaction; returns (answered, rtt). *)
