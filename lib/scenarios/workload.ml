open Netsim

type tcp_session_stats = {
  established : bool;
  messages_echoed : int;
  client_retransmissions : int;
  final_state : Transport.Tcp.state;
  elapsed : float;
}

let tcp_echo_server node ~port =
  let tcp = Transport.Tcp.get node in
  Transport.Tcp.listen tcp ~port (fun conn ->
      Transport.Tcp.on_receive conn (fun data ->
          Transport.Tcp.send_data conn data))

let tcp_echo_session ~net ~client ~server_addr ~port ?src ?(messages = 5)
    ?(spacing = 0.5) ?(message_size = 120) () =
  let tcp = Transport.Tcp.get client in
  let t0 = Net.now net in
  let conn = Transport.Tcp.connect tcp ?src ~dst:server_addr ~dst_port:port () in
  let echoed = ref 0 in
  let established = ref false in
  Transport.Tcp.on_state_change conn (fun st ->
      if st = Transport.Tcp.Established then established := true);
  Transport.Tcp.on_receive conn (fun _data -> incr echoed);
  let eng = Net.engine net in
  let rec send_message i =
    if i < messages && Transport.Tcp.state conn <> Transport.Tcp.Aborted then begin
      Transport.Tcp.send_data conn (Bytes.make message_size 'k');
      Engine.after eng spacing (fun () -> send_message (i + 1))
    end
  in
  send_message 0;
  Net.run net;
  {
    established = !established;
    messages_echoed = !echoed;
    client_retransmissions = Transport.Tcp.retransmissions conn;
    final_state = Transport.Tcp.state conn;
    elapsed = Net.now net -. t0;
  }

let install_http_server node ?(object_size = 2048) () =
  let tcp = Transport.Tcp.get node in
  (* Web servers pipeline: a window of 4 segments (see Transport.Tcp). *)
  Transport.Tcp.listen tcp ~window:4 ~port:Transport.Well_known.http (fun conn ->
      Transport.Tcp.on_receive conn (fun _request ->
          Transport.Tcp.send_data conn (Bytes.make object_size 'w');
          Transport.Tcp.close conn))

let http_fetch ~net ~client ~server_addr ?src ?(object_size = 2048) () =
  ignore object_size;
  let tcp = Transport.Tcp.get client in
  let t0 = Net.now net in
  let conn =
    Transport.Tcp.connect tcp ?src ~window:4 ~dst:server_addr
      ~dst_port:Transport.Well_known.http ()
  in
  let got = ref 0 in
  let closed = ref false in
  Transport.Tcp.on_receive conn (fun data -> got := !got + Bytes.length data);
  Transport.Tcp.on_state_change conn (fun st ->
      match st with
      | Transport.Tcp.Close_wait ->
          Transport.Tcp.close conn;
          closed := true
      | _ -> ());
  Transport.Tcp.send_data conn (Bytes.of_string "GET / HTTP/1.0\r\n\r\n");
  Net.run net;
  (!got > 0, Net.now net -. t0)

let udp_request_response ~net ~client ~server ~server_addr ~port ?src
    ?(request_size = 64) ?(response_size = 256) () =
  let server_udp = Transport.Udp_service.get server in
  Transport.Udp_service.listen server_udp ~port (fun svc dgram ->
      ignore
        (Transport.Udp_service.send svc ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src ~src_port:port
           ~dst_port:dgram.Transport.Udp_service.src_port
           (Bytes.make response_size 'r')));
  let client_udp = Transport.Udp_service.get client in
  let my_port = Transport.Udp_service.ephemeral_port client_udp in
  let t0 = Net.now net in
  let answered = ref false in
  let rtt = ref 0.0 in
  Transport.Udp_service.listen client_udp ~port:my_port (fun _svc _dgram ->
      answered := true;
      rtt := Net.now net -. t0);
  ignore
    (Transport.Udp_service.send client_udp ?src ~dst:server_addr
       ~src_port:my_port ~dst_port:port
       (Bytes.make request_size 'q'));
  Net.run net;
  (!answered, !rtt)
