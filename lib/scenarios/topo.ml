open Netsim

type ch_position = Inside_home | Remote | Near_visited | On_visited_segment

type filtering = {
  home_ingress : bool;
  visited_no_transit : bool;
  home_firewall : bool;
}

let no_filtering =
  { home_ingress = false; visited_no_transit = false; home_firewall = false }

let ingress_only =
  { home_ingress = true; visited_no_transit = false; home_firewall = false }

let strict =
  { home_ingress = true; visited_no_transit = true; home_firewall = false }

type t = {
  net : Net.t;
  home_prefix : Ipv4_addr.Prefix.t;
  home_segment : Net.segment;
  home_router : Net.node;
  ha : Mobileip.Home_agent.t;
  ha_standby : Mobileip.Home_agent.t option;
  visited_prefix : Ipv4_addr.Prefix.t;
  visited_segment : Net.segment;
  visited_router : Net.node;
  dhcp : Transport.Dhcp.Server.t;
  ch_node : Net.node;
  ch : Mobileip.Correspondent.t;
  ch_addr : Ipv4_addr.t;
  mh_node : Net.node;
  mh : Mobileip.Mobile_host.t;
  mh_home_addr : Ipv4_addr.t;
  backbone : Net.node list;
  dns_node : Net.node option;
  dns : Mobileip.Dns_ext.Server.t option;
  dns_addr : Ipv4_addr.t option;
  cellular_segment : Net.segment option;
  cellular_router : Net.node option;
}

let addr = Ipv4_addr.of_string
let prefix = Ipv4_addr.Prefix.of_string

(* Default shard count for worlds that don't pass [?shards] explicitly:
   the CLI's [--shards] sets it, the NETSIM_SHARDS environment variable
   seeds it (so CI can run the whole suite sharded without touching any
   call site), and 1 means unsharded. *)
let default_shards =
  ref
    (match Sys.getenv_opt "NETSIM_SHARDS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1)

let set_default_shards n =
  if n < 1 then invalid_arg "Topo.set_default_shards: need >= 1";
  default_shards := n

let build ?shards ?(backbone_hops = 4) ?(ch_position = Remote)
    ?(filtering = no_filtering)
    ?(ch_capability = Mobileip.Correspondent.Conventional)
    ?(notify_correspondents = false) ?(with_dns = false)
    ?(encap = Mobileip.Encap.Ipip) ?(link_latency = 0.010)
    ?(with_cellular = false) ?(mh_lifetime = 300) ?(mh_retry_base = 1.0)
    ?(mh_retry_cap = 8.0) ?(mh_retry_limit = 6) ?(with_standby_ha = false)
    ?(standby_detect_interval = 2.0) ?(standby_detect_timeout = 5.0) () =
  if backbone_hops < 2 then invalid_arg "Topo.build: need >= 2 backbone hops";
  let net = Net.create () in
  let home_prefix = prefix "36.1.0.0/16" in
  let visited_prefix = prefix "131.7.0.0/16" in
  let ch_prefix = prefix "44.2.0.0/16" in

  (* Backbone chain b0 .. b(n-1). *)
  let backbone =
    List.init backbone_hops (fun i -> Net.add_router net (Printf.sprintf "b%d" i))
  in
  let backbone_arr = Array.of_list backbone in
  let n = backbone_hops in
  (* Link b_i <-> b_{i+1}: prefix 10.0.i.0/30, left .1, right .2. *)
  for i = 0 to n - 2 do
    let p = prefix (Printf.sprintf "10.0.%d.0/30" i) in
    let left = Ipv4_addr.Prefix.host p 1 and right = Ipv4_addr.Prefix.host p 2 in
    ignore
      (Net.p2p net ~latency:link_latency ~prefix:p
         (backbone_arr.(i), Printf.sprintf "r%d" i, left)
         (backbone_arr.(i + 1), Printf.sprintf "l%d" (i + 1), right))
  done;
  let left_neighbour_addr i = addr (Printf.sprintf "10.0.%d.1" (i - 1)) in
  let right_neighbour_addr i = addr (Printf.sprintf "10.0.%d.2" i) in

  (* Home domain off b0. *)
  let home_router = Net.add_router net "hr" in
  let hr_wan = prefix "10.1.0.0/30" in
  ignore
    (Net.p2p net ~latency:link_latency ~prefix:hr_wan
       (home_router, "wan", Ipv4_addr.Prefix.host hr_wan 1)
       (backbone_arr.(0), "home", Ipv4_addr.Prefix.host hr_wan 2));
  let home_segment = Net.add_segment net ~name:"home-lan" () in
  let _hr_lan =
    Net.attach home_router home_segment ~ifname:"lan" ~addr:(addr "36.1.0.1")
      ~prefix:home_prefix
  in
  Routing.add_default (Net.routing home_router)
    ~gateway:(Ipv4_addr.Prefix.host hr_wan 2) ~iface:"wan";

  let ha_node = Net.add_host net "ha" in
  let ha_iface =
    Net.attach ha_node home_segment ~ifname:"eth0" ~addr:(addr "36.1.0.2")
      ~prefix:home_prefix
  in
  Routing.add_default (Net.routing ha_node) ~gateway:(addr "36.1.0.1")
    ~iface:"eth0";
  let ha =
    Mobileip.Home_agent.create ha_node ~home_iface:ha_iface ~encap
      ~notify_correspondents ()
  in

  (* Optional hot-standby home agent on the same segment. *)
  let ha_standby =
    if not with_standby_ha then None
    else begin
      let ha2_node = Net.add_host net "ha2" in
      let ha2_iface =
        Net.attach ha2_node home_segment ~ifname:"eth0" ~addr:(addr "36.1.0.4")
          ~prefix:home_prefix
      in
      Routing.add_default (Net.routing ha2_node) ~gateway:(addr "36.1.0.1")
        ~iface:"eth0";
      let ha2 =
        Mobileip.Home_agent.create ha2_node ~home_iface:ha2_iface ~encap
          ~notify_correspondents ()
      in
      (* Pair without arming the liveness tick: the world settles (fully
         drains) at least once before any experiment phase, which would
         consume the tick budget.  Callers arm with {!arm_standby} after
         settling. *)
      Mobileip.Home_agent.pair ~primary:ha ~standby:ha2
        ~detect_interval:standby_detect_interval
        ~detect_timeout:standby_detect_timeout ~watch_now:false ();
      Some ha2
    end
  in

  (* Visited domain off b(n-1). *)
  let visited_router = Net.add_router net "vr" in
  let vr_wan = prefix "10.2.0.0/30" in
  ignore
    (Net.p2p net ~latency:link_latency ~prefix:vr_wan
       (visited_router, "wan", Ipv4_addr.Prefix.host vr_wan 1)
       (backbone_arr.(n - 1), "visited", Ipv4_addr.Prefix.host vr_wan 2));
  let visited_segment = Net.add_segment net ~name:"visited-lan" () in
  let _vr_lan =
    Net.attach visited_router visited_segment ~ifname:"lan"
      ~addr:(addr "131.7.0.1") ~prefix:visited_prefix
  in
  Routing.add_default (Net.routing visited_router)
    ~gateway:(Ipv4_addr.Prefix.host vr_wan 2) ~iface:"wan";

  let dhcp_node = Net.add_host net "dhcpd" in
  ignore
    (Net.attach dhcp_node visited_segment ~ifname:"eth0"
       ~addr:(addr "131.7.0.2") ~prefix:visited_prefix);
  let dhcp =
    Transport.Dhcp.Server.create dhcp_node ~pool:visited_prefix
      ~first_host:100 ~last_host:199 ~gateway:(addr "131.7.0.1") ()
  in

  (* Correspondent. *)
  let ch_attach_index =
    match ch_position with
    | Inside_home | On_visited_segment -> -1
    | Remote -> n / 2
    | Near_visited -> n - 1
  in
  let ch_node = Net.add_host net "ch" in
  let ch_addr =
    match ch_position with
    | Inside_home ->
        ignore
          (Net.attach ch_node home_segment ~ifname:"eth0"
             ~addr:(addr "36.1.0.10") ~prefix:home_prefix);
        Routing.add_default (Net.routing ch_node) ~gateway:(addr "36.1.0.1")
          ~iface:"eth0";
        addr "36.1.0.10"
    | On_visited_segment ->
        ignore
          (Net.attach ch_node visited_segment ~ifname:"eth0"
             ~addr:(addr "131.7.0.10") ~prefix:visited_prefix);
        Routing.add_default (Net.routing ch_node) ~gateway:(addr "131.7.0.1")
          ~iface:"eth0";
        addr "131.7.0.10"
    | Remote | Near_visited ->
        let cr = Net.add_router net "cr" in
        let cr_wan = prefix "10.3.0.0/30" in
        ignore
          (Net.p2p net ~latency:link_latency ~prefix:cr_wan
             (cr, "wan", Ipv4_addr.Prefix.host cr_wan 1)
             (backbone_arr.(ch_attach_index), "corr", Ipv4_addr.Prefix.host cr_wan 2));
        let ch_segment = Net.add_segment net ~name:"ch-lan" () in
        ignore
          (Net.attach cr ch_segment ~ifname:"lan" ~addr:(addr "44.2.0.1")
             ~prefix:ch_prefix);
        Routing.add_default (Net.routing cr)
          ~gateway:(Ipv4_addr.Prefix.host cr_wan 2) ~iface:"wan";
        ignore
          (Net.attach ch_node ch_segment ~ifname:"eth0" ~addr:(addr "44.2.0.10")
             ~prefix:ch_prefix);
        Routing.add_default (Net.routing ch_node) ~gateway:(addr "44.2.0.1")
          ~iface:"eth0";
        addr "44.2.0.10"
  in
  let ch = Mobileip.Correspondent.create ch_node ~capability:ch_capability ~encap () in

  (* Backbone routing: stub prefixes plus the access links. *)
  let route_towards i target_index via_home via_visited via_ch p =
    let table = Net.routing backbone_arr.(i) in
    if target_index < i then
      Routing.add table ~gateway:(left_neighbour_addr i)
        ~prefix:p ~iface:(Printf.sprintf "l%d" i) ()
    else if target_index > i then
      Routing.add table ~gateway:(right_neighbour_addr i)
        ~prefix:p ~iface:(Printf.sprintf "r%d" i) ()
    else begin
      (* directly attached stub *)
      match (via_home, via_visited, via_ch) with
      | Some gw, _, _ -> Routing.add table ~gateway:gw ~prefix:p ~iface:"home" ()
      | _, Some gw, _ -> Routing.add table ~gateway:gw ~prefix:p ~iface:"visited" ()
      | _, _, Some gw -> Routing.add table ~gateway:gw ~prefix:p ~iface:"corr" ()
      | None, None, None -> ()
    end
  in
  for i = 0 to n - 1 do
    (* Home prefix and the home access link live at index 0. *)
    route_towards i 0 (Some (Ipv4_addr.Prefix.host hr_wan 1)) None None home_prefix;
    route_towards i 0 (Some (Ipv4_addr.Prefix.host hr_wan 1)) None None hr_wan;
    (* Visited prefix at index n-1. *)
    route_towards i (n - 1) None (Some (Ipv4_addr.Prefix.host vr_wan 1)) None
      visited_prefix;
    route_towards i (n - 1) None (Some (Ipv4_addr.Prefix.host vr_wan 1)) None
      vr_wan;
    (* Correspondent prefix, when it has its own domain. *)
    if ch_attach_index >= 0 then begin
      let cr_wan = prefix "10.3.0.0/30" in
      route_towards i ch_attach_index None None
        (Some (Ipv4_addr.Prefix.host cr_wan 1))
        ch_prefix;
      route_towards i ch_attach_index None None
        (Some (Ipv4_addr.Prefix.host cr_wan 1))
        cr_wan
    end
  done;

  (* Filtering policies (§3.1). *)
  if filtering.home_firewall then
    Net.set_filter home_router
      (Filter.of_rules
         [
           Filter.firewall_allow_tunnel_to ~external_iface:"wan"
             ~home_agent:(Mobileip.Home_agent.address ha);
           Filter.allow ~in_iface:"wan"
             ~dst_in:(Ipv4_addr.Prefix.make (Mobileip.Home_agent.address ha) 32)
             ();
           Filter.firewall_block_external ~external_iface:"wan"
             ~name:"home-firewall";
         ])
  else if filtering.home_ingress then
    Net.set_filter home_router
      (Filter.of_rules
         [
           Filter.ingress_source_filter ~external_iface:"wan"
             ~inside:[ home_prefix ];
         ]);
  if filtering.visited_no_transit then
    Net.set_filter visited_router
      (Filter.of_rules
         [ Filter.no_transit ~internal_iface:"lan" ~inside:[ visited_prefix ] ]);

  (* The mobile host, initially at home. *)
  let mh_home_addr = addr "36.1.0.5" in
  let mh_node = Net.add_host net "mh" in
  let mh_iface =
    Net.attach mh_node home_segment ~ifname:"eth0" ~addr:mh_home_addr
      ~prefix:home_prefix
  in
  Routing.add_default (Net.routing mh_node) ~gateway:(addr "36.1.0.1")
    ~iface:"eth0";
  let mh =
    Mobileip.Mobile_host.create mh_node ~iface:mh_iface ~home:mh_home_addr
      ~home_prefix ~home_agent:(Mobileip.Home_agent.address ha) ~encap
      ~lifetime:mh_lifetime ~retry_base:mh_retry_base ~retry_cap:mh_retry_cap
      ~retry_limit:mh_retry_limit ()
  in

  (* Optional cellular attachment near the visited domain (§1): a slow,
     high-latency, slightly lossy access link with its own address space
     and DHCP. *)
  let cellular_prefix = prefix "166.4.0.0/16" in
  let cell_wan = prefix "10.4.0.0/30" in
  let cellular_segment, cellular_router =
    if not with_cellular then (None, None)
    else begin
      let cr_cell = Net.add_router net "gw-cell" in
      ignore
        (Net.p2p net ~latency:0.150 ~bandwidth:9600.0 ~loss:0.02
           ~loss_seed:0x1996 ~prefix:cell_wan
           (cr_cell, "wan", Ipv4_addr.Prefix.host cell_wan 1)
           (backbone_arr.(n - 1), "cell", Ipv4_addr.Prefix.host cell_wan 2));
      let seg = Net.add_segment net ~name:"cellular-lan" ~latency:0.002 () in
      ignore
        (Net.attach cr_cell seg ~ifname:"lan" ~addr:(addr "166.4.0.1")
           ~prefix:cellular_prefix);
      Routing.add_default (Net.routing cr_cell)
        ~gateway:(Ipv4_addr.Prefix.host cell_wan 2) ~iface:"wan";
      let dhcp_cell = Net.add_host net "dhcpd-cell" in
      ignore
        (Net.attach dhcp_cell seg ~ifname:"eth0" ~addr:(addr "166.4.0.2")
           ~prefix:cellular_prefix);
      let (_ : Transport.Dhcp.Server.t) =
        Transport.Dhcp.Server.create dhcp_cell ~pool:cellular_prefix
          ~first_host:100 ~last_host:199 ~gateway:(addr "166.4.0.1") ()
      in
      (* Backbone routes toward the cellular stub. *)
      for i = 0 to n - 1 do
        let table = Net.routing backbone_arr.(i) in
        List.iter
          (fun p ->
            if i < n - 1 then
              Routing.add table ~gateway:(right_neighbour_addr i) ~prefix:p
                ~iface:(Printf.sprintf "r%d" i) ()
            else
              Routing.add table
                ~gateway:(Ipv4_addr.Prefix.host cell_wan 1)
                ~prefix:p ~iface:"cell" ())
          [ cellular_prefix; cell_wan ]
      done;
      (Some seg, Some cr_cell)
    end
  in

  (* Optional DNS service in the home domain. *)
  let dns_node, dns, dns_addr =
    if with_dns then begin
      let node = Net.add_host net "dns" in
      ignore
        (Net.attach node home_segment ~ifname:"eth0" ~addr:(addr "36.1.0.3")
           ~prefix:home_prefix);
      Routing.add_default (Net.routing node) ~gateway:(addr "36.1.0.1")
        ~iface:"eth0";
      let server = Mobileip.Dns_ext.Server.create node () in
      Mobileip.Dns_ext.Server.add_host server ~name:"mh.home" ~addr:mh_home_addr;
      (Some node, Some server, Some (addr "36.1.0.3"))
    end
    else (None, None, None)
  in

  (* Shard the world (sequential merged mode: event order stays
     bit-for-bit identical to unsharded).  The [~same] ties pin the
     mobile host with every router whose segment it can roam onto, so
     the partition survives the moves. *)
  let shard_target = match shards with Some n -> n | None -> !default_shards in
  if shard_target > 1 then begin
    let same =
      (mh_node, visited_router)
      ::
      (match cellular_router with Some r -> [ (mh_node, r) ] | None -> [])
    in
    Net.set_shards ~same net shard_target
  end;

  {
    net;
    home_prefix;
    home_segment;
    home_router;
    ha;
    ha_standby;
    visited_prefix;
    visited_segment;
    visited_router;
    dhcp;
    ch_node;
    ch;
    ch_addr;
    mh_node;
    mh;
    mh_home_addr;
    backbone;
    dns_node;
    dns;
    dns_addr;
    cellular_segment;
    cellular_router;
  }

let run t = Net.run t.net

let arm_standby ?ticks t =
  match t.ha_standby with
  | None -> ()
  | Some s -> Mobileip.Home_agent.watch s ?ticks ()

(* Chaos targets: the names the fault layer knows this world by.  Segment
   names and point-to-point link names as {!Netsim.Net} reports them to
   the fault hook. *)
let chaos_links t =
  let n = List.length t.backbone in
  let backbone_links =
    List.init (n - 1) (fun i -> Printf.sprintf "b%d<->b%d" i (i + 1))
  in
  [ "home-lan"; "visited-lan"; "hr<->b0"; Printf.sprintf "vr<->b%d" (n - 1) ]
  @ backbone_links

let chaos_cuts t =
  let n = List.length t.backbone in
  let names first count =
    List.init count (fun i -> Printf.sprintf "b%d" (first + i))
  in
  let mid = n / 2 in
  [
    (* isolate the home domain *)
    ([ "hr" ], [ "b0" ]);
    (* isolate the visited domain *)
    ([ "vr" ], [ Printf.sprintf "b%d" (n - 1) ]);
    (* split the backbone down the middle *)
    (names 0 mid, names mid (n - mid));
  ]

let roam t ?(on_registered = fun _ -> ()) () =
  Mobileip.Mobile_host.move_to_dhcp t.mh t.visited_segment ~on_registered ();
  run t

let roam_static t ?(on_registered = fun _ -> ()) () =
  Mobileip.Mobile_host.move_to_static t.mh t.visited_segment
    ~addr:(addr "131.7.0.200") ~prefix:t.visited_prefix
    ~gateway:(addr "131.7.0.1") ~on_registered ();
  run t

let roam_cellular t ?(on_registered = fun _ -> ()) () =
  match t.cellular_segment with
  | None ->
      invalid_arg "Topo.roam_cellular: build the world with ~with_cellular:true"
  | Some seg ->
      Mobileip.Mobile_host.move_to_dhcp t.mh seg ~on_registered ();
      run t

let come_home t =
  Mobileip.Mobile_host.return_home t.mh t.home_segment ();
  run t
