open Netsim

let op_read = 1
let status_ok = 0
let status_eacces = 13
let status_enoent = 2

module Server = struct
  type t = {
    exports : (string * Bytes.t) list;
    trusted : Ipv4_addr.Prefix.t list;
    mutable served : int;
    mutable refused : int;
  }

  let handle t udp (dgram : Transport.Udp_service.datagram) =
    let payload = dgram.Transport.Udp_service.payload in
    if Bytes.length payload >= 1 && Char.code (Bytes.get payload 0) = op_read
    then begin
      let path = Bytes.sub_string payload 1 (Bytes.length payload - 1) in
      let reply =
        if
          not
            (List.exists
               (Ipv4_addr.Prefix.mem dgram.Transport.Udp_service.src)
               t.trusted)
        then begin
          t.refused <- t.refused + 1;
          Bytes.make 1 (Char.chr status_eacces)
        end
        else begin
          match List.assoc_opt path t.exports with
          | Some data ->
              t.served <- t.served + 1;
              Bytes.cat (Bytes.make 1 (Char.chr status_ok)) data
          | None ->
              t.served <- t.served + 1;
              Bytes.make 1 (Char.chr status_enoent)
        end
      in
      ignore
        (Transport.Udp_service.send udp ~src:dgram.Transport.Udp_service.dst
           ~dst:dgram.Transport.Udp_service.src
           ~src_port:Transport.Well_known.nfs
           ~dst_port:dgram.Transport.Udp_service.src_port reply)
    end

  let create node ~exports ~trusted () =
    let t = { exports; trusted; served = 0; refused = 0 } in
    let udp = Transport.Udp_service.get node in
    Transport.Udp_service.listen udp ~port:Transport.Well_known.nfs
      (fun svc dgram -> handle t svc dgram);
    t

  let requests_served t = t.served
  let requests_refused t = t.refused
end

module Client = struct
  type result = Contents of Bytes.t | Access_denied | No_such_file

  let pp_result fmt = function
    | Contents data ->
        Format.fprintf fmt "contents (%d bytes)" (Bytes.length data)
    | Access_denied -> Format.pp_print_string fmt "EACCES"
    | No_such_file -> Format.pp_print_string fmt "ENOENT"

  let read ~net node ~server ?src ~path () =
    let udp = Transport.Udp_service.get node in
    let port = Transport.Udp_service.ephemeral_port udp in
    let result = ref None in
    Transport.Udp_service.listen udp ~port (fun svc dgram ->
        Transport.Udp_service.unlisten svc ~port;
        let payload = dgram.Transport.Udp_service.payload in
        if Bytes.length payload >= 1 then
          result :=
            (match Char.code (Bytes.get payload 0) with
            | 0 ->
                Some
                  (Contents (Bytes.sub payload 1 (Bytes.length payload - 1)))
            | 13 -> Some Access_denied
            | 2 -> Some No_such_file
            | _ -> None));
    let req =
      Bytes.cat (Bytes.make 1 (Char.chr op_read)) (Bytes.of_string path)
    in
    ignore
      (Transport.Udp_service.send udp ?src ~dst:server ~src_port:port
         ~dst_port:Transport.Well_known.nfs req);
    Net.run net;
    !result
end
