(** Trace post-processing used by experiments: per-link byte accounting and
    loss statistics — the "load on the shared resources of the Internet"
    the paper's §3.2 worries about.

    Since the observability layer landed this is a thin facade over
    [Netobs.Trace_stats]; the aggregation itself lives there so the CLI,
    tests and experiments all read the same numbers. *)

val link_bytes : Netsim.Net.t -> (string * int) list
(** Total bytes transmitted per link, sorted by link name. *)

val total_bytes : Netsim.Net.t -> int
(** Bytes across all links. *)

val backbone_bytes : Netsim.Net.t -> int
(** Bytes on inter-router links of the standard topology (link names
    containing ["<->"], i.e. every point-to-point link). *)

val bytes_on : Netsim.Net.t -> link:string -> int

val drops_by_reason : Netsim.Net.t -> (Netsim.Trace.drop_reason * int) list
(** Drop counts grouped by reason. *)

val delivered_count : Netsim.Net.t -> node:string -> int
(** Number of Deliver events at the node. *)
