(** Concrete Mobile IP invariants over a {!Topo} world.

    {!Netsim.Invariant} is the generic engine; this module knows the
    mobility layer.  Each [add_*] installs one named invariant built from
    the state-exposure accessors — the properties the chaos soak harness
    checks while faults play out:

    - {e binding-lifetime}: no binding outlives its granted lifetime in
      the home agent's table (beyond a purge-interval grace);
    - {e withdrawal}: after the mobile host abandons a registration, no
      correspondent keeps routing to the stale care-of address — the
      zero-lifetime withdrawal advert reached them or their cache entry
      expired;
    - {e proxy-arp-purge}: the home agent's proxy-ARP footprint shrinks
      with the binding table — no entry lingers without a valid binding;
    - {e selector-discipline}: the mobile host never sends via an
      outgoing method its selector has recorded as failed;
    - {e ha-failover-recovery}: with a standby home agent paired, the two
      agents never proxy-ARP for the same address simultaneously, and a
      crashed primary is covered by the standby within a grace period;
    - {e eventual-recovery}: once the last scripted fault is over, the
      mobile host ends the run registered (or home);
    - {e tcp-stream}: application bytes arrive in order, without
      duplication or corruption, against a caller-supplied reference
      stream.

    Graces default to generous values (wider than the home agent's purge
    interval, wider than a withdrawal round trip) so transient states are
    not misreported; tests shrink them to force violations quickly. *)

type t

val create : Topo.t -> t
(** An oracle over the world's network.  Installs nothing: callers pick
    invariants with the [add_*] functions or {!install_standard}. *)

val world : t -> Topo.t
val inv : t -> Netsim.Invariant.t
(** The underlying generic oracle (for [add_watch], [checks_run]...). *)

val add_binding_lifetime : ?grace:float -> t -> unit
(** Polled.  Default [grace] 45 s — wider than the default
    {!Mobileip.Home_agent.enable_purge} interval of 30 s, so a world with
    the purge enabled never trips it. *)

val add_withdrawal : ?grace:float -> t -> unit
(** Polled.  Violated when, [grace] (default 5 s) after a registration
    failure, the correspondent still holds a valid cache entry learned
    before the failure and the host has not re-registered. *)

val add_proxy_arp : ?grace:float -> t -> unit
(** Polled.  An entry must regain a valid binding or disappear within
    [grace] (default 45 s) of being orphaned. *)

val add_selector_discipline : t -> unit
(** Polled.  No-op until a selector is installed on the mobile host. *)

val add_ha_failover : ?grace:float -> t -> unit
(** Polled; no-op unless the world was built with a standby home agent.
    Violated when (a) primary and standby proxy-ARP for the same address
    at the same instant (the failback ordering must prevent this), or
    (b) the primary has been observably down for more than [grace]
    (default 10 s — wider than the default detection timeout of 5 s plus
    two 2 s detection intervals) while the healthy standby has still not
    taken over. *)

val add_recovery : after:float -> t -> unit
(** Final.  [after] is when the last scripted fault ends
    ({!Netsim.Fault.plan_end}); the bound is the run itself — by the time
    the event queue drains, a host that is away and unregistered has no
    pending retry left and will never recover. *)

val add_tcp_stream :
  ?name:string ->
  expected:(int -> char) ->
  t ->
  Transport.Tcp.conn ->
  unit
(** Check every byte the connection delivers against [expected offset].
    Owns the connection's [on_receive] callback.  [?name] (default
    ["tcp-stream"]) distinguishes multiple monitored connections. *)

val install_standard : ?recovery_after:float -> t -> unit
(** The polled invariants above (the failover one arms itself only in
    standby worlds), plus eventual recovery when [?recovery_after] is
    given.  (TCP stream monitors need a connection, so they are always
    explicit.) *)

(** {1 Flight recorder} *)

val attach_recorder :
  ?capacity:int -> ?sample_every:int -> ?seed:int -> ?last:int -> t -> unit
(** Attach a {!Netobs.Recorder} (default capacity 512, no sampling) as an
    observer on the world's trace.  At the {e first} invariant violation
    the recorder's newest [last] events (default: the whole ring) are
    snapshotted — the events leading up to the failure, frozen before the
    ring wraps past them — and exposed through {!recorder_tail}.
    Idempotent; {!finish} detaches the recorder (and, if the run ended
    violated before the snapshot fired, grabs the final ring contents
    instead). *)

val recorder_tail : t -> Netsim.Trace.record list
(** The snapshot captured at the first violation, oldest first; [[]] when
    no recorder was attached or nothing was violated. *)

(** {1 Running} — thin wrappers over {!Netsim.Invariant}. *)

val start : ?interval:float -> ?ticks:int -> t -> unit
val check_now : t -> unit
val finish : t -> unit
val violations : t -> Netsim.Invariant.violation list
val violated : t -> bool
