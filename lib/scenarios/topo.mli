(** The paper's recurring topologies, parameterised.

    The standard world has three stub domains joined by a chain of backbone
    routers:

    {v
      home domain (36.1/16)        backbone           visited (131.7/16)
      [ha][servers]--(hr)--(b0)--(b1)-..-(bn)--(vr)--[visited segment][mh]
                              |
                            (cr)  correspondent domain (44.2/16) [ch]
    v}

    - Figures 1-3: the correspondent far from the mobile host
      ([ch_position = Inside_home] for the exact Figure 2 filtering story,
      or [Remote]).
    - Figures 4-5: [Near_visited] — the correspondent one hop from the
      visited network while home is many hops away.
    - Row C: [On_visited_segment] — correspondent and mobile host share a
      link.

    Filtering knobs reproduce §3.1: ingress source-address filtering at the
    home boundary, transit prohibition at the visited boundary, and a
    firewall home boundary that admits only tunnels to the home agent
    (optionally hosting the home agent itself). *)

type ch_position =
  | Inside_home  (** on the home segment, like Figure 2's correspondent *)
  | Remote  (** own domain hanging off the middle of the backbone *)
  | Near_visited  (** own domain one backbone hop from the visited domain *)
  | On_visited_segment  (** same Ethernet segment as the mobile host *)

type filtering = {
  home_ingress : bool;
      (** boundary router drops outside packets claiming inside sources *)
  visited_no_transit : bool;
      (** visited boundary drops packets sourced from foreign addresses *)
  home_firewall : bool;
      (** home boundary admits only tunnels to the home agent from outside *)
}

val no_filtering : filtering
val ingress_only : filtering
val strict : filtering
(** Both ingress filtering at home and transit prohibition at the visited
    network — the world where only Out-IE works toward a conventional CH. *)

type t = {
  net : Netsim.Net.t;
  (* home domain *)
  home_prefix : Netsim.Ipv4_addr.Prefix.t;
  home_segment : Netsim.Net.segment;
  home_router : Netsim.Net.node;
  ha : Mobileip.Home_agent.t;
  ha_standby : Mobileip.Home_agent.t option;
  (* visited domain *)
  visited_prefix : Netsim.Ipv4_addr.Prefix.t;
  visited_segment : Netsim.Net.segment;
  visited_router : Netsim.Net.node;
  dhcp : Transport.Dhcp.Server.t;
  (* correspondent *)
  ch_node : Netsim.Net.node;
  ch : Mobileip.Correspondent.t;
  ch_addr : Netsim.Ipv4_addr.t;
  (* the mobile host, initially at home *)
  mh_node : Netsim.Net.node;
  mh : Mobileip.Mobile_host.t;
  mh_home_addr : Netsim.Ipv4_addr.t;
  (* misc *)
  backbone : Netsim.Net.node list;
  dns_node : Netsim.Net.node option;
  dns : Mobileip.Dns_ext.Server.t option;
  dns_addr : Netsim.Ipv4_addr.t option;
  cellular_segment : Netsim.Net.segment option;
  cellular_router : Netsim.Net.node option;
}

val set_default_shards : int -> unit
(** Shard count applied to subsequently built worlds that don't pass
    [?shards] (sequential merged mode — see {!Netsim.Net.set_shards};
    deterministic, event order identical to unsharded).  Initialised
    from the [NETSIM_SHARDS] environment variable (default 1); the CLI's
    [--shards] flag sets it.
    @raise Invalid_argument if the count is < 1. *)

val build :
  ?shards:int ->
  ?backbone_hops:int ->
  ?ch_position:ch_position ->
  ?filtering:filtering ->
  ?ch_capability:Mobileip.Correspondent.capability ->
  ?notify_correspondents:bool ->
  ?with_dns:bool ->
  ?encap:Mobileip.Encap.mode ->
  ?link_latency:float ->
  ?with_cellular:bool ->
  ?mh_lifetime:int ->
  ?mh_retry_base:float ->
  ?mh_retry_cap:float ->
  ?mh_retry_limit:int ->
  ?with_standby_ha:bool ->
  ?standby_detect_interval:float ->
  ?standby_detect_timeout:float ->
  unit ->
  t
(** Build the world.  Defaults: 4 backbone hops, [Remote] correspondent,
    no filtering, conventional correspondent, no ICMP notifications, no
    DNS server, IP-in-IP, 10 ms backbone links, registration lifetime
    300 s ([?mh_lifetime] — churn experiments shorten it so expiry and
    renewal happen within the run).  The registration backoff knobs
    ([?mh_retry_base], [?mh_retry_cap], [?mh_retry_limit]) pass through to
    {!Mobileip.Mobile_host.create} — chaos runs tighten them so a
    registration against a partitioned home agent gives up within the
    fault window rather than after it.  The mobile host starts at home
    and is not yet registered anywhere.

    [?with_cellular] adds a second way onto the Internet near the visited
    domain: a cellular-telephone-style attachment (paper §1's "cellular
    telephone and modem ... at about 40 cents per minute") — a segment
    behind a 150 ms, 9600 bit/s, slightly lossy access link, with its own
    DHCP service in 166.4.0.0/16.  Move the MH there with
    {!roam_cellular}.

    [?with_standby_ha] (default false) adds a second home agent "ha2" at
    36.1.0.4 on the home segment, paired as a hot standby of [ha] via
    {!Mobileip.Home_agent.pair} with the given detection interval
    (default 2 s) and timeout (default 5 s).  The liveness tick is NOT
    armed at build time — a settling drain would consume its budget; call
    {!arm_standby} after the world settles, before the phase whose
    crashes the standby must cover. *)

val arm_standby : ?ticks:int -> t -> unit
(** Arm (or re-arm) the standby home agent's liveness detection
    ({!Mobileip.Home_agent.watch}); no-op for worlds built without
    [~with_standby_ha:true].  The tick chain keeps the event queue alive
    for [ticks * interval] simulated seconds (default 60 ticks). *)

val roam : t -> ?on_registered:(bool -> unit) -> unit -> unit
(** Move the mobile host to the visited segment (DHCP attachment) and
    register; run the network until the registration completes. *)

val roam_static : t -> ?on_registered:(bool -> unit) -> unit -> unit
(** Like {!roam} but with a statically assigned care-of address, avoiding
    the DHCP exchange (useful when traces must stay minimal). *)

val roam_cellular : t -> ?on_registered:(bool -> unit) -> unit -> unit
(** Move the mobile host to the cellular attachment (requires
    [~with_cellular:true] at build time).
    @raise Invalid_argument otherwise. *)

val come_home : t -> unit
(** Return the mobile host to the home segment and deregister; runs the
    network until complete. *)

val run : t -> unit
(** Drain the event queue. *)

(** {1 Chaos targets}

    The world described in the vocabulary of {!Netsim.Chaos.budget}: which
    names the fault layer can aim at.  Both lists are deterministic
    functions of the build parameters, so a budget built from them is as
    replayable as the world itself. *)

val chaos_links : t -> string list
(** Every interesting link by the name the fault hook sees it under: the
    home and visited segments, the two access links, and the backbone
    chain links. *)

val chaos_cuts : t -> (string list * string list) list
(** Candidate partition cuts (node-name sets): isolate the home domain,
    isolate the visited domain, split the backbone down the middle. *)
