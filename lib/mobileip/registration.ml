open Netsim

type request = {
  home : Ipv4_addr.t;
  home_agent : Ipv4_addr.t;
  care_of : Ipv4_addr.t;
  lifetime : int;
  sequence : int;
}

type reply = {
  r_home : Ipv4_addr.t;
  r_care_of : Ipv4_addr.t;
  r_lifetime : int;
  r_sequence : int;
  r_code : Types.reg_code;
}

(* A deterministic keyed digest (FNV-style fold mixed with the key).  Not
   cryptographic; see the interface documentation.  The mix must mask to
   the full 32 bits the wire format carries: masking to 0x7fffffff here
   would pin the top bit to zero and halve the digest keyspace. *)
let authenticator ~key body =
  let h = ref 0x811c9dc5 in
  let mix byte = h := (!h lxor byte) * 0x01000193 land 0xffffffff in
  String.iter (fun c -> mix (Char.code c)) key;
  Bytes.iter (fun c -> mix (Char.code c)) body;
  String.iter (fun c -> mix (Char.code c)) key;
  !h land 0xffffffff

let put_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let put_u32 buf off v =
  put_u16 buf off ((v lsr 16) land 0xffff);
  put_u16 buf (off + 2) (v land 0xffff)

let get_u32 buf off = (get_u16 buf off lsl 16) lor get_u16 buf (off + 2)

let put_addr buf off a = put_u32 buf off (Int32.to_int (Ipv4_addr.to_int32 a) land 0xffffffff)

let get_addr buf off =
  Ipv4_addr.of_int32 (Int32.of_int (get_u32 buf off))

let op_request = 1
let op_reply = 3

(* Request: op(1) home(4) ha(4) coa(4) lifetime(2) seq(2) auth(4) = 21. *)
let request_length = 21

(* Reply: op(1) home(4) coa(4) lifetime(2) seq(2) code(1) auth(4) = 18. *)
let reply_length = 18

let encode_request ~key r =
  let buf = Bytes.make request_length '\000' in
  Bytes.set buf 0 (Char.chr op_request);
  put_addr buf 1 r.home;
  put_addr buf 5 r.home_agent;
  put_addr buf 9 r.care_of;
  put_u16 buf 13 r.lifetime;
  put_u16 buf 15 r.sequence;
  let auth = authenticator ~key (Bytes.sub buf 0 17) in
  put_u32 buf 17 auth;
  buf

let decode_request ~key buf =
  if Bytes.length buf <> request_length then Error "registration: bad length"
  else if Char.code (Bytes.get buf 0) <> op_request then
    Error "registration: not a request"
  else
    let auth = get_u32 buf 17 in
    if auth <> authenticator ~key (Bytes.sub buf 0 17) then
      Error "registration: authenticator mismatch"
    else
      Ok
        {
          home = get_addr buf 1;
          home_agent = get_addr buf 5;
          care_of = get_addr buf 9;
          lifetime = get_u16 buf 13;
          sequence = get_u16 buf 15;
        }

let is_request buf =
  Bytes.length buf = request_length && Char.code (Bytes.get buf 0) = op_request

let is_reply buf =
  Bytes.length buf = reply_length && Char.code (Bytes.get buf 0) = op_reply

let peek_request_home buf = if is_request buf then Some (get_addr buf 1) else None
let peek_request_home_agent buf =
  if is_request buf then Some (get_addr buf 5) else None
let peek_reply_home buf = if is_reply buf then Some (get_addr buf 1) else None

let encode_reply ~key r =
  let buf = Bytes.make reply_length '\000' in
  Bytes.set buf 0 (Char.chr op_reply);
  put_addr buf 1 r.r_home;
  put_addr buf 5 r.r_care_of;
  put_u16 buf 9 r.r_lifetime;
  put_u16 buf 11 r.r_sequence;
  Bytes.set buf 13 (Char.chr (Types.reg_code_to_int r.r_code));
  let auth = authenticator ~key (Bytes.sub buf 0 14) in
  put_u32 buf 14 auth;
  buf

let decode_reply ~key buf =
  if Bytes.length buf <> reply_length then Error "registration: bad length"
  else if Char.code (Bytes.get buf 0) <> op_reply then
    Error "registration: not a reply"
  else
    let auth = get_u32 buf 14 in
    if auth <> authenticator ~key (Bytes.sub buf 0 14) then
      Error "registration: authenticator mismatch"
    else
      match Types.reg_code_of_int (Char.code (Bytes.get buf 13)) with
      | None -> Error "registration: unknown code"
      | Some r_code ->
          Ok
            {
              r_home = get_addr buf 1;
              r_care_of = get_addr buf 5;
              r_lifetime = get_u16 buf 9;
              r_sequence = get_u16 buf 11;
              r_code;
            }

let pp_request fmt r =
  Format.fprintf fmt "reg-request home=%a ha=%a coa=%a life=%ds seq=%d"
    Ipv4_addr.pp r.home Ipv4_addr.pp r.home_agent Ipv4_addr.pp r.care_of
    r.lifetime r.sequence

let pp_reply fmt r =
  Format.fprintf fmt "reg-reply home=%a coa=%a life=%ds seq=%d %a" Ipv4_addr.pp
    r.r_home Ipv4_addr.pp r.r_care_of r.r_lifetime r.r_sequence
    Types.pp_reg_code r.r_code
