(** The DNS extension for care-of discovery (paper §3.2): "an extension to
    the Domain Name Service, similar to the current MX records... A mobile
    host that is away from home, but not currently changing location
    frequently, could register its care-of address with the extended DNS
    service.  When a smart correspondent looks up a host name and sees that
    it has a temporary address record in addition to the normal permanent
    address record, it then knows that it has the option to send packets
    directly to that temporary address."

    A compact single-server DNS with three message kinds over UDP port 53:
    query, response (permanent A record plus optional temporary record with
    TTL), and a dynamic update by which the mobile host publishes or
    withdraws its temporary record. *)

module Server : sig
  type t

  val create : Netsim.Net.node -> unit -> t
  val add_host : t -> name:string -> addr:Netsim.Ipv4_addr.t -> unit
  (** Register a permanent A record. *)

  val set_temporary :
    t -> name:string -> (Netsim.Ipv4_addr.t * int) option -> unit
  (** Directly set/clear a temporary record (address, TTL seconds) —
      normally done remotely via {!Client.publish_temporary}. *)

  val lookup :
    t -> name:string ->
    (Netsim.Ipv4_addr.t option * (Netsim.Ipv4_addr.t * int) option) option
  (** Server-side inspection: [None] for unknown names, otherwise the
      permanent record and any unexpired temporary record. *)

  val queries_served : t -> int
  val updates_applied : t -> int
end

module Client : sig
  type answer = {
    name : string;
    permanent : Netsim.Ipv4_addr.t option;
    temporary : (Netsim.Ipv4_addr.t * int) option;
        (** care-of address and remaining TTL *)
  }

  val resolve :
    Netsim.Net.node ->
    server:Netsim.Ipv4_addr.t ->
    name:string ->
    (answer -> unit) ->
    unit
  (** Send a query; the callback fires on the response (possibly never if
      the path drops it). *)

  val publish_temporary :
    Netsim.Net.node ->
    server:Netsim.Ipv4_addr.t ->
    ?src:Netsim.Ipv4_addr.t ->
    name:string ->
    care_of:Netsim.Ipv4_addr.t ->
    ttl:int ->
    unit ->
    unit
  (** Dynamic update installing the temporary record ([ttl = 0]
      withdraws it).  A mobile host publishes with its care-of source
      address — this very exchange is an In-DT/Out-DT conversation. *)
end
