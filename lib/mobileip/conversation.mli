(** The grid-cell conversation harness behind experiments E8 and E13.

    Runs a bidirectional request/response exchange between the mobile host
    and a correspondent under a chosen (incoming, outgoing) cell, and
    measures what the paper's Figure 10 claims qualitatively:

    - whether packets physically arrive in each direction, and by what
      path (hops = link traversals, wire bytes, one-way latency);
    - whether the cell is usable by connection-oriented transports: the
      reply must arrive addressed to the same address the mobile host used
      as its source — {!Grid.endpoint_consistent}, observed on real packets
      rather than assumed.

    The UDP runner forces both sides' methods and has the correspondent
    application answer to the mobile host's {e home} address (or, under
    In-DT, its temporary address), which is what lets the broken cells be
    exercised at all.  The TCP runner performs an actual connect/
    echo/close over the cell and reports whether the connection worked —
    only meaningful for cells whose methods the stacks can express. *)

type udp_result = {
  cell : Grid.cell;
  requests_sent : int;
  requests_delivered : int;  (** at the correspondent *)
  replies_sent : int;
  replies_delivered : int;  (** back at the mobile host *)
  transport_consistent : bool;
      (** every delivered reply was addressed to the source address the
          requests used *)
  request_hops : int;  (** link traversals of the last request *)
  reply_hops : int;
  request_wire_bytes : int;  (** total bytes on links for the last request *)
  reply_wire_bytes : int;
  request_latency : float option;  (** one-way, last request *)
  reply_latency : float option;
}

val pp_udp_result : Format.formatter -> udp_result -> unit

val configure :
  mh:Mobile_host.t ->
  ch:Correspondent.t ->
  ch_addr:Netsim.Ipv4_addr.t ->
  cell:Grid.cell ->
  Netsim.Ipv4_addr.t * Netsim.Ipv4_addr.t
(** Force both sides into the cell's methods — the correspondent's
    incoming method for the MH's home address, the MH's outgoing method
    for [ch_addr] (cleared for Out-DT, which is an application decision),
    and a pre-learned binding at the correspondent.  Returns
    [(home, care_of)].  The churn harness (E16) reuses this to run its own
    traffic pattern.  @raise Invalid_argument if the MH is at home. *)

val deconfigure :
  mh:Mobile_host.t -> ch:Correspondent.t -> ch_addr:Netsim.Ipv4_addr.t -> unit
(** Undo {!configure}'s forced methods. *)

val run_udp :
  net:Netsim.Net.t ->
  mh:Mobile_host.t ->
  ch:Correspondent.t ->
  ch_addr:Netsim.Ipv4_addr.t ->
  cell:Grid.cell ->
  ?requests:int ->
  ?payload_size:int ->
  ?port:int ->
  unit ->
  udp_result
(** Requires the MH to be away and registered, and the correspondent to be
    created with [Mobile_aware] capability (so methods can be forced); the
    harness seeds its binding cache itself.  Defaults: 3 requests of 64
    bytes on port 7. *)

type tcp_result = {
  t_cell : Grid.cell;
  connected : bool;
  echoed : bool;  (** request data came back *)
  final_state : Transport.Tcp.state;
  client_retransmissions : int;
}

val pp_tcp_result : Format.formatter -> tcp_result -> unit

val run_tcp :
  net:Netsim.Net.t ->
  mh:Mobile_host.t ->
  ch:Correspondent.t ->
  ch_addr:Netsim.Ipv4_addr.t ->
  cell:Grid.cell ->
  ?port:int ->
  unit ->
  tcp_result
(** A real TCP echo over the cell: the MH connects with the source address
    the cell's outgoing method implies, the correspondent's incoming method
    is forced for the home address.  Broken cells manifest as failed
    handshakes or aborted connections. *)
