(** The registration protocol between a mobile host and its home agent
    (paper §2): after obtaining a guest connection the MH "registers its
    new location with its home agent"; a lifetime of zero deregisters.

    Messages travel over UDP port 434 and are authenticated with a keyed
    message authenticator shared between the MH and its home agent.  (The
    authenticator is a simple deterministic keyed digest — a stand-in for
    the MD5-based authentication of the IETF specification, strong enough
    to exercise the accept/deny code paths.) *)

type request = {
  home : Netsim.Ipv4_addr.t;
  home_agent : Netsim.Ipv4_addr.t;
      (** where the registration must end up — read (unauthenticated) by a
          relaying foreign agent *)
  care_of : Netsim.Ipv4_addr.t;
  lifetime : int;  (** requested lifetime in seconds; 0 = deregister *)
  sequence : int;
}

type reply = {
  r_home : Netsim.Ipv4_addr.t;
  r_care_of : Netsim.Ipv4_addr.t;
  r_lifetime : int;  (** granted lifetime *)
  r_sequence : int;
  r_code : Types.reg_code;
}

val authenticator : key:string -> Bytes.t -> int
(** 32-bit keyed digest over a message body. *)

val encode_request : key:string -> request -> Bytes.t
val decode_request : key:string -> Bytes.t -> (request, string) result
(** Fails on truncation or authenticator mismatch. *)

val is_request : Bytes.t -> bool
val is_reply : Bytes.t -> bool

val peek_request_home : Bytes.t -> Netsim.Ipv4_addr.t option
val peek_request_home_agent : Bytes.t -> Netsim.Ipv4_addr.t option
val peek_reply_home : Bytes.t -> Netsim.Ipv4_addr.t option
(** Unauthenticated field reads used by a relaying foreign agent, which
    does not share the MH-HA key. *)

val encode_reply : key:string -> reply -> Bytes.t
val decode_reply : key:string -> Bytes.t -> (reply, string) result

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
