type out_method = Out_IE | Out_DE | Out_DH | Out_DT
type in_method = In_IE | In_DE | In_DH | In_DT
type cell = { incoming : in_method; outgoing : out_method }
type classification = Useful | Valid_but_unlikely | Broken

let all_out = [ Out_IE; Out_DE; Out_DH; Out_DT ]
let all_in = [ In_IE; In_DE; In_DH; In_DT ]

let all_cells =
  List.concat_map
    (fun incoming -> List.map (fun outgoing -> { incoming; outgoing }) all_out)
    all_in

(* The MH's transport endpoint is its home address except under Out-DT;
   the incoming method delivers to the home address except under In-DT. *)
let out_uses_home = function Out_IE | Out_DE | Out_DH -> true | Out_DT -> false
let in_delivers_home = function In_IE | In_DE | In_DH -> true | In_DT -> false

let endpoint_consistent c =
  out_uses_home c.outgoing = in_delivers_home c.incoming

let classify c =
  if not (endpoint_consistent c) then Broken
  else
    match (c.incoming, c.outgoing) with
    (* Row A: conventional correspondent. *)
    | In_IE, (Out_IE | Out_DE | Out_DH) -> Useful
    (* Row B: the MH should reply directly if the CH can send directly. *)
    | In_DE, Out_IE -> Valid_but_unlikely
    | In_DE, (Out_DE | Out_DH) -> Useful
    (* Row C: same segment — reply in a single link-layer hop too. *)
    | In_DH, (Out_IE | Out_DE) -> Valid_but_unlikely
    | In_DH, Out_DH -> Useful
    (* Row D: forgoing Mobile IP entirely. *)
    | In_DT, Out_DT -> Useful
    | (In_IE | In_DE | In_DH | In_DT), _ -> Broken

let works_with_tcp c = classify c <> Broken
let useful_cells = List.filter (fun c -> classify c = Useful) all_cells

type environment = {
  mobility_required : bool;
  privacy_required : bool;
  source_filtering_on_path : bool;
  ch_decapsulates : bool;
  ch_mobile_aware : bool;
  ch_knows_care_of : bool;
  same_segment : bool;
}

let default_environment =
  {
    mobility_required = true;
    privacy_required = false;
    source_filtering_on_path = true;
    ch_decapsulates = false;
    ch_mobile_aware = false;
    ch_knows_care_of = false;
    same_segment = false;
  }

let out_applicable env = function
  | Out_IE -> true (* must always work: only requires reaching the home agent *)
  | Out_DE -> env.ch_decapsulates || env.ch_mobile_aware
  | Out_DH -> env.same_segment || not env.source_filtering_on_path
  | Out_DT -> not env.mobility_required

let in_applicable env = function
  | In_IE -> true (* the home agent is always present *)
  | In_DE -> env.ch_mobile_aware && env.ch_knows_care_of
  | In_DH -> env.same_segment
  | In_DT -> not env.mobility_required

let cell_applicable env c =
  works_with_tcp c
  && out_applicable env c.outgoing
  && in_applicable env c.incoming
  && ((not env.privacy_required) || c.outgoing = Out_IE)

(* The series of tests (abstract, §6): each test narrows to a row, then the
   cheapest permitted outgoing method is chosen within it. *)
let best env =
  (* Privacy outranks efficiency: even a connection that needs no mobility
     support must not reveal the care-of address ("sending all outgoing
     packets indirectly via the home agent may be the method the user
     wants, even when other more efficient alternatives are available"). *)
  if env.privacy_required then { incoming = In_IE; outgoing = Out_IE }
  else if not env.mobility_required then { incoming = In_DT; outgoing = Out_DT }
  else if env.same_segment then { incoming = In_DH; outgoing = Out_DH }
  else begin
    let outgoing =
      if not env.source_filtering_on_path then Out_DH
      else if env.ch_decapsulates || env.ch_mobile_aware then Out_DE
      else Out_IE
    in
    if env.ch_mobile_aware && env.ch_knows_care_of then
      { incoming = In_DE; outgoing }
    else { incoming = In_IE; outgoing }
  end

let out_to_string = function
  | Out_IE -> "Out-IE"
  | Out_DE -> "Out-DE"
  | Out_DH -> "Out-DH"
  | Out_DT -> "Out-DT"

let in_to_string = function
  | In_IE -> "In-IE"
  | In_DE -> "In-DE"
  | In_DH -> "In-DH"
  | In_DT -> "In-DT"

let out_of_string = function
  | "Out-IE" | "out-ie" -> Some Out_IE
  | "Out-DE" | "out-de" -> Some Out_DE
  | "Out-DH" | "out-dh" -> Some Out_DH
  | "Out-DT" | "out-dt" -> Some Out_DT
  | _ -> None

let in_of_string = function
  | "In-IE" | "in-ie" -> Some In_IE
  | "In-DE" | "in-de" -> Some In_DE
  | "In-DH" | "in-dh" -> Some In_DH
  | "In-DT" | "in-dt" -> Some In_DT
  | _ -> None

let cell_to_string c =
  Printf.sprintf "%s/%s" (in_to_string c.incoming) (out_to_string c.outgoing)

let pp_out fmt m = Format.pp_print_string fmt (out_to_string m)
let pp_in fmt m = Format.pp_print_string fmt (in_to_string m)
let pp_cell fmt c = Format.pp_print_string fmt (cell_to_string c)

let pp_classification fmt c =
  Format.pp_print_string fmt
    (match c with
    | Useful -> "useful"
    | Valid_but_unlikely -> "valid-but-unlikely"
    | Broken -> "broken")

let describe_out = function
  | Out_IE ->
      "s=care-of d=home-agent | S=home D=correspondent (reverse tunnel)"
  | Out_DE -> "s=care-of d=correspondent | S=home D=correspondent"
  | Out_DH -> "S=home D=correspondent (plain)"
  | Out_DT -> "S=care-of D=correspondent (plain, no Mobile IP)"

let describe_in = function
  | In_IE -> "S=CH D=home, then s=home-agent d=care-of | S=CH D=home"
  | In_DE -> "s=CH d=care-of | S=CH D=home"
  | In_DH -> "S=CH D=home, link-layer addressed to the MH directly"
  | In_DT -> "S=CH D=care-of (plain, no Mobile IP)"

let describe_cell c =
  match (c.incoming, c.outgoing) with
  | In_IE, Out_IE -> "Most conservative: most reliable, least efficient"
  | In_IE, Out_DE ->
      "Requires only decapsulation capability of the correspondent host"
  | In_IE, Out_DH ->
      "Requires there to be no security-conscious routers on the path"
  | In_DE, Out_DE -> "Requires fully mobile-aware correspondent host"
  | In_DE, Out_DH ->
      "Requires there to be no security-conscious routers on the path"
  | In_DH, Out_DH -> "Requires both hosts to be on same network segment"
  | In_DT, Out_DT -> "Most efficient, but forgoes benefits of Mobile IP"
  | _ -> (
      match classify c with
      | Valid_but_unlikely -> "Valid, but unlikely to be used"
      | Broken -> "Does not work with current protocols such as TCP"
      | Useful -> "")

let equal_out (a : out_method) b = a = b
let equal_in (a : in_method) b = a = b
let equal_cell (a : cell) b = a = b
