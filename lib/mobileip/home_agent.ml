open Netsim

type t = {
  ha_node : Net.node;
  home_iface : Net.iface;
  auth_key : string;
  encap : Encap.mode;
  notify_correspondents : bool;
  notify_interval : float;
  max_lifetime : int;
  mutable binding_table : Types.binding list;
  last_notified : (Ipv4_addr.t, float) Hashtbl.t;
  mutable tunneled : int;
  mutable reverse_tunneled : int;
  mutable accepted : int;
  mutable denied : int;
  mutable next_tunnel_ident : int;
  mutable mcast_subs : (Ipv4_addr.t * Ipv4_addr.t) list;
      (* (group, subscriber home address) *)
  mutable mcast_relayed : int;
  mutable up : bool;  (* false while crashed: no replies, no forwarding *)
  mutable purged : int;  (* bindings removed by the periodic purge *)
  mutable standby : t option;  (* on a primary: its hot standby *)
  mutable standby_of : t option;  (* on a standby: the primary it guards *)
  mutable standby_active : bool;  (* the standby is currently serving *)
  mutable detect_interval : float;  (* liveness poll period (standby) *)
  mutable detect_timeout : float;  (* continuous downtime before takeover *)
  mutable takeovers : int;
  mutable last_failover : float option;
      (* seconds from first observing the primary down to taking over *)
}

let node t = t.ha_node
let address t = Net.iface_addr t.home_iface
let bindings t = t.binding_table

let packets_tunneled t = t.tunneled
let packets_reverse_tunneled t = t.reverse_tunneled
let registrations_accepted t = t.accepted
let registrations_denied t = t.denied

let tunnel_ident t =
  let i = t.next_tunnel_ident in
  t.next_tunnel_ident <- (if i >= 0xffff then 1 else i + 1);
  i

(* A passive standby holds a replica binding table but must stay inert on
   the data plane: no interception, no proxy-ARP, no claims, until a
   takeover activates it. *)
let is_passive_standby t = t.standby_of <> None && not t.standby_active

let drop_replica s home =
  s.binding_table <-
    List.filter
      (fun b -> not (Ipv4_addr.equal b.Types.home home))
      s.binding_table

let store_replica s (b : Types.binding) =
  drop_replica s b.Types.home;
  s.binding_table <- b :: s.binding_table

let remove_binding t home =
  t.binding_table <-
    List.filter
      (fun b -> not (Ipv4_addr.equal b.Types.home home))
      t.binding_table;
  Net.unclaim_address t.ha_node home;
  Net.remove_proxy_arp t.ha_node t.home_iface home;
  (* Soft-state replication: mirror live removals to the standby.  Crash
     teardown (up already false) must NOT wipe the replica — it is exactly
     what the standby serves from after taking over. *)
  match t.standby with
  | Some s when t.up -> drop_replica s home
  | Some _ | None -> ()

(* Expiry is lazy: an expired binding stops matching the moment it is next
   consulted, and its proxy-ARP/claim state is torn down then.  (A timer
   would force the event queue to run out to the expiry instant, making
   every full simulation drain jump hundreds of simulated seconds.) *)
let binding_for t home =
  let now = Net.node_now t.ha_node in
  match
    List.find_opt (fun b -> Ipv4_addr.equal b.Types.home home) t.binding_table
  with
  | Some b when Types.binding_valid ~now b -> Some b
  | Some _ ->
      remove_binding t home;
      None
  | None -> None

let install_binding t (b : Types.binding) =
  t.binding_table <-
    b
    :: List.filter
         (fun o -> not (Ipv4_addr.equal o.Types.home b.Types.home))
         t.binding_table;
  Net.claim_address t.ha_node b.Types.home;
  Net.add_proxy_arp t.ha_node t.home_iface b.Types.home;
  (* Update caches of hosts and routers on the home segment so traffic for
     the mobile host now reaches us (gratuitous proxy ARP, RFC 1027). *)
  Net.gratuitous_arp t.ha_node t.home_iface b.Types.home;
  match t.standby with
  | Some s when t.up -> store_replica s b
  | Some _ | None -> ()

(* Eager counterpart to the lazy expiry above: sweep the whole table once,
   tearing down proxy-ARP/claim state for every expired binding.  Lazy
   expiry only fires when a particular binding is consulted, so a mobile
   host that went quiet would otherwise leave its proxy-ARP entry parked on
   the home segment indefinitely. *)
let purge_expired t =
  let now = Net.node_now t.ha_node in
  let expired =
    List.filter
      (fun b -> not (Types.binding_valid ~now b))
      t.binding_table
  in
  List.iter (fun b -> remove_binding t b.Types.home) expired;
  t.purged <- t.purged + List.length expired;
  List.length expired

let bindings_purged t = t.purged

let enable_purge t ?(interval = 30.0) ?(ticks = 20) () =
  if interval <= 0.0 then
    invalid_arg "Home_agent.enable_purge: interval must be positive";
  let eng = Net.node_engine t.ha_node in
  (* Bounded tick count, like the keepalive budget: an unbounded timer
     would keep the event queue from ever draining. *)
  let rec tick remaining =
    if remaining > 0 then
      Engine.after eng interval (fun () ->
          if t.up then ignore (purge_expired t);
          tick (remaining - 1))
  in
  tick ticks

let handle_registration t udp (dgram : Transport.Udp_service.datagram) =
  if not t.up then ()
  else
  match Registration.decode_request ~key:t.auth_key dgram.payload with
  | Error _ ->
      t.denied <- t.denied + 1;
      let reply =
        {
          Registration.r_home = Ipv4_addr.any;
          r_care_of = Ipv4_addr.any;
          r_lifetime = 0;
          r_sequence = 0;
          r_code = Types.Reg_denied_auth;
        }
      in
      ignore
        (Transport.Udp_service.send udp ~src:dgram.dst ~dst:dgram.src
           ~src_port:Transport.Well_known.mip_registration
           ~dst_port:dgram.src_port
           (Registration.encode_reply ~key:t.auth_key reply))
  | Ok req ->
      (* A retransmitted request (same sequence, same care-of) is
         idempotent: the reply may have been lost and the mobile host is
         retrying.  Only genuinely old sequences — or replays naming a
         different care-of address — are stale. *)
      let stale =
        List.exists
          (fun b ->
            Ipv4_addr.equal b.Types.home req.Registration.home
            && (b.Types.sequence > req.Registration.sequence
               || (b.Types.sequence = req.Registration.sequence
                  && not
                       (Ipv4_addr.equal b.Types.care_of
                          req.Registration.care_of))))
          t.binding_table
      in
      let code, granted =
        if stale then (Types.Reg_denied_stale, 0)
        else (Types.Reg_accepted, min req.Registration.lifetime t.max_lifetime)
      in
      (if not stale then
         if req.Registration.lifetime = 0 then begin
           t.accepted <- t.accepted + 1;
           remove_binding t req.Registration.home
         end
         else begin
           t.accepted <- t.accepted + 1;
           install_binding t
             {
               Types.home = req.Registration.home;
               care_of = req.Registration.care_of;
               lifetime = float_of_int granted;
               registered_at = Net.node_now t.ha_node;
               sequence = req.Registration.sequence;
             }
         end
       else t.denied <- t.denied + 1);
      let reply =
        {
          Registration.r_home = req.Registration.home;
          r_care_of = req.Registration.care_of;
          r_lifetime = granted;
          r_sequence = req.Registration.sequence;
          r_code = code;
        }
      in
      ignore
        (Transport.Udp_service.send udp ~src:dgram.dst ~dst:dgram.src
           ~src_port:Transport.Well_known.mip_registration
           ~dst_port:dgram.src_port
           (Registration.encode_reply ~key:t.auth_key reply))

let maybe_notify t ~correspondent (b : Types.binding) =
  if
    t.notify_correspondents
    && not (Ipv4_addr.equal correspondent b.Types.care_of)
  then begin
    let now = Net.node_now t.ha_node in
    let due =
      match Hashtbl.find_opt t.last_notified correspondent with
      | Some last -> now -. last >= t.notify_interval
      | None -> true
    in
    if due then begin
      Hashtbl.replace t.last_notified correspondent now;
      let icmp = Transport.Icmp_service.get t.ha_node in
      let remaining =
        int_of_float (Types.binding_expires_at b -. now)
      in
      Transport.Icmp_service.send_care_of_advert icmp ~src:(address t)
        ~dst:correspondent ~home:b.Types.home ~care_of:b.Types.care_of
        ~lifetime:(max 1 remaining)
    end
  end

(* Intercept: runs on every packet the node would deliver locally.
   Two captures matter:
   - packets addressed to a bound home address: tunnel them (In-IE);
   - tunnel packets addressed to us whose inner source is a bound home
     address: reverse tunneling (Out-IE) — decapsulate and re-send the
     inner packet from the home network. *)
let relay_multicast t ~flow (pkt : Ipv4_packet.t) =
  let group = pkt.Ipv4_packet.dst in
  let subscribers =
    List.filter_map
      (fun (g, home) -> if Ipv4_addr.equal g group then Some home else None)
      t.mcast_subs
  in
  List.iter
    (fun home ->
      match binding_for t home with
      | None -> ()
      | Some b ->
          let outer =
            Encap.wrap t.encap ~src:(address t) ~dst:b.Types.care_of
              ~ident:(tunnel_ident t) pkt
          in
          t.mcast_relayed <- t.mcast_relayed + 1;
          Trace.emit_encapsulate
            (Net.trace (Net.node_net t.ha_node))
            ~node:(Net.node_name t.ha_node) ~id:0 ~flow ~pkt:outer;
          ignore (Net.send t.ha_node ~flow outer))
    subscribers;
  subscribers <> []

(* The service address a packet may legitimately address us by: our own
   interface address, plus — while a takeover is in force — the crashed
   primary's address, which we have claimed so that registration renewals
   and Out-IE reverse tunnels keep working unmodified. *)
let serves_address t dst =
  Ipv4_addr.equal dst (address t)
  ||
  match t.standby_of with
  | Some p when t.standby_active -> Ipv4_addr.equal dst (address p)
  | Some _ | None -> false

let intercept t ~flow (pkt : Ipv4_packet.t) =
  if not t.up then false
  else if is_passive_standby t then false
  else if Ipv4_addr.is_multicast pkt.Ipv4_packet.dst then
    relay_multicast t ~flow pkt
  else
  match binding_for t pkt.Ipv4_packet.dst with
  | Some b ->
      let outer =
        Encap.wrap t.encap ~src:(address t) ~dst:b.Types.care_of
          ~ident:(tunnel_ident t) pkt
      in
      t.tunneled <- t.tunneled + 1;
      Trace.emit_encapsulate
        (Net.trace (Net.node_net t.ha_node))
        ~node:(Net.node_name t.ha_node) ~id:0 ~flow ~pkt:outer;
      ignore (Net.send t.ha_node ~flow outer);
      maybe_notify t ~correspondent:pkt.Ipv4_packet.src b;
      true
  | None -> (
      if not (serves_address t pkt.Ipv4_packet.dst) then false
      else
        match Encap.unwrap pkt with
        | None -> false
        | Some (_, inner) -> (
            match binding_for t inner.Ipv4_packet.src with
            | None ->
                (* Tunnel from an unregistered source: refuse to relay
                   (otherwise we would be an open packet reflector). *)
                false
            | Some _ ->
                t.reverse_tunneled <- t.reverse_tunneled + 1;
                Trace.emit_decapsulate
                  (Net.trace (Net.node_net t.ha_node))
                  ~node:(Net.node_name t.ha_node) ~id:0 ~flow ~pkt:inner;
                ignore (Net.send t.ha_node ~flow inner);
                true))

let create ha_node ~home_iface ?(auth_key = "secret") ?(encap = Encap.Ipip)
    ?(notify_correspondents = false) ?(notify_interval = 30.0)
    ?(max_lifetime = 600) () =
  let t =
    {
      ha_node;
      home_iface;
      auth_key;
      encap;
      notify_correspondents;
      notify_interval;
      max_lifetime;
      binding_table = [];
      last_notified = Hashtbl.create 8;
      tunneled = 0;
      reverse_tunneled = 0;
      accepted = 0;
      denied = 0;
      next_tunnel_ident = 1;
      mcast_subs = [];
      mcast_relayed = 0;
      up = true;
      purged = 0;
      standby = None;
      standby_of = None;
      standby_active = false;
      detect_interval = 2.0;
      detect_timeout = 5.0;
      takeovers = 0;
      last_failover = None;
    }
  in
  let udp = Transport.Udp_service.get ha_node in
  Transport.Udp_service.listen udp ~port:Transport.Well_known.mip_registration
    (fun svc dgram -> handle_registration t svc dgram);
  Net.set_intercept ha_node (Some (fun ~flow pkt -> intercept t ~flow pkt));
  (* Ensure ICMP service exists so we can answer pings and send adverts. *)
  let (_ : Transport.Icmp_service.t) = Transport.Icmp_service.get ha_node in
  t

let subscribe_multicast t ~group ~home =
  Net.join_group t.ha_node t.home_iface group;
  if not (List.mem (group, home) t.mcast_subs) then
    t.mcast_subs <- (group, home) :: t.mcast_subs

let unsubscribe_multicast t ~group ~home =
  t.mcast_subs <-
    List.filter (fun sub -> sub <> (group, home)) t.mcast_subs;
  if not (List.exists (fun (g, _) -> Ipv4_addr.equal g group) t.mcast_subs)
  then Net.leave_group t.ha_node t.home_iface group

let multicast_packets_relayed t = t.mcast_relayed

(* {1 Redundancy: a hot-standby peer}

   The standby keeps a passive replica of the primary's binding table
   (soft-state replication on every install/remove).  A bounded detection
   tick on the standby's engine watches the primary's liveness — the
   deterministic stand-in for a heartbeat protocol.  When the primary has
   been continuously down for [detect_timeout], the standby takes over: it
   claims the primary's service address (so registration renewals and
   Out-IE reverse tunnels addressed to the old agent reach it) and
   re-establishes proxy ARP for every replicated binding. *)

let is_standby_active t = t.standby_active
let takeovers t = t.takeovers
let last_failover t = t.last_failover

let take_over s ~(primary : t) ~detected_at =
  s.standby_active <- true;
  s.takeovers <- s.takeovers + 1;
  s.last_failover <- Some (Net.node_now s.ha_node -. detected_at);
  let svc = address primary in
  Net.claim_address s.ha_node svc;
  Net.add_proxy_arp s.ha_node s.home_iface svc;
  Net.gratuitous_arp s.ha_node s.home_iface svc;
  List.iter
    (fun (b : Types.binding) ->
      Net.claim_address s.ha_node b.Types.home;
      Net.add_proxy_arp s.ha_node s.home_iface b.Types.home;
      Net.gratuitous_arp s.ha_node s.home_iface b.Types.home)
    s.binding_table

(* Failback: release every address the takeover captured {e before} the
   primary re-installs anything, so at no instant do both agents proxy the
   same home address.  The (possibly refreshed) bindings are handed back;
   [install_binding] on the primary re-claims each with a fresh gratuitous
   proxy ARP and re-seeds the replica. *)
let stand_down s ~(primary : t) =
  if s.standby_active then begin
    s.standby_active <- false;
    let svc = address primary in
    Net.unclaim_address s.ha_node svc;
    Net.remove_proxy_arp s.ha_node s.home_iface svc;
    let handed_back = s.binding_table in
    List.iter
      (fun (b : Types.binding) ->
        Net.unclaim_address s.ha_node b.Types.home;
        Net.remove_proxy_arp s.ha_node s.home_iface b.Types.home)
      handed_back;
    List.iter (fun b -> install_binding primary b) handed_back
  end

(* (Re)arm the bounded liveness tick.  Separate from [pair] because a
   full event-queue drain runs {e through} any pending timer chain: a
   world that settles (drains) between construction and the interesting
   phase consumes the whole budget settling.  Callers re-arm after each
   settling drain. *)
let watch s ?(ticks = 60) () =
  match s.standby_of with
  | None -> invalid_arg "Home_agent.watch: not paired as a standby"
  | Some primary ->
      let down_since = ref None in
      let eng = Net.node_engine s.ha_node in
      let rec tick remaining =
        if remaining > 0 then
          Engine.after eng s.detect_interval (fun () ->
              (if s.up then
                 if primary.up then down_since := None
                 else
                   let now = Net.node_now s.ha_node in
                   match !down_since with
                   | None -> down_since := Some now
                   | Some t0 ->
                       if
                         (not s.standby_active)
                         && now -. t0 >= s.detect_timeout
                       then take_over s ~primary ~detected_at:t0);
              tick (remaining - 1))
      in
      tick ticks

let pair ~(primary : t) ~(standby : t) ?(detect_interval = 2.0)
    ?(detect_timeout = 5.0) ?(watch_now = true) ?(ticks = 60) () =
  if primary == standby then
    invalid_arg "Home_agent.pair: an agent cannot stand by for itself";
  if primary.standby <> None || standby.standby_of <> None then
    invalid_arg "Home_agent.pair: already paired";
  if detect_interval <= 0.0 || detect_timeout < 0.0 then
    invalid_arg "Home_agent.pair: detection parameters must be positive";
  primary.standby <- Some standby;
  standby.standby_of <- Some primary;
  standby.detect_interval <- detect_interval;
  standby.detect_timeout <- detect_timeout;
  (* Seed the replica with whatever the primary already holds. *)
  List.iter (fun b -> store_replica standby b) primary.binding_table;
  if watch_now then watch standby ~ticks ()

(* Crash/restart: the binding table is soft state kept in memory — a crash
   loses all of it, along with the proxy-ARP footprint on the home segment
   and the notification rate-limiter.  Recovery relies entirely on mobile
   hosts re-registering (their keepalive retry loop) — or, when a standby
   is paired, on its takeover. *)
let crash t =
  t.up <- false;
  List.iter (fun b -> remove_binding t b.Types.home) t.binding_table;
  Hashtbl.reset t.last_notified

let restart t =
  t.up <- true;
  match t.standby with
  | Some s ->
      stand_down s ~primary:t;
      (* Reclaim the segment's ARP caches for our own service address,
         overwriting the standby's takeover announcement. *)
      Net.gratuitous_arp t.ha_node t.home_iface (address t)
  | None -> ()

let is_up t = t.up
