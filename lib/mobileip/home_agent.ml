open Netsim

type t = {
  ha_node : Net.node;
  home_iface : Net.iface;
  auth_key : string;
  encap : Encap.mode;
  notify_correspondents : bool;
  notify_interval : float;
  max_lifetime : int;
  mutable binding_table : Types.binding list;
  last_notified : (Ipv4_addr.t, float) Hashtbl.t;
  mutable tunneled : int;
  mutable reverse_tunneled : int;
  mutable accepted : int;
  mutable denied : int;
  mutable next_tunnel_ident : int;
  mutable mcast_subs : (Ipv4_addr.t * Ipv4_addr.t) list;
      (* (group, subscriber home address) *)
  mutable mcast_relayed : int;
  mutable up : bool;  (* false while crashed: no replies, no forwarding *)
  mutable purged : int;  (* bindings removed by the periodic purge *)
}

let node t = t.ha_node
let address t = Net.iface_addr t.home_iface
let bindings t = t.binding_table

let packets_tunneled t = t.tunneled
let packets_reverse_tunneled t = t.reverse_tunneled
let registrations_accepted t = t.accepted
let registrations_denied t = t.denied

let tunnel_ident t =
  let i = t.next_tunnel_ident in
  t.next_tunnel_ident <- (if i >= 0xffff then 1 else i + 1);
  i

let remove_binding t home =
  t.binding_table <-
    List.filter
      (fun b -> not (Ipv4_addr.equal b.Types.home home))
      t.binding_table;
  Net.unclaim_address t.ha_node home;
  Net.remove_proxy_arp t.ha_node t.home_iface home

(* Expiry is lazy: an expired binding stops matching the moment it is next
   consulted, and its proxy-ARP/claim state is torn down then.  (A timer
   would force the event queue to run out to the expiry instant, making
   every full simulation drain jump hundreds of simulated seconds.) *)
let binding_for t home =
  let now = Net.node_now t.ha_node in
  match
    List.find_opt (fun b -> Ipv4_addr.equal b.Types.home home) t.binding_table
  with
  | Some b when Types.binding_valid ~now b -> Some b
  | Some _ ->
      remove_binding t home;
      None
  | None -> None

let install_binding t (b : Types.binding) =
  t.binding_table <-
    b
    :: List.filter
         (fun o -> not (Ipv4_addr.equal o.Types.home b.Types.home))
         t.binding_table;
  Net.claim_address t.ha_node b.Types.home;
  Net.add_proxy_arp t.ha_node t.home_iface b.Types.home;
  (* Update caches of hosts and routers on the home segment so traffic for
     the mobile host now reaches us (gratuitous proxy ARP, RFC 1027). *)
  Net.gratuitous_arp t.ha_node t.home_iface b.Types.home

(* Eager counterpart to the lazy expiry above: sweep the whole table once,
   tearing down proxy-ARP/claim state for every expired binding.  Lazy
   expiry only fires when a particular binding is consulted, so a mobile
   host that went quiet would otherwise leave its proxy-ARP entry parked on
   the home segment indefinitely. *)
let purge_expired t =
  let now = Net.node_now t.ha_node in
  let expired =
    List.filter
      (fun b -> not (Types.binding_valid ~now b))
      t.binding_table
  in
  List.iter (fun b -> remove_binding t b.Types.home) expired;
  t.purged <- t.purged + List.length expired;
  List.length expired

let bindings_purged t = t.purged

let enable_purge t ?(interval = 30.0) ?(ticks = 20) () =
  if interval <= 0.0 then
    invalid_arg "Home_agent.enable_purge: interval must be positive";
  let eng = Net.node_engine t.ha_node in
  (* Bounded tick count, like the keepalive budget: an unbounded timer
     would keep the event queue from ever draining. *)
  let rec tick remaining =
    if remaining > 0 then
      Engine.after eng interval (fun () ->
          if t.up then ignore (purge_expired t);
          tick (remaining - 1))
  in
  tick ticks

let handle_registration t udp (dgram : Transport.Udp_service.datagram) =
  if not t.up then ()
  else
  match Registration.decode_request ~key:t.auth_key dgram.payload with
  | Error _ ->
      t.denied <- t.denied + 1;
      let reply =
        {
          Registration.r_home = Ipv4_addr.any;
          r_care_of = Ipv4_addr.any;
          r_lifetime = 0;
          r_sequence = 0;
          r_code = Types.Reg_denied_auth;
        }
      in
      ignore
        (Transport.Udp_service.send udp ~src:dgram.dst ~dst:dgram.src
           ~src_port:Transport.Well_known.mip_registration
           ~dst_port:dgram.src_port
           (Registration.encode_reply ~key:t.auth_key reply))
  | Ok req ->
      (* A retransmitted request (same sequence, same care-of) is
         idempotent: the reply may have been lost and the mobile host is
         retrying.  Only genuinely old sequences — or replays naming a
         different care-of address — are stale. *)
      let stale =
        List.exists
          (fun b ->
            Ipv4_addr.equal b.Types.home req.Registration.home
            && (b.Types.sequence > req.Registration.sequence
               || (b.Types.sequence = req.Registration.sequence
                  && not
                       (Ipv4_addr.equal b.Types.care_of
                          req.Registration.care_of))))
          t.binding_table
      in
      let code, granted =
        if stale then (Types.Reg_denied_stale, 0)
        else (Types.Reg_accepted, min req.Registration.lifetime t.max_lifetime)
      in
      (if not stale then
         if req.Registration.lifetime = 0 then begin
           t.accepted <- t.accepted + 1;
           remove_binding t req.Registration.home
         end
         else begin
           t.accepted <- t.accepted + 1;
           install_binding t
             {
               Types.home = req.Registration.home;
               care_of = req.Registration.care_of;
               lifetime = float_of_int granted;
               registered_at = Net.node_now t.ha_node;
               sequence = req.Registration.sequence;
             }
         end
       else t.denied <- t.denied + 1);
      let reply =
        {
          Registration.r_home = req.Registration.home;
          r_care_of = req.Registration.care_of;
          r_lifetime = granted;
          r_sequence = req.Registration.sequence;
          r_code = code;
        }
      in
      ignore
        (Transport.Udp_service.send udp ~src:dgram.dst ~dst:dgram.src
           ~src_port:Transport.Well_known.mip_registration
           ~dst_port:dgram.src_port
           (Registration.encode_reply ~key:t.auth_key reply))

let maybe_notify t ~correspondent (b : Types.binding) =
  if
    t.notify_correspondents
    && not (Ipv4_addr.equal correspondent b.Types.care_of)
  then begin
    let now = Net.node_now t.ha_node in
    let due =
      match Hashtbl.find_opt t.last_notified correspondent with
      | Some last -> now -. last >= t.notify_interval
      | None -> true
    in
    if due then begin
      Hashtbl.replace t.last_notified correspondent now;
      let icmp = Transport.Icmp_service.get t.ha_node in
      let remaining =
        int_of_float (Types.binding_expires_at b -. now)
      in
      Transport.Icmp_service.send_care_of_advert icmp ~src:(address t)
        ~dst:correspondent ~home:b.Types.home ~care_of:b.Types.care_of
        ~lifetime:(max 1 remaining)
    end
  end

(* Intercept: runs on every packet the node would deliver locally.
   Two captures matter:
   - packets addressed to a bound home address: tunnel them (In-IE);
   - tunnel packets addressed to us whose inner source is a bound home
     address: reverse tunneling (Out-IE) — decapsulate and re-send the
     inner packet from the home network. *)
let relay_multicast t ~flow (pkt : Ipv4_packet.t) =
  let group = pkt.Ipv4_packet.dst in
  let subscribers =
    List.filter_map
      (fun (g, home) -> if Ipv4_addr.equal g group then Some home else None)
      t.mcast_subs
  in
  List.iter
    (fun home ->
      match binding_for t home with
      | None -> ()
      | Some b ->
          let outer =
            Encap.wrap t.encap ~src:(address t) ~dst:b.Types.care_of
              ~ident:(tunnel_ident t) pkt
          in
          t.mcast_relayed <- t.mcast_relayed + 1;
          if Trace.interested (Net.trace (Net.node_net t.ha_node)) then
            Trace.record
            (Net.trace (Net.node_net t.ha_node))
            ~time:(Net.node_now t.ha_node)
            (Trace.Encapsulate
               {
                 node = Net.node_name t.ha_node;
                 frame = { Trace.id = 0; flow; pkt = outer };
               });
          ignore (Net.send t.ha_node ~flow outer))
    subscribers;
  subscribers <> []

let intercept t ~flow (pkt : Ipv4_packet.t) =
  if not t.up then false
  else if Ipv4_addr.is_multicast pkt.Ipv4_packet.dst then
    relay_multicast t ~flow pkt
  else
  match binding_for t pkt.Ipv4_packet.dst with
  | Some b ->
      let outer =
        Encap.wrap t.encap ~src:(address t) ~dst:b.Types.care_of
          ~ident:(tunnel_ident t) pkt
      in
      t.tunneled <- t.tunneled + 1;
      if Trace.interested (Net.trace (Net.node_net t.ha_node)) then
        Trace.record (Net.trace (Net.node_net t.ha_node))
        ~time:(Net.node_now t.ha_node)
        (Trace.Encapsulate
           {
             node = Net.node_name t.ha_node;
             frame = { Trace.id = 0; flow; pkt = outer };
           });
      ignore (Net.send t.ha_node ~flow outer);
      maybe_notify t ~correspondent:pkt.Ipv4_packet.src b;
      true
  | None -> (
      if not (Ipv4_addr.equal pkt.Ipv4_packet.dst (address t)) then false
      else
        match Encap.unwrap pkt with
        | None -> false
        | Some (_, inner) -> (
            match binding_for t inner.Ipv4_packet.src with
            | None ->
                (* Tunnel from an unregistered source: refuse to relay
                   (otherwise we would be an open packet reflector). *)
                false
            | Some _ ->
                t.reverse_tunneled <- t.reverse_tunneled + 1;
                if Trace.interested (Net.trace (Net.node_net t.ha_node)) then
                  Trace.record
                  (Net.trace (Net.node_net t.ha_node))
                  ~time:(Net.node_now t.ha_node)
                  (Trace.Decapsulate
                     {
                       node = Net.node_name t.ha_node;
                       frame = { Trace.id = 0; flow; pkt = inner };
                     });
                ignore (Net.send t.ha_node ~flow inner);
                true))

let create ha_node ~home_iface ?(auth_key = "secret") ?(encap = Encap.Ipip)
    ?(notify_correspondents = false) ?(notify_interval = 30.0)
    ?(max_lifetime = 600) () =
  let t =
    {
      ha_node;
      home_iface;
      auth_key;
      encap;
      notify_correspondents;
      notify_interval;
      max_lifetime;
      binding_table = [];
      last_notified = Hashtbl.create 8;
      tunneled = 0;
      reverse_tunneled = 0;
      accepted = 0;
      denied = 0;
      next_tunnel_ident = 1;
      mcast_subs = [];
      mcast_relayed = 0;
      up = true;
      purged = 0;
    }
  in
  let udp = Transport.Udp_service.get ha_node in
  Transport.Udp_service.listen udp ~port:Transport.Well_known.mip_registration
    (fun svc dgram -> handle_registration t svc dgram);
  Net.set_intercept ha_node (Some (fun ~flow pkt -> intercept t ~flow pkt));
  (* Ensure ICMP service exists so we can answer pings and send adverts. *)
  let (_ : Transport.Icmp_service.t) = Transport.Icmp_service.get ha_node in
  t

let subscribe_multicast t ~group ~home =
  Net.join_group t.ha_node t.home_iface group;
  if not (List.mem (group, home) t.mcast_subs) then
    t.mcast_subs <- (group, home) :: t.mcast_subs

let unsubscribe_multicast t ~group ~home =
  t.mcast_subs <-
    List.filter (fun sub -> sub <> (group, home)) t.mcast_subs;
  if not (List.exists (fun (g, _) -> Ipv4_addr.equal g group) t.mcast_subs)
  then Net.leave_group t.ha_node t.home_iface group

let multicast_packets_relayed t = t.mcast_relayed

(* Crash/restart: the binding table is soft state kept in memory — a crash
   loses all of it, along with the proxy-ARP footprint on the home segment
   and the notification rate-limiter.  Recovery relies entirely on mobile
   hosts re-registering (their keepalive retry loop). *)
let crash t =
  t.up <- false;
  List.iter (fun b -> remove_binding t b.Types.home) t.binding_table;
  Hashtbl.reset t.last_notified

let restart t = t.up <- true
let is_up t = t.up
