(** IP multicast and Mobile IP (paper §6.4).

    "One of the goals of IP multicast is to reduce unnecessary replication
    of network traffic.  Tunneling multicast packets from the home network
    to the visited network is therefore a little self-defeating.  It would
    be better if the multicast application were able to join the multicast
    group through its real physical interface on the current local
    network."

    Two ways for a roaming mobile host to receive a group:

    - {!join_via_home}: the home agent joins on the home segment and
      tunnels every group packet to the care-of address (unicast,
      encapsulated — the wasteful option);
    - {!join_locally}: the host simply joins on its physical interface,
      bypassing Mobile IP entirely.

    Experiment E12 measures the wire-byte cost of each against the same
    stream. *)

val join_via_home :
  Home_agent.t -> Mobile_host.t -> group:Netsim.Ipv4_addr.t -> unit
(** Subscribe through the "virtual interface on the distant home network".
    @raise Invalid_argument if [group] is not multicast. *)

val leave_via_home :
  Home_agent.t -> Mobile_host.t -> group:Netsim.Ipv4_addr.t -> unit

val join_locally :
  Mobile_host.t -> iface:Netsim.Net.iface -> group:Netsim.Ipv4_addr.t -> unit

val leave_locally :
  Mobile_host.t -> iface:Netsim.Net.iface -> group:Netsim.Ipv4_addr.t -> unit

val send_stream :
  Netsim.Net.node ->
  via:Netsim.Net.iface ->
  group:Netsim.Ipv4_addr.t ->
  port:int ->
  count:int ->
  interval:float ->
  payload_size:int ->
  unit ->
  unit ->
  int list
(** Emit a periodic UDP stream to the group on the sender's segment.
    Packets are emitted over simulated time; the returned thunk yields the
    flow ids of the packets sent so far (query it after running the
    engine). *)

val receive_count :
  Netsim.Net.node -> port:int -> unit -> (unit -> int)
(** Install a UDP listener counting datagrams on [port]; returns a counter
    query function. *)
