open Netsim

type mode = Ipip | Minimal | Gre

let all_modes = [ Ipip; Minimal; Gre ]

let overhead = function
  | Ipip -> Ipv4_packet.ipip_overhead
  | Minimal -> Ipv4_packet.minimal_overhead
  | Gre -> Ipv4_packet.gre_overhead

let mode_to_string = function
  | Ipip -> "ipip"
  | Minimal -> "minimal"
  | Gre -> "gre"

let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

let wrap mode ~src ~dst ?(ttl = 64) ?ident inner =
  Prof.enter Prof.Encap;
  let payload, protocol =
    match mode with
    | Ipip -> (Ipv4_packet.Encap inner, Ipv4_packet.P_ipip)
    | Minimal -> (Ipv4_packet.Min_encap inner, Ipv4_packet.P_minimal)
    | Gre -> (Ipv4_packet.Gre_encap inner, Ipv4_packet.P_gre)
  in
  let ident = Option.value ident ~default:inner.Ipv4_packet.ident in
  let outer =
    Ipv4_packet.make ~tos:inner.Ipv4_packet.tos ~ident ~ttl ~protocol ~src ~dst
      payload
  in
  Prof.leave Prof.Encap;
  outer

let unwrap (pkt : Ipv4_packet.t) =
  Prof.enter Prof.Decap;
  let r =
    match pkt.payload with
    | Ipv4_packet.Encap inner -> Some (Ipip, inner)
    | Ipv4_packet.Gre_encap inner -> Some (Gre, inner)
    | Ipv4_packet.Min_encap inner -> Some (Minimal, inner)
    | Ipv4_packet.Raw _ | Ipv4_packet.Udp _ | Ipv4_packet.Tcp _
    | Ipv4_packet.Icmp _ ->
        None
  in
  Prof.leave Prof.Decap;
  r

let is_tunnel pkt = unwrap pkt <> None
