(** The Internet Mobility 4x4 grid (Figure 10) — the paper's central
    contribution.

    A conversation between a mobile host (MH) and a correspondent host (CH)
    pairs one of four {e outgoing} delivery methods (MH to CH, §4) with one
    of four {e incoming} methods (CH to MH, §5).  Of the sixteen cells,
    seven are useful, three are valid but would not normally be used, and
    six do not work with connection-oriented protocols like TCP because
    they mix the temporary care-of address with the permanent home address
    as transport endpoints (§6.4).

    This module encodes the grid itself — classification, applicability
    predicates, and the "series of tests" (abstract) that picks the best
    available cell for a given environment. *)

(** How the mobile host sends packets to the correspondent (§4). *)
type out_method =
  | Out_IE  (** Indirect, Encapsulated: reverse-tunnel via the home agent *)
  | Out_DE  (** Direct, Encapsulated: tunnel straight to the correspondent *)
  | Out_DH  (** Direct, plain packet with the permanent Home address *)
  | Out_DT  (** Direct, plain packet with the Temporary address (no Mobile IP) *)

(** How the correspondent sends packets to the mobile host (§5). *)
type in_method =
  | In_IE  (** Indirect, Encapsulated: via the home agent *)
  | In_DE  (** Direct, Encapsulated: tunnel to the care-of address *)
  | In_DH  (** Direct to the Home address in a single link-layer hop *)
  | In_DT  (** Direct, plain packet to the Temporary address (no Mobile IP) *)

type cell = { incoming : in_method; outgoing : out_method }

(** Figure 10's shading. *)
type classification =
  | Useful
  | Valid_but_unlikely  (** works with TCP but would not normally be used *)
  | Broken  (** does not work with current protocols such as TCP *)

val all_out : out_method list
val all_in : in_method list
val all_cells : cell list
(** All sixteen, row-major in the paper's order (In-IE row first). *)

val useful_cells : cell list
(** The seven unshaded cells. *)

val classify : cell -> classification

val works_with_tcp : cell -> bool
(** [classify c <> Broken]. *)

val endpoint_consistent : cell -> bool
(** The structural reason behind [works_with_tcp]: the address the MH uses
    as its transport endpoint when sending (home for IE/DE/DH, care-of for
    DT) must equal the address at which the incoming method delivers
    (home for IE/DE/DH, care-of for DT).  §6.4's argument, as a predicate. *)

(** {1 Environment and applicability} *)

(** The three factors of the abstract, concretely: what to optimise, how
    permissive the networks are, and how capable the correspondent is. *)
type environment = {
  mobility_required : bool;
      (** connection durability / location transparency is needed *)
  privacy_required : bool;
      (** the mobile user does not want the CH to learn its location (§4) *)
  source_filtering_on_path : bool;
      (** a boundary router on the MH-to-CH path performs source-address
          filtering (Figure 2) *)
  ch_decapsulates : bool;
      (** the CH can decapsulate encapsulated packets (e.g. recent Linux) *)
  ch_mobile_aware : bool;  (** the CH runs mobile-aware networking software *)
  ch_knows_care_of : bool;
      (** the CH has learned the current care-of address (ICMP advert or
          DNS temporary record, §3.2) *)
  same_segment : bool;  (** MH and CH share a link-layer network segment *)
}

val default_environment : environment
(** Worst-case conservative: mobility required, filtering assumed present,
    conventional correspondent: [In_IE/Out_IE] territory. *)

val out_applicable : environment -> out_method -> bool
(** Will packets sent this way reach the correspondent (and serve the
    optimisation goals)?  E.g. [Out_DH] is inapplicable under source
    filtering; [Out_DE] requires a decapsulating correspondent. *)

val in_applicable : environment -> in_method -> bool

val cell_applicable : environment -> cell -> bool
(** Both directions applicable and the cell not Broken. *)

val best : environment -> cell
(** The "series of tests" of the abstract: the most efficient applicable
    cell.  Order of tests: no mobility needed → Row D; privacy → full
    bidirectional tunneling; same segment → Row C; mobile-aware CH with a
    known care-of → Row B; otherwise Row A, choosing the cheapest outgoing
    method the network and CH permit. *)

val out_of_string : string -> out_method option
val in_of_string : string -> in_method option
val out_to_string : out_method -> string
val in_to_string : in_method -> string
val cell_to_string : cell -> string
val pp_out : Format.formatter -> out_method -> unit
val pp_in : Format.formatter -> in_method -> unit
val pp_cell : Format.formatter -> cell -> unit
val pp_classification : Format.formatter -> classification -> unit

val describe_out : out_method -> string
(** One-line summary of the method's packet format, as in Figures 6/7. *)

val describe_in : in_method -> string
val describe_cell : cell -> string
(** The Figure 10 box text for the cell (empty for broken cells). *)

val equal_out : out_method -> out_method -> bool
val equal_in : in_method -> in_method -> bool
val equal_cell : cell -> cell -> bool
