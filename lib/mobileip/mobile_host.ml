open Netsim

type location =
  | At_home
  | Away of { care_of : Ipv4_addr.t; gateway : Ipv4_addr.t }

type heuristic = Ipv4_packet.t -> bool

type t = {
  mh_node : Net.node;
  iface : Net.iface;
  home : Ipv4_addr.t;
  home_prefix : Ipv4_addr.Prefix.t;
  home_agent : Ipv4_addr.t;
  auth_key : string;
  encap : Encap.mode;
  lifetime : int;
  mutable loc : location;
  mutable sequence : int;
  mutable is_registered : bool;
  mutable default : Grid.out_method;
  pinned : (Ipv4_addr.t, Grid.out_method) Hashtbl.t;
  mutable sel : Selector.t option;
  mutable privacy_mode : bool;
  mutable heuristic_list : heuristic list;
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable reg_attempts : int;
  mutable reg_failures : int;
      (* registrations abandoned after the retry budget *)
  mutable last_reg_failure : float option;
      (* sim time the latest abandonment happened (oracle raw material) *)
  mutable tunnel_ident : int;
  mutable pending_reg : int option;  (* sequence awaiting a reply *)
  retry_base : float;  (* first retransmission delay, seconds *)
  retry_cap : float;  (* backoff ceiling *)
  retry_limit : int;  (* transmissions per registration before giving up *)
  mutable retry_lcg : int;  (* seeded jitter state *)
  mutable advertised : Ipv4_addr.t list;
      (* correspondents sent a binding update; invalidated on failure *)
  mutable fa_mode : bool;
      (* attached via a foreign agent: the MH keeps its home address and
         the FA delivers/forwards; the optimization machinery is off
         (§2: foreign agents "restrict the freedom of the mobile host") *)
  home_gateway : (Ipv4_addr.t * string) option;
      (* default route captured at creation, restored on return home *)
  mutable keepalive : (float * int) option;
      (* (margin seconds before expiry, renewals remaining) *)
  mutable keepalive_generation : int;
      (* bumps on every movement so stale renewal timers self-cancel *)
  mutable auto_attach : bool;
  mutable attaching : bool;  (* a DHCP attach is in flight *)
  mutable auto_attach_count : int;
  mutable degrade_to : Grid.out_method option;
      (* policy: when a registration finally fails away from home, fall
         back to this direct method instead of black-holing on Out-IE *)
  mutable degraded : bool;  (* the fallback is currently in force *)
  mutable icmp_consumed : int;
      (* destination-unreachable errors acted on as negative feedback *)
}

let node t = t.mh_node
let home_address t = t.home
let home_agent_address t = t.home_agent

let care_of_address t =
  match t.loc with At_home -> None | Away { care_of; _ } -> Some care_of

let location t = t.loc
let at_home t = t.loc = At_home
let via_foreign_agent t = t.fa_mode
let registered t = t.is_registered
let set_default_method t m = t.default <- m
let default_method t = t.default

let pin_method t ~dst m =
  match m with
  | Some m -> Hashtbl.replace t.pinned dst m
  | None -> Hashtbl.remove t.pinned dst

let set_degradation t m =
  (match m with
  | Some Grid.Out_IE | Some Grid.Out_DE ->
      invalid_arg
        "Mobile_host.set_degradation: only the direct methods Out-DH/Out-DT \
         make sense without a home-agent binding"
  | Some Grid.Out_DH | Some Grid.Out_DT | None -> ());
  t.degrade_to <- m;
  if m = None then t.degraded <- false

let degradation t = t.degrade_to
let degraded t = t.degraded
let icmp_errors_consumed t = t.icmp_consumed
let set_privacy t b = t.privacy_mode <- b
let privacy t = t.privacy_mode
let set_heuristics t hs = t.heuristic_list <- hs
let heuristics t = t.heuristic_list
let selector t = t.sel
let packets_encapsulated t = t.encapsulated
let packets_decapsulated t = t.decapsulated
let registration_attempts t = t.reg_attempts
let registration_failures t = t.reg_failures
let last_registration_failure t = t.last_reg_failure
let advertised_correspondents t = List.rev t.advertised

let http_dns_heuristic (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Ipv4_packet.Tcp tw -> tw.Tcp_wire.dst_port = Transport.Well_known.http
  | Ipv4_packet.Udp u -> u.Udp_wire.dst_port = Transport.Well_known.dns
  | _ -> false

(* "A mobile host corresponding with a host that is physically connected
   to the same Ethernet segment should not require every packet to travel
   via its home agent" (§1): destinations on a local link go direct. *)
let on_link t dst =
  (match t.loc with
  | Away _ -> Ipv4_addr.Prefix.mem dst (Net.iface_prefix t.iface)
  | At_home -> false)
  || Net.neighbour_on_segment t.mh_node dst <> None

let out_method_for t ~dst =
  if t.privacy_mode then Grid.Out_IE
  else
    match Hashtbl.find_opt t.pinned dst with
    | Some m -> m
    | None -> (
        if on_link t dst then Grid.Out_DH
        else
          match t.degrade_to with
          | Some m when t.degraded && not t.is_registered ->
              (* Registration failed for good: no home-agent binding backs
                 Out-IE, so run the configured direct fallback until a
                 registration succeeds again. *)
              m
          | Some _ | None -> (
              match t.sel with
              | Some sel -> Selector.method_for sel dst
              | None -> t.default))

let choose_source t ?tcp_port () =
  match t.loc with
  | At_home -> t.home
  | Away { care_of; _ } -> (
      if t.privacy_mode then t.home
      else
        match tcp_port with
        | Some p when p = Transport.Well_known.http -> care_of
        | Some _ | None -> t.home)

let fresh_tunnel_ident t =
  let i = t.tunnel_ident in
  t.tunnel_ident <- (if i >= 0xffff then 1 else i + 1);
  i

let record_encap t outer =
  t.encapsulated <- t.encapsulated + 1;
  Trace.emit_encapsulate
    (Net.trace (Net.node_net t.mh_node))
    ~node:(Net.node_name t.mh_node) ~id:0 ~flow:0 ~pkt:outer

(* The route-override hook: the mobility policy consulted before the
   routing table for every locally-originated packet. *)
let override t (pkt : Ipv4_packet.t) =
  if
    (* Broadcasts and multicasts are link-scoped (or handled by the §6.4
       membership machinery): Mobile IP never applies.  In particular the
       DHCP exchange on a new segment must go out plain while the location
       state still describes the previous attachment. *)
    Ipv4_addr.equal pkt.Ipv4_packet.dst Ipv4_addr.broadcast
    || Ipv4_addr.is_multicast pkt.Ipv4_packet.dst
  then None
  else
  match t.loc with
  | At_home -> None (* functions like a normal non-mobile Internet host *)
  | Away _ when t.fa_mode ->
      (* Plain Out-DH through the foreign agent; no per-packet choices. *)
      None
  | Away { care_of; _ } ->
      let src = pkt.Ipv4_packet.src in
      if Ipv4_addr.equal src care_of then
        (* Bound to the physical interface: Out-DT, no Mobile IP. *)
        None
      else if
        (not (Ipv4_addr.equal src t.home))
        && not (Ipv4_addr.equal src Ipv4_addr.any)
      then None
      else begin
        (* Unbound packets may take the Out-DT shortcut per heuristics. *)
        let unbound = Ipv4_addr.equal src Ipv4_addr.any in
        if
          unbound && (not t.privacy_mode)
          && List.exists (fun h -> h pkt) t.heuristic_list
        then Some (Net.Resubmit { pkt with Ipv4_packet.src = care_of })
        else begin
          let pkt = { pkt with Ipv4_packet.src = t.home } in
          match out_method_for t ~dst:pkt.Ipv4_packet.dst with
          | Grid.Out_DH ->
              if unbound then Some (Net.Resubmit pkt) else None
          | Grid.Out_DT ->
              (* An application decision; as a routing method it means
                 "rewrite to the care-of address", only safe for unbound
                 traffic.  For bound traffic fall back to plain sending. *)
              if unbound then
                Some (Net.Resubmit { pkt with Ipv4_packet.src = care_of })
              else None
          | Grid.Out_IE ->
              let outer =
                Encap.wrap t.encap ~src:care_of ~dst:t.home_agent
                  ~ident:(fresh_tunnel_ident t) pkt
              in
              record_encap t outer;
              Some (Net.Resubmit outer)
          | Grid.Out_DE ->
              let outer =
                Encap.wrap t.encap ~src:care_of ~dst:pkt.Ipv4_packet.dst
                  ~ident:(fresh_tunnel_ident t) pkt
              in
              record_encap t outer;
              Some (Net.Resubmit outer)
        end
      end

(* Arrival side: tunnel packets addressed to the care-of address carry our
   home-addressed traffic (In-IE from the home agent, In-DE from a
   mobile-aware correspondent). *)
let intercept t ~flow (pkt : Ipv4_packet.t) =
  match t.loc with
  | At_home -> false
  | Away { care_of; _ } -> (
      if not (Ipv4_addr.equal pkt.Ipv4_packet.dst care_of) then false
      else
        match Encap.unwrap pkt with
        | None -> false
        | Some (_, inner) ->
            t.decapsulated <- t.decapsulated + 1;
            Trace.emit_decapsulate
              (Net.trace (Net.node_net t.mh_node))
              ~node:(Net.node_name t.mh_node) ~id:0 ~flow ~pkt:inner;
            Net.inject_local t.mh_node ~flow inner;
            true)

(* Bounded exponential backoff with seeded jitter: retransmission [n]
   waits min(cap, base * 2^n), scaled by a deterministic jitter factor in
   [1, 1.25) so co-moving hosts do not retransmit in lockstep.  Same LCG
   family as the link loss model, so runs replay exactly. *)
let retry_jitter t =
  t.retry_lcg <- ((t.retry_lcg * 1103515245) + 12345) land 0x3fffffff;
  float_of_int t.retry_lcg /. 1073741824.0

let retry_delay t n =
  Float.min t.retry_cap (t.retry_base *. (2.0 ** float_of_int n))
  *. (1.0 +. (0.25 *. retry_jitter t))

(* Correspondents that received a binding update cached our care-of
   address.  When a registration ultimately fails that location is no
   longer backed by a home-agent binding, so tell them to stop using it: a
   lifetime-zero care-of advert is the cache invalidation
   {!Correspondent.learn_binding} understands. *)
let invalidate_correspondents t =
  match t.loc with
  | At_home -> ()
  | Away { care_of; _ } ->
      let icmp = Transport.Icmp_service.get t.mh_node in
      List.iter
        (fun correspondent ->
          Transport.Icmp_service.send_care_of_advert icmp ~src:care_of
            ~dst:correspondent ~home:t.home ~care_of ~lifetime:0)
        t.advertised

(* Registration: "our Mobile IP support software itself communicates using
   the temporary address when registering with the home agent" (§6.4).
   When a foreign agent is in use the request instead travels to the FA
   (source: home address — the MH has no address of its own) which relays
   it to the home agent named inside the message. *)
let send_registration t ~src ~reg_dst ~care_of ~lifetime ~sequence =
  t.reg_attempts <- t.reg_attempts + 1;
  let req =
    {
      Registration.home = t.home;
      home_agent = t.home_agent;
      care_of;
      lifetime;
      sequence;
    }
  in
  let udp = Transport.Udp_service.get t.mh_node in
  ignore
    (Transport.Udp_service.send udp ~src ~dst:reg_dst
       ~src_port:Transport.Well_known.mip_registration
       ~dst_port:Transport.Well_known.mip_registration
       (Registration.encode_request ~key:t.auth_key req))

let rec register ?src ?reg_dst t ~care_of ~lifetime ?(on_result = fun _ -> ())
    () =
  t.sequence <- t.sequence + 1;
  let sequence = t.sequence in
  t.pending_reg <- Some sequence;
  let udp = Transport.Udp_service.get t.mh_node in
  Transport.Udp_service.listen udp
    ~port:Transport.Well_known.mip_registration (fun svc dgram ->
      match
        Registration.decode_reply ~key:t.auth_key
          dgram.Transport.Udp_service.payload
      with
      | Error _ -> ()
      | Ok reply ->
          if
            reply.Registration.r_sequence = sequence
            && t.pending_reg = Some sequence
          then begin
            t.pending_reg <- None;
            Transport.Udp_service.unlisten svc
              ~port:Transport.Well_known.mip_registration;
            let ok = reply.Registration.r_code = Types.Reg_accepted in
            t.is_registered <- (ok && lifetime > 0);
            if ok then t.degraded <- false;
            if ok && lifetime > 0 then schedule_renewal t;
            on_result ok
          end);
  (* Retransmit with bounded exponential backoff; registration runs over
     UDP and the access link may be lossy or the agent briefly down. *)
  let src = Option.value src ~default:care_of in
  let reg_dst = Option.value reg_dst ~default:t.home_agent in
  let eng = Net.node_engine t.mh_node in
  let rec attempt n =
    if t.pending_reg = Some sequence then
      if n >= t.retry_limit then begin
        (* Give up: we have no confirmed binding.  Stop claiming to be
           registered and withdraw any binding updates we advertised. *)
        t.pending_reg <- None;
        Transport.Udp_service.unlisten udp
          ~port:Transport.Well_known.mip_registration;
        t.is_registered <- false;
        t.reg_failures <- t.reg_failures + 1;
        t.last_reg_failure <- Some (Net.node_now t.mh_node);
        invalidate_correspondents t;
        (* Graceful degradation (§7.1.2): rather than black-holing on a
           tunnel no agent terminates, switch to the configured direct
           method until a later registration succeeds. *)
        (match (t.loc, t.degrade_to) with
        | Away _, Some _ -> t.degraded <- true
        | (At_home | Away _), _ -> ());
        on_result false
      end
      else begin
        send_registration t ~src ~reg_dst ~care_of ~lifetime ~sequence;
        Engine.after eng (retry_delay t n) (fun () -> attempt (n + 1))
      end
  in
  attempt 0

(* Registration keepalive: renew the binding [margin] seconds before it
   would expire, a bounded number of times (simulations must drain). *)
and schedule_renewal t =
  match (t.keepalive, t.loc) with
  | Some (margin, remaining), Away { care_of; _ }
    when remaining > 0 && t.lifetime > 0 ->
      let generation = t.keepalive_generation in
      let delay = Float.max 1.0 (float_of_int t.lifetime -. margin) in
      Engine.after (Net.node_engine t.mh_node) delay (fun () ->
          if t.keepalive_generation = generation && t.is_registered then begin
            t.keepalive <- Some (margin, remaining - 1);
            renew t ~generation ~care_of
          end)
  | _ -> ()

and renew t ~generation ~care_of =
  let src, reg_dst =
    if t.fa_mode then (Some t.home, Some care_of) else (None, None)
  in
  register ?src ?reg_dst t ~care_of ~lifetime:t.lifetime
    ~on_result:(fun ok -> if not ok then renewal_failed t ~generation ~care_of)
    ()

(* A renewal that fails outright (home agent crashed, path black-holed)
   must not end the keepalive chain: spend the remaining renewal budget
   retrying after a backoff delay, so the binding comes back when the
   agent does. *)
and renewal_failed t ~generation ~care_of =
  match t.keepalive with
  | Some (margin, remaining)
    when remaining > 0 && t.keepalive_generation = generation ->
      t.keepalive <- Some (margin, remaining - 1);
      Engine.after (Net.node_engine t.mh_node) (retry_delay t 0) (fun () ->
          if t.keepalive_generation = generation then
            renew t ~generation ~care_of)
  | _ -> ()

let enable_keepalive t ?(margin = 30.0) ?(max_renewals = 10) () =
  t.keepalive <- Some (margin, max_renewals);
  if t.is_registered then schedule_renewal t

let disable_keepalive t =
  t.keepalive <- None;
  t.keepalive_generation <- t.keepalive_generation + 1

let configure_away t ~care_of ~prefix ~gateway ?(on_registered = fun _ -> ())
    () =
  t.keepalive_generation <- t.keepalive_generation + 1;
  Net.set_iface_addr t.iface ~addr:care_of ~prefix;
  let table = Net.routing t.mh_node in
  (* Replace any default route left over from the previous attachment. *)
  Routing.remove table ~prefix:Ipv4_addr.Prefix.global ();
  Routing.add_default table ~gateway ~iface:(Net.iface_name t.iface);
  t.loc <- Away { care_of; gateway };
  t.is_registered <- false;
  (* While away we still own our home address: packets delivered to it
     (In-DH, decapsulated tunnels) must be accepted. *)
  Net.claim_address t.mh_node t.home;
  (match t.sel with Some sel -> Selector.reset_all sel | None -> ());
  register t ~care_of ~lifetime:t.lifetime ~on_result:on_registered ()

let move_to_static t segment ~addr ~prefix ~gateway ?on_registered () =
  Net.reattach t.iface segment;
  Net.clear_arp t.mh_node;
  t.fa_mode <- false;
  configure_away t ~care_of:addr ~prefix ~gateway ?on_registered ()

let move_to_foreign_agent t segment ~fa_addr ?(on_registered = fun _ -> ())
    () =
  Net.reattach t.iface segment;
  Net.clear_arp t.mh_node;
  t.fa_mode <- true;
  t.keepalive_generation <- t.keepalive_generation + 1;
  (* The MH keeps its home address; the FA is both its registration relay
     and its first-hop router. *)
  Net.set_iface_addr t.iface ~addr:t.home
    ~prefix:(Ipv4_addr.Prefix.make t.home 32);
  let table = Net.routing t.mh_node in
  Routing.remove table ~prefix:Ipv4_addr.Prefix.global ();
  Routing.add table ~prefix:(Ipv4_addr.Prefix.make fa_addr 32)
    ~iface:(Net.iface_name t.iface) ();
  Routing.add_default table ~gateway:fa_addr ~iface:(Net.iface_name t.iface);
  t.loc <- Away { care_of = fa_addr; gateway = fa_addr };
  t.is_registered <- false;
  register t ~src:t.home ~reg_dst:fa_addr ~care_of:fa_addr
    ~lifetime:t.lifetime ~on_result:on_registered ()

(* Acquire an address and register on whatever segment the interface is
   currently attached to. *)
let attach_here_via_dhcp t ?(on_registered = fun _ -> ()) () =
  t.fa_mode <- false;
  t.attaching <- true;
  (* Interface has no valid address yet on this segment. *)
  Net.set_iface_addr t.iface ~addr:Ipv4_addr.any
    ~prefix:(Ipv4_addr.Prefix.make Ipv4_addr.any 32);
  Transport.Dhcp.Client.request t.mh_node ~via:t.iface (fun offer ->
      configure_away t ~care_of:offer.Transport.Dhcp.Client.addr
        ~prefix:offer.Transport.Dhcp.Client.prefix
        ~gateway:offer.Transport.Dhcp.Client.gateway
        ~on_registered:(fun ok ->
          t.attaching <- false;
          on_registered ok)
        ())

let move_to_dhcp t segment ?on_registered () =
  Net.reattach t.iface segment;
  Net.clear_arp t.mh_node;
  attach_here_via_dhcp t ?on_registered ()

(* Settle on the home segment the interface is already attached to:
   restore the home address and routes, reclaim traffic from the home
   agent, deregister. *)
let settle_at_home t ?(on_deregistered = fun _ -> ()) () =
  t.fa_mode <- false;
  t.keepalive_generation <- t.keepalive_generation + 1;
  Net.set_iface_addr t.iface ~addr:t.home ~prefix:t.home_prefix;
  let table = Net.routing t.mh_node in
  Routing.remove table ~prefix:Ipv4_addr.Prefix.global ();
  (match t.home_gateway with
  | Some (gateway, iface) -> Routing.add_default table ~gateway ~iface
  | None -> ());
  t.loc <- At_home;
  Net.unclaim_address t.mh_node t.home;
  (* Reclaim our traffic from the home agent's proxy ARP. *)
  Net.gratuitous_arp t.mh_node t.iface t.home;
  register t ~care_of:t.home ~lifetime:0 ~on_result:on_deregistered ()

let return_home t segment ?on_deregistered () =
  Net.reattach t.iface segment;
  Net.clear_arp t.mh_node;
  settle_at_home t ?on_deregistered ()

let reregister t ?(on_registered = fun _ -> ()) () =
  match t.loc with
  | At_home -> on_registered true
  | Away { care_of; _ } ->
      register t ~care_of ~lifetime:t.lifetime ~on_result:on_registered ()

(* Eager movement detection: an agent advertisement whose source lies
   outside our current network means the link changed under us. *)
let handle_possible_movement t ~fa_addr =
  if t.auto_attach && not t.attaching then begin
    let current_prefix = Net.iface_prefix t.iface in
    let same_network = Ipv4_addr.Prefix.mem fa_addr current_prefix in
    if not same_network then begin
      t.auto_attach_count <- t.auto_attach_count + 1;
      Net.clear_arp t.mh_node;
      if Ipv4_addr.Prefix.mem fa_addr t.home_prefix then
        (* We are hearing our own home network: settle and deregister. *)
        settle_at_home t ()
      else attach_here_via_dhcp t ()
    end
  end

let enable_auto_attach t =
  t.auto_attach <- true;
  let udp = Transport.Udp_service.get t.mh_node in
  Transport.Udp_service.listen udp ~port:Foreign_agent.advert_port
    (fun _svc dgram ->
      match
        Foreign_agent.advert_agent_address dgram.Transport.Udp_service.payload
      with
      | Some fa_addr -> handle_possible_movement t ~fa_addr
      | None -> ())

let disable_auto_attach t =
  t.auto_attach <- false;
  let udp = Transport.Udp_service.get t.mh_node in
  Transport.Udp_service.unlisten udp ~port:Foreign_agent.advert_port

let auto_attaches t = t.auto_attach_count

let send_binding_update t ~correspondent ?(lifetime = 300) () =
  match t.loc with
  | At_home -> false
  | Away { care_of; _ } ->
      if not (List.exists (Ipv4_addr.equal correspondent) t.advertised) then
        t.advertised <- correspondent :: t.advertised;
      let icmp = Transport.Icmp_service.get t.mh_node in
      Transport.Icmp_service.send_care_of_advert icmp ~src:care_of
        ~dst:correspondent ~home:t.home ~care_of ~lifetime;
      true

let wire_tcp_feedback t =
  let tcp = Transport.Tcp.get t.mh_node in
  Transport.Tcp.set_feedback tcp
    (Some
       (fun ev ->
         match t.sel with
         | None -> ()
         | Some sel -> (
             match ev with
             | Transport.Tcp.Segment_sent { peer; retransmission = true } ->
                 Selector.report sel ~dst:peer Selector.Retransmission_detected
             | Transport.Tcp.Segment_received { peer; retransmission = true }
               ->
                 Selector.report sel ~dst:peer Selector.Retransmission_detected
             | Transport.Tcp.Segment_received { peer; retransmission = false }
               ->
                 Selector.report sel ~dst:peer Selector.Original_received
             | Transport.Tcp.Segment_sent { retransmission = false; _ } -> ())))

let set_selector t sel =
  t.sel <- sel;
  match sel with Some _ -> wire_tcp_feedback t | None -> ()

let create mh_node ~iface ~home ~home_prefix ~home_agent
    ?(auth_key = "secret") ?(encap = Encap.Ipip) ?(lifetime = 300)
    ?(retry_base = 1.0) ?(retry_cap = 8.0) ?(retry_limit = 6)
    ?(retry_seed = 0x2b5d) () =
  if retry_base <= 0.0 || retry_cap < retry_base then
    invalid_arg "Mobile_host.create: need 0 < retry_base <= retry_cap";
  if retry_limit < 1 then
    invalid_arg "Mobile_host.create: retry_limit must be >= 1";
  (* Remember the at-home default route so returning home can restore it. *)
  let home_gateway =
    List.find_map
      (fun r ->
        if Ipv4_addr.Prefix.equal r.Routing.prefix Ipv4_addr.Prefix.global
        then Option.map (fun g -> (g, r.Routing.iface)) r.Routing.gateway
        else None)
      (Routing.routes (Net.routing mh_node))
  in
  let t =
    {
      mh_node;
      iface;
      home;
      home_prefix;
      home_agent;
      auth_key;
      encap;
      lifetime;
      loc = At_home;
      sequence = 0;
      is_registered = false;
      default = Grid.Out_IE;
      pinned = Hashtbl.create 8;
      sel = None;
      privacy_mode = false;
      heuristic_list = [];
      encapsulated = 0;
      decapsulated = 0;
      reg_attempts = 0;
      reg_failures = 0;
      last_reg_failure = None;
      tunnel_ident = 1;
      pending_reg = None;
      retry_base;
      retry_cap;
      retry_limit;
      retry_lcg = retry_seed land 0x3fffffff;
      advertised = [];
      fa_mode = false;
      home_gateway;
      keepalive = None;
      keepalive_generation = 0;
      auto_attach = false;
      attaching = false;
      auto_attach_count = 0;
      degrade_to = None;
      degraded = false;
      icmp_consumed = 0;
    }
  in
  Net.set_route_override mh_node (Some (fun pkt -> override t pkt));
  Net.set_intercept mh_node (Some (fun ~flow pkt -> intercept t ~flow pkt));
  let icmp = Transport.Icmp_service.get mh_node in
  (* Destination-unreachable errors are fast negative feedback for the
     selector: the quoted context names the destination whose current
     delivery method a router refused, so that method is abandoned
     immediately instead of after several retransmission timeouts. *)
  Transport.Icmp_service.on_unreachable icmp
    (Some
       (fun ~code ~src:_ ~original ->
         match code with
         | Icmp_wire.Admin_prohibited | Icmp_wire.Host_unreachable
         | Icmp_wire.Net_unreachable -> (
             t.icmp_consumed <- t.icmp_consumed + 1;
             match (t.sel, original) with
             | Some sel, Some (_, dst)
               when (not (Ipv4_addr.equal dst t.home_agent))
                    && not (Ipv4_addr.equal dst t.home) ->
                 Selector.report sel ~dst Selector.Icmp_error
             | _ -> ())
         | Icmp_wire.Protocol_unreachable | Icmp_wire.Port_unreachable
         | Icmp_wire.Fragmentation_needed ->
             (* end-to-end / MTU conditions: not a method failure *)
             ()));
  t
