(** The home agent (paper §2): "a machine on the mobile host's home network
    that acts as a proxy on behalf of the mobile host for the duration of
    its absence".

    Responsibilities implemented here:

    - accept authenticated registration requests on UDP 434 and maintain
      the binding table, expiring bindings when their lifetime lapses;
    - capture packets addressed to an absent mobile host using
      {e gratuitous proxy ARP} (RFC 1027) on the home segment, plus address
      claiming so the simulator delivers them to us;
    - tunnel captured packets to the registered care-of address (In-IE,
      Figure 1);
    - {e reverse tunneling}: decapsulate packets the mobile host sent to us
      (Out-IE, Figure 3) and re-send the inner packet — from the home
      network, so boundary filters accept it;
    - optionally answer each forwarded packet with an ICMP care-of
      advertisement to the packet's source (§3.2 discovery mechanism 1),
      rate-limited per correspondent. *)

type t

val create :
  Netsim.Net.node ->
  home_iface:Netsim.Net.iface ->
  ?auth_key:string ->
  ?encap:Encap.mode ->
  ?notify_correspondents:bool ->
  ?notify_interval:float ->
  ?max_lifetime:int ->
  unit ->
  t
(** Attach home-agent behaviour to a node.  [home_iface] is the interface
    on the home segment where proxy ARP is performed.  Defaults: key
    ["secret"], IP-in-IP encapsulation, no ICMP notifications, notification
    interval 30 s, maximum granted lifetime 600 s. *)

val node : t -> Netsim.Net.node
val address : t -> Netsim.Ipv4_addr.t
(** The home agent's own address (its home-segment interface address). *)

val bindings : t -> Types.binding list
val binding_for : t -> Netsim.Ipv4_addr.t -> Types.binding option
(** Current valid binding for a home address. *)

val packets_tunneled : t -> int
(** In-IE forwards performed. *)

val packets_reverse_tunneled : t -> int
(** Out-IE decapsulations performed. *)

val registrations_accepted : t -> int
val registrations_denied : t -> int

(** {1 Expiry}

    Expiry is otherwise lazy — a binding stops matching when next
    consulted.  The purge sweeps eagerly so a mobile host that went quiet
    does not leave its proxy-ARP entry parked on the home segment. *)

val purge_expired : t -> int
(** Remove every expired binding (and its proxy-ARP/claim state) now;
    returns how many were removed. *)

val enable_purge : t -> ?interval:float -> ?ticks:int -> unit -> unit
(** Run {!purge_expired} every [interval] seconds (default 30) for [ticks]
    periods (default 20 — bounded so simulations drain).  Skipped while
    the agent is crashed.
    @raise Invalid_argument if [interval <= 0]. *)

val bindings_purged : t -> int
(** Total bindings removed by {!purge_expired} so far. *)

(** {1 Crash and restart}

    The binding table is soft state: a crash loses every binding, the
    proxy-ARP footprint, and the notification rate-limiter, and while down
    the agent neither answers registrations nor intercepts packets.
    Recovery relies on mobile hosts re-registering (their keepalive retry
    loop) — exactly the failure mode fault-injection experiments
    exercise. *)

val crash : t -> unit
val restart : t -> unit
(** Bring the agent back up.  If a standby took over in the meantime it
    stands down first — releasing every captured address {e before} this
    agent re-installs the (possibly refreshed) bindings it hands back, so
    at no instant do both agents proxy the same home address. *)

val is_up : t -> bool

(** {1 Redundancy}

    A second home agent on the same segment can be paired as a hot
    standby.  The primary replicates every binding install/remove to the
    standby's passive replica (soft-state replication; a crash does not
    wipe the replica).  The standby polls the primary's liveness — the
    deterministic stand-in for a heartbeat protocol — and after observing
    it continuously down for [detect_timeout] it takes over: it claims the
    primary's service address (registration renewals and Out-IE reverse
    tunnels keep working unmodified) and re-establishes gratuitous proxy
    ARP for every replicated binding.  Until then the standby is inert on
    the data plane: no interception, no proxy ARP, no claims. *)

val pair :
  primary:t ->
  standby:t ->
  ?detect_interval:float ->
  ?detect_timeout:float ->
  ?watch_now:bool ->
  ?ticks:int ->
  unit ->
  unit
(** Pair [standby] with [primary]: link the two, record the detection
    parameters, seed the replica, and (unless [~watch_now:false]) start
    the liveness tick via {!watch}.  Detection: every [detect_interval]
    seconds (default 2), takeover once the primary has been down
    [detect_timeout] seconds (default 5).  Worst-case takeover latency
    from the crash instant is therefore
    [detect_timeout +. 2. *. detect_interval].
    @raise Invalid_argument if either agent is already paired, the two are
    the same agent, or the detection parameters are not positive. *)

val watch : t -> ?ticks:int -> unit -> unit
(** (Re)arm the standby's bounded liveness tick for [ticks] periods
    (default 60) of its detection interval.  The tick chain is a pending
    timer, so a full event-queue drain runs through (and exhausts) it:
    call this again after each settling drain, before the phase whose
    crashes the standby must cover.
    @raise Invalid_argument unless this agent was paired as a standby. *)

val is_standby_active : t -> bool
(** Whether this (standby) agent is currently serving in the crashed
    primary's stead. *)

val takeovers : t -> int
(** How many times this standby has taken over. *)

val last_failover : t -> float option
(** Detection latency of the most recent takeover: seconds from first
    observing the primary down to assuming service. *)

(** {1 Multicast relay (§6.4)} *)

val subscribe_multicast :
  t -> group:Netsim.Ipv4_addr.t -> home:Netsim.Ipv4_addr.t -> unit
(** Join the group on the home segment on behalf of the (away) mobile host
    with the given home address, and tunnel each received group packet to
    its care-of address — the "virtual interface on its distant home
    network" membership whose waste §6.4 argues against.
    @raise Invalid_argument if [group] is not a multicast address. *)

val unsubscribe_multicast :
  t -> group:Netsim.Ipv4_addr.t -> home:Netsim.Ipv4_addr.t -> unit

val multicast_packets_relayed : t -> int
