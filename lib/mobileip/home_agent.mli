(** The home agent (paper §2): "a machine on the mobile host's home network
    that acts as a proxy on behalf of the mobile host for the duration of
    its absence".

    Responsibilities implemented here:

    - accept authenticated registration requests on UDP 434 and maintain
      the binding table, expiring bindings when their lifetime lapses;
    - capture packets addressed to an absent mobile host using
      {e gratuitous proxy ARP} (RFC 1027) on the home segment, plus address
      claiming so the simulator delivers them to us;
    - tunnel captured packets to the registered care-of address (In-IE,
      Figure 1);
    - {e reverse tunneling}: decapsulate packets the mobile host sent to us
      (Out-IE, Figure 3) and re-send the inner packet — from the home
      network, so boundary filters accept it;
    - optionally answer each forwarded packet with an ICMP care-of
      advertisement to the packet's source (§3.2 discovery mechanism 1),
      rate-limited per correspondent. *)

type t

val create :
  Netsim.Net.node ->
  home_iface:Netsim.Net.iface ->
  ?auth_key:string ->
  ?encap:Encap.mode ->
  ?notify_correspondents:bool ->
  ?notify_interval:float ->
  ?max_lifetime:int ->
  unit ->
  t
(** Attach home-agent behaviour to a node.  [home_iface] is the interface
    on the home segment where proxy ARP is performed.  Defaults: key
    ["secret"], IP-in-IP encapsulation, no ICMP notifications, notification
    interval 30 s, maximum granted lifetime 600 s. *)

val node : t -> Netsim.Net.node
val address : t -> Netsim.Ipv4_addr.t
(** The home agent's own address (its home-segment interface address). *)

val bindings : t -> Types.binding list
val binding_for : t -> Netsim.Ipv4_addr.t -> Types.binding option
(** Current valid binding for a home address. *)

val packets_tunneled : t -> int
(** In-IE forwards performed. *)

val packets_reverse_tunneled : t -> int
(** Out-IE decapsulations performed. *)

val registrations_accepted : t -> int
val registrations_denied : t -> int

(** {1 Expiry}

    Expiry is otherwise lazy — a binding stops matching when next
    consulted.  The purge sweeps eagerly so a mobile host that went quiet
    does not leave its proxy-ARP entry parked on the home segment. *)

val purge_expired : t -> int
(** Remove every expired binding (and its proxy-ARP/claim state) now;
    returns how many were removed. *)

val enable_purge : t -> ?interval:float -> ?ticks:int -> unit -> unit
(** Run {!purge_expired} every [interval] seconds (default 30) for [ticks]
    periods (default 20 — bounded so simulations drain).  Skipped while
    the agent is crashed.
    @raise Invalid_argument if [interval <= 0]. *)

val bindings_purged : t -> int
(** Total bindings removed by {!purge_expired} so far. *)

(** {1 Crash and restart}

    The binding table is soft state: a crash loses every binding, the
    proxy-ARP footprint, and the notification rate-limiter, and while down
    the agent neither answers registrations nor intercepts packets.
    Recovery relies on mobile hosts re-registering (their keepalive retry
    loop) — exactly the failure mode fault-injection experiments
    exercise. *)

val crash : t -> unit
val restart : t -> unit
val is_up : t -> bool

(** {1 Multicast relay (§6.4)} *)

val subscribe_multicast :
  t -> group:Netsim.Ipv4_addr.t -> home:Netsim.Ipv4_addr.t -> unit
(** Join the group on the home segment on behalf of the (away) mobile host
    with the given home address, and tunnel each received group packet to
    its care-of address — the "virtual interface on its distant home
    network" membership whose waste §6.4 argues against.
    @raise Invalid_argument if [group] is not a multicast address. *)

val unsubscribe_multicast :
  t -> group:Netsim.Ipv4_addr.t -> home:Netsim.Ipv4_addr.t -> unit

val multicast_packets_relayed : t -> int
