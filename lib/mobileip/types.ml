type binding = {
  home : Netsim.Ipv4_addr.t;
  care_of : Netsim.Ipv4_addr.t;
  lifetime : float;
  registered_at : float;
  sequence : int;
}

let binding_expires_at b = b.registered_at +. b.lifetime
let binding_valid ~now b = now < binding_expires_at b

let pp_binding fmt b =
  Format.fprintf fmt "%a@%a life=%.0fs seq=%d" Netsim.Ipv4_addr.pp b.home
    Netsim.Ipv4_addr.pp b.care_of b.lifetime b.sequence

type reg_code = Reg_accepted | Reg_denied_auth | Reg_denied_stale

let reg_code_to_int = function
  | Reg_accepted -> 0
  | Reg_denied_auth -> 1
  | Reg_denied_stale -> 2

let reg_code_of_int = function
  | 0 -> Some Reg_accepted
  | 1 -> Some Reg_denied_auth
  | 2 -> Some Reg_denied_stale
  | _ -> None

let pp_reg_code fmt c =
  Format.pp_print_string fmt
    (match c with
    | Reg_accepted -> "accepted"
    | Reg_denied_auth -> "denied-authentication"
    | Reg_denied_stale -> "denied-stale-sequence")
