open Netsim

let advert_port = 435

type t = {
  fa_node : Net.node;
  iface : Net.iface;
  mutable visitor_list : (Ipv4_addr.t * Mac_addr.t) list;
  mutable pending : (Ipv4_addr.t * Ipv4_addr.t) list;
      (* home address, requester source — awaiting a home-agent reply *)
  mutable delivered : int;
  mutable relayed : int;
  mutable up : bool;  (* false while crashed *)
}

let node t = t.fa_node
let address t = Net.iface_addr t.iface
let visitors t = t.visitor_list
let packets_delivered t = t.delivered
let registrations_relayed t = t.relayed

let advert_payload fa_addr =
  let buf = Bytes.make 5 '\000' in
  Bytes.set buf 0 (Char.chr 9);
  let a, b, c, d = Ipv4_addr.to_octets fa_addr in
  Bytes.set buf 1 (Char.chr a);
  Bytes.set buf 2 (Char.chr b);
  Bytes.set buf 3 (Char.chr c);
  Bytes.set buf 4 (Char.chr d);
  buf

let advert_addr payload =
  if Bytes.length payload = 5 && Char.code (Bytes.get payload 0) = 9 then
    Some
      (Ipv4_addr.of_octets
         (Char.code (Bytes.get payload 1))
         (Char.code (Bytes.get payload 2))
         (Char.code (Bytes.get payload 3))
         (Char.code (Bytes.get payload 4)))
  else None

let visitor_mac t home =
  List.assoc_opt home t.visitor_list

let mh_mac t home = Net.neighbour_on_segment t.fa_node home

(* Relay registration traffic.  Requests come from visitors on the
   segment; replies come back from home agents. *)
let handle_registration t udp (dgram : Transport.Udp_service.datagram) =
  if not t.up then ()
  else
  let payload = dgram.Transport.Udp_service.payload in
  if Registration.is_request payload then begin
    match
      ( Registration.peek_request_home payload,
        Registration.peek_request_home_agent payload )
    with
    | Some home, Some home_agent ->
        t.pending <- (home, dgram.Transport.Udp_service.src) :: t.pending;
        t.relayed <- t.relayed + 1;
        ignore
          (Transport.Udp_service.send udp ~src:(address t) ~dst:home_agent
             ~src_port:Transport.Well_known.mip_registration
             ~dst_port:Transport.Well_known.mip_registration payload)
    | _ -> ()
  end
  else if Registration.is_reply payload then begin
    match Registration.peek_reply_home payload with
    | None -> ()
    | Some home -> (
        if List.mem_assoc home t.pending then begin
          t.pending <- List.remove_assoc home t.pending;
          (* Record the visitor (its MAC found on our segment) and relay
             the reply in a single link-layer hop. *)
          match mh_mac t home with
          | None -> ()
          | Some (_, mac) ->
              t.visitor_list <-
                (home, mac) :: List.remove_assoc home t.visitor_list;
              ignore
                (Transport.Udp_service.send udp ~src:(address t) ~dst:home
                   ~via:t.iface ~l2_dst:mac
                   ~src_port:Transport.Well_known.mip_registration
                   ~dst_port:Transport.Well_known.mip_registration payload)
        end)
  end

(* Decapsulate tunnels from the home agent and deliver the final hop. *)
let intercept t ~flow (pkt : Ipv4_packet.t) =
  if not t.up then false
  else if not (Ipv4_addr.equal pkt.Ipv4_packet.dst (address t)) then false
  else
    match Encap.unwrap pkt with
    | None -> false
    | Some (_, inner) -> (
        match visitor_mac t inner.Ipv4_packet.dst with
        | None -> false
        | Some mac ->
            t.delivered <- t.delivered + 1;
            Trace.emit_decapsulate
              (Net.trace (Net.node_net t.fa_node))
              ~node:(Net.node_name t.fa_node) ~id:0 ~flow ~pkt:inner;
            ignore
              (Net.send t.fa_node ~flow ~via:t.iface ~l2_dst:mac inner);
            true)

let create fa_node ~iface ?(advert_interval = 5.0) ?(advertise = true)
    ?(advert_count = 12) () =
  let t =
    { fa_node; iface; visitor_list = []; pending = []; delivered = 0;
      relayed = 0; up = true }
  in
  let udp = Transport.Udp_service.get fa_node in
  Transport.Udp_service.listen udp ~port:Transport.Well_known.mip_registration
    (fun svc dgram -> handle_registration t svc dgram);
  Net.set_intercept fa_node (Some (fun ~flow pkt -> intercept t ~flow pkt));
  if advertise then begin
    let eng = Net.node_engine fa_node in
    (* Beacons are capped so simulations that drain the event queue
       terminate, and stay well inside a registration lifetime so draining
       does not expire bindings. *)
    let rec beacon n =
      if t.up then
        ignore
          (Transport.Udp_service.send udp ~src:(address t)
             ~dst:Ipv4_addr.broadcast ~via:t.iface ~src_port:advert_port
             ~dst_port:advert_port
             (advert_payload (address t)));
      if n < advert_count then
        Engine.after eng advert_interval (fun () -> beacon (n + 1))
    in
    beacon 0
  end;
  t

(* Crash/restart: the visitor list and the pending-relay table are soft
   state; while down the FA neither relays registrations, delivers
   tunnels, nor beacons.  Visitors must re-register after a restart. *)
let crash t =
  t.up <- false;
  t.visitor_list <- [];
  t.pending <- []

let restart t = t.up <- true
let is_up t = t.up

let advert_agent_address = advert_addr

let on_advert node callback =
  let udp = Transport.Udp_service.get node in
  Transport.Udp_service.listen udp ~port:advert_port (fun svc dgram ->
      match advert_addr dgram.Transport.Udp_service.payload with
      | Some fa_addr ->
          Transport.Udp_service.unlisten svc ~port:advert_port;
          callback ~fa_addr
      | None -> ())
