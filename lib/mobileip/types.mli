(** Shared Mobile IP types: mobility bindings and their lifetimes. *)

type binding = {
  home : Netsim.Ipv4_addr.t;
  care_of : Netsim.Ipv4_addr.t;
  lifetime : float;  (** seconds granted *)
  registered_at : float;  (** simulation time of registration *)
  sequence : int;  (** registration sequence number, monotonic per MH *)
}

val binding_valid : now:float -> binding -> bool
val binding_expires_at : binding -> float
val pp_binding : Format.formatter -> binding -> unit

(** Result codes carried in registration replies. *)
type reg_code =
  | Reg_accepted
  | Reg_denied_auth  (** authenticator did not verify *)
  | Reg_denied_stale  (** sequence number not newer than current binding *)

val reg_code_to_int : reg_code -> int
val reg_code_of_int : int -> reg_code option
val pp_reg_code : Format.formatter -> reg_code -> unit
