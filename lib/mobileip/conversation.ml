open Netsim

type udp_result = {
  cell : Grid.cell;
  requests_sent : int;
  requests_delivered : int;
  replies_sent : int;
  replies_delivered : int;
  transport_consistent : bool;
  request_hops : int;
  reply_hops : int;
  request_wire_bytes : int;
  reply_wire_bytes : int;
  request_latency : float option;
  reply_latency : float option;
}

let pp_udp_result fmt r =
  Format.fprintf fmt
    "%s: req %d/%d replies %d/%d consistent=%b hops %d/%d bytes %d/%d"
    (Grid.cell_to_string r.cell) r.requests_delivered r.requests_sent
    r.replies_delivered r.replies_sent r.transport_consistent r.request_hops
    r.reply_hops r.request_wire_bytes r.reply_wire_bytes

let out_uses_home = function
  | Grid.Out_IE | Grid.Out_DE | Grid.Out_DH -> true
  | Grid.Out_DT -> false

let require_coa mh =
  match Mobile_host.care_of_address mh with
  | Some c -> c
  | None -> invalid_arg "Conversation: the mobile host must be away from home"

let configure ~mh ~ch ~ch_addr ~(cell : Grid.cell) =
  let home = Mobile_host.home_address mh in
  let coa = require_coa mh in
  Correspondent.learn_binding ch ~home ~care_of:coa ~lifetime:3600;
  Correspondent.force_in_method ch ~dst:home (Some cell.Grid.incoming);
  (match cell.Grid.outgoing with
  | Grid.Out_DT ->
      (* An application decision: the MH sources from its temporary
         address; the policy machinery is bypassed, not configured. *)
      Mobile_host.pin_method mh ~dst:ch_addr None
  | m -> Mobile_host.pin_method mh ~dst:ch_addr (Some m));
  (home, coa)

let deconfigure ~mh ~ch ~ch_addr =
  let home = Mobile_host.home_address mh in
  Correspondent.force_in_method ch ~dst:home None;
  Mobile_host.pin_method mh ~dst:ch_addr None

let flow_metrics net ~flow ~target =
  let trace = Net.trace net in
  let hops = Trace.transmissions trace ~flow in
  let bytes = Trace.wire_bytes trace ~flow in
  let latency =
    match (Trace.send_time trace ~flow, Trace.delivery_time trace ~flow ~node:target) with
    | Some t0, Some t1 -> Some (t1 -. t0)
    | _ -> None
  in
  (hops, bytes, latency)

let run_udp ~net ~mh ~ch ~ch_addr ~cell ?(requests = 3) ?(payload_size = 64)
    ?(port = 7) () =
  let home, coa = configure ~mh ~ch ~ch_addr ~cell in
  let req_src = if out_uses_home cell.Grid.outgoing then home else coa in
  let mh_node = Mobile_host.node mh in
  let ch_node = Correspondent.node ch in
  let mh_udp = Transport.Udp_service.get mh_node in
  let ch_udp = Transport.Udp_service.get ch_node in
  let mh_port = Transport.Udp_service.ephemeral_port mh_udp in
  let requests_delivered = ref 0 in
  let reply_flows = ref [] in
  let replies_delivered = ref 0 in
  let reply_dsts = ref [] in
  (* The correspondent application answers to the address the incoming
     method is defined for: the permanent home address (the forced In-DT
     method rewrites it to the temporary address on the way out). *)
  Transport.Udp_service.listen ch_udp ~port (fun svc dgram ->
      incr requests_delivered;
      let flow =
        Transport.Udp_service.send svc ~src:ch_addr ~dst:home ~src_port:port
          ~dst_port:dgram.Transport.Udp_service.src_port
          dgram.Transport.Udp_service.payload
      in
      reply_flows := flow :: !reply_flows);
  Transport.Udp_service.listen mh_udp ~port:mh_port (fun _svc dgram ->
      incr replies_delivered;
      reply_dsts := dgram.Transport.Udp_service.dst :: !reply_dsts);
  let req_flows = ref [] in
  let eng = Net.node_engine mh_node in
  let rec send_request i =
    if i < requests then begin
      let flow =
        Transport.Udp_service.send mh_udp ~src:req_src ~dst:ch_addr
          ~src_port:mh_port ~dst_port:port
          (Bytes.make payload_size 'q')
      in
      req_flows := flow :: !req_flows;
      Engine.after eng 0.25 (fun () -> send_request (i + 1))
    end
  in
  send_request 0;
  Net.run net;
  let transport_consistent =
    !replies_delivered > 0
    && List.for_all (Ipv4_addr.equal req_src) !reply_dsts
  in
  let request_hops, request_wire_bytes, request_latency =
    match !req_flows with
    | flow :: _ -> flow_metrics net ~flow ~target:(Net.node_name ch_node)
    | [] -> (0, 0, None)
  in
  let reply_hops, reply_wire_bytes, reply_latency =
    match !reply_flows with
    | flow :: _ -> flow_metrics net ~flow ~target:(Net.node_name mh_node)
    | [] -> (0, 0, None)
  in
  deconfigure ~mh ~ch ~ch_addr;
  {
    cell;
    requests_sent = requests;
    requests_delivered = !requests_delivered;
    replies_sent = List.length !reply_flows;
    replies_delivered = !replies_delivered;
    transport_consistent;
    request_hops;
    reply_hops;
    request_wire_bytes;
    reply_wire_bytes;
    request_latency;
    reply_latency;
  }

type tcp_result = {
  t_cell : Grid.cell;
  connected : bool;
  echoed : bool;
  final_state : Transport.Tcp.state;
  client_retransmissions : int;
}

let pp_tcp_result fmt r =
  Format.fprintf fmt "%s: connected=%b echoed=%b final=%a retx=%d"
    (Grid.cell_to_string r.t_cell) r.connected r.echoed Transport.Tcp.pp_state
    r.final_state r.client_retransmissions

let run_tcp ~net ~mh ~ch ~ch_addr ~cell ?(port = 8080) () =
  let home, coa = configure ~mh ~ch ~ch_addr ~cell in
  let src = if out_uses_home cell.Grid.outgoing then home else coa in
  let mh_node = Mobile_host.node mh in
  let ch_node = Correspondent.node ch in
  let mh_tcp = Transport.Tcp.get mh_node in
  let ch_tcp = Transport.Tcp.get ch_node in
  Transport.Tcp.listen ch_tcp ~port (fun conn ->
      Transport.Tcp.on_receive conn (fun data ->
          Transport.Tcp.send_data conn data;
          Transport.Tcp.close conn));
  let connected = ref false in
  let echoed = ref false in
  let conn =
    Transport.Tcp.connect mh_tcp ~src ~dst:ch_addr ~dst_port:port ()
  in
  Transport.Tcp.on_state_change conn (fun st ->
      if st = Transport.Tcp.Established then connected := true);
  Transport.Tcp.on_receive conn (fun _data ->
      echoed := true;
      Transport.Tcp.close conn);
  Transport.Tcp.send_data conn (Bytes.of_string "grid-cell-probe");
  Net.run net;
  Transport.Tcp.unlisten ch_tcp ~port;
  deconfigure ~mh ~ch ~ch_addr;
  {
    t_cell = cell;
    connected = !connected;
    echoed = !echoed;
    final_state = Transport.Tcp.state conn;
    client_retransmissions = Transport.Tcp.retransmissions conn;
  }
