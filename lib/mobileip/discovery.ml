let publish_care_of mh ~dns_server ~name ?(ttl = 120) () =
  match Mobile_host.care_of_address mh with
  | None -> false
  | Some care_of ->
      Dns_ext.Client.publish_temporary (Mobile_host.node mh) ~server:dns_server
        ~src:care_of ~name ~care_of ~ttl ();
      true

let withdraw_care_of mh ~dns_server ~name =
  let src = Mobile_host.care_of_address mh in
  Dns_ext.Client.publish_temporary (Mobile_host.node mh) ~server:dns_server
    ?src ~name ~care_of:Netsim.Ipv4_addr.any ~ttl:0 ()

let discover_via_dns ch ~dns_server ~name ?(on_result = fun ~learned:_ -> ())
    () =
  Dns_ext.Client.resolve (Correspondent.node ch) ~server:dns_server ~name
    (fun answer ->
      match (answer.Dns_ext.Client.permanent, answer.Dns_ext.Client.temporary)
      with
      | Some home, Some (care_of, ttl) ->
          Correspondent.learn_binding ch ~home ~care_of ~lifetime:ttl;
          on_result ~learned:true
      | _ -> on_result ~learned:false)
