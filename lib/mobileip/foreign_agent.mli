(** An IETF-style foreign agent (paper §2, §5).

    "When connecting via a foreign agent, the home agent tunnels packets to
    this foreign agent, which decapsulates them and delivers the enclosed
    packet to the mobile host" — using In-DH for the final hop.

    The agent:

    - periodically broadcasts agent advertisements on its segment (UDP
      port 435) so arriving mobile hosts can find it;
    - relays registration requests from visiting mobile hosts to the home
      agent named inside the request (reading only unauthenticated fields;
      the MH-HA authenticator passes through untouched), and relays the
      reply back to the visitor in a single link-layer hop;
    - keeps a visitor list (home address → MAC) for accepted
      registrations;
    - decapsulates tunnels addressed to itself whose inner destination is
      a visitor, delivering the inner packet link-layer-direct (In-DH).

    The node hosting the agent should be a router: it is also the
    visitors' first-hop gateway for outgoing traffic. *)

type t

val advert_port : int
(** 435. *)

val create :
  Netsim.Net.node ->
  iface:Netsim.Net.iface ->
  ?advert_interval:float ->
  ?advertise:bool ->
  ?advert_count:int ->
  unit ->
  t
(** [iface] is the interface on the visited segment.  Advertisements are
    broadcast every [advert_interval] seconds (default 5 s) when
    [advertise] (default true), at most [advert_count] times beyond the
    first (default 12 — bounded so simulations that drain the event queue
    terminate; raise it for long-running worlds). *)

val node : t -> Netsim.Net.node
val address : t -> Netsim.Ipv4_addr.t
val visitors : t -> (Netsim.Ipv4_addr.t * Netsim.Mac_addr.t) list
val packets_delivered : t -> int
(** Final-hop In-DH deliveries of decapsulated packets. *)

val registrations_relayed : t -> int

(** {1 Crash and restart}

    The visitor list and pending-relay table are soft state: a crash loses
    both, and while down the agent neither relays registrations, delivers
    tunnels, nor beacons.  Visitors must re-register after a restart. *)

val crash : t -> unit
val restart : t -> unit
val is_up : t -> bool

val on_advert :
  Netsim.Net.node -> (fa_addr:Netsim.Ipv4_addr.t -> unit) -> unit
(** Client side: listen (once) for the next agent advertisement on the
    node's segment. *)

val advert_agent_address : Bytes.t -> Netsim.Ipv4_addr.t option
(** Parse an advertisement payload (the mobile host's auto-attach listener
    uses this to examine every advertisement it hears). *)
