open Netsim

type capability = Conventional | Decap_capable | Mobile_aware

let pp_capability fmt c =
  Format.pp_print_string fmt
    (match c with
    | Conventional -> "conventional"
    | Decap_capable -> "decapsulation-capable"
    | Mobile_aware -> "mobile-aware")

type t = {
  ch_node : Net.node;
  cap : capability;
  encap : Encap.mode;
  cache : (Ipv4_addr.t, Types.binding) Hashtbl.t;
  forced : (Ipv4_addr.t, Grid.in_method) Hashtbl.t;
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable adverts : int;
  mutable tunnel_ident : int;
  mutable icmp_consumed : int;
      (* destination-unreachable errors acted on as negative feedback *)
}

let node t = t.ch_node
let capability t = t.cap
let packets_encapsulated t = t.encapsulated
let packets_decapsulated t = t.decapsulated
let adverts_received t = t.adverts
let icmp_errors_consumed t = t.icmp_consumed

let learn_binding t ~home ~care_of ~lifetime =
  match t.cap with
  | Conventional | Decap_capable -> ()
  | Mobile_aware ->
      if lifetime <= 0 then Hashtbl.remove t.cache home
      else
        Hashtbl.replace t.cache home
          {
            Types.home;
            care_of;
            lifetime = float_of_int lifetime;
            registered_at = Net.node_now t.ch_node;
            sequence = 0;
          }

let forget_binding t ~home = Hashtbl.remove t.cache home

let cached_care_of t ~home =
  match Hashtbl.find_opt t.cache home with
  | Some b when Types.binding_valid ~now:(Net.node_now t.ch_node) b ->
      Some b.Types.care_of
  | Some _ ->
      Hashtbl.remove t.cache home;
      None
  | None -> None

let binding_cache t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.cache []
  |> List.sort (fun a b -> Ipv4_addr.compare a.Types.home b.Types.home)

let force_in_method t ~dst m =
  match m with
  | Some m -> Hashtbl.replace t.forced dst m
  | None -> Hashtbl.remove t.forced dst

let auto_method t ~dst =
  match t.cap with
  | Conventional | Decap_capable -> Grid.In_IE
  | Mobile_aware -> (
      match cached_care_of t ~home:dst with
      | None -> Grid.In_IE
      | Some coa -> (
          match Net.neighbour_on_segment t.ch_node coa with
          | Some _ -> Grid.In_DH
          | None -> Grid.In_DE))

let in_method_for t ~dst =
  match Hashtbl.find_opt t.forced dst with
  | Some m -> m
  | None -> auto_method t ~dst

let fresh_tunnel_ident t =
  let i = t.tunnel_ident in
  t.tunnel_ident <- (if i >= 0xffff then 1 else i + 1);
  i

let own_address t =
  match Net.ifaces t.ch_node with
  | i :: _ -> Net.iface_addr i
  | [] -> Ipv4_addr.any

let record_encap t outer =
  t.encapsulated <- t.encapsulated + 1;
  Trace.emit_encapsulate
    (Net.trace (Net.node_net t.ch_node))
    ~node:(Net.node_name t.ch_node) ~id:0 ~flow:0 ~pkt:outer

(* Route override: the CH-side delivery decision for every outgoing
   packet.  In-IE is "no decision": plain packets to the home address find
   the home agent on their own. *)
let override t (pkt : Ipv4_packet.t) =
  let dst = pkt.Ipv4_packet.dst in
  match in_method_for t ~dst with
  | Grid.In_IE -> None
  | Grid.In_DE -> (
      match cached_care_of t ~home:dst with
      | None ->
          if Hashtbl.mem t.forced dst then
            Some (Net.Discard "in-de-forced-without-binding")
          else None
      | Some coa ->
          let src =
            if Ipv4_addr.equal pkt.Ipv4_packet.src Ipv4_addr.any then
              own_address t
            else pkt.Ipv4_packet.src
          in
          let outer =
            Encap.wrap t.encap ~src ~dst:coa ~ident:(fresh_tunnel_ident t)
              { pkt with Ipv4_packet.src }
          in
          record_encap t outer;
          Some (Net.Resubmit outer))
  | Grid.In_DH -> (
      match cached_care_of t ~home:dst with
      | None ->
          if Hashtbl.mem t.forced dst then
            Some (Net.Discard "in-dh-forced-without-binding")
          else None
      | Some coa -> (
          match Net.neighbour_on_segment t.ch_node coa with
          | None -> Some (Net.Discard "in-dh-peer-not-on-segment")
          | Some (out, mac) ->
              (* The IP packet is exactly what a mobility-unaware host
                 would send; only the link-layer destination differs. *)
              Some (Net.Via { out; next_hop = None; l2_dst = Some mac })))
  | Grid.In_DT -> (
      match cached_care_of t ~home:dst with
      | None ->
          if Hashtbl.mem t.forced dst then
            Some (Net.Discard "in-dt-forced-without-binding")
          else None
      | Some coa -> Some (Net.Resubmit { pkt with Ipv4_packet.dst = coa }))

(* Decapsulation of tunnels addressed to us: the Out-DE receive path. *)
let intercept t ~flow (pkt : Ipv4_packet.t) =
  if not (Net.owns_address t.ch_node pkt.Ipv4_packet.dst) then false
  else
    match Encap.unwrap pkt with
    | None -> false
    | Some (_, inner) ->
        t.decapsulated <- t.decapsulated + 1;
        Trace.emit_decapsulate
          (Net.trace (Net.node_net t.ch_node))
          ~node:(Net.node_name t.ch_node) ~id:0 ~flow ~pkt:inner;
        Net.inject_local t.ch_node ~flow inner;
        true

let create ch_node ~capability ?(encap = Encap.Ipip) () =
  let t =
    {
      ch_node;
      cap = capability;
      encap;
      cache = Hashtbl.create 8;
      forced = Hashtbl.create 8;
      encapsulated = 0;
      decapsulated = 0;
      adverts = 0;
      tunnel_ident = 1;
      icmp_consumed = 0;
    }
  in
  (match capability with
  | Conventional -> ()
  | Decap_capable | Mobile_aware ->
      Net.set_intercept ch_node (Some (fun ~flow pkt -> intercept t ~flow pkt)));
  (* The override is installed regardless of capability: for conventional
     hosts it always decides In-IE ("no decision"), and experiments may
     force any method on any capability level. *)
  Net.set_route_override ch_node (Some (fun pkt -> override t pkt));
  (match capability with
  | Conventional | Decap_capable -> ()
  | Mobile_aware ->
      let icmp = Transport.Icmp_service.get ch_node in
      Transport.Icmp_service.on_care_of_advert icmp
        (Some
           (fun ~home ~care_of ~lifetime ->
             t.adverts <- t.adverts + 1;
             learn_binding t ~home ~care_of ~lifetime));
      (* A destination-unreachable about a care-of address we tunnel to
         means the cached binding routes into a black hole (the host
         moved on, or a filter refuses the tunnel): drop those entries so
         traffic falls back to In-IE via the home agent. *)
      Transport.Icmp_service.on_unreachable icmp
        (Some
           (fun ~code ~src:_ ~original ->
             match (code, original) with
             | ( ( Icmp_wire.Admin_prohibited | Icmp_wire.Host_unreachable
                 | Icmp_wire.Net_unreachable ),
                 Some (_, dst) ) ->
                 let stale =
                   Hashtbl.fold
                     (fun home b acc ->
                       if Ipv4_addr.equal b.Types.care_of dst then home :: acc
                       else acc)
                     t.cache []
                 in
                 if stale <> [] then begin
                   t.icmp_consumed <- t.icmp_consumed + 1;
                   List.iter (Hashtbl.remove t.cache) stale
                 end
             | _ -> ())));
  let (_ : Transport.Icmp_service.t) = Transport.Icmp_service.get ch_node in
  t
