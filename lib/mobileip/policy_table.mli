(** The user-configured mobility policy table (paper §7.1.2): rules
    "specified similarly to the way routing table entries are currently
    specified, as an address and a mask value", stating for which
    destinations Mobile IP should begin in an optimistic mode (try Out-DH
    first) and for which in a pessimistic mode (start from Out-IE) —
    "a single rule [can] identify the entire home network as a region
    where Out-IE should always be used". *)

type mode =
  | Optimistic  (** start aggressive: Out-DH first *)
  | Pessimistic  (** start conservative: Out-IE first *)

val pp_mode : Format.formatter -> mode -> unit

type t

val create : ?default:mode -> unit -> t
(** Default mode for unmatched destinations is [Optimistic]. *)

val add_rule : t -> Netsim.Ipv4_addr.Prefix.t -> mode -> unit
val remove_rule : t -> Netsim.Ipv4_addr.Prefix.t -> unit

val mode_for : t -> Netsim.Ipv4_addr.t -> mode
(** Longest-prefix-match over the rules; the default when none matches. *)

val rules : t -> (Netsim.Ipv4_addr.Prefix.t * mode) list
(** Most specific first. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse a user configuration, one rule per line, "specified similarly to
    the way routing table entries are currently specified" (§7.1.2):

    {v
    # the whole home network always needs the conservative method
    36.0.0.0/8      pessimistic
    131.7.42.0/24   optimistic
    default         optimistic
    v}

    Blank lines and [#] comments are ignored; at most one [default] line;
    errors carry the offending line number. *)

val to_string : t -> string
(** Render back to the configuration syntax ({!of_string} round-trips). *)
