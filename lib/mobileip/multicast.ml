open Netsim

let join_via_home ha mh ~group =
  Home_agent.subscribe_multicast ha ~group ~home:(Mobile_host.home_address mh)

let leave_via_home ha mh ~group =
  Home_agent.unsubscribe_multicast ha ~group
    ~home:(Mobile_host.home_address mh)

let join_locally mh ~iface ~group =
  Net.join_group (Mobile_host.node mh) iface group

let leave_locally mh ~iface ~group =
  Net.leave_group (Mobile_host.node mh) iface group

let send_stream node ~via ~group ~port ~count ~interval ~payload_size () =
  if not (Ipv4_addr.is_multicast group) then
    invalid_arg "Multicast.send_stream: not a multicast group";
  let udp = Transport.Udp_service.get node in
  let eng = Net.node_engine node in
  let flows = ref [] in
  let rec tick i =
    if i < count then begin
      let flow =
        Transport.Udp_service.send udp ~via ~dst:group ~src_port:port
          ~dst_port:port
          (Bytes.make payload_size 'm')
      in
      flows := flow :: !flows;
      Engine.after eng interval (fun () -> tick (i + 1))
    end
  in
  tick 0;
  fun () -> List.rev !flows

let receive_count node ~port () =
  let udp = Transport.Udp_service.get node in
  let n = ref 0 in
  Transport.Udp_service.listen udp ~port (fun _svc _dgram -> incr n);
  fun () -> !n
