(** Encapsulation modes for Mobile IP tunnels (§2, §3.3).

    The paper notes that IP-in-IP "typically adds 20 bytes" and that the
    overhead "can be minimized by use of Generic Routing Encapsulation or
    Minimal Encapsulation".  All three are available; IP-in-IP is the
    default everywhere, and experiment E6 compares the overheads. *)

type mode =
  | Ipip  (** RFC 2003 style IP-in-IP: +20 bytes *)
  | Minimal  (** Perkins minimal encapsulation: +12 bytes *)
  | Gre  (** RFC 1702 GRE: +24 bytes *)

val all_modes : mode list
val overhead : mode -> int
val mode_to_string : mode -> string
val pp_mode : Format.formatter -> mode -> unit

val wrap :
  mode ->
  src:Netsim.Ipv4_addr.t ->
  dst:Netsim.Ipv4_addr.t ->
  ?ttl:int ->
  ?ident:int ->
  Netsim.Ipv4_packet.t ->
  Netsim.Ipv4_packet.t
(** Build the outer packet carrying the given inner packet.  The outer
    header copies the inner TOS; TTL defaults to 64; the outer IP ident
    defaults to the inner one (pass a tunnel-local [?ident] when a single
    encapsulator serves many inner senders, so outer fragments cannot
    collide). *)

val unwrap : Netsim.Ipv4_packet.t -> (mode * Netsim.Ipv4_packet.t) option
(** Recover the inner packet from an encapsulated one; [None] when the
    packet is not a tunnel packet.  For minimal encapsulation the inner
    header's TTL/TOS/ident are inherited from the outer header, as the
    format specifies. *)

val is_tunnel : Netsim.Ipv4_packet.t -> bool
