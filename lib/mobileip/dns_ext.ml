open Netsim

(* Wire format, all messages on UDP port 53:
   query:    op=1, name_len(1), name
   response: op=2, name_len(1), name, flags(1: bit0 permanent, bit1 temp),
             permanent(4), temporary(4), ttl(2)
   update:   op=3, name_len(1), name, care_of(4), ttl(2) — ttl 0 withdraws *)

let op_query = 1
let op_response = 2
let op_update = 3

let put_addr buf off a =
  let o1, o2, o3, o4 = Ipv4_addr.to_octets a in
  Bytes.set buf off (Char.chr o1);
  Bytes.set buf (off + 1) (Char.chr o2);
  Bytes.set buf (off + 2) (Char.chr o3);
  Bytes.set buf (off + 3) (Char.chr o4)

let get_addr buf off =
  Ipv4_addr.of_octets
    (Char.code (Bytes.get buf off))
    (Char.code (Bytes.get buf (off + 1)))
    (Char.code (Bytes.get buf (off + 2)))
    (Char.code (Bytes.get buf (off + 3)))

let put_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let check_name name =
  if String.length name = 0 || String.length name > 255 then
    invalid_arg "Dns_ext: name must be 1..255 bytes"

let encode_query ~name =
  check_name name;
  let n = String.length name in
  let buf = Bytes.make (2 + n) '\000' in
  Bytes.set buf 0 (Char.chr op_query);
  Bytes.set buf 1 (Char.chr n);
  Bytes.blit_string name 0 buf 2 n;
  buf

let encode_update ~name ~care_of ~ttl =
  check_name name;
  let n = String.length name in
  let buf = Bytes.make (2 + n + 6) '\000' in
  Bytes.set buf 0 (Char.chr op_update);
  Bytes.set buf 1 (Char.chr n);
  Bytes.blit_string name 0 buf 2 n;
  put_addr buf (2 + n) care_of;
  put_u16 buf (6 + n) ttl;
  buf

let decode_name buf =
  if Bytes.length buf < 2 then None
  else
    let n = Char.code (Bytes.get buf 1) in
    if Bytes.length buf < 2 + n then None
    else Some (Bytes.sub_string buf 2 n)

let encode_response ~name ~permanent ~temporary =
  let n = String.length name in
  let buf = Bytes.make (2 + n + 11) '\000' in
  Bytes.set buf 0 (Char.chr op_response);
  Bytes.set buf 1 (Char.chr n);
  Bytes.blit_string name 0 buf 2 n;
  let flags =
    (match permanent with Some _ -> 1 | None -> 0)
    lor match temporary with Some _ -> 2 | None -> 0
  in
  Bytes.set buf (2 + n) (Char.chr flags);
  (match permanent with Some a -> put_addr buf (3 + n) a | None -> ());
  (match temporary with
  | Some (a, ttl) ->
      put_addr buf (7 + n) a;
      put_u16 buf (11 + n) ttl
  | None -> ());
  buf

let decode_response buf =
  match decode_name buf with
  | None -> None
  | Some name ->
      let n = String.length name in
      if Bytes.length buf < 2 + n + 11 then None
      else
        let flags = Char.code (Bytes.get buf (2 + n)) in
        let permanent =
          if flags land 1 <> 0 then Some (get_addr buf (3 + n)) else None
        in
        let temporary =
          if flags land 2 <> 0 then
            Some (get_addr buf (7 + n), get_u16 buf (11 + n))
          else None
        in
        Some (name, permanent, temporary)

module Server = struct
  type record = {
    mutable permanent : Ipv4_addr.t option;
    mutable temporary : (Ipv4_addr.t * int * float) option;
        (* address, ttl, installed-at *)
  }

  type t = {
    srv_node : Net.node;
    zone : (string, record) Hashtbl.t;
    mutable queries : int;
    mutable updates : int;
  }

  let record_for t name =
    match Hashtbl.find_opt t.zone name with
    | Some r -> r
    | None ->
        let r = { permanent = None; temporary = None } in
        Hashtbl.add t.zone name r;
        r

  let valid_temporary t r =
    match r.temporary with
    | None -> None
    | Some (a, ttl, at) ->
        let now = Net.node_now t.srv_node in
        let remaining = float_of_int ttl -. (now -. at) in
        if remaining > 0.0 then Some (a, int_of_float (ceil remaining))
        else begin
          r.temporary <- None;
          None
        end

  let handle t udp (dgram : Transport.Udp_service.datagram) =
    let payload = dgram.Transport.Udp_service.payload in
    if Bytes.length payload < 2 then ()
    else
      match Char.code (Bytes.get payload 0) with
      | op when op = op_query -> (
          match decode_name payload with
          | None -> ()
          | Some name ->
              t.queries <- t.queries + 1;
              let permanent, temporary =
                match Hashtbl.find_opt t.zone name with
                | None -> (None, None)
                | Some r -> (r.permanent, valid_temporary t r)
              in
              ignore
                (Transport.Udp_service.send udp ~src:dgram.dst ~dst:dgram.src
                   ~src_port:Transport.Well_known.dns
                   ~dst_port:dgram.src_port
                   (encode_response ~name ~permanent ~temporary)))
      | op when op = op_update -> (
          match decode_name payload with
          | None -> ()
          | Some name ->
              let n = String.length name in
              if Bytes.length payload >= 2 + n + 6 then begin
                t.updates <- t.updates + 1;
                let care_of = get_addr payload (2 + n) in
                let ttl = get_u16 payload (6 + n) in
                let r = record_for t name in
                if ttl = 0 then r.temporary <- None
                else
                  r.temporary <-
                    Some (care_of, ttl, Net.node_now t.srv_node)
              end)
      | _ -> ()

  let create node () =
    let t =
      { srv_node = node; zone = Hashtbl.create 16; queries = 0; updates = 0 }
    in
    let udp = Transport.Udp_service.get node in
    Transport.Udp_service.listen udp ~port:Transport.Well_known.dns
      (fun svc dgram -> handle t svc dgram);
    t

  let add_host t ~name ~addr = (record_for t name).permanent <- Some addr

  let set_temporary t ~name v =
    (record_for t name).temporary <-
      (match v with
      | Some (a, ttl) -> Some (a, ttl, Net.node_now t.srv_node)
      | None -> None)

  let lookup t ~name =
    match Hashtbl.find_opt t.zone name with
    | None -> None
    | Some r -> Some (r.permanent, valid_temporary t r)

  let queries_served t = t.queries
  let updates_applied t = t.updates
end

module Client = struct
  type answer = {
    name : string;
    permanent : Ipv4_addr.t option;
    temporary : (Ipv4_addr.t * int) option;
  }

  let resolve node ~server ~name callback =
    let udp = Transport.Udp_service.get node in
    let port = Transport.Udp_service.ephemeral_port udp in
    Transport.Udp_service.listen udp ~port (fun svc dgram ->
        match decode_response dgram.Transport.Udp_service.payload with
        | Some (rname, permanent, temporary) when rname = name ->
            Transport.Udp_service.unlisten svc ~port;
            callback { name; permanent; temporary }
        | Some _ | None -> ());
    ignore
      (Transport.Udp_service.send udp ~dst:server ~src_port:port
         ~dst_port:Transport.Well_known.dns (encode_query ~name))

  let publish_temporary node ~server ?src ~name ~care_of ~ttl () =
    let udp = Transport.Udp_service.get node in
    let port = Transport.Udp_service.ephemeral_port udp in
    ignore
      (Transport.Udp_service.send udp ?src ~dst:server ~src_port:port
         ~dst_port:Transport.Well_known.dns
         (encode_update ~name ~care_of ~ttl))
end
