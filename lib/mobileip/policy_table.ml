open Netsim

type mode = Optimistic | Pessimistic

let pp_mode fmt m =
  Format.pp_print_string fmt
    (match m with Optimistic -> "optimistic" | Pessimistic -> "pessimistic")

type t = {
  default : mode;
  mutable entries : (Ipv4_addr.Prefix.t * mode) list;  (* most specific first *)
}

let create ?(default = Optimistic) () = { default; entries = [] }

let order (pa, _) (pb, _) =
  Int.compare (Ipv4_addr.Prefix.bits pb) (Ipv4_addr.Prefix.bits pa)

let add_rule t prefix mode =
  t.entries <- List.stable_sort order ((prefix, mode) :: t.entries)

let remove_rule t prefix =
  t.entries <-
    List.filter (fun (p, _) -> not (Ipv4_addr.Prefix.equal p prefix)) t.entries

let mode_for t addr =
  match List.find_opt (fun (p, _) -> Ipv4_addr.Prefix.mem addr p) t.entries with
  | Some (_, m) -> m
  | None -> t.default

let rules t = t.entries

let pp fmt t =
  List.iter
    (fun (p, m) ->
      Format.fprintf fmt "%a -> %a@." Ipv4_addr.Prefix.pp p pp_mode m)
    t.entries;
  Format.fprintf fmt "default -> %a@." pp_mode t.default

let mode_of_string = function
  | "optimistic" -> Some Optimistic
  | "pessimistic" -> Some Pessimistic
  | _ -> None

let of_string text =
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno default entries = function
    | [] ->
        let t = create ?default () in
        List.iter (fun (p, m) -> add_rule t p m) (List.rev entries);
        Ok t
    | raw :: rest -> (
        let line = strip raw in
        if line = "" then go (lineno + 1) default entries rest
        else
          match
            String.split_on_char ' ' line
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          with
          | [ "default"; m ] -> (
              match (mode_of_string m, default) with
              | Some mode, None -> go (lineno + 1) (Some mode) entries rest
              | Some _, Some _ ->
                  Error (Printf.sprintf "line %d: duplicate default" lineno)
              | None, _ ->
                  Error (Printf.sprintf "line %d: unknown mode %S" lineno m))
          | [ prefix_s; m ] -> (
              match
                (Ipv4_addr.Prefix.of_string_opt prefix_s, mode_of_string m)
              with
              | Some p, Some mode ->
                  go (lineno + 1) default ((p, mode) :: entries) rest
              | None, _ ->
                  Error
                    (Printf.sprintf "line %d: bad prefix %S" lineno prefix_s)
              | _, None ->
                  Error (Printf.sprintf "line %d: unknown mode %S" lineno m))
          | _ ->
              Error
                (Printf.sprintf "line %d: expected \"<prefix>/<len> <mode>\""
                   lineno))
  in
  go 1 None [] lines

let to_string t =
  let buf = Buffer.create 128 in
  List.iter
    (fun (p, m) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n"
           (Ipv4_addr.Prefix.to_string p)
           (match m with Optimistic -> "optimistic" | Pessimistic -> "pessimistic")))
    (List.rev t.entries);
  Buffer.add_string buf
    (Printf.sprintf "default %s\n"
       (match t.default with
       | Optimistic -> "optimistic"
       | Pessimistic -> "pessimistic"));
  Buffer.contents buf
