(** Adaptive choice among the three home-address delivery methods (§7.1.2).

    The paper describes two probing orders and their waste:

    - {e conservative-first}: start with Out-IE, tentatively try Out-DE and
      Out-DH over the lifetime of the conversation, returning to the
      conservative method when an aggressive one fails — wasteful when the
      aggressive methods would have worked all along;
    - {e aggressive-first}: start with Out-DH and fall back — wasteful when
      the destination is known to sit behind a protective gateway;
    - {e rule-based}: a user-configured {!Policy_table} says per address
      range whether to begin optimistically or pessimistically.

    Failure is detected through the retransmission indications of the
    paper's proposed IP-interface extension (wired up from
    {!Transport.Tcp.set_feedback} by {!Mobile_host}): repeated
    retransmissions to or from an address suggest the currently selected
    delivery method is not working.

    A method that had to be abandoned is remembered as failed for that
    destination and is not probed again, so each destination converges. *)

type strategy =
  | Conservative_first
  | Aggressive_first
  | Rule_based of Policy_table.t

val pp_strategy : Format.formatter -> strategy -> unit

type event =
  | Original_received
      (** an original (non-retransmitted) packet arrived from the peer:
          the current method is working *)
  | Retransmission_detected
      (** a retransmission was sent to, or received from, the peer *)
  | Icmp_error
      (** a router answered a packet to the peer with an ICMP
          destination-unreachable: authoritative negative feedback, so
          the current method is abandoned immediately rather than after
          [fallback_after] retransmission hints *)

type t

val create :
  ?escalate_after:int ->
  ?fallback_after:int ->
  ?max_destinations:int ->
  strategy ->
  t
(** [escalate_after] consecutive successes trigger a try of the next more
    aggressive method (default 4); [fallback_after] consecutive
    retransmission signals abandon the current method (default 2).
    [max_destinations] (default 1024) caps the per-destination table:
    beyond it the least recently used destination is evicted and, if seen
    again, restarts from the strategy's initial method. *)

val strategy : t -> strategy

val method_for : t -> Netsim.Ipv4_addr.t -> Grid.out_method
(** Current selection for the destination (per-destination state is created
    on first use).  Only returns home-address methods (never [Out_DT] —
    forgoing Mobile IP is an application decision, not a selector one). *)

val report : t -> dst:Netsim.Ipv4_addr.t -> event -> unit

val switches : t -> dst:Netsim.Ipv4_addr.t -> int
(** How many times the method changed for this destination. *)

val failed_methods : t -> dst:Netsim.Ipv4_addr.t -> Grid.out_method list

val converged : t -> dst:Netsim.Ipv4_addr.t -> bool
(** True once the destination's method is stable: it has proven itself and
    no more aggressive method remains to probe. *)

val reset : t -> dst:Netsim.Ipv4_addr.t -> unit
(** Forget everything about a destination (e.g. after moving: the set of
    filters on the path has changed). *)

val reset_all : t -> unit

val known_destinations : t -> Netsim.Ipv4_addr.t list
(** Destinations with per-destination state, sorted — what the invariant
    oracle sweeps when checking that the selection never lands on a
    method recorded as failed. *)
