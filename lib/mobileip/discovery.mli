(** Care-of-address discovery (paper §3.2): the two mechanisms by which "a
    smart correspondent host can learn that a host is mobile and learn its
    current temporary care-of address".

    1. {b ICMP advertisements}: when the home agent forwards a packet it
       sends an ICMP message back to the source.  This is automatic once
       the home agent is created with [~notify_correspondents:true] and the
       correspondent is mobile-aware; nothing to call here.
    2. {b DNS temporary records}: the mobile host publishes its care-of
       address ({!publish_care_of}); a smart correspondent resolving the
       name sees the temporary record and feeds its binding cache
       ({!discover_via_dns}).

    Experiment E11 compares how many packets each mechanism needs before
    the correspondent switches from In-IE to In-DE. *)

val publish_care_of :
  Mobile_host.t ->
  dns_server:Netsim.Ipv4_addr.t ->
  name:string ->
  ?ttl:int ->
  unit ->
  bool
(** Publish the mobile host's current care-of address under its DNS name
    (default TTL 120 s).  Returns false (and does nothing) when the host is
    at home — a host at home has no temporary address.  The update is sent
    from the care-of address: publishing is itself an Out-DT
    conversation. *)

val withdraw_care_of :
  Mobile_host.t -> dns_server:Netsim.Ipv4_addr.t -> name:string -> unit

val discover_via_dns :
  Correspondent.t ->
  dns_server:Netsim.Ipv4_addr.t ->
  name:string ->
  ?on_result:(learned:bool -> unit) ->
  unit ->
  unit
(** Resolve the name; when the answer carries a temporary record, feed the
    correspondent's binding cache so its next packets can go In-DE. *)
