(** Correspondent-host Mobile IP software (paper §5, §7.2).

    Three capability levels exist in the 1996 Internet the paper describes:

    - {e Conventional}: runs stock networking software; always addresses
      the mobile host's home address, so its packets travel In-IE via the
      home agent, and it needs no code here beyond "do nothing".
    - {e Decapsulation-capable}: like "recent versions of Linux", it can
      unwrap encapsulated packets addressed to it, enabling the mobile host
      to use Out-DE.  (The paper's caution applies: automatic decapsulation
      weakens address-based trust; this implementation accepts any tunnel,
      exactly the behaviour the paper warns should be paired with real
      authentication.)
    - {e Mobile-aware}: additionally maintains a binding cache fed by ICMP
      care-of advertisements or DNS temporary records, encapsulates
      directly to the care-of address (In-DE), and switches to single-hop
      link-layer delivery (In-DH) when it can see that the care-of address
      is on one of its own segments.

    For experiments, the per-destination incoming method can be forced to
    any of the four, overriding the automatic choice. *)

type capability = Conventional | Decap_capable | Mobile_aware

val pp_capability : Format.formatter -> capability -> unit

type t

val create :
  Netsim.Net.node -> capability:capability -> ?encap:Encap.mode -> unit -> t

val node : t -> Netsim.Net.node
val capability : t -> capability

(** {1 Binding cache (mobile-aware only)} *)

val learn_binding :
  t ->
  home:Netsim.Ipv4_addr.t ->
  care_of:Netsim.Ipv4_addr.t ->
  lifetime:int ->
  unit
(** Insert/refresh a cache entry (no-op unless mobile-aware; lifetime 0
    removes the entry). *)

val forget_binding : t -> home:Netsim.Ipv4_addr.t -> unit
val cached_care_of : t -> home:Netsim.Ipv4_addr.t -> Netsim.Ipv4_addr.t option
(** Valid (unexpired) cache lookup. *)

val binding_cache : t -> Types.binding list

(** {1 Method choice} *)

val in_method_for : t -> dst:Netsim.Ipv4_addr.t -> Grid.in_method
(** What the next packet to [dst] would use: the forced method if pinned;
    otherwise In-DH when the cached care-of address is a neighbour, In-DE
    when mobile-aware with a valid cache entry, In-IE otherwise. *)

val force_in_method :
  t -> dst:Netsim.Ipv4_addr.t -> Grid.in_method option -> unit
(** Pin (or release) the method used for one destination.  Forcing [In_DE],
    [In_DH] or [In_DT] requires a cache entry for the destination at send
    time; packets are dropped locally (trace reason [Custom]) if it is
    missing — matching the fact that those methods are meaningless without
    knowing the care-of address. *)

(** {1 Statistics} *)

val packets_encapsulated : t -> int
(** In-DE wraps performed. *)

val packets_decapsulated : t -> int
(** Out-DE tunnels unwrapped. *)

val adverts_received : t -> int
(** ICMP care-of advertisements accepted into the cache. *)

val icmp_errors_consumed : t -> int
(** Destination-unreachable errors that invalidated a cached binding
    (mobile-aware only): the error's quoted context named a care-of
    address this host was tunneling to, so the binding was dropped and
    traffic falls back to In-IE via the home agent. *)
