(** The mobile host's Mobile IP software (paper §2, §7).

    Mirrors the paper's Linux implementation structure: "we override the IP
    route lookup routine and replace it with a routine that consults a
    mobility policy table before the usual route table" — here, a
    {!Netsim.Net.set_route_override} hook that decides, per outgoing packet,
    which of the four Out-* methods applies, encapsulating and resubmitting
    through a virtual interface when needed.

    Self-sufficiency is emphasised as in the paper: the mobile host attaches
    directly to visited networks (via DHCP or static assignment) and needs
    no foreign agent, though it can also use one ({!Foreign_agent}).

    Decision machinery, in priority order, for packets sourced from the
    home address (or unbound):

    + a per-destination pinned method (explicit API or experiment control);
    + the adaptive {!Selector}, when installed;
    + port heuristics for unbound sockets (§7.1.1): e.g. TCP port 80 and
      UDP port 53 may safely forgo Mobile IP and use Out-DT;
    + privacy mode forces Out-IE (§4);
    + the default method.

    Packets explicitly sourced from the care-of address bypass Mobile IP
    entirely (Out-DT, §7.1.1's bind-to-physical-interface convention). *)

type t

type location =
  | At_home
  | Away of { care_of : Netsim.Ipv4_addr.t; gateway : Netsim.Ipv4_addr.t }

val create :
  Netsim.Net.node ->
  iface:Netsim.Net.iface ->
  home:Netsim.Ipv4_addr.t ->
  home_prefix:Netsim.Ipv4_addr.Prefix.t ->
  home_agent:Netsim.Ipv4_addr.t ->
  ?auth_key:string ->
  ?encap:Encap.mode ->
  ?lifetime:int ->
  ?retry_base:float ->
  ?retry_cap:float ->
  ?retry_limit:int ->
  ?retry_seed:int ->
  unit ->
  t
(** Wrap a node (assumed currently attached to its home network with
    [home] as the interface address).  Defaults: key ["secret"], IP-in-IP,
    requested registration lifetime 300 s.

    Registration requests are retransmitted with bounded exponential
    backoff: transmission [n] is followed, if unanswered, by a wait of
    [min retry_cap (retry_base *. 2.**n)] scaled by a seeded jitter factor
    in [1, 1.25) (so co-moving hosts do not retransmit in lockstep, and
    identical seeds replay identically).  After [retry_limit]
    transmissions the registration fails: the host marks itself
    unregistered, reports failure to the movement callback, and withdraws
    any binding updates it sent by advertising a zero lifetime to those
    correspondents.  Defaults: base 1 s, cap 8 s, 6 transmissions, seed
    [0x2b5d].
    @raise Invalid_argument unless [0 < retry_base <= retry_cap] and
    [retry_limit >= 1]. *)

val retry_delay : t -> int -> float
(** The backoff delay that would follow transmission [n] — draws (and
    advances) the host's jitter stream; exposed for tests and
    experiments. *)

val node : t -> Netsim.Net.node
val home_address : t -> Netsim.Ipv4_addr.t
val home_agent_address : t -> Netsim.Ipv4_addr.t
val care_of_address : t -> Netsim.Ipv4_addr.t option
val location : t -> location
val at_home : t -> bool
val registered : t -> bool

(** {1 Movement} *)

val move_to_static :
  t ->
  Netsim.Net.segment ->
  addr:Netsim.Ipv4_addr.t ->
  prefix:Netsim.Ipv4_addr.Prefix.t ->
  gateway:Netsim.Ipv4_addr.t ->
  ?on_registered:(bool -> unit) ->
  unit ->
  unit
(** Detach from the current network, attach to the segment with a
    statically assigned care-of address (the "friendly network
    administrator" case), and register with the home agent.  The callback
    reports the registration outcome. *)

val move_to_dhcp :
  t -> Netsim.Net.segment -> ?on_registered:(bool -> unit) -> unit -> unit
(** Like {!move_to_static} but the care-of address, prefix and gateway come
    from a DHCP exchange on the visited segment. *)

val attach_here_via_dhcp :
  t -> ?on_registered:(bool -> unit) -> unit -> unit
(** Acquire a care-of address and register on whatever segment the
    interface is {e currently} attached to — the second half of
    {!move_to_dhcp}, for callers (like {!enable_auto_attach}) that learn
    about attachment after the fact. *)

val enable_auto_attach : t -> unit
(** Eager movement detection: listen for agent advertisements
    ({!Foreign_agent.advert_port}) on the interface.  When an
    advertisement arrives from an agent that is not our current first-hop
    gateway, the link has evidently changed under us — re-attach via DHCP
    and re-register, with no explicit [move_to_*] call.  (The physical
    event — plugging into a different segment — is
    {!Netsim.Net.reattach}; this feature makes the mobility software
    notice on its own.) *)

val disable_auto_attach : t -> unit
val auto_attaches : t -> int
(** How many times auto-attachment has re-registered the host. *)

val move_to_foreign_agent :
  t ->
  Netsim.Net.segment ->
  fa_addr:Netsim.Ipv4_addr.t ->
  ?on_registered:(bool -> unit) ->
  unit ->
  unit
(** Attach via a {!Foreign_agent} on the segment: the MH keeps its home
    address, registers through the FA (care-of = the FA's address), and
    routes outgoing traffic through it.  As the paper notes, foreign agents
    "restrict the freedom of the mobile host to choose from the full range
    of possible optimizations": while in this mode the per-packet method
    machinery is off and packets go out plain (Out-DH). *)

val via_foreign_agent : t -> bool

val return_home :
  t -> Netsim.Net.segment -> ?on_deregistered:(bool -> unit) -> unit -> unit
(** Reattach to the home segment with the home address, broadcast a
    gratuitous ARP to reclaim traffic from the home agent, and deregister
    (a registration with lifetime zero). *)

val reregister : t -> ?on_registered:(bool -> unit) -> unit -> unit
(** Refresh the current binding before its lifetime expires. *)

val enable_keepalive : t -> ?margin:float -> ?max_renewals:int -> unit -> unit
(** Automatically re-register [margin] seconds (default 30) before each
    binding expiry, up to [max_renewals] times (default 10 — bounded so
    simulations drain; raise it for long-running worlds).  Renewal timers
    self-cancel when the host moves.  A renewal that fails outright (home
    agent down) does not end the chain: the host keeps retrying on the
    backoff schedule, spending renewal budget, until the agent answers or
    the budget runs out. *)

val disable_keepalive : t -> unit

(** {1 Method selection} *)

val set_default_method : t -> Grid.out_method -> unit
(** Method used when nothing more specific decides (initial default:
    [Out_IE], the only method that always works). *)

val default_method : t -> Grid.out_method

val pin_method : t -> dst:Netsim.Ipv4_addr.t -> Grid.out_method option -> unit
(** Force (or clear) the method for one destination — the per-destination
    cache of §7.1.2, under experiment control. *)

val out_method_for : t -> dst:Netsim.Ipv4_addr.t -> Grid.out_method
(** What the next home-sourced packet to [dst] would use (ignoring
    heuristics, which also need a port). *)

val set_selector : t -> Selector.t option -> unit
(** Install the adaptive selector; also wires the node's TCP
    retransmission feedback into it. *)

val selector : t -> Selector.t option

val set_privacy : t -> bool -> unit
(** Privacy mode: send everything via the home agent so correspondents
    cannot learn the current location (§4, Out-IE motivation). *)

val privacy : t -> bool

val set_degradation : t -> Grid.out_method option -> unit
(** Degradation policy: when a registration away from home finally fails
    (retry budget exhausted, no confirmed binding), fall back to this
    direct method — [Out_DH] (home source, works where no source filter
    blocks it) or [Out_DT] (care-of source, always deliverable but
    breaks connection survival) — instead of black-holing on a tunnel no
    agent terminates.  The fallback stays in force until a registration
    succeeds again.  [None] (the default) keeps the seed behaviour.
    @raise Invalid_argument for [Out_IE]/[Out_DE]: encapsulating methods
    need exactly the infrastructure whose loss triggers degradation. *)

val degradation : t -> Grid.out_method option
val degraded : t -> bool
(** Whether the degradation fallback is currently in force (a registration
    failed for good and none has succeeded since). *)

val icmp_errors_consumed : t -> int
(** Destination-unreachable errors consumed as negative feedback. *)

type heuristic = Netsim.Ipv4_packet.t -> bool
(** Applied to unbound outgoing packets; [true] means "safe to forgo
    Mobile IP for this packet" (Out-DT). *)

val http_dns_heuristic : heuristic
(** The paper's example: TCP to port 80, or UDP to port 53. *)

val set_heuristics : t -> heuristic list -> unit
val heuristics : t -> heuristic list

val choose_source :
  t -> ?tcp_port:int -> unit -> Netsim.Ipv4_addr.t
(** The address a mobile-aware application (or TCP at connect time, §7)
    should bind: the care-of address when Mobile IP is unnecessary for this
    conversation (at home it is simply the home address; away, heuristics
    on [?tcp_port] may pick the care-of address), otherwise the home
    address. *)

val send_binding_update :
  t -> correspondent:Netsim.Ipv4_addr.t -> ?lifetime:int -> unit -> bool
(** Route optimization in the style the paper cites as [Joh96]: the mobile
    host itself tells a (mobile-aware) correspondent its current care-of
    address, without waiting for the home agent's ICMP advertisement.  The
    update is the same ICMP care-of-advertisement message, sent Out-DT
    (from the care-of address — it must be deliverable even under source
    filtering).  Returns false when at home (nothing to advertise).
    Default lifetime 300 s. *)

(** {1 Statistics} *)

val packets_encapsulated : t -> int
(** Out-IE/Out-DE wraps performed. *)

val packets_decapsulated : t -> int
(** Tunnel packets unwrapped on arrival (In-IE / In-DE receive path). *)

val registration_attempts : t -> int

val registration_failures : t -> int
(** Registrations abandoned after exhausting the retry budget. *)

val last_registration_failure : t -> float option
(** Simulation time of the most recent abandonment — raw material for the
    invariant oracle's withdrawal check. *)

val advertised_correspondents : t -> Netsim.Ipv4_addr.t list
(** Correspondents this host has sent a binding update to (the set a
    failed registration withdraws from), oldest first. *)
