open Netsim

type strategy =
  | Conservative_first
  | Aggressive_first
  | Rule_based of Policy_table.t

let pp_strategy fmt s =
  Format.pp_print_string fmt
    (match s with
    | Conservative_first -> "conservative-first"
    | Aggressive_first -> "aggressive-first"
    | Rule_based _ -> "rule-based")

type event = Original_received | Retransmission_detected | Icmp_error

(* The ladder, least to most aggressive.  Out-IE is the floor: it is the
   one method that can be relied upon to work (§4). *)
let ladder = Grid.[ Out_IE; Out_DE; Out_DH ]

let ladder_index m =
  let rec go i = function
    | [] -> invalid_arg "Selector: Out_DT has no ladder position"
    | x :: rest -> if Grid.equal_out x m then i else go (i + 1) rest
  in
  go 0 ladder

type dst_state = {
  mutable current : Grid.out_method;
  mutable successes : int;
  mutable failures : int;
  mutable switch_count : int;
  mutable failed : Grid.out_method list;
  mutable probing_enabled : bool;
      (* false = pinned (pessimistic rule): never escalate *)
  mutable last_used : int;
      (* recency stamp for LRU eviction; bumped on every lookup *)
}

type t = {
  strat : strategy;
  escalate_after : int;
  fallback_after : int;
  max_destinations : int;
  mutable tick : int;
  table : (Ipv4_addr.t, dst_state) Hashtbl.t;
}

let create ?(escalate_after = 4) ?(fallback_after = 2)
    ?(max_destinations = 1024) strat =
  if escalate_after < 1 || fallback_after < 1 then
    invalid_arg "Selector.create: thresholds must be positive";
  if max_destinations < 1 then
    invalid_arg "Selector.create: max_destinations must be positive";
  {
    strat;
    escalate_after;
    fallback_after;
    max_destinations;
    tick = 0;
    table = Hashtbl.create 16;
  }

let strategy t = t.strat

let initial_state t dst =
  match t.strat with
  | Conservative_first ->
      {
        current = Grid.Out_IE;
        successes = 0;
        failures = 0;
        switch_count = 0;
        failed = [];
        probing_enabled = true;
        last_used = 0;
      }
  | Aggressive_first ->
      {
        current = Grid.Out_DH;
        successes = 0;
        failures = 0;
        switch_count = 0;
        failed = [];
        probing_enabled = false;
        (* fall back only; never re-escalate past a failure *)
        last_used = 0;
      }
  | Rule_based table -> (
      match Policy_table.mode_for table dst with
      | Policy_table.Optimistic ->
          {
            current = Grid.Out_DH;
            successes = 0;
            failures = 0;
            switch_count = 0;
            failed = [];
            probing_enabled = false;
            last_used = 0;
          }
      | Policy_table.Pessimistic ->
          (* The rule says this region always needs the conservative
             method: pin it. *)
          {
            current = Grid.Out_IE;
            successes = 0;
            failures = 0;
            switch_count = 0;
            failed = [];
            probing_enabled = false;
            last_used = 0;
          })

let stamp t s =
  t.tick <- t.tick + 1;
  s.last_used <- t.tick

(* The per-destination table is capped: at [max_destinations] live entries
   the least recently used one is evicted before inserting, so unbounded
   destination churn (long soak runs) cannot grow memory without bound.
   An evicted destination that comes back restarts from the strategy's
   initial method, exactly like one never seen. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun dst s acc ->
        match acc with
        | Some (_, best) when best.last_used <= s.last_used -> acc
        | _ -> Some (dst, s))
      t.table None
  in
  match victim with Some (dst, _) -> Hashtbl.remove t.table dst | None -> ()

let state_for t dst =
  match Hashtbl.find_opt t.table dst with
  | Some s ->
      stamp t s;
      s
  | None ->
      if Hashtbl.length t.table >= t.max_destinations then evict_lru t;
      let s = initial_state t dst in
      stamp t s;
      Hashtbl.add t.table dst s;
      s

let method_for t dst = (state_for t dst).current

let usable s m = not (List.exists (Grid.equal_out m) s.failed)

(* The next usable method strictly above [s.current] — escalation is
   stepwise ("tentatively try each of the more aggressive options",
   §7.1.2), skipping only methods already proven to fail. *)
let next_above s =
  let cur = ladder_index s.current in
  List.find_opt (fun m -> ladder_index m > cur && usable s m) ladder

(* The most aggressive usable method strictly below [s.current]
   (falling back toward Out-IE). *)
let next_below s =
  let cur = ladder_index s.current in
  let candidates =
    List.filter (fun m -> ladder_index m < cur && usable s m) ladder
  in
  match List.rev candidates with m :: _ -> Some m | [] -> None

(* Abandon the current method for good: remember it as failed and fall
   back to the next usable method below (Out-IE as the floor). *)
let abandon s =
  s.failures <- 0;
  if not (Grid.equal_out s.current Grid.Out_IE) then begin
    s.failed <- s.current :: s.failed;
    match next_below s with
    | Some m ->
        s.current <- m;
        s.switch_count <- s.switch_count + 1
    | None ->
        s.current <- Grid.Out_IE;
        s.switch_count <- s.switch_count + 1
  end

let report t ~dst ev =
  let s = state_for t dst in
  match ev with
  | Original_received ->
      s.failures <- 0;
      s.successes <- s.successes + 1;
      if s.probing_enabled && s.successes >= t.escalate_after then begin
        match next_above s with
        | Some m ->
            s.current <- m;
            s.successes <- 0;
            s.switch_count <- s.switch_count + 1
        | None -> ()
      end
  | Retransmission_detected ->
      s.successes <- 0;
      s.failures <- s.failures + 1;
      if s.failures >= t.fallback_after then abandon s
  | Icmp_error ->
      (* Authoritative negative feedback: a router told us the packet was
         refused.  No need to accumulate [fallback_after] retransmission
         hints — abandon the method immediately. *)
      s.successes <- 0;
      abandon s

let switches t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some s -> s.switch_count
  | None -> 0

let failed_methods t ~dst =
  match Hashtbl.find_opt t.table dst with Some s -> s.failed | None -> []

let converged t ~dst =
  match Hashtbl.find_opt t.table dst with
  | None -> false
  | Some s ->
      s.successes >= t.escalate_after
      && ((not s.probing_enabled) || next_above s = None)

let reset t ~dst = Hashtbl.remove t.table dst
let reset_all t = Hashtbl.reset t.table

let known_destinations t =
  List.sort Ipv4_addr.compare
    (Hashtbl.fold (fun dst _ acc -> dst :: acc) t.table [])
