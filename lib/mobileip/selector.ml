open Netsim

type strategy =
  | Conservative_first
  | Aggressive_first
  | Rule_based of Policy_table.t

let pp_strategy fmt s =
  Format.pp_print_string fmt
    (match s with
    | Conservative_first -> "conservative-first"
    | Aggressive_first -> "aggressive-first"
    | Rule_based _ -> "rule-based")

type event = Original_received | Retransmission_detected

(* The ladder, least to most aggressive.  Out-IE is the floor: it is the
   one method that can be relied upon to work (§4). *)
let ladder = Grid.[ Out_IE; Out_DE; Out_DH ]

let ladder_index m =
  let rec go i = function
    | [] -> invalid_arg "Selector: Out_DT has no ladder position"
    | x :: rest -> if Grid.equal_out x m then i else go (i + 1) rest
  in
  go 0 ladder

type dst_state = {
  mutable current : Grid.out_method;
  mutable successes : int;
  mutable failures : int;
  mutable switch_count : int;
  mutable failed : Grid.out_method list;
  mutable probing_enabled : bool;
      (* false = pinned (pessimistic rule): never escalate *)
}

type t = {
  strat : strategy;
  escalate_after : int;
  fallback_after : int;
  table : (Ipv4_addr.t, dst_state) Hashtbl.t;
}

let create ?(escalate_after = 4) ?(fallback_after = 2) strat =
  if escalate_after < 1 || fallback_after < 1 then
    invalid_arg "Selector.create: thresholds must be positive";
  { strat; escalate_after; fallback_after; table = Hashtbl.create 16 }

let strategy t = t.strat

let initial_state t dst =
  match t.strat with
  | Conservative_first ->
      {
        current = Grid.Out_IE;
        successes = 0;
        failures = 0;
        switch_count = 0;
        failed = [];
        probing_enabled = true;
      }
  | Aggressive_first ->
      {
        current = Grid.Out_DH;
        successes = 0;
        failures = 0;
        switch_count = 0;
        failed = [];
        probing_enabled = false;
        (* fall back only; never re-escalate past a failure *)
      }
  | Rule_based table -> (
      match Policy_table.mode_for table dst with
      | Policy_table.Optimistic ->
          {
            current = Grid.Out_DH;
            successes = 0;
            failures = 0;
            switch_count = 0;
            failed = [];
            probing_enabled = false;
          }
      | Policy_table.Pessimistic ->
          (* The rule says this region always needs the conservative
             method: pin it. *)
          {
            current = Grid.Out_IE;
            successes = 0;
            failures = 0;
            switch_count = 0;
            failed = [];
            probing_enabled = false;
          })

let state_for t dst =
  match Hashtbl.find_opt t.table dst with
  | Some s -> s
  | None ->
      let s = initial_state t dst in
      Hashtbl.add t.table dst s;
      s

let method_for t dst = (state_for t dst).current

let usable s m = not (List.exists (Grid.equal_out m) s.failed)

(* The next usable method strictly above [s.current] — escalation is
   stepwise ("tentatively try each of the more aggressive options",
   §7.1.2), skipping only methods already proven to fail. *)
let next_above s =
  let cur = ladder_index s.current in
  List.find_opt (fun m -> ladder_index m > cur && usable s m) ladder

(* The most aggressive usable method strictly below [s.current]
   (falling back toward Out-IE). *)
let next_below s =
  let cur = ladder_index s.current in
  let candidates =
    List.filter (fun m -> ladder_index m < cur && usable s m) ladder
  in
  match List.rev candidates with m :: _ -> Some m | [] -> None

let report t ~dst ev =
  let s = state_for t dst in
  match ev with
  | Original_received ->
      s.failures <- 0;
      s.successes <- s.successes + 1;
      if s.probing_enabled && s.successes >= t.escalate_after then begin
        match next_above s with
        | Some m ->
            s.current <- m;
            s.successes <- 0;
            s.switch_count <- s.switch_count + 1
        | None -> ()
      end
  | Retransmission_detected -> (
      s.successes <- 0;
      s.failures <- s.failures + 1;
      if s.failures >= t.fallback_after then begin
        s.failures <- 0;
        if not (Grid.equal_out s.current Grid.Out_IE) then begin
          s.failed <- s.current :: s.failed;
          match next_below s with
          | Some m ->
              s.current <- m;
              s.switch_count <- s.switch_count + 1
          | None ->
              s.current <- Grid.Out_IE;
              s.switch_count <- s.switch_count + 1
        end
      end)

let switches t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some s -> s.switch_count
  | None -> 0

let failed_methods t ~dst =
  match Hashtbl.find_opt t.table dst with Some s -> s.failed | None -> []

let converged t ~dst =
  match Hashtbl.find_opt t.table dst with
  | None -> false
  | Some s ->
      s.successes >= t.escalate_after
      && ((not s.probing_enabled) || next_above s = None)

let reset t ~dst = Hashtbl.remove t.table dst
let reset_all t = Hashtbl.reset t.table

let known_destinations t =
  List.sort Ipv4_addr.compare
    (Hashtbl.fold (fun dst _ acc -> dst :: acc) t.table [])
