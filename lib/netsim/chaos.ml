(* Seeded random generation of fault plans, and delta-debugging shrinking
   of plans that violate an invariant.

   Generation is a pure function of (seed, budget): the generator owns a
   private LCG (same family as the link loss model and Fault's roll
   stream) and never consults wall-clock or global state, so every plan
   regenerates bit-for-bit from its seed — which is what makes a soak
   sweep replayable and a shrunken repro stable. *)

type budget = {
  events : int;
  horizon : float;
  links : string list;
  cuts : (string list * string list) list;
  actions : (string * string list) list;
  max_window : float;
  max_extra_latency : float;
}

let default_budget =
  {
    events = 6;
    horizon = 30.0;
    links = [];
    cuts = [];
    actions = [];
    max_window = 5.0;
    max_extra_latency = 0.5;
  }

(* ---------- the seeded stream ---------- *)

type rng = { mutable state : int }

let mix seed =
  (* Spread nearby seeds apart before the LCG consumes them, so seed 0
     and seed 1 do not produce near-identical opening rolls. *)
  let s = (seed * 0x9e3779b1) lxor (seed lsr 13) in
  let s = (s * 0x85ebca6b) lxor (s lsr 16) in
  s land 0x3fffffff

let roll rng =
  rng.state <- ((rng.state * 1103515245) + 12345) land 0x3fffffff;
  float_of_int rng.state /. 1073741824.0

let pick rng l =
  match l with
  | [] -> invalid_arg "Chaos.pick: empty list"
  | l -> List.nth l (int_of_float (roll rng *. float_of_int (List.length l)))

(* ---------- generation ---------- *)

type kind = K_flap | K_partition | K_spike | K_duplicate | K_reorder | K_action

let generate ?(seed = 0xc4a0) budget =
  if budget.horizon <= 0.0 then invalid_arg "Chaos.generate: empty horizon";
  if budget.max_window <= 0.0 then
    invalid_arg "Chaos.generate: max_window must be positive";
  let rng = { state = mix seed } in
  let kinds =
    List.concat
      [
        (if budget.links = [] then [] else [ K_flap; K_spike ]);
        (if budget.cuts = [] then [] else [ K_partition ]);
        [ K_duplicate; K_reorder ];
        (if budget.actions = [] then [] else [ K_action ]);
      ]
  in
  (* A window somewhere inside the horizon: starts in the first 80% so
     even a late window has room to close before the horizon. *)
  let window () =
    let from_ = roll rng *. budget.horizon *. 0.8 in
    let dur =
      Float.min budget.max_window (0.25 +. (roll rng *. budget.max_window))
    in
    let until = Float.min budget.horizon (from_ +. dur) in
    (from_, until)
  in
  let rate () = 0.05 +. (roll rng *. 0.4) in
  let event () =
    match pick rng kinds with
    | K_flap ->
        let link = pick rng budget.links in
        let down, up = window () in
        Fault.Flap { link; down; up }
    | K_partition ->
        let a, b = pick rng budget.cuts in
        let from_, until = window () in
        Fault.Partition { from_; until; a; b }
    | K_spike ->
        let link = pick rng budget.links in
        let from_, until = window () in
        let extra = 0.05 +. (roll rng *. budget.max_extra_latency) in
        Fault.Latency_spike { link; from_; until; extra }
    | K_duplicate ->
        let from_, until = window () in
        Fault.Duplicate { from_; until; rate = rate () }
    | K_reorder ->
        let from_, until = window () in
        let max_extra = 0.05 +. (roll rng *. 0.25) in
        Fault.Reorder { from_; until; rate = rate (); max_extra }
    | K_action ->
        let kind, args = pick rng budget.actions in
        let arg = match args with [] -> "" | args -> pick rng args in
        let at_ = roll rng *. budget.horizon *. 0.8 in
        Fault.Action { at_; kind; arg }
  in
  let events = List.init (max 0 budget.events) (fun _ -> event ()) in
  { Fault.seed = mix (seed + 0x5bd1); events }

(* ---------- shrinking ---------- *)

(* Zeller/Hildebrandt ddmin over the plan's event list: try ever-finer
   chunk removals, keeping any reduction that still fails, until no chunk
   of any granularity can be removed.  Deterministic: pure list surgery
   plus whatever [still_failing] does — with a seeded replay as the test,
   repeated shrinks of the same plan land on the same minimum. *)

let split_chunks l n =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i >= n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest' =
        let rec take k xs acc =
          if k = 0 then (List.rev acc, xs)
          else
            match xs with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (k - 1) tl (x :: acc)
        in
        take size rest []
      in
      go (i + 1) rest' (chunk :: acc)
  in
  go 0 l []

let shrink ~still_failing (plan : Fault.plan) =
  let replays = ref 0 in
  let fails events =
    incr replays;
    still_failing { plan with Fault.events }
  in
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else
      let chunks = split_chunks events n in
      match List.find_opt fails chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
          let complements =
            List.mapi
              (fun i _ ->
                List.concat (List.filteri (fun j _ -> j <> i) chunks))
              chunks
          in
          let complements =
            if n = 2 then [] (* complements of halves are the halves *)
            else complements
          in
          match List.find_opt fails complements with
          | Some comp -> ddmin comp (max (n - 1) 2)
          | None -> if n < len then ddmin events (min len (2 * n)) else events)
  in
  let minimal =
    if plan.Fault.events = [] then []
    else ddmin plan.Fault.events (min 2 (List.length plan.Fault.events))
  in
  ({ plan with Fault.events = minimal }, !replays)
