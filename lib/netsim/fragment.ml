type error = Dont_fragment | Header_too_big

let pp_error fmt = function
  | Dont_fragment -> Format.pp_print_string fmt "dont-fragment bit set"
  | Header_too_big -> Format.pp_print_string fmt "mtu smaller than header"

let needs_fragmentation ~mtu pkt = Ipv4_packet.byte_length pkt > mtu

let fragment ~mtu pkt =
  if not (needs_fragmentation ~mtu pkt) then Ok [ pkt ]
  else if pkt.Ipv4_packet.dont_fragment then Error Dont_fragment
  else
    let hlen = Ipv4_packet.header_length pkt in
    (* Payload bytes per fragment, rounded down to a multiple of 8. *)
    let chunk = (mtu - hlen) / 8 * 8 in
    if chunk <= 0 then Error Header_too_big
    else begin
      let body =
        match pkt.Ipv4_packet.payload with
        | Ipv4_packet.Raw b -> b
        | _ ->
            (* Encode the structured payload once; fragments carry slices. *)
            let whole = Ipv4_packet.encode pkt in
            Bytes.sub whole hlen (Bytes.length whole - hlen)
      in
      let total = Bytes.length body in
      let base_offset = pkt.Ipv4_packet.frag_offset in
      let last_has_more = pkt.Ipv4_packet.more_fragments in
      (* Only copy-bit options are replicated past the first fragment
         (RFC 791); the receiver's reassembly restores the full set from
         the offset-0 fragment's header. *)
      let tail_options = Ipv4_options.copied_options pkt.Ipv4_packet.options in
      let rec slices off acc =
        if off >= total then List.rev acc
        else begin
          let len = min chunk (total - off) in
          let is_last = off + len >= total in
          let frag =
            {
              pkt with
              Ipv4_packet.payload = Ipv4_packet.Raw (Bytes.sub body off len);
              more_fragments = (if is_last then last_has_more else true);
              frag_offset = base_offset + (off / 8);
              options =
                (if off = 0 then pkt.Ipv4_packet.options else tail_options);
            }
          in
          slices (off + len) (frag :: acc)
        end
      in
      Ok (slices 0 [])
    end

module Reassembly = struct
  type key = {
    src : Ipv4_addr.t;
    dst : Ipv4_addr.t;
    protocol : int;
    ident : int;
  }

  type datagram = {
    mutable pieces : (int * Bytes.t) list;  (* byte offset, data *)
    mutable total : int option;  (* known once the last fragment arrives *)
    mutable first_seen : float;
    mutable template : Ipv4_packet.t;  (* header fields from offset 0 *)
  }

  type t = (key, datagram) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let key_of (p : Ipv4_packet.t) =
    {
      src = p.src;
      dst = p.dst;
      protocol = Ipv4_packet.protocol_to_int p.protocol;
      ident = p.ident;
    }

  let complete d =
    match d.total with
    | None -> None
    | Some total ->
        let sorted =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) d.pieces
        in
        let buf = Bytes.create total in
        let covered =
          List.fold_left
            (fun pos (off, data) ->
              if off > pos then -1 (* hole *)
              else begin
                let len = Bytes.length data in
                let copy_len = min len (total - off) in
                if copy_len > 0 then Bytes.blit data 0 buf off copy_len;
                max pos (off + copy_len)
              end)
            0 sorted
        in
        if covered = total then Some buf else None

  let add t ~now (p : Ipv4_packet.t) =
    if not (Ipv4_packet.is_fragment p) then Some p
    else begin
      let body =
        match p.payload with
        | Ipv4_packet.Raw b -> b
        | _ ->
            let whole = Ipv4_packet.encode p in
            let hlen = Ipv4_packet.header_length p in
            Bytes.sub whole hlen (Bytes.length whole - hlen)
      in
      let k = key_of p in
      let d =
        match Hashtbl.find_opt t k with
        | Some d -> d
        | None ->
            let d =
              { pieces = []; total = None; first_seen = now; template = p }
            in
            Hashtbl.add t k d;
            d
      in
      let off = p.frag_offset * 8 in
      d.pieces <- (off, body) :: d.pieces;
      if p.frag_offset = 0 then d.template <- p;
      if not p.more_fragments then d.total <- Some (off + Bytes.length body);
      match complete d with
      | None -> None
      | Some buf ->
          Hashtbl.remove t k;
          let whole =
            {
              d.template with
              Ipv4_packet.payload = Ipv4_packet.Raw buf;
              more_fragments = false;
              frag_offset = 0;
            }
          in
          Some (Ipv4_packet.reparse_payload whole)
    end

  let expire t ~older_than =
    let stale =
      Hashtbl.fold
        (fun k d acc -> if d.first_seen < older_than then k :: acc else acc)
        t []
    in
    List.iter (Hashtbl.remove t) stale;
    List.length stale

  let pending t = Hashtbl.length t
end
