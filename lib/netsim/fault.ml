(* A deterministic, scriptable fault plan attached to a Net.t.

   All state changes are engine events scheduled at absolute sim-times, and
   the only randomness (duplication and reordering rolls, jitter) comes
   from a seeded LCG — the same generator family as the per-link loss
   model — so a run under a fault plan replays identically. *)

type stats = {
  flap_drops : int;
  partition_drops : int;
  duplicated : int;
  delayed : int;
}

type t = {
  net : Net.t;
  plan_seed : int;
  mutable lcg : int;
  mutable down_links : string list;
  mutable partitions : (string list * string list) list;
  mutable spikes : (string * float) list;  (* link name, extra seconds *)
  mutable dup_rate : float;
  mutable reorder : (float * float) option;  (* rate, max extra seconds *)
  mutable flap_drops : int;
  mutable partition_drops : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let seed t = t.plan_seed

let stats t =
  {
    flap_drops = t.flap_drops;
    partition_drops = t.partition_drops;
    duplicated = t.duplicated;
    delayed = t.delayed;
  }

(* Same constants as the link loss model so both stay replayable. *)
let roll t =
  t.lcg <- ((t.lcg * 1103515245) + 12345) land 0x3fffffff;
  float_of_int t.lcg /. 1073741824.0

let crosses_partition t ~src ~dst =
  List.exists
    (fun (a, b) ->
      (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a))
    t.partitions

let verdict t ~link ~src ~dst =
  if List.mem link t.down_links then begin
    t.flap_drops <- t.flap_drops + 1;
    Net.Fault_drop Trace.Link_flap
  end
  else if crosses_partition t ~src ~dst then begin
    t.partition_drops <- t.partition_drops + 1;
    Net.Fault_drop Trace.Partitioned
  end
  else begin
    let spike =
      List.fold_left
        (fun acc (l, extra) -> if l = link then acc +. extra else acc)
        0.0 t.spikes
    in
    let jitter =
      match t.reorder with
      | Some (rate, max_extra) when roll t < rate ->
          t.delayed <- t.delayed + 1;
          roll t *. max_extra
      | Some _ | None -> 0.0
    in
    let duplicate = t.dup_rate > 0.0 && roll t < t.dup_rate in
    if duplicate then t.duplicated <- t.duplicated + 1;
    let extra_delay = spike +. jitter in
    if extra_delay > 0.0 || duplicate then
      Net.Fault_deliver { extra_delay; duplicate }
    else Net.Fault_pass
  end

let attach ?(seed = 0xfa17) net =
  let t =
    {
      net;
      plan_seed = seed;
      lcg = seed land 0x3fffffff;
      down_links = [];
      partitions = [];
      spikes = [];
      dup_rate = 0.0;
      reorder = None;
      flap_drops = 0;
      partition_drops = 0;
      duplicated = 0;
      delayed = 0;
    }
  in
  Net.set_fault_hook net
    (Some (fun ~link ~src ~dst -> verdict t ~link ~src ~dst));
  t

let detach t = Net.set_fault_hook t.net None

(* Scheduled plan actions.  A time at or before "now" applies immediately,
   so plans can be scripted against worlds that have already run a while. *)
let at t ~time f =
  let eng = Net.engine t.net in
  if time <= Engine.now eng then f () else Engine.schedule eng ~at:time f

let link_down t ~at:time ~link =
  at t ~time (fun () ->
      if not (List.mem link t.down_links) then
        t.down_links <- link :: t.down_links)

let link_up t ~at:time ~link =
  at t ~time (fun () ->
      t.down_links <- List.filter (fun l -> l <> link) t.down_links)

let flap t ~link ~down ~up =
  if up <= down then invalid_arg "Fault.flap: up must be after down";
  link_down t ~at:down ~link;
  link_up t ~at:up ~link

let partition t ~from_ ~until ~a ~b =
  if until <= from_ then invalid_arg "Fault.partition: empty window";
  let sides = (a, b) in
  at t ~time:from_ (fun () -> t.partitions <- sides :: t.partitions);
  at t ~time:until (fun () ->
      t.partitions <- List.filter (fun p -> p != sides) t.partitions)

let latency_spike t ~link ~from_ ~until ~extra =
  if until <= from_ then invalid_arg "Fault.latency_spike: empty window";
  if extra < 0.0 then invalid_arg "Fault.latency_spike: negative extra";
  let entry = (link, extra) in
  at t ~time:from_ (fun () -> t.spikes <- entry :: t.spikes);
  at t ~time:until (fun () ->
      t.spikes <- List.filter (fun s -> s != entry) t.spikes)

let duplicate_window t ~from_ ~until ~rate =
  if until <= from_ then invalid_arg "Fault.duplicate_window: empty window";
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Fault.duplicate_window: rate must be in [0,1)";
  at t ~time:from_ (fun () -> t.dup_rate <- rate);
  at t ~time:until (fun () -> t.dup_rate <- 0.0)

let reorder_window t ~from_ ~until ~rate ~max_extra =
  if until <= from_ then invalid_arg "Fault.reorder_window: empty window";
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Fault.reorder_window: rate must be in [0,1)";
  if max_extra <= 0.0 then
    invalid_arg "Fault.reorder_window: max_extra must be positive";
  at t ~time:from_ (fun () -> t.reorder <- Some (rate, max_extra));
  at t ~time:until (fun () -> t.reorder <- None)
