(* A deterministic, scriptable fault plan attached to a Net.t.

   All state changes are engine events scheduled at absolute sim-times, and
   the only randomness (duplication and reordering rolls, jitter) comes
   from a seeded LCG — the same generator family as the per-link loss
   model — so a run under a fault plan replays identically. *)

type stats = {
  flap_drops : int;
  partition_drops : int;
  duplicated : int;
  delayed : int;
}

type t = {
  net : Net.t;
  plan_seed : int;
  mutable lcg : int;
  mutable down_links : string list;
  mutable partitions : (string list * string list) list;
  mutable spikes : (string * float) list;  (* link name, extra seconds *)
  mutable dup_rate : float;
  mutable reorder : (float * float) option;  (* rate, max extra seconds *)
  mutable flap_drops : int;
  mutable partition_drops : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let seed t = t.plan_seed

let stats t =
  {
    flap_drops = t.flap_drops;
    partition_drops = t.partition_drops;
    duplicated = t.duplicated;
    delayed = t.delayed;
  }

(* Same constants as the link loss model so both stay replayable. *)
let roll t =
  t.lcg <- ((t.lcg * 1103515245) + 12345) land 0x3fffffff;
  float_of_int t.lcg /. 1073741824.0

let crosses_partition t ~src ~dst =
  List.exists
    (fun (a, b) ->
      (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a))
    t.partitions

let verdict t ~link ~src ~dst =
  if List.mem link t.down_links then begin
    t.flap_drops <- t.flap_drops + 1;
    Net.Fault_drop Trace.Link_flap
  end
  else if crosses_partition t ~src ~dst then begin
    t.partition_drops <- t.partition_drops + 1;
    Net.Fault_drop Trace.Partitioned
  end
  else begin
    let spike =
      List.fold_left
        (fun acc (l, extra) -> if l = link then acc +. extra else acc)
        0.0 t.spikes
    in
    let jitter =
      match t.reorder with
      | Some (rate, max_extra) when roll t < rate ->
          t.delayed <- t.delayed + 1;
          roll t *. max_extra
      | Some _ | None -> 0.0
    in
    let duplicate = t.dup_rate > 0.0 && roll t < t.dup_rate in
    if duplicate then t.duplicated <- t.duplicated + 1;
    let extra_delay = spike +. jitter in
    if extra_delay > 0.0 || duplicate then
      Net.Fault_deliver { extra_delay; duplicate }
    else Net.Fault_pass
  end

let attach ?(seed = 0xfa17) net =
  let t =
    {
      net;
      plan_seed = seed;
      lcg = seed land 0x3fffffff;
      down_links = [];
      partitions = [];
      spikes = [];
      dup_rate = 0.0;
      reorder = None;
      flap_drops = 0;
      partition_drops = 0;
      duplicated = 0;
      delayed = 0;
    }
  in
  Net.set_fault_hook net
    (Some (fun ~link ~src ~dst -> verdict t ~link ~src ~dst));
  t

let detach t = Net.set_fault_hook t.net None

(* Scheduled plan actions.  A time at or before "now" applies immediately,
   so plans can be scripted against worlds that have already run a while. *)
let at t ~time f =
  let eng = Net.engine t.net in
  if time <= Engine.now eng then f () else Engine.schedule eng ~at:time f

let link_down t ~at:time ~link =
  at t ~time (fun () ->
      if not (List.mem link t.down_links) then
        t.down_links <- link :: t.down_links)

let link_up t ~at:time ~link =
  at t ~time (fun () ->
      t.down_links <- List.filter (fun l -> l <> link) t.down_links)

let flap t ~link ~down ~up =
  if up <= down then invalid_arg "Fault.flap: up must be after down";
  link_down t ~at:down ~link;
  link_up t ~at:up ~link

let partition t ~from_ ~until ~a ~b =
  if until <= from_ then invalid_arg "Fault.partition: empty window";
  let sides = (a, b) in
  at t ~time:from_ (fun () -> t.partitions <- sides :: t.partitions);
  at t ~time:until (fun () ->
      t.partitions <- List.filter (fun p -> p != sides) t.partitions)

let latency_spike t ~link ~from_ ~until ~extra =
  if until <= from_ then invalid_arg "Fault.latency_spike: empty window";
  if extra < 0.0 then invalid_arg "Fault.latency_spike: negative extra";
  let entry = (link, extra) in
  at t ~time:from_ (fun () -> t.spikes <- entry :: t.spikes);
  at t ~time:until (fun () ->
      t.spikes <- List.filter (fun s -> s != entry) t.spikes)

let duplicate_window t ~from_ ~until ~rate =
  if until <= from_ then invalid_arg "Fault.duplicate_window: empty window";
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Fault.duplicate_window: rate must be in [0,1)";
  at t ~time:from_ (fun () -> t.dup_rate <- rate);
  at t ~time:until (fun () -> t.dup_rate <- 0.0)

let reorder_window t ~from_ ~until ~rate ~max_extra =
  if until <= from_ then invalid_arg "Fault.reorder_window: empty window";
  if rate < 0.0 || rate >= 1.0 then
    invalid_arg "Fault.reorder_window: rate must be in [0,1)";
  if max_extra <= 0.0 then
    invalid_arg "Fault.reorder_window: max_extra must be positive";
  at t ~time:from_ (fun () -> t.reorder <- Some (rate, max_extra));
  at t ~time:until (fun () -> t.reorder <- None)

(* ---------- declarative plans ---------- *)

(* A plan as data rather than a sequence of API calls: what the {!Chaos}
   generator produces, the delta-debugging shrinker edits, and the
   [--fault-json] repro files store.  [apply] funnels every event through
   the imperative API above, so the two styles stay behaviourally
   identical. *)

type event =
  | Flap of { link : string; down : float; up : float }
  | Partition of { from_ : float; until : float; a : string list; b : string list }
  | Latency_spike of { link : string; from_ : float; until : float; extra : float }
  | Duplicate of { from_ : float; until : float; rate : float }
  | Reorder of { from_ : float; until : float; rate : float; max_extra : float }
  | Action of { at_ : float; kind : string; arg : string }

type plan = { seed : int; events : event list }

let event_start = function
  | Flap { down; _ } -> down
  | Partition { from_; _ } | Latency_spike { from_; _ } | Duplicate { from_; _ }
  | Reorder { from_; _ } ->
      from_
  | Action { at_; _ } -> at_

let event_end = function
  | Flap { up; _ } -> up
  | Partition { until; _ } | Latency_spike { until; _ } | Duplicate { until; _ }
  | Reorder { until; _ } ->
      until
  | Action { at_; _ } -> at_

let plan_end p = List.fold_left (fun acc e -> Float.max acc (event_end e)) 0.0 p.events

let apply ?(action = fun ~at:_ ~kind:_ ~arg:_ -> ()) net plan =
  let t = attach ~seed:plan.seed net in
  List.iter
    (fun ev ->
      match ev with
      | Flap { link; down; up } -> flap t ~link ~down ~up
      | Partition { from_; until; a; b } -> partition t ~from_ ~until ~a ~b
      | Latency_spike { link; from_; until; extra } ->
          latency_spike t ~link ~from_ ~until ~extra
      | Duplicate { from_; until; rate } -> duplicate_window t ~from_ ~until ~rate
      | Reorder { from_; until; rate; max_extra } ->
          reorder_window t ~from_ ~until ~rate ~max_extra
      | Action { at_; kind; arg } ->
          at t ~time:at_ (fun () -> action ~at:at_ ~kind ~arg))
    plan.events;
  t

(* JSON round-trip.  Times are always emitted as JSON floats so a re-parse
   restores them bit-for-bit (the printer keeps floats recognisable). *)

let strings l = Json.List (List.map (fun s -> Json.String s) l)

let json_of_event = function
  | Flap { link; down; up } ->
      Json.Obj
        [
          ("type", Json.String "flap");
          ("link", Json.String link);
          ("down", Json.Float down);
          ("up", Json.Float up);
        ]
  | Partition { from_; until; a; b } ->
      Json.Obj
        [
          ("type", Json.String "partition");
          ("from", Json.Float from_);
          ("until", Json.Float until);
          ("a", strings a);
          ("b", strings b);
        ]
  | Latency_spike { link; from_; until; extra } ->
      Json.Obj
        [
          ("type", Json.String "latency-spike");
          ("link", Json.String link);
          ("from", Json.Float from_);
          ("until", Json.Float until);
          ("extra", Json.Float extra);
        ]
  | Duplicate { from_; until; rate } ->
      Json.Obj
        [
          ("type", Json.String "duplicate");
          ("from", Json.Float from_);
          ("until", Json.Float until);
          ("rate", Json.Float rate);
        ]
  | Reorder { from_; until; rate; max_extra } ->
      Json.Obj
        [
          ("type", Json.String "reorder");
          ("from", Json.Float from_);
          ("until", Json.Float until);
          ("rate", Json.Float rate);
          ("max_extra", Json.Float max_extra);
        ]
  | Action { at_; kind; arg } ->
      Json.Obj
        [
          ("type", Json.String "action");
          ("at", Json.Float at_);
          ("kind", Json.String kind);
          ("arg", Json.String arg);
        ]

let plan_to_json p =
  Json.Obj
    [
      ("seed", Json.Int p.seed);
      ("events", Json.List (List.map json_of_event p.events));
    ]

let plan_to_string p = Json.to_string (plan_to_json p)

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fault plan: missing or bad field %S" name)

let string_list j =
  match Json.get_list j with
  | None -> None
  | Some items ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> (
            match Json.get_string x with
            | Some s -> go (s :: acc) rest
            | None -> None)
      in
      go [] items

let event_of_json j =
  let* ty = field "type" Json.get_string j in
  match ty with
  | "flap" ->
      let* link = field "link" Json.get_string j in
      let* down = field "down" Json.get_float j in
      let* up = field "up" Json.get_float j in
      Ok (Flap { link; down; up })
  | "partition" ->
      let* from_ = field "from" Json.get_float j in
      let* until = field "until" Json.get_float j in
      let* a = field "a" string_list j in
      let* b = field "b" string_list j in
      Ok (Partition { from_; until; a; b })
  | "latency-spike" ->
      let* link = field "link" Json.get_string j in
      let* from_ = field "from" Json.get_float j in
      let* until = field "until" Json.get_float j in
      let* extra = field "extra" Json.get_float j in
      Ok (Latency_spike { link; from_; until; extra })
  | "duplicate" ->
      let* from_ = field "from" Json.get_float j in
      let* until = field "until" Json.get_float j in
      let* rate = field "rate" Json.get_float j in
      Ok (Duplicate { from_; until; rate })
  | "reorder" ->
      let* from_ = field "from" Json.get_float j in
      let* until = field "until" Json.get_float j in
      let* rate = field "rate" Json.get_float j in
      let* max_extra = field "max_extra" Json.get_float j in
      Ok (Reorder { from_; until; rate; max_extra })
  | "action" ->
      let* at_ = field "at" Json.get_float j in
      let* kind = field "kind" Json.get_string j in
      let* arg = field "arg" Json.get_string j in
      Ok (Action { at_; kind; arg })
  | other -> Error (Printf.sprintf "fault plan: unknown event type %S" other)

let plan_of_json j =
  let* seed = field "seed" Json.get_int j in
  let* events = field "events" Json.get_list j in
  let rec go acc = function
    | [] -> Ok { seed; events = List.rev acc }
    | e :: rest ->
        let* ev = event_of_json e in
        go (ev :: acc) rest
  in
  go [] events

let plan_of_string s =
  match Json.of_string s with Error e -> Error e | Ok j -> plan_of_json j

let pp_event fmt = function
  | Flap { link; down; up } ->
      Format.fprintf fmt "flap %s %.3g-%.3gs" link down up
  | Partition { from_; until; a; b } ->
      Format.fprintf fmt "partition {%s}|{%s} %.3g-%.3gs" (String.concat "," a)
        (String.concat "," b) from_ until
  | Latency_spike { link; from_; until; extra } ->
      Format.fprintf fmt "latency-spike %s +%.3gs %.3g-%.3gs" link extra from_
        until
  | Duplicate { from_; until; rate } ->
      Format.fprintf fmt "duplicate %.0f%% %.3g-%.3gs" (rate *. 100.0) from_
        until
  | Reorder { from_; until; rate; max_extra } ->
      Format.fprintf fmt "reorder %.0f%% <=%.3gs %.3g-%.3gs" (rate *. 100.0)
        max_extra from_ until
  | Action { at_; kind; arg } ->
      if arg = "" then Format.fprintf fmt "%s @%.3gs" kind at_
      else Format.fprintf fmt "%s(%s) @%.3gs" kind arg at_
