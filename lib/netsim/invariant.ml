(* The online invariant oracle: named checks evaluated while a simulation
   runs, with every violation recorded against the simulation clock.

   Three check styles cover the properties the chaos harness needs:

   - polled checks run on a bounded periodic engine event (state that must
     always hold: binding lifetimes, proxy-ARP hygiene);
   - watches run on every trace record via the per-trace observer
     (per-packet properties);
   - final checks run once at [finish] (eventual properties: recovery
     after the last fault).

   The engine is deliberately generic — it knows nothing about Mobile IP.
   Concrete invariants are built above the simulator (Scenarios.Oracle)
   from the state-exposure accessors of the mobility layer. *)

type violation = { name : string; time : float; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%8.3fs] %s: %s" v.time v.name v.detail

type check = { c_name : string; c_run : unit -> string option }

type t = {
  net : Net.t;
  mutable polled : check list;  (* reverse registration order *)
  mutable finals : check list;
  mutable watches : (string * (Trace.record -> string option)) list;
  mutable rev_violations : violation list;
  counts : (string, int) Hashtbl.t;  (* name -> times observed *)
  mutable checks_run : int;
  mutable generation : int;  (* bumps on stop/finish: stale ticks die *)
  mutable obs_handle : Trace.observer option;
  mutable on_violation : (violation -> unit) option;
}

let create net =
  {
    net;
    polled = [];
    finals = [];
    watches = [];
    rev_violations = [];
    counts = Hashtbl.create 8;
    checks_run = 0;
    generation = 0;
    obs_handle = None;
    on_violation = None;
  }

let net t = t.net
let set_on_violation t f = t.on_violation <- f

let record_violation t ~time ~name ~detail =
  let n = Option.value (Hashtbl.find_opt t.counts name) ~default:0 in
  Hashtbl.replace t.counts name (n + 1);
  (* Keep the first violation of each invariant: a persistently-broken
     condition is one finding, not a flood. *)
  if n = 0 then begin
    let v = { name; time; detail } in
    t.rev_violations <- v :: t.rev_violations;
    match t.on_violation with Some f -> f v | None -> ()
  end

let add_check t ~name run = t.polled <- { c_name = name; c_run = run } :: t.polled
let add_final t ~name run = t.finals <- { c_name = name; c_run = run } :: t.finals

let install_observer t =
  if t.obs_handle = None then
    t.obs_handle <-
      Some
        (Trace.add_observer (Net.trace t.net) (fun r ->
             List.iter
               (fun (name, w) ->
                 match w r with
                 | Some detail ->
                     record_violation t ~time:r.Trace.time ~name ~detail
                 | None -> ())
               t.watches))

let add_watch t ~name w =
  t.watches <- t.watches @ [ (name, w) ];
  install_observer t

let run_checks t checks =
  let now = Net.now t.net in
  List.iter
    (fun c ->
      t.checks_run <- t.checks_run + 1;
      match c.c_run () with
      | Some detail -> record_violation t ~time:now ~name:c.c_name ~detail
      | None -> ())
    (List.rev checks)

let check_now t = run_checks t t.polled

let start t ?(interval = 1.0) ?(ticks = 60) () =
  if interval <= 0.0 then invalid_arg "Invariant.start: interval must be positive";
  let eng = Net.engine t.net in
  let generation = t.generation in
  let rec tick remaining =
    if remaining > 0 && t.generation = generation then
      Engine.after eng interval (fun () ->
          if t.generation = generation then begin
            check_now t;
            tick (remaining - 1)
          end)
  in
  check_now t;
  tick ticks

let finish t =
  check_now t;
  run_checks t t.finals;
  t.generation <- t.generation + 1;
  match t.obs_handle with
  | Some h ->
      t.obs_handle <- None;
      Trace.remove_observer (Net.trace t.net) h
  | None -> ()

let violations t = List.rev t.rev_violations
let violated t = t.rev_violations <> []

let names t =
  List.sort_uniq compare (List.map (fun v -> v.name) (violations t))

let count t name = Option.value (Hashtbl.find_opt t.counts name) ~default:0
let checks_run t = t.checks_run
