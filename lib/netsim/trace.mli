(** Per-packet life-cycle tracing.

    Every wire packet in the simulator is wrapped in a frame carrying a
    unique [id] and a [flow] identifier that survives encapsulation,
    decapsulation and fragmentation.  The trace records what happened to
    each frame — where it was sent, forwarded, dropped (and why) or
    delivered — so tests and experiments can assert exact paths, hop
    counts, wire bytes and drop reasons.

    Hop counts in the experiment tables are [transmissions]: the number of
    link traversals a flow's bytes made, which is the paper's notion of
    "distance travelled through the Internet". *)

type drop_reason =
  | Ingress_filter
      (** boundary router: outside packet claiming an inside source (Fig 2) *)
  | Transit_filter  (** foreign source on a non-transit tail circuit *)
  | Firewall of string
  | Ttl_expired
  | No_route
  | Mtu_exceeded  (** over-MTU packet with the DF bit set *)
  | Arp_unresolved
  | Not_for_me  (** unicast packet reaching a host that does not own it *)
  | Link_down
  | Link_loss  (** random loss on a lossy link (seeded, deterministic) *)
  | Link_flap  (** link scripted down by a {!Fault} plan *)
  | Partitioned  (** sender and receiver on opposite sides of a scripted partition *)
  | Reassembly_timeout
  | Custom of string

val pp_drop_reason : Format.formatter -> drop_reason -> unit
val drop_reason_equal : drop_reason -> drop_reason -> bool

type frame_info = { id : int; flow : int; pkt : Ipv4_packet.t }

type event =
  | Send of { node : string; frame : frame_info }
  | Transmit of { link : string; frame : frame_info; bytes : int }
  | Forward of {
      node : string;
      in_iface : string;
      out_iface : string;
      frame : frame_info;
    }
  | Drop of { node : string; reason : drop_reason; frame : frame_info }
  | Deliver of { node : string; frame : frame_info }
  | Encapsulate of { node : string; frame : frame_info }
      (** [frame] is the new outer frame; its [flow] is inherited. *)
  | Decapsulate of { node : string; frame : frame_info }
      (** [frame] is the revealed inner frame. *)
  | Icmp_error of { node : string; reason : drop_reason; frame : frame_info }
      (** [node] originated an ICMP error in response to a drop with
          [reason]; [frame] is the generated error packet (its payload
          quotes the offending datagram).  Emitted only when error
          signaling is enabled on the net ({!Net.enable_error_signaling}). *)

type record = { time : float; event : event }

val frame_of : event -> frame_info
(** The frame an event is about, whatever its constructor. *)

type t

val create : unit -> t
val record : t -> time:float -> event -> unit
val records : t -> record list
(** All records, oldest first. *)

val clear : t -> unit
val length : t -> int

val set_enabled : t -> bool -> unit
(** Turn per-packet tracing on or off (default on).  While off {e and} no
    observer or sink is installed, {!interested} is false and the data
    plane skips building events — the per-hop fast path allocates nothing
    for tracing.  Records written while an observer or sink keeps the
    trace interested are still logged normally; attached rings keep
    {!interested} true but do {e not} revive the unbounded log. *)

val enabled : t -> bool

val set_buffered : t -> bool -> unit
(** Quarantine mode for per-shard traces in parallel sharded runs.  While
    buffered, {!record} only appends to this trace's in-memory log: no
    per-flow index, no observers, no process-wide sinks, no attached
    rings — so a shard's domain never touches process-global state.  The
    barrier coordinator {!drain}s the log between windows and replays it
    through the main trace (in deterministic merged order), which feeds
    every consumer exactly once.  Default off. *)

val buffered : t -> bool

val drain : t -> record list
(** Remove and return the buffered records, oldest first — what the
    barrier coordinator merges into the main trace.  Leaves enabled/
    buffered state untouched. *)

val interested : t -> bool
(** Whether anything wants trace events right now: the trace is enabled,
    or an observer, process-wide sink or fast tap is installed.  The
    data plane checks this before constructing an event. *)

(** {1 Composable taps}

    Observers are per-trace, sinks are process-wide; both tee — any
    number can be installed at once, each called with every record in
    installation order.  The invariant oracle, the flight recorder,
    [--trace-json] and [--pcap] all coexist.  A tap must not call back
    into the trace it is observing. *)

type observer
(** Handle for one installed per-trace tap. *)

type sink
(** Handle for one installed process-wide tap. *)

val add_observer : t -> (record -> unit) -> observer
(** Install a tap called with every record written to {e this} trace —
    how the {!Invariant} oracle (and a per-run flight recorder) watches a
    run without disturbing the process-wide sinks. *)

val remove_observer : t -> observer -> unit
(** Removing twice, or removing a never-installed handle, is a no-op. *)

val add_sink : (record -> unit) -> sink
(** Install a tap receiving every record from {e every} trace as it is
    written — the hook behind the CLI's [--trace-json] and [--pcap]
    streaming exports, which observe worlds built deep inside experiment
    runners. *)

val remove_sink : sink -> unit

val set_observer : t -> (record -> unit) option -> unit
(** Single-slot facade over {!add_observer}: installs the tap, replacing
    whatever the previous [set_observer] installed; [None] clears it.
    Taps installed with {!add_observer} are untouched. *)

val set_sink : (record -> unit) option -> unit
(** Single-slot facade over {!add_sink} with the same replace-in-place
    semantics; sinks installed with {!add_sink} are untouched. *)

(** {1 Flight-recorder rings}

    Observers and sinks receive allocated {!record} values, so any one
    of them forces the data plane to build the frame/event/record graph
    for every traced event.  A {e ring} is a preallocated fixed-capacity
    last-K event store fed field-by-field: when rings are the only
    consumers, the specialised [emit_*] entry points below write slot
    arrays straight from the emit site and allocate nothing.  This is
    what lets the flight recorder stay attached during capacity runs at
    a few percent of throughput.  An attached ring sees every event
    exactly once regardless of which path it took — events routed
    through {!record} (full consumers attached, or event kinds with no
    [emit_*] helper) are replayed into rings by destructuring.

    This is the storage primitive behind [Netobs.Recorder], which adds
    the user-facing capture API (install, tail, JSONL/pcap dumps). *)

type ring

val make_ring : ?sample_every:int -> ?seed:int -> capacity:int -> unit -> ring
(** A ring holding the last [capacity] events.  [sample_every] (default
    1 — keep everything) records roughly one flow in N, decided by a
    deterministic hash of [(flow, seed)] so sampled captures keep whole
    conversations and replay identically; [seed] (default 0) varies
    which flows are kept.
    @raise Invalid_argument unless [capacity] and [sample_every] are
    positive. *)

val attach_ring : ring -> unit
(** Attach process-wide (idempotent); composes with observers and sinks
    like {!add_sink} does. *)

val detach_ring : ring -> unit
(** Detaching a never-attached ring is a no-op. *)

val ring_attached : ring -> bool

val ring_store :
  ring ->
  float ->
  int ->
  string ->
  string ->
  string ->
  drop_reason ->
  int ->
  int ->
  Ipv4_packet.t ->
  int ->
  unit
(** [ring_store rg time kind name in_iface out_iface reason id flow pkt
    bytes] offers one event to the ring: the sampling decision, then the
    slot stores.  [kind] is one of the [k_*] tags below; [name] is the
    node name, or the link name for {!k_transmit}; arguments that do not
    apply to a kind are [""] / a placeholder reason / [0]. *)

val ring_store_record : ring -> record -> unit
(** {!ring_store} of a record's fields — for feeding a ring from an
    observer or sink. *)

val ring_records : ring -> record list
(** Rebuild the ring's contents as structurally identical records,
    oldest first — at most [capacity] of them.  Cold path. *)

val ring_sampled : ring -> int -> bool
(** Whether a flow id passes the ring's sampling filter. *)

val ring_capacity : ring -> int
val ring_seen : ring -> int
(** Events offered, sampled-out ones included. *)

val ring_kept : ring -> int
(** Events that passed sampling and entered the ring (cumulative). *)

val ring_length : ring -> int
(** Events currently held: [min kept capacity]. *)

val ring_clear : ring -> unit

(** Kind tags used by {!ring_store}, numbered in declaration order of
    {!event}. *)

val k_send : int

val k_transmit : int
val k_forward : int
val k_drop : int
val k_deliver : int
val k_encapsulate : int
val k_decapsulate : int
val k_icmp_error : int

val set_time_source : t -> floatarray -> unit
(** Point the trace at the one-element cell its [emit_*] fast paths read
    the current time from ({!Engine.clock_cell} of the owning net's
    engine).  Until set, emits are stamped 0.0 — every real trace gets
    wired by [Net.make].  The trace never writes the cell. *)

val emit_send : t -> node:string -> id:int -> flow:int -> pkt:Ipv4_packet.t -> unit
(** [emit_send] .. [emit_deliver] are equivalent to {!record} with the
    corresponding event (stamped from the {!set_time_source} cell) but
    are self-gated: they skip event construction entirely when only
    rings are interested, and do nothing at all when nothing is.  The
    data plane uses them unguarded for its hottest events; other call
    sites keep using {!record}. *)

val emit_transmit :
  t -> link:string -> id:int -> flow:int -> pkt:Ipv4_packet.t -> bytes:int -> unit

val emit_forward :
  t ->
  node:string ->
  in_iface:string ->
  out_iface:string ->
  id:int ->
  flow:int ->
  pkt:Ipv4_packet.t ->
  unit

val emit_deliver : t -> node:string -> id:int -> flow:int -> pkt:Ipv4_packet.t -> unit

val emit_encapsulate :
  t -> node:string -> id:int -> flow:int -> pkt:Ipv4_packet.t -> unit

val emit_decapsulate :
  t -> node:string -> id:int -> flow:int -> pkt:Ipv4_packet.t -> unit
(** Tunnel encap/decap on the same allocation-free fast path — on a
    roamed topology these fire for every tunneled packet. *)

(** {1 Flow queries}

    All flow queries are served from a per-flow index maintained
    incrementally by {!record}: [transmissions] and [wire_bytes] are O(1)
    running counters, the others walk only the flow's own records. *)

val flows : t -> int list
(** Every flow id that has at least one record, ascending. *)

val flow_records : t -> flow:int -> record list
val transmissions : t -> flow:int -> int
(** Link traversals made by the flow — the "hops" metric. *)

val wire_bytes : t -> flow:int -> int
(** Total bytes the flow put on links (fragments and encapsulation
    included). *)

val delivered : t -> flow:int -> node:string -> bool
val delivery_time : t -> flow:int -> node:string -> float option
(** Time of first delivery at [node]. *)

val send_time : t -> flow:int -> float option
val drops : t -> flow:int -> (string * drop_reason) list
(** (node, reason) pairs for every drop of the flow. *)

val path : t -> flow:int -> string list
(** Nodes the flow visited, in order: origin, forwarders
    (encapsulation/decapsulation points included), final deliveries. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit
val dump : Format.formatter -> t -> unit
