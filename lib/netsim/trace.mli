(** Per-packet life-cycle tracing.

    Every wire packet in the simulator is wrapped in a frame carrying a
    unique [id] and a [flow] identifier that survives encapsulation,
    decapsulation and fragmentation.  The trace records what happened to
    each frame — where it was sent, forwarded, dropped (and why) or
    delivered — so tests and experiments can assert exact paths, hop
    counts, wire bytes and drop reasons.

    Hop counts in the experiment tables are [transmissions]: the number of
    link traversals a flow's bytes made, which is the paper's notion of
    "distance travelled through the Internet". *)

type drop_reason =
  | Ingress_filter
      (** boundary router: outside packet claiming an inside source (Fig 2) *)
  | Transit_filter  (** foreign source on a non-transit tail circuit *)
  | Firewall of string
  | Ttl_expired
  | No_route
  | Mtu_exceeded  (** over-MTU packet with the DF bit set *)
  | Arp_unresolved
  | Not_for_me  (** unicast packet reaching a host that does not own it *)
  | Link_down
  | Link_loss  (** random loss on a lossy link (seeded, deterministic) *)
  | Link_flap  (** link scripted down by a {!Fault} plan *)
  | Partitioned  (** sender and receiver on opposite sides of a scripted partition *)
  | Reassembly_timeout
  | Custom of string

val pp_drop_reason : Format.formatter -> drop_reason -> unit
val drop_reason_equal : drop_reason -> drop_reason -> bool

type frame_info = { id : int; flow : int; pkt : Ipv4_packet.t }

type event =
  | Send of { node : string; frame : frame_info }
  | Transmit of { link : string; frame : frame_info; bytes : int }
  | Forward of {
      node : string;
      in_iface : string;
      out_iface : string;
      frame : frame_info;
    }
  | Drop of { node : string; reason : drop_reason; frame : frame_info }
  | Deliver of { node : string; frame : frame_info }
  | Encapsulate of { node : string; frame : frame_info }
      (** [frame] is the new outer frame; its [flow] is inherited. *)
  | Decapsulate of { node : string; frame : frame_info }
      (** [frame] is the revealed inner frame. *)
  | Icmp_error of { node : string; reason : drop_reason; frame : frame_info }
      (** [node] originated an ICMP error in response to a drop with
          [reason]; [frame] is the generated error packet (its payload
          quotes the offending datagram).  Emitted only when error
          signaling is enabled on the net ({!Net.enable_error_signaling}). *)

type record = { time : float; event : event }

val frame_of : event -> frame_info
(** The frame an event is about, whatever its constructor. *)

type t

val create : unit -> t
val record : t -> time:float -> event -> unit
val records : t -> record list
(** All records, oldest first. *)

val clear : t -> unit
val length : t -> int

val set_enabled : t -> bool -> unit
(** Turn per-packet tracing on or off (default on).  While off {e and} no
    observer or sink is installed, {!interested} is false and the data
    plane skips building events — the per-hop fast path allocates nothing
    for tracing.  Records written while a consumer keeps {!interested}
    true are still logged normally. *)

val enabled : t -> bool

val interested : t -> bool
(** Whether anything wants trace events right now: the trace is enabled,
    or an observer is installed, or the process-wide sink is.  The data
    plane checks this before constructing an event. *)

val set_observer : t -> (record -> unit) option -> unit
(** Install (or clear) a per-trace tap called with every record as it is
    written to {e this} trace — how the {!Invariant} oracle watches a run
    without disturbing the process-wide {!set_sink} used for JSONL export.
    The observer must not call back into the trace.  One observer per
    trace. *)

val set_sink : (record -> unit) option -> unit
(** Install (or clear) a process-wide tap receiving every record from
    {e every} trace as it is written — the hook behind the CLI's
    [--trace-json] streaming export.  The sink must not call back into the
    trace it is observing.  Exactly one sink can be active at a time. *)

(** {1 Flow queries}

    All flow queries are served from a per-flow index maintained
    incrementally by {!record}: [transmissions] and [wire_bytes] are O(1)
    running counters, the others walk only the flow's own records. *)

val flows : t -> int list
(** Every flow id that has at least one record, ascending. *)

val flow_records : t -> flow:int -> record list
val transmissions : t -> flow:int -> int
(** Link traversals made by the flow — the "hops" metric. *)

val wire_bytes : t -> flow:int -> int
(** Total bytes the flow put on links (fragments and encapsulation
    included). *)

val delivered : t -> flow:int -> node:string -> bool
val delivery_time : t -> flow:int -> node:string -> float option
(** Time of first delivery at [node]. *)

val send_time : t -> flow:int -> float option
val drops : t -> flow:int -> (string * drop_reason) list
(** (node, reason) pairs for every drop of the flow. *)

val path : t -> flow:int -> string list
(** Nodes the flow visited, in order: origin, forwarders
    (encapsulation/decapsulation points included), final deliveries. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit
val dump : Format.formatter -> t -> unit
