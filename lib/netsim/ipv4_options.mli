(** IPv4 loose source routing (RFC 791 option 131).

    The paper (§4) considers loose source routing as the alternative to
    encapsulation for steering packets via the home agent, and dismisses
    it: "this achieves little that can't be done equally well using an
    encapsulating header.  Current IP routers typically handle packets
    with options much more slowly than they handle normal unadorned IP
    packets."  Both halves are implemented: this module provides the
    option wire format, {!Net} applies a configurable per-router slow-path
    penalty to optioned packets and performs the source-route rewriting at
    each listed hop, and experiment A1 measures the trade-off.

    Wire layout: type (131), length, pointer (1-based offset of the next
    address), then the route's addresses; the whole option is padded with
    a No-Operation byte to a multiple of four. *)

val lsr_type : int
(** 131. *)

val build_lsr : via:Ipv4_addr.t list -> Bytes.t
(** An LSR option whose remaining route is [via] (the packet's initial
    destination should be the first element; the final destination is the
    packet's eventual [dst] which the sender stores as the route's last
    entry).  Convention used here (and by BSD stacks): the packet is
    addressed to the first intermediate hop and the option carries the
    {e remaining} addresses, ending with the true destination.
    @raise Invalid_argument if [via] is empty or longer than 9 hops. *)

val parse_lsr : Bytes.t -> (int * Ipv4_addr.t list) option
(** [parse_lsr options] finds an LSR option and returns
    [(pointer_index, addresses)] where [pointer_index] is the 0-based
    index of the next address still to visit ([= List.length addresses]
    when the route is exhausted).  [None] if no LSR option is present. *)

val lsr_next_hop : Bytes.t -> Ipv4_addr.t option
(** The next address to visit, if the route is not exhausted. *)

val advance_lsr : Bytes.t -> here:Ipv4_addr.t -> Bytes.t option
(** Advance the pointer past the next address, recording [here] in its
    place (the visited-route recording of RFC 791).  [None] when the
    route is exhausted. *)

val has_options : Bytes.t -> bool
(** True when the buffer contains at least one non-NOP option byte. *)

val copied_options : Bytes.t -> Bytes.t
(** The subset of the options that must be replicated into non-first
    fragments: those whose type byte has the RFC 791 copy bit (0x80) set —
    LSR qualifies, NOPs and non-copied options do not.  The result is
    NOP-padded to a multiple of four (possibly empty). *)
