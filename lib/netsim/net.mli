(** The simulated network: topology construction plus the IP data plane.

    A {!t} owns a discrete-event {!Engine}, a {!Trace} and a set of nodes.
    Nodes are hosts or routers; interfaces attach them to Ethernet
    {e segments} (broadcast domains with MAC addressing and ARP) or to
    point-to-point links.  The data plane implements:

    - origin sends with {e route-override hooks} consulted before the
      routing table — the mechanism the paper's Linux implementation uses
      for its mobility policy table (§7);
    - router forwarding with TTL, {!Filter} policies (ingress
      source-address filtering, transit prohibition, firewalls) and
      fragmentation/ICMP-fragmentation-needed on MTU violations;
    - ARP with per-node caches, {e proxy ARP} and {e gratuitous ARP}
      (RFC 1027) — how a home agent captures packets for an absent mobile
      host;
    - delivery to protocol handlers, with fragment reassembly;
    - link-layer-addressed sends ([~l2_dst]) so a correspondent on the same
      segment can deliver a packet whose IP destination "does not belong"
      on that segment — the paper's In-DH method;
    - segment-local multicast delivery with group membership.

    Every IP packet travels inside a frame with a unique id and a [flow]
    id preserved across encapsulation and fragmentation, feeding the
    {!Trace}. *)

type t
type node
type iface
type segment

(** {1 Network and topology} *)

val create : unit -> t
val engine : t -> Engine.t
val trace : t -> Trace.t

val set_tracing : t -> bool -> unit
(** [set_tracing t false] turns off per-packet tracing for this world
    ({!Trace.set_enabled} on its trace): the data plane stops building
    trace events, so throughput runs skip all per-hop record allocation.
    An installed {!Trace.set_observer} or {!Trace.set_sink} overrides the
    switch — oracle and [--trace-json] runs see identical events either
    way.  Default on. *)

val now : t -> float

val run : ?until:float -> ?max_events:int -> t -> unit
(** Run the world to quiescence (or [until]).  Unsharded worlds delegate
    to {!Engine.run} on the primary engine; sharded worlds dispatch to
    the sequential merged executor or the parallel barrier executor (see
    {!set_shards}).  [max_events] (default 10M) is the runaway guard. *)

val stats : t -> Engine.stats
(** Aggregate engine statistics across shards: executed, pending and
    truncated counts are summed, [sim_time] and [max_pending] are maxima,
    wall/CPU time is the coordinator's.  On an unsharded world this is
    [Engine.stats (engine t)]. *)

val add_host : t -> string -> node
val add_router : t -> string -> node
(** @raise Invalid_argument if the name is already taken. *)

val find_node : t -> string -> node option
val node_name : node -> string
val is_router : node -> bool
val nodes : t -> node list
val node_net : node -> t
val node_engine : node -> Engine.t
val node_now : node -> float

(** {1 Sharded simulation}

    A world can be partitioned into {e shards}: groups of nodes, each
    with its own event queue, that only interact across point-to-point
    links.  The partition is derived deterministically from the topology:
    segment co-members, lossy-link endpoints and [~same] pairs are forced
    into one shard (they share mutable state — ARP broadcast domains,
    seeded loss generators); loss-free point-to-point links are the only
    shard cuts, and their minimum latency is the {e lookahead}.

    Two executors:

    - {e sequential merged} (default): one thread repeatedly runs the
      globally minimal event across shard queues.  All shards share the
      primary clock and tie-break counter, so the event order — and every
      trace byte — is identical to the unsharded world.  Safe with every
      feature (faults, ICMP signaling, observers).
    - {e parallel} ([~parallel:true]): conservative barrier windows of
      width [lookahead], one domain per shard per window.  Cross-shard
      frames travel through bounded per-(src,dst) outboxes drained at
      barriers in seeded deterministic order; per-shard traces are
      buffered and merged by (time, shard) at each barrier, so runs
      replay identically for a fixed shard count and seed (event order
      may differ from the sequential schedule only in same-timestamp
      interleavings across shards).  Parallel runs refuse fault hooks and
      ICMP error signaling (call-order-dependent shared state), and
      require agents to use per-node accessors ({!node_engine},
      {!node_now}, {!new_flow_on}) rather than the world-level ones. *)

val set_shards :
  ?parallel:bool -> ?seed:int -> ?same:(node * node) list -> t -> int -> unit
(** Partition the world into at most [n] shards (fewer when the topology
    has fewer independent components; 1 collapses back to unsharded).
    [seed] (default 0) controls the merge order of same-timestamp
    cross-shard arrivals in parallel runs; [same] pins node pairs into
    one shard (e.g. a mobile host with every router it will roam to).
    @raise Invalid_argument if [n < 1], if a previous shard still has
    pending events, or if [~parallel] and the primary engine is not
    idle, or the topology has a zero-latency or lossy cross-shard link. *)

val shard_count : t -> int
val parallel : t -> bool

val lookahead : t -> float
(** Minimum latency over cross-shard links — the conservative window
    width; [infinity] when no link crosses shards. *)

val node_shard : node -> int
(** Which shard the node lives on (0 on an unsharded world). *)

val node_pool : node -> Pool.t
(** The byte-buffer pool of the node's shard — workload generators
    allocate payloads here so capacity runs recycle buffers per shard. *)

val new_flow_on : node -> int
(** A fresh flow id drawn on the node's shard: identical to {!new_flow}
    on sequential worlds, strided per-shard (collision-free and
    replayable) on parallel ones.  Parallel-safe code must use this (or
    {!send} without [?flow]) instead of {!new_flow}. *)

val add_segment :
  t -> name:string -> ?latency:float -> ?bandwidth:float -> ?mtu:int ->
  ?loss:float -> ?loss_seed:int -> unit -> segment
(** An Ethernet broadcast domain.  Defaults: 0.5 ms latency, unlimited
    bandwidth, MTU 1500, no loss.  [?loss] is a per-frame drop
    probability in [0,1) driven by a seeded deterministic generator
    ([?loss_seed]), so lossy experiments replay identically.
    @raise Invalid_argument if [loss >= 1.0]. *)

val segment_name : segment -> string
val segment_mtu : segment -> int

val attach :
  node -> segment -> ifname:string -> addr:Ipv4_addr.t ->
  prefix:Ipv4_addr.Prefix.t -> iface
(** Create an interface with a fresh MAC on the segment and install the
    connected route.
    @raise Invalid_argument if the node already has an interface with this
    name. *)

val p2p :
  t -> ?latency:float -> ?bandwidth:float -> ?mtu:int ->
  ?loss:float -> ?loss_seed:int ->
  prefix:Ipv4_addr.Prefix.t ->
  node * string * Ipv4_addr.t -> node * string * Ipv4_addr.t ->
  iface * iface
(** A point-to-point link (no MAC layer).  Defaults: 10 ms latency,
    unlimited bandwidth, MTU 1500, no loss (see {!add_segment} for the
    loss model).  Installs connected routes on both ends. *)

(** {1 Interfaces} *)

val iface_name : iface -> string
val iface_addr : iface -> Ipv4_addr.t
val iface_prefix : iface -> Ipv4_addr.Prefix.t
val iface_mtu : iface -> int
val iface_mac : iface -> Mac_addr.t option
(** [None] on point-to-point links. *)

val iface_node : iface -> node
val iface_up : iface -> bool
val set_iface_addr : iface -> addr:Ipv4_addr.t -> prefix:Ipv4_addr.Prefix.t -> unit
(** Re-address an interface (mobile host arriving on a new network);
    replaces its connected route. *)

val detach : iface -> unit
(** Take the interface down and remove it from its segment and its routes
    from the table. *)

val reattach : iface -> segment -> unit
(** Attach an existing (detached) interface to a new segment and restore
    its connected route. *)

val ifaces : node -> iface list
val find_iface : node -> string -> iface option

(** {1 Node configuration} *)

val routing : node -> Routing.table
val set_filter : node -> Filter.policy -> unit
val filter : node -> Filter.policy

val claim_address : node -> Ipv4_addr.t -> unit
(** Declare that this node owns (accepts delivery for) an address beyond
    its interface addresses — a mobile host's home address while roaming,
    or a home agent intercepting for an absent mobile host. *)

val unclaim_address : node -> Ipv4_addr.t -> unit
val owns_address : node -> Ipv4_addr.t -> bool

val set_option_processing_delay : node -> float -> unit
(** Extra forwarding delay this router applies to packets carrying IP
    options (default 1 ms for routers, 0 for hosts) — "current IP routers
    typically handle packets with options much more slowly than normal
    unadorned IP packets" (§4).  Experiment A1 measures the consequence
    for loose-source-routed Mobile IP. *)

val option_processing_delay : node -> float

type override_action =
  | Resubmit of Ipv4_packet.t
      (** Replace the packet and run resolution again — the paper's
          "virtual interface that encapsulates and resubmits to IP". *)
  | Via of {
      out : iface;
      next_hop : Ipv4_addr.t option;
      l2_dst : Mac_addr.t option;
    }  (** Force a specific interface/next-hop/link-layer destination. *)
  | Discard of string  (** Drop locally with a reason. *)

val set_route_override :
  node -> (Ipv4_packet.t -> override_action option) option -> unit
(** Install (or clear) the hook consulted before the routing table for
    locally-originated packets. *)

val set_protocol_handler :
  node -> Ipv4_packet.protocol ->
  (node -> iface option -> Ipv4_packet.t -> unit) -> unit
(** Handler for delivered packets of the given protocol.  The [iface]
    argument is [None] for loopback deliveries.  Replaces any previous
    handler for that protocol. *)

val clear_protocol_handler : node -> Ipv4_packet.protocol -> unit

val set_delivery_observer : node -> (Ipv4_packet.t -> unit) option -> unit
(** Called on every delivered packet, before the protocol handler. *)

val set_intercept :
  node -> (flow:int -> Ipv4_packet.t -> bool) option -> unit
(** Install (or clear) a capture hook that runs after reassembly but before
    the packet is considered delivered.  Returning [true] consumes the
    packet: no Deliver trace event, no observer, no protocol handler.  This
    is how a home agent captures packets addressed to an absent mobile
    host's home address (jointly with proxy ARP and {!claim_address}) and
    re-tunnels them. *)

val inject_local :
  node -> flow:int -> Ipv4_packet.t -> unit
(** Deliver a packet locally as if it had just arrived (trace Deliver,
    observer, protocol handler) — used to hand a decapsulated inner packet
    back to the stack.  The intercept hook is {e not} consulted, so a node
    that both captures and decapsulates cannot loop. *)

(** {1 ARP} *)

val add_proxy_arp : node -> iface -> Ipv4_addr.t -> unit
(** Answer ARP requests for the address on this interface's segment with
    our own MAC (proxy ARP). *)

val remove_proxy_arp : node -> iface -> Ipv4_addr.t -> unit

val proxy_arp_entries : node -> Ipv4_addr.t list
(** Every address this node currently answers proxy ARP for, across all
    its interfaces, in installation order — the node's proxy-ARP
    {e footprint}, which the invariant oracle checks is torn down when the
    binding behind it goes away. *)

val gratuitous_arp : node -> iface -> Ipv4_addr.t -> unit
(** Broadcast an unsolicited ARP reply binding the address to this
    interface's MAC, updating caches on the segment. *)

val arp_lookup : node -> Ipv4_addr.t -> Mac_addr.t option
(** Inspect the node's ARP cache (for tests). *)

val clear_arp : node -> unit
(** Flush the ARP cache (a mobile host changing segments must not keep
    neighbour state from the previous network). *)

val neighbour_mac : node -> Ipv4_addr.t -> Mac_addr.t option
(** Ground truth: the MAC currently bound to an address on any segment this
    node is attached to (what a mobile-aware host uses for In-DH once it
    knows its peer is local). *)

val neighbour_on_segment :
  node -> Ipv4_addr.t -> (iface * Mac_addr.t) option
(** Like {!neighbour_mac} but also returns our interface on the shared
    segment, ready for an In-DH [Via] decision. *)

(** {1 Multicast} *)

val join_group : node -> iface -> Ipv4_addr.t -> unit
(** Join a multicast group on an interface; segment-local delivery only.
    @raise Invalid_argument if the address is not multicast. *)

val leave_group : node -> iface -> Ipv4_addr.t -> unit

(** {1 Sending} *)

val new_flow : t -> int

val send :
  node -> ?flow:int -> ?via:iface -> ?l2_dst:Mac_addr.t -> Ipv4_packet.t -> int
(** Originate a packet.  Resolution order: destination owned by self
    (loopback delivery) / route-override hook / [?via] / routing table.
    [?l2_dst] forces the link-layer destination of the first hop (In-DH).
    Returns the flow id (fresh unless [?flow] given). *)

val same_segment : node -> node -> bool
(** True when the two nodes have interfaces attached to a common segment —
    the applicability test for the paper's Row C. *)

val set_checksum_debug : bool -> unit
(** When on (default off), every forwarding hop cross-checks the RFC 1624
    incremental header-checksum update against a full field-wise recompute
    and fails loudly on divergence.  Global; used by the test suite. *)

(** {1 ICMP error signaling}

    Off by default: filtering routers, routers with no route, and nodes
    whose ARP retries exhaust all drop packets silently, exactly like the
    seed behaviour.  When enabled on a world, those three drop points
    answer with a real RFC 792 destination-unreachable quoting the
    offending datagram's IP header plus 8 payload bytes —
    [Admin_prohibited] for filter rejections, [Host_unreachable] for
    missing routes and dead (ARP-unresolvable) next hops — so senders get
    fast negative feedback they can adapt to (§7.1.2).  Emission is held
    down per (node, offender) with deterministic seeded jitter, and never
    answers ICMP, unspecified, broadcast or multicast traffic.  Each
    emission is traced as {!Trace.Icmp_error} when tracing is on. *)

val enable_error_signaling : ?min_interval:float -> ?seed:int -> t -> unit
(** Turn on ICMP error signaling for this world.  [min_interval] (default
    1.0 s) is the per-(node, offender) hold-down, jittered up to +25% by a
    generator seeded with [seed].  Re-enabling keeps the sent counter but
    resets the hold-down state.
    @raise Invalid_argument if [min_interval] is negative. *)

val disable_error_signaling : t -> unit
(** Back to silent drops (and the sent counter reads 0 again). *)

val error_signaling : t -> bool
val icmp_errors_sent : t -> int
(** ICMP errors emitted since signaling was enabled (0 while disabled). *)

(** {1 Fault injection}

    The data plane consults an optional per-network hook for every frame
    copy about to be put on a link, after the link's own loss model.  The
    hook is how {!Fault} implements scripted link flaps, partitions,
    latency spikes, duplication and reordering without the data plane
    knowing about schedules or seeds. *)

type fault_verdict =
  | Fault_pass  (** deliver normally *)
  | Fault_drop of Trace.drop_reason
      (** drop this copy, recording the reason (IP frames only; ARP frames
          are dropped silently, like link loss) *)
  | Fault_deliver of { extra_delay : float; duplicate : bool }
      (** deliver after [extra_delay] additional seconds; when [duplicate],
          deliver a second copy at the same instant *)

val set_fault_hook :
  t -> (link:string -> src:string -> dst:string -> fault_verdict) option -> unit
(** Install (or clear) the fault hook.  [link] is the segment or
    point-to-point link name; [src]/[dst] are the transmitting and
    receiving node names.  Called once per receiving interface (a broadcast
    on a segment consults the hook for each member). *)
