type protocol =
  | P_icmp
  | P_ipip
  | P_tcp
  | P_udp
  | P_gre
  | P_minimal
  | P_other of int

let protocol_to_int = function
  | P_icmp -> 1
  | P_ipip -> 4
  | P_tcp -> 6
  | P_udp -> 17
  | P_gre -> 47
  | P_minimal -> 55
  | P_other n -> n

let protocol_of_int = function
  | 1 -> P_icmp
  | 4 -> P_ipip
  | 6 -> P_tcp
  | 17 -> P_udp
  | 47 -> P_gre
  | 55 -> P_minimal
  | n -> P_other n

let pp_protocol fmt = function
  | P_icmp -> Format.pp_print_string fmt "ICMP"
  | P_ipip -> Format.pp_print_string fmt "IPIP"
  | P_tcp -> Format.pp_print_string fmt "TCP"
  | P_udp -> Format.pp_print_string fmt "UDP"
  | P_gre -> Format.pp_print_string fmt "GRE"
  | P_minimal -> Format.pp_print_string fmt "MINENC"
  | P_other n -> Format.fprintf fmt "proto-%d" n

type t = {
  tos : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;
  ttl : int;
  protocol : protocol;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  options : Bytes.t;
  payload : payload;
}

and payload =
  | Raw of Bytes.t
  | Udp of Udp_wire.t
  | Tcp of Tcp_wire.t
  | Icmp of Icmp_wire.t
  | Encap of t
  | Gre_encap of t
  | Min_encap of t

let min_header_length = 20
let ipip_overhead = 20
let gre_overhead = 24
let minimal_overhead = 12
let gre_header_length = 4
let min_encap_header_length = 12

let protocol_for_payload = function
  | Raw _ -> P_other 253
  | Udp _ -> P_udp
  | Tcp _ -> P_tcp
  | Icmp _ -> P_icmp
  | Encap _ -> P_ipip
  | Gre_encap _ -> P_gre
  | Min_encap _ -> P_minimal

let make ?(tos = 0) ?(ident = 0) ?(dont_fragment = false) ?(ttl = 64)
    ?(options = Bytes.empty) ~protocol ~src ~dst payload =
  let check name v limit =
    if v < 0 || v >= limit then
      invalid_arg (Printf.sprintf "Ipv4_packet.make: %s %d out of range" name v)
  in
  check "tos" tos 0x100;
  check "ident" ident 0x10000;
  check "ttl" ttl 0x100;
  if Bytes.length options mod 4 <> 0 || Bytes.length options > 40 then
    invalid_arg "Ipv4_packet.make: options must be <= 40 bytes, multiple of 4";
  {
    tos;
    ident;
    dont_fragment;
    more_fragments = false;
    frag_offset = 0;
    ttl;
    protocol;
    src;
    dst;
    options;
    payload;
  }

let header_length t = min_header_length + Bytes.length t.options

let rec payload_byte_length = function
  | Raw b -> Bytes.length b
  | Udp u -> Udp_wire.byte_length u
  | Tcp s -> Tcp_wire.byte_length s
  | Icmp i -> Icmp_wire.byte_length i
  | Encap inner -> byte_length inner
  | Gre_encap inner -> gre_header_length + byte_length inner
  | Min_encap inner ->
      min_encap_header_length + payload_byte_length inner.payload

and byte_length t = header_length t + payload_byte_length t.payload

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set_addr buf off a =
  let x = Ipv4_addr.to_int32 a in
  set_u16 buf off (Int32.to_int (Int32.shift_right_logical x 16) land 0xffff);
  set_u16 buf (off + 2) (Int32.to_int x land 0xffff)

let get_addr buf off =
  let hi = get_u16 buf off and lo = get_u16 buf (off + 2) in
  Ipv4_addr.of_int32
    (Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))

let rec encode_payload t =
  match t.payload with
  | Raw b -> b
  | Udp u -> Udp_wire.encode ~src:t.src ~dst:t.dst u
  | Tcp s -> Tcp_wire.encode ~src:t.src ~dst:t.dst s
  | Icmp i -> Icmp_wire.encode i
  | Encap inner -> encode inner
  | Gre_encap inner ->
      let body = encode inner in
      let buf = Bytes.make (gre_header_length + Bytes.length body) '\000' in
      (* Flags and version all zero: no checksum, key or sequence fields. *)
      set_u16 buf 2 0x0800;
      Bytes.blit body 0 buf gre_header_length (Bytes.length body);
      buf
  | Min_encap inner ->
      let body = encode_payload inner in
      let buf = Bytes.make (min_encap_header_length + Bytes.length body) '\000' in
      Bytes.set buf 0 (Char.chr (protocol_to_int inner.protocol));
      (* S bit set: we always carry the original source address. *)
      Bytes.set buf 1 (Char.chr 0x80);
      set_addr buf 4 inner.dst;
      set_addr buf 8 inner.src;
      let csum = Checksum.compute_sub buf 0 min_encap_header_length in
      set_u16 buf 2 csum;
      Bytes.blit body 0 buf min_encap_header_length (Bytes.length body);
      buf

and encode t =
  let hlen = header_length t in
  let body = encode_payload t in
  let total = hlen + Bytes.length body in
  if total > 0xffff then
    invalid_arg (Printf.sprintf "Ipv4_packet.encode: %d bytes > 65535" total);
  let buf = Bytes.make total '\000' in
  Bytes.set buf 0 (Char.chr ((4 lsl 4) lor (hlen / 4)));
  Bytes.set buf 1 (Char.chr t.tos);
  set_u16 buf 2 total;
  set_u16 buf 4 t.ident;
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.frag_offset land 0x1fff)
  in
  set_u16 buf 6 flags;
  Bytes.set buf 8 (Char.chr t.ttl);
  Bytes.set buf 9 (Char.chr (protocol_to_int t.protocol));
  set_addr buf 12 t.src;
  set_addr buf 16 t.dst;
  Bytes.blit t.options 0 buf 20 (Bytes.length t.options);
  let csum = Checksum.compute_sub buf 0 hlen in
  set_u16 buf 10 csum;
  Bytes.blit body 0 buf hlen (Bytes.length body);
  buf

(* The checksum [encode] would emit for this packet's header, computed
   field-wise without serialising.  Sums the same 16-bit words as
   [Checksum.compute_sub buf 0 hlen] with the checksum field zero. *)
let header_checksum t =
  let hlen = header_length t in
  let addr_sum a =
    let x = Ipv4_addr.to_int32 a in
    (Int32.to_int (Int32.shift_right_logical x 16) land 0xffff)
    + (Int32.to_int x land 0xffff)
  in
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.frag_offset land 0x1fff)
  in
  let sum =
    ref
      (((((4 lsl 4) lor (hlen / 4)) lsl 8) lor t.tos)
      + byte_length t + t.ident + flags
      + ((t.ttl lsl 8) lor protocol_to_int t.protocol)
      + addr_sum t.src + addr_sum t.dst)
  in
  let n = Bytes.length t.options in
  let i = ref 0 in
  while !i < n do
    sum := !sum + get_u16 t.options !i;
    i := !i + 2
  done;
  Checksum.finish !sum

(* RFC 1624: a TTL decrement rewrites only the TTL/protocol word, so the
   header checksum of the decremented packet follows from the old one
   without re-summing the header.  [checksum] must be [header_checksum]
   of [t] *before* the decrement. *)
let decrement_ttl_checksum ~checksum t =
  let proto = protocol_to_int t.protocol in
  Checksum.incremental_update ~checksum
    ~old_word:((t.ttl lsl 8) lor proto)
    ~new_word:(((t.ttl - 1) lsl 8) lor proto)

let is_fragment t = t.more_fragments || t.frag_offset > 0

let rec decode_payload ~outer body =
  if is_fragment outer then Ok (Raw body)
  else
    match outer.protocol with
    | P_udp ->
        Result.map (fun u -> Udp u)
          (Udp_wire.decode ~src:outer.src ~dst:outer.dst body)
    | P_tcp ->
        Result.map (fun s -> Tcp s)
          (Tcp_wire.decode ~src:outer.src ~dst:outer.dst body)
    | P_icmp -> Result.map (fun i -> Icmp i) (Icmp_wire.decode body)
    | P_ipip -> Result.map (fun p -> Encap p) (decode body)
    | P_gre ->
        if Bytes.length body < gre_header_length then Error "gre: truncated"
        else if get_u16 body 0 <> 0 then Error "gre: unsupported flags"
        else if get_u16 body 2 <> 0x0800 then Error "gre: not IPv4 payload"
        else
          let inner =
            Bytes.sub body gre_header_length
              (Bytes.length body - gre_header_length)
          in
          Result.map (fun p -> Gre_encap p) (decode inner)
    | P_minimal ->
        if Bytes.length body < min_encap_header_length then
          Error "minenc: truncated"
        else if Char.code (Bytes.get body 1) land 0x80 = 0 then
          Error "minenc: missing original source (S=0 unsupported)"
        else if
          Checksum.compute_sub body 0 min_encap_header_length <> 0
          && not
               (Checksum.ones_complement_sum body 0 min_encap_header_length
                land 0xffff
               = 0xffff)
        then Error "minenc: bad checksum"
        else
          let inner_protocol = protocol_of_int (Char.code (Bytes.get body 0)) in
          let inner_dst = get_addr body 4 in
          let inner_src = get_addr body 8 in
          let inner_body =
            Bytes.sub body min_encap_header_length
              (Bytes.length body - min_encap_header_length)
          in
          let inner_shell =
            {
              outer with
              protocol = inner_protocol;
              src = inner_src;
              dst = inner_dst;
              options = Bytes.empty;
              payload = Raw inner_body;
            }
          in
          Result.map
            (fun payload -> Min_encap { inner_shell with payload })
            (decode_payload ~outer:inner_shell inner_body)
    | P_other _ -> Ok (Raw body)

and decode buf =
  let n = Bytes.length buf in
  if n < min_header_length then Error "ipv4: truncated header"
  else
    let vihl = Char.code (Bytes.get buf 0) in
    let version = vihl lsr 4 in
    let hlen = (vihl land 0xf) * 4 in
    if version <> 4 then Error (Printf.sprintf "ipv4: version %d" version)
    else if hlen < min_header_length || hlen > n then
      Error "ipv4: bad header length"
    else if Checksum.compute_sub buf 0 hlen <> 0 then Error "ipv4: bad checksum"
    else
      let total = get_u16 buf 2 in
      if total <> n then
        Error (Printf.sprintf "ipv4: total length %d <> buffer %d" total n)
      else
        let flags = get_u16 buf 6 in
        let shell =
          {
            tos = Char.code (Bytes.get buf 1);
            ident = get_u16 buf 4;
            dont_fragment = flags land 0x4000 <> 0;
            more_fragments = flags land 0x2000 <> 0;
            frag_offset = flags land 0x1fff;
            ttl = Char.code (Bytes.get buf 8);
            protocol = protocol_of_int (Char.code (Bytes.get buf 9));
            src = get_addr buf 12;
            dst = get_addr buf 16;
            options = Bytes.sub buf 20 (hlen - 20);
            payload = Raw Bytes.empty;
          }
        in
        let body = Bytes.sub buf hlen (n - hlen) in
        Result.map
          (fun payload -> { shell with payload })
          (decode_payload ~outer:shell body)

let reparse_payload t =
  match t.payload with
  | Raw body when not (is_fragment t) -> (
      match decode_payload ~outer:t body with
      | Ok payload -> { t with payload }
      | Error _ -> t)
  | Raw _ | Udp _ | Tcp _ | Icmp _ | Encap _ | Gre_encap _ | Min_encap _ -> t

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let rec equal a b =
  a.tos = b.tos && a.ident = b.ident
  && a.dont_fragment = b.dont_fragment
  && a.more_fragments = b.more_fragments
  && a.frag_offset = b.frag_offset && a.ttl = b.ttl
  && a.protocol = b.protocol
  && Ipv4_addr.equal a.src b.src
  && Ipv4_addr.equal a.dst b.dst
  && Bytes.equal a.options b.options
  && equal_payload a.payload b.payload

and equal_payload a b =
  match (a, b) with
  | Raw x, Raw y -> Bytes.equal x y
  | Udp x, Udp y -> Udp_wire.equal x y
  | Tcp x, Tcp y -> Tcp_wire.equal x y
  | Icmp x, Icmp y -> Icmp_wire.equal x y
  | Encap x, Encap y | Gre_encap x, Gre_encap y -> equal x y
  | Min_encap x, Min_encap y ->
      (* Only the fields carried by the minimal-encapsulation header are
         significant for the inner packet. *)
      x.protocol = y.protocol
      && Ipv4_addr.equal x.src y.src
      && Ipv4_addr.equal x.dst y.dst
      && equal_payload x.payload y.payload
  | (Raw _ | Udp _ | Tcp _ | Icmp _ | Encap _ | Gre_encap _ | Min_encap _), _
    ->
      false

let rec pp fmt t =
  Format.fprintf fmt "[%a -> %a %a ttl=%d len=%d%s" Ipv4_addr.pp t.src
    Ipv4_addr.pp t.dst pp_protocol t.protocol t.ttl (byte_length t)
    (if is_fragment t then
       Printf.sprintf " frag(off=%d,mf=%b)" t.frag_offset t.more_fragments
     else "");
  (match t.payload with
  | Encap inner | Gre_encap inner | Min_encap inner ->
      Format.fprintf fmt " %a" pp inner
  | Udp u -> Format.fprintf fmt " %a" Udp_wire.pp u
  | Tcp s -> Format.fprintf fmt " %a" Tcp_wire.pp s
  | Icmp i -> Format.fprintf fmt " %a" Icmp_wire.pp i
  | Raw _ -> ());
  Format.fprintf fmt "]"
