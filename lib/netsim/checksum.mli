(** The Internet checksum (RFC 1071), with word-at-a-time summing and
    RFC 1624 incremental updates.

    Used by the IPv4 header ({!Ipv4_packet}), ICMP ({!Icmp_wire}) and, with a
    pseudo-header, by UDP and TCP ({!Udp_wire}, {!Tcp_wire}). *)

val ones_complement_sum : ?initial:int -> Bytes.t -> int -> int -> int
(** [ones_complement_sum ?initial buf off len] folds the 16-bit one's
    complement sum of [len] bytes of [buf] starting at [off] into [initial]
    (default 0).  A trailing odd byte is padded with zero, as the RFC
    specifies.  The result is a 16-bit partial sum, not yet complemented.

    The sum is carried eight bytes at a time (the one's complement sum is
    associative modulo [0xffff], so wider words fold to the same value);
    bounds are checked once here, not per byte.
    @raise Invalid_argument if the range is outside the buffer. *)

val finish : int -> int
(** One's-complement the partial sum, yielding the checksum field value. *)

val compute : Bytes.t -> int
(** Checksum of a whole buffer: [finish (ones_complement_sum buf 0 len)]. *)

val compute_sub : Bytes.t -> int -> int -> int
(** Checksum of a sub-range of a buffer. *)

val incremental_update : checksum:int -> old_word:int -> new_word:int -> int
(** [incremental_update ~checksum ~old_word ~new_word] is the checksum of
    a buffer after one aligned 16-bit word changes from [old_word] to
    [new_word], given the buffer's previous [checksum] — RFC 1624's
    [HC' = ~(~HC + ~m + m')], which routers use to rewrite the header
    checksum on a TTL decrement without re-summing the header.  All three
    arguments must be 16-bit values.
    @raise Invalid_argument otherwise. *)

val pseudo_header_sum :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> protocol:int -> length:int -> int
(** Partial sum of the IPv4 pseudo-header used by TCP and UDP checksums. *)

val valid : Bytes.t -> bool
(** [valid buf] is true when the buffer (with its embedded checksum field)
    sums to zero — i.e. the checksum verifies. *)
