(** Int-keyed open-addressing map for per-node data-plane lookups.

    Replaces the generic [(Ipv4_addr.t, _) Hashtbl.t] in the ARP cache,
    the pending-ARP queue and the protocol-handler table: keys are the
    int image of a 32-bit address (or a protocol number), hashing is one
    multiply-and-mask, probing is linear over a flat array, and a lookup
    hit returns the stored [Some v] cell without allocating.

    Keys must be non-negative (all 32-bit addresses and protocol numbers
    are); [min_int] is reserved as the empty-slot sentinel. *)

type 'a t

val create : ?size:int -> unit -> 'a t
(** [size] is a capacity hint (rounded up to a power of two, minimum 8). *)

val of_addr : Ipv4_addr.t -> int
(** The key an address maps to: its 32-bit unsigned int image. *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool
val replace : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit
val reset : 'a t -> unit
val length : 'a t -> int
val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
