(** IPv4 addresses and CIDR prefixes.

    Addresses are stored as 32-bit big-endian integers.  The module provides
    parsing, printing, classification predicates and the prefix arithmetic
    needed by the routing table ({!Routing}) and the boundary-router filters
    ({!Filter}). *)

type t
(** An IPv4 address. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].  Each octet must be in
    [0..255].
    @raise Invalid_argument otherwise. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parse dotted-quad notation.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val any : t
(** [0.0.0.0], the unspecified address. *)

val broadcast : t
(** [255.255.255.255], the limited broadcast address. *)

val localhost : t
(** [127.0.0.1]. *)

val is_multicast : t -> bool
(** True for class-D addresses ([224.0.0.0/4]). *)

val is_loopback : t -> bool
(** True for [127.0.0.0/8]. *)

val succ : t -> t
(** Numerically next address (wraps at [255.255.255.255]). *)

(** CIDR prefixes such as [36.0.0.0/8]. *)
module Prefix : sig
  type addr := t

  type t
  (** A network prefix: a base address and a mask length. *)

  val make : addr -> int -> t
  (** [make network bits] is [network/bits].  Host bits in [network] are
      zeroed.
      @raise Invalid_argument if [bits] is outside [0..32]. *)

  val of_string : string -> t
  (** Parse ["a.b.c.d/n"] notation.
      @raise Invalid_argument on malformed input. *)

  val of_string_opt : string -> t option
  val to_string : t -> string
  val network : t -> addr
  val bits : t -> int
  val netmask : t -> addr

  val mem : addr -> t -> bool
  (** [mem a p] is true when address [a] lies within prefix [p]. *)

  val subset : t -> t -> bool
  (** [subset sub super] is true when every address of [sub] is in
      [super]. *)

  val host : t -> int -> addr
  (** [host p n] is the [n]-th host address within [p] (1-based; [host p 1]
      is the first usable address after the network address).
      @raise Invalid_argument if [n] does not fit in the host bits. *)

  val broadcast_addr : t -> addr
  (** Directed broadcast address of the prefix. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val global : t
  (** [0.0.0.0/0], matching every address. *)
end
