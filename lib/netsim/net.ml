type fault_verdict =
  | Fault_pass
  | Fault_drop of Trace.drop_reason
  | Fault_deliver of { extra_delay : float; duplicate : bool }

(* One shard of the simulation: an engine (event queue + clock), the
   trace its nodes write, and per-shard resources.  An unsharded net is
   exactly one shard wrapping the net's own engine and trace, so the
   data plane goes through [node.shard] uniformly with no special case.
   In sequential sharded mode every shard shares the primary engine's
   clock cell and tie-break counter (one global timeline); in parallel
   mode each shard has its own clock, its own buffered trace and its own
   id counters (strided so ids stay globally unique and deterministic). *)
type shard = {
  sh_idx : int;
  sh_engine : Engine.t;
  mutable sh_trace : Trace.t;
  sh_pool : Pool.t;
  mutable sh_next_frame : int;
  mutable sh_next_flow : int;
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  mutable all_nodes : node list;
  mutable node_count : int;
      (* creation counter; nodes carry their index so the shard
         partitioner orders components deterministically *)
  mutable next_frame : int;
  mutable next_flow : int;
  mutable fault_hook :
    (link:string -> src:string -> dst:string -> fault_verdict) option;
  mutable icmp_errors : icmp_errors option;
      (* ICMP error signaling config; None (the default) keeps every drop
         silent and costs the fast path a single field load. *)
  mutable shards : shard array;  (* length 1 = unsharded *)
  mutable parallel : bool;
  mutable lookahead : float;
      (* minimum latency of any cross-shard link: the conservative
         window size for parallel barriers *)
  mutable merge_seed : int;
      (* seeds the ordering of same-timestamp cross-shard arrivals from
         different source shards at a barrier *)
  mutable frame_base : int;
  mutable flow_base : int;
      (* id counters frozen at [set_shards ~parallel:true]: parallel ids
         are [base + local * nshards + shard_idx + 1] so they never
         collide across shards and replay identically *)
  mutable outboxes : outbox array array;
      (* [src].(dst): bounded SPSC cross-shard channels, written only by
         the source shard's domain during a window, drained only by the
         coordinator at the barrier *)
}

and outbox = { mutable ob_rev : xevent list; mutable ob_count : int }
and xevent = { x_at : float; x_target : iface; x_frame : frame }

(* Opt-in ICMP error signaling: per-(node, offender) hold-down with a
   seeded LCG jitter so error emission is deterministic yet a packet storm
   cannot amplify into a synchronized error storm. *)
and icmp_errors = {
  err_min_interval : float;
  mutable err_lcg : int;
  mutable errors_sent : int;
  err_recent : (string * Ipv4_addr.t, float) Hashtbl.t;
}

and node = {
  name : string;
  router : bool;
  net : t;
  created : int;  (* creation index, orders the shard partitioner *)
  mutable shard : shard;
  mutable node_ifaces : iface list;
  table : Routing.table;
  mutable policy : Filter.policy;
  mutable claimed : Ipv4_addr.t list;
  mutable override : (Ipv4_packet.t -> override_action option) option;
  (* Int-keyed flat maps ({!Addr_map}) rather than generic Hashtbls: the
     protocol and ARP lookups run per delivered/emitted packet, and the
     polymorphic-hash walk over a boxed int32 key was measurable there. *)
  handlers : (node -> iface option -> Ipv4_packet.t -> unit) Addr_map.t;
  mutable observer : (Ipv4_packet.t -> unit) option;
  mutable intercept : (flow:int -> Ipv4_packet.t -> bool) option;
  arp_cache : Mac_addr.t Addr_map.t;
  arp_pending : pending Addr_map.t;
  reasm : Fragment.Reassembly.t;
  mutable option_penalty : float;
}

and iface = {
  ifname : string;
  owner : node;
  mac : Mac_addr.t;
  mutable addr : Ipv4_addr.t;
  mutable prefix : Ipv4_addr.Prefix.t;
  mutable mtu : int;
  mutable attachment : attachment;
  mutable up : bool;
  mutable proxy : Ipv4_addr.t list;
  mutable groups : Ipv4_addr.t list;
}

and attachment = Detached | Seg of segment | Ptp of ptp

and segment = {
  seg_name : string;
  seg_latency : float;
  seg_bandwidth : float option;
  seg_mtu : int;
  seg_loss : loss_gen option;
  mutable members : iface list;
}

and ptp = {
  ptp_name : string;
  ptp_latency : float;
  ptp_bandwidth : float option;
  ptp_loss : loss_gen option;
  mutable ends : iface list;
}

(* Deterministic per-link loss: a seeded linear congruential generator, so
   lossy-link experiments replay identically. *)
and loss_gen = { rate : float; mutable lcg : int }

and pending = { mutable queued : (iface * frame) list; mutable tries : int }

and frame = {
  fid : int;
  flow : int;
  content : content;
  l2_src : Mac_addr.t;
  l2_dst : Mac_addr.t;
  csum : int;
      (* Header checksum of the IP packet in [content], computed once at
         origin and updated incrementally (RFC 1624) at each forwarding
         hop; -1 when not computed (ARP, locally injected frames). *)
}

and content = Ip of Ipv4_packet.t | Arp_msg of arp

and arp = {
  op : [ `Request | `Reply ];
  spa : Ipv4_addr.t;
  sha : Mac_addr.t;
  tpa : Ipv4_addr.t;
}

and override_action =
  | Resubmit of Ipv4_packet.t
  | Via of {
      out : iface;
      next_hop : Ipv4_addr.t option;
      l2_dst : Mac_addr.t option;
    }
  | Discard of string

let create () =
  let engine = Engine.create () in
  let trace = Trace.create () in
  Trace.set_time_source trace (Engine.clock_cell engine);
  let shard0 =
    {
      sh_idx = 0;
      sh_engine = engine;
      sh_trace = trace;
      sh_pool = Pool.create ();
      sh_next_frame = 0;
      sh_next_flow = 0;
    }
  in
  {
    engine;
    trace;
    all_nodes = [];
    node_count = 0;
    next_frame = 0;
    next_flow = 0;
    fault_hook = None;
    icmp_errors = None;
    shards = [| shard0 |];
    parallel = false;
    lookahead = infinity;
    merge_seed = 0;
    frame_base = 0;
    flow_base = 0;
    outboxes = [||];
  }

let set_fault_hook t f = t.fault_hook <- f

let enable_error_signaling ?(min_interval = 1.0) ?(seed = 0x1c3e) t =
  if min_interval < 0.0 then
    invalid_arg "Net: error-signaling min_interval must be >= 0";
  let errors_sent =
    match t.icmp_errors with Some c -> c.errors_sent | None -> 0
  in
  t.icmp_errors <-
    Some
      {
        err_min_interval = min_interval;
        err_lcg = seed land 0x3fffffff;
        errors_sent;
        err_recent = Hashtbl.create 32;
      }

let disable_error_signaling t = t.icmp_errors <- None
let error_signaling t = t.icmp_errors <> None

let icmp_errors_sent t =
  match t.icmp_errors with None -> 0 | Some c -> c.errors_sent

(* When on, every forwarding hop cross-checks the RFC 1624 incremental
   checksum against a full field-wise recompute.  Global (not per-world):
   it guards an algorithm, not a topology. *)
let checksum_debug = ref false
let set_checksum_debug b = checksum_debug := b
let set_tracing t b = Trace.set_enabled t.trace b

let engine t = t.engine
let trace t = t.trace
let now t = Engine.now t.engine

let add_node t name router =
  if List.exists (fun n -> n.name = name) t.all_nodes then
    invalid_arg (Printf.sprintf "Net: node %S already exists" name);
  let node =
    {
      name;
      router;
      net = t;
      created = t.node_count;
      shard = t.shards.(0);
      node_ifaces = [];
      table = Routing.create ();
      policy = Filter.accept_all;
      claimed = [];
      override = None;
      handlers = Addr_map.create ~size:8 ();
      observer = None;
      intercept = None;
      arp_cache = Addr_map.create ~size:16 ();
      arp_pending = Addr_map.create ~size:8 ();
      reasm = Fragment.Reassembly.create ();
      option_penalty = (if router then 0.001 else 0.0);
    }
  in
  t.node_count <- t.node_count + 1;
  t.all_nodes <- node :: t.all_nodes;
  node

let add_host t name = add_node t name false
let add_router t name = add_node t name true
let find_node t name = List.find_opt (fun n -> n.name = name) t.all_nodes
let node_name n = n.name
let is_router n = n.router
let nodes t = List.rev t.all_nodes
let node_net n = n.net
let node_engine n = n.shard.sh_engine
let node_now n = Engine.now n.shard.sh_engine
let node_pool n = n.shard.sh_pool
let node_shard n = n.shard.sh_idx
let shard_count t = Array.length t.shards
let parallel t = t.parallel
let lookahead t = t.lookahead

let make_loss_gen ?loss ?(loss_seed = 0x5eed) () =
  match loss with
  | Some rate when rate > 0.0 ->
      if rate >= 1.0 then invalid_arg "Net: loss rate must be < 1.0";
      Some { rate; lcg = loss_seed land 0x3fffffff }
  | Some _ | None -> None

let loss_roll = function
  | None -> false
  | Some g ->
      g.lcg <- ((g.lcg * 1103515245) + 12345) land 0x3fffffff;
      float_of_int g.lcg /. 1073741824.0 < g.rate

let add_segment t ~name ?(latency = 0.0005) ?bandwidth ?(mtu = 1500) ?loss
    ?loss_seed () =
  ignore t;
  {
    seg_name = name;
    seg_latency = latency;
    seg_bandwidth = bandwidth;
    seg_mtu = mtu;
    seg_loss = make_loss_gen ?loss ?loss_seed ();
    members = [];
  }

let segment_name s = s.seg_name
let segment_mtu s = s.seg_mtu

let check_fresh_iface node ifname =
  if List.exists (fun i -> i.ifname = ifname) node.node_ifaces then
    invalid_arg
      (Printf.sprintf "Net: node %S already has interface %S" node.name ifname)

let install_connected_route iface =
  Routing.add iface.owner.table ~prefix:iface.prefix ~iface:iface.ifname ()

let attach node segment ~ifname ~addr ~prefix =
  check_fresh_iface node ifname;
  let iface =
    {
      ifname;
      owner = node;
      mac = Mac_addr.fresh ();
      addr;
      prefix;
      mtu = segment.seg_mtu;
      attachment = Seg segment;
      up = true;
      proxy = [];
      groups = [];
    }
  in
  node.node_ifaces <- node.node_ifaces @ [ iface ];
  segment.members <- iface :: segment.members;
  install_connected_route iface;
  iface

let p2p t ?(latency = 0.010) ?bandwidth ?(mtu = 1500) ?loss ?loss_seed ~prefix
    (node_a, name_a, addr_a) (node_b, name_b, addr_b) =
  check_fresh_iface node_a name_a;
  check_fresh_iface node_b name_b;
  let link =
    {
      ptp_name = Printf.sprintf "%s<->%s" node_a.name node_b.name;
      ptp_latency = latency;
      ptp_bandwidth = bandwidth;
      ptp_loss = make_loss_gen ?loss ?loss_seed ();
      ends = [];
    }
  in
  let mk node ifname addr =
    let iface =
      {
        ifname;
        owner = node;
        mac = Mac_addr.fresh ();
        addr;
        prefix;
        mtu;
        attachment = Ptp link;
        up = true;
        proxy = [];
        groups = [];
      }
    in
    node.node_ifaces <- node.node_ifaces @ [ iface ];
    link.ends <- link.ends @ [ iface ];
    install_connected_route iface;
    iface
  in
  ignore t;
  let ia = mk node_a name_a addr_a in
  let ib = mk node_b name_b addr_b in
  (ia, ib)

let iface_name i = i.ifname
let iface_addr i = i.addr
let iface_prefix i = i.prefix
let iface_mtu i = i.mtu

let iface_mac i =
  match i.attachment with Seg _ -> Some i.mac | Ptp _ | Detached -> None

let iface_node i = i.owner
let iface_up i = i.up

let set_iface_addr i ~addr ~prefix =
  (* Only this interface's connected route: another iface may legitimately
     hold a route for the same prefix. *)
  Routing.remove i.owner.table ~iface:i.ifname ~prefix:i.prefix ();
  i.addr <- addr;
  i.prefix <- prefix;
  install_connected_route i

let detach i =
  (match i.attachment with
  | Seg s -> s.members <- List.filter (fun m -> m != i) s.members
  | Ptp l -> l.ends <- List.filter (fun m -> m != i) l.ends
  | Detached -> ());
  i.attachment <- Detached;
  i.up <- false;
  Routing.remove_iface i.owner.table ~iface:i.ifname

let reattach i segment =
  (match i.attachment with
  | Detached -> ()
  | Seg _ | Ptp _ -> detach i);
  i.attachment <- Seg segment;
  i.mtu <- segment.seg_mtu;
  i.up <- true;
  segment.members <- i :: segment.members;
  install_connected_route i

let ifaces node = node.node_ifaces
let find_iface node name = List.find_opt (fun i -> i.ifname = name) node.node_ifaces
let routing node = node.table
let set_filter node p = node.policy <- p
let filter node = node.policy

let claim_address node addr =
  if not (List.exists (Ipv4_addr.equal addr) node.claimed) then
    node.claimed <- addr :: node.claimed

let unclaim_address node addr =
  node.claimed <- List.filter (fun a -> not (Ipv4_addr.equal a addr)) node.claimed

let owns_address node addr =
  List.exists (fun i -> i.up && Ipv4_addr.equal i.addr addr) node.node_ifaces
  || List.exists (Ipv4_addr.equal addr) node.claimed

let set_route_override node f = node.override <- f

let set_protocol_handler node protocol handler =
  Addr_map.replace node.handlers (Ipv4_packet.protocol_to_int protocol) handler

let clear_protocol_handler node protocol =
  Addr_map.remove node.handlers (Ipv4_packet.protocol_to_int protocol)

let set_delivery_observer node f = node.observer <- f
let set_intercept node f = node.intercept <- f
let set_option_processing_delay node d = node.option_penalty <- d
let option_processing_delay node = node.option_penalty

let add_proxy_arp _node iface addr =
  if not (List.exists (Ipv4_addr.equal addr) iface.proxy) then
    iface.proxy <- addr :: iface.proxy

let remove_proxy_arp _node iface addr =
  iface.proxy <- List.filter (fun a -> not (Ipv4_addr.equal a addr)) iface.proxy

let proxy_arp_entries node =
  List.concat_map (fun iface -> List.rev iface.proxy) node.node_ifaces

let arp_lookup node addr = Addr_map.find node.arp_cache (Addr_map.of_addr addr)
let clear_arp node = Addr_map.reset node.arp_cache

let neighbour_on_segment node addr =
  List.find_map
    (fun i ->
      match i.attachment with
      | Seg s ->
          List.find_map
            (fun m ->
              if m != i && m.up && Ipv4_addr.equal m.addr addr then
                Some (i, m.mac)
              else None)
            s.members
      | Ptp _ | Detached -> None)
    node.node_ifaces

let neighbour_mac node addr =
  Option.map snd (neighbour_on_segment node addr)

let join_group _node iface group =
  if not (Ipv4_addr.is_multicast group) then
    invalid_arg
      (Printf.sprintf "Net.join_group: %s is not multicast"
         (Ipv4_addr.to_string group));
  if not (List.exists (Ipv4_addr.equal group) iface.groups) then
    iface.groups <- group :: iface.groups

let leave_group _node iface group =
  iface.groups <- List.filter (fun g -> not (Ipv4_addr.equal g group)) iface.groups

let new_flow t =
  t.next_flow <- t.next_flow + 1;
  t.next_flow

(* Flow allocation with a node in hand: sequential modes share the net
   counter (ids identical to the unsharded world); parallel mode strides
   a per-shard counter so concurrent shards never collide and a replay
   hands out the same ids. *)
let new_flow_on node =
  let t = node.net in
  if not t.parallel then new_flow t
  else begin
    let sh = node.shard in
    sh.sh_next_flow <- sh.sh_next_flow + 1;
    t.flow_base + ((sh.sh_next_flow - 1) * Array.length t.shards) + sh.sh_idx + 1
  end

let new_frame_id node =
  let t = node.net in
  if not t.parallel then begin
    t.next_frame <- t.next_frame + 1;
    t.next_frame
  end
  else begin
    let sh = node.shard in
    sh.sh_next_frame <- sh.sh_next_frame + 1;
    t.frame_base
    + ((sh.sh_next_frame - 1) * Array.length t.shards)
    + sh.sh_idx + 1
  end

let frame_info (f : frame) pkt : Trace.frame_info =
  { Trace.id = f.fid; flow = f.flow; pkt }

let record node event =
  Trace.record node.shard.sh_trace ~time:(Engine.now node.shard.sh_engine) event

(* Checked before building any trace event: when false, the per-hop
   fast path skips [frame_info]/event allocation entirely. *)
let tracing node = Trace.interested node.shard.sh_trace

(* Allocation-free tracing of the hottest per-hop events: when only fast
   taps (the flight recorder) are listening, these skip the
   frame_info/event/record graph that [record] builds.  [emit_*] are
   self-gated and stamp the time from the engine's clock cell, so the
   call sites below use them unguarded. *)
let trace_send node (f : frame) pkt =
  Trace.emit_send node.shard.sh_trace ~node:node.name ~id:f.fid ~flow:f.flow
    ~pkt

let trace_transmit node ~link (f : frame) pkt ~bytes =
  Trace.emit_transmit node.shard.sh_trace ~link ~id:f.fid ~flow:f.flow ~pkt
    ~bytes

let trace_forward node ~in_iface ~out_iface (f : frame) pkt =
  Trace.emit_forward node.shard.sh_trace ~node:node.name ~in_iface ~out_iface
    ~id:f.fid ~flow:f.flow ~pkt

let trace_deliver node (f : frame) pkt =
  Trace.emit_deliver node.shard.sh_trace ~node:node.name ~id:f.fid
    ~flow:f.flow ~pkt

let same_segment a b =
  List.exists
    (fun ia ->
      match ia.attachment with
      | Seg s -> List.exists (fun ib -> ib.owner == b && ib.up) s.members
      | Ptp _ | Detached -> false)
    a.node_ifaces

(* ---------------------------------------------------------------- *)
(* Data plane                                                        *)
(* ---------------------------------------------------------------- *)

let frame_bytes = function
  | Ip pkt -> Ipv4_packet.byte_length pkt
  | Arp_msg _ -> 28

let link_delay ~latency ~bandwidth bytes =
  latency
  +. (match bandwidth with
     | Some bps when bps > 0.0 -> float_of_int (bytes * 8) /. bps
     | _ -> 0.0)

let rec deliver_frame_to iface frame =
  if iface.up then
    match frame.content with
    | Arp_msg a -> arp_input iface frame a
    | Ip pkt -> ip_input iface frame pkt

(* Put a frame on the wire of [out]'s link.  [l2_dst] must already be
   resolved for segments. *)
and emit out frame =
  let node = out.owner in
  let bytes = frame_bytes frame.content in
  (match frame.content with
  | Ip pkt ->
      let link_name =
        match out.attachment with
        | Seg s -> s.seg_name
        | Ptp l -> l.ptp_name
        | Detached -> "detached"
      in
      trace_transmit node ~link:link_name frame pkt ~bytes
  | Arp_msg _ -> ());
  match out.attachment with
  | Detached -> (
      match frame.content with
      | Ip pkt ->
          if tracing node then
            record node
            (Trace.Drop
               {
                 node = node.name;
                 reason = Trace.Link_down;
                 frame = frame_info frame pkt;
               })
      | Arp_msg _ -> ())
  | Ptp l ->
      if loss_roll l.ptp_loss then record_link_loss node frame
      else begin
        let delay =
          link_delay ~latency:l.ptp_latency ~bandwidth:l.ptp_bandwidth bytes
        in
        let peers = List.filter (fun e -> e != out) l.ends in
        List.iter
          (fun peer -> fault_deliver node ~link:l.ptp_name ~delay peer frame)
          peers
      end
  | Seg s ->
      if loss_roll s.seg_loss then record_link_loss node frame
      else begin
        let delay =
          link_delay ~latency:s.seg_latency ~bandwidth:s.seg_bandwidth bytes
        in
        let targets =
          if Mac_addr.is_broadcast frame.l2_dst then
            List.filter (fun m -> m != out) s.members
          else
            List.filter (fun m -> Mac_addr.equal m.mac frame.l2_dst) s.members
        in
        List.iter
          (fun target -> fault_deliver node ~link:s.seg_name ~delay target frame)
          targets
      end

(* Per-target delivery, filtered through the network's fault plan (if any).
   The hook sees the link name and both node names; it can drop the copy
   (with a trace reason), delay it, or duplicate it. *)
and fault_deliver node ~link ~delay target frame =
  let schedule d =
    let src = node.shard and dst = target.owner.shard in
    if src == dst then
      Engine.after src.sh_engine d (fun () -> deliver_frame_to target frame)
    else begin
      (* Cross-shard hop.  The timestamp is the *sender's* clock plus the
         link delay.  Sequential sharded mode schedules straight into the
         target shard's queue (shared clock and tie-break counter keep
         the global order identical to unsharded); parallel mode may not
         touch another domain's queue, so the frame goes into the bounded
         SPSC outbox and is merged at the next barrier. *)
      let at = Engine.now src.sh_engine +. d in
      if node.net.parallel then push_xshard node.net src dst ~at target frame
      else
        Engine.schedule dst.sh_engine ~at (fun () ->
            deliver_frame_to target frame)
    end
  in
  match node.net.fault_hook with
  | None -> schedule delay
  | Some hook -> (
      match hook ~link ~src:node.name ~dst:target.owner.name with
      | Fault_pass -> schedule delay
      | Fault_drop reason -> record_fault_drop node reason frame
      | Fault_deliver { extra_delay; duplicate } ->
          schedule (delay +. extra_delay);
          if duplicate then schedule (delay +. extra_delay))

and record_fault_drop node reason frame =
  match frame.content with
  | Ip pkt ->
      if tracing node then
        record node
        (Trace.Drop
           { node = node.name; reason; frame = frame_info frame pkt })
  | Arp_msg _ -> ()

and record_link_loss node frame = record_fault_drop node Trace.Link_loss frame

and push_xshard t src dst ~at target frame =
  let ob = t.outboxes.(src.sh_idx).(dst.sh_idx) in
  if ob.ob_count >= 65536 then
    failwith
      (Printf.sprintf
         "Net: cross-shard channel %d->%d overflowed (65536 frames in one \
          window)"
         src.sh_idx dst.sh_idx);
  ob.ob_rev <- { x_at = at; x_target = target; x_frame = frame } :: ob.ob_rev;
  ob.ob_count <- ob.ob_count + 1

and send_arp out ~l2_dst arp =
  let node = out.owner in
  let frame =
    {
      fid = new_frame_id node;
      flow = 0;
      content = Arp_msg arp;
      l2_src = out.mac;
      l2_dst;
      csum = -1;
    }
  in
  emit out frame

and arp_request_retry out next_hop =
  let node = out.owner in
  match Addr_map.find node.arp_pending (Addr_map.of_addr next_hop) with
  | None -> ()
  | Some pending when pending.tries >= 3 ->
      Addr_map.remove node.arp_pending (Addr_map.of_addr next_hop);
      List.iter
        (fun (_, frame) ->
          match frame.content with
          | Ip pkt ->
              (if tracing node then
                 record node
                   (Trace.Drop
                      {
                        node = node.name;
                        reason = Trace.Arp_unresolved;
                        frame = frame_info frame pkt;
                      }));
              (* Dead next hop: three unanswered ARP requests.  Signal the
                 sender rather than black-holing the queued packets. *)
              send_icmp_error node ~reason:Trace.Arp_unresolved
                ~code:Icmp_wire.Host_unreachable ~src:out.addr pkt
          | Arp_msg _ -> ())
        pending.queued
  | Some pending ->
      pending.tries <- pending.tries + 1;
      send_arp out ~l2_dst:Mac_addr.broadcast
        { op = `Request; spa = out.addr; sha = out.mac; tpa = next_hop };
      Engine.after node.shard.sh_engine 0.5 (fun () ->
          arp_request_retry out next_hop)

and arp_resolve out next_hop frame =
  let node = out.owner in
  match Addr_map.find node.arp_cache (Addr_map.of_addr next_hop) with
  | Some mac -> emit out { frame with l2_dst = mac }
  | None -> (
      match Addr_map.find node.arp_pending (Addr_map.of_addr next_hop) with
      | Some pending -> pending.queued <- pending.queued @ [ (out, frame) ]
      | None ->
          Addr_map.replace node.arp_pending
            (Addr_map.of_addr next_hop)
            { queued = [ (out, frame) ]; tries = 0 };
          arp_request_retry out next_hop)

and arp_input iface frame arp =
  let node = iface.owner in
  if not (Ipv4_addr.equal arp.spa Ipv4_addr.any) then begin
    Addr_map.replace node.arp_cache (Addr_map.of_addr arp.spa) arp.sha;
    (* Flush any frames waiting on this mapping. *)
    match Addr_map.find node.arp_pending (Addr_map.of_addr arp.spa) with
    | Some pending ->
        Addr_map.remove node.arp_pending (Addr_map.of_addr arp.spa);
        List.iter
          (fun (out, f) -> emit out { f with l2_dst = arp.sha })
          pending.queued
    | None -> ()
  end;
  match arp.op with
  | `Reply -> ()
  | `Request ->
      let answers =
        (iface.up && Ipv4_addr.equal iface.addr arp.tpa)
        || List.exists (Ipv4_addr.equal arp.tpa) iface.proxy
      in
      if answers then
        send_arp iface ~l2_dst:frame.l2_src
          { op = `Reply; spa = arp.tpa; sha = iface.mac; tpa = arp.spa }

and ip_output node ~out ~next_hop ?l2_dst ~flow ?(csum = -1) pkt =
  if not out.up then begin
    let f =
      { fid = new_frame_id node; flow; content = Ip pkt;
        l2_src = out.mac; l2_dst = Mac_addr.broadcast; csum }
    in
    if tracing node then
      record node
      (Trace.Drop
         { node = node.name; reason = Trace.Link_down; frame = frame_info f pkt })
  end
  else
    match Fragment.fragment ~mtu:out.mtu pkt with
    | Error _ ->
        let f =
          { fid = new_frame_id node; flow; content = Ip pkt;
            l2_src = out.mac; l2_dst = Mac_addr.broadcast; csum }
        in
        if tracing node then
          record node
          (Trace.Drop
             { node = node.name; reason = Trace.Mtu_exceeded; frame = frame_info f pkt });
        (* RFC 1191-style feedback so senders can adapt. *)
        if pkt.Ipv4_packet.protocol <> Ipv4_packet.P_icmp then begin
          let context = Bytes.create 0 in
          let icmp =
            Icmp_wire.Dest_unreachable
              { code = Icmp_wire.Fragmentation_needed; context }
          in
          let reply =
            Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src:out.addr
              ~dst:pkt.Ipv4_packet.src (Ipv4_packet.Icmp icmp)
          in
          originate node ~flow:(new_flow_on node) reply
        end
    | Ok pieces ->
        List.iter
          (fun piece ->
            let frame =
              {
                fid = new_frame_id node;
                flow;
                content = Ip piece;
                l2_src = out.mac;
                l2_dst = Mac_addr.broadcast;
                (* Fragmenting rewrites length/flags/offset, so each piece
                   gets its own full checksum; the common unfragmented case
                   returns the packet unchanged and keeps the carried one. *)
                csum =
                  (if piece == pkt then
                     if csum >= 0 then csum
                     else Ipv4_packet.header_checksum pkt
                   else Ipv4_packet.header_checksum piece);
              }
            in
            match out.attachment with
            | Ptp _ | Detached -> emit out frame
            | Seg _ -> (
                match l2_dst with
                | Some mac -> emit out { frame with l2_dst = mac }
                | None ->
                    let dst = piece.Ipv4_packet.dst in
                    if
                      Ipv4_addr.equal dst Ipv4_addr.broadcast
                      || Ipv4_addr.is_multicast dst
                      || Ipv4_addr.equal dst (Ipv4_addr.Prefix.broadcast_addr out.prefix)
                    then emit out frame
                    else arp_resolve out next_hop frame))
          pieces

and ip_input iface frame pkt =
  let node = iface.owner in
  match Filter.evaluate node.policy ~in_iface:iface.ifname pkt with
  | Filter.Reject reason ->
      (if tracing node then
         record node
           (Trace.Drop
              { node = node.name; reason; frame = frame_info frame pkt }));
      (* §7.1.2: a filtering router that signals its refusal lets the
         sender adapt its delivery method instead of timing out. *)
      send_icmp_error node ~reason ~code:Icmp_wire.Admin_prohibited
        ~src:iface.addr pkt
  | Filter.Pass ->
      let dst = pkt.Ipv4_packet.dst in
      let local =
        owns_address node dst
        || Ipv4_addr.equal dst Ipv4_addr.broadcast
        || Ipv4_addr.equal dst (Ipv4_addr.Prefix.broadcast_addr iface.prefix)
        || (Ipv4_addr.is_multicast dst
           && List.exists (Ipv4_addr.equal dst) iface.groups)
      in
      if local then deliver node (Some iface) frame pkt
      else if Ipv4_addr.is_multicast dst || Ipv4_addr.equal dst Ipv4_addr.broadcast
      then (* not joined / not ours: ignore silently *) ()
      else if node.router then forward node iface frame pkt
      else
        if tracing node then
          record node
          (Trace.Drop
             { node = node.name; reason = Trace.Not_for_me; frame = frame_info frame pkt })

and deliver node in_iface frame pkt =
  match Fragment.Reassembly.add node.reasm ~now:(Engine.now node.shard.sh_engine) pkt with
  | None -> (* incomplete datagram; wait for more fragments *) ()
  | Some whole -> (
      (* Loose source routing: a packet addressed to us whose route is not
         exhausted is rewritten toward its next listed hop (RFC 791). *)
      match Ipv4_options.lsr_next_hop whole.Ipv4_packet.options with
      | Some next -> (
          match
            Ipv4_options.advance_lsr whole.Ipv4_packet.options
              ~here:whole.Ipv4_packet.dst
          with
          | Some options ->
              let rerouted =
                { whole with Ipv4_packet.dst = next; options }
              in
              if tracing node then
                record node
                (Trace.Forward
                   {
                     node = node.name;
                     in_iface = "lsr";
                     out_iface = "lsr";
                     frame = frame_info frame rerouted;
                   });
              originate node ~flow:frame.flow rerouted
          | None -> ())
      | None -> deliver_local node in_iface frame whole)

and deliver_local node in_iface frame whole =
      let consumed =
        match node.intercept with
        | Some hook ->
            Prof.enter Prof.Agent;
            let c = hook ~flow:frame.flow whole in
            Prof.leave Prof.Agent;
            c
        | None -> false
      in
      if not consumed then begin
        trace_deliver node frame whole;
        (match node.observer with Some f -> f whole | None -> ());
        let proto = Ipv4_packet.protocol_to_int whole.Ipv4_packet.protocol in
        match Addr_map.find node.handlers proto with
        | Some handler -> handler node in_iface whole
        | None -> ()
      end

and forward node in_iface frame pkt =
  match Ipv4_packet.decrement_ttl pkt with
  | None ->
      if tracing node then
        record node
        (Trace.Drop
           { node = node.name; reason = Trace.Ttl_expired; frame = frame_info frame pkt })
  | Some pkt ->
      forward_routed node in_iface frame
        ~csum:
          (if frame.csum >= 0 then begin
             (* Only the TTL/protocol word changed: RFC 1624 incremental
                update instead of re-summing the whole header.  [frame.csum]
                belongs to the pre-decrement packet, so derive from the
                original frame content. *)
             let c =
               match frame.content with
               | Ip orig ->
                   Ipv4_packet.decrement_ttl_checksum ~checksum:frame.csum
                     orig
               | Arp_msg _ -> Ipv4_packet.header_checksum pkt
             in
             if !checksum_debug then begin
               let full = Ipv4_packet.header_checksum pkt in
               if c <> full then
                 failwith
                   (Printf.sprintf
                      "Net.forward: incremental checksum %#x <> recompute %#x"
                      c full)
             end;
             c
           end
           else Ipv4_packet.header_checksum pkt)
        pkt

and forward_routed node in_iface frame ~csum pkt =
  (match Routing.lookup node.table pkt.Ipv4_packet.dst with
      | None ->
          (if tracing node then
             record node
               (Trace.Drop
                  { node = node.name; reason = Trace.No_route;
                    frame = frame_info frame pkt }));
          send_icmp_error node ~reason:Trace.No_route
            ~code:Icmp_wire.Host_unreachable ~src:in_iface.addr pkt
      | Some route -> (
          match find_iface node route.Routing.iface with
          | None ->
              (if tracing node then
                 record node
                   (Trace.Drop
                      { node = node.name; reason = Trace.No_route;
                        frame = frame_info frame pkt }));
              send_icmp_error node ~reason:Trace.No_route
                ~code:Icmp_wire.Host_unreachable ~src:in_iface.addr pkt
          | Some out ->
              trace_forward node ~in_iface:in_iface.ifname
                ~out_iface:out.ifname frame pkt;
              let next_hop =
                match route.Routing.gateway with
                | Some g -> g
                | None -> pkt.Ipv4_packet.dst
              in
              (* Optioned packets take the router's slow path (§4). *)
              if
                node.option_penalty > 0.0
                && Ipv4_options.has_options pkt.Ipv4_packet.options
              then
                Engine.after node.shard.sh_engine node.option_penalty (fun () ->
                    ip_output node ~out ~next_hop ~flow:frame.flow ~csum pkt)
              else ip_output node ~out ~next_hop ~flow:frame.flow ~csum pkt))

(* Answer a drop with a real RFC 792 error quoting the offending datagram
   (IP header + 8 payload bytes), so senders get fast negative feedback
   instead of a silent black hole.  Opt-in per net
   ([enable_error_signaling]); never errors about ICMP, unspecified,
   broadcast or multicast traffic; held down per (node, offender) with
   seeded jitter. *)
and send_icmp_error node ~reason ~code ~src pkt =
  match node.net.icmp_errors with
  | None -> ()
  | Some cfg ->
      let offender = pkt.Ipv4_packet.src in
      if
        pkt.Ipv4_packet.protocol <> Ipv4_packet.P_icmp
        && (not (Ipv4_addr.equal src Ipv4_addr.any))
        && (not (Ipv4_addr.equal offender Ipv4_addr.any))
        && (not (Ipv4_addr.equal offender Ipv4_addr.broadcast))
        && (not (Ipv4_addr.is_multicast offender))
        && (not (Ipv4_addr.equal pkt.Ipv4_packet.dst Ipv4_addr.broadcast))
        && not (Ipv4_addr.is_multicast pkt.Ipv4_packet.dst)
      then begin
        let key = (node.name, offender) in
        let t_now = Engine.now node.shard.sh_engine in
        let due =
          match Hashtbl.find_opt cfg.err_recent key with
          | None -> true
          | Some last ->
              cfg.err_lcg <-
                ((cfg.err_lcg * 1103515245) + 12345) land 0x3fffffff;
              let jitter = float_of_int cfg.err_lcg /. 1073741824.0 in
              t_now -. last
              >= cfg.err_min_interval *. (1.0 +. (0.25 *. jitter))
        in
        if due then begin
          Hashtbl.replace cfg.err_recent key t_now;
          cfg.errors_sent <- cfg.errors_sent + 1;
          let context = Icmp_wire.quote_context (Ipv4_packet.encode pkt) in
          let icmp = Icmp_wire.Dest_unreachable { code; context } in
          let reply =
            Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src ~dst:offender
              (Ipv4_packet.Icmp icmp)
          in
          let flow = new_flow_on node in
          if tracing node then
            record node
              (Trace.Icmp_error
                 {
                   node = node.name;
                   reason;
                   frame = { Trace.id = 0; flow; pkt = reply };
                 });
          originate node ~flow reply
        end
      end

(* Origin transmission: loopback, override hook, routing table. *)
and originate ?(depth = 0) node ~flow ?via ?l2_dst pkt =
  if depth > 8 then
    invalid_arg "Net.send: route-override resubmit loop (depth > 8)"
  else begin
    (* Fill an unspecified source from the outgoing interface only after
       the route-override hook has seen the packet: an unbound source is
       itself a signal the mobility policy keys on (§7.1.1). *)
    let fill_src out pkt =
      if Ipv4_addr.equal pkt.Ipv4_packet.src Ipv4_addr.any then
        { pkt with Ipv4_packet.src = out.addr }
      else pkt
    in
    let fake_frame pkt =
      { fid = new_frame_id node; flow; content = Ip pkt;
        l2_src = Mac_addr.broadcast; l2_dst = Mac_addr.broadcast;
        csum = Ipv4_packet.header_checksum pkt }
    in
    let emit_via out ~next_hop ?l2_dst pkt =
      let pkt = fill_src out pkt in
      let f = fake_frame pkt in
      trace_send node f pkt;
      ip_output node ~out ~next_hop ?l2_dst ~flow ~csum:f.csum pkt
    in
    if owns_address node pkt.Ipv4_packet.dst then begin
      (* Loopback delivery: never touches a wire. *)
      let pkt =
        if Ipv4_addr.equal pkt.Ipv4_packet.src Ipv4_addr.any then
          { pkt with Ipv4_packet.src = pkt.Ipv4_packet.dst }
        else pkt
      in
      let f = fake_frame pkt in
      trace_send node f pkt;
      deliver node None f pkt
    end
    else begin
      let decision =
        match node.override with
        | Some hook ->
            Prof.enter Prof.Agent;
            let d = hook pkt in
            Prof.leave Prof.Agent;
            d
        | None -> None
      in
      match decision with
      | Some (Resubmit pkt') ->
          originate ~depth:(depth + 1) node ~flow ?via ?l2_dst pkt'
      | Some (Discard reason) ->
          let f = fake_frame pkt in
          if tracing node then
            record node
            (Trace.Drop
               {
                 node = node.name;
                 reason = Trace.Custom reason;
                 frame = frame_info f pkt;
               })
      | Some (Via { out; next_hop; l2_dst = forced_l2 }) ->
          let next_hop = Option.value next_hop ~default:pkt.Ipv4_packet.dst in
          emit_via out ~next_hop ?l2_dst:forced_l2 pkt
      | None -> (
          match via with
          | Some out -> emit_via out ~next_hop:pkt.Ipv4_packet.dst ?l2_dst pkt
          | None -> (
              match Routing.lookup node.table pkt.Ipv4_packet.dst with
              | None ->
                  let f = fake_frame pkt in
                  if tracing node then
                    record node
                    (Trace.Drop
                       {
                         node = node.name;
                         reason = Trace.No_route;
                         frame = frame_info f pkt;
                       })
              | Some route -> (
                  match find_iface node route.Routing.iface with
                  | None ->
                      let f = fake_frame pkt in
                      if tracing node then
                        record node
                        (Trace.Drop
                           {
                             node = node.name;
                             reason = Trace.No_route;
                             frame = frame_info f pkt;
                           })
                  | Some out ->
                      let next_hop =
                        match route.Routing.gateway with
                        | Some g -> g
                        | None -> pkt.Ipv4_packet.dst
                      in
                      emit_via out ~next_hop ?l2_dst pkt)))
    end
  end

let send node ?flow ?via ?l2_dst pkt =
  let flow = match flow with Some f -> f | None -> new_flow_on node in
  originate node ~flow ?via ?l2_dst pkt;
  flow

let inject_local node ~flow pkt =
  let frame =
    { fid = new_frame_id node; flow; content = Ip pkt;
      l2_src = Mac_addr.broadcast; l2_dst = Mac_addr.broadcast; csum = -1 }
  in
  if tracing node then
    record node
      (Trace.Deliver { node = node.name; frame = frame_info frame pkt });
  (match node.observer with Some f -> f pkt | None -> ());
  let proto = Ipv4_packet.protocol_to_int pkt.Ipv4_packet.protocol in
  (match Addr_map.find node.handlers proto with
  | Some handler -> handler node None pkt
  | None -> ())

let gratuitous_arp _node iface addr =
  send_arp iface ~l2_dst:Mac_addr.broadcast
    { op = `Reply; spa = addr; sha = iface.mac; tpa = addr }

(* ---------------------------------------------------------------- *)
(* Sharding                                                          *)
(* ---------------------------------------------------------------- *)

(* Union-find over node creation indices.  Roots are always the minimum
   creation index of their component, so component identity (and with it
   the whole partition) is a pure function of topology construction
   order — re-running the same build re-derives the same shards. *)
let uf_find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  let rec compress i =
    if parent.(i) <> r then begin
      let p = parent.(i) in
      parent.(i) <- r;
      compress p
    end
  in
  compress i;
  r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

(* Walk every link once: anything that would let two shards touch the
   same mutable state must end up in one component.  Segments are shared
   ARP/broadcast domains; lossy point-to-point links carry a shared
   seeded LCG.  Loss-free point-to-point links are the only permitted
   shard cuts — their latency is the conservative lookahead. *)
let merge_colocated parent arr ~same =
  Array.iter
    (fun nd ->
      List.iter
        (fun i ->
          match i.attachment with
          | Seg s ->
              List.iter
                (fun m -> uf_union parent nd.created m.owner.created)
                s.members
          | Ptp l ->
              if l.ptp_loss <> None then
                List.iter
                  (fun m -> uf_union parent nd.created m.owner.created)
                  l.ends
          | Detached -> ())
        nd.node_ifaces)
    arr;
  List.iter (fun (a, b) -> uf_union parent a.created b.created) same

(* Cross-shard audit: returns the conservative lookahead (minimum latency
   over links that span shards).  With [strict] (parallel runs) it also
   rejects configurations the barrier executor cannot handle — checked
   again at every run start, because roaming ([reattach]) can move an
   interface onto a foreign shard's segment after partitioning. *)
let validate_shards t ~strict =
  let la = ref infinity in
  List.iter
    (fun nd ->
      List.iter
        (fun i ->
          match i.attachment with
          | Seg s ->
              if strict then
                List.iter
                  (fun m ->
                    if m.owner.shard != nd.shard then
                      invalid_arg
                        (Printf.sprintf
                           "Net: segment %S spans shards %d and %d; parallel \
                            runs need each segment confined to one shard \
                            (pass ~same hints to set_shards for roaming \
                            nodes)"
                           s.seg_name nd.shard.sh_idx m.owner.shard.sh_idx))
                  s.members
          | Ptp l ->
              List.iter
                (fun m ->
                  if m.owner.shard != nd.shard then begin
                    if strict && l.ptp_loss <> None then
                      invalid_arg
                        (Printf.sprintf
                           "Net: lossy link %S spans shards; its loss \
                            generator is shared state (co-shard the \
                            endpoints)"
                           l.ptp_name);
                    if strict && l.ptp_latency <= 0.0 then
                      invalid_arg
                        (Printf.sprintf
                           "Net: link %S crosses shards with zero latency; \
                            conservative parallel windows need lookahead > 0"
                           l.ptp_name);
                    if l.ptp_latency < !la then la := l.ptp_latency
                  end)
                l.ends
          | Detached -> ())
        nd.node_ifaces)
    (nodes t);
  !la

let collapse_shards t =
  let shard0 = t.shards.(0) in
  shard0.sh_trace <- t.trace;
  shard0.sh_next_frame <- 0;
  shard0.sh_next_flow <- 0;
  t.shards <- [| shard0 |];
  t.parallel <- false;
  t.lookahead <- infinity;
  t.outboxes <- [||];
  List.iter (fun nd -> nd.shard <- shard0) t.all_nodes

let set_shards ?(parallel = false) ?(seed = 0) ?(same = []) t n =
  if n < 1 then invalid_arg "Net.set_shards: shard count must be >= 1";
  Array.iter
    (fun sh ->
      if sh.sh_idx > 0 && Engine.pending sh.sh_engine > 0 then
        invalid_arg
          "Net.set_shards: cannot repartition with events pending on a \
           non-primary shard")
    t.shards;
  if parallel && Engine.pending t.engine > 0 then
    invalid_arg
      "Net.set_shards: parallel sharding requires an idle primary engine \
       (events scheduled before partitioning could touch any shard)";
  List.iter
    (fun (a, b) ->
      if a.net != t || b.net != t then
        invalid_arg "Net.set_shards: ~same pair from a different net")
    same;
  let count = t.node_count in
  let arr = Array.of_list (nodes t) in
  let parent = Array.init (max count 1) (fun i -> i) in
  merge_colocated parent arr ~same;
  (* Components keyed by root (their minimum creation index). *)
  let comp_tbl = Hashtbl.create 16 in
  Array.iter
    (fun nd ->
      let r = uf_find parent nd.created in
      let cur = try Hashtbl.find comp_tbl r with Not_found -> [] in
      Hashtbl.replace comp_tbl r (nd :: cur))
    arr;
  let comps =
    Hashtbl.fold
      (fun r members acc -> (r, List.rev members, List.length members) :: acc)
      comp_tbl []
  in
  (* Deterministic greedy packing: components largest-first (root index
     breaks ties), each into the least-loaded bin (lowest index breaks
     ties).  Loads are node counts. *)
  let comps =
    List.sort
      (fun (r1, _, s1) (r2, _, s2) ->
        if s1 <> s2 then compare s2 s1 else compare r1 r2)
      comps
  in
  let bins = Array.make n [] and loads = Array.make n 0 in
  List.iter
    (fun (_, members, size) ->
      let best = ref 0 in
      for i = 1 to n - 1 do
        if loads.(i) < loads.(!best) then best := i
      done;
      bins.(!best) <- members :: bins.(!best);
      loads.(!best) <- loads.(!best) + size)
    comps;
  let nonempty =
    Array.to_list bins |> List.filter (fun b -> b <> []) |> List.map List.rev
  in
  let k = List.length nonempty in
  if k <= 1 then collapse_shards t
  else begin
    let shard0 = t.shards.(0) in
    shard0.sh_next_frame <- 0;
    shard0.sh_next_flow <- 0;
    let shards =
      Array.init k (fun i ->
          if i = 0 then shard0
          else
            {
              sh_idx = i;
              sh_engine = Engine.create ();
              sh_trace = t.trace;
              sh_pool = Pool.create ();
              sh_next_frame = 0;
              sh_next_flow = 0;
            })
    in
    if parallel then begin
      (* Each shard gets its own clock, starting where the primary's is,
         and its own quarantined trace: buffered, stamped from the shard
         clock, drained and merged at barriers.  Frozen id bases keep
         per-shard strided frame/flow ids disjoint and replayable. *)
      Array.iter
        (fun sh ->
          if sh.sh_idx > 0 then
            Engine.set_now sh.sh_engine (Engine.now t.engine);
          let tr = Trace.create () in
          Trace.set_time_source tr (Engine.clock_cell sh.sh_engine);
          Trace.set_buffered tr true;
          sh.sh_trace <- tr)
        shards;
      t.frame_base <- t.next_frame;
      t.flow_base <- t.next_flow;
      t.outboxes <-
        Array.init k (fun _ ->
            Array.init k (fun _ -> { ob_rev = []; ob_count = 0 }))
    end
    else begin
      (* Sequential sharded mode: one global timeline.  Every shard
         engine shares the primary's clock cell and tie-break counter and
         writes the primary trace, so the merged pick loop reproduces the
         unsharded event order bit-for-bit. *)
      shard0.sh_trace <- t.trace;
      Array.iter
        (fun sh ->
          if sh.sh_idx > 0 then begin
            Engine.use_clock_cell sh.sh_engine (Engine.clock_cell t.engine);
            Engine.use_seq_counter sh.sh_engine (Engine.seq_counter t.engine)
          end)
        shards;
      t.outboxes <- [||]
    end;
    t.shards <- shards;
    t.parallel <- parallel;
    t.merge_seed <- seed;
    List.iteri
      (fun i members ->
        List.iter
          (fun comp -> List.iter (fun nd -> nd.shard <- shards.(i)) comp)
          members)
      nonempty;
    t.lookahead <- validate_shards t ~strict:parallel
  end

(* Barrier merge of cross-shard frames.  Arrivals are sorted by
   (timestamp, seeded source-shard key, destination shard, push order) —
   a total, seed-controlled order — then scheduled into the destination
   queues in that order, so tie-break counters advance identically on
   every run. *)
let drain_outboxes t ~horizon =
  let k = Array.length t.shards in
  let all = ref [] in
  for s = 0 to k - 1 do
    let skey = (s + t.merge_seed) * 0x9E3779B1 land 0x3fffffff in
    for d = 0 to k - 1 do
      let ob = t.outboxes.(s).(d) in
      if ob.ob_count > 0 then begin
        let xs = List.rev ob.ob_rev in
        ob.ob_rev <- [];
        ob.ob_count <- 0;
        List.iteri
          (fun i x ->
            if x.x_at < horizon then
              failwith
                (Printf.sprintf
                   "Net: conservative lookahead violated: cross-shard frame \
                    %d->%d at t=%g inside window ending %g"
                   s d x.x_at horizon);
            all := (x.x_at, skey, d, i, x) :: !all)
          xs
      end
    done
  done;
  let evs =
    List.sort
      (fun (a1, k1, d1, i1, _) (a2, k2, d2, i2, _) ->
        compare (a1, k1, d1, i1) (a2, k2, d2, i2))
      !all
  in
  List.iter
    (fun (_, _, _, _, x) ->
      let dst = x.x_target.owner.shard in
      Engine.schedule dst.sh_engine ~at:x.x_at (fun () ->
          deliver_frame_to x.x_target x.x_frame))
    evs

(* Replay each shard's buffered records through the main trace in
   (time, shard index) order.  Records are time-ordered within a shard
   already, and the sort is stable, so same-time records keep their
   shard-local order — one deterministic interleaving, delivered to the
   flow index, observers, sinks and rings exactly once. *)
let merge_shard_traces t =
  let tagged = ref [] in
  Array.iter
    (fun sh ->
      List.iter
        (fun r -> tagged := (r, sh.sh_idx) :: !tagged)
        (Trace.drain sh.sh_trace))
    t.shards;
  let ordered =
    List.stable_sort
      (fun ((r1 : Trace.record), s1) ((r2 : Trace.record), s2) ->
        compare (r1.Trace.time, s1) (r2.Trace.time, s2))
      (List.rev !tagged)
  in
  List.iter
    (fun ((r : Trace.record), _) ->
      Trace.record t.trace ~time:r.Trace.time r.Trace.event)
    ordered

(* Sequential sharded executor: repeatedly run the event whose
   (timestamp, tie-break) key is globally minimal across shard queues.
   With the shared clock cell and shared counter this is, by induction,
   exactly the order the single-queue engine would execute. *)
let run_merged ?until ?(max_events = 10_000_000) t =
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let events = ref 0 in
  let continue = ref true in
  while !continue && !events < max_events do
    let best = ref None in
    Array.iter
      (fun sh ->
        match Engine.next_key sh.sh_engine with
        | None -> ()
        | Some key -> (
            match !best with
            | Some (bk, _) when compare bk key <= 0 -> ()
            | _ -> best := Some (key, sh)))
      t.shards;
    match !best with
    | None -> continue := false
    | Some ((at, _), sh) -> (
        match until with
        | Some limit when at > limit ->
            if limit > Engine.now t.engine then Engine.set_now t.engine limit;
            continue := false
        | _ ->
            ignore (Engine.step sh.sh_engine);
            incr events)
  done;
  let still_pending =
    Array.exists (fun sh -> Engine.pending sh.sh_engine > 0) t.shards
  in
  if !continue && !events >= max_events && still_pending then
    Engine.mark_truncated ~max_events t.engine;
  Engine.add_run_time t.engine
    ~wall:(Unix.gettimeofday () -. wall0)
    ~cpu:(Sys.time () -. cpu0);
  Engine.notify_observer t.engine

(* Parallel barrier executor.  Each iteration: find the global minimum
   next-event time N, run every shard up to the horizon N + lookahead in
   its own domain (cross-shard frames can only arrive at or after the
   horizon, so the window is causally closed), then join, merge outboxes
   and traces at the barrier, repeat. *)
let run_parallel ?until ?(max_events = 10_000_000) t =
  if t.fault_hook <> None then
    invalid_arg
      "Net.run: parallel sharded runs do not support fault hooks (the plan \
       RNG is call-order dependent); use sequential sharding";
  if t.icmp_errors <> None then
    invalid_arg
      "Net.run: parallel sharded runs do not support ICMP error signaling \
       (shared hold-down state); use sequential sharding";
  t.lookahead <- validate_shards t ~strict:true;
  (* Shard traces must capture whenever anything observes the main trace;
     refreshing here picks up observers/sinks/rings installed since
     set_shards. *)
  let want = Trace.interested t.trace in
  Array.iter (fun sh -> Trace.set_enabled sh.sh_trace want) t.shards;
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    let n =
      Array.fold_left
        (fun acc sh ->
          match Engine.next_key sh.sh_engine with
          | None -> acc
          | Some (at, _) -> Float.min acc at)
        infinity t.shards
    in
    if n = infinity then continue := false
    else
      match until with
      | Some limit when n > limit ->
          Array.iter
            (fun sh ->
              if limit > Engine.now sh.sh_engine then
                Engine.set_now sh.sh_engine limit)
            t.shards;
          continue := false
      | _ ->
          let horizon = n +. t.lookahead in
          let window_budget = !budget in
          let domains =
            Array.init
              (Array.length t.shards - 1)
              (fun i ->
                let sh = t.shards.(i + 1) in
                Domain.spawn (fun () ->
                    Engine.run_window ?until ~max_events:window_budget ~horizon
                      sh.sh_engine))
          in
          let e0 =
            Engine.run_window ?until ~max_events:window_budget ~horizon
              t.shards.(0).sh_engine
          in
          let executed =
            Array.fold_left (fun acc d -> acc + Domain.join d) e0 domains
          in
          budget := !budget - executed;
          drain_outboxes t ~horizon;
          merge_shard_traces t;
          if executed = 0 then
            (* The shard owning the minimum event always makes progress
               (its event is strictly inside the window); reaching here
               means every queue head was beyond [until]. *)
            continue := false
  done;
  let still_pending =
    Array.exists (fun sh -> Engine.pending sh.sh_engine > 0) t.shards
  in
  if !budget <= 0 && still_pending then
    Engine.mark_truncated ~max_events t.engine;
  (* Barrier clocks drift apart by design; align them forward so [now]
     and [stats] read one consistent end time. *)
  let tmax =
    Array.fold_left
      (fun acc sh -> Float.max acc (Engine.now sh.sh_engine))
      0.0 t.shards
  in
  Array.iter
    (fun sh ->
      if tmax > Engine.now sh.sh_engine then Engine.set_now sh.sh_engine tmax)
    t.shards;
  (* Advance the sequential id counters past everything the strided
     per-shard counters handed out, so a later unsharded run (or a
     repartition) never reissues an id. *)
  let k = Array.length t.shards in
  let maxf =
    Array.fold_left (fun acc sh -> max acc sh.sh_next_frame) 0 t.shards
  in
  let maxw =
    Array.fold_left (fun acc sh -> max acc sh.sh_next_flow) 0 t.shards
  in
  t.next_frame <- max t.next_frame (t.frame_base + (maxf * k));
  t.next_flow <- max t.next_flow (t.flow_base + (maxw * k));
  Engine.add_run_time t.engine
    ~wall:(Unix.gettimeofday () -. wall0)
    ~cpu:(Sys.time () -. cpu0);
  Engine.notify_observer t.engine

let run ?until ?max_events t =
  if Array.length t.shards = 1 then Engine.run ?until ?max_events t.engine
  else if t.parallel then run_parallel ?until ?max_events t
  else run_merged ?until ?max_events t

let stats t =
  Array.fold_left
    (fun (acc : Engine.stats) sh ->
      let s = Engine.stats sh.sh_engine in
      {
        Engine.executed = acc.Engine.executed + s.Engine.executed;
        pending = acc.Engine.pending + s.Engine.pending;
        max_pending = max acc.Engine.max_pending s.Engine.max_pending;
        truncated = acc.Engine.truncated + s.Engine.truncated;
        sim_time = Float.max acc.Engine.sim_time s.Engine.sim_time;
        wall_time = acc.Engine.wall_time +. s.Engine.wall_time;
        cpu_time = acc.Engine.cpu_time +. s.Engine.cpu_time;
      })
    {
      Engine.executed = 0;
      pending = 0;
      max_pending = 0;
      truncated = 0;
      sim_time = 0.0;
      wall_time = 0.0;
      cpu_time = 0.0;
    }
    t.shards
